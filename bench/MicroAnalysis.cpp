//===- bench/MicroAnalysis.cpp - Offline-analysis micro-benchmarks ---------===//
//
// Measures the two trace-analysis passes added with the static-analysis
// suite: the guard-lock cycle pruner (cost vs. number of witnessing
// assignments it has to enumerate) and the lockset + vector-clock race
// detector (cost vs. trace size, and the scaling of its sharded
// pair-checking pass across worker counts).
//
//===----------------------------------------------------------------------===//

#include "analysis/GuardPruner.h"
#include "analysis/RaceDetector.h"
#include "analysis/Trace.h"
#include "igoodlock/IGoodlock.h"
#include "runtime/Records.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace dlf;
using namespace dlf::analysis;

namespace {

void addThread(LockDependencyLog &Log, uint64_t Tid) {
  ThreadRecord T;
  T.Id = ThreadId(Tid);
  T.Name = "t" + std::to_string(Tid);
  Log.onThreadCreated(T);
}

void addLock(LockDependencyLog &Log, uint64_t Lid) {
  LockRecord L;
  L.Id = LockId(Lid);
  L.Name = "l" + std::to_string(Lid);
  Log.onLockCreated(L);
}

void addEntry(LockDependencyLog &Log, uint64_t Tid,
              const std::vector<uint64_t> &Held, uint64_t Acq,
              const std::string &SiteTag) {
  ThreadRecord T;
  T.Id = ThreadId(Tid);
  LockRecord L;
  L.Id = LockId(Acq);
  std::vector<LockStackEntry> Stack;
  for (uint64_t H : Held)
    Stack.push_back({LockId(H), Label::intern("site:" + SiteTag + ":" +
                                              std::to_string(H))});
  Log.onAcquireExecuted(
      T, L, Stack,
      Label::intern("site:" + SiteTag + ":" + std::to_string(Acq)),
      LockMode::Exclusive);
}

/// A gate-guarded inversion whose components re-occur at \p Occurrences
/// distinct sites each: the pruner enumerates Occurrences^2 assignments
/// per cycle, all guarded.
void buildGuardedLog(LockDependencyLog &Log, std::vector<AbstractCycle> &Cycles,
                     uint64_t Occurrences) {
  addThread(Log, 1);
  addThread(Log, 2);
  addLock(Log, 10);
  addLock(Log, 11);
  addLock(Log, 12);
  for (uint64_t O = 0; O != Occurrences; ++O) {
    std::string Tag = std::to_string(O);
    addEntry(Log, 1, {10, 11}, 12, "a" + Tag);
    addEntry(Log, 2, {10, 12}, 11, "b" + Tag);
  }
  IGoodlockOptions Opts;
  Opts.KeepGuardedCycles = true;
  Cycles = runIGoodlock(Log, Opts);
}

void BM_GuardPrune(benchmark::State &State) {
  LockDependencyLog Log;
  std::vector<AbstractCycle> Cycles;
  buildGuardedLog(Log, Cycles, static_cast<uint64_t>(State.range(0)));
  uint64_t Guarded = 0;
  for (auto _ : State) {
    std::vector<CycleClassification> Classes = classifyCycles(Log, Cycles);
    for (const CycleClassification &C : Classes)
      Guarded += C.Class == CycleClass::Guarded;
    benchmark::DoNotOptimize(Classes);
  }
  State.counters["cycles"] = static_cast<double>(Cycles.size());
  State.counters["guarded"] =
      static_cast<double>(Guarded) / State.iterations();
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Cycles.size()));
}
BENCHMARK(BM_GuardPrune)->Arg(1)->Arg(4)->Arg(16);

/// A synthetic access trace: \p Objects shared objects, each touched by
/// two forked threads at several sites, half the objects lock-protected
/// (no race) and half bare (racy).
TraceFile buildAccessTrace(uint64_t Objects) {
  TraceFile Trace;
  auto Add = [&Trace](TraceEvent::Kind K, uint64_t A, uint64_t B,
                      std::string Text) {
    TraceEvent E;
    E.K = K;
    E.A = A;
    E.B = B;
    E.Text = std::move(Text);
    Trace.Events.push_back(std::move(E));
  };
  Add(TraceEvent::Kind::ThreadNew, 1, 0, "main");
  Add(TraceEvent::Kind::ThreadNew, 2, 0, "w2");
  Add(TraceEvent::Kind::ThreadNew, 3, 0, "w3");
  Add(TraceEvent::Kind::Fork, 1, 2, "");
  Add(TraceEvent::Kind::Fork, 1, 3, "");
  Add(TraceEvent::Kind::LockNew, 50, 0, "lock");
  for (uint64_t O = 0; O != Objects; ++O) {
    uint64_t Oid = 100 + O;
    Add(TraceEvent::Kind::ObjectNew, Oid, 0, "obj#" + std::to_string(O));
    bool Protected = (O % 2) == 0;
    for (uint64_t Tid : {uint64_t(2), uint64_t(3)}) {
      if (Protected)
        Add(TraceEvent::Kind::Acquire, Tid, 50, "acq");
      Add(TraceEvent::Kind::Write, Tid, Oid,
          "store" + std::to_string(Tid) + "." + std::to_string(O));
      Add(TraceEvent::Kind::Read, Tid, Oid,
          "load" + std::to_string(Tid) + "." + std::to_string(O));
      if (Protected)
        Add(TraceEvent::Kind::Release, Tid, 50, "");
    }
  }
  return Trace;
}

void BM_RacePass(benchmark::State &State) {
  TraceFile Trace = buildAccessTrace(static_cast<uint64_t>(State.range(0)));
  RaceDetectorOptions Opts;
  Opts.Jobs = static_cast<unsigned>(State.range(1));
  uint64_t Pairs = 0;
  for (auto _ : State) {
    RaceAnalysis R = detectRaces(Trace, Opts);
    Pairs += R.RacyPairs;
    benchmark::DoNotOptimize(R);
  }
  State.counters["racy_pairs"] =
      static_cast<double>(Pairs) / State.iterations();
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Trace.Events.size()));
}
BENCHMARK(BM_RacePass)
    ->Args({64, 1})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({4096, 1})
    ->Args({4096, 4});

} // namespace

BENCHMARK_MAIN();
