//===- bench/MotivationSystematic.cpp - §1 motivation: why not explore? -----===//
//
// Reproduces the paper's motivating contrast (§1): "Model checking removes
// these limitations of testing by systematically exploring all thread
// schedules. However, model checking fails to scale ... due to the
// exponential increase in the number of thread schedules."
//
// The Figure 1 program is parameterized by the length of the long-running
// prelude (the f1()..f4() calls). For each length we report how many
// executions a stateless systematic DFS needs to find the deadlock, how
// many random (Algorithm 2) executions find it on average, and the fixed
// cost of the two-phase DeadlockFuzzer (one observation + biased runs
// that succeed with probability ~1).
//
// Knobs: DLF_BENCH_MAX_EXEC (systematic budget per point, default 200000).
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "fuzzer/RandomStrategy.h"
#include "fuzzer/Systematic.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"
#include "support/Env.h"
#include "support/Table.h"

#include <iostream>

using namespace dlf;

namespace {

/// Figure 1 with a configurable prelude length; \p Ordered switches to the
/// fixed (deadlock-free) lock order, the variant a systematic verifier
/// must fully exhaust.
void figure1Window(unsigned PreludeLength, bool Ordered = false) {
  Mutex O1("ms-o1", DLF_NAMED_SITE("ms:22"));
  Mutex O2("ms-o2", DLF_NAMED_SITE("ms:23"));
  Thread T1(
      [&, PreludeLength] {
        for (unsigned I = 0; I != PreludeLength; ++I)
          yieldNow();
        MutexGuard A(O1, DLF_NAMED_SITE("ms:15"));
        MutexGuard B(O2, DLF_NAMED_SITE("ms:16"));
      },
      "ms.t1", DLF_NAMED_SITE("ms:25"));
  Thread T2(
      [&, Ordered] {
        Mutex &First = Ordered ? O1 : O2;
        Mutex &Second = Ordered ? O2 : O1;
        MutexGuard A(First, DLF_NAMED_SITE("ms:15b"));
        MutexGuard B(Second, DLF_NAMED_SITE("ms:16b"));
      },
      "ms.t2", DLF_NAMED_SITE("ms:26"));
  T1.join();
  T2.join();
}

/// Average number of unbiased random executions until the first stall.
double randomExecutionsToDeadlock(unsigned PreludeLength, unsigned Trials,
                                  uint64_t CapPerTrial) {
  uint64_t Total = 0;
  for (unsigned Trial = 0; Trial != Trials; ++Trial) {
    uint64_t Count = 0;
    for (;;) {
      ++Count;
      Options Opts;
      Opts.Mode = RunMode::Active;
      Opts.Seed = 7919 * (Trial + 1) + Count;
      SimpleRandomStrategy Strategy;
      Runtime RT(Opts, &Strategy);
      if (RT.run([&] { figure1Window(PreludeLength); }).Stalled)
        break;
      if (Count >= CapPerTrial)
        break;
    }
    Total += Count;
  }
  return static_cast<double>(Total) / Trials;
}

} // namespace

int main() {
  const uint64_t MaxExec = envUInt("DLF_BENCH_MAX_EXEC", 200000);
  std::cout << "Motivation (§1): executions to find the Figure 1 deadlock "
               "as the window narrows (systematic budget "
            << MaxExec << ")\n\n";

  Table Out({"Prelude", "Systematic find", "Systematic verify",
             "Random (avg)", "DeadlockFuzzer"});
  for (unsigned Prelude : {0u, 2u, 4u, 6u, 8u}) {
    SystematicResult Systematic = exploreSystematically(
        [&] { figure1Window(Prelude); }, MaxExec);
    std::string SystematicCell =
        Systematic.DeadlockFound
            ? Table::fmt(Systematic.Executions)
            : (">" + Table::fmt(Systematic.Executions) +
               (Systematic.Exhausted ? " (exhausted?!)" : " (budget)"));

    // The verification cost: exhausting the schedule tree of the *fixed*
    // program — the paper's "exponential increase in the number of thread
    // schedules with execution length".
    SystematicResult Verify = exploreSystematically(
        [&] { figure1Window(Prelude, /*Ordered=*/true); }, MaxExec);
    std::string VerifyCell =
        Verify.Exhausted ? Table::fmt(Verify.Executions)
                         : (">" + Table::fmt(Verify.Executions) + " (budget)");

    double RandomAvg =
        randomExecutionsToDeadlock(Prelude, /*Trials=*/5,
                                   /*CapPerTrial=*/5000);

    // Two-phase: one observation run + biased runs until reproduced.
    ActiveTesterConfig Config;
    Config.PhaseTwoReps = 1;
    ActiveTester Tester([&] { figure1Window(Prelude); }, Config);
    PhaseOneResult P1 = Tester.runPhaseOne();
    uint64_t FuzzRuns = 0;
    bool Reproduced = false;
    while (!Reproduced && FuzzRuns < 100) {
      ++FuzzRuns;
      ExecutionResult R =
          Tester.runOnce(P1.Cycles.at(0), 1000 + FuzzRuns);
      Reproduced = R.DeadlockFound;
    }
    std::string FuzzCell = "1 obs + " + Table::fmt(FuzzRuns) + " run(s)";

    Out.addRow({Table::fmt(static_cast<uint64_t>(Prelude)), SystematicCell,
                VerifyCell, Table::fmt(RandomAvg, 1), FuzzCell});
  }
  Out.print(std::cout);
  std::cout << "\nPaper reference (§1): systematic exploration grows "
               "exponentially with execution length; random testing rarely "
               "hits subtle schedules; DeadlockFuzzer needs one observed "
               "execution plus a biased run that succeeds with probability "
               "~1.\n";
  return 0;
}
