//===- bench/Fig2Variants.cpp - Reproduces Figure 2, graphs 1-3 ------------===//
//
// Runs the five DeadlockFuzzer variants over the four Figure 2 benchmarks
// (Collections, Logging, DBCP, Swing) and prints the three bar-chart
// series:
//
//   graph 1: average runtime, normalized to the uninstrumented run
//   graph 2: probability of reproducing the target deadlock
//   graph 3: average thrashings per run
//
// Variants (paper §5.2): V1 context + k-object abstraction; V2 context +
// execution-indexing abstraction (the default; Table 1's configuration);
// V3 trivial abstraction ("ignore abstraction"); V4 ignore context; V5 no
// yields.
//
// Knobs: DLF_BENCH_REPS (default 15).
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "substrates/BenchmarkRegistry.h"
#include "support/Env.h"
#include "support/Table.h"

#include <array>
#include <iostream>

using namespace dlf;

namespace {

struct Variant {
  const char *Name;
  AbstractionKind Kind;
  bool UseContext;
  bool UseYields;
};

constexpr std::array<Variant, 5> Variants = {{
    {"V1 ctx+k-object", AbstractionKind::KObjectSensitive, true, true},
    {"V2 ctx+exec-index", AbstractionKind::ExecutionIndex, true, true},
    {"V3 ignore abstraction", AbstractionKind::Trivial, true, true},
    {"V4 ignore context", AbstractionKind::ExecutionIndex, false, true},
    {"V5 no yields", AbstractionKind::ExecutionIndex, true, false},
}};

constexpr std::array<const char *, 4> Benchmarks = {"collections", "logging",
                                                    "dbcp", "swing"};

struct Cell {
  double NormalizedRuntime = 0;
  double Probability = 0;
  double AvgThrashes = 0;
};

} // namespace

int main() {
  const unsigned Reps = static_cast<unsigned>(envUInt("DLF_BENCH_REPS", 15));
  std::cout << "Figure 2 (graphs 1-3): variants x benchmarks (reps=" << Reps
            << ")\n\n";

  Table Runtime({"Variant", "collections", "logging", "dbcp", "swing"});
  Table Probability({"Variant", "collections", "logging", "dbcp", "swing"});
  Table Thrashes({"Variant", "collections", "logging", "dbcp", "swing"});

  for (const Variant &V : Variants) {
    std::vector<std::string> RuntimeRow = {V.Name};
    std::vector<std::string> ProbabilityRow = {V.Name};
    std::vector<std::string> ThrashRow = {V.Name};

    for (const char *BenchName : Benchmarks) {
      const BenchmarkInfo *Info = findBenchmark(BenchName);
      ActiveTesterConfig Config;
      Config.PhaseTwoReps = Reps;
      Config.Base.Kind = V.Kind;
      Config.Base.UseContext = V.UseContext;
      Config.Base.UseYields = V.UseYields;
      ActiveTester Tester(Info->Entry, Config);

      double NormalMs = 0;
      constexpr unsigned BaselineRuns = 3;
      for (unsigned I = 0; I != BaselineRuns; ++I)
        NormalMs += Tester.runPassthrough().WallMs;
      NormalMs /= BaselineRuns;

      PhaseOneResult P1 = Tester.runPhaseOne();
      Cell Result;
      unsigned Hits = 0, Runs = 0;
      uint64_t TotalThrashes = 0;
      double TotalMs = 0;
      for (const AbstractCycle &Cycle : P1.Cycles) {
        CycleFuzzStats Stats = Tester.fuzzCycle(Cycle);
        Hits += Stats.ReproducedTarget;
        Runs += Stats.Runs;
        TotalThrashes += Stats.TotalThrashes + Stats.TotalForcedUnpauses;
        TotalMs += Stats.TotalWallMs;
      }
      if (Runs) {
        Result.Probability = static_cast<double>(Hits) / Runs;
        Result.AvgThrashes = static_cast<double>(TotalThrashes) / Runs;
        Result.NormalizedRuntime = (TotalMs / Runs) / std::max(NormalMs, 1e-3);
      }

      RuntimeRow.push_back(Table::fmt(Result.NormalizedRuntime, 1) + "x");
      ProbabilityRow.push_back(Table::fmt(Result.Probability, 2));
      ThrashRow.push_back(Table::fmt(Result.AvgThrashes, 2));
    }
    Runtime.addRow(RuntimeRow);
    Probability.addRow(ProbabilityRow);
    Thrashes.addRow(ThrashRow);
  }

  std::cout << "graph 1: runtime normalized to uninstrumented\n";
  Runtime.print(std::cout);
  std::cout << "\ngraph 2: probability of reproducing the target deadlock\n";
  Probability.print(std::cout);
  std::cout << "\ngraph 3: average thrashings per run\n";
  Thrashes.print(std::cout);
  std::cout << "\nPaper reference (Figure 2): V2 has the highest probability "
               "and least thrashing; V1 trails V2 most visibly on Logging "
               "and DBCP; V3 thrashes heavily on Collections; V4 explodes "
               "thrashing (and runtime) on Swing; V5 loses probability on "
               "the gate-lock benchmarks (Logging/DBCP).\n";
  return 0;
}
