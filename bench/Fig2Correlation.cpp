//===- bench/Fig2Correlation.cpp - Reproduces Figure 2, graph 4 ------------===//
//
// The paper's fourth graph: the probability of creating a deadlock as a
// function of the number of thrashings in the run. We aggregate every
// (cycle, repetition) execution across all five variants and the four
// Figure 2 benchmarks, bucket them by thrash count, and print the fraction
// of executions in each bucket that created the target deadlock. The
// paper's claim: probability decreases as thrashing increases.
//
// Knobs: DLF_BENCH_REPS (default 10).
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "substrates/BenchmarkRegistry.h"
#include "support/Env.h"
#include "support/Table.h"

#include <array>
#include <iostream>
#include <map>

using namespace dlf;

int main() {
  const unsigned Reps = static_cast<unsigned>(envUInt("DLF_BENCH_REPS", 10));
  constexpr std::array<const char *, 4> Benchmarks = {"collections",
                                                      "logging", "dbcp",
                                                      "swing"};
  struct VariantConfig {
    AbstractionKind Kind;
    bool UseContext;
    bool UseYields;
  };
  constexpr std::array<VariantConfig, 5> Variants = {{
      {AbstractionKind::KObjectSensitive, true, true},
      {AbstractionKind::ExecutionIndex, true, true},
      {AbstractionKind::Trivial, true, true},
      {AbstractionKind::ExecutionIndex, false, true},
      {AbstractionKind::ExecutionIndex, true, false},
  }};

  // thrash-count bucket -> (executions, target deadlocks)
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> Buckets;

  for (const VariantConfig &V : Variants) {
    for (const char *BenchName : Benchmarks) {
      const BenchmarkInfo *Info = findBenchmark(BenchName);
      ActiveTesterConfig Config;
      Config.PhaseTwoReps = Reps;
      Config.Base.Kind = V.Kind;
      Config.Base.UseContext = V.UseContext;
      Config.Base.UseYields = V.UseYields;
      ActiveTester Tester(Info->Entry, Config);

      PhaseOneResult P1 = Tester.runPhaseOne();
      for (const AbstractCycle &Cycle : P1.Cycles) {
        for (unsigned Rep = 0; Rep != Reps; ++Rep) {
          ExecutionResult R =
              Tester.runOnce(Cycle, Config.PhaseTwoSeedBase + Rep);
          bool Hit = R.DeadlockFound && R.Witness &&
                     ActiveTester::witnessMatchesCycle(
                         *R.Witness, Cycle, Config.Base.Kind,
                         Config.Base.UseContext);
          // Bucket thrash counts: 0, 1, 2, 3, 4, 5-8, 9-16, 17+.
          uint64_t Bucket = R.Thrashes;
          if (Bucket > 16)
            Bucket = 17;
          else if (Bucket > 8)
            Bucket = 9;
          else if (Bucket > 4)
            Bucket = 5;
          auto &[Total, Hits] = Buckets[Bucket];
          ++Total;
          Hits += Hit ? 1 : 0;
        }
      }
    }
  }

  std::cout << "Figure 2 (graph 4): thrashings vs probability, aggregated "
               "over all variants and benchmarks (reps="
            << Reps << ")\n\n";
  Table Out({"Thrashings", "Executions", "Deadlocks", "Probability"});
  for (const auto &[Bucket, Counts] : Buckets) {
    std::string Name = Bucket == 17  ? std::string("17+")
                       : Bucket == 9 ? std::string("9-16")
                       : Bucket == 5 ? std::string("5-8")
                                     : std::to_string(Bucket);
    Out.addRow({Name, Table::fmt(Counts.first), Table::fmt(Counts.second),
                Table::fmt(static_cast<double>(Counts.second) /
                               std::max<uint64_t>(Counts.first, 1),
                           2)});
  }
  Out.print(std::cout);
  std::cout << "\nPaper reference: the probability of creating a deadlock "
               "goes down as the number of thrashings increases.\n";
  return 0;
}
