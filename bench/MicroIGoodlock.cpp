//===- bench/MicroIGoodlock.cpp - iGoodlock closure micro-benchmarks -------===//
//
// Measures the iterative transitive closure (Algorithm 1) on synthetic
// lock dependency relations: cost vs. relation size, and cost vs. cycle
// length (iterative deepening). This is the ablation for DESIGN.md's
// decision 5 (closure instead of the classical Goodlock DFS lock graph:
// more memory, better runtime).
//
//===----------------------------------------------------------------------===//

#include "igoodlock/ClassicGoodlock.h"
#include "igoodlock/IGoodlock.h"
#include "runtime/Records.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace dlf;

namespace {

/// Fabricates one dependency event: thread Tid acquires lock Acq while
/// holding Held.
void addEntry(LockDependencyLog &Log, uint64_t Tid,
              const std::vector<uint64_t> &Held, uint64_t Acq) {
  ThreadRecord T;
  T.Id = ThreadId(Tid);
  T.Name = "t" + std::to_string(Tid);
  Log.onThreadCreated(T);

  LockRecord L;
  L.Id = LockId(Acq);
  L.Name = "l" + std::to_string(Acq);
  Log.onLockCreated(L);

  std::vector<LockStackEntry> Stack;
  for (uint64_t H : Held) {
    LockRecord HeldLock;
    HeldLock.Id = LockId(H);
    HeldLock.Name = "l" + std::to_string(H);
    Log.onLockCreated(HeldLock);
    Stack.push_back(
        {LockId(H), Label::intern("site:" + std::to_string(H))});
  }
  Log.onAcquireExecuted(T, L, Stack,
                        Label::intern("site:" + std::to_string(Acq)),
                        LockMode::Exclusive);
}

/// T threads, each acquiring a private inner lock while holding a shared
/// outer lock plus pairwise inversions: a relation with many chains but few
/// cycles, sized by the benchmark argument.
void buildScaledRelation(LockDependencyLog &Log, uint64_t Threads) {
  for (uint64_t T = 1; T <= Threads; ++T) {
    // Ordered (benign) pairs.
    addEntry(Log, T, {100 + T}, 200 + T);
    addEntry(Log, T, {100 + T, 200 + T}, 300 + T);
    // One inversion pair per adjacent thread: a cycle between T and T+1.
    addEntry(Log, T, {10 + T}, 10 + T + 1);
  }
  // Close the ring.
  addEntry(Log, Threads + 1, {10 + Threads + 1}, 11);
}

/// A dense single-cluster relation: every thread records an (held {l_i},
/// acquire l_j) edge for every ordered lock pair, so the closure's levels
/// fan out combinatorially — the chain-bound workload that the parallel
/// engine shards and the held-set bitmasks accelerate.
void buildDenseRelation(LockDependencyLog &Log, uint64_t Threads,
                        uint64_t Locks) {
  for (uint64_t T = 1; T <= Threads; ++T)
    for (uint64_t I = 1; I <= Locks; ++I)
      for (uint64_t J = 1; J <= Locks; ++J)
        if (I != J)
          addEntry(Log, T, {500 + I}, 500 + J);
}

void BM_ClosureScaling(benchmark::State &State) {
  LockDependencyLog Log;
  buildScaledRelation(Log, static_cast<uint64_t>(State.range(0)));
  for (auto _ : State) {
    IGoodlockStats Stats;
    auto Cycles = runIGoodlock(Log, {}, &Stats);
    benchmark::DoNotOptimize(Cycles);
  }
  State.SetLabel(std::to_string(Log.entries().size()) + " entries");
}
BENCHMARK(BM_ClosureScaling)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

/// The closure-bound case: dense relations where levels hold thousands of
/// chains. Arg0 scales the thread count, Arg1 is AnalysisJobs (1 = serial
/// baseline). Results are identical for every job count — only wall time
/// may differ (and only on multi-core hosts).
void BM_ClosureParallelJobs(benchmark::State &State) {
  LockDependencyLog Log;
  buildDenseRelation(Log, static_cast<uint64_t>(State.range(0)),
                     /*Locks=*/6);
  IGoodlockOptions Opts;
  Opts.MaxCycleLength = 4;
  Opts.AnalysisJobs = static_cast<unsigned>(State.range(1));
  uint64_t Chains = 0;
  for (auto _ : State) {
    IGoodlockStats Stats;
    auto Cycles = runIGoodlock(Log, Opts, &Stats);
    benchmark::DoNotOptimize(Cycles);
    Chains = Stats.ChainsExplored;
  }
  State.SetLabel(std::to_string(Log.entries().size()) + " entries, " +
                 std::to_string(Chains) + " chains");
}
BENCHMARK(BM_ClosureParallelJobs)
    ->Args({6, 1})
    ->Args({6, 2})
    ->Args({6, 4})
    ->Args({10, 1})
    ->Args({10, 2})
    ->Args({10, 4});

/// The >64-distinct-locks fallback: wide held sets force the sorted-vector
/// disjointness path instead of the one-AND bitmask path. Pairs with
/// BM_ClosureParallelJobs to measure the cost of losing the mask.
void BM_ClosureWideHeldSets(benchmark::State &State) {
  const uint64_t Threads = static_cast<uint64_t>(State.range(0));
  LockDependencyLog Log;
  // Each thread holds a private 20-lock prefix (disjoint across threads,
  // ids spread past 64) while acquiring its inversion lock.
  for (uint64_t T = 1; T <= Threads; ++T) {
    std::vector<uint64_t> Held;
    for (uint64_t I = 0; I != 20; ++I)
      Held.push_back(1000 + T * 20 + I);
    Held.push_back(10 + T);
    addEntry(Log, T, Held, 10 + (T % Threads) + 1);
  }
  for (auto _ : State) {
    auto Cycles = runIGoodlock(Log);
    benchmark::DoNotOptimize(Cycles);
  }
  State.SetLabel(std::to_string(Log.entries().size()) + " entries");
}
BENCHMARK(BM_ClosureWideHeldSets)->Arg(8)->Arg(32);

/// Mode-aware variant of addEntry: held entries carry their LockMode and
/// the acquire itself has one (rwlock read sides record Shared).
void addModedEntry(LockDependencyLog &Log, uint64_t Tid,
                   const std::vector<std::pair<uint64_t, LockMode>> &Held,
                   uint64_t Acq, LockMode Mode) {
  ThreadRecord T;
  T.Id = ThreadId(Tid);
  T.Name = "t" + std::to_string(Tid);
  Log.onThreadCreated(T);

  LockRecord L;
  L.Id = LockId(Acq);
  L.Name = "l" + std::to_string(Acq);
  Log.onLockCreated(L);

  std::vector<LockStackEntry> Stack;
  for (const auto &[H, HMode] : Held) {
    LockRecord HeldLock;
    HeldLock.Id = LockId(H);
    HeldLock.Name = "l" + std::to_string(H);
    Log.onLockCreated(HeldLock);
    Stack.push_back(
        {LockId(H), Label::intern("site:" + std::to_string(H)), HMode});
  }
  Log.onAcquireExecuted(T, L, Stack,
                        Label::intern("site:" + std::to_string(Acq)), Mode);
}

/// The widened-alphabet closure case: N pairwise inversions that all
/// read-hold one global registry (mutex semantics would prune every one
/// as gate-guarded; shared-shared holds keep them all), plus per-thread
/// read-side traffic whose candidate pairs the mode conflict rule must
/// reject one by one. Pairs with BM_ClosureScaling to price the
/// per-extension mode checks.
void BM_ClosureMixedModes(benchmark::State &State) {
  const uint64_t Threads = static_cast<uint64_t>(State.range(0));
  LockDependencyLog Log;
  for (uint64_t T = 1; T <= Threads; ++T) {
    // Inversion pair between threads T and Threads+T, under the shared
    // registry (lock 1): one kept cycle each.
    addModedEntry(Log, T,
                  {{1, LockMode::Shared}, {10 + T, LockMode::Exclusive}},
                  10000 + T, LockMode::Exclusive);
    addModedEntry(Log, Threads + T,
                  {{1, LockMode::Shared}, {10000 + T, LockMode::Exclusive}},
                  10 + T, LockMode::Exclusive);
    // Read-read chains: shared waits against shared holds produce
    // candidate pairs but never edges.
    addModedEntry(Log, T, {{1, LockMode::Shared}}, 500 + T,
                  LockMode::Shared);
    addModedEntry(Log, T,
                  {{1, LockMode::Shared}, {500 + T, LockMode::Shared}},
                  500 + T + 1, LockMode::Shared);
  }
  uint64_t Found = 0;
  for (auto _ : State) {
    auto Cycles = runIGoodlock(Log);
    benchmark::DoNotOptimize(Cycles);
    Found = Cycles.size();
  }
  State.SetLabel(std::to_string(Log.entries().size()) + " entries, " +
                 std::to_string(Found) + " cycles kept");
}
BENCHMARK(BM_ClosureMixedModes)->Arg(8)->Arg(32)->Arg(128);

/// A single ring of N threads (one cycle of length N): the closure must
/// iterate to depth N, measuring the cost of deepening.
void BM_RingDeepening(benchmark::State &State) {
  const uint64_t N = static_cast<uint64_t>(State.range(0));
  LockDependencyLog Log;
  for (uint64_t T = 1; T <= N; ++T)
    addEntry(Log, T, {T}, (T % N) + 1);
  IGoodlockOptions Opts;
  Opts.MaxCycleLength = static_cast<unsigned>(N) + 1;
  for (auto _ : State) {
    auto Cycles = runIGoodlock(Log, Opts);
    benchmark::DoNotOptimize(Cycles);
  }
}
BENCHMARK(BM_RingDeepening)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

/// Duplicate-heavy input: the same acquisition pattern repeated (a loop),
/// measuring the dedup path of the recorder.
void BM_RecorderDedup(benchmark::State &State) {
  ThreadRecord T;
  T.Id = ThreadId(1);
  LockRecord L;
  L.Id = LockId(7);
  std::vector<LockStackEntry> Stack = {{LockId(3), Label::intern("s3")}};
  Label Site = Label::intern("s7");
  for (auto _ : State) {
    LockDependencyLog Log;
    Log.onThreadCreated(T);
    Log.onLockCreated(L);
    for (int I = 0; I != State.range(0); ++I)
      Log.onAcquireExecuted(T, L, Stack, Site, LockMode::Exclusive);
    benchmark::DoNotOptimize(Log.entries().size());
  }
}
BENCHMARK(BM_RecorderDedup)->Arg(100)->Arg(1000);

/// The paper's §2.2 trade, measured: the classical DFS Goodlock on the
/// same relations as BM_ClosureScaling (compare wall time; the DFS's peak
/// memory is a single chain while the closure materializes levels).
void BM_ClassicGoodlockScaling(benchmark::State &State) {
  LockDependencyLog Log;
  buildScaledRelation(Log, static_cast<uint64_t>(State.range(0)));
  ClassicGoodlockStats Stats;
  for (auto _ : State) {
    auto Cycles = runClassicGoodlock(Log, {}, &Stats);
    benchmark::DoNotOptimize(Cycles);
  }
  State.SetLabel("peak depth " + std::to_string(Stats.PeakDepth));
}
BENCHMARK(BM_ClassicGoodlockScaling)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_ClassicGoodlockRing(benchmark::State &State) {
  const uint64_t N = static_cast<uint64_t>(State.range(0));
  LockDependencyLog Log;
  for (uint64_t T = 1; T <= N; ++T)
    addEntry(Log, T, {T}, (T % N) + 1);
  IGoodlockOptions Opts;
  Opts.MaxCycleLength = static_cast<unsigned>(N) + 1;
  for (auto _ : State) {
    auto Cycles = runClassicGoodlock(Log, Opts);
    benchmark::DoNotOptimize(Cycles);
  }
}
BENCHMARK(BM_ClassicGoodlockRing)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

} // namespace

BENCHMARK_MAIN();
