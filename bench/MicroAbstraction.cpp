//===- bench/MicroAbstraction.cpp - Abstraction engine micro-benchmarks ----===//
//
// Measures the per-event cost of the two abstraction schemes (§2.4): the
// execution-indexing Call/Return/New updates and the k-object-sensitivity
// CreationMap walk — the runtime tax every instrumented event pays, which
// feeds Table 1's overhead columns.
//
//===----------------------------------------------------------------------===//

#include "abstraction/AbstractionEngine.h"
#include "abstraction/CreationMap.h"
#include "abstraction/ExecutionIndex.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace dlf;

namespace {

void BM_IndexCallReturn(benchmark::State &State) {
  const int Depth = static_cast<int>(State.range(0));
  std::vector<Label> Sites;
  for (int I = 0; I != Depth; ++I)
    Sites.push_back(Label::intern("call:" + std::to_string(I)));
  IndexingState Index;
  for (auto _ : State) {
    for (Label Site : Sites)
      Index.onCall(Site);
    for (int I = 0; I != Depth; ++I)
      Index.onReturn();
  }
  State.SetItemsProcessed(State.iterations() * 2 * Depth);
}
BENCHMARK(BM_IndexCallReturn)->Arg(4)->Arg(16)->Arg(64);

void BM_IndexOnNew(benchmark::State &State) {
  const int Depth = static_cast<int>(State.range(0));
  IndexingState Index;
  for (int I = 0; I != Depth; ++I)
    Index.onCall(Label::intern("call:" + std::to_string(I)));
  Label Site = Label::intern("new:site");
  for (auto _ : State) {
    Abstraction Abs = Index.onNew(Site, 8);
    benchmark::DoNotOptimize(Abs);
  }
}
BENCHMARK(BM_IndexOnNew)->Arg(2)->Arg(8)->Arg(32);

void BM_CreationMapWalk(benchmark::State &State) {
  const unsigned ChainLength = static_cast<unsigned>(State.range(0));
  CreationMap Map;
  for (unsigned I = 1; I <= ChainLength; ++I)
    Map.recordCreation(ObjectId(I), ObjectId(I + 1),
                       Label::intern("alloc:" + std::to_string(I)));
  for (auto _ : State) {
    Abstraction Abs = Map.computeAbsO(ObjectId(1), ChainLength);
    benchmark::DoNotOptimize(Abs);
  }
}
BENCHMARK(BM_CreationMapWalk)->Arg(1)->Arg(4)->Arg(16);

void BM_EngineRegisterCreation(benchmark::State &State) {
  Label Site = Label::intern("engine:alloc");
  std::vector<char> Objects(4096);
  for (auto _ : State) {
    State.PauseTiming();
    AbstractionEngine Engine(/*KObjectDepth=*/4, /*IndexDepth=*/8);
    IndexingState Index;
    State.ResumeTiming();
    const void *Parent = nullptr;
    for (size_t I = 0; I != Objects.size(); ++I) {
      auto [Id, Abs] = Engine.registerCreation(&Objects[I], Parent, Site,
                                               Index);
      benchmark::DoNotOptimize(Abs);
      Parent = &Objects[I];
    }
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Objects.size()));
}
BENCHMARK(BM_EngineRegisterCreation);

} // namespace

BENCHMARK_MAIN();
