//===- bench/HbAblation.cpp - §1 precision vs predictive power --------------===//
//
// Reproduces the paper's §1 discussion of happens-before-precise dynamic
// analysis: "it reduces the predictive power of dynamic techniques — it
// fails to report deadlocks that could happen in a significantly different
// thread schedule." For each deadlock-prone benchmark the harness runs
// Phase I three times — no HB tracking, fork/join edges only, and the full
// synchronization order — and reports how many potential cycles survive,
// alongside how many of the unfiltered cycles DeadlockFuzzer can actually
// confirm.
//
// Expected shape: fork/join filtering removes only the infeasible cycles
// (jigsaw's §5.4 class) and never a confirmable one; full-sync filtering
// collapses most reports — including real deadlocks — because the observed
// execution ordered their critical sections.
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "substrates/BenchmarkRegistry.h"
#include "support/Env.h"
#include "support/Table.h"

#include <iostream>

using namespace dlf;

namespace {

size_t cyclesUnder(const BenchmarkInfo &Info, HbMode Mode) {
  ActiveTesterConfig Config;
  Config.Base.HappensBefore = Mode;
  Config.Goodlock.FilterByHappensBefore = (Mode != HbMode::Off);
  ActiveTester Tester(Info.Entry, Config);
  return Tester.runPhaseOne().Cycles.size();
}

} // namespace

int main() {
  const unsigned Reps = static_cast<unsigned>(envUInt("DLF_BENCH_REPS", 10));
  std::cout << "Happens-before ablation (§1): potential cycles surviving "
               "each tracking mode (confirm reps=" << Reps << ")\n\n";

  Table Out({"Benchmark", "No HB", "Fork/join HB", "Full-sync HB",
             "Confirmed (no HB)"});
  for (const char *Name : {"logging", "swing", "dbcp", "collections-lists",
                           "collections-maps", "jigsaw"}) {
    const BenchmarkInfo *Info = findBenchmark(Name);

    size_t Plain = cyclesUnder(*Info, HbMode::Off);
    size_t ForkJoin = cyclesUnder(*Info, HbMode::ForkJoin);
    size_t FullSync = cyclesUnder(*Info, HbMode::FullSync);

    ActiveTesterConfig Config;
    Config.PhaseTwoReps = Reps;
    ActiveTester Tester(Info->Entry, Config);
    ActiveTesterReport Report = Tester.run();

    Out.addRow({Name, Table::fmt(static_cast<uint64_t>(Plain)),
                Table::fmt(static_cast<uint64_t>(ForkJoin)),
                Table::fmt(static_cast<uint64_t>(FullSync)),
                Table::fmt(static_cast<uint64_t>(Report.confirmedCycles()))});
  }
  Out.print(std::cout);
  std::cout << "\nReading: fork/join HB prunes only provably infeasible "
               "reports (never below the confirmed count); full-sync HB is "
               "precise for the observed run but discards real deadlocks — "
               "the paper's reason for not using it.\n";
  return 0;
}
