//===- bench/MicroPredict.cpp - Sync-preserving prediction benchmarks ------===//
//
// Measures the --predict engine (analysis/Predict): verdict cost as the
// recorded trace grows with the cycle count held fixed (the engine's
// near-linear contract — indexing walks the trace once and the witness
// fixpoint touches each included event a bounded number of times), and the
// scaling of the per-cycle verdict shard across worker threads.
//
//===----------------------------------------------------------------------===//

#include "analysis/Predict.h"
#include "analysis/Trace.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace dlf;
using namespace dlf::analysis;

namespace {

void add(TraceFile &Trace, TraceEvent::Kind K, uint64_t A, uint64_t B,
         std::string Text = "") {
  TraceEvent E;
  E.K = K;
  E.A = A;
  E.B = B;
  E.Text = std::move(Text);
  Trace.Events.push_back(std::move(E));
}

void acq(TraceFile &T, uint64_t Tid, uint64_t Lid) {
  add(T, TraceEvent::Kind::Acquire, Tid, Lid,
      "t" + std::to_string(Tid) + "/acq" + std::to_string(Lid));
}

void rel(TraceFile &T, uint64_t Tid, uint64_t Lid) {
  add(T, TraceEvent::Kind::Release, Tid, Lid);
}

/// One sequential ABBA inversion between \p T1 and \p T2 on \p La / \p Lb:
/// exactly one realizable cycle per call.
void abbaPair(TraceFile &T, uint64_t T1, uint64_t T2, uint64_t La,
              uint64_t Lb) {
  acq(T, T1, La);
  acq(T, T1, Lb);
  rel(T, T1, Lb);
  rel(T, T1, La);
  acq(T, T2, Lb);
  acq(T, T2, La);
  rel(T, T2, La);
  rel(T, T2, Lb);
}

/// Fixed cycle structure (Pairs ABBA inversions) padded with \p Filler
/// closed critical sections on the cycle locks from dedicated threads —
/// the trace the indexer and the witness closure must walk past.
TraceFile paddedTrace(unsigned Pairs, uint64_t Filler) {
  TraceFile T;
  const uint64_t Workers = 2 * Pairs;
  const uint64_t FillerThreads = Pairs;
  add(T, TraceEvent::Kind::ThreadNew, 1, 0, "thr#1");
  for (uint64_t W = 2; W < 2 + Workers + FillerThreads; ++W) {
    add(T, TraceEvent::Kind::ThreadNew, W, 0, "thr#" + std::to_string(W));
    add(T, TraceEvent::Kind::Fork, 1, W);
  }
  for (unsigned P = 0; P != Pairs; ++P) {
    add(T, TraceEvent::Kind::LockNew, 10 + 2 * P, 0,
        "a" + std::to_string(P));
    add(T, TraceEvent::Kind::LockNew, 11 + 2 * P, 0,
        "b" + std::to_string(P));
  }
  // Filler first: the prefix the request-side walk has to skip or close.
  for (uint64_t F = 0; F != Filler; ++F) {
    uint64_t Tid = 2 + Workers + (F % FillerThreads);
    uint64_t Lid = 10 + (F % (2 * Pairs));
    acq(T, Tid, Lid);
    rel(T, Tid, Lid);
  }
  for (unsigned P = 0; P != Pairs; ++P)
    abbaPair(T, 2 + 2 * P, 3 + 2 * P, 10 + 2 * P, 11 + 2 * P);
  return T;
}

/// Trace length sweep at a fixed cycle count: verdict cost must track the
/// event count near-linearly (the ISSUE's BM_PredictLinear acceptance).
void BM_PredictLinear(benchmark::State &State) {
  const uint64_t Filler = static_cast<uint64_t>(State.range(0));
  TraceFile Trace = paddedTrace(/*Pairs=*/2, Filler);
  PredictAnalysis Probe = predictDeadlocks(Trace);
  if (Probe.soundCount() != Probe.Cycles.size() || Probe.Cycles.size() != 2)
    State.SkipWithError("unexpected cycle structure");
  for (auto _ : State) {
    PredictAnalysis R = predictDeadlocks(Trace);
    benchmark::DoNotOptimize(R.Predictions.data());
  }
  State.SetComplexityN(static_cast<int64_t>(Trace.Events.size()));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Trace.Events.size()));
}
BENCHMARK(BM_PredictLinear)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 14)
    ->Complexity(benchmark::oN);

/// Verdict sharding across worker threads on a cycle-heavy trace; verdicts
/// are identical for every job count, only the wall clock moves.
void BM_ClosureParallelJobs(benchmark::State &State) {
  const unsigned Jobs = static_cast<unsigned>(State.range(0));
  TraceFile Trace = paddedTrace(/*Pairs=*/24, /*Filler=*/4096);
  PredictOptions Opts;
  Opts.Jobs = Jobs;
  std::vector<AbstractCycle> Cycles = predictDeadlocks(Trace).Cycles;
  if (Cycles.size() != 24)
    State.SkipWithError("unexpected cycle structure");
  for (auto _ : State) {
    std::vector<CyclePrediction> Preds = evaluateCycles(Trace, Cycles, Opts);
    benchmark::DoNotOptimize(Preds.data());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Cycles.size()));
}
BENCHMARK(BM_ClosureParallelJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // namespace

BENCHMARK_MAIN();
