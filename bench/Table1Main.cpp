//===- bench/Table1Main.cpp - Reproduces the paper's Table 1 ---------------===//
//
// For every benchmark row: average uninstrumented runtime, Phase I
// (iGoodlock) runtime, average Phase II (DeadlockFuzzer) runtime, the
// number of potential cycles reported by iGoodlock, the number confirmed
// real by DeadlockFuzzer, the empirical reproduction probability, and the
// average number of thrashings per run — the paper's columns. A final
// control column runs each deadlock-prone benchmark uninstrumented N times
// under a watchdog and counts deadlocks (the paper observed zero).
//
// Knobs: DLF_BENCH_REPS (Phase II repetitions per cycle; paper used 100,
// default 20), DLF_BENCH_NORMAL_RUNS (control runs, default 20),
// DLF_BENCH_TIMEOUT_MS (control watchdog, default 5000).
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "substrates/BenchmarkRegistry.h"
#include "support/Env.h"
#include "support/Table.h"

#include <iostream>

using namespace dlf;

int main() {
  const unsigned Reps =
      static_cast<unsigned>(envUInt("DLF_BENCH_REPS", 20));
  const unsigned NormalRuns =
      static_cast<unsigned>(envUInt("DLF_BENCH_NORMAL_RUNS", 20));
  const uint64_t TimeoutMs = envUInt("DLF_BENCH_TIMEOUT_MS", 5000);

  std::cout << "Table 1: two-phase results per benchmark (reps=" << Reps
            << ", control runs=" << NormalRuns << ")\n\n";

  Table Out({"Benchmark", "Normal ms", "Phase1 ms", "Phase2 ms",
             "iGoodlock", "Confirmed", "Probability", "Avg thrashes",
             "Normal deadlocks"});

  for (const BenchmarkInfo &Info : allBenchmarks()) {
    if (Info.Name == "collections")
      continue; // Figure 2 bundle; Table 1 reports lists and maps rows

    ActiveTesterConfig Config;
    Config.PhaseTwoReps = Reps;
    ActiveTester Tester(Info.Entry, Config);

    // Baseline: average of uninstrumented runs.
    double NormalMs = 0;
    constexpr unsigned BaselineRuns = 5;
    for (unsigned I = 0; I != BaselineRuns; ++I)
      NormalMs += Tester.runPassthrough().WallMs;
    NormalMs /= BaselineRuns;

    // Phase I.
    PhaseOneResult P1 = Tester.runPhaseOne();
    double Phase1Ms = P1.Exec.WallMs;

    // Phase II over every cycle.
    unsigned Confirmed = 0;
    unsigned Hits = 0, Runs = 0;
    uint64_t Thrashes = 0;
    double Phase2Ms = 0;
    for (const AbstractCycle &Cycle : P1.Cycles) {
      CycleFuzzStats Stats = Tester.fuzzCycle(Cycle);
      if (Stats.ReproducedTarget > 0)
        ++Confirmed;
      Hits += Stats.ReproducedTarget;
      Runs += Stats.Runs;
      Thrashes += Stats.TotalThrashes + Stats.TotalForcedUnpauses;
      Phase2Ms += Stats.TotalWallMs;
    }

    // Control: uninstrumented runs under a watchdog.
    unsigned Hung = 0;
    if (!Info.DeadlockFree) {
      for (unsigned I = 0; I != NormalRuns; ++I)
        if (runForkedWithTimeout(Info.Entry, TimeoutMs) ==
            ForkedOutcome::Hung)
          ++Hung;
    }

    Out.addRow({Info.Name, Table::fmt(NormalMs, 2), Table::fmt(Phase1Ms, 2),
                Runs ? Table::fmt(Phase2Ms / Runs, 2) : "-",
                Table::fmt(static_cast<uint64_t>(P1.Cycles.size())),
                Table::fmt(static_cast<uint64_t>(Confirmed)),
                Runs ? Table::fmt(static_cast<double>(Hits) / Runs, 3) : "-",
                Runs ? Table::fmt(static_cast<double>(Thrashes) / Runs, 2)
                     : "-",
                Info.DeadlockFree
                    ? "-"
                    : Table::fmt(static_cast<uint64_t>(Hung)) + "/" +
                          Table::fmt(static_cast<uint64_t>(NormalRuns))});
  }

  Out.print(std::cout);
  std::cout << "\nPaper reference (Table 1): deadlock-free rows report 0 "
               "cycles; logging 3/3 at p=1.00; swing 1/1 at p=1.00; dbcp 2/2 "
               "at p=1.00; lists 27/27 at p=0.99; maps 20/20 at p=0.52; "
               "jigsaw confirms a minority of reported cycles (29/283 at "
               "p=0.214) — shapes, not absolute numbers, are the claim.\n";
  return 0;
}
