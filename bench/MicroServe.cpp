//===- bench/MicroServe.cpp - Status-plane publish micro-benchmarks ---------===//
//
// Measures what the HTTP observability plane costs the analysis hot path.
// The acceptance number is BM_StatusPublishNoServer: a campaign run
// without --status-addr pays exactly one null-pointer test per publish
// site, so the no-server path must be indistinguishable from free.
// BM_StatusPublishLive prices the real publish (struct copy under a mutex
// plus a self-pipe write) and BM_StatusJsonRender the scrape-time JSON
// serialization, both off the critical path by design but worth watching.
//
//===----------------------------------------------------------------------===//

#include "serve/StatusServer.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

using namespace dlf;
using namespace dlf::serve;

namespace {

/// A representative mid-campaign snapshot: a handful of cycles, a few
/// worker lanes — the shape BuildStatus produces for the paper benchmarks.
CampaignStatus sampleStatus() {
  CampaignStatus St;
  St.Tool = "dlf-run";
  St.Benchmark = "dbcp";
  St.Phase = "phase2";
  St.Jobs = 4;
  St.CyclesFound = 6;
  St.RepsTotal = 36;
  St.RepsCommitted = 17;
  St.RepsExecuted = 17;
  for (unsigned C = 0; C < 6; ++C) {
    CycleStatus Cy;
    Cy.Index = C;
    Cy.RepsTotal = 6;
    Cy.RepsDone = (17 + C) % 7;
    Cy.Reproduced = Cy.RepsDone / 2;
    Cy.Classification = "schedulable";
    St.PerCycle.push_back(Cy);
  }
  for (uint32_t L = 0; L < 4; ++L) {
    WorkerStatus W;
    W.Lane = L;
    W.Busy = (L % 2) == 0;
    W.Cycle = L;
    W.Rep = L + 1;
    St.Workers.push_back(W);
  }
  St.RepsPerSecond = 123.4;
  St.EtaSeconds = 1.9;
  return St;
}

/// The default campaign configuration: Status is null, every publish site
/// reduces to one pointer test. This is the path every server-less run
/// takes and the one the "zero measurable overhead" acceptance criterion
/// is about.
void BM_StatusPublishNoServer(benchmark::State &State) {
  StatusSink *Sink = nullptr;
  const CampaignStatus St = sampleStatus();
  for (auto _ : State) {
    if (Sink)
      Sink->publishStatus(St);
    benchmark::DoNotOptimize(Sink);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_StatusPublishNoServer);

/// A real publish against a live server with no connected scrapers: the
/// struct copy under the mutex plus the one-byte wakeup write.
void BM_StatusPublishLive(benchmark::State &State) {
  ServerOptions Opts;
  Opts.Tool = "bench";
  std::string Err;
  std::unique_ptr<StatusServer> Server =
      StatusServer::start(std::move(Opts), &Err);
  if (!Server) {
    State.SkipWithError(Err.c_str());
    return;
  }
  const CampaignStatus St = sampleStatus();
  for (auto _ : State)
    Server->publishStatus(St);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_StatusPublishLive);

/// Scrape-time serialization of /status — runs on the server thread per
/// GET, never on the analysis thread.
void BM_StatusJsonRender(benchmark::State &State) {
  const CampaignStatus St = sampleStatus();
  for (auto _ : State) {
    std::string Json = St.toJson();
    benchmark::DoNotOptimize(Json.data());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_StatusJsonRender);

} // namespace

BENCHMARK_MAIN();
