//===- bench/Fig1Example.cpp - Reproduces the Figure 1 / §3 discussion ------===//
//
// The paper's worked example: the Figure 1 two-thread program deadlocks
// with probability ~1 under DeadlockFuzzer; the three-thread variant
// (lines 24/27 uncommented) still deadlocks with probability ~1 *with*
// thread/object abstractions, but drops to ~0.75 without them (the paper's
// §3 analysis: the third thread is paused by mistake with probability 0.5
// and the run then recovers only half the time). Also prints the control:
// uninstrumented runs never deadlock.
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"
#include "support/Env.h"
#include "support/Table.h"

#include <iostream>

using namespace dlf;

namespace {

/// Figure 1 with an optional third thread (lines 24 and 27).
void figure1Program(bool WithThirdThread) {
  DLF_SCOPE("fig1::main");
  Mutex O1("o1", DLF_NAMED_SITE("fig1:22"), nullptr);
  Mutex O2("o2", DLF_NAMED_SITE("fig1:23"), nullptr);
  Mutex O3("o3", DLF_NAMED_SITE("fig1:24"), nullptr);

  auto RunBody = [](Mutex &L1, Mutex &L2, bool Flag) {
    DLF_SCOPE("MyThread::run");
    if (Flag)
      for (int I = 0; I != 4; ++I)
        yieldNow(); // f1()..f4()
    MutexGuard Outer(L1, DLF_NAMED_SITE("fig1:15"));
    MutexGuard Inner(L2, DLF_NAMED_SITE("fig1:16"));
  };

  Thread T1([&] { RunBody(O1, O2, true); }, "thread1",
            DLF_NAMED_SITE("fig1:25"));
  Thread T2([&] { RunBody(O2, O1, false); }, "thread2",
            DLF_NAMED_SITE("fig1:26"));
  if (WithThirdThread) {
    Thread T3([&] { RunBody(O2, O3, false); }, "thread3",
              DLF_NAMED_SITE("fig1:27"));
    T3.join();
  }
  T1.join();
  T2.join();
}

double reproductionProbability(bool WithThirdThread, AbstractionKind Kind,
                               unsigned Reps) {
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = Reps;
  Config.Base.Kind = Kind;
  ActiveTester Tester([WithThirdThread] { figure1Program(WithThirdThread); },
                      Config);
  ActiveTesterReport Report = Tester.run();
  if (Report.PerCycle.empty())
    return 0.0;
  // Figure 1 has exactly one potential cycle (o1/o2).
  return Report.PerCycle.front().probability();
}

} // namespace

int main() {
  const unsigned Reps = static_cast<unsigned>(envUInt("DLF_BENCH_REPS", 40));
  std::cout << "Figure 1 / §3 worked example (reps=" << Reps << ")\n\n";

  Table Out({"Program", "Abstraction", "Probability"});
  Out.addRow({"two threads", "exec-index",
              Table::fmt(reproductionProbability(false,
                                                 AbstractionKind::ExecutionIndex,
                                                 Reps),
                         2)});
  Out.addRow({"two threads", "trivial",
              Table::fmt(reproductionProbability(false,
                                                 AbstractionKind::Trivial,
                                                 Reps),
                         2)});
  Out.addRow({"three threads", "exec-index",
              Table::fmt(reproductionProbability(true,
                                                 AbstractionKind::ExecutionIndex,
                                                 Reps),
                         2)});
  Out.addRow({"three threads", "trivial",
              Table::fmt(reproductionProbability(true,
                                                 AbstractionKind::Trivial,
                                                 Reps),
                         2)});
  Out.print(std::cout);

  unsigned Hung = 0;
  constexpr unsigned ControlRuns = 50;
  for (unsigned I = 0; I != ControlRuns; ++I)
    if (runForkedWithTimeout([] { figure1Program(false); },
                             /*TimeoutMs=*/2000) == ForkedOutcome::Hung)
      ++Hung;
  std::cout << "\ncontrol: uninstrumented deadlocks " << Hung << "/"
            << ControlRuns << "\n";
  std::cout << "\nPaper reference (§3): with abstractions the deadlock is "
               "created with probability 1; without them the third thread "
               "is paused by mistake and the probability drops to ~0.75.\n";
  return 0;
}
