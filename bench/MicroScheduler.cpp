//===- bench/MicroScheduler.cpp - Runtime mode overhead ---------------------===//
//
// Measures the cost of one execution of a lock-heavy workload under the
// three runtime modes: Passthrough (plain mutexes), Record (real
// concurrency + dependency recording) and Active (serialized token-passing
// scheduler). The Active/Passthrough ratio is the instrumentation overhead
// the paper reports as "within a factor of six" in Table 1's runtime
// columns; serialization makes ours workload-dependent, which the bench
// makes visible.
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "fuzzer/RandomStrategy.h"
#include "igoodlock/LockDependency.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"
#include "telemetry/Metrics.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace dlf;

namespace {

/// T threads x E critical sections over a handful of shared locks, always
/// in a consistent order (no deadlocks; pure scheduling overhead).
void lockHeavyWorkload(unsigned Threads, unsigned Events) {
  DLF_SCOPE("micro::lockHeavy");
  Mutex A("a", DLF_SITE(), nullptr);
  Mutex B("b", DLF_SITE(), nullptr);
  std::vector<Thread> Workers;
  for (unsigned T = 0; T != Threads; ++T) {
    Workers.emplace_back(Thread(
        [&A, &B, Events] {
          DLF_SCOPE("micro::worker");
          for (unsigned E = 0; E != Events; ++E) {
            MutexGuard Outer(A, DLF_NAMED_SITE("micro/outer"));
            MutexGuard Inner(B, DLF_NAMED_SITE("micro/inner"));
          }
        },
        "w" + std::to_string(T), DLF_SITE()));
  }
  for (Thread &W : Workers)
    W.join();
}

void BM_ModePassthrough(benchmark::State &State) {
  for (auto _ : State) {
    Options Opts;
    Opts.Mode = RunMode::Passthrough;
    Runtime RT(Opts);
    RT.run([&] {
      lockHeavyWorkload(static_cast<unsigned>(State.range(0)), 64);
    });
  }
}
BENCHMARK(BM_ModePassthrough)->Arg(2)->Arg(4);

void BM_ModeRecord(benchmark::State &State) {
  for (auto _ : State) {
    Options Opts;
    Opts.Mode = RunMode::Record;
    LockDependencyLog Log;
    Runtime RT(Opts, nullptr, &Log);
    RT.run([&] {
      lockHeavyWorkload(static_cast<unsigned>(State.range(0)), 64);
    });
    benchmark::DoNotOptimize(Log.entries().size());
  }
}
BENCHMARK(BM_ModeRecord)->Arg(2)->Arg(4);

void BM_ModeActive(benchmark::State &State) {
  for (auto _ : State) {
    Options Opts;
    Opts.Mode = RunMode::Active;
    Opts.Seed = 42;
    SimpleRandomStrategy Strategy;
    Runtime RT(Opts, &Strategy);
    ExecutionResult R = RT.run([&] {
      lockHeavyWorkload(static_cast<unsigned>(State.range(0)), 64);
    });
    benchmark::DoNotOptimize(R.Steps);
  }
}
BENCHMARK(BM_ModeActive)->Arg(2)->Arg(4);

/// Active mode with the metrics registry armed: bounds the telemetry cost
/// (bulk end-of-run recording — the hot path itself only ever pays one
/// relaxed load, in the disabled case too). Compare against BM_ModeActive;
/// the gap is the overhead budget DESIGN.md §10 claims is negligible.
void BM_ModeActiveTelemetry(benchmark::State &State) {
  telemetry::setEnabled(true);
  for (auto _ : State) {
    Options Opts;
    Opts.Mode = RunMode::Active;
    Opts.Seed = 42;
    SimpleRandomStrategy Strategy;
    Runtime RT(Opts, &Strategy);
    ExecutionResult R = RT.run([&] {
      lockHeavyWorkload(static_cast<unsigned>(State.range(0)), 64);
    });
    benchmark::DoNotOptimize(R.Steps);
  }
  telemetry::setEnabled(false);
  telemetry::Registry::global().reset();
}
BENCHMARK(BM_ModeActiveTelemetry)->Arg(2)->Arg(4);

/// The avoidance (immunity) extension's overhead: the same lock-heavy
/// workload with an unrelated cycle spec armed — every acquire pays the
/// component-matching check without ever matching.
void BM_ModeActiveWithImmunity(benchmark::State &State) {
  // Build a spec from a tiny unrelated ABBA program once.
  static const std::vector<CycleSpec> Immunity = [] {
    auto Abba = [] {
      Mutex A("imm-a", DLF_SITE());
      Mutex B("imm-b", DLF_SITE());
      Thread T1([&] {
        MutexGuard F(A, DLF_NAMED_SITE("immb:t1a"));
        MutexGuard S(B, DLF_NAMED_SITE("immb:t1b"));
      });
      Thread T2([&] {
        MutexGuard F(B, DLF_NAMED_SITE("immb:t2b"));
        MutexGuard S(A, DLF_NAMED_SITE("immb:t2a"));
      });
      T1.join();
      T2.join();
    };
    ActiveTesterConfig Config;
    Config.PhaseTwoReps = 3;
    ActiveTester Tester(Abba, Config);
    return ActiveTester::buildImmunity(Tester.run());
  }();

  for (auto _ : State) {
    Options Opts;
    Opts.Mode = RunMode::Active;
    Opts.Seed = 42;
    SimpleRandomStrategy Strategy;
    Runtime RT(Opts, &Strategy, nullptr, &Immunity);
    ExecutionResult R = RT.run([&] {
      lockHeavyWorkload(static_cast<unsigned>(State.range(0)), 64);
    });
    benchmark::DoNotOptimize(R.Steps);
  }
}
BENCHMARK(BM_ModeActiveWithImmunity)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();
