//===- bench/MicroRing.cpp - Event-ring transport micro-benchmarks ---------===//
//
// Measures the shared-memory event ring (src/ring): the per-record cost of
// the wait-free writer hot path, the observer's drain/merge throughput,
// and — the number the tentpole exists for — the per-event cost of the
// preload's text-trace path (lock + dladdr + snprintf + stdio) against one
// ring write with a cached site id.
//
//===----------------------------------------------------------------------===//

#include "ring/Ring.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>
#include <dlfcn.h>
#include <pthread.h>

using namespace dlf;
using namespace dlf::ring;

namespace {

struct BenchRing {
  std::unique_ptr<RingReader> Reader;
  std::unique_ptr<RingWriter> Writer;

  explicit BenchRing(uint32_t Slots) {
    std::string Err;
    int Fd = -1;
    Reader.reset(RingReader::createMemfd(4, Slots, &Fd, &Err));
    if (Reader)
      Writer.reset(RingWriter::attachFd(Fd, &Err));
  }
};

/// One ring write per iteration, with a background drainer keeping the
/// shard from filling: the steady-state hot path of a preloaded target
/// under an attached observer.
void BM_RingWrite(benchmark::State &State) {
  BenchRing B(1u << 16);
  if (!B.Writer) {
    State.SkipWithError("ring setup failed");
    return;
  }
  std::atomic<bool> Stop{false};
  std::thread Drainer([&] {
    std::vector<Record> Out;
    while (!Stop.load(std::memory_order_relaxed)) {
      Out.clear();
      B.Reader->drainPass(Out);
    }
  });

  ShardHandle H = B.Writer->claimShard();
  uint32_t Site = B.Writer->internSite("bench+0x10");
  for (auto _ : State)
    benchmark::DoNotOptimize(
        B.Writer->write(H, RecordKind::Acquire, 1, 0x1000, Site));
  Stop.store(true, std::memory_order_relaxed);
  Drainer.join();
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RingWrite);

/// Drain throughput: merge-sorting one full batch of records out of the
/// shards, per-record cost.
void BM_RingDrain(benchmark::State &State) {
  const uint32_t Batch = static_cast<uint32_t>(State.range(0));
  BenchRing B(1u << 16);
  if (!B.Writer) {
    State.SkipWithError("ring setup failed");
    return;
  }
  ShardHandle H = B.Writer->claimShard();
  std::vector<Record> Out;
  for (auto _ : State) {
    State.PauseTiming();
    for (uint32_t I = 0; I != Batch; ++I)
      B.Writer->write(H, RecordKind::Acquire, 1, 0x1000, 0);
    Out.clear();
    State.ResumeTiming();
    B.Reader->drainPass(Out);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * Batch);
}
BENCHMARK(BM_RingDrain)->Arg(1024)->Arg(4096);

/// The acceptance-criterion comparison. Arg(0) models the text-trace event
/// path as the preload executes it per event: take the global state lock,
/// resolve the call site with dladdr, format the line, push it through
/// stdio. Arg(1) is the ring path: one wait-free fixed-size write, site id
/// cached. Compare the two ns/op numbers in BENCH_ring.json.
void BM_PreloadEventTextVsRing(benchmark::State &State) {
  if (State.range(0) == 0) {
    pthread_mutex_t Lock = PTHREAD_MUTEX_INITIALIZER;
    FILE *Sink = std::fopen("/dev/null", "w");
    if (!Sink) {
      State.SkipWithError("cannot open /dev/null");
      return;
    }
    void *Caller = reinterpret_cast<void *>(&BM_RingWrite);
    for (auto _ : State) {
      pthread_mutex_lock(&Lock);
      Dl_info Info;
      char Site[128];
      if (dladdr(Caller, &Info) && Info.dli_sname)
        std::snprintf(Site, sizeof(Site), "%s+0x%zx", Info.dli_sname,
                      static_cast<size_t>(
                          reinterpret_cast<char *>(Caller) -
                          reinterpret_cast<char *>(Info.dli_saddr)));
      else
        std::snprintf(Site, sizeof(Site), "addr+0x%zx",
                      reinterpret_cast<size_t>(Caller));
      std::fprintf(Sink, "A %u %u %s\n", 1u, 1u, Site);
      pthread_mutex_unlock(&Lock);
    }
    std::fclose(Sink);
  } else {
    BenchRing B(1u << 16);
    if (!B.Writer) {
      State.SkipWithError("ring setup failed");
      return;
    }
    std::atomic<bool> Stop{false};
    std::thread Drainer([&] {
      std::vector<Record> Out;
      while (!Stop.load(std::memory_order_relaxed)) {
        Out.clear();
        B.Reader->drainPass(Out);
      }
    });
    ShardHandle H = B.Writer->claimShard();
    uint32_t Site = B.Writer->internSite("bench+0x10");
    for (auto _ : State)
      benchmark::DoNotOptimize(
          B.Writer->write(H, RecordKind::Acquire, 1, 0x1000, Site));
    Stop.store(true, std::memory_order_relaxed);
    Drainer.join();
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_PreloadEventTextVsRing)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("ring");

} // namespace

BENCHMARK_MAIN();
