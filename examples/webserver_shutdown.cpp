//===- examples/webserver_shutdown.cpp - The Jigsaw scenario ---------------===//
//
// Runs the full pipeline on the mini web server substrate (paper Figure 3:
// the SocketClientFactory / csList shutdown deadlock) and separates the
// report into confirmed real deadlocks and never-confirmed potential ones,
// including the §5.4 happens-before false positives — the experience of
// pointing DeadlockFuzzer at a large, messy codebase.
//
// Build & run:  ./build/examples/webserver_shutdown
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "substrates/jigsaw/Jigsaw.h"

#include <iostream>

using namespace dlf;

int main() {
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 10;
  ActiveTester Tester(jigsaw::runJigsawHarness, Config);

  ActiveTesterReport Report = Tester.run();
  std::cout << "iGoodlock reported " << Report.PhaseOne.Cycles.size()
            << " potential deadlock cycles\n\n";

  unsigned Confirmed = 0, Unconfirmed = 0;
  std::cout << "== confirmed real deadlocks ==\n";
  for (const CycleFuzzStats &Stats : Report.PerCycle) {
    if (Stats.ReproducedTarget == 0)
      continue;
    ++Confirmed;
    std::cout << "p=" << Stats.probability() << " thrashes "
              << Stats.avgThrashes() << "\n"
              << Stats.Cycle.toString();
  }

  std::cout << "\n== never confirmed (false positives or low-probability) ==\n";
  for (const CycleFuzzStats &Stats : Report.PerCycle) {
    if (Stats.ReproducedTarget != 0)
      continue;
    ++Unconfirmed;
    bool CachedThread = false;
    for (const CycleComponent &C : Stats.Cycle.Components)
      for (Label Site : C.Context)
        if (Site.text().find("CachedThread") != std::string::npos)
          CachedThread = true;
    std::cout << (CachedThread ? "[happens-before infeasible] "
                               : "[not reproduced] ")
              << Stats.Cycle.toString();
  }

  std::cout << "\nconfirmed " << Confirmed << " / reported "
            << (Confirmed + Unconfirmed) << "\n";
  return 0;
}
