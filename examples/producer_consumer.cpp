//===- examples/producer_consumer.cpp - Condition variables & healing ------===//
//
// A bounded-buffer pipeline with two bugs:
//
//   1. a resource deadlock: the flush path locks [stats -> buffer] while
//      the producer locks [buffer -> stats];
//   2. a communication deadlock: with QUIT_BUG enabled, the consumer can
//      wait forever on an empty buffer after the producer quit without a
//      final notify.
//
// The example runs the two-phase pipeline to find and confirm bug 1, shows
// the runtime classifying bug 2 as a *communication* stall, and finally
// demonstrates the avoidance extension: with immunity built from the
// confirmed cycle, the buggy pipeline completes under every seed.
//
// Build & run:  ./build/examples/producer_consumer
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "fuzzer/RandomStrategy.h"
#include "runtime/ConditionVariable.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <iostream>
#include <vector>

using namespace dlf;

namespace {

struct Pipeline {
  Mutex BufferLock{"bufferLock", DLF_NAMED_SITE("pc:newBufferLock")};
  Mutex StatsLock{"statsLock", DLF_NAMED_SITE("pc:newStatsLock")};
  ConditionVariable NotEmpty{"notEmpty"};
  std::vector<int> Buffer;
  unsigned Produced = 0, Consumed = 0, Flushes = 0;
  bool Done = false;

  void produce(int Value) {
    DLF_SCOPE("Pipeline::produce");
    MutexGuard Guard(BufferLock, DLF_NAMED_SITE("pc:produce/buffer"));
    Buffer.push_back(Value);
    {
      // Bug 1, half A: stats nested under buffer.
      MutexGuard Stats(StatsLock, DLF_NAMED_SITE("pc:produce/stats"));
      ++Produced;
    }
    NotEmpty.notifyOne();
  }

  bool consume(int &Out) {
    DLF_SCOPE("Pipeline::consume");
    MutexGuard Guard(BufferLock, DLF_NAMED_SITE("pc:consume/buffer"));
    NotEmpty.waitUntil(BufferLock, [&] { return !Buffer.empty() || Done; },
                       DLF_NAMED_SITE("pc:consume/reacquire"));
    if (Buffer.empty())
      return false;
    Out = Buffer.front();
    Buffer.erase(Buffer.begin());
    ++Consumed;
    return true;
  }

  void flushStats() {
    DLF_SCOPE("Pipeline::flushStats");
    // Bug 1, half B: buffer nested under stats — the inversion.
    MutexGuard Stats(StatsLock, DLF_NAMED_SITE("pc:flush/stats"));
    MutexGuard Guard(BufferLock, DLF_NAMED_SITE("pc:flush/buffer"));
    ++Flushes;
  }

  void shutdown(bool Buggy) {
    DLF_SCOPE("Pipeline::shutdown");
    MutexGuard Guard(BufferLock, DLF_NAMED_SITE("pc:shutdown/buffer"));
    Done = true;
    if (!Buggy)
      NotEmpty.notifyAll(); // forgetting this is bug 2
  }
};

void pipelineProgram(bool QuitBug) {
  DLF_SCOPE("pc::program");
  Pipeline P;
  Thread Producer(
      [&] {
        DLF_SCOPE("pc::producer");
        for (int I = 0; I != 6; ++I)
          P.produce(I);
        P.shutdown(QuitBug);
      },
      "producer", DLF_NAMED_SITE("pc:spawnProducer"));
  Thread Consumer(
      [&] {
        DLF_SCOPE("pc::consumer");
        int Value;
        while (P.consume(Value)) {
        }
      },
      "consumer", DLF_NAMED_SITE("pc:spawnConsumer"));
  Thread Monitor(
      [&] {
        DLF_SCOPE("pc::monitor");
        for (int I = 0; I != 3; ++I) {
          for (int Y = 0; Y != 4; ++Y)
            yieldNow();
          P.flushStats();
        }
      },
      "monitor", DLF_NAMED_SITE("pc:spawnMonitor"));
  Producer.join();
  Consumer.join();
  Monitor.join();
}

} // namespace

int main() {
  std::cout << "== bug 1: resource deadlock (buffer/stats inversion) ==\n";
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 15;
  ActiveTester Tester([] { pipelineProgram(false); }, Config);
  ActiveTesterReport Report = Tester.run();
  std::cout << "potential cycles: " << Report.PhaseOne.Cycles.size() << "\n";
  for (const CycleFuzzStats &Stats : Report.PerCycle)
    std::cout << "confirmed " << Stats.ReproducedTarget << "/" << Stats.Runs
              << " (p=" << Stats.probability() << ")\n"
              << Stats.Cycle.toString();

  std::cout << "\n== bug 2: communication deadlock (lost final notify) ==\n";
  unsigned CommStalls = 0;
  constexpr unsigned Seeds = 20;
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
    Options Opts;
    Opts.Mode = RunMode::Active;
    Opts.Seed = Seed;
    SimpleRandomStrategy Random;
    Runtime RT(Opts, &Random);
    ExecutionResult R = RT.run([] { pipelineProgram(true); });
    if (R.Stalled && R.CommunicationStall)
      ++CommStalls;
  }
  std::cout << "communication stalls detected in " << CommStalls << "/"
            << Seeds << " random schedules\n";

  std::cout << "\n== healing: immunity against the confirmed cycle ==\n";
  std::vector<CycleSpec> Immunity = ActiveTester::buildImmunity(Report);
  unsigned Healed = 0;
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed)
    if (Tester.runWithImmunity(Immunity, Seed).Completed)
      ++Healed;
  std::cout << "with avoidance armed, " << Healed << "/" << Seeds
            << " runs complete (the inversion stays infeasible)\n";
  return 0;
}
