//===- examples/bank_transfer.cpp - Find it, confirm it, then fix it -------===//
//
// The classic transfer deadlock: transfer(from, to) locks the two account
// monitors in argument order, so concurrent transfer(a, b) and
// transfer(b, a) can deadlock. This example:
//
//   1. runs the two-phase pipeline on the buggy bank and confirms the
//      deadlock;
//   2. runs it again on the fixed bank (locks ordered by account id) and
//      shows iGoodlock reports nothing — the developer workflow the paper
//      envisions.
//
// Build & run:  ./build/examples/bank_transfer
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <iostream>
#include <memory>
#include <vector>

using namespace dlf;

namespace {

/// A bank whose transfer() can be built with or without the lock-ordering
/// discipline.
class Bank {
public:
  Bank(unsigned Accounts, bool Ordered) : Ordered(Ordered) {
    DLF_NEW_OBJECT(this, nullptr);
    for (unsigned I = 0; I != Accounts; ++I) {
      Balances.push_back(100);
      Monitors.push_back(std::make_unique<Mutex>(
          "account" + std::to_string(I), DLF_NAMED_SITE("bank:newAccount"),
          this));
    }
  }

  void transfer(unsigned From, unsigned To, int Amount) {
    DLF_SCOPE("Bank::transfer");
    unsigned First = From, Second = To;
    if (Ordered && First > Second)
      std::swap(First, Second); // the fix: global lock order
    MutexGuard A(*Monitors[First], DLF_NAMED_SITE("bank:lockFirst"));
    MutexGuard B(*Monitors[Second], DLF_NAMED_SITE("bank:lockSecond"));
    Balances[From] -= Amount;
    Balances[To] += Amount;
  }

  int balance(unsigned Account) const {
    DLF_SCOPE("Bank::balance");
    MutexGuard Guard(*Monitors[Account], DLF_NAMED_SITE("bank:balance"));
    return Balances[Account];
  }

private:
  bool Ordered;
  std::vector<int> Balances;
  std::vector<std::unique_ptr<Mutex>> Monitors;
};

void bankProgram(bool Ordered) {
  DLF_SCOPE("bank::program");
  Bank TheBank(/*Accounts=*/3, Ordered);
  Thread Alice(
      [&] {
        DLF_SCOPE("bank::alice");
        TheBank.transfer(0, 1, 10);
        TheBank.transfer(1, 2, 5);
      },
      "alice", DLF_NAMED_SITE("bank:spawnAlice"));
  Thread Bob(
      [&] {
        DLF_SCOPE("bank::bob");
        for (int I = 0; I != 6; ++I)
          yieldNow(); // audit paperwork first
        TheBank.transfer(1, 0, 20);
      },
      "bob", DLF_NAMED_SITE("bank:spawnBob"));
  Alice.join();
  Bob.join();
  (void)TheBank.balance(0);
}

void report(const char *Title, bool Ordered) {
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 10;
  ActiveTester Tester([Ordered] { bankProgram(Ordered); }, Config);
  ActiveTesterReport Result = Tester.run();

  std::cout << "== " << Title << " ==\n";
  std::cout << "potential cycles: " << Result.PhaseOne.Cycles.size() << "\n";
  for (const CycleFuzzStats &Stats : Result.PerCycle)
    std::cout << "  confirmed " << Stats.ReproducedTarget << "/" << Stats.Runs
              << ":\n"
              << Stats.Cycle.toString();
  std::cout << "\n";
}

} // namespace

int main() {
  report("buggy bank (argument-order locking)", /*Ordered=*/false);
  report("fixed bank (id-order locking)", /*Ordered=*/true);
  return 0;
}
