//===- examples/quickstart.cpp - Figure 1, end to end ----------------------===//
//
// The paper's Figure 1 program: two threads acquire two locks in opposite
// orders, but the deadlock almost never happens under normal schedules
// because the first thread runs long methods first. This example runs the
// full DeadlockFuzzer pipeline on it:
//
//   1. Phase I  — observe one execution, run iGoodlock, print the abstract
//                 potential deadlock cycle;
//   2. Phase II — bias the random scheduler toward that cycle and create
//                 the real deadlock with probability ~1.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <iostream>

using namespace dlf;

namespace {

/// Figure 1's MyThread: runs long methods if flagged, then acquires its two
/// locks in order.
class MyThread {
public:
  MyThread(Mutex &L1, Mutex &L2, bool Flag) : L1(L1), L2(L2), Flag(Flag) {}

  void run() {
    DLF_SCOPE("MyThread::run");
    if (Flag) {
      f1();
      f2();
      f3();
      f4();
    }
    MutexGuard Outer(L1, DLF_NAMED_SITE("fig1:line15"));
    MutexGuard Inner(L2, DLF_NAMED_SITE("fig1:line16"));
  }

private:
  // "Some long running methods": scheduling points under instrumentation,
  // plain work otherwise.
  void f1() { DLF_SCOPE("MyThread::f1"); yieldNow(); }
  void f2() { DLF_SCOPE("MyThread::f2"); yieldNow(); }
  void f3() { DLF_SCOPE("MyThread::f3"); yieldNow(); }
  void f4() { DLF_SCOPE("MyThread::f4"); yieldNow(); }

  Mutex &L1;
  Mutex &L2;
  bool Flag;
};

void figure1Program() {
  Mutex O1("o1", DLF_NAMED_SITE("fig1:line22"), nullptr);
  Mutex O2("o2", DLF_NAMED_SITE("fig1:line23"), nullptr);
  MyThread Body1(O1, O2, /*Flag=*/true);
  MyThread Body2(O2, O1, /*Flag=*/false);
  Thread T1([&] { Body1.run(); }, "thread1", DLF_NAMED_SITE("fig1:line25"));
  Thread T2([&] { Body2.run(); }, "thread2", DLF_NAMED_SITE("fig1:line26"));
  T1.join();
  T2.join();
}

} // namespace

int main() {
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 20;
  ActiveTester Tester(figure1Program, Config);

  std::cout << "== Phase I: observe + iGoodlock ==\n";
  PhaseOneResult P1 = Tester.runPhaseOne();
  std::cout << "dependency entries: " << P1.Log.entries().size() << "\n";
  for (const AbstractCycle &Cycle : P1.Cycles)
    std::cout << Cycle.toString();

  std::cout << "\n== Phase II: active random deadlock creation ==\n";
  for (const AbstractCycle &Cycle : P1.Cycles) {
    CycleFuzzStats Stats = Tester.fuzzCycle(Cycle);
    std::cout << "reproduced " << Stats.ReproducedTarget << "/" << Stats.Runs
              << " (probability " << Stats.probability() << ", avg thrashes "
              << Stats.avgThrashes() << ")\n";
  }

  std::cout << "\n== Control: 20 uninstrumented runs ==\n";
  unsigned Hangs = 0;
  for (int I = 0; I != 20; ++I)
    if (runForkedWithTimeout(figure1Program, /*TimeoutMs=*/2000) ==
        ForkedOutcome::Hung)
      ++Hangs;
  std::cout << "deadlocks under normal testing: " << Hangs << "/20\n";
  return 0;
}
