//===- examples/dining_philosophers.cpp - Length-N deadlock cycles ---------===//
//
// Dining philosophers without an ordering discipline: philosopher i picks
// up fork i, then fork (i+1) mod N — a potential deadlock cycle of length
// N. This exercises iGoodlock's iterative deepening (all cycles of length
// k are found before any of length k+1) and shows DeadlockFuzzer creating
// a cycle that needs *all* N threads paused at the right places.
//
// Build & run:  ./build/examples/dining_philosophers [N]
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

using namespace dlf;

namespace {

unsigned PhilosopherCount = 4;

void dinnerProgram() {
  DLF_SCOPE("dining::dinner");
  std::vector<std::unique_ptr<Mutex>> Forks;
  for (unsigned I = 0; I != PhilosopherCount; ++I)
    Forks.push_back(std::make_unique<Mutex>("fork" + std::to_string(I),
                                            DLF_NAMED_SITE("dining:newFork"),
                                            nullptr));

  std::vector<Thread> Philosophers;
  for (unsigned I = 0; I != PhilosopherCount; ++I) {
    Mutex &Left = *Forks[I];
    Mutex &Right = *Forks[(I + 1) % PhilosopherCount];
    Philosophers.emplace_back(Thread(
        [&Left, &Right, I] {
          DLF_SCOPE("dining::philosopher");
          // Think for a while (staggered, so the table rarely wedges on
          // its own).
          for (unsigned T = 0; T != 2 * I; ++T)
            yieldNow();
          MutexGuard First(Left, DLF_NAMED_SITE("dining:pickLeft"));
          MutexGuard Second(Right, DLF_NAMED_SITE("dining:pickRight"));
          // Eat.
        },
        "philosopher" + std::to_string(I), DLF_NAMED_SITE("dining:spawn")));
  }
  for (Thread &P : Philosophers)
    P.join();
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1)
    PhilosopherCount = static_cast<unsigned>(std::atoi(Argv[1]));
  if (PhilosopherCount < 2 || PhilosopherCount > 8) {
    std::cerr << "philosopher count must be in [2, 8]\n";
    return 1;
  }

  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 10;
  Config.Goodlock.MaxCycleLength = PhilosopherCount + 1;
  ActiveTester Tester(dinnerProgram, Config);

  ActiveTesterReport Report = Tester.run();
  std::cout << "philosophers: " << PhilosopherCount << "\n";
  std::cout << "potential cycles: " << Report.PhaseOne.Cycles.size() << "\n";
  for (const CycleFuzzStats &Stats : Report.PerCycle) {
    std::cout << "cycle of length " << Stats.Cycle.Components.size()
              << ": reproduced " << Stats.ReproducedTarget << "/" << Stats.Runs
              << " (avg thrashes " << Stats.avgThrashes() << ")\n";
  }
  return 0;
}
