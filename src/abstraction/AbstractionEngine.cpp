//===- abstraction/AbstractionEngine.cpp - Object abstraction facade -------===//

#include "abstraction/AbstractionEngine.h"

#include <cassert>

using namespace dlf;

std::pair<ObjectId, AbstractionSet>
AbstractionEngine::registerCreation(const void *Obj, const void *Parent,
                                    Label Site, IndexingState &Index) {
  assert(Obj && "cannot register a null object");
  // The execution-indexing abstraction is computed against the creating
  // thread's private state; only the shared maps need the mutex.
  AbstractionSet Abs;
  Abs.Index = Index.onNew(Site, IndexDepth);

  std::lock_guard<std::mutex> Guard(Mu);
  ObjectId Id(NextObjectId++);
  AddressToId[Obj] = Id;

  ObjectId ParentId;
  if (Parent) {
    auto It = AddressToId.find(Parent);
    if (It != AddressToId.end())
      ParentId = It->second;
  }
  Creations.recordCreation(Id, ParentId, Site);
  Abs.KObject = Creations.computeAbsO(Id, KObjectDepth);
  return {Id, Abs};
}

void AbstractionEngine::forgetAddress(const void *Obj) {
  std::lock_guard<std::mutex> Guard(Mu);
  AddressToId.erase(Obj);
}

ObjectId AbstractionEngine::lookup(const void *Obj) const {
  std::lock_guard<std::mutex> Guard(Mu);
  auto It = AddressToId.find(Obj);
  return It == AddressToId.end() ? ObjectId() : It->second;
}

size_t AbstractionEngine::creationCount() const {
  std::lock_guard<std::mutex> Guard(Mu);
  return Creations.size();
}
