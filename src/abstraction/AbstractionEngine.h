//===- abstraction/AbstractionEngine.h - Object abstraction facade -*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the two abstraction schemes together. The engine assigns ObjectIds
/// to registered heap objects, maintains the CreationMap, and — at each
/// creation event — computes the full AbstractionSet (k-object-sensitive
/// and execution-indexing values) for the new object. Computing all schemes
/// eagerly lets one Phase I run feed every Phase II variant of Figure 2.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_ABSTRACTION_ABSTRACTIONENGINE_H
#define DLF_ABSTRACTION_ABSTRACTIONENGINE_H

#include "abstraction/CreationMap.h"
#include "abstraction/ExecutionIndex.h"
#include "event/Abstraction.h"
#include "event/Ids.h"

#include <mutex>
#include <unordered_map>

namespace dlf {

/// Process-wide (per-Runtime) registry of object creations. Thread-safe:
/// creations may race in Record mode.
class AbstractionEngine {
public:
  AbstractionEngine(unsigned KObjectDepth, unsigned IndexDepth)
      : KObjectDepth(KObjectDepth), IndexDepth(IndexDepth) {}

  /// Registers a creation event for the object at address \p Obj, allocated
  /// at \p Site inside a method of the object at \p Parent (nullptr for
  /// top-level allocations). \p Index is the *creating* thread's indexing
  /// state. Returns the new ObjectId and the object's abstractions.
  ///
  /// If \p Parent has not itself been registered, the k-object chain simply
  /// ends at this object's own site.
  std::pair<ObjectId, AbstractionSet>
  registerCreation(const void *Obj, const void *Parent, Label Site,
                   IndexingState &Index);

  /// Forgets the address mapping for \p Obj (call from destructors so a
  /// recycled address cannot alias a dead object). CreationMap entries are
  /// kept: they are keyed by ObjectId and may appear in parent chains.
  void forgetAddress(const void *Obj);

  /// Looks up the ObjectId previously registered for \p Obj; invalid id if
  /// unknown.
  ObjectId lookup(const void *Obj) const;

  /// Number of creations registered so far.
  size_t creationCount() const;

private:
  unsigned KObjectDepth;
  unsigned IndexDepth;

  mutable std::mutex Mu;
  uint64_t NextObjectId = 1;
  std::unordered_map<const void *, ObjectId> AddressToId;
  CreationMap Creations;
};

} // namespace dlf

#endif // DLF_ABSTRACTION_ABSTRACTIONENGINE_H
