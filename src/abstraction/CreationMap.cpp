//===- abstraction/CreationMap.cpp - k-object-sensitive abstraction --------===//

#include "abstraction/CreationMap.h"

using namespace dlf;

void CreationMap::recordCreation(ObjectId Obj, ObjectId Parent, Label Site) {
  Entries[Obj] = {Parent, Site};
}

Abstraction CreationMap::computeAbsO(ObjectId Obj, unsigned K) const {
  Abstraction Result;
  ObjectId Cursor = Obj;
  for (unsigned Step = 0; Step < K && Cursor.isValid(); ++Step) {
    auto It = Entries.find(Cursor);
    if (It == Entries.end())
      break; // absO_k(o) = () when CreationMap[o] is undefined
    Result.Elements.push_back(It->second.Site.raw());
    Cursor = It->second.Parent;
  }
  return Result;
}
