//===- abstraction/CreationMap.h - k-object-sensitive abstraction -*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CreationMap of paper §2.4.1: maps each dynamic object o to the pair
/// (o', c) where o was allocated at statement c inside a method of object
/// o'. absO_k(o) is the chain of allocation-site labels obtained by walking
/// the map up to k steps — the dynamic analogue of k-object-sensitivity in
/// static analysis (Milanova et al.).
///
/// Deviation noted in DESIGN.md: for objects allocated with no enclosing
/// receiver (the paper's "allocated inside a static method" case, where
/// absO_k would be empty) we still record the allocation site, so absO_1 is
/// the classic allocation-site abstraction rather than the empty sequence.
/// This only makes the scheme *more* precise and keeps the comparison with
/// execution indexing meaningful for top-level allocations.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_ABSTRACTION_CREATIONMAP_H
#define DLF_ABSTRACTION_CREATIONMAP_H

#include "event/Abstraction.h"
#include "event/Ids.h"
#include "event/Label.h"

#include <unordered_map>

namespace dlf {

/// Records creation events and answers absO_k queries. Not thread-safe by
/// itself; the AbstractionEngine serializes access.
class CreationMap {
public:
  /// Records that \p Obj was allocated at \p Site inside a method of
  /// \p Parent (pass an invalid id for top-level allocations).
  void recordCreation(ObjectId Obj, ObjectId Parent, Label Site);

  /// Computes absO_k: the chain [c1, ..., ck] of allocation sites walking
  /// parents. Objects with no recorded creation yield the empty abstraction.
  Abstraction computeAbsO(ObjectId Obj, unsigned K) const;

  /// Number of recorded creations (tests / diagnostics).
  size_t size() const { return Entries.size(); }

private:
  struct Entry {
    ObjectId Parent;
    Label Site;
  };
  std::unordered_map<ObjectId, Entry> Entries;
};

} // namespace dlf

#endif // DLF_ABSTRACTION_CREATIONMAP_H
