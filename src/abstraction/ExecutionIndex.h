//===- abstraction/ExecutionIndex.h - Light-weight execution indexing -----===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread light-weight execution indexing (paper §2.4.2, after Xin,
/// Sumner & Zhang's execution indexing but ignoring branches and loops).
/// Each thread maintains a depth counter `d`, a CallStack of
/// (site, occurrence-count) pairs, and per-depth occurrence Counters. The
/// abstraction of an object created at site `c` is absI_k(o) =
/// [c1, q1, ..., ck, qk]: the innermost k frames of the call stack at the
/// creation, each with how many times that site had executed at its depth.
///
/// For the paper's example program (main calling foo() five times, foo
/// calling bar() twice, bar allocating three objects), the first object has
/// absI_3 = [11,1, 6,1, 3,1] and the last has absI_3 = [11,3, 7,1, 3,5].
/// tests/AbstractionTest.cpp reproduces that example literally.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_ABSTRACTION_EXECUTIONINDEX_H
#define DLF_ABSTRACTION_EXECUTIONINDEX_H

#include "event/Abstraction.h"
#include "event/Label.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dlf {

/// Mutable per-thread state for execution indexing. Owned by the thread's
/// ThreadRecord and only ever touched by that thread, so it needs no
/// locking.
class IndexingState {
public:
  /// Processes `c : Call(m)`: bumps the occurrence counter of \p Site at the
  /// current depth, pushes the (site, count) frame, and descends.
  void onCall(Label Site);

  /// Processes `c : Return(m)`: ascends and pops the frame. Tolerates
  /// underflow (returns without matching calls are ignored) so that
  /// partially instrumented code cannot corrupt the index.
  void onReturn();

  /// Processes `c : o = new(o', T)`: returns absI_k for the created object,
  /// i.e. the innermost \p K (site, count) frames including the creation
  /// site itself, flattened as [c1, q1, ..., ck, qk]. If the stack is
  /// shallower than K, the full stack is returned (paper: "if the call
  /// stack has fewer elements, absI_k(o) returns the full call stack").
  Abstraction onNew(Label Site, unsigned K);

  /// Current call depth (tests / diagnostics).
  size_t depth() const { return Stack.size(); }

private:
  struct Frame {
    uint32_t Site;
    uint32_t Count;
  };

  /// Occurrence counters for the *current* depth levels; Counters[d][c] is
  /// the number of times site c executed at depth d in the current context.
  /// Entering a depth clears its counters (paper's initialization step on
  /// Call).
  std::vector<std::unordered_map<uint32_t, uint32_t>> Counters =
      std::vector<std::unordered_map<uint32_t, uint32_t>>(1);

  std::vector<Frame> Stack;
};

} // namespace dlf

#endif // DLF_ABSTRACTION_EXECUTIONINDEX_H
