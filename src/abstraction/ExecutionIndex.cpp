//===- abstraction/ExecutionIndex.cpp - Light-weight execution indexing ----===//

#include "abstraction/ExecutionIndex.h"

#include <cassert>

using namespace dlf;

void IndexingState::onCall(Label Site) {
  assert(!Counters.empty() && "counter stack invariant broken");
  uint32_t Count = ++Counters.back()[Site.raw()];
  Stack.push_back({Site.raw(), Count});
  // Descend: fresh counters for the new depth.
  Counters.emplace_back();
}

void IndexingState::onReturn() {
  if (Stack.empty())
    return; // tolerate unmatched returns from partially instrumented code
  Counters.pop_back();
  Stack.pop_back();
  assert(Counters.size() == Stack.size() + 1 &&
         "call/counter stacks out of sync");
}

Abstraction IndexingState::onNew(Label Site, unsigned K) {
  // The creation statement itself is frame c1/q1: bump its counter at the
  // current depth, but do not descend (a `new` is not a call).
  uint32_t Count = ++Counters.back()[Site.raw()];

  Abstraction Result;
  Result.Elements.reserve(2 * K);
  Result.Elements.push_back(Site.raw());
  Result.Elements.push_back(Count);
  // Then the innermost K-1 call frames, inner to outer.
  for (size_t Taken = 1; Taken < K && Taken <= Stack.size(); ++Taken) {
    const Frame &F = Stack[Stack.size() - Taken];
    Result.Elements.push_back(F.Site);
    Result.Elements.push_back(F.Count);
  }
  return Result;
}
