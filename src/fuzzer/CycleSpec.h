//===- fuzzer/CycleSpec.h - Phase II matching target -------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CycleSpec is an abstract deadlock cycle compiled for Phase II matching
/// under one configuration (abstraction scheme + context use). It answers
/// the two questions Algorithm 3 and the §4 optimization ask about every
/// acquire:
///
///  * is (abs(t), abs(l), Context[t]) a component of the cycle?  -> pause
///  * is t (by abstraction) about to execute the *outermost* acquire of a
///    component's context?                                       -> yield
///
//===----------------------------------------------------------------------===//

#ifndef DLF_FUZZER_CYCLESPEC_H
#define DLF_FUZZER_CYCLESPEC_H

#include "event/Abstraction.h"
#include "igoodlock/Report.h"
#include "runtime/Records.h"

#include <vector>

namespace dlf {

/// Compiled matching target for one abstract cycle.
class CycleSpec {
public:
  /// Compiles \p Cycle for matching with \p Kind abstractions; when
  /// \p UseContext is false only the final acquire site of each component
  /// is compared (paper variant 4).
  CycleSpec(const AbstractCycle &Cycle, AbstractionKind Kind, bool UseContext);

  /// Algorithm 3 line 12: (abs(t), abs(l), Context[t]) ∈ Cycle, where
  /// \p Tentative is t's lock stack including the pending push.
  bool matchesComponent(const AbstractionSet &ThreadAbs,
                        const AbstractionSet &LockAbs,
                        const std::vector<LockStackEntry> &Tentative) const;

  /// §4: does a thread with \p ThreadAbs yield before the acquire at
  /// \p Site (the bottommost element of some component's context)?
  bool matchesYieldPoint(const AbstractionSet &ThreadAbs, Label Site) const;

  /// Like matchesComponent, but identifies *which* component matched
  /// (npos when none). Used by the avoidance extension.
  size_t matchingComponentIndex(
      const AbstractionSet &ThreadAbs, const AbstractionSet &LockAbs,
      const std::vector<LockStackEntry> &Tentative) const;

  /// Index of a component whose context the thread is *entering*: the
  /// tentative stack's sites are a non-empty prefix of the component's
  /// context and the thread abstraction matches (npos when none). The
  /// avoidance extension defers at entry — before the thread holds any
  /// component lock — so deferral itself can never deadlock.
  size_t enteringComponentIndex(
      const AbstractionSet &ThreadAbs,
      const std::vector<LockStackEntry> &Tentative) const;

  /// True when a thread with \p ThreadAbs whose held-lock sites are
  /// \p HeldSites has entered (a non-empty prefix of) some component other
  /// than \p ExcludeIndex — i.e. another cycle participant is already on
  /// its way. Used by the avoidance extension.
  bool otherComponentInProgress(size_t ExcludeIndex,
                                const AbstractionSet &ThreadAbs,
                                const std::vector<LockStackEntry> &Held) const;

  size_t size() const { return Components.size(); }

private:
  struct Component {
    Abstraction ThreadAbs;
    Abstraction LockAbs;
    std::vector<Label> Context;
  };

  std::vector<Component> Components;
  AbstractionKind Kind;
  bool UseContext;
};

} // namespace dlf

#endif // DLF_FUZZER_CYCLESPEC_H
