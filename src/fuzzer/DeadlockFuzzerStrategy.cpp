//===- fuzzer/DeadlockFuzzerStrategy.cpp - Algorithm 3 ----------------------===//

#include "fuzzer/DeadlockFuzzerStrategy.h"

// All behaviour is in the header; this file exists for one-cpp-per-header
// symmetry and future out-of-line growth.
