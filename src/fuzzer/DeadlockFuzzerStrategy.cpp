//===- fuzzer/DeadlockFuzzerStrategy.cpp - Algorithm 3 ----------------------===//

#include "fuzzer/DeadlockFuzzerStrategy.h"

#include <string>

using namespace dlf;

DeadlockFuzzerStrategy::DeadlockFuzzerStrategy(CycleSpec Spec)
    : Spec(std::move(Spec)) {
  // Handles are registered once per strategy (i.e. per Phase II rep), not
  // per match; the component index is part of the metric name so reports
  // show which edge of the target cycle the scheduler kept hitting.
  if (telemetry::enabled()) {
    telemetry::Registry &R = telemetry::Registry::global();
    Matches = R.counter("dlf_fuzzer_context_matches_total");
    ComponentMatches.reserve(this->Spec.size());
    for (size_t I = 0; I != this->Spec.size(); ++I)
      ComponentMatches.push_back(R.counter(
          "dlf_fuzzer_context_matches_component_" + std::to_string(I)));
  }
}

bool DeadlockFuzzerStrategy::shouldPause(
    const ThreadRecord &T, const LockRecord &L,
    const std::vector<LockStackEntry> &Tentative) {
  size_t Component = Spec.matchingComponentIndex(T.Abs, L.Abs, Tentative);
  if (Component == static_cast<size_t>(-1))
    return false;
  Matches.inc();
  if (Component < ComponentMatches.size())
    ComponentMatches[Component].inc();
  return true;
}
