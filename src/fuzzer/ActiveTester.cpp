//===- fuzzer/ActiveTester.cpp - Two-phase driver ---------------------------===//

#include "fuzzer/ActiveTester.h"

#include "analysis/TraceRecorder.h"
#include "campaign/ProcessSandbox.h"
#include "fuzzer/CycleSpec.h"
#include "fuzzer/DeadlockFuzzerStrategy.h"
#include "fuzzer/RandomStrategy.h"
#include "runtime/Runtime.h"
#include "support/Debug.h"

#include <cassert>
#include <chrono>
#include <sstream>
#include <unordered_set>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dlf;

ActiveTester::ActiveTester(Program P, ActiveTesterConfig Config)
    : TheProgram(std::move(P)), Config(std::move(Config)) {}

PhaseOneResult ActiveTester::runPhaseOne() {
  // Observe an execution with the simple random scheduler and recording
  // enabled. A random execution can itself deadlock (rarely, by workload
  // construction): its partial log is still a valid observation, so we
  // union the abstract cycles of every attempt and stop early as soon as
  // one attempt completes — a completed attempt has observed the whole
  // program.
  if (Config.PhaseOneMode == RunMode::Record) {
    // Observe a real concurrent execution (no schedule control).
    PhaseOneResult R;
    Options Opts = Config.Base;
    Opts.Mode = RunMode::Record;
    Opts.RecordDependencies = true;
    analysis::TraceRecorder Tee(&R.Log);
    Runtime RT(Opts, nullptr,
               Config.RecordTrace ? static_cast<DependencyRecorder *>(&Tee)
                                  : &R.Log);
    R.Exec = RT.run(TheProgram);
    if (Config.RecordTrace)
      R.Trace = Tee.takeEvents();
    R.SeedsTried.push_back(Config.PhaseOneSeed);
    R.Cycles = runIGoodlock(R.Log, Config.Goodlock, &R.Stats);
    return R;
  }

  PhaseOneResult Best;
  bool HaveAny = false;
  std::vector<AbstractCycle> Union;
  std::unordered_set<std::string> UnionKeys;
  auto Merge = [&](std::vector<AbstractCycle> Cycles) {
    for (AbstractCycle &C : Cycles) {
      std::string Key =
          C.key(AbstractionKind::ExecutionIndex, /*UseContext=*/true);
      if (UnionKeys.insert(Key).second)
        Union.push_back(std::move(C));
    }
  };

  std::vector<uint64_t> SeedsTried;
  for (unsigned Attempt = 0; Attempt <= Config.PhaseOneRetries; ++Attempt) {
    PhaseOneResult R;
    Options Opts = Config.Base;
    Opts.Mode = RunMode::Active;
    Opts.Seed = Config.PhaseOneSeed + Attempt;
    Opts.RecordDependencies = true;
    SeedsTried.push_back(Opts.Seed);

    SimpleRandomStrategy Random;
    analysis::TraceRecorder Tee(&R.Log);
    Runtime RT(Opts, &Random,
               Config.RecordTrace ? static_cast<DependencyRecorder *>(&Tee)
                                  : &R.Log);
    R.Exec = RT.run(TheProgram);
    if (Config.RecordTrace)
      R.Trace = Tee.takeEvents();

    if (R.Exec.Completed) {
      // A full observation: its own cycles are authoritative.
      R.SeedsTried = std::move(SeedsTried);
      R.Cycles = runIGoodlock(R.Log, Config.Goodlock, &R.Stats);
      return R;
    }
    DLF_DEBUG_LOG("phase-one attempt " << Attempt << " (seed " << Opts.Seed
                                       << ") stalled; retrying");
    Merge(runIGoodlock(R.Log, Config.Goodlock, &R.Stats));
    if (!HaveAny) {
      Best = std::move(R);
      HaveAny = true;
    }
  }
  // Every attempt stalled: surface exhaustion as a structured error (the
  // cycle union is still usable, but callers must not mistake an empty
  // union for a clean program).
  Best.Cycles = std::move(Union);
  Best.SeedsTried = std::move(SeedsTried);
  Best.RetriesExhausted = true;
  {
    std::ostringstream OS;
    OS << "phase 1: all " << Best.SeedsTried.size()
       << " observation attempts stalled (seeds";
    for (uint64_t S : Best.SeedsTried)
      OS << " " << S;
    OS << "); reporting the union of " << Best.Cycles.size()
       << " cycle(s) from partial observations";
    Best.Error = OS.str();
  }
  DLF_DEBUG_LOG(Best.Error);
  return Best;
}

ExecutionResult ActiveTester::runOnce(const AbstractCycle &Cycle,
                                      uint64_t Seed) {
  Options Opts = Config.Base;
  Opts.Mode = RunMode::Active;
  Opts.Seed = Seed;
  Opts.RecordDependencies = false;

  CycleSpec Spec(Cycle, Opts.Kind, Opts.UseContext);
  DeadlockFuzzerStrategy Strategy(std::move(Spec));
  Runtime RT(Opts, &Strategy, nullptr);
  return RT.run(TheProgram);
}

CycleFuzzStats ActiveTester::fuzzCycle(const AbstractCycle &Cycle) {
  CycleFuzzStats Stats;
  Stats.Cycle = Cycle;
  for (unsigned Rep = 0; Rep != Config.PhaseTwoReps; ++Rep) {
    ExecutionResult R = runOnce(Cycle, Config.PhaseTwoSeedBase + Rep);
    ++Stats.Runs;
    Stats.TotalThrashes += R.Thrashes;
    Stats.TotalForcedUnpauses += R.ForcedUnpauses;
    Stats.TotalWallMs += R.WallMs;
    if (R.DeadlockFound && R.Witness) {
      if (witnessMatchesCycle(*R.Witness, Cycle, Config.Base.Kind,
                              Config.Base.UseContext))
        ++Stats.ReproducedTarget;
      else
        ++Stats.OtherDeadlocks;
    } else if (R.Stalled) {
      ++Stats.Stalls;
    } else {
      ++Stats.CleanRuns;
    }
  }
  return Stats;
}

ActiveTesterReport ActiveTester::run() {
  ActiveTesterReport Report;
  Report.PhaseOne = runPhaseOne();
  for (const AbstractCycle &Cycle : Report.PhaseOne.Cycles)
    Report.PerCycle.push_back(fuzzCycle(Cycle));
  return Report;
}

ExecutionResult ActiveTester::runPassthrough() {
  Options Opts = Config.Base;
  Opts.Mode = RunMode::Passthrough;
  Runtime RT(Opts);
  return RT.run(TheProgram);
}

ExecutionResult
ActiveTester::runWithImmunity(const std::vector<CycleSpec> &Immunity,
                              uint64_t Seed) {
  Options Opts = Config.Base;
  Opts.Mode = RunMode::Active;
  Opts.Seed = Seed;
  SimpleRandomStrategy Random;
  Runtime RT(Opts, &Random, nullptr, &Immunity);
  return RT.run(TheProgram);
}

std::vector<CycleSpec>
ActiveTester::buildImmunity(const ActiveTesterReport &Report,
                            AbstractionKind Kind) {
  std::vector<CycleSpec> Immunity;
  for (const CycleFuzzStats &Stats : Report.PerCycle)
    if (Stats.ReproducedTarget > 0)
      Immunity.emplace_back(Stats.Cycle, Kind, /*UseContext=*/true);
  return Immunity;
}

bool ActiveTester::witnessMatchesCycle(const DeadlockWitness &Witness,
                                       const AbstractCycle &Cycle,
                                       AbstractionKind Kind, bool UseContext) {
  if (Witness.Edges.size() != Cycle.Components.size())
    return false;
  // Render the witness as an abstract cycle and compare canonical keys.
  AbstractCycle FromWitness;
  for (const DeadlockWitness::Edge &E : Witness.Edges) {
    CycleComponent C;
    C.Thread = E.Thread;
    C.ThreadName = E.ThreadName;
    C.ThreadAbs = E.ThreadAbs;
    C.Lock = E.WaitLock;
    C.LockName = E.WaitLockName;
    C.LockAbs = E.WaitLockAbs;
    C.Context = E.Context;
    FromWitness.Components.push_back(std::move(C));
  }
  return FromWitness.key(Kind, UseContext) == Cycle.key(Kind, UseContext);
}

unsigned ActiveTesterReport::confirmedCycles() const {
  unsigned Count = 0;
  for (const CycleFuzzStats &S : PerCycle)
    if (S.ReproducedTarget > 0)
      ++Count;
  return Count;
}

std::string ActiveTesterReport::toString() const {
  std::ostringstream OS;
  OS << "iGoodlock: " << PhaseOne.Cycles.size()
     << " potential deadlock cycle(s) from " << PhaseOne.Log.entries().size()
     << " dependency entries\n";
  for (size_t I = 0; I != PerCycle.size(); ++I) {
    const CycleFuzzStats &S = PerCycle[I];
    OS << "cycle #" << I << ": reproduced " << S.ReproducedTarget << "/"
       << S.Runs << " (p=" << S.probability() << ", other deadlocks "
       << S.OtherDeadlocks << ", stalls " << S.Stalls << ", avg thrashes "
       << S.avgThrashes() << ")\n";
    OS << S.Cycle.toString();
  }
  return OS.str();
}

ForkedOutcome dlf::runForkedWithTimeout(const Program &P, uint64_t TimeoutMs,
                                        double *WallMsOut, uint64_t GraceMs) {
  campaign::SandboxLimits Limits;
  Limits.TimeoutMs = TimeoutMs;
  Limits.GraceMs = GraceMs;
  campaign::SandboxResult R = campaign::runInSandbox(
      [&](int) {
        // Run the program uninstrumented; the sandbox _exits for us (no
        // atexit handlers, parent state untouched).
        P();
        return 0;
      },
      Limits);
  if (WallMsOut)
    *WallMsOut = R.WallMs;
  switch (R.Status) {
  case campaign::SandboxStatus::Completed:
    return ForkedOutcome::Completed;
  case campaign::SandboxStatus::Hung:
    return ForkedOutcome::Hung;
  case campaign::SandboxStatus::Exited:
  case campaign::SandboxStatus::Signaled:
  case campaign::SandboxStatus::OutOfMemory:
  case campaign::SandboxStatus::ForkFailed:
    return ForkedOutcome::Crashed;
  }
  return ForkedOutcome::Crashed;
}
