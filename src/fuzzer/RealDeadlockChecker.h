//===- fuzzer/RealDeadlockChecker.h - Algorithm 4 ----------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// checkRealDeadlock (paper Algorithm 4): given the current LockSet stack of
/// every thread — including pending locks of blocked threads and the
/// tentative push of the thread currently being scheduled — decide whether
/// there exist distinct threads t1..tm and distinct locks l1..lm such that
/// li appears before l(i+1) in LockSet[ti] for i in [1, m-1] and lm appears
/// before l1 in LockSet[tm]. If so, the execution has created (or is one
/// committed acquire away from creating) a real deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_FUZZER_REALDEADLOCKCHECKER_H
#define DLF_FUZZER_REALDEADLOCKCHECKER_H

#include "runtime/Records.h"
#include "runtime/Result.h"

#include <functional>
#include <optional>
#include <vector>

namespace dlf {

/// One thread's view for the check: the record (for names/abstractions in
/// the witness) and the lock stack to use — usually &T->LockStack, but the
/// scheduler substitutes a tentative stack for the thread whose acquire is
/// being committed.
struct ThreadStackView {
  const ThreadRecord *Thread;
  const std::vector<LockStackEntry> *Stack;
};

/// Runs Algorithm 4 over \p Views. Returns a witness describing one cycle
/// (edges ordered so that edge i's wait lock is held by edge i+1's thread,
/// cyclically), or std::nullopt when no cycle exists.
///
/// Lock names/abstractions for the witness are looked up through
/// \p LockById since the checker has no registry of its own.
std::optional<DeadlockWitness>
findRealDeadlock(const std::vector<ThreadStackView> &Views,
                 const std::function<const LockRecord &(LockId)> &LockById);

} // namespace dlf

#endif // DLF_FUZZER_REALDEADLOCKCHECKER_H
