//===- fuzzer/CycleSpec.cpp - Phase II matching target ----------------------===//

#include "fuzzer/CycleSpec.h"

#include <cassert>

using namespace dlf;

CycleSpec::CycleSpec(const AbstractCycle &Cycle, AbstractionKind Kind,
                     bool UseContext)
    : Kind(Kind), UseContext(UseContext) {
  for (const CycleComponent &C : Cycle.Components) {
    assert(!C.Context.empty() && "cycle component without a context");
    Component Comp;
    Comp.ThreadAbs = C.ThreadAbs.select(Kind);
    Comp.LockAbs = C.LockAbs.select(Kind);
    Comp.Context = C.Context;
    Components.push_back(std::move(Comp));
  }
}

bool CycleSpec::matchesComponent(
    const AbstractionSet &ThreadAbs, const AbstractionSet &LockAbs,
    const std::vector<LockStackEntry> &Tentative) const {
  return matchingComponentIndex(ThreadAbs, LockAbs, Tentative) !=
         static_cast<size_t>(-1);
}

size_t CycleSpec::matchingComponentIndex(
    const AbstractionSet &ThreadAbs, const AbstractionSet &LockAbs,
    const std::vector<LockStackEntry> &Tentative) const {
  const Abstraction &TA = ThreadAbs.select(Kind);
  const Abstraction &LA = LockAbs.select(Kind);
  for (size_t Idx = 0; Idx != Components.size(); ++Idx) {
    const Component &C = Components[Idx];
    if (C.ThreadAbs != TA || C.LockAbs != LA)
      continue;
    if (!UseContext) {
      // Variant 4: compare the pending acquire's site only.
      if (!Tentative.empty() && Tentative.back().Site == C.Context.back())
        return Idx;
      continue;
    }
    if (Tentative.size() != C.Context.size())
      continue;
    bool Equal = true;
    for (size_t I = 0; I != Tentative.size() && Equal; ++I)
      Equal = (Tentative[I].Site == C.Context[I]);
    if (Equal)
      return Idx;
  }
  return static_cast<size_t>(-1);
}

size_t CycleSpec::enteringComponentIndex(
    const AbstractionSet &ThreadAbs,
    const std::vector<LockStackEntry> &Tentative) const {
  if (Tentative.empty())
    return static_cast<size_t>(-1);
  const Abstraction &TA = ThreadAbs.select(Kind);
  for (size_t Idx = 0; Idx != Components.size(); ++Idx) {
    const Component &C = Components[Idx];
    if (C.ThreadAbs != TA || Tentative.size() > C.Context.size())
      continue;
    bool Prefix = true;
    for (size_t I = 0; I != Tentative.size() && Prefix; ++I)
      Prefix = (Tentative[I].Site == C.Context[I]);
    if (Prefix)
      return Idx;
  }
  return static_cast<size_t>(-1);
}

bool CycleSpec::otherComponentInProgress(
    size_t ExcludeIndex, const AbstractionSet &ThreadAbs,
    const std::vector<LockStackEntry> &Held) const {
  if (Held.empty())
    return false;
  const Abstraction &TA = ThreadAbs.select(Kind);
  for (size_t Idx = 0; Idx != Components.size(); ++Idx) {
    if (Idx == ExcludeIndex)
      continue;
    const Component &C = Components[Idx];
    if (C.ThreadAbs != TA)
      continue;
    // "In progress": the held sites are a non-empty prefix of the
    // component's context. A full-length match also counts: a blocked
    // thread's stack includes its pending (final) acquire, and such a
    // thread is exactly one grant away from closing the cycle.
    if (Held.size() > C.Context.size())
      continue;
    bool Prefix = true;
    for (size_t I = 0; I != Held.size() && Prefix; ++I)
      Prefix = (Held[I].Site == C.Context[I]);
    if (Prefix)
      return true;
  }
  return false;
}

bool CycleSpec::matchesYieldPoint(const AbstractionSet &ThreadAbs,
                                  Label Site) const {
  const Abstraction &TA = ThreadAbs.select(Kind);
  for (const Component &C : Components)
    if (C.ThreadAbs == TA && C.Context.front() == Site)
      return true;
  return false;
}
