//===- fuzzer/ActiveTester.h - Two-phase driver ------------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end DEADLOCKFUZZER driver: Phase I observes an execution and
/// runs iGoodlock; Phase II re-executes the program once per repetition and
/// per reported cycle under the biased random scheduler and counts how
/// often each cycle is re-created. This is the workflow behind Table 1 and
/// Figure 2 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_FUZZER_ACTIVETESTER_H
#define DLF_FUZZER_ACTIVETESTER_H

#include "analysis/Trace.h"
#include "fuzzer/CycleSpec.h"
#include "igoodlock/IGoodlock.h"
#include "igoodlock/LockDependency.h"
#include "runtime/Options.h"
#include "runtime/Result.h"

#include <functional>
#include <string>
#include <vector>

namespace dlf {

/// A program under test: any callable that runs the workload to completion
/// using the dlf primitives. Invoked once per execution on a fresh Runtime.
using Program = std::function<void()>;

/// Tester configuration.
struct ActiveTesterConfig {
  /// Base options for every execution: abstraction kind, context use,
  /// yields, depths, safety limits. Mode/Seed/RecordDependencies are set
  /// per phase by the tester.
  Options Base;

  /// Phase II repetitions per cycle (the paper uses 100).
  unsigned PhaseTwoReps = 20;

  /// How Phase I observes the program: Active (a serialized random
  /// execution — deterministic, stall-recoverable; the default) or Record
  /// (a genuinely concurrent execution with real locks — the paper's
  /// lowest-perturbation observation; a run that truly deadlocks will
  /// block, so use this only on staggered workloads or under an external
  /// watchdog).
  RunMode PhaseOneMode = RunMode::Active;

  /// Seed of the Phase I observation run; retried with consecutive seeds
  /// if the random execution happens to deadlock.
  uint64_t PhaseOneSeed = 1;
  unsigned PhaseOneRetries = 5;

  /// Base seed for Phase II; repetition r uses PhaseTwoSeedBase + r.
  uint64_t PhaseTwoSeedBase = 1000;

  /// Capture the Phase I observation as an in-memory event trace
  /// (PhaseOneResult::Trace) alongside the dependency log. Required for
  /// sync-preserving prediction (--phase1 predict); off by default because
  /// most callers only need the iGoodlock log.
  bool RecordTrace = false;

  IGoodlockOptions Goodlock;
};

/// Outcome of Phase I.
struct PhaseOneResult {
  LockDependencyLog Log;
  ExecutionResult Exec;
  std::vector<AbstractCycle> Cycles;
  IGoodlockStats Stats;

  /// The observation as a grant-ordered event trace (empty unless
  /// ActiveTesterConfig::RecordTrace). For a completed observation this is
  /// that execution's trace; when every attempt stalled it is the first
  /// attempt's partial trace.
  std::vector<analysis::TraceEvent> Trace;

  /// The consecutive seeds the observation consumed, in order (one per
  /// attempt; more than one means earlier attempts deadlocked/stalled).
  std::vector<uint64_t> SeedsTried;

  /// True when every attempt stalled: the retry budget is exhausted and
  /// Cycles is only the union of partial observations, not the report of a
  /// complete execution. Distinguishes "no cycles because the program is
  /// clean" from "no cycles because observation kept deadlocking".
  bool RetriesExhausted = false;

  /// Structured diagnostic when RetriesExhausted is set.
  std::string Error;
};

/// Phase II statistics for one target cycle.
struct CycleFuzzStats {
  AbstractCycle Cycle;
  unsigned Runs = 0;
  /// Runs whose confirmed deadlock matches the target cycle (rotation- and
  /// abstraction-equal). This is the paper's "reproduced" count.
  unsigned ReproducedTarget = 0;
  /// Runs that confirmed a *different* real deadlock (the paper observed
  /// this for the synchronized-map benchmarks, probability 0.52).
  unsigned OtherDeadlocks = 0;
  /// Runs that ended in an uncontrolled stall (no checker cycle).
  unsigned Stalls = 0;
  /// Runs that completed without any deadlock.
  unsigned CleanRuns = 0;

  uint64_t TotalThrashes = 0;
  /// Livelock-monitor removals from the Paused set (the "monitor thread"
  /// of paper §5); like thrashes, these mark a thread paused in an
  /// unsuitable state.
  uint64_t TotalForcedUnpauses = 0;
  double TotalWallMs = 0.0;

  double probability() const {
    return Runs ? static_cast<double>(ReproducedTarget) / Runs : 0.0;
  }
  double avgThrashes() const {
    return Runs ? static_cast<double>(TotalThrashes) / Runs : 0.0;
  }
  /// Thrashes plus monitor removals — every bad pause, the quantity the
  /// paper's Figure 2 graph 3 tracks.
  double avgBadPauses() const {
    return Runs ? static_cast<double>(TotalThrashes + TotalForcedUnpauses) /
                      Runs
                : 0.0;
  }
  double avgWallMs() const { return Runs ? TotalWallMs / Runs : 0.0; }
};

/// Full two-phase report.
struct ActiveTesterReport {
  PhaseOneResult PhaseOne;
  std::vector<CycleFuzzStats> PerCycle;

  /// Cycles confirmed by at least one Phase II run.
  unsigned confirmedCycles() const;
  /// Human-readable summary.
  std::string toString() const;
};

/// Runs the two phases; stateless between calls except for the stored
/// program and configuration.
class ActiveTester {
public:
  explicit ActiveTester(Program P, ActiveTesterConfig Config = {});

  /// Phase I: a random serialized execution with dependency recording,
  /// followed by iGoodlock.
  PhaseOneResult runPhaseOne();

  /// One Phase II execution targeting \p Cycle with \p Seed.
  ExecutionResult runOnce(const AbstractCycle &Cycle, uint64_t Seed);

  /// Phase II for one cycle: PhaseTwoReps executions, classified.
  CycleFuzzStats fuzzCycle(const AbstractCycle &Cycle);

  /// Phase I + Phase II over every reported cycle.
  ActiveTesterReport run();

  /// One uninstrumented (Passthrough) execution, for baseline timing.
  ExecutionResult runPassthrough();

  /// One Active execution under the simple random scheduler with the
  /// avoidance extension armed against \p Immunity (Dimmunix-style
  /// healing: confirmed cycles stay infeasible).
  ExecutionResult runWithImmunity(const std::vector<CycleSpec> &Immunity,
                                  uint64_t Seed);

  /// Compiles the confirmed cycles of \p Report into avoidance specs.
  static std::vector<CycleSpec>
  buildImmunity(const ActiveTesterReport &Report,
                AbstractionKind Kind = AbstractionKind::ExecutionIndex);

  /// Whether \p Witness is (a rotation of) \p Cycle under the matching
  /// configuration.
  static bool witnessMatchesCycle(const DeadlockWitness &Witness,
                                  const AbstractCycle &Cycle,
                                  AbstractionKind Kind, bool UseContext);

  const ActiveTesterConfig &config() const { return Config; }

private:
  Program TheProgram;
  ActiveTesterConfig Config;
};

/// Result classification of a forked, watchdog-guarded execution (used for
/// the paper's "run 100 times uninstrumented, observe zero deadlocks"
/// comparison, where a deadlocked run would otherwise hang the harness).
enum class ForkedOutcome {
  Completed, ///< child exited cleanly
  Hung,      ///< watchdog expired; child killed (deadlock, in our usage)
  Crashed,   ///< child died with a signal or nonzero exit
};

/// Runs \p P in a forked child with a \p TimeoutMs watchdog. Implemented
/// on campaign::runInSandbox, which reaps the child unconditionally (no
/// zombies), retries waits interrupted by signals, and escalates
/// SIGTERM -> SIGKILL after \p GraceMs instead of killing outright.
/// POSIX-only.
ForkedOutcome runForkedWithTimeout(const Program &P, uint64_t TimeoutMs,
                                   double *WallMsOut = nullptr,
                                   uint64_t GraceMs = 500);

} // namespace dlf

#endif // DLF_FUZZER_ACTIVETESTER_H
