//===- fuzzer/Systematic.h - Stateless systematic exploration ----*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stateless systematic schedule explorer (Verisoft-style), implementing
/// the baseline the paper's introduction argues against: "model checking
/// fails to scale for large multi-threaded programs due to the exponential
/// increase in the number of thread schedules with execution length."
///
/// The explorer drives the active scheduler with an explicit choice
/// prefix: every scheduling decision up to the prefix length is forced,
/// later decisions take the first candidate. After each execution the
/// deepest non-exhausted choice point is advanced (depth-first search over
/// the schedule tree), re-executing the program from scratch each time.
/// A deadlock manifests as a stall.
///
/// `bench/motivation_systematic` races this against the two-phase
/// DeadlockFuzzer on the Figure 1 program as the deadlock window narrows:
/// the systematic search needs exponentially more executions while the
/// two-phase approach stays at "one observation + a handful of biased
/// runs".
///
//===----------------------------------------------------------------------===//

#ifndef DLF_FUZZER_SYSTEMATIC_H
#define DLF_FUZZER_SYSTEMATIC_H

#include "fuzzer/ActiveTester.h"
#include "runtime/Strategy.h"

#include <cstdint>
#include <vector>

namespace dlf {

/// Strategy that follows a forced choice prefix and records the branching
/// structure it encounters (one entry per scheduling decision: the index
/// taken and the number of candidates that were available).
class SystematicStrategy : public SchedulerStrategy {
public:
  explicit SystematicStrategy(std::vector<uint32_t> Prefix)
      : Prefix(std::move(Prefix)) {}

  const char *name() const override { return "systematic"; }

  size_t pickIndex(const std::vector<const ThreadRecord *> &Candidates,
                   Rng &R) override;

  /// The decision trace of the last run: (chosen index, arity) pairs.
  const std::vector<std::pair<uint32_t, uint32_t>> &trace() const {
    return Trace;
  }

private:
  std::vector<uint32_t> Prefix;
  std::vector<std::pair<uint32_t, uint32_t>> Trace;
  size_t Step = 0;
};

/// Outcome of a bounded systematic search.
struct SystematicResult {
  /// Executions performed (including the deadlocking one, if any).
  uint64_t Executions = 0;
  /// True when a stall/deadlock was found within the bounds.
  bool DeadlockFound = false;
  /// The witness of the deadlocking execution, when found.
  std::optional<DeadlockWitness> Witness;
  /// True when the search space was exhausted without a deadlock.
  bool Exhausted = false;
};

/// Depth-first search over the schedule tree of \p P. Stops at the first
/// deadlock, after \p MaxExecutions runs, or when the bounded tree (choice
/// points beyond \p MaxDepth follow the default policy and are not
/// expanded) is exhausted.
SystematicResult exploreSystematically(const Program &P,
                                       uint64_t MaxExecutions,
                                       size_t MaxDepth = 512);

} // namespace dlf

#endif // DLF_FUZZER_SYSTEMATIC_H
