//===- fuzzer/DeadlockFuzzerStrategy.h - Algorithm 3 -------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The active random deadlock-checking strategy (paper Algorithm 3): random
/// scheduling biased by an abstract cycle from iGoodlock. A thread about to
/// execute an acquire whose (abs(t), abs(l), Context[t]) is a cycle
/// component is paused, giving the other participants time to reach their
/// own components; checkRealDeadlock runs at every acquire; thrashing and
/// the livelock monitor are handled by the scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_FUZZER_DEADLOCKFUZZERSTRATEGY_H
#define DLF_FUZZER_DEADLOCKFUZZERSTRATEGY_H

#include "fuzzer/CycleSpec.h"
#include "runtime/Strategy.h"
#include "telemetry/Metrics.h"

#include <vector>

namespace dlf {

/// Algorithm 3: biased random scheduling toward one target cycle.
class DeadlockFuzzerStrategy : public SchedulerStrategy {
public:
  explicit DeadlockFuzzerStrategy(CycleSpec Spec);

  const char *name() const override { return "deadlock-fuzzer"; }

  bool wantsDeadlockCheck() const override { return true; }

  /// Out of line: counts context matches (total and per cycle component)
  /// when telemetry is on, in addition to the Algorithm 3 line 12 match.
  bool shouldPause(const ThreadRecord &T, const LockRecord &L,
                   const std::vector<LockStackEntry> &Tentative) override;

  bool shouldYield(const ThreadRecord &T, const LockRecord &L,
                   Label Site) override {
    return Spec.matchesYieldPoint(T.Abs, Site);
  }

private:
  CycleSpec Spec;
  /// Invalid (no-op) handles unless telemetry was enabled at construction.
  telemetry::Counter Matches;
  std::vector<telemetry::Counter> ComponentMatches;
};

} // namespace dlf

#endif // DLF_FUZZER_DEADLOCKFUZZERSTRATEGY_H
