//===- fuzzer/RandomStrategy.cpp - Algorithm 2 ------------------------------===//

#include "fuzzer/RandomStrategy.h"

// SimpleRandomStrategy is fully defined by the base class defaults; this
// file anchors nothing but exists to keep one .cpp per module header.
