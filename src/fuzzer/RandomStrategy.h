//===- fuzzer/RandomStrategy.h - Algorithm 2 --------------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simple random checker (paper Algorithm 2): at every state pick a
/// uniformly random enabled thread and execute its next statement; report a
/// system stall when no thread is enabled but some are alive. It never
/// pauses, never yields, and does not run checkRealDeadlock — deadlocks
/// manifest as stalls. Phase I uses this strategy (with recording enabled)
/// to observe a random serialized execution.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_FUZZER_RANDOMSTRATEGY_H
#define DLF_FUZZER_RANDOMSTRATEGY_H

#include "runtime/Strategy.h"

namespace dlf {

/// Algorithm 2: uniformly random scheduling, stall detection only.
class SimpleRandomStrategy : public SchedulerStrategy {
public:
  const char *name() const override { return "simple-random"; }
};

} // namespace dlf

#endif // DLF_FUZZER_RANDOMSTRATEGY_H
