//===- fuzzer/RealDeadlockChecker.cpp - Algorithm 4 -------------------------===//

#include "fuzzer/RealDeadlockChecker.h"

#include <cassert>
#include <sstream>
#include <unordered_set>

using namespace dlf;

namespace {

/// Depth-first search for a lock-order cycle with pairwise-distinct threads
/// and locks. An edge (A -> B via thread t) exists when A appears before B
/// in t's lock stack. Thread counts are small (the paper's benchmarks use a
/// handful), so the brute-force search is cheap; the scheduler additionally
/// only calls this at acquire commits.
class CycleSearch {
public:
  explicit CycleSearch(const std::vector<ThreadStackView> &Views)
      : Views(Views) {}

  /// Finds one cycle; fills Path with (view index, position of the "later"
  /// lock in that view's stack) per edge.
  bool find(std::vector<std::pair<size_t, size_t>> &Path) {
    for (size_t V = 0; V != Views.size(); ++V) {
      const auto &Stack = *Views[V].Stack;
      for (size_t From = 0; From != Stack.size(); ++From) {
        for (size_t To = From + 1; To != Stack.size(); ++To) {
          // Edge Stack[From].Lock -> Stack[To].Lock via thread V starts a
          // candidate chain.
          UsedThreads.clear();
          UsedLocks.clear();
          Path.clear();
          StartLock = Stack[From].Lock;
          StartHeldMode = Stack[From].Mode;
          UsedThreads.insert(V);
          UsedLocks.insert(StartLock.Raw);
          Path.push_back({V, To});
          if (Stack[To].Lock == StartLock)
            continue; // degenerate; locks in one stack are distinct anyway
          UsedLocks.insert(Stack[To].Lock.Raw);
          if (extend(Stack[To].Lock, Stack[To].Mode, Path))
            return true;
        }
      }
    }
    return false;
  }

private:
  /// Extends a chain whose previous thread wants/holds \p Current in
  /// \p CurrentWantMode. An edge through another thread only exists when
  /// that thread's hold of Current conflicts with the want (a shared hold
  /// never blocks a shared want — rwlock read-read non-exclusion).
  bool extend(LockId Current, LockMode CurrentWantMode,
              std::vector<std::pair<size_t, size_t>> &Path) {
    for (size_t V = 0; V != Views.size(); ++V) {
      if (UsedThreads.count(V))
        continue;
      const auto &Stack = *Views[V].Stack;
      // Find Current in this stack, then try every lock after it.
      for (size_t From = 0; From != Stack.size(); ++From) {
        if (Stack[From].Lock != Current)
          continue;
        if (!lockModesConflict(CurrentWantMode, Stack[From].Mode))
          break; // shared-shared: the previous thread is not blocked here
        for (size_t To = From + 1; To != Stack.size(); ++To) {
          LockId Next = Stack[To].Lock;
          if (Next == StartLock) {
            // The closing edge must conflict with the start thread's hold.
            if (!lockModesConflict(Stack[To].Mode, StartHeldMode))
              continue;
            Path.push_back({V, To});
            return true; // closed the cycle
          }
          if (UsedLocks.count(Next.Raw))
            continue;
          UsedThreads.insert(V);
          UsedLocks.insert(Next.Raw);
          Path.push_back({V, To});
          if (extend(Next, Stack[To].Mode, Path))
            return true;
          Path.pop_back();
          UsedLocks.erase(Next.Raw);
          UsedThreads.erase(V);
        }
        break; // locks within one stack are distinct; Current occurs once
      }
    }
    return false;
  }

  const std::vector<ThreadStackView> &Views;
  LockId StartLock;
  LockMode StartHeldMode = LockMode::Exclusive;
  std::unordered_set<size_t> UsedThreads;
  std::unordered_set<uint64_t> UsedLocks;
};

} // namespace

std::optional<DeadlockWitness> dlf::findRealDeadlock(
    const std::vector<ThreadStackView> &Views,
    const std::function<const LockRecord &(LockId)> &LockById) {
  std::vector<std::pair<size_t, size_t>> Path;
  CycleSearch Search(Views);
  if (!Search.find(Path))
    return std::nullopt;

  DeadlockWitness Witness;
  for (auto [ViewIdx, WaitPos] : Path) {
    const ThreadStackView &View = Views[ViewIdx];
    const std::vector<LockStackEntry> &Stack = *View.Stack;
    assert(WaitPos < Stack.size() && "cycle path out of range");

    DeadlockWitness::Edge Edge;
    Edge.Thread = View.Thread->Id;
    Edge.ThreadName = View.Thread->Name;
    Edge.ThreadAbs = View.Thread->Abs;
    const LockRecord &Wait = LockById(Stack[WaitPos].Lock);
    Edge.WaitLock = Wait.Id;
    Edge.WaitLockName = Wait.Name;
    Edge.WaitLockAbs = Wait.Abs;
    Edge.WaitSite = Stack[WaitPos].Site;
    for (size_t I = 0; I <= WaitPos; ++I)
      Edge.Context.push_back(Stack[I].Site);
    Witness.Edges.push_back(std::move(Edge));
  }
  return Witness;
}

std::string DeadlockWitness::toString() const {
  std::ostringstream OS;
  OS << "real deadlock cycle of length " << Edges.size() << ":\n";
  for (const Edge &E : Edges) {
    OS << "  thread " << E.ThreadName << " (t" << E.Thread.Raw
       << ") waits for lock " << E.WaitLockName << " (l" << E.WaitLock.Raw
       << ") at " << E.WaitSite.text() << "; context:";
    for (Label Site : E.Context)
      OS << ' ' << Site.text();
    OS << '\n';
  }
  return OS.str();
}
