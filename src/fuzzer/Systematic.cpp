//===- fuzzer/Systematic.cpp - Stateless systematic exploration -------------===//

#include "fuzzer/Systematic.h"

#include "runtime/Runtime.h"

#include <cassert>

using namespace dlf;

size_t SystematicStrategy::pickIndex(
    const std::vector<const ThreadRecord *> &Candidates, Rng &R) {
  (void)R;
  uint32_t Arity = static_cast<uint32_t>(Candidates.size());
  uint32_t Chosen = 0;
  if (Step < Prefix.size()) {
    Chosen = Prefix[Step];
    // The tree's arity can differ slightly between runs at the frontier
    // (a forced earlier choice changes which threads are announced);
    // clamp defensively — the explorer re-reads the recorded arity.
    if (Chosen >= Arity)
      Chosen = Arity - 1;
  }
  Trace.push_back({Chosen, Arity});
  ++Step;
  return Chosen;
}

SystematicResult dlf::exploreSystematically(const Program &P,
                                            uint64_t MaxExecutions,
                                            size_t MaxDepth) {
  SystematicResult Result;
  std::vector<uint32_t> Prefix;

  for (;;) {
    if (Result.Executions >= MaxExecutions)
      return Result;
    ++Result.Executions;

    SystematicStrategy Strategy(Prefix);
    Options Opts;
    Opts.Mode = RunMode::Active;
    Opts.Seed = 1; // thrash/monitor randomness is unused: nothing pauses
    Runtime RT(Opts, &Strategy);
    ExecutionResult R = RT.run(P);

    if (R.Stalled || R.DeadlockFound) {
      Result.DeadlockFound = true;
      Result.Witness = R.Witness;
      return Result;
    }

    // Backtrack: advance the deepest choice point (within the depth
    // bound) that still has unexplored siblings.
    const auto &Trace = Strategy.trace();
    size_t Limit = std::min(Trace.size(), MaxDepth);
    bool Advanced = false;
    for (size_t Pos = Limit; Pos-- > 0;) {
      auto [Chosen, Arity] = Trace[Pos];
      if (Chosen + 1 < Arity) {
        Prefix.clear();
        Prefix.reserve(Pos + 1);
        for (size_t I = 0; I != Pos; ++I)
          Prefix.push_back(Trace[I].first);
        Prefix.push_back(Chosen + 1);
        Advanced = true;
        break;
      }
    }
    if (!Advanced) {
      Result.Exhausted = true;
      return Result;
    }
  }
}
