//===- fuzzer/Strategy.cpp - Strategy & recorder interface anchors ---------===//

#include "runtime/Strategy.h"

#include "runtime/Recorder.h"

using namespace dlf;

SchedulerStrategy::~SchedulerStrategy() = default;

size_t SchedulerStrategy::pickIndex(
    const std::vector<const ThreadRecord *> &Candidates, Rng &R) {
  return R.nextIndex(Candidates.size());
}

DependencyRecorder::~DependencyRecorder() = default;
