//===- igoodlock/Report.cpp - Abstract deadlock cycle reports --------------===//

#include "igoodlock/Report.h"

#include <algorithm>
#include <sstream>

using namespace dlf;

std::string AbstractCycle::toString() const {
  std::ostringstream OS;
  OS << "potential deadlock cycle of length " << Components.size();
  if (Multiplicity > 1)
    OS << " (x" << Multiplicity << ")";
  OS << ":\n";
  for (const CycleComponent &C : Components) {
    OS << "  thread " << C.ThreadName << " absI=" << C.ThreadAbs.Index.toString(true)
       << " acquires lock " << C.LockName
       << " absI=" << C.LockAbs.Index.toString(true) << "\n    context:";
    for (Label Site : C.Context)
      OS << ' ' << Site.text();
    OS << '\n';
  }
  return OS.str();
}

/// Serializes one component under the matching configuration. Built by
/// in-place append (no ostringstream): the fuzzer keys every witness
/// comparison through here.
static std::string componentKey(const CycleComponent &C, AbstractionKind Kind,
                                bool UseContext) {
  std::string Key;
  auto Append = [&Key](uint32_t E) {
    Key += '.';
    Key += std::to_string(E);
  };
  Key += 'T';
  for (uint32_t E : C.ThreadAbs.select(Kind).Elements)
    Append(E);
  Key += 'L';
  for (uint32_t E : C.LockAbs.select(Kind).Elements)
    Append(E);
  Key += 'C';
  if (UseContext) {
    for (Label Site : C.Context)
      Append(Site.raw());
  } else if (!C.Context.empty()) {
    Append(C.Context.back().raw());
  }
  return Key;
}

std::string AbstractCycle::key(AbstractionKind Kind, bool UseContext) const {
  std::vector<std::string> Parts;
  Parts.reserve(Components.size());
  for (const CycleComponent &C : Components)
    Parts.push_back(componentKey(C, Kind, UseContext));

  // Canonicalize under rotation: start at the lexicographically smallest
  // component (cycles have no distinguished first element).
  size_t Best = 0;
  auto RotationLess = [&](size_t A, size_t B) {
    for (size_t I = 0; I != Parts.size(); ++I) {
      const std::string &PA = Parts[(A + I) % Parts.size()];
      const std::string &PB = Parts[(B + I) % Parts.size()];
      if (PA != PB)
        return PA < PB;
    }
    return false;
  };
  for (size_t I = 1; I != Parts.size(); ++I)
    if (RotationLess(I, Best))
      Best = I;

  size_t Total = Parts.size();
  for (const std::string &Part : Parts)
    Total += Part.size();
  std::string Key;
  Key.reserve(Total);
  for (size_t I = 0; I != Parts.size(); ++I) {
    Key += Parts[(Best + I) % Parts.size()];
    Key += '|';
  }
  return Key;
}
