//===- igoodlock/Report.h - Abstract deadlock cycle reports -----*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What iGoodlock reports: abstract deadlock cycles. For a potential cycle
/// ((t1,L1,l1,C1), ..., (tm,Lm,lm,Cm)) the report is
/// ((abs(t1), abs(l1), C1), ..., (abs(tm), abs(lm), Cm)) — the abstractions
/// of the thread and lock objects plus the acquire contexts, which is all
/// Phase II needs to re-create the deadlock in a different execution
/// (concrete ids change between executions; abstractions do not).
///
//===----------------------------------------------------------------------===//

#ifndef DLF_IGOODLOCK_REPORT_H
#define DLF_IGOODLOCK_REPORT_H

#include "event/Abstraction.h"
#include "event/Ids.h"
#include "event/Label.h"

#include <string>
#include <vector>

namespace dlf {

/// One component (abs(t_i), abs(l_i), C_i) of an abstract cycle, plus the
/// concrete ids/names from the observing execution for debugging.
struct CycleComponent {
  ThreadId Thread; ///< concrete id in the *observed* execution (debug only)
  std::string ThreadName;
  AbstractionSet ThreadAbs;

  LockId Lock; ///< concrete id in the observed execution (debug only)
  std::string LockName;
  AbstractionSet LockAbs;

  /// C_i: acquire-site labels, outermost first; the last element is the
  /// site of the acquire of l_i itself.
  std::vector<Label> Context;
};

/// An abstract potential deadlock cycle as reported by iGoodlock.
struct AbstractCycle {
  std::vector<CycleComponent> Components;

  /// How many distinct dependency chains collapsed onto this abstract cycle.
  unsigned Multiplicity = 1;

  /// Human-readable multi-line rendering.
  std::string toString() const;

  /// A canonical, rotation-invariant key for this cycle under the given
  /// matching configuration. Two cycles with equal keys are
  /// indistinguishable to a Phase II variant using \p Kind / \p UseContext,
  /// which is exactly the equivalence the tester deduplicates and the
  /// witness matcher compares by.
  std::string key(AbstractionKind Kind, bool UseContext) const;
};

} // namespace dlf

#endif // DLF_IGOODLOCK_REPORT_H
