//===- igoodlock/ClassicGoodlock.cpp - DFS Goodlock baseline ----------------===//

#include "igoodlock/ClassicGoodlock.h"

#include <algorithm>
#include <unordered_map>

using namespace dlf;

namespace {

/// The mode of a held occurrence; entries from recorders that predate
/// lock modes default to Exclusive (the pre-mode semantics).
LockMode heldModeOf(const DependencyEntry &E, size_t K) {
  return K < E.HeldModes.size() ? E.HeldModes[K] : LockMode::Exclusive;
}

/// DFS context over the dependency relation, viewed as a lock-order graph:
/// an edge exists from entry e to entry e' when e.Acquired ∈ e'.Held in a
/// conflicting mode (the chain-link condition of Definition 2, widened for
/// reader-writer locks: a shared wait only blocks on an exclusive hold).
class DfsSearch {
public:
  DfsSearch(const LockDependencyLog &Log, const IGoodlockOptions &Opts,
            ClassicGoodlockStats &Stats)
      : D(Log.entries()), Log(Log), Opts(Opts), Stats(Stats) {
    for (uint32_t I = 0; I != D.size(); ++I)
      for (size_t K = 0; K != D[I].Held.size(); ++K)
        HeldIndex[D[I].Held[K].Raw].push_back({I, heldModeOf(D[I], K)});
  }

  std::vector<AbstractCycle> run() {
    for (uint32_t I = 0; I != D.size(); ++I) {
      if (D[I].Held.empty())
        continue; // cannot close a cycle (Definition 3 needs l_m ∈ L_1)
      pushEntry(I);
      dfs();
      popEntry();
    }
    return std::move(Cycles);
  }

private:
  void pushEntry(uint32_t Idx) {
    const DependencyEntry &E = D[Idx];
    Chain.push_back(Idx);
    Threads.push_back(E.Thread);
    Acquired.push_back(E.Acquired);
    AcquiredModes.push_back(E.AcquiredMode);
    HeldUnion.insert(HeldUnion.end(), E.Held.begin(), E.Held.end());
    for (size_t K = 0; K != E.Held.size(); ++K)
      HeldUnionModes.push_back(heldModeOf(E, K));
    HeldSizes.push_back(E.Held.size());
    ++Stats.ChainsExplored;
    Stats.PeakDepth = std::max(Stats.PeakDepth, Chain.size());
  }

  void popEntry() {
    const DependencyEntry &E = D[Chain.back()];
    HeldUnion.resize(HeldUnion.size() - E.Held.size());
    HeldUnionModes.resize(HeldUnionModes.size() - E.Held.size());
    HeldSizes.pop_back();
    AcquiredModes.pop_back();
    Acquired.pop_back();
    Threads.pop_back();
    Chain.pop_back();
  }

  static bool contains(const std::vector<LockId> &Haystack, LockId Needle) {
    return std::find(Haystack.begin(), Haystack.end(), Needle) !=
           Haystack.end();
  }

  bool canExtend(const DependencyEntry &E) const {
    // Distinct threads + minimal-first-thread duplicate suppression.
    if (E.Thread < Threads.front())
      return false;
    for (ThreadId T : Threads)
      if (T == E.Thread)
        return false;
    // Distinct acquired locks.
    if (contains(Acquired, E.Acquired))
      return false;
    // Pairwise-compatible guard sets: a common lock is only a violation
    // when at least one side holds it exclusively (read-read overlap is
    // not exclusion).
    for (size_t K = 0; K != E.Held.size(); ++K) {
      bool EExcl = heldModeOf(E, K) == LockMode::Exclusive;
      for (size_t U = 0; U != HeldUnion.size(); ++U)
        if (HeldUnion[U] == E.Held[K] &&
            (EExcl || HeldUnionModes[U] == LockMode::Exclusive))
          return false;
    }
    return true;
  }

  /// Definition 3's closing test: the head entry holds \p L in a mode that
  /// conflicts with acquiring it in \p Want.
  bool headHoldsConflicting(LockId L, LockMode Want) const {
    const DependencyEntry &Head = D[Chain.front()];
    for (size_t K = 0; K != Head.Held.size(); ++K)
      if (Head.Held[K] == L && lockModesConflict(Want, heldModeOf(Head, K)))
        return true;
    return false;
  }

  void dfs() {
    if (Chain.size() >= Opts.MaxCycleLength)
      return;
    auto CandIt = HeldIndex.find(Acquired.back().Raw);
    if (CandIt == HeldIndex.end())
      return;
    for (auto [Next, HoldMode] : CandIt->second) {
      const DependencyEntry &E = D[Next];
      // The wait-for link must actually block: a shared wait on a shared
      // hold is no edge.
      if (!lockModesConflict(AcquiredModes.back(), HoldMode))
        continue;
      if (!canExtend(E))
        continue;
      if (headHoldsConflicting(E.Acquired, E.AcquiredMode)) {
        // Cycle closed; report, do not extend (no complex cycles).
        if (!hbFeasible(E))
          ++Stats.FilteredByHb;
        else if (Cycles.size() < Opts.MaxCycles)
          report(E);
        else
          Stats.Truncated = true;
        continue;
      }
      pushEntry(Next);
      dfs();
      popEntry();
    }
  }

  bool hbFeasible(const DependencyEntry &Closing) const {
    if (!Opts.FilterByHappensBefore)
      return true;
    for (size_t I = 0; I != Chain.size(); ++I) {
      if (!vcConcurrent(D[Chain[I]].Clock, Closing.Clock))
        return false;
      for (size_t J = I + 1; J != Chain.size(); ++J)
        if (!vcConcurrent(D[Chain[I]].Clock, D[Chain[J]].Clock))
          return false;
    }
    return true;
  }

  void report(const DependencyEntry &Closing) {
    AbstractCycle Cycle;
    auto Add = [&](const DependencyEntry &E) {
      CycleComponent Comp;
      Comp.Thread = E.Thread;
      Comp.ThreadName = Log.threadInfo(E.Thread).Name;
      Comp.ThreadAbs = Log.threadInfo(E.Thread).Abs;
      Comp.Lock = E.Acquired;
      Comp.LockName = Log.lockInfo(E.Acquired).Name;
      Comp.LockAbs = Log.lockInfo(E.Acquired).Abs;
      Comp.Context = E.Context;
      Cycle.Components.push_back(std::move(Comp));
    };
    for (uint32_t Idx : Chain)
      Add(D[Idx]);
    Add(Closing);

    std::string Key =
        Cycle.key(AbstractionKind::ExecutionIndex, /*UseContext=*/true);
    auto [It, Inserted] = KeyToIdx.try_emplace(Key, Cycles.size());
    if (!Inserted) {
      ++Cycles[It->second].Multiplicity;
      return;
    }
    Cycles.push_back(std::move(Cycle));
  }

  const std::vector<DependencyEntry> &D;
  const LockDependencyLog &Log;
  const IGoodlockOptions &Opts;
  ClassicGoodlockStats &Stats;

  std::unordered_map<uint64_t, std::vector<std::pair<uint32_t, LockMode>>>
      HeldIndex;

  // The single live chain (the DFS memory story).
  std::vector<uint32_t> Chain;
  std::vector<ThreadId> Threads;
  std::vector<LockId> Acquired;
  std::vector<LockMode> AcquiredModes;
  std::vector<LockId> HeldUnion;
  std::vector<LockMode> HeldUnionModes;
  std::vector<size_t> HeldSizes;

  std::vector<AbstractCycle> Cycles;
  std::unordered_map<std::string, size_t> KeyToIdx;
};

} // namespace

std::vector<AbstractCycle>
dlf::runClassicGoodlock(const LockDependencyLog &Log,
                        const IGoodlockOptions &Opts,
                        ClassicGoodlockStats *Stats) {
  ClassicGoodlockStats LocalStats;
  DfsSearch Search(Log, Opts, LocalStats);
  std::vector<AbstractCycle> Cycles = Search.run();
  if (Stats)
    *Stats = LocalStats;
  return Cycles;
}
