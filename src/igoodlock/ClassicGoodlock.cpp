//===- igoodlock/ClassicGoodlock.cpp - DFS Goodlock baseline ----------------===//

#include "igoodlock/ClassicGoodlock.h"

#include <algorithm>
#include <unordered_map>

using namespace dlf;

namespace {

/// DFS context over the dependency relation, viewed as a lock-order graph:
/// an edge exists from entry e to entry e' when e.Acquired ∈ e'.Held (the
/// chain-link condition of Definition 2).
class DfsSearch {
public:
  DfsSearch(const LockDependencyLog &Log, const IGoodlockOptions &Opts,
            ClassicGoodlockStats &Stats)
      : D(Log.entries()), Log(Log), Opts(Opts), Stats(Stats) {
    for (uint32_t I = 0; I != D.size(); ++I)
      for (LockId Held : D[I].Held)
        HeldIndex[Held.Raw].push_back(I);
  }

  std::vector<AbstractCycle> run() {
    for (uint32_t I = 0; I != D.size(); ++I) {
      if (D[I].Held.empty())
        continue; // cannot close a cycle (Definition 3 needs l_m ∈ L_1)
      pushEntry(I);
      dfs();
      popEntry();
    }
    return std::move(Cycles);
  }

private:
  void pushEntry(uint32_t Idx) {
    const DependencyEntry &E = D[Idx];
    Chain.push_back(Idx);
    Threads.push_back(E.Thread);
    Acquired.push_back(E.Acquired);
    HeldUnion.insert(HeldUnion.end(), E.Held.begin(), E.Held.end());
    HeldSizes.push_back(E.Held.size());
    ++Stats.ChainsExplored;
    Stats.PeakDepth = std::max(Stats.PeakDepth, Chain.size());
  }

  void popEntry() {
    const DependencyEntry &E = D[Chain.back()];
    HeldUnion.resize(HeldUnion.size() - E.Held.size());
    HeldSizes.pop_back();
    Acquired.pop_back();
    Threads.pop_back();
    Chain.pop_back();
  }

  static bool contains(const std::vector<LockId> &Haystack, LockId Needle) {
    return std::find(Haystack.begin(), Haystack.end(), Needle) !=
           Haystack.end();
  }

  bool canExtend(const DependencyEntry &E) const {
    // Distinct threads + minimal-first-thread duplicate suppression.
    if (E.Thread < Threads.front())
      return false;
    for (ThreadId T : Threads)
      if (T == E.Thread)
        return false;
    // Distinct acquired locks.
    if (contains(Acquired, E.Acquired))
      return false;
    // Pairwise-disjoint guard sets.
    for (LockId Held : E.Held)
      if (contains(HeldUnion, Held))
        return false;
    return true;
  }

  void dfs() {
    if (Chain.size() >= Opts.MaxCycleLength)
      return;
    auto CandIt = HeldIndex.find(Acquired.back().Raw);
    if (CandIt == HeldIndex.end())
      return;
    for (uint32_t Next : CandIt->second) {
      const DependencyEntry &E = D[Next];
      if (!canExtend(E))
        continue;
      if (contains(D[Chain.front()].Held, E.Acquired)) {
        // Cycle closed; report, do not extend (no complex cycles).
        if (!hbFeasible(E))
          ++Stats.FilteredByHb;
        else if (Cycles.size() < Opts.MaxCycles)
          report(E);
        else
          Stats.Truncated = true;
        continue;
      }
      pushEntry(Next);
      dfs();
      popEntry();
    }
  }

  bool hbFeasible(const DependencyEntry &Closing) const {
    if (!Opts.FilterByHappensBefore)
      return true;
    for (size_t I = 0; I != Chain.size(); ++I) {
      if (!vcConcurrent(D[Chain[I]].Clock, Closing.Clock))
        return false;
      for (size_t J = I + 1; J != Chain.size(); ++J)
        if (!vcConcurrent(D[Chain[I]].Clock, D[Chain[J]].Clock))
          return false;
    }
    return true;
  }

  void report(const DependencyEntry &Closing) {
    AbstractCycle Cycle;
    auto Add = [&](const DependencyEntry &E) {
      CycleComponent Comp;
      Comp.Thread = E.Thread;
      Comp.ThreadName = Log.threadInfo(E.Thread).Name;
      Comp.ThreadAbs = Log.threadInfo(E.Thread).Abs;
      Comp.Lock = E.Acquired;
      Comp.LockName = Log.lockInfo(E.Acquired).Name;
      Comp.LockAbs = Log.lockInfo(E.Acquired).Abs;
      Comp.Context = E.Context;
      Cycle.Components.push_back(std::move(Comp));
    };
    for (uint32_t Idx : Chain)
      Add(D[Idx]);
    Add(Closing);

    std::string Key =
        Cycle.key(AbstractionKind::ExecutionIndex, /*UseContext=*/true);
    auto [It, Inserted] = KeyToIdx.try_emplace(Key, Cycles.size());
    if (!Inserted) {
      ++Cycles[It->second].Multiplicity;
      return;
    }
    Cycles.push_back(std::move(Cycle));
  }

  const std::vector<DependencyEntry> &D;
  const LockDependencyLog &Log;
  const IGoodlockOptions &Opts;
  ClassicGoodlockStats &Stats;

  std::unordered_map<uint64_t, std::vector<uint32_t>> HeldIndex;

  // The single live chain (the DFS memory story).
  std::vector<uint32_t> Chain;
  std::vector<ThreadId> Threads;
  std::vector<LockId> Acquired;
  std::vector<LockId> HeldUnion;
  std::vector<size_t> HeldSizes;

  std::vector<AbstractCycle> Cycles;
  std::unordered_map<std::string, size_t> KeyToIdx;
};

} // namespace

std::vector<AbstractCycle>
dlf::runClassicGoodlock(const LockDependencyLog &Log,
                        const IGoodlockOptions &Opts,
                        ClassicGoodlockStats *Stats) {
  ClassicGoodlockStats LocalStats;
  DfsSearch Search(Log, Opts, LocalStats);
  std::vector<AbstractCycle> Cycles = Search.run();
  if (Stats)
    *Stats = LocalStats;
  return Cycles;
}
