//===- igoodlock/IGoodlock.cpp - Algorithm 1 --------------------------------===//

#include "igoodlock/IGoodlock.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace dlf;

namespace {

/// A dependency chain: just the entry indices (kept light because the
/// closure materializes whole levels of these — the paper's memory-for-
/// runtime trade). The Definition-2 checks scan the chain's entries
/// through the relation, which keeps per-extension copying to one short
/// index vector.
struct Chain {
  std::vector<uint32_t> EntryIdx;
  /// Last entry's acquired lock (chain-link check: must be held by next).
  LockId LastAcquired;
};

bool contains(const std::vector<LockId> &Haystack, LockId Needle) {
  return std::find(Haystack.begin(), Haystack.end(), Needle) != Haystack.end();
}

/// Definition 2 for appending \p E to \p C, including the §2.2.3 duplicate
/// suppression (the chain's first thread id is minimal).
bool canExtend(const std::vector<DependencyEntry> &D, const Chain &C,
               const DependencyEntry &E) {
  // 1. distinct threads; duplicate suppression: first thread is minimal.
  if (E.Thread < D[C.EntryIdx.front()].Thread)
    return false;
  for (uint32_t Idx : C.EntryIdx) {
    const DependencyEntry &Prev = D[Idx];
    if (Prev.Thread == E.Thread)
      return false;
    // 2. acquired locks pairwise distinct.
    if (Prev.Acquired == E.Acquired)
      return false;
    // 4. held sets pairwise disjoint.
    for (LockId Held : E.Held)
      if (contains(Prev.Held, Held))
        return false;
  }
  // 3. the previous acquired lock must be held by this entry's thread.
  if (!contains(E.Held, C.LastAcquired))
    return false;
  return true;
}

} // namespace

std::vector<AbstractCycle> dlf::runIGoodlock(const LockDependencyLog &Log,
                                             const IGoodlockOptions &Opts,
                                             IGoodlockStats *Stats) {
  const std::vector<DependencyEntry> &D = Log.entries();

  // Index: lock id -> entries whose held set contains it (extension
  // candidates for a chain whose last acquired lock is that lock). Entries
  // holding nothing can never appear past position 1 of a cycle chain, and
  // entries are only *started* from (see below), so the index is the hot
  // path of the closure.
  std::unordered_map<uint64_t, std::vector<uint32_t>> HeldIndex;
  for (uint32_t I = 0; I != D.size(); ++I)
    for (LockId Held : D[I].Held)
      HeldIndex[Held.Raw].push_back(I);

  IGoodlockStats LocalStats;
  std::vector<AbstractCycle> Cycles;

  // Happens-before feasibility: every pair of component acquires must be
  // concurrent (entries with no clock carry no information).
  auto HbFeasible = [&](const Chain &C, const DependencyEntry &Closing) {
    if (!Opts.FilterByHappensBefore)
      return true;
    std::vector<const DependencyEntry *> Members;
    for (uint32_t Idx : C.EntryIdx)
      Members.push_back(&D[Idx]);
    Members.push_back(&Closing);
    for (size_t I = 0; I != Members.size(); ++I)
      for (size_t J = I + 1; J != Members.size(); ++J)
        if (!vcConcurrent(Members[I]->Clock, Members[J]->Clock))
          return false;
    return true;
  };
  // Collapse abstract duplicates; keyed by the most precise configuration.
  std::unordered_map<std::string, size_t> CycleKeyToIdx;

  auto ReportCycle = [&](const Chain &C, const DependencyEntry &Closing) {
    AbstractCycle Cycle;
    auto AddComponent = [&](const DependencyEntry &E) {
      CycleComponent Comp;
      Comp.Thread = E.Thread;
      Comp.ThreadName = Log.threadInfo(E.Thread).Name;
      Comp.ThreadAbs = Log.threadInfo(E.Thread).Abs;
      Comp.Lock = E.Acquired;
      Comp.LockName = Log.lockInfo(E.Acquired).Name;
      Comp.LockAbs = Log.lockInfo(E.Acquired).Abs;
      Comp.Context = E.Context;
      Cycle.Components.push_back(std::move(Comp));
    };
    for (uint32_t Idx : C.EntryIdx)
      AddComponent(D[Idx]);
    AddComponent(Closing);

    std::string Key =
        Cycle.key(AbstractionKind::ExecutionIndex, /*UseContext=*/true);
    auto [It, Inserted] = CycleKeyToIdx.try_emplace(Key, Cycles.size());
    if (!Inserted) {
      ++Cycles[It->second].Multiplicity;
      return;
    }
    Cycles.push_back(std::move(Cycle));
  };

  // D_1 = D, restricted to entries that can be the head of a cycle chain:
  // the head's held set must eventually contain the closing lock, so an
  // empty held set can never close (Definition 3 needs l_m ∈ L_1).
  std::vector<Chain> Current;
  for (uint32_t I = 0; I != D.size(); ++I) {
    if (D[I].Held.empty())
      continue;
    Chain C;
    C.EntryIdx = {I};
    C.LastAcquired = D[I].Acquired;
    Current.push_back(std::move(C));
  }
  LocalStats.ChainsExplored += Current.size();

  // Iterate: find all cycles of length k before any of length k+1.
  for (unsigned Len = 1; Len < Opts.MaxCycleLength && !Current.empty();
       ++Len) {
    ++LocalStats.Iterations;
    std::vector<Chain> Next;
    for (const Chain &C : Current) {
      auto CandIt = HeldIndex.find(C.LastAcquired.Raw);
      if (CandIt == HeldIndex.end())
        continue;
      for (uint32_t EIdx : CandIt->second) {
        const DependencyEntry &E = D[EIdx];
        if (!canExtend(D, C, E))
          continue;
        // Definition 3: cycle when the new acquired lock is held by the
        // chain's first thread. Cycles are reported, not extended
        // (no complex cycles, §2.2.2).
        if (contains(D[C.EntryIdx.front()].Held, E.Acquired)) {
          if (!HbFeasible(C, E))
            ++LocalStats.FilteredByHb;
          else if (Cycles.size() < Opts.MaxCycles)
            ReportCycle(C, E);
          else
            LocalStats.Truncated = true;
          continue;
        }
        if (Next.size() >= Opts.MaxChains) {
          LocalStats.Truncated = true;
          break;
        }
        Chain Extended;
        Extended.EntryIdx.reserve(C.EntryIdx.size() + 1);
        Extended.EntryIdx = C.EntryIdx;
        Extended.EntryIdx.push_back(EIdx);
        Extended.LastAcquired = E.Acquired;
        Next.push_back(std::move(Extended));
      }
    }
    LocalStats.ChainsExplored += Next.size();
    Current = std::move(Next);
  }

  if (Stats)
    *Stats = LocalStats;
  return Cycles;
}
