//===- igoodlock/IGoodlock.cpp - Algorithm 1 --------------------------------===//
//
// The iterative closure, rebuilt as a parallel, allocation-lean engine:
//
//  * Levels are flat arenas (one contiguous index buffer per level; every
//    chain of level k has exactly k entries, so slices are uniform) instead
//    of per-chain heap vectors.
//  * Held-set disjointness — the O(|Held|^2) inner loop of canExtend — is a
//    single AND of precomputed bitmasks. Lock ids are densified in
//    first-appearance order and folded modulo 64 into the mask: a clear AND
//    always proves disjointness, a set AND is an exact shared-lock witness
//    when the execution has <= 64 distinct locks, and only the rare set-AND
//    above 64 locks pays for a sorted-vector intersection.
//  * Each level's chains are sharded across AnalysisJobs workers. Workers
//    run the exact serial per-chain scan speculatively; a deterministic
//    in-order merge replays their outputs (extension counts locate the
//    MaxChains cut point exactly), so cycles, multiplicities, stats, and
//    truncation are byte-identical to serial for every job count. Levels
//    are natural barriers — the same structure the campaign runner's
//    commit frontier uses.
//  * Cycle dedup keys are rotation-minimal 128-bit structural hashes of
//    per-entry component data (each entry hashed once, no ostringstream),
//    and the happens-before filter memoizes pairwise clock comparisons.
//
//===----------------------------------------------------------------------===//

#include "igoodlock/IGoodlock.h"

#include "support/Hash.h"
#include "telemetry/Metrics.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace dlf;

namespace {

/// The held-set bit for a dense lock id: ids are folded modulo 64, so a
/// clear AND of two masks *always* proves disjointness, and a set AND is an
/// exact shared-lock witness precisely when the execution has at most 64
/// distinct locks (the mapping is then injective — RelationIndex::MaskExact).
uint64_t lockBit(uint32_t Dense) { return uint64_t(1) << (Dense & 63); }

/// Per-entry precomputed extension data over densified lock ids.
struct EntryMeta {
  /// Folded bits of the held set (see lockBit).
  uint64_t HeldMask = 0;
  /// Folded bits of the *exclusively* held subset. Two held sets conflict
  /// only when a common lock is held exclusively by at least one side —
  /// read-read overlap is not exclusion. For mutex-only logs this equals
  /// HeldMask, so the mode-aware tests degenerate to the old ones.
  uint64_t HeldMaskExcl = 0;
  uint32_t DenseAcquired = 0;
  /// Slice of RelationIndex::HeldSorted holding the sorted dense held set.
  uint32_t HeldBegin = 0;
  uint32_t HeldEnd = 0;
};

/// Per-chain accumulated state: the union of the members' held masks and
/// the last acquired lock (the link the next entry must hold), plus the
/// mode it was requested in (a shared wait is only blocked by an
/// exclusive hold).
struct ChainMeta {
  uint64_t HeldMask = 0;
  uint64_t HeldMaskExcl = 0;
  uint32_t LastDenseAcquired = 0;
  LockMode LastAcquiredMode = LockMode::Exclusive;
};

/// One closure level in flat-arena form: chain I occupies
/// Idx[I*Len, (I+1)*Len), and Meta[I] is its accumulated state.
struct ChainLevel {
  std::vector<uint32_t> Idx;
  std::vector<ChainMeta> Meta;
  unsigned Len = 1;

  size_t size() const { return Meta.size(); }
  const uint32_t *chain(size_t I) const { return Idx.data() + I * Len; }
};

/// Read-only per-relation index shared by all workers.
struct RelationIndex {
  std::vector<EntryMeta> Meta;
  /// All held sets as sorted dense ids, sliced by EntryMeta::HeldBegin/End.
  std::vector<uint32_t> HeldSorted;
  /// Parallel to HeldSorted: 1 when that occurrence is an exclusive hold
  /// (the >64-lock fallback needs per-occurrence modes, not just masks).
  std::vector<uint8_t> HeldSortedExcl;
  /// CSR candidate index: for dense lock id L, CandData[CandOffsets[L],
  /// CandOffsets[L+1]) are the entries whose held set contains L, in entry
  /// order — the extension candidates for a chain whose last acquired lock
  /// is L. Built per held *occurrence* so candidate iteration order (and
  /// thus discovery order) matches the pre-arena engine exactly.
  std::vector<uint32_t> CandOffsets;
  std::vector<uint32_t> CandData;
  /// Parallel to CandData: the mode of the held occurrence that put the
  /// entry on the candidate list. A chain whose last acquire is Shared
  /// only waits on candidates whose hold of that lock is Exclusive.
  std::vector<LockMode> CandMode;
  uint32_t NumLocks = 0;
  /// True when lockBit is injective (<= 64 distinct locks): mask tests are
  /// then exact in both directions and the sorted fallback is never needed.
  bool MaskExact = true;
};

RelationIndex buildIndex(const std::vector<DependencyEntry> &D) {
  RelationIndex Ix;
  std::unordered_map<uint64_t, uint32_t> DenseLock;
  auto Densify = [&](LockId L) {
    auto [It, Inserted] = DenseLock.try_emplace(L.Raw, Ix.NumLocks);
    if (Inserted)
      ++Ix.NumLocks;
    return It->second;
  };

  // Entries without recorded modes (legacy logs) default to Exclusive,
  // which reproduces the pre-mode engine exactly.
  auto HeldModeOf = [](const DependencyEntry &E, size_t K) {
    return K < E.HeldModes.size() ? E.HeldModes[K] : LockMode::Exclusive;
  };

  size_t HeldTotal = 0;
  for (const DependencyEntry &E : D)
    HeldTotal += E.Held.size();
  Ix.Meta.resize(D.size());
  Ix.HeldSorted.reserve(HeldTotal);
  Ix.HeldSortedExcl.reserve(HeldTotal);
  std::vector<std::pair<uint32_t, uint8_t>> HeldBuf;
  for (uint32_t I = 0; I != D.size(); ++I) {
    EntryMeta &M = Ix.Meta[I];
    M.HeldBegin = static_cast<uint32_t>(Ix.HeldSorted.size());
    HeldBuf.clear();
    for (size_t K = 0; K != D[I].Held.size(); ++K) {
      uint32_t Dense = Densify(D[I].Held[K]);
      bool Excl = HeldModeOf(D[I], K) == LockMode::Exclusive;
      HeldBuf.emplace_back(Dense, Excl ? 1 : 0);
      M.HeldMask |= lockBit(Dense);
      if (Excl)
        M.HeldMaskExcl |= lockBit(Dense);
    }
    std::sort(HeldBuf.begin(), HeldBuf.end());
    for (auto [Dense, Excl] : HeldBuf) {
      Ix.HeldSorted.push_back(Dense);
      Ix.HeldSortedExcl.push_back(Excl);
    }
    M.HeldEnd = static_cast<uint32_t>(Ix.HeldSorted.size());
    M.DenseAcquired = Densify(D[I].Acquired);
  }
  Ix.MaskExact = Ix.NumLocks <= 64;

  // CSR fill: counts, prefix sum, then a second pass placing entry indices
  // (ascending I per lock, preserving candidate order).
  Ix.CandOffsets.assign(Ix.NumLocks + 1, 0);
  for (const DependencyEntry &E : D)
    for (LockId Held : E.Held)
      ++Ix.CandOffsets[DenseLock[Held.Raw] + 1];
  for (uint32_t L = 0; L != Ix.NumLocks; ++L)
    Ix.CandOffsets[L + 1] += Ix.CandOffsets[L];
  Ix.CandData.resize(HeldTotal);
  Ix.CandMode.resize(HeldTotal);
  std::vector<uint32_t> Cursor(Ix.CandOffsets.begin(),
                               Ix.CandOffsets.end() - 1);
  for (uint32_t I = 0; I != D.size(); ++I)
    for (size_t K = 0; K != D[I].Held.size(); ++K) {
      uint32_t Slot = Cursor[DenseLock[D[I].Held[K].Raw]]++;
      Ix.CandData[Slot] = I;
      Ix.CandMode[Slot] = HeldModeOf(D[I], K);
    }
  return Ix;
}

/// Would acquiring \p DenseLock in \p WantMode block on \p M's holds? An
/// exclusive want conflicts with any hold; a shared want only with an
/// exclusive hold. Clear folded bits are exact "no"s; set bits fall back
/// to the sorted slice only when the fold is lossy.
bool heldConflicts(const RelationIndex &Ix, const EntryMeta &M,
                   uint32_t DenseLock, LockMode WantMode) {
  uint64_t Mask =
      WantMode == LockMode::Exclusive ? M.HeldMask : M.HeldMaskExcl;
  if (!(Mask & lockBit(DenseLock)))
    return false;
  if (Ix.MaskExact)
    return true;
  auto Begin = Ix.HeldSorted.begin() + M.HeldBegin;
  auto End = Ix.HeldSorted.begin() + M.HeldEnd;
  auto Range = std::equal_range(Begin, End, DenseLock);
  for (auto It = Range.first; It != Range.second; ++It)
    if (WantMode == LockMode::Exclusive ||
        Ix.HeldSortedExcl[static_cast<size_t>(It - Ix.HeldSorted.begin())])
      return true;
  return false;
}

/// Exact mode-aware held-set compatibility of two entries via sorted-merge
/// intersection (the >= 64-dense-ids fallback): a common lock is only a
/// violation when at least one side holds it exclusively.
bool sortedConflictFree(const RelationIndex &Ix, uint32_t AIdx,
                        uint32_t BIdx) {
  const EntryMeta &A = Ix.Meta[AIdx];
  const EntryMeta &B = Ix.Meta[BIdx];
  uint32_t I = A.HeldBegin, J = B.HeldBegin;
  while (I != A.HeldEnd && J != B.HeldEnd) {
    uint32_t AV = Ix.HeldSorted[I], BV = Ix.HeldSorted[J];
    if (AV == BV) {
      bool AnyExcl = false;
      while (I != A.HeldEnd && Ix.HeldSorted[I] == AV)
        AnyExcl |= Ix.HeldSortedExcl[I] != 0, ++I;
      while (J != B.HeldEnd && Ix.HeldSorted[J] == BV)
        AnyExcl |= Ix.HeldSortedExcl[J] != 0, ++J;
      if (AnyExcl)
        return false;
    } else if (AV < BV)
      ++I;
    else
      ++J;
  }
  return true;
}

/// Definition 2 for appending entry \p EIdx to chain \p CI, including the
/// §2.2.3 duplicate suppression (the chain's first thread id is minimal).
/// Thread and acquired-lock distinctness scan the chain (at most
/// MaxCycleLength comparisons); held disjointness is the bitmask path.
bool canExtend(const std::vector<DependencyEntry> &D, const RelationIndex &Ix,
               const ChainLevel &Cur, size_t CI, uint32_t EIdx,
               bool KeepGuardedCycles) {
  const DependencyEntry &E = D[EIdx];
  const EntryMeta &EM = Ix.Meta[EIdx];
  const ChainMeta &CM = Cur.Meta[CI];
  const uint32_t *C = Cur.chain(CI);
  // 1. distinct threads; duplicate suppression: first thread is minimal.
  if (E.Thread < D[C[0]].Thread)
    return false;
  for (unsigned I = 0; I != Cur.Len; ++I) {
    const DependencyEntry &Prev = D[C[I]];
    if (Prev.Thread == E.Thread)
      return false;
    // 2. acquired locks pairwise distinct.
    if (Prev.Acquired == E.Acquired)
      return false;
  }
  // 3. (previous acquired lock held by this entry, in a conflicting mode)
  // is checked at the candidate loop via CandMode: the CSR list for
  // CM.LastDenseAcquired only contains entries holding that lock, and the
  // per-occurrence mode filter rejects shared-wait-on-shared-hold there.
  // 4. held sets pairwise compatible: a conflict needs a common lock held
  // exclusively by at least one side, so the test ANDs each side's full
  // mask against the other's exclusive mask (for all-exclusive logs both
  // masks coincide and this is the old disjointness test). A clear result
  // is always exact; a set bit is an exact reject when the fold is
  // injective, otherwise the sorted intersection decides. With
  // KeepGuardedCycles the requirement is waived — the overlap is exactly a
  // guard lock, and the pruner downstream classifies (and names) it.
  if (!KeepGuardedCycles &&
      ((CM.HeldMaskExcl & EM.HeldMask) | (CM.HeldMask & EM.HeldMaskExcl))) {
    if (Ix.MaskExact)
      return false;
    for (unsigned I = 0; I != Cur.Len; ++I)
      if (!sortedConflictFree(Ix, C[I], EIdx))
        return false;
  }
  return true;
}

/// Memoizes pairwise clock comparisons per worker: the HB filter re-derives
/// the same member-pair orderings for every cycle those members close.
class HbCache {
public:
  explicit HbCache(const std::vector<DependencyEntry> &D) : D(D) {}

  bool concurrent(uint32_t I, uint32_t J) {
    uint64_t Key = I < J ? (uint64_t(I) << 32) | J : (uint64_t(J) << 32) | I;
    auto [It, Inserted] = Memo.try_emplace(Key, false);
    if (Inserted)
      It->second = vcConcurrent(D[I].Clock, D[J].Clock);
    return It->second;
  }

private:
  const std::vector<DependencyEntry> &D;
  std::unordered_map<uint64_t, bool> Memo;
};

/// Happens-before feasibility of chain + closing entry: every member pair
/// concurrent (pair order matches the serial engine, though only the
/// boolean result matters).
bool hbFeasible(const uint32_t *C, unsigned Len, uint32_t Closing,
                HbCache &Hb) {
  for (unsigned I = 0; I != Len; ++I) {
    for (unsigned J = I + 1; J != Len; ++J)
      if (!Hb.concurrent(C[I], C[J]))
        return false;
    if (!Hb.concurrent(C[I], Closing))
      return false;
  }
  return true;
}

/// A potential cycle discovered by a worker, with enough ordering
/// information (ExtsBefore) for the merge to replay the serial engine's
/// MaxChains cut exactly.
struct CycleRec {
  uint32_t ChainIdx; ///< global index into the current level
  uint32_t Closing;  ///< closing dependency entry
  uint64_t ExtsBefore; ///< worker-local extensions emitted before this cycle
  bool HbOk;
};

/// One worker's speculative output for a shard of the current level.
struct WorkerOut {
  std::vector<uint32_t> NextIdx;
  std::vector<ChainMeta> NextMeta;
  std::vector<CycleRec> Cycles;
  /// Cumulative extension count after each chain of the shard (locates the
  /// MaxChains cut chain at merge time).
  std::vector<uint64_t> ExtsAfterChain;
  size_t ShardBegin = 0;
  size_t ShardEnd = 0;
};

/// The serial per-chain scan over [Begin, End) of the current level. This
/// is the only place extension work happens; the parallel engine runs it
/// once per shard and the serial engine runs it once with one shard, so
/// their per-chain behavior is identical by construction.
void processShard(const std::vector<DependencyEntry> &D,
                  const RelationIndex &Ix, const ChainLevel &Cur,
                  const IGoodlockOptions &Opts, size_t Begin, size_t End,
                  WorkerOut &Out) {
  HbCache Hb(D);
  Out.ShardBegin = Begin;
  Out.ShardEnd = End;
  Out.ExtsAfterChain.reserve(End - Begin);
  const unsigned Len = Cur.Len;
  uint64_t Exts = 0;
  for (size_t CI = Begin; CI != End; ++CI) {
    const ChainMeta &CM = Cur.Meta[CI];
    const uint32_t *Chain = Cur.chain(CI);
    const EntryMeta &Head = Ix.Meta[Chain[0]];
    uint32_t CandBegin = Ix.CandOffsets[CM.LastDenseAcquired];
    uint32_t CandEnd = Ix.CandOffsets[CM.LastDenseAcquired + 1];
    for (uint32_t Cand = CandBegin; Cand != CandEnd; ++Cand) {
      uint32_t EIdx = Ix.CandData[Cand];
      // The wait-for link: the chain's pending acquire must actually block
      // on this candidate's hold. Only a shared wait on a shared hold
      // fails (mutex-only logs never skip here).
      if (!lockModesConflict(CM.LastAcquiredMode, Ix.CandMode[Cand]))
        continue;
      if (!canExtend(D, Ix, Cur, CI, EIdx, Opts.KeepGuardedCycles))
        continue;
      const EntryMeta &EM = Ix.Meta[EIdx];
      // Definition 3: cycle when the new acquired lock is held by the
      // chain's first thread in a conflicting mode. Cycles are reported,
      // not extended (no complex cycles, §2.2.2).
      if (heldConflicts(Ix, Head, EM.DenseAcquired, D[EIdx].AcquiredMode)) {
        bool HbOk = !Opts.FilterByHappensBefore ||
                    hbFeasible(Chain, Len, EIdx, Hb);
        Out.Cycles.push_back(
            {static_cast<uint32_t>(CI), EIdx, Exts, HbOk});
        continue;
      }
      Out.NextIdx.insert(Out.NextIdx.end(), Chain, Chain + Len);
      Out.NextIdx.push_back(EIdx);
      Out.NextMeta.push_back({CM.HeldMask | EM.HeldMask,
                              CM.HeldMaskExcl | EM.HeldMaskExcl,
                              EM.DenseAcquired, D[EIdx].AcquiredMode});
      ++Exts;
    }
    Out.ExtsAfterChain.push_back(Exts);
  }
}

} // namespace

std::vector<AbstractCycle> dlf::runIGoodlock(const LockDependencyLog &Log,
                                             const IGoodlockOptions &Opts,
                                             IGoodlockStats *Stats) {
  auto StartTime = std::chrono::steady_clock::now();
  const std::vector<DependencyEntry> &D = Log.entries();

  IGoodlockStats LocalStats;
  LocalStats.Entries = D.size();
  unsigned Jobs =
      Opts.AnalysisJobs
          ? Opts.AnalysisJobs
          : std::max(1u, std::thread::hardware_concurrency());
  LocalStats.JobsUsed = Jobs;

  RelationIndex Ix = buildIndex(D);
  std::vector<AbstractCycle> Cycles;

  // Per-entry component hashes — the cycle dedup key material, equivalent
  // to the old string key(ExecutionIndex, UseContext=true) — computed
  // lazily so an entry is hashed once no matter how many cycles it closes.
  std::vector<Hash128> CompHash(D.size());
  std::vector<bool> CompHashReady(D.size(), false);
  auto componentHash = [&](uint32_t EIdx) {
    if (!CompHashReady[EIdx]) {
      const DependencyEntry &E = D[EIdx];
      const Abstraction &T =
          Log.threadInfo(E.Thread).Abs.select(AbstractionKind::ExecutionIndex);
      const Abstraction &L =
          Log.lockInfo(E.Acquired).Abs.select(AbstractionKind::ExecutionIndex);
      Hasher128 H;
      // Variable-length sequences are length-framed so (thread, lock,
      // context) element streams cannot alias each other.
      H.add(T.Elements.size());
      for (uint32_t El : T.Elements)
        H.add(El);
      H.add(L.Elements.size());
      for (uint32_t El : L.Elements)
        H.add(El);
      H.add(E.Context.size());
      for (Label Site : E.Context)
        H.add(Site.raw());
      CompHash[EIdx] = H.finish();
      CompHashReady[EIdx] = true;
    }
    return CompHash[EIdx];
  };

  // Collapse abstract duplicates, keyed by the rotation-minimal structural
  // hash (ties between rotations yield identical sequences, so any minimal
  // choice streams the same key).
  std::unordered_map<Hash128, size_t> CycleKeyToIdx;
  std::vector<Hash128> MemberBuf;
  auto ReportCycle = [&](const uint32_t *Chain, unsigned Len,
                         uint32_t Closing) {
    const size_t M = Len + 1;
    MemberBuf.clear();
    for (unsigned I = 0; I != Len; ++I)
      MemberBuf.push_back(componentHash(Chain[I]));
    MemberBuf.push_back(componentHash(Closing));
    size_t Best = 0;
    for (size_t R = 1; R != M; ++R)
      for (size_t I = 0; I != M; ++I) {
        const Hash128 &A = MemberBuf[(R + I) % M];
        const Hash128 &B = MemberBuf[(Best + I) % M];
        if (A != B) {
          if (A < B)
            Best = R;
          break;
        }
      }
    Hasher128 H;
    H.add(M);
    for (size_t I = 0; I != M; ++I) {
      const Hash128 &Part = MemberBuf[(Best + I) % M];
      H.add(Part.Hi);
      H.add(Part.Lo);
    }
    auto [It, Inserted] = CycleKeyToIdx.try_emplace(H.finish(), Cycles.size());
    if (!Inserted) {
      ++Cycles[It->second].Multiplicity;
      return;
    }
    AbstractCycle Cycle;
    auto AddComponent = [&](const DependencyEntry &E) {
      CycleComponent Comp;
      Comp.Thread = E.Thread;
      Comp.ThreadName = Log.threadInfo(E.Thread).Name;
      Comp.ThreadAbs = Log.threadInfo(E.Thread).Abs;
      Comp.Lock = E.Acquired;
      Comp.LockName = Log.lockInfo(E.Acquired).Name;
      Comp.LockAbs = Log.lockInfo(E.Acquired).Abs;
      Comp.Context = E.Context;
      Cycle.Components.push_back(std::move(Comp));
    };
    for (unsigned I = 0; I != Len; ++I)
      AddComponent(D[Chain[I]]);
    AddComponent(D[Closing]);
    Cycles.push_back(std::move(Cycle));
  };

  // D_1 = D, restricted to entries that can head a cycle chain: the head's
  // held set must eventually contain the closing lock, so an empty held
  // set can never close (Definition 3 needs l_m ∈ L_1).
  ChainLevel Current;
  Current.Len = 1;
  for (uint32_t I = 0; I != D.size(); ++I) {
    if (D[I].Held.empty())
      continue;
    Current.Idx.push_back(I);
    Current.Meta.push_back({Ix.Meta[I].HeldMask, Ix.Meta[I].HeldMaskExcl,
                            Ix.Meta[I].DenseAcquired, D[I].AcquiredMode});
  }
  LocalStats.ChainsExplored += Current.size();

  // Iterate: all cycles of length k are found before any of length k+1.
  for (unsigned Len = 1; Len < Opts.MaxCycleLength && Current.size() != 0;
       ++Len) {
    ++LocalStats.Iterations;

    // Shard the level across workers. Tiny levels stay on one shard — the
    // single-shard path *is* the serial engine, so results are identical
    // either way.
    const size_t NumChains = Current.size();
    size_t Shards = 1;
    if (Jobs > 1 && Opts.MinChainsPerShard &&
        NumChains >= 2 * Opts.MinChainsPerShard)
      Shards = std::min<size_t>(Jobs, NumChains / Opts.MinChainsPerShard);
    Shards = std::max<size_t>(Shards, 1);
    std::vector<WorkerOut> Outs(Shards);
    auto RunShard = [&](size_t S) {
      processShard(D, Ix, Current, Opts, NumChains * S / Shards,
                   NumChains * (S + 1) / Shards, Outs[S]);
    };
    {
      std::vector<std::thread> Workers;
      Workers.reserve(Shards - 1);
      for (size_t S = 1; S < Shards; ++S)
        Workers.emplace_back(RunShard, S);
      RunShard(0);
      for (std::thread &W : Workers)
        W.join();
    }

    // Deterministic in-order merge. The serial engine aborts the whole
    // level at the first extension attempt past MaxChains; the replay
    // commits exactly the extensions serial would have, keeps the cycles
    // discovered before the aborting attempt, and counts every chain from
    // the cut chain on as dropped.
    ChainLevel Next;
    Next.Len = Len + 1;
    bool LevelCut = false;
    uint64_t NextCount = 0;
    for (size_t S = 0; S != Shards; ++S) {
      WorkerOut &Out = Outs[S];
      const size_t ShardChains = Out.ShardEnd - Out.ShardBegin;
      if (LevelCut) {
        LocalStats.ChainsDropped += ShardChains;
        continue;
      }
      const uint64_t TotalExts =
          Out.ExtsAfterChain.empty() ? 0 : Out.ExtsAfterChain.back();
      const uint64_t Capacity = Opts.MaxChains - NextCount;
      uint64_t KeptExts = TotalExts;
      if (TotalExts > Capacity) {
        KeptExts = Capacity;
        LevelCut = true;
        LocalStats.Truncated = true;
        size_t CutChain = static_cast<size_t>(
            std::upper_bound(Out.ExtsAfterChain.begin(),
                             Out.ExtsAfterChain.end(), Capacity) -
            Out.ExtsAfterChain.begin());
        LocalStats.ChainsDropped += ShardChains - CutChain;
      }
      Next.Idx.insert(Next.Idx.end(), Out.NextIdx.begin(),
                      Out.NextIdx.begin() +
                          static_cast<size_t>(KeptExts) * Next.Len);
      Next.Meta.insert(Next.Meta.end(), Out.NextMeta.begin(),
                       Out.NextMeta.begin() + static_cast<size_t>(KeptExts));
      for (const CycleRec &R : Out.Cycles) {
        // Cycles examined at or past the aborting extension attempt were
        // never reached by the serial engine.
        if (NextCount + R.ExtsBefore > Opts.MaxChains)
          break;
        if (!R.HbOk) {
          ++LocalStats.FilteredByHb;
        } else if (Cycles.size() < Opts.MaxCycles) {
          ReportCycle(Current.chain(R.ChainIdx), Len, R.Closing);
        } else {
          LocalStats.Truncated = true;
          ++LocalStats.CyclesDropped;
        }
      }
      NextCount += KeptExts;
    }
    LocalStats.ChainsExplored += NextCount;
    if (telemetry::enabled())
      telemetry::Registry::global()
          .histogram("dlf_igoodlock_level_chains")
          .observe(NextCount);
    Current = std::move(Next);
  }

  LocalStats.ElapsedMicros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - StartTime)
          .count());
  if (telemetry::enabled()) {
    // Bulk-record from the stats the closure already keeps, so telemetry
    // stays an exact mirror of IGoodlockStats (and jobs-invariant, since
    // the merged stats themselves are).
    telemetry::Registry &R = telemetry::Registry::global();
    R.counter("dlf_igoodlock_runs_total").inc();
    R.counter("dlf_igoodlock_entries_total").inc(LocalStats.Entries);
    R.counter("dlf_igoodlock_chains_total").inc(LocalStats.ChainsExplored);
    R.counter("dlf_igoodlock_cycles_total").inc(Cycles.size());
    R.counter("dlf_igoodlock_chains_dropped_total")
        .inc(LocalStats.ChainsDropped);
    R.counter("dlf_igoodlock_cycles_dropped_total")
        .inc(LocalStats.CyclesDropped);
    R.counter("dlf_igoodlock_hb_filtered_total").inc(LocalStats.FilteredByHb);
    R.histogram("dlf_igoodlock_elapsed_us").observe(LocalStats.ElapsedMicros);
  }
  if (Stats)
    *Stats = LocalStats;
  return Cycles;
}
