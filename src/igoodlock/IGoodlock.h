//===- igoodlock/IGoodlock.h - Algorithm 1 ----------------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// iGoodlock (informative Goodlock), paper §2.2: computes potential
/// deadlock cycles from the lock dependency relation by iterative closure —
/// D_{k+1} is built by extending each chain in D_k with compatible entries
/// of D — instead of the lock-graph DFS of classical Goodlock. All cycles
/// of length k are found before any cycle of length k+1, so a bounded run
/// (MaxCycleLength = 2) matches the paper's limited-budget mode.
///
/// Chain validity (Definition 2): pairwise-distinct threads, pairwise-
/// distinct acquired locks, l_i ∈ L_{i+1}, and pairwise-disjoint held sets.
/// A chain is a potential cycle (Definition 3) when l_m ∈ L_1. Duplicates
/// are suppressed by requiring the first thread's id to be minimal in the
/// chain (§2.2.3), and cycles are not extended further, so no "complex"
/// cycles are reported.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_IGOODLOCK_IGOODLOCK_H
#define DLF_IGOODLOCK_IGOODLOCK_H

#include "igoodlock/LockDependency.h"
#include "igoodlock/Report.h"

#include <cstdint>
#include <vector>

namespace dlf {

/// Tuning for the closure.
struct IGoodlockOptions {
  /// Maximum cycle length searched (the paper's iteration bound; all real
  /// deadlocks in the paper's benchmarks have length 2).
  unsigned MaxCycleLength = 6;
  /// Safety cap on the number of live chains per iteration.
  size_t MaxChains = 1u << 20;
  /// Safety cap on reported cycles.
  size_t MaxCycles = 4096;

  /// When true, a cycle is reported only if its components' acquire events
  /// are pairwise *concurrent* under the recorded happens-before
  /// timestamps (paper §1's precision refinement). With fork/join-only
  /// tracking this prunes provably infeasible cycles (the §5.4
  /// CachedThread class); with full-sync tracking it also prunes real
  /// deadlocks that happened not to overlap in the observed run — the
  /// "reduces the predictive power" cost the paper warns about. No-op when
  /// the runtime recorded no clocks.
  bool FilterByHappensBefore = false;

  /// When true, chains may extend through entries whose held sets overlap
  /// with the chain's — the Definition 2 disjointness requirement is
  /// dropped. The extra cycles this admits are exactly the guard-lock
  /// (gate-lock) cycles a common held lock renders unschedulable; keeping
  /// them lets the analysis::GuardPruner classify and *name* the guard in
  /// reports instead of silently never seeing the cycle. Off by default:
  /// Phase II should not chase them without classification.
  bool KeepGuardedCycles = false;

  /// Worker threads for the closure: each level's chains are sharded across
  /// this many workers and merged deterministically, so cycles, stats, and
  /// truncation are byte-identical for every value. 1 = serial (default),
  /// 0 = hardware concurrency.
  unsigned AnalysisJobs = 1;

  /// Smallest shard worth a worker thread: levels with fewer than twice
  /// this many chains run single-shard (pure serial, no spawn overhead).
  /// Tuning/testing knob — results are identical for every value.
  size_t MinChainsPerShard = 32;
};

/// Statistics a run of the analysis can report (tests & benches).
/// Everything except JobsUsed and ElapsedMicros is independent of
/// AnalysisJobs (the determinism contract the property tests pin down).
struct IGoodlockStats {
  /// |D|: dependency entries the closure ran over.
  uint64_t Entries = 0;
  uint64_t ChainsExplored = 0;
  unsigned Iterations = 0;
  bool Truncated = false;
  /// Cycles suppressed by the happens-before filter.
  uint64_t FilteredByHb = 0;
  /// Chains whose extension scan was skipped or cut short because the level
  /// hit MaxChains (the level aborts at the cap; see runIGoodlock).
  uint64_t ChainsDropped = 0;
  /// Cycle reports suppressed by the MaxCycles cap.
  uint64_t CyclesDropped = 0;
  /// Resolved worker count actually used.
  unsigned JobsUsed = 1;
  /// Wall time of the closure (monotonic clock), for throughput reporting.
  uint64_t ElapsedMicros = 0;

  /// Closure throughput: dependency entries consumed per second.
  double entriesPerSecond() const {
    return ElapsedMicros ? Entries * 1e6 / ElapsedMicros : 0.0;
  }
  /// Closure throughput: chains materialized per second.
  double chainsPerSecond() const {
    return ElapsedMicros ? ChainsExplored * 1e6 / ElapsedMicros : 0.0;
  }
};

/// Runs Algorithm 1 over \p Log and returns the abstract potential deadlock
/// cycles, deduplicated up to rotation and abstraction equality (with
/// Multiplicity counting collapsed chains). \p Stats may be null.
std::vector<AbstractCycle> runIGoodlock(const LockDependencyLog &Log,
                                        const IGoodlockOptions &Opts = {},
                                        IGoodlockStats *Stats = nullptr);

} // namespace dlf

#endif // DLF_IGOODLOCK_IGOODLOCK_H
