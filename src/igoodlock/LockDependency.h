//===- igoodlock/LockDependency.h - The lock dependency relation -*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock dependency relation D of Definition 1: (t, L, l, C) ∈ D iff in
/// the observed execution thread t acquired lock l while holding the locks
/// in L, and C is the sequence of Acquire-statement labels for L ∪ {l}.
/// LockDependencyLog implements the runtime's DependencyRecorder interface
/// and accumulates D plus the per-object metadata (names, abstractions)
/// that iGoodlock attaches to its reports.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_IGOODLOCK_LOCKDEPENDENCY_H
#define DLF_IGOODLOCK_LOCKDEPENDENCY_H

#include "event/Abstraction.h"
#include "event/Ids.h"
#include "event/Label.h"
#include "event/VectorClock.h"
#include "runtime/Recorder.h"
#include "support/Hash.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dlf {

/// One element of the lock dependency relation.
struct DependencyEntry {
  ThreadId Thread;
  /// L: locks held at the acquire, in acquisition order.
  std::vector<LockId> Held;
  /// l: the lock being acquired.
  LockId Acquired;
  /// C: acquire-site labels for Held, followed by the site of Acquired.
  std::vector<Label> Context;
  /// Mode of each held lock, parallel to Held (all Exclusive for
  /// mutex-only programs).
  std::vector<LockMode> HeldModes;
  /// Mode of the acquire itself.
  LockMode AcquiredMode = LockMode::Exclusive;

  /// Happens-before timestamp of the acquire (empty when tracking is off).
  /// Deduplication keeps the first observed instance's clock; the HB
  /// filter is therefore approximate for code that repeats the same
  /// acquisition pattern (documented trade — see IGoodlockOptions).
  VectorClock Clock;
};

/// Name + abstractions snapshot for a thread or lock object, kept so that
/// reports survive the execution that produced them.
struct ObjectInfo {
  std::string Name;
  AbstractionSet Abs;
};

/// Accumulates the lock dependency relation of one observed execution.
///
/// Duplicate entries (same thread, held set, lock and context — e.g. a loop
/// acquiring the same locks repeatedly) are collapsed: D is a relation
/// (a set), and the iterative closure is exponential in |D| in the worst
/// case, so deduplication here is pure win.
class LockDependencyLog : public DependencyRecorder {
public:
  // DependencyRecorder implementation (externally synchronized).
  void onThreadCreated(const ThreadRecord &T) override;
  void onLockCreated(const LockRecord &L) override;
  void onAcquireExecuted(const ThreadRecord &T, const LockRecord &L,
                         const std::vector<LockStackEntry> &HeldBefore,
                         Label Site, LockMode Mode) override;

  const std::vector<DependencyEntry> &entries() const { return Entries; }

  /// Metadata for report rendering; id must have been observed.
  const ObjectInfo &threadInfo(ThreadId Id) const;
  const ObjectInfo &lockInfo(LockId Id) const;

  /// Total acquire events seen (before deduplication).
  uint64_t acquireEvents() const { return AcquireEvents; }

private:
  std::vector<DependencyEntry> Entries;
  /// Structural 128-bit hashes of observed entries (the dedup set). The
  /// recorder sits on the acquire hot path, so keys are hashed directly
  /// from the components instead of materializing strings.
  std::unordered_set<Hash128> Seen;
  std::unordered_map<ThreadId, ObjectInfo> ThreadMeta;
  std::unordered_map<LockId, ObjectInfo> LockMeta;
  uint64_t AcquireEvents = 0;
};

} // namespace dlf

#endif // DLF_IGOODLOCK_LOCKDEPENDENCY_H
