//===- igoodlock/LockDependency.cpp - The lock dependency relation ---------===//

#include "igoodlock/LockDependency.h"

#include <cassert>

using namespace dlf;

void LockDependencyLog::onThreadCreated(const ThreadRecord &T) {
  ThreadMeta[T.Id] = {T.Name, T.Abs};
}

void LockDependencyLog::onLockCreated(const LockRecord &L) {
  LockMeta[L.Id] = {L.Name, L.Abs};
}

void LockDependencyLog::onAcquireExecuted(
    const ThreadRecord &T, const LockRecord &L,
    const std::vector<LockStackEntry> &HeldBefore, Label Site, LockMode Mode) {
  ++AcquireEvents;

  DependencyEntry Entry;
  Entry.Thread = T.Id;
  Entry.Acquired = L.Id;
  Entry.AcquiredMode = Mode;
  Entry.Held.reserve(HeldBefore.size());
  Entry.HeldModes.reserve(HeldBefore.size());
  Entry.Context.reserve(HeldBefore.size() + 1);
  for (const LockStackEntry &E : HeldBefore) {
    Entry.Held.push_back(E.Lock);
    Entry.HeldModes.push_back(E.Mode);
    Entry.Context.push_back(E.Site);
  }
  Entry.Context.push_back(Site);
  Entry.Clock = T.Clock;

  // Deduplicate: D is a relation, and loops re-acquiring the same locks in
  // the same context would otherwise flood the closure. The key is a
  // structural 128-bit hash (length-framed so held and context streams
  // cannot alias); see support/Hash.h for the collision stance. Modes are
  // folded in so a read and a write acquisition of the same lock in the
  // same context stay distinct entries.
  Hasher128 Key;
  Key.add(Entry.Thread.Raw);
  Key.add(Entry.Acquired.Raw);
  Key.add(static_cast<uint64_t>(Entry.AcquiredMode));
  Key.add(Entry.Held.size());
  for (LockId Held : Entry.Held)
    Key.add(Held.Raw);
  for (LockMode M : Entry.HeldModes)
    Key.add(static_cast<uint64_t>(M));
  Key.add(Entry.Context.size());
  for (Label C : Entry.Context)
    Key.add(C.raw());
  if (!Seen.insert(Key.finish()).second)
    return;
  Entries.push_back(std::move(Entry));
}

const ObjectInfo &LockDependencyLog::threadInfo(ThreadId Id) const {
  auto It = ThreadMeta.find(Id);
  assert(It != ThreadMeta.end() && "unknown thread in dependency log");
  return It->second;
}

const ObjectInfo &LockDependencyLog::lockInfo(LockId Id) const {
  auto It = LockMeta.find(Id);
  assert(It != LockMeta.end() && "unknown lock in dependency log");
  return It->second;
}
