//===- igoodlock/ClassicGoodlock.h - DFS Goodlock baseline -------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical generalized Goodlock algorithm (Havelund; Bensalem &
/// Havelund; Agarwal, Wang & Stoller) that iGoodlock is defined against:
/// a depth-first search over the lock-order graph, extending one chain at
/// a time and checking the validity conditions (distinct threads, distinct
/// locks, pairwise-disjoint guard sets) along the path.
///
/// The paper's §2.2 claim — "iGoodlock does not use lock graphs or
/// depth-first search, but reports the same deadlocks as the existing
/// algorithms ... uses more memory, but reduces runtime complexity" — is
/// checked two ways here:
///
///  * differential testing: tests assert both algorithms report identical
///    abstract-cycle sets on every substrate and on randomly generated
///    relations;
///  * `bench/micro_igoodlock` compares wall time and peak live-chain
///    memory between the two on synthetic relations.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_IGOODLOCK_CLASSICGOODLOCK_H
#define DLF_IGOODLOCK_CLASSICGOODLOCK_H

#include "igoodlock/IGoodlock.h"

namespace dlf {

/// Statistics for the DFS baseline.
struct ClassicGoodlockStats {
  /// Chains pushed during the search (work measure comparable to
  /// IGoodlockStats::ChainsExplored).
  uint64_t ChainsExplored = 0;
  /// Maximum DFS depth reached (the peak number of live chain frames —
  /// the memory story: O(depth) instead of materialized D_k levels).
  size_t PeakDepth = 0;
  bool Truncated = false;
  /// Cycles suppressed by the happens-before filter.
  uint64_t FilteredByHb = 0;
};

/// Runs the DFS Goodlock over \p Log with the same bounds and report
/// conventions as runIGoodlock (duplicate suppression via minimal first
/// thread; cycles not extended; abstract dedup with multiplicity).
std::vector<AbstractCycle>
runClassicGoodlock(const LockDependencyLog &Log,
                   const IGoodlockOptions &Opts = {},
                   ClassicGoodlockStats *Stats = nullptr);

} // namespace dlf

#endif // DLF_IGOODLOCK_CLASSICGOODLOCK_H
