//===- igoodlock/Serialize.h - Cycle report (de)serialization ----*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization for abstract deadlock cycles, enabling the
/// cross-process workflow the paper's tool supports: run Phase I once,
/// save the report, and fuzz individual cycles later (or on another
/// machine running the same binary).
///
/// Abstractions are serialized by *label text*, not raw label id: label
/// ids are a process-local interning artifact, while the texts are the
/// stable cross-execution identity (they encode sites and counts). On
/// load, texts are re-interned, so the reconstructed cycles match fresh
/// executions exactly like the originals did.
///
/// The element layout conventions of Abstraction are honored: k-object
/// values are label sequences; execution-indexing values alternate
/// (label, count).
///
//===----------------------------------------------------------------------===//

#ifndef DLF_IGOODLOCK_SERIALIZE_H
#define DLF_IGOODLOCK_SERIALIZE_H

#include "igoodlock/Report.h"

#include <string>
#include <vector>

namespace dlf {

/// Renders \p Cycles in the "dlf cycles v1" text format.
std::string serializeCycles(const std::vector<AbstractCycle> &Cycles);

/// Parses a "dlf cycles v1" document. Returns false (and sets \p Error
/// when non-null) on malformed input; \p Out is cleared first and is only
/// valid on success.
bool deserializeCycles(const std::string &Text,
                       std::vector<AbstractCycle> &Out,
                       std::string *Error = nullptr);

/// File helpers; return false on I/O or parse failure.
bool saveCyclesToFile(const std::string &Path,
                      const std::vector<AbstractCycle> &Cycles);
bool loadCyclesFromFile(const std::string &Path,
                        std::vector<AbstractCycle> &Out,
                        std::string *Error = nullptr);

} // namespace dlf

#endif // DLF_IGOODLOCK_SERIALIZE_H
