//===- igoodlock/Serialize.cpp - Cycle report (de)serialization -------------===//

#include "igoodlock/Serialize.h"

#include <fstream>
#include <sstream>

using namespace dlf;

namespace {

/// Percent-escapes the field separators and line breaks.
std::string escapeField(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    if (C == '%' || C == '|' || C == '\n' || C == '\r') {
      static const char Hex[] = "0123456789ABCDEF";
      Out += '%';
      Out += Hex[(static_cast<unsigned char>(C) >> 4) & 0xF];
      Out += Hex[static_cast<unsigned char>(C) & 0xF];
    } else {
      Out += C;
    }
  }
  return Out;
}

bool unescapeField(const std::string &Text, std::string &Out) {
  Out.clear();
  Out.reserve(Text.size());
  for (size_t I = 0; I != Text.size(); ++I) {
    if (Text[I] != '%') {
      Out += Text[I];
      continue;
    }
    if (I + 2 >= Text.size())
      return false;
    auto HexVal = [](char C) -> int {
      if (C >= '0' && C <= '9')
        return C - '0';
      if (C >= 'A' && C <= 'F')
        return C - 'A' + 10;
      return -1;
    };
    int Hi = HexVal(Text[I + 1]), Lo = HexVal(Text[I + 2]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out += static_cast<char>(Hi * 16 + Lo);
    I += 2;
  }
  return true;
}

std::vector<std::string> splitFields(const std::string &Line) {
  std::vector<std::string> Fields;
  size_t Pos = 0;
  while (Pos <= Line.size()) {
    size_t Bar = Line.find('|', Pos);
    if (Bar == std::string::npos) {
      Fields.push_back(Line.substr(Pos));
      break;
    }
    Fields.push_back(Line.substr(Pos, Bar - Pos));
    Pos = Bar + 1;
  }
  return Fields;
}

/// Writes an abstraction: "TAG|text|count|..." for paired (exec-index)
/// layouts, "TAG|text|..." for label-only (k-object) layouts.
void writeAbstraction(std::ostringstream &OS, const char *Tag,
                      const Abstraction &Abs, bool Paired) {
  OS << Tag;
  if (Paired) {
    for (size_t I = 0; I + 1 < Abs.Elements.size(); I += 2)
      OS << '|' << escapeField(Label::textByRaw(Abs.Elements[I])) << '|'
         << Abs.Elements[I + 1];
  } else {
    for (uint32_t E : Abs.Elements)
      OS << '|' << escapeField(Label::textByRaw(E));
  }
  OS << '\n';
}

bool readAbstraction(const std::vector<std::string> &Fields, bool Paired,
                     Abstraction &Abs, std::string *Error) {
  Abs.Elements.clear();
  if (Paired) {
    if ((Fields.size() - 1) % 2 != 0) {
      if (Error)
        *Error = "odd paired-abstraction field count";
      return false;
    }
    for (size_t I = 1; I + 1 < Fields.size(); I += 2) {
      std::string Text;
      if (!unescapeField(Fields[I], Text)) {
        if (Error)
          *Error = "bad escape in abstraction";
        return false;
      }
      Abs.Elements.push_back(Label::intern(Text).raw());
      Abs.Elements.push_back(
          static_cast<uint32_t>(std::strtoul(Fields[I + 1].c_str(),
                                             nullptr, 10)));
    }
  } else {
    for (size_t I = 1; I != Fields.size(); ++I) {
      std::string Text;
      if (!unescapeField(Fields[I], Text)) {
        if (Error)
          *Error = "bad escape in abstraction";
        return false;
      }
      Abs.Elements.push_back(Label::intern(Text).raw());
    }
  }
  return true;
}

} // namespace

std::string dlf::serializeCycles(const std::vector<AbstractCycle> &Cycles) {
  std::ostringstream OS;
  OS << "# dlf cycles v1\n";
  for (const AbstractCycle &Cycle : Cycles) {
    OS << "CYCLE|" << Cycle.Multiplicity << '\n';
    for (const CycleComponent &C : Cycle.Components) {
      OS << "C|" << escapeField(C.ThreadName) << '|'
         << escapeField(C.LockName) << '|' << C.Thread.Raw << '|'
         << C.Lock.Raw << '\n';
      writeAbstraction(OS, "TI", C.ThreadAbs.Index, /*Paired=*/true);
      writeAbstraction(OS, "TK", C.ThreadAbs.KObject, /*Paired=*/false);
      writeAbstraction(OS, "LI", C.LockAbs.Index, /*Paired=*/true);
      writeAbstraction(OS, "LK", C.LockAbs.KObject, /*Paired=*/false);
      OS << 'X';
      for (Label Site : C.Context)
        OS << '|' << escapeField(Site.text());
      OS << '\n';
    }
  }
  return OS.str();
}

bool dlf::deserializeCycles(const std::string &Text,
                            std::vector<AbstractCycle> &Out,
                            std::string *Error) {
  Out.clear();
  std::istringstream In(Text);
  std::string Line;
  AbstractCycle *Cycle = nullptr;
  CycleComponent *Component = nullptr;
  size_t LineNo = 0;

  auto Fail = [&](const std::string &Message) {
    if (Error)
      *Error = "line " + std::to_string(LineNo) + ": " + Message;
    Out.clear();
    return false;
  };

  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::vector<std::string> Fields = splitFields(Line);
    const std::string &Tag = Fields[0];

    if (Tag == "CYCLE") {
      if (Fields.size() != 2)
        return Fail("CYCLE needs a multiplicity");
      Out.emplace_back();
      Cycle = &Out.back();
      Cycle->Multiplicity = static_cast<unsigned>(
          std::strtoul(Fields[1].c_str(), nullptr, 10));
      Component = nullptr;
      continue;
    }
    if (!Cycle)
      return Fail("component data before any CYCLE");

    if (Tag == "C") {
      if (Fields.size() != 5)
        return Fail("C needs thread|lock|tid|lid");
      Cycle->Components.emplace_back();
      Component = &Cycle->Components.back();
      std::string ThreadName, LockName;
      if (!unescapeField(Fields[1], ThreadName) ||
          !unescapeField(Fields[2], LockName))
        return Fail("bad escape in names");
      Component->ThreadName = ThreadName;
      Component->LockName = LockName;
      Component->Thread =
          ThreadId(std::strtoull(Fields[3].c_str(), nullptr, 10));
      Component->Lock =
          LockId(std::strtoull(Fields[4].c_str(), nullptr, 10));
      continue;
    }
    if (!Component)
      return Fail("abstraction data before any component");

    if (Tag == "TI" || Tag == "LI" || Tag == "TK" || Tag == "LK") {
      bool Paired = (Tag[1] == 'I');
      Abstraction &Target =
          Tag[0] == 'T'
              ? (Paired ? Component->ThreadAbs.Index
                        : Component->ThreadAbs.KObject)
              : (Paired ? Component->LockAbs.Index
                        : Component->LockAbs.KObject);
      if (!readAbstraction(Fields, Paired, Target, Error))
        return Fail(Error ? *Error : "bad abstraction");
      continue;
    }
    if (Tag == "X") {
      Component->Context.clear();
      for (size_t I = 1; I != Fields.size(); ++I) {
        std::string Site;
        if (!unescapeField(Fields[I], Site))
          return Fail("bad escape in context");
        Component->Context.push_back(Label::intern(Site));
      }
      if (Component->Context.empty())
        return Fail("component with empty context");
      continue;
    }
    return Fail("unknown tag '" + Tag + "'");
  }

  for (const AbstractCycle &Parsed : Out)
    if (Parsed.Components.size() < 2)
      return Fail("cycle with fewer than two components");
  return true;
}

bool dlf::saveCyclesToFile(const std::string &Path,
                           const std::vector<AbstractCycle> &Cycles) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << serializeCycles(Cycles);
  return Out.good();
}

bool dlf::loadCyclesFromFile(const std::string &Path,
                             std::vector<AbstractCycle> &Out,
                             std::string *Error) {
  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  return deserializeCycles(Text, Out, Error);
}
