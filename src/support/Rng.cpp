//===- support/Rng.cpp - Deterministic random number generation ----------===//

#include "support/Rng.h"

using namespace dlf;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitmix64(S);
}

uint64_t Rng::next() {
  const uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "bound must be non-zero");
  // Rejection sampling: retry while the draw falls in the biased tail.
  const uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Draw = next();
    if (Draw >= Threshold)
      return Draw % Bound;
  }
}

bool Rng::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

double Rng::nextDouble() {
  // 53 high-quality bits into the mantissa.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}
