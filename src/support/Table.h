//===- support/Table.h - ASCII table formatter ------------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A column-aligned ASCII table writer used by the benchmark harnesses to
/// print the paper's tables and figure series in a readable form.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUPPORT_TABLE_H
#define DLF_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace dlf {

/// Accumulates rows of string cells and renders them with aligned columns.
///
/// Typical usage:
/// \code
///   Table T({"Benchmark", "Cycles", "Probability"});
///   T.addRow({"logging", "3", "1.00"});
///   T.print(std::cout);
/// \endcode
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends one row; short rows are padded with empty cells.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table (header, separator, rows) to \p OS.
  void print(std::ostream &OS) const;

  /// Renders the table to a string (used by tests).
  std::string toString() const;

  /// Formats a double with \p Precision fractional digits.
  static std::string fmt(double Value, int Precision = 2);

  /// Formats an integral count.
  static std::string fmt(uint64_t Value);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace dlf

#endif // DLF_SUPPORT_TABLE_H
