//===- support/Debug.h - Environment-gated debug logging -------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight debug logging, enabled by setting DLF_DEBUG=1 in the
/// environment. Library code must not spam stderr by default; scheduling
/// traces are invaluable when debugging a thrashing run, so we keep them
/// behind this switch instead of deleting them.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUPPORT_DEBUG_H
#define DLF_SUPPORT_DEBUG_H

#include <sstream>
#include <string>

namespace dlf {

/// Returns true if DLF_DEBUG is set (cached after the first query).
bool debugEnabled();

/// Writes one line to stderr under an internal mutex (safe to call from
/// multiple threads). Callers should gate on debugEnabled() to avoid paying
/// for message formatting.
void debugLine(const std::string &Message);

} // namespace dlf

/// Emits a debug line when DLF_DEBUG is set; compiles to a cheap branch
/// otherwise. Usage: DLF_DEBUG_LOG("picked thread " << Tid.Raw).
#define DLF_DEBUG_LOG(Stream)                                                  \
  do {                                                                         \
    if (::dlf::debugEnabled()) {                                               \
      std::ostringstream DlfDebugOs;                                           \
      DlfDebugOs << Stream;                                                    \
      ::dlf::debugLine(DlfDebugOs.str());                                      \
    }                                                                          \
  } while (false)

#endif // DLF_SUPPORT_DEBUG_H
