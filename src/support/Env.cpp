//===- support/Env.cpp - Environment variable helpers ---------------------===//

#include "support/Env.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

using namespace dlf;

std::string dlf::envString(const char *Name, const std::string &Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  return Value;
}

int64_t dlf::envInt(const char *Name, int64_t Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  char *End = nullptr;
  long long Parsed = std::strtoll(Value, &End, 10);
  if (End == Value || *End != '\0')
    return Default;
  return static_cast<int64_t>(Parsed);
}

uint64_t dlf::envUInt(const char *Name, uint64_t Default) {
  int64_t Parsed = envInt(Name, -1);
  if (Parsed < 0)
    return Default;
  return static_cast<uint64_t>(Parsed);
}

bool dlf::envBool(const char *Name, bool Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  std::string Lower(Value);
  std::transform(Lower.begin(), Lower.end(), Lower.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  if (Lower == "1" || Lower == "true" || Lower == "yes" || Lower == "on")
    return true;
  if (Lower == "0" || Lower == "false" || Lower == "no" || Lower == "off")
    return false;
  return Default;
}
