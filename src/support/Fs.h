//===- support/Fs.h - Small filesystem helpers ------------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal path/directory helpers for the campaign layer. Journals and
/// telemetry sidecars are routinely pointed at paths like
/// `out/campaigns/2026-08/dbcp.jsonl`; `makeDirs` is the `mkdir -p`
/// equivalent that creates every missing component instead of only the last
/// one, with a precise error message when a component cannot be created.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUPPORT_FS_H
#define DLF_SUPPORT_FS_H

#include <string>

namespace dlf {

/// Returns the directory component of \p Path ("" when the path has no
/// slash, "/" for entries directly under the root).
std::string parentDir(const std::string &Path);

/// Recursively creates \p Path and every missing ancestor (`mkdir -p`).
/// Existing directories are fine; an existing non-directory component, or a
/// failing mkdir, fails with \p Error naming the offending component and the
/// errno text. An empty \p Path is a no-op success.
bool makeDirs(const std::string &Path, std::string *Error = nullptr);

} // namespace dlf

#endif // DLF_SUPPORT_FS_H
