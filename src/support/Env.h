//===- support/Env.h - Environment variable helpers ------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny helpers for reading configuration knobs from the environment. The
/// bench harnesses use these so that `DLF_BENCH_REPS=100 ./table1_main`
/// reproduces the paper's exact rep count without rebuilding.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUPPORT_ENV_H
#define DLF_SUPPORT_ENV_H

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace dlf {

/// Strictly parses \p Text as a complete non-negative decimal integer.
/// Rejects what atoi/strtoull silently accept or mangle: empty strings,
/// leading whitespace, sign characters (strtoull wraps "-1" to 2^64-1),
/// trailing junk ("5x"), and values past 2^64-1. Header-only so the
/// standalone tools and the LD_PRELOAD library (which do not link the
/// support library) validate flags identically.
inline bool parseUint64Strict(const char *Text, uint64_t &Out) {
  if (!Text || Text[0] < '0' || Text[0] > '9')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (errno == ERANGE || End == Text || *End != '\0')
    return false;
  Out = static_cast<uint64_t>(V);
  return true;
}

/// Returns the value of \p Name as a string, or \p Default if unset/empty.
std::string envString(const char *Name, const std::string &Default = "");

/// Returns the value of \p Name parsed as a signed integer, or \p Default if
/// unset or unparseable.
int64_t envInt(const char *Name, int64_t Default);

/// Returns the value of \p Name parsed as an unsigned integer, or \p Default
/// if unset or unparseable.
uint64_t envUInt(const char *Name, uint64_t Default);

/// Returns true if \p Name is set to a truthy value ("1", "true", "yes",
/// "on"; case-insensitive), \p Default otherwise.
bool envBool(const char *Name, bool Default);

} // namespace dlf

#endif // DLF_SUPPORT_ENV_H
