//===- support/Env.h - Environment variable helpers ------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny helpers for reading configuration knobs from the environment. The
/// bench harnesses use these so that `DLF_BENCH_REPS=100 ./table1_main`
/// reproduces the paper's exact rep count without rebuilding.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUPPORT_ENV_H
#define DLF_SUPPORT_ENV_H

#include <cstdint>
#include <string>

namespace dlf {

/// Returns the value of \p Name as a string, or \p Default if unset/empty.
std::string envString(const char *Name, const std::string &Default = "");

/// Returns the value of \p Name parsed as a signed integer, or \p Default if
/// unset or unparseable.
int64_t envInt(const char *Name, int64_t Default);

/// Returns the value of \p Name parsed as an unsigned integer, or \p Default
/// if unset or unparseable.
uint64_t envUInt(const char *Name, uint64_t Default);

/// Returns true if \p Name is set to a truthy value ("1", "true", "yes",
/// "on"; case-insensitive), \p Default otherwise.
bool envBool(const char *Name, bool Default);

} // namespace dlf

#endif // DLF_SUPPORT_ENV_H
