//===- support/Retry.h - EINTR-safe syscall wrappers ------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared retry helpers for the handful of syscalls the campaign layer makes
/// while children are being signalled: every sandbox carries a watchdog that
/// SIGTERM/SIGKILLs its child, so the parent's read/wait4/write/fsync calls
/// routinely return EINTR under load. These wrappers replace the ad-hoc
/// `while (errno == EINTR)` loops that had grown independently in
/// ProcessSandbox, CampaignRunner, and Journal.
///
/// Deliberately NOT wrapped: the `::poll`/`usleep` pacing calls in
/// WorkerPool::poll and the campaign dispatch loop. There an early EINTR
/// return is the feature — it is how a SIGINT wakes the loop promptly so the
/// drain can start — and retrying would trade Ctrl-C latency for nothing.
///
/// Header-only so the standalone tools and the LD_PRELOAD library (which do
/// not link the support library) can share it.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUPPORT_RETRY_H
#define DLF_SUPPORT_RETRY_H

#include <cerrno>
#include <cstddef>

#include <unistd.h>

namespace dlf {

/// Calls \p F until it stops failing with EINTR. \p F must return a signed
/// value with the usual syscall convention (negative result + errno on
/// failure). Returns the first non-EINTR result.
template <typename Fn> auto retryEintr(Fn F) -> decltype(F()) {
  decltype(F()) R;
  do {
    R = F();
  } while (R < 0 && errno == EINTR);
  return R;
}

/// Writes all \p Size bytes of \p Data to \p Fd, retrying both EINTR and
/// short writes. Returns false on any other error (errno is preserved).
inline bool writeFully(int Fd, const void *Data, size_t Size) {
  const char *P = static_cast<const char *>(Data);
  while (Size > 0) {
    ssize_t N = ::write(Fd, P, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false;
    P += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

} // namespace dlf

#endif // DLF_SUPPORT_RETRY_H
