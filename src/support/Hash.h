//===- support/Hash.h - Structural 128-bit hashing --------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming 128-bit structural hasher for dedup keys that were
/// previously built as strings (ostringstream keys are the allocation hot
/// spot of both the dependency recorder and the closure's cycle dedup).
/// Two independently seeded 64-bit lanes are mixed with the SplitMix64
/// finalizer; at 128 bits the collision probability for the at-most-millions
/// of keys an analysis produces is ~2^-85 per pair — treated as zero
/// (DESIGN.md records the stance). Not cryptographic, and not stable across
/// process runs by contract (today it is, but nothing may persist these).
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUPPORT_HASH_H
#define DLF_SUPPORT_HASH_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace dlf {

/// CRC-32 (the IEEE 802.3 polynomial, reflected 0xEDB88320) over \p Len
/// bytes at \p Data. This is the one hash in the tree that IS stable across
/// runs and toolchains by contract: the campaign journal persists it as a
/// per-record integrity tag, and external tools (e.g. Python's zlib.crc32)
/// must reproduce it bit-for-bit. Table-driven, built once on first use.
inline uint32_t crc32(const void *Data, size_t Len) {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xFFFFFFFFu;
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  while (Len--)
    C = Table[(C ^ *P++) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

/// A 128-bit hash value with total ordering (used to pick canonical
/// rotations) and std::hash support (used as an unordered key).
struct Hash128 {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  friend constexpr bool operator==(const Hash128 &A, const Hash128 &B) {
    return A.Hi == B.Hi && A.Lo == B.Lo;
  }
  friend constexpr bool operator!=(const Hash128 &A, const Hash128 &B) {
    return !(A == B);
  }
  friend constexpr bool operator<(const Hash128 &A, const Hash128 &B) {
    return A.Hi != B.Hi ? A.Hi < B.Hi : A.Lo < B.Lo;
  }
};

/// Streaming hasher: feed 64-bit words, then finish(). Word boundaries are
/// significant (add(1),add(2) differs from add(2),add(1)), so callers frame
/// variable-length sequences by prefixing their length.
class Hasher128 {
public:
  void add(uint64_t V) {
    A = mix(A ^ (V * 0x94d049bb133111ebULL));
    B = mix(B + V + 0x9e3779b97f4a7c15ULL);
  }

  Hash128 finish() const { return {mix(A ^ (B << 1)), mix(B ^ (A >> 1))}; }

private:
  /// The SplitMix64 finalizer: full-avalanche 64-bit mixing.
  static constexpr uint64_t mix(uint64_t X) {
    X += 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    return X ^ (X >> 31);
  }

  uint64_t A = 0x8764000b87645626ULL;
  uint64_t B = 0x61c8864680b583ebULL;
};

} // namespace dlf

namespace std {
template <> struct hash<dlf::Hash128> {
  size_t operator()(const dlf::Hash128 &H) const {
    // Lanes are already fully mixed; Lo alone is a uniform 64-bit value.
    return static_cast<size_t>(H.Lo);
  }
};
} // namespace std

#endif // DLF_SUPPORT_HASH_H
