//===- support/Fs.cpp - Small filesystem helpers --------------------------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Fs.h"

#include <cerrno>
#include <cstring>

#include <sys/stat.h>
#include <sys/types.h>

namespace dlf {

std::string parentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return "";
  if (Slash == 0)
    return "/";
  return Path.substr(0, Slash);
}

bool makeDirs(const std::string &Path, std::string *Error) {
  if (Path.empty())
    return true;
  // Walk the path one component at a time, creating as we go. mkdir on an
  // existing directory is EEXIST and fine; anything else (a file in the
  // way, permissions, a read-only filesystem) is reported with the exact
  // prefix that failed.
  size_t Pos = 0;
  while (Pos <= Path.size()) {
    size_t Slash = Path.find('/', Pos);
    size_t End = Slash == std::string::npos ? Path.size() : Slash;
    if (End > 0) {
      std::string Prefix = Path.substr(0, End);
      if (!Prefix.empty() && Prefix != "/" &&
          ::mkdir(Prefix.c_str(), 0777) != 0) {
        if (errno != EEXIST) {
          if (Error)
            *Error = "mkdir " + Prefix + ": " + std::strerror(errno);
          return false;
        }
        // Something already exists there — make sure it is a directory
        // (EEXIST is also what a plain file in the way produces).
        struct stat St = {};
        if (::stat(Prefix.c_str(), &St) != 0 || !S_ISDIR(St.st_mode)) {
          if (Error)
            *Error = Prefix + " exists and is not a directory";
          return false;
        }
      }
    }
    if (Slash == std::string::npos)
      break;
    Pos = Slash + 1;
  }
  return true;
}

} // namespace dlf
