//===- support/Table.cpp - ASCII table formatter ---------------------------===//

#include "support/Table.h"

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

using namespace dlf;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::addRow(std::vector<std::string> Cells) {
  Cells.resize(Header.size());
  Rows.push_back(std::move(Cells));
}

void Table::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t I = 0; I != Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto PrintRow = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I != Cells.size(); ++I) {
      OS << (I == 0 ? "| " : " | ");
      OS << Cells[I] << std::string(Widths[I] - Cells[I].size(), ' ');
    }
    OS << " |\n";
  };

  PrintRow(Header);
  OS << '|';
  for (size_t I = 0; I != Header.size(); ++I)
    OS << std::string(Widths[I] + 2, '-') << '|';
  OS << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string Table::toString() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

std::string Table::fmt(double Value, int Precision) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(Precision) << Value;
  return OS.str();
}

std::string Table::fmt(uint64_t Value) { return std::to_string(Value); }
