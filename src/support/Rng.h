//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, seedable, deterministic random number generator used by the
/// random schedulers. We implement xoshiro256** seeded via splitmix64 so
/// that scheduling decisions are reproducible across platforms and standard
/// library implementations (std::mt19937's distributions are not portable).
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUPPORT_RNG_H
#define DLF_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace dlf {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All randomness in the library flows through instances of this class; a
/// fixed seed yields a fixed schedule, which the tests rely on.
class Rng {
public:
  /// Creates a generator whose stream is fully determined by \p Seed.
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via splitmix64.
  void reseed(uint64_t Seed);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound).
  ///
  /// Uses Lemire-style rejection to avoid modulo bias. \p Bound must be
  /// non-zero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed index in [0, Size); \p Size must be
  /// non-zero. Convenience overload for picking container elements.
  size_t nextIndex(size_t Size) {
    assert(Size != 0 && "cannot pick from an empty range");
    return static_cast<size_t>(nextBelow(Size));
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P);

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble();

private:
  uint64_t State[4];
};

} // namespace dlf

#endif // DLF_SUPPORT_RNG_H
