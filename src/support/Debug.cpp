//===- support/Debug.cpp - Environment-gated debug logging ----------------===//

#include "support/Debug.h"

#include "support/Env.h"

#include <cstdio>
#include <mutex>

using namespace dlf;

bool dlf::debugEnabled() {
  static const bool Enabled = envBool("DLF_DEBUG", false);
  return Enabled;
}

void dlf::debugLine(const std::string &Message) {
  static std::mutex Mu;
  std::lock_guard<std::mutex> Guard(Mu);
  std::fprintf(stderr, "[dlf] %s\n", Message.c_str());
}
