//===- analysis/RaceDetector.cpp - Lockset + epoch race detector ------------===//

#include "analysis/RaceDetector.h"

#include "event/Ids.h"
#include "event/VectorClock.h"
#include "telemetry/Metrics.h"

#include <algorithm>
#include <sstream>
#include <thread>
#include <unordered_map>

using namespace dlf;
using namespace dlf::analysis;

std::string RaceReport::toString() const {
  std::ostringstream OS;
  OS << "race on object " << Object;
  if (!ObjectAbs.empty())
    OS << " [" << ObjectAbs << "]";
  OS << "\n";
  for (const RaceAccess *A : {&First, &Second}) {
    OS << "  " << (A->IsWrite ? "write" : "read ") << " by thread "
       << A->Thread;
    if (!A->ThreadAbs.empty())
      OS << " [" << A->ThreadAbs << "]";
    OS << " at " << A->Site << "\n";
  }
  return OS.str();
}

namespace {

/// One summarized access: last occurrence of (thread, kind, site) on an
/// object. Records keep their first-occurrence position in the vector, so
/// pair iteration renders races in first-occurrence order.
struct AccessRecord {
  uint64_t Thread = 0;
  bool IsWrite = false;
  std::string Site;
  std::vector<uint64_t> Lockset; // sorted lock ids held at the access
  VectorClock Clock;
};

struct ObjectState {
  std::string Abs;
  std::vector<AccessRecord> Accesses;
};

bool sortedDisjoint(const std::vector<uint64_t> &A,
                    const std::vector<uint64_t> &B) {
  size_t I = 0;
  size_t J = 0;
  while (I != A.size() && J != B.size()) {
    if (A[I] == B[J])
      return false;
    if (A[I] < B[J])
      ++I;
    else
      ++J;
  }
  return true;
}

/// All racy pairs among one object's accesses, ordered by (first ordinal,
/// second ordinal) — a pure function of the serial pass's summaries, which
/// is what makes the sharded pass trivially deterministic.
std::vector<RaceReport> checkObject(uint64_t Oid, const ObjectState &Obj,
                                    const std::unordered_map<uint64_t,
                                                             std::string>
                                        &ThreadAbs) {
  std::vector<RaceReport> Out;
  const std::vector<AccessRecord> &As = Obj.Accesses;
  for (size_t I = 0; I != As.size(); ++I) {
    for (size_t J = I + 1; J != As.size(); ++J) {
      const AccessRecord &A = As[I];
      const AccessRecord &B = As[J];
      if (A.Thread == B.Thread)
        continue;
      if (!A.IsWrite && !B.IsWrite)
        continue;
      if (!vcConcurrent(A.Clock, B.Clock))
        continue;
      if (!sortedDisjoint(A.Lockset, B.Lockset))
        continue;
      RaceReport R;
      R.Object = Oid;
      R.ObjectAbs = Obj.Abs;
      for (auto Pair : {std::make_pair(&R.First, &A),
                        std::make_pair(&R.Second, &B)}) {
        Pair.first->Thread = Pair.second->Thread;
        Pair.first->IsWrite = Pair.second->IsWrite;
        Pair.first->Site = Pair.second->Site;
        auto It = ThreadAbs.find(Pair.second->Thread);
        if (It != ThreadAbs.end())
          Pair.first->ThreadAbs = It->second;
      }
      Out.push_back(std::move(R));
    }
  }
  return Out;
}

} // namespace

RaceAnalysis dlf::analysis::detectRaces(const TraceFile &Trace,
                                        const RaceDetectorOptions &Opts) {
  RaceAnalysis Result;

  // --- Pass 1: serial event walk -----------------------------------------
  //
  // Clocks implement the full synchronization order: fork edges plus
  // release→acquire edges through each lock. Every thread ticks after an
  // event that publishes its clock (fork, release) so later events are
  // strictly after, not equal.
  struct ThreadState {
    VectorClock Clock;
    std::vector<uint64_t> Lockset; // sorted
  };
  std::unordered_map<uint64_t, ThreadState> Threads;
  std::unordered_map<uint64_t, VectorClock> LockRelease;
  /// Last notify clock per condvar: a wakeup joins it (signal→wake is a
  /// genuine happens-before edge the preload front end records as N/V).
  std::unordered_map<uint64_t, VectorClock> CondNotifyClock;
  std::unordered_map<uint64_t, std::string> ThreadAbs;
  std::unordered_map<uint64_t, ObjectState> Objects;
  std::vector<uint64_t> ObjectOrder; // first-seen order, the merge order

  auto Thread = [&](uint64_t Tid) -> ThreadState & {
    auto It = Threads.find(Tid);
    if (It != Threads.end())
      return It->second;
    ThreadState &T = Threads[Tid];
    vcTick(T.Clock, ThreadId(Tid));
    return T;
  };
  auto Object = [&](uint64_t Oid) -> ObjectState & {
    auto It = Objects.find(Oid);
    if (It != Objects.end())
      return It->second;
    ObjectOrder.push_back(Oid);
    return Objects[Oid];
  };
  auto Warn = [&](const std::string &Msg) {
    if (Result.Warnings.size() < 32)
      Result.Warnings.push_back(Msg);
  };

  for (const TraceEvent &E : Trace.Events) {
    switch (E.K) {
    case TraceEvent::Kind::ThreadNew:
      Thread(E.A);
      ThreadAbs[E.A] = E.Text;
      break;
    case TraceEvent::Kind::LockNew:
      break;
    case TraceEvent::Kind::Fork: {
      ThreadState &Parent = Thread(E.A);
      ThreadState &Child = Thread(E.B);
      vcJoin(Child.Clock, Parent.Clock);
      vcTick(Child.Clock, ThreadId(E.B));
      vcTick(Parent.Clock, ThreadId(E.A));
      break;
    }
    // The read side of a rwlock is treated like an exclusive hold by this
    // lockset pass (an approximation: it can mask write-under-read-lock
    // races between concurrent readers, a distinct bug class), but its
    // release→acquire clock edges are sound either way.
    case TraceEvent::Kind::SharedAcquire:
    case TraceEvent::Kind::Acquire: {
      ThreadState &T = Thread(E.A);
      auto Rel = LockRelease.find(E.B);
      if (Rel != LockRelease.end())
        vcJoin(T.Clock, Rel->second);
      auto Pos = std::lower_bound(T.Lockset.begin(), T.Lockset.end(), E.B);
      if (Pos == T.Lockset.end() || *Pos != E.B)
        T.Lockset.insert(Pos, E.B);
      break;
    }
    case TraceEvent::Kind::SharedRelease:
    case TraceEvent::Kind::Release: {
      ThreadState &T = Thread(E.A);
      LockRelease[E.B] = T.Clock;
      vcTick(T.Clock, ThreadId(E.A));
      auto Pos = std::lower_bound(T.Lockset.begin(), T.Lockset.end(), E.B);
      if (Pos != T.Lockset.end() && *Pos == E.B)
        T.Lockset.erase(Pos);
      else
        Warn("release of lock " + std::to_string(E.B) + " not held by thread " +
             std::to_string(E.A));
      break;
    }
    case TraceEvent::Kind::TryProbe:
      break; // a failed probe synchronizes nothing
    case TraceEvent::Kind::CondNotify: {
      ThreadState &T = Thread(E.A);
      CondNotifyClock[E.B] = T.Clock;
      vcTick(T.Clock, ThreadId(E.A));
      break;
    }
    case TraceEvent::Kind::CondWake: {
      ThreadState &T = Thread(E.A);
      auto It = CondNotifyClock.find(E.B);
      if (It != CondNotifyClock.end())
        vcJoin(T.Clock, It->second);
      break;
    }
    case TraceEvent::Kind::Join: {
      // pthread_join returned: everything the joined thread did is ordered
      // before the joiner's next step. Without this edge, post-join reads
      // of a worker's writes are false positives.
      ThreadState &Joiner = Thread(E.A);
      vcJoin(Joiner.Clock, Thread(E.B).Clock);
      break;
    }
    case TraceEvent::Kind::ObjectNew:
      Object(E.A).Abs = E.Text;
      break;
    case TraceEvent::Kind::Read:
    case TraceEvent::Kind::Write: {
      ThreadState &T = Thread(E.A);
      bool IsWrite = E.K == TraceEvent::Kind::Write;
      ObjectState &Obj = Object(E.B);
      ++Result.AccessesSeen;
      // Keep the last record per (thread, kind, site): repeated accesses
      // from a loop collapse, but every distinct racy site pair survives.
      AccessRecord *Slot = nullptr;
      for (AccessRecord &A : Obj.Accesses)
        if (A.Thread == E.A && A.IsWrite == IsWrite && A.Site == E.Text) {
          Slot = &A;
          break;
        }
      if (!Slot) {
        Obj.Accesses.emplace_back();
        Slot = &Obj.Accesses.back();
      }
      Slot->Thread = E.A;
      Slot->IsWrite = IsWrite;
      Slot->Site = E.Text;
      Slot->Lockset = T.Lockset;
      Slot->Clock = T.Clock;
      break;
    }
    }
  }
  Result.ObjectsSeen = ObjectOrder.size();

  // --- Pass 2: per-object pair checks, sharded ---------------------------
  unsigned Jobs =
      Opts.Jobs ? Opts.Jobs : std::max(1u, std::thread::hardware_concurrency());
  Jobs = static_cast<unsigned>(
      std::min<size_t>(Jobs, std::max<size_t>(1, ObjectOrder.size())));

  std::vector<std::vector<RaceReport>> PerObject(ObjectOrder.size());
  auto Shard = [&](unsigned Worker) {
    for (size_t I = Worker; I < ObjectOrder.size(); I += Jobs) {
      uint64_t Oid = ObjectOrder[I];
      PerObject[I] = checkObject(Oid, Objects.find(Oid)->second, ThreadAbs);
    }
  };
  if (Jobs <= 1) {
    Shard(0);
  } else {
    std::vector<std::thread> Workers;
    Workers.reserve(Jobs);
    for (unsigned W = 0; W != Jobs; ++W)
      Workers.emplace_back(Shard, W);
    for (std::thread &W : Workers)
      W.join();
  }

  // In-order merge: object-first-seen order, pair order within an object
  // fixed by checkObject. Identical for every Jobs value.
  for (std::vector<RaceReport> &Rs : PerObject) {
    for (RaceReport &R : Rs) {
      ++Result.RacyPairs;
      if (Result.Races.size() < Opts.MaxReports)
        Result.Races.push_back(std::move(R));
    }
  }
  if (telemetry::enabled()) {
    telemetry::Registry &Reg = telemetry::Registry::global();
    Reg.counter("dlf_analysis_races_found_total").inc(Result.RacyPairs);
    Reg.counter("dlf_analysis_accesses_total").inc(Result.AccessesSeen);
    Reg.counter("dlf_analysis_shared_objects_total").inc(Result.ObjectsSeen);
  }
  return Result;
}
