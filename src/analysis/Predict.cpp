//===- analysis/Predict.cpp - Sync-preserving deadlock prediction -----------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Two layers:
//
//  1. TraceIndex — one serial walk over the trace building, per thread, the
//     ordered list of synchronization events (acquires, releases, wakeups,
//     joins, forks), per lock the critical-section list in trace order, and
//     for every acquire an Occurrence carrying the held-set, context and
//     full-sync vector clock at the request (fork + release→acquire +
//     notify→wake + join edges, the RaceDetector discipline).
//
//  2. Per-cycle verdicts — components are matched to occurrences exactly
//     like the guard pruner (exact context preferred, loose fallback,
//     capped, first-in-trace-order), assignments are enumerated mixed-radix
//     under a cap, and each assignment runs pre-filters (wait-edge modes,
//     common guard, pairwise clock concurrency) and then the
//     sync-preserving closure: a fixpoint over per-thread included-prefix
//     lengths. Including an acquire whose critical section conflicts with a
//     later included acquire on the same lock forces its release in; wakeups
//     force their notify; joins force the whole joined thread; any included
//     event of a forked thread forces the fork. Cycle threads' prefixes are
//     fixed at their request event, so a requirement landing past a fixed
//     boundary fails the assignment.
//
// Soundness rests on a trace invariant: conflicting critical sections never
// overlap in the trace (acquire lines are written at grant, both by the
// preload and by the runtime trace recorder). Every closure constraint then
// points forward in trace order, so replaying the included set in trace
// order is a legal schedule ending in the deadlock state. A lock observed
// violating the invariant is marked irregular and conservatively fails any
// closure that touches it.
//
//===----------------------------------------------------------------------===//

#include "analysis/Predict.h"

#include "event/Label.h"
#include "event/VectorClock.h"
#include "analysis/LogBuilder.h"
#include "telemetry/Metrics.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <ostream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

namespace dlf {
namespace analysis {

namespace {

constexpr uint32_t NoRelease = std::numeric_limits<uint32_t>::max();

/// One per-thread synchronization event, in program order.
struct IndexedEvent {
  enum Kind : uint8_t {
    Acquire,   ///< Lock/Cs valid; mode lives on the critical section
    Release,   ///< Lock/Cs valid
    Wake,      ///< Src* = the notify this wakeup consumed (when recorded)
    JoinEdge,  ///< Src* = joined thread and its full event count
    Notify,    ///< occupies an ordinal so wakeups can require it; no action
    ForkChild, ///< occupies an ordinal so children can require it; no action
  };
  Kind K = Acquire;
  uint32_t Lock = 0;
  uint32_t Cs = 0;
  uint32_t SrcThread = 0;
  uint32_t SrcCount = 0; ///< required included-event count of SrcThread
  bool HasSrc = false;
};

/// One critical section of one lock.
struct CritSec {
  uint64_t AcqIdx = 0; ///< global trace position of the acquire (order key)
  uint32_t Thread = 0; ///< dense owner
  uint32_t AcqOrd = 0; ///< ordinal of the acquire in the owner's event list
  uint32_t RelOrd = NoRelease;
  LockMode Mode = LockMode::Exclusive;
};

struct HeldLock {
  uint64_t RawLock = 0;
  LockMode Mode = LockMode::Exclusive;
};

/// One concrete acquire, snapshotted at the request.
struct Occurrence {
  uint32_t Thread = 0; ///< dense
  uint32_t LockDense = 0;
  LockMode Mode = LockMode::Exclusive;
  uint32_t Ord = 0; ///< ordinal of the acquire event (= the fixed prefix)
  std::vector<Label> Context;
  std::vector<HeldLock> Held;
  VectorClock Clock;
};

struct PerThread {
  std::vector<IndexedEvent> Evs;
  bool HasParent = false;
  uint32_t Parent = 0;
  uint32_t ParentCount = 0; ///< parent events up to and including the fork
};

struct PerLock {
  std::vector<CritSec> CSes; ///< in trace acquire order
  /// Conflicting critical sections overlapped in the trace (grant-order
  /// invariant violated): closures touching this lock fail conservatively.
  bool Irregular = false;
};

/// The walk output (layer 1). Built once per evaluateCycles call, then
/// shared read-only across verdict workers.
class TraceIndex {
public:
  explicit TraceIndex(const TraceFile &Trace);

  std::vector<PerThread> Threads;
  std::vector<PerLock> Locks;
  std::vector<uint64_t> ThreadRaw; ///< dense -> raw id
  std::vector<uint64_t> LockRaw;
  std::vector<Occurrence> Occs; ///< all acquires, trace order
  /// (thread raw, lock raw) -> occurrence indices, trace order. Keys are
  /// mixed; hits re-verify the pair, so a collision only costs time.
  std::unordered_map<uint64_t, std::vector<uint32_t>> OccsByTL;
  std::unordered_map<uint64_t, std::string> LockNameByRaw;
  uint64_t AcquireEvents = 0;

  static uint64_t tlKey(uint64_t T, uint64_t L) {
    return T * 0x9E3779B97F4A7C15ull ^ L;
  }

private:
  uint32_t thread(uint64_t Raw);
  uint32_t lock(uint64_t Raw);

  std::unordered_map<uint64_t, uint32_t> ThreadIdx;
  std::unordered_map<uint64_t, uint32_t> LockIdx;
};

uint32_t TraceIndex::thread(uint64_t Raw) {
  auto [It, New] = ThreadIdx.try_emplace(
      Raw, static_cast<uint32_t>(Threads.size()));
  if (New) {
    Threads.emplace_back();
    ThreadRaw.push_back(Raw);
  }
  return It->second;
}

uint32_t TraceIndex::lock(uint64_t Raw) {
  auto [It, New] =
      LockIdx.try_emplace(Raw, static_cast<uint32_t>(Locks.size()));
  if (New) {
    Locks.emplace_back();
    LockRaw.push_back(Raw);
  }
  return It->second;
}

TraceIndex::TraceIndex(const TraceFile &Trace) {
  // Walk-only state, discarded after construction.
  // Clocks carry MUST-order edges only: fork, join, notify→wake. The
  // observed release→acquire order is deliberately NOT joined — it is a
  // schedule artifact that a sync-preserving reordering may undo whenever
  // the consuming critical section is left out of the witness; the closure
  // enforces lock ordering precisely where it is load-bearing. This also
  // makes the hb-ordered pre-filter agree with the guard pruner, whose
  // LogBuilder clocks use the same discipline.
  std::vector<VectorClock> ThreadClock;
  struct StackEnt {
    uint64_t RawLock = 0;
    Label Site;
    LockMode Mode = LockMode::Exclusive;
  };
  std::vector<std::vector<StackEnt>> Stack;
  // Per (thread, lock): open critical-section indices, innermost last.
  std::vector<std::unordered_map<uint32_t, std::vector<uint32_t>>> OpenCs;
  // Per lock: currently open conflict state for the overlap check.
  std::vector<uint32_t> OpenExcl; // count of open exclusive CSes
  std::vector<uint32_t> OpenShared;
  std::unordered_map<uint64_t, VectorClock> CondNotifyClock;
  struct NotifySrc {
    uint32_t Thread = 0;
    uint32_t Count = 0;
  };
  std::unordered_map<uint64_t, NotifySrc> CondLastNotify;

  auto Grow = [&](uint32_t T) {
    if (ThreadClock.size() <= T) {
      ThreadClock.resize(T + 1);
      Stack.resize(T + 1);
      OpenCs.resize(T + 1);
    }
  };
  auto GrowLock = [&](uint32_t L) {
    if (OpenExcl.size() <= L) {
      OpenExcl.resize(L + 1, 0);
      OpenShared.resize(L + 1, 0);
    }
  };

  uint64_t Pos = 0;
  for (const TraceEvent &E : Trace.Events) {
    ++Pos;
    switch (E.K) {
    case TraceEvent::Kind::ThreadNew: {
      uint32_t T = thread(E.A);
      Grow(T);
      if (ThreadClock[T].empty())
        vcTick(ThreadClock[T], ThreadId(E.A));
      break;
    }
    case TraceEvent::Kind::LockNew: {
      GrowLock(lock(E.A));
      LockNameByRaw.emplace(E.A, E.Text);
      break;
    }
    case TraceEvent::Kind::Fork: {
      uint32_t P = thread(E.A);
      uint32_t C = thread(E.B);
      Grow(std::max(P, C));
      if (ThreadClock[P].empty())
        vcTick(ThreadClock[P], ThreadId(E.A));
      vcJoin(ThreadClock[C], ThreadClock[P]);
      vcTick(ThreadClock[C], ThreadId(E.B));
      vcTick(ThreadClock[P], ThreadId(E.A));
      IndexedEvent Ev;
      Ev.K = IndexedEvent::ForkChild;
      Ev.SrcThread = C;
      Threads[P].Evs.push_back(Ev);
      Threads[C].HasParent = true;
      Threads[C].Parent = P;
      Threads[C].ParentCount = static_cast<uint32_t>(Threads[P].Evs.size());
      break;
    }
    case TraceEvent::Kind::Join: {
      uint32_t J = thread(E.A);
      uint32_t T = thread(E.B);
      Grow(std::max(J, T));
      vcJoin(ThreadClock[J], ThreadClock[T]);
      IndexedEvent Ev;
      Ev.K = IndexedEvent::JoinEdge;
      Ev.SrcThread = T;
      Ev.SrcCount = static_cast<uint32_t>(Threads[T].Evs.size());
      Ev.HasSrc = true;
      Threads[J].Evs.push_back(Ev);
      break;
    }
    case TraceEvent::Kind::Acquire:
    case TraceEvent::Kind::SharedAcquire: {
      bool Shared = E.K == TraceEvent::Kind::SharedAcquire;
      uint32_t T = thread(E.A);
      uint32_t L = lock(E.B);
      Grow(T);
      GrowLock(L);
      if (ThreadClock[T].empty())
        vcTick(ThreadClock[T], ThreadId(E.A));
      ++AcquireEvents;

      // Grant-order invariant check: a conflicting critical section open
      // at this acquire means the trace interleaves conflicting holds.
      if (OpenExcl[L] != 0 || (!Shared && OpenShared[L] != 0))
        Locks[L].Irregular = true;

      Label Site = Label::intern(E.Text);
      Occurrence O;
      O.Thread = T;
      O.LockDense = L;
      O.Mode = Shared ? LockMode::Shared : LockMode::Exclusive;
      O.Ord = static_cast<uint32_t>(Threads[T].Evs.size());
      O.Clock = ThreadClock[T];
      O.Context.reserve(Stack[T].size() + 1);
      O.Held.reserve(Stack[T].size());
      for (const StackEnt &S : Stack[T]) {
        O.Context.push_back(S.Site);
        O.Held.push_back({S.RawLock, S.Mode});
      }
      O.Context.push_back(Site);

      CritSec Cs;
      Cs.AcqIdx = Pos;
      Cs.Thread = T;
      Cs.AcqOrd = O.Ord;
      Cs.Mode = O.Mode;
      auto CsIdx = static_cast<uint32_t>(Locks[L].CSes.size());
      Locks[L].CSes.push_back(Cs);
      OpenCs[T][L].push_back(CsIdx);
      if (Shared)
        ++OpenShared[L];
      else
        ++OpenExcl[L];

      IndexedEvent Ev;
      Ev.K = IndexedEvent::Acquire;
      Ev.Lock = L;
      Ev.Cs = CsIdx;
      Threads[T].Evs.push_back(Ev);
      Stack[T].push_back({E.B, Site, O.Mode});

      OccsByTL[tlKey(E.A, E.B)].push_back(
          static_cast<uint32_t>(Occs.size()));
      Occs.push_back(std::move(O));
      break;
    }
    case TraceEvent::Kind::Release:
    case TraceEvent::Kind::SharedRelease: {
      uint32_t T = thread(E.A);
      uint32_t L = lock(E.B);
      Grow(T);
      GrowLock(L);
      auto OpenIt = OpenCs[T].find(L);
      if (OpenIt == OpenCs[T].end() || OpenIt->second.empty())
        break; // release without a recorded acquire: ignore (warned upstream)
      uint32_t CsIdx = OpenIt->second.back();
      OpenIt->second.pop_back();
      CritSec &Cs = Locks[L].CSes[CsIdx];
      Cs.RelOrd = static_cast<uint32_t>(Threads[T].Evs.size());
      if (Cs.Mode == LockMode::Shared) {
        if (OpenShared[L] != 0)
          --OpenShared[L];
      } else if (OpenExcl[L] != 0) {
        --OpenExcl[L];
      }
      IndexedEvent Ev;
      Ev.K = IndexedEvent::Release;
      Ev.Lock = L;
      Ev.Cs = CsIdx;
      Threads[T].Evs.push_back(Ev);
      // Pop the innermost matching stack entry (LogBuilder discipline).
      auto &St = Stack[T];
      for (size_t I = St.size(); I != 0; --I)
        if (St[I - 1].RawLock == E.B) {
          St.erase(St.begin() + static_cast<ptrdiff_t>(I - 1));
          break;
        }
      break;
    }
    case TraceEvent::Kind::CondNotify: {
      uint32_t T = thread(E.A);
      Grow(T);
      // Store-then-tick (message-passing discipline): the stored clock must
      // exclude the notifier's post-notify tick, otherwise events the
      // notifier performs *after* the notify compare ordered-before the
      // waiter's post-wake events and genuinely concurrent critical
      // sections get discharged as hb-ordered.
      CondNotifyClock[E.B] = ThreadClock[T];
      vcTick(ThreadClock[T], ThreadId(E.A));
      IndexedEvent Ev;
      Ev.K = IndexedEvent::Notify;
      Threads[T].Evs.push_back(Ev);
      CondLastNotify[E.B] = {T,
                             static_cast<uint32_t>(Threads[T].Evs.size())};
      break;
    }
    case TraceEvent::Kind::CondWake: {
      uint32_t T = thread(E.A);
      Grow(T);
      auto ClockIt = CondNotifyClock.find(E.B);
      if (ClockIt != CondNotifyClock.end())
        vcJoin(ThreadClock[T], ClockIt->second);
      IndexedEvent Ev;
      Ev.K = IndexedEvent::Wake;
      auto SrcIt = CondLastNotify.find(E.B);
      if (SrcIt != CondLastNotify.end()) {
        Ev.HasSrc = true;
        Ev.SrcThread = SrcIt->second.Thread;
        Ev.SrcCount = SrcIt->second.Count;
      }
      Threads[T].Evs.push_back(Ev);
      break;
    }
    case TraceEvent::Kind::TryProbe:
    case TraceEvent::Kind::ObjectNew:
    case TraceEvent::Kind::Read:
    case TraceEvent::Kind::Write:
      break; // no wait-for or ordering contribution
    }
  }
}

/// The sync-preserving closure over one candidate assignment (layer 2).
/// Scratch buffers are reused across assignments of one worker.
class ClosureState {
public:
  explicit ClosureState(const TraceIndex &Ix) : Ix(Ix) {
    End.resize(Ix.Threads.size(), 0);
    Scanned.resize(Ix.Threads.size(), 0);
    Fixed.resize(Ix.Threads.size(), 0);
    InWork.resize(Ix.Threads.size(), 0);
    Sweeps.resize(Ix.Locks.size());
  }

  /// Runs the fixpoint for the cycle occurrences in \p Picks. On success
  /// returns true and sets \p WitnessEvents to the included-event count.
  bool run(const std::vector<const Occurrence *> &Picks,
           uint64_t &WitnessEvents) {
    reset();
    for (const Occurrence *O : Picks) {
      End[O->Thread] = O->Ord;
      Fixed[O->Thread] = 1;
    }
    for (const Occurrence *O : Picks) {
      push(O->Thread);
      requireExists(O->Thread);
    }
    while (!Work.empty() && !Failed) {
      uint32_t U = Work.back();
      Work.pop_back();
      InWork[U] = 0;
      scan(U);
    }
    if (Failed)
      return false;
    WitnessEvents = 0;
    for (uint32_t E : End)
      WitnessEvents += E;
    return true;
  }

private:
  struct Sweep {
    uint64_t MaxAll = 0;  ///< max AcqIdx over included acquires (any mode)
    uint64_t MaxExcl = 0; ///< max AcqIdx over included exclusive acquires
    uint32_t PAll = 0;    ///< sweep cursor under MaxExcl (closes any mode)
    uint32_t PExcl = 0;   ///< sweep cursor under MaxAll (closes exclusives)
    bool HasAll = false;
    bool HasExcl = false;
  };

  void reset() {
    Failed = false;
    for (uint32_t T : Touched) {
      End[T] = 0;
      Scanned[T] = 0;
      Fixed[T] = 0;
      InWork[T] = 0;
    }
    Touched.clear();
    for (uint32_t L : TouchedLocks)
      Sweeps[L] = Sweep();
    TouchedLocks.clear();
    Work.clear();
  }

  void push(uint32_t U) {
    touch(U);
    if (!InWork[U]) {
      InWork[U] = 1;
      Work.push_back(U);
    }
  }

  void touch(uint32_t U) {
    // Touched may hold duplicates; reset() clearing twice is harmless.
    Touched.push_back(U);
  }

  /// Demands that the first \p Count events of thread \p U be included.
  void require(uint32_t U, uint32_t Count) {
    touch(U);
    if (End[U] >= Count)
      return;
    if (Fixed[U]) {
      Failed = true;
      return;
    }
    bool WasEmpty = End[U] == 0;
    End[U] = Count;
    push(U);
    if (WasEmpty)
      requireExists(U);
  }

  /// A thread with included events (or a fixed cycle thread) must exist:
  /// its creating fork must be included in the parent.
  void requireExists(uint32_t U) {
    if (Ix.Threads[U].HasParent)
      require(Ix.Threads[U].Parent, Ix.Threads[U].ParentCount);
  }

  void requireClose(const CritSec &Cs) {
    if (Cs.RelOrd == NoRelease) {
      Failed = true; // never released in the trace: cannot be closed
      return;
    }
    require(Cs.Thread, Cs.RelOrd + 1);
  }

  bool included(const CritSec &Cs) const {
    return Cs.AcqOrd < End[Cs.Thread];
  }

  void scan(uint32_t U) {
    // End[U] can grow while scanning (a rule may require U's own release),
    // so the bound is re-read each step.
    while (Scanned[U] < End[U] && !Failed) {
      const IndexedEvent &Ev = Ix.Threads[U].Evs[Scanned[U]];
      ++Scanned[U];
      switch (Ev.K) {
      case IndexedEvent::Acquire:
        onAcquire(Ev);
        break;
      case IndexedEvent::Wake:
      case IndexedEvent::JoinEdge:
        if (Ev.HasSrc)
          require(Ev.SrcThread, Ev.SrcCount);
        break;
      case IndexedEvent::Release:
      case IndexedEvent::Notify:
      case IndexedEvent::ForkChild:
        break;
      }
    }
  }

  void onAcquire(const IndexedEvent &Ev) {
    const PerLock &PL = Ix.Locks[Ev.Lock];
    if (PL.Irregular) {
      Failed = true; // grant-order invariant broken; stay conservative
      return;
    }
    const CritSec &Cs = PL.CSes[Ev.Cs];
    Sweep &S = Sweeps[Ev.Lock];
    touchLock(Ev.Lock);
    // Rule 2: an already-included conflicting acquire later in the trace
    // means this critical section must close before it (trace order is the
    // witness order), so its release joins the witness.
    bool ConflictLater = Cs.Mode == LockMode::Exclusive
                             ? (S.HasAll && S.MaxAll > Cs.AcqIdx)
                             : (S.HasExcl && S.MaxExcl > Cs.AcqIdx);
    if (ConflictLater)
      requireClose(Cs);
    if (!S.HasAll || Cs.AcqIdx > S.MaxAll) {
      S.MaxAll = Cs.AcqIdx;
      S.HasAll = true;
    }
    if (Cs.Mode == LockMode::Exclusive &&
        (!S.HasExcl || Cs.AcqIdx > S.MaxExcl)) {
      S.MaxExcl = Cs.AcqIdx;
      S.HasExcl = true;
    }
    // Rule 1, as two monotone sweeps over the lock's trace-ordered CS list:
    // an included exclusive acquire closes every earlier included critical
    // section; an included acquire of any mode closes earlier included
    // exclusive ones. Sections not yet included when a cursor passes are
    // caught by rule 2 at their own inclusion.
    const std::vector<CritSec> &CSes = PL.CSes;
    if (S.HasExcl)
      while (S.PAll < CSes.size() && CSes[S.PAll].AcqIdx < S.MaxExcl) {
        if (included(CSes[S.PAll]))
          requireClose(CSes[S.PAll]);
        ++S.PAll;
      }
    while (S.PExcl < CSes.size() && CSes[S.PExcl].AcqIdx < S.MaxAll) {
      if (CSes[S.PExcl].Mode == LockMode::Exclusive &&
          included(CSes[S.PExcl]))
        requireClose(CSes[S.PExcl]);
      ++S.PExcl;
    }
  }

  void touchLock(uint32_t L) { TouchedLocks.push_back(L); }

  const TraceIndex &Ix;
  std::vector<uint32_t> End;
  std::vector<uint32_t> Scanned;
  std::vector<uint8_t> Fixed;
  std::vector<uint8_t> InWork;
  std::vector<uint32_t> Work;
  std::vector<Sweep> Sweeps;
  std::vector<uint32_t> Touched;
  std::vector<uint32_t> TouchedLocks;
  bool Failed = false;
};

bool modesConflict(LockMode Request, LockMode Hold) {
  return Request == LockMode::Exclusive || Hold == LockMode::Exclusive;
}

/// Matches one cycle component to trace occurrences: (thread, lock) pairs,
/// exact context preferred, first MaxOccurrencesPerComponent in trace order
/// (the guard pruner's discipline, so the engines agree on witnesses).
std::vector<uint32_t> matchComponent(const TraceIndex &Ix,
                                     const CycleComponent &Comp,
                                     size_t Cap) {
  std::vector<uint32_t> Exact;
  std::vector<uint32_t> Loose;
  auto It = Ix.OccsByTL.find(TraceIndex::tlKey(Comp.Thread.Raw,
                                               Comp.Lock.Raw));
  if (It == Ix.OccsByTL.end())
    return Exact;
  for (uint32_t OccIdx : It->second) {
    const Occurrence &O = Ix.Occs[OccIdx];
    if (Ix.ThreadRaw[O.Thread] != Comp.Thread.Raw ||
        Ix.LockRaw[O.LockDense] != Comp.Lock.Raw)
      continue; // key collision
    if (O.Context == Comp.Context) {
      if (Exact.size() < Cap)
        Exact.push_back(OccIdx);
    } else if (Loose.size() < Cap) {
      Loose.push_back(OccIdx);
    }
  }
  return Exact.empty() ? Loose : Exact;
}

CyclePrediction unconfirmed(std::string Reason) {
  CyclePrediction P;
  P.Verdict = PredictVerdict::Unconfirmed;
  P.Reason = std::move(Reason);
  return P;
}

/// Verdict for one cycle: a pure function of (index, cycle, options).
CyclePrediction evaluateOne(const TraceIndex &Ix, const AbstractCycle &Cycle,
                            const PredictOptions &Opts, ClosureState &Closure,
                            uint64_t &AssignmentsTried) {
  const std::vector<CycleComponent> &Comps = Cycle.Components;
  const size_t M = Comps.size();
  if (M < 2)
    return unconfirmed("single-thread");
  {
    std::unordered_set<uint64_t> Distinct;
    for (const CycleComponent &C : Comps)
      if (!Distinct.insert(C.Thread.Raw).second)
        return unconfirmed("single-thread");
  }

  std::vector<std::vector<uint32_t>> PerComp;
  PerComp.reserve(M);
  for (const CycleComponent &C : Comps) {
    PerComp.push_back(
        matchComponent(Ix, C, Opts.MaxOccurrencesPerComponent));
    if (PerComp.back().empty())
      return unconfirmed("no-witness");
  }

  // Mixed-radix assignment space, saturated at the cap.
  uint64_t Total = 1;
  bool Capped = false;
  for (const std::vector<uint32_t> &P : PerComp) {
    if (Total > Opts.MaxAssignments / P.size()) {
      Capped = true;
      Total = Opts.MaxAssignments;
      break;
    }
    Total *= P.size();
  }

  bool SawGuard = false;
  std::string GuardName;
  bool SawOrdered = false;
  bool SawSyncViol = false;
  std::vector<const Occurrence *> Picks(M);
  for (uint64_t A = 0; A != Total; ++A) {
    ++AssignmentsTried;
    uint64_t Rest = A;
    for (size_t I = 0; I != M; ++I) {
      Picks[I] = &Ix.Occs[PerComp[I][Rest % PerComp[I].size()]];
      Rest /= PerComp[I].size();
    }

    // Wait-edge check: component i's request must block on the next
    // component's hold of that lock, mode-aware.
    bool EdgesOk = true;
    for (size_t I = 0; I != M && EdgesOk; ++I) {
      const Occurrence &Next = *Picks[(I + 1) % M];
      EdgesOk = false;
      for (const HeldLock &H : Next.Held)
        if (H.RawLock == Comps[I].Lock.Raw &&
            modesConflict(Picks[I]->Mode, H.Mode)) {
          EdgesOk = true;
          break;
        }
    }
    if (!EdgesOk)
      continue;

    // Common guard: a lock in every held set with at least one exclusive
    // holder excludes simultaneous arrival (the pruner's Guarded rule).
    {
      uint64_t Guard = 0;
      bool Found = false;
      for (const HeldLock &H : Picks[0]->Held) {
        bool AnyExcl = H.Mode == LockMode::Exclusive;
        bool All = true;
        for (size_t I = 1; I != M && All; ++I) {
          All = false;
          for (const HeldLock &H2 : Picks[I]->Held)
            if (H2.RawLock == H.RawLock) {
              All = true;
              AnyExcl |= H2.Mode == LockMode::Exclusive;
              break;
            }
        }
        if (All && AnyExcl && (!Found || H.RawLock < Guard)) {
          Guard = H.RawLock;
          Found = true;
        }
      }
      if (Found) {
        SawGuard = true;
        if (GuardName.empty()) {
          auto NameIt = Ix.LockNameByRaw.find(Guard);
          GuardName = NameIt != Ix.LockNameByRaw.end()
                          ? NameIt->second
                          : "lock" + std::to_string(Guard);
        }
        continue;
      }
    }

    // Mutual concurrency of the requests under the full-sync clocks.
    {
      bool Concurrent = true;
      for (size_t I = 0; I != M && Concurrent; ++I)
        for (size_t J = I + 1; J != M && Concurrent; ++J)
          Concurrent = vcConcurrent(Picks[I]->Clock, Picks[J]->Clock);
      if (!Concurrent) {
        SawOrdered = true;
        continue;
      }
    }

    uint64_t WitnessEvents = 0;
    if (Closure.run(Picks, WitnessEvents)) {
      CyclePrediction P;
      P.Verdict = PredictVerdict::Sound;
      P.WitnessEvents = WitnessEvents;
      return P;
    }
    SawSyncViol = true;
  }

  if (SawGuard)
    return unconfirmed("guarded (guard lock: " + GuardName + ")");
  if (SawOrdered)
    return unconfirmed("hb-ordered");
  if (SawSyncViol)
    return unconfirmed("sync-order");
  if (Capped)
    return unconfirmed("assignment-cap");
  return unconfirmed("no-witness");
}

unsigned resolveJobs(unsigned Jobs, size_t Work) {
  if (Jobs == 0) {
    Jobs = std::thread::hardware_concurrency();
    if (Jobs == 0)
      Jobs = 1;
  }
  if (Work != 0 && Jobs > Work)
    Jobs = static_cast<unsigned>(Work);
  return std::max(1u, Jobs);
}

} // namespace

const char *predictVerdictName(PredictVerdict V) {
  return V == PredictVerdict::Sound ? "sound" : "unconfirmed";
}

bool predictVerdictFromName(const std::string &Name, PredictVerdict &Out) {
  if (Name == "sound") {
    Out = PredictVerdict::Sound;
    return true;
  }
  if (Name == "unconfirmed") {
    Out = PredictVerdict::Unconfirmed;
    return true;
  }
  return false;
}

std::string CyclePrediction::label() const {
  if (Verdict == PredictVerdict::Sound)
    return "PREDICTED-SOUND (witness: " + std::to_string(WitnessEvents) +
           " events)";
  return "UNCONFIRMED (" + (Reason.empty() ? "no-witness" : Reason) + ")";
}

std::vector<CyclePrediction>
evaluateCycles(const TraceFile &Trace, const std::vector<AbstractCycle> &Cycles,
               const PredictOptions &Opts, PredictStats *Stats) {
  auto Start = std::chrono::steady_clock::now();
  TraceIndex Ix(Trace);

  std::vector<CyclePrediction> Out(Cycles.size());
  unsigned Jobs = resolveJobs(Opts.Jobs, Cycles.size());
  std::vector<uint64_t> AssignmentsPerWorker(Jobs, 0);
  // Verdicts are a pure function per cycle; round-robin sharding + in-index
  // results make every job count produce identical output.
  auto Worker = [&](unsigned W) {
    ClosureState Closure(Ix);
    for (size_t I = W; I < Cycles.size(); I += Jobs)
      Out[I] = evaluateOne(Ix, Cycles[I], Opts, Closure,
                           AssignmentsPerWorker[W]);
  };
  if (Jobs == 1) {
    Worker(0);
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(Jobs);
    for (unsigned W = 0; W != Jobs; ++W)
      Threads.emplace_back(Worker, W);
    for (std::thread &T : Threads)
      T.join();
  }

  uint64_t Assignments = 0;
  for (uint64_t N : AssignmentsPerWorker)
    Assignments += N;
  if (Stats) {
    Stats->EventsSeen = Trace.Events.size();
    Stats->AcquiresIndexed = Ix.AcquireEvents;
    Stats->AssignmentsTried = Assignments;
    Stats->JobsUsed = Jobs;
    Stats->ElapsedMicros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  }
  if (telemetry::enabled()) {
    telemetry::Registry &R = telemetry::Registry::global();
    size_t Sound = 0;
    for (const CyclePrediction &P : Out)
      Sound += P.sound();
    R.counter("dlf_predict_cycles_total").inc(Out.size());
    R.counter("dlf_predict_sound_total").inc(Sound);
    R.counter("dlf_predict_unconfirmed_total").inc(Out.size() - Sound);
    R.counter("dlf_predict_assignments_total").inc(Assignments);
    R.counter("dlf_predict_trace_events_total").inc(Trace.Events.size());
  }
  return Out;
}

size_t PredictAnalysis::soundCount() const {
  size_t N = 0;
  for (const CyclePrediction &P : Predictions)
    N += P.sound();
  return N;
}

PredictAnalysis predictDeadlocks(const TraceFile &Trace,
                                 const IGoodlockOptions &Closure,
                                 const PredictOptions &Opts) {
  PredictAnalysis R;
  IncrementalLogBuilder Builder(nullptr);
  Builder.feed(Trace.Events);
  IGoodlockOptions ClosureOpts = Closure;
  // Keep guarded cycles: --predict grades every candidate, and UNCONFIRMED
  // (guarded) is exactly the pruner's discharge made visible.
  ClosureOpts.KeepGuardedCycles = true;
  R.Cycles = runIGoodlock(Builder.log(), ClosureOpts, &R.ClosureStats);
  R.DependencyEntries = Builder.log().entries().size();
  R.AcquireEvents = Builder.log().acquireEvents();
  PredictOptions EvalOpts = Opts;
  if (EvalOpts.Jobs == 1 && ClosureOpts.AnalysisJobs != 1)
    EvalOpts.Jobs = ClosureOpts.AnalysisJobs;
  R.Predictions = evaluateCycles(Trace, R.Cycles, EvalOpts, &R.Stats);
  return R;
}

void printPredictReport(std::ostream &OS, const char *Tool,
                        const PredictAnalysis &R) {
  size_t Sound = R.soundCount();
  OS << Tool << ": " << R.DependencyEntries << " dependency entries, "
     << R.AcquireEvents << " acquire events, " << R.Cycles.size()
     << " potential deadlock cycle(s)\n";
  OS << "predict: " << Sound << " sound, "
     << (R.Cycles.size() - Sound) << " unconfirmed\n\n";
  for (size_t I = 0; I != R.Cycles.size(); ++I) {
    const AbstractCycle &Cycle = R.Cycles[I];
    OS << "#" << I << " " << Cycle.toString();
    OS << "prediction: " << R.Predictions[I].label() << "\n";
    OS << "cycle-spec: ";
    for (size_t C = 0; C != Cycle.Components.size(); ++C) {
      const CycleComponent &Comp = Cycle.Components[C];
      if (C)
        OS << ';';
      OS << Comp.ThreadName << '|' << Comp.LockName << '|';
      for (size_t S = 0; S != Comp.Context.size(); ++S) {
        if (S)
          OS << ',';
        OS << Comp.Context[S].text();
      }
    }
    OS << "\n\n";
  }
}

} // namespace analysis
} // namespace dlf
