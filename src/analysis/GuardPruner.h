//===- analysis/GuardPruner.h - Guard-lock cycle pruner ---------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static post-trace classification of iGoodlock cycles. iGoodlock
/// over-approximates (paper §3): it reports cycles that no real schedule
/// can turn into a deadlock, and Phase II then burns its repetition budget
/// thrashing on them — gate locks are the paper's own §4 example. Sound
/// dynamic prediction work (Tunç et al.; van den Heuvel et al.) shows the
/// recorded trace already contains what is needed to discharge many such
/// cycles before any re-execution:
///
///   * Guarded — some single lock is held across *every* edge of the cycle
///     (in every witnessing dependency assignment). The threads can never
///     all sit at their acquire points simultaneously: whoever holds the
///     guard excludes the others. The witnessing guard lock is named.
///   * HBOrdered — two components' acquires are ordered by the recorded
///     happens-before relation (fork-only clocks: a must-order), so they
///     cannot be concurrent in any execution with the same fork structure.
///   * SingleThread — fewer than two distinct threads (degenerate input
///     cycles; the closure itself never produces these).
///   * Schedulable — none of the above discharges the cycle; Phase II
///     should spend budget on it.
///
/// Classification is conservative in the safe direction: any ambiguity
/// (no matching dependency entries, assignment blow-up past the cap,
/// empty clocks) classifies as Schedulable. A "Guarded" verdict proves
/// unschedulability only relative to the recorded code paths — see
/// DESIGN.md §9 for what it does and does not promise — which is why
/// campaign reports keep pruned cycles visible instead of dropping them.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_ANALYSIS_GUARDPRUNER_H
#define DLF_ANALYSIS_GUARDPRUNER_H

#include "igoodlock/LockDependency.h"
#include "igoodlock/Report.h"

#include <string>
#include <vector>

namespace dlf {
namespace analysis {

/// Verdict for one cycle (see file comment).
enum class CycleClass { Schedulable, Guarded, HBOrdered, SingleThread };

/// Stable short name ("schedulable", "guarded", ...) used in reports and
/// the campaign journal.
const char *cycleClassName(CycleClass C);

/// Parses a cycleClassName back; returns false for unknown names.
bool cycleClassFromName(const std::string &Name, CycleClass &Out);

/// Classification of one cycle, with the witnessing guard lock's name when
/// the verdict is Guarded.
struct CycleClassification {
  CycleClass Class = CycleClass::Schedulable;
  std::string GuardLock;

  bool schedulable() const { return Class == CycleClass::Schedulable; }
  /// Human-readable label: "guarded (guard lock: m0)" / "schedulable" / ...
  std::string label() const;
};

struct GuardPrunerOptions {
  /// Cap on dependency-entry assignments enumerated per cycle; past it the
  /// cycle is conservatively Schedulable.
  uint64_t MaxAssignments = 4096;
};

/// Classifies every cycle in \p Cycles against the dependency relation that
/// produced it. Components are matched back to entries by (thread, lock,
/// context); a cycle is Schedulable iff *some* assignment of matching
/// entries is simultaneously reachable (no common guard, no happens-before
/// order between members).
std::vector<CycleClassification>
classifyCycles(const LockDependencyLog &Log,
               const std::vector<AbstractCycle> &Cycles,
               const GuardPrunerOptions &Opts = {});

} // namespace analysis
} // namespace dlf

#endif // DLF_ANALYSIS_GUARDPRUNER_H
