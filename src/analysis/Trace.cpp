//===- analysis/Trace.cpp - Recorded-trace reader ---------------------------===//

#include "analysis/Trace.h"

#include <fstream>
#include <sstream>

using namespace dlf;
using namespace dlf::analysis;

namespace {

/// Strict non-negative integer parse of one whitespace-delimited field.
bool parseId(std::istringstream &Fields, uint64_t &Out) {
  std::string Tok;
  if (!(Fields >> Tok) || Tok.empty())
    return false;
  uint64_t Value = 0;
  for (char C : Tok) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Value > (UINT64_MAX - Digit) / 10)
      return false;
    Value = Value * 10 + Digit;
  }
  Out = Value;
  return true;
}

bool parseText(std::istringstream &Fields, std::string &Out) {
  return static_cast<bool>(Fields >> Out) && !Out.empty();
}

} // namespace

TraceReadStatus dlf::analysis::readTrace(const std::string &Path,
                                         TraceFile &Out, std::string *Error) {
  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = "cannot open trace file " + Path;
    return TraceReadStatus::Unreadable;
  }

  std::string Line;
  size_t LineNo = 0;
  auto Malformed = [&](const char *Why) {
    if (Error) {
      std::ostringstream OS;
      OS << Path << ":" << LineNo << ": " << Why << ": '" << Line
         << "' (truncated or corrupt trace)";
      *Error = OS.str();
    }
    return TraceReadStatus::Unreadable;
  };

  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream Fields(Line);
    char Kind = 0;
    Fields >> Kind;

    TraceEvent E;
    switch (Kind) {
    case 'T':
      E.K = TraceEvent::Kind::ThreadNew;
      if (!parseId(Fields, E.A) || !parseText(Fields, E.Text))
        return Malformed("malformed thread event");
      break;
    case 'M':
      E.K = TraceEvent::Kind::LockNew;
      if (!parseId(Fields, E.A) || !parseText(Fields, E.Text))
        return Malformed("malformed lock event");
      break;
    case 'A':
      E.K = TraceEvent::Kind::Acquire;
      if (!parseId(Fields, E.A) || !parseId(Fields, E.B) ||
          !parseText(Fields, E.Text))
        return Malformed("malformed acquire event");
      break;
    case 'R':
      E.K = TraceEvent::Kind::Release;
      if (!parseId(Fields, E.A) || !parseId(Fields, E.B))
        return Malformed("malformed release event");
      break;
    case 'Q':
      E.K = TraceEvent::Kind::SharedAcquire;
      if (!parseId(Fields, E.A) || !parseId(Fields, E.B) ||
          !parseText(Fields, E.Text))
        return Malformed("malformed shared-acquire event");
      break;
    case 'U':
      E.K = TraceEvent::Kind::SharedRelease;
      if (!parseId(Fields, E.A) || !parseId(Fields, E.B))
        return Malformed("malformed shared-release event");
      break;
    case 'P':
      E.K = TraceEvent::Kind::TryProbe;
      if (!parseId(Fields, E.A) || !parseId(Fields, E.B) ||
          !parseText(Fields, E.Text))
        return Malformed("malformed trylock-probe event");
      break;
    case 'N':
      E.K = TraceEvent::Kind::CondNotify;
      if (!parseId(Fields, E.A) || !parseId(Fields, E.B))
        return Malformed("malformed cond-notify event");
      break;
    case 'V':
      E.K = TraceEvent::Kind::CondWake;
      if (!parseId(Fields, E.A) || !parseId(Fields, E.B))
        return Malformed("malformed cond-wake event");
      break;
    case 'F':
      E.K = TraceEvent::Kind::Fork;
      if (!parseId(Fields, E.A) || !parseId(Fields, E.B))
        return Malformed("malformed fork event");
      break;
    case 'J':
      E.K = TraceEvent::Kind::Join;
      if (!parseId(Fields, E.A) || !parseId(Fields, E.B))
        return Malformed("malformed join event");
      break;
    case 'O':
      E.K = TraceEvent::Kind::ObjectNew;
      if (!parseId(Fields, E.A) || !parseText(Fields, E.Text))
        return Malformed("malformed object event");
      break;
    case 'L':
      E.K = TraceEvent::Kind::Read;
      if (!parseId(Fields, E.A) || !parseId(Fields, E.B) ||
          !parseText(Fields, E.Text))
        return Malformed("malformed read event");
      break;
    case 'S':
      E.K = TraceEvent::Kind::Write;
      if (!parseId(Fields, E.A) || !parseId(Fields, E.B) ||
          !parseText(Fields, E.Text))
        return Malformed("malformed write event");
      break;
    default:
      return Malformed("unknown event kind");
    }
    Out.Events.push_back(std::move(E));
  }

  if (In.bad()) {
    if (Error)
      *Error = "read error on trace file " + Path;
    return TraceReadStatus::Unreadable;
  }
  if (Out.Events.empty()) {
    if (Error)
      *Error = "trace file " + Path +
               " contains no events (did the traced program run under "
               "LD_PRELOAD with DLF_PRELOAD_TRACE set?)";
    return TraceReadStatus::NoEvents;
  }
  return TraceReadStatus::Ok;
}
