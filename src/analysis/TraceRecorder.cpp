//===- analysis/TraceRecorder.cpp - Runtime events to trace tee -------------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/TraceRecorder.h"

namespace dlf {
namespace analysis {

void TraceRecorder::push(TraceEvent::Kind K, uint64_t A, uint64_t B,
                         std::string Text) {
  TraceEvent E;
  E.K = K;
  E.A = A;
  E.B = B;
  E.Text = std::move(Text);
  Events.push_back(std::move(E));
}

void TraceRecorder::onThreadCreated(const ThreadRecord &T) {
  if (Inner)
    Inner->onThreadCreated(T);
  push(TraceEvent::Kind::ThreadNew, T.Id.Raw, 0,
       T.Name.empty() ? "thread" + std::to_string(T.Id.Raw) : T.Name);
}

void TraceRecorder::onLockCreated(const LockRecord &L) {
  if (Inner)
    Inner->onLockCreated(L);
  push(TraceEvent::Kind::LockNew, L.Id.Raw, 0,
       L.Name.empty() ? "lock" + std::to_string(L.Id.Raw) : L.Name);
}

void TraceRecorder::onAcquireExecuted(
    const ThreadRecord &T, const LockRecord &L,
    const std::vector<LockStackEntry> &HeldBefore, Label Site, LockMode Mode) {
  // Dependency-relation event only: the trace line waits for the grant.
  if (Inner)
    Inner->onAcquireExecuted(T, L, HeldBefore, Site, Mode);
}

void TraceRecorder::onLockGranted(const ThreadRecord &T, const LockRecord &L,
                                  Label Site, LockMode Mode) {
  if (Inner)
    Inner->onLockGranted(T, L, Site, Mode);
  push(Mode == LockMode::Shared ? TraceEvent::Kind::SharedAcquire
                                : TraceEvent::Kind::Acquire,
       T.Id.Raw, L.Id.Raw, Site.text());
}

void TraceRecorder::onReleaseExecuted(const ThreadRecord &T,
                                      const LockRecord &L, LockMode Mode) {
  if (Inner)
    Inner->onReleaseExecuted(T, L, Mode);
  push(Mode == LockMode::Shared ? TraceEvent::Kind::SharedRelease
                                : TraceEvent::Kind::Release,
       T.Id.Raw, L.Id.Raw, std::string());
}

void TraceRecorder::onCondNotify(const ThreadRecord &T, const CondRecord &CV) {
  if (Inner)
    Inner->onCondNotify(T, CV);
  push(TraceEvent::Kind::CondNotify, T.Id.Raw, CV.Id, std::string());
}

void TraceRecorder::onCondWake(const ThreadRecord &T, const CondRecord &CV) {
  if (Inner)
    Inner->onCondWake(T, CV);
  push(TraceEvent::Kind::CondWake, T.Id.Raw, CV.Id, std::string());
}

void TraceRecorder::onForkEdge(const ThreadRecord &Parent,
                               const ThreadRecord &Child) {
  if (Inner)
    Inner->onForkEdge(Parent, Child);
  push(TraceEvent::Kind::Fork, Parent.Id.Raw, Child.Id.Raw, std::string());
}

void TraceRecorder::onJoinExecuted(const ThreadRecord &T,
                                   const ThreadRecord &Target) {
  if (Inner)
    Inner->onJoinExecuted(T, Target);
  push(TraceEvent::Kind::Join, T.Id.Raw, Target.Id.Raw, std::string());
}

} // namespace analysis
} // namespace dlf
