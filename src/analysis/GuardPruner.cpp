//===- analysis/GuardPruner.cpp - Guard-lock cycle pruner -------------------===//

#include "analysis/GuardPruner.h"

#include "event/VectorClock.h"
#include "telemetry/Metrics.h"

#include <algorithm>
#include <unordered_set>

using namespace dlf;
using namespace dlf::analysis;

const char *dlf::analysis::cycleClassName(CycleClass C) {
  switch (C) {
  case CycleClass::Schedulable:
    return "schedulable";
  case CycleClass::Guarded:
    return "guarded";
  case CycleClass::HBOrdered:
    return "hb-ordered";
  case CycleClass::SingleThread:
    return "single-thread";
  }
  return "schedulable";
}

bool dlf::analysis::cycleClassFromName(const std::string &Name,
                                       CycleClass &Out) {
  for (CycleClass C :
       {CycleClass::Schedulable, CycleClass::Guarded, CycleClass::HBOrdered,
        CycleClass::SingleThread}) {
    if (Name == cycleClassName(C)) {
      Out = C;
      return true;
    }
  }
  return false;
}

std::string CycleClassification::label() const {
  std::string S = cycleClassName(Class);
  if (Class == CycleClass::Guarded && !GuardLock.empty())
    S += " (guard lock: " + GuardLock + ")";
  return S;
}

namespace {

/// Indices into Log.entries() that could witness one cycle component.
using Candidates = std::vector<size_t>;

/// Entries matching a component, preferring the exact (thread, lock,
/// context) triple the closure actually chained; when the dedup in the
/// dependency log or abstraction collapse lost that triple, any (thread,
/// lock) match keeps the analysis conservative rather than vacuous.
Candidates matchComponent(const std::vector<DependencyEntry> &Entries,
                          const CycleComponent &Comp) {
  Candidates Exact;
  Candidates Loose;
  for (size_t I = 0; I != Entries.size(); ++I) {
    const DependencyEntry &E = Entries[I];
    if (E.Thread != Comp.Thread || E.Acquired != Comp.Lock)
      continue;
    Loose.push_back(I);
    if (E.Context == Comp.Context)
      Exact.push_back(I);
  }
  return Exact.empty() ? Loose : Exact;
}

/// The mode of a held occurrence; entries recorded without modes default
/// to Exclusive (the pre-mode semantics).
LockMode heldModeAt(const DependencyEntry &E, size_t K) {
  return K < E.HeldModes.size() ? E.HeldModes[K] : LockMode::Exclusive;
}

/// True when some lock is held by every entry of the assignment *and*
/// actually excludes: a lock held Shared by every entry lets all of them
/// hold it simultaneously, so it discharges nothing — a guard needs at
/// least one exclusive holder (which then conflicts with every other
/// holder). Held sets are tiny (lock-nesting depth), so the quadratic
/// scan beats building hash sets.
bool findCommonGuard(const std::vector<DependencyEntry> &Entries,
                     const std::vector<size_t> &Assign, LockId &Guard) {
  const DependencyEntry &First = Entries[Assign[0]];
  LockId Best; // invalid
  for (size_t K0 = 0; K0 != First.Held.size(); ++K0) {
    LockId L = First.Held[K0];
    bool Everywhere = true;
    bool AnyExclusive = heldModeAt(First, K0) == LockMode::Exclusive;
    for (size_t K = 1; K != Assign.size() && Everywhere; ++K) {
      const DependencyEntry &E = Entries[Assign[K]];
      bool Found = false;
      for (size_t H = 0; H != E.Held.size(); ++H)
        if (E.Held[H] == L) {
          Found = true;
          AnyExclusive |= heldModeAt(E, H) == LockMode::Exclusive;
        }
      Everywhere = Found;
    }
    if (Everywhere && AnyExclusive && (!Best.isValid() || L < Best))
      Best = L;
  }
  Guard = Best;
  return Best.isValid();
}

/// True when some pair of entries in the assignment is ordered by the
/// recorded happens-before relation. Empty clocks (tracking off) yield
/// NoInfo and never order anything away.
bool hasOrderedPair(const std::vector<DependencyEntry> &Entries,
                    const std::vector<size_t> &Assign) {
  for (size_t I = 0; I != Assign.size(); ++I) {
    for (size_t J = I + 1; J != Assign.size(); ++J) {
      VcOrder O = vcOrder(Entries[Assign[I]].Clock, Entries[Assign[J]].Clock);
      if (O == VcOrder::Before || O == VcOrder::After || O == VcOrder::Equal)
        return true;
    }
  }
  return false;
}

CycleClassification classifyOne(const LockDependencyLog &Log,
                                const AbstractCycle &Cycle,
                                const GuardPrunerOptions &Opts) {
  CycleClassification Result;

  std::unordered_set<ThreadId> Threads;
  for (const CycleComponent &Comp : Cycle.Components)
    Threads.insert(Comp.Thread);
  if (Threads.size() < 2) {
    Result.Class = CycleClass::SingleThread;
    return Result;
  }

  const std::vector<DependencyEntry> &Entries = Log.entries();
  std::vector<Candidates> PerComp;
  uint64_t Assignments = 1;
  for (const CycleComponent &Comp : Cycle.Components) {
    Candidates C = matchComponent(Entries, Comp);
    // A component with no witnessing entry (shouldn't happen for cycles the
    // closure itself produced, but deserialized cycles from another run can
    // get here): nothing provable, stay Schedulable.
    if (C.empty())
      return Result;
    if (Assignments > Opts.MaxAssignments / C.size())
      return Result;
    Assignments *= C.size();
    PerComp.push_back(std::move(C));
  }

  // A cycle is schedulable iff SOME assignment of witnessing entries is
  // simultaneously reachable. Track the discharging evidence of the best
  // non-schedulable verdict: a named guard beats a bare HB order because
  // it tells the user which lock to look at.
  bool SawGuard = false;
  bool SawOrdered = false;
  LockId GuardWitness;
  std::vector<size_t> Pick(PerComp.size());
  for (uint64_t N = 0; N != Assignments; ++N) {
    uint64_t Rest = N;
    for (size_t I = 0; I != PerComp.size(); ++I) {
      Pick[I] = PerComp[I][Rest % PerComp[I].size()];
      Rest /= PerComp[I].size();
    }
    LockId Guard;
    if (findCommonGuard(Entries, Pick, Guard)) {
      if (!SawGuard || Guard < GuardWitness)
        GuardWitness = Guard;
      SawGuard = true;
      continue;
    }
    if (hasOrderedPair(Entries, Pick)) {
      SawOrdered = true;
      continue;
    }
    return Result; // this assignment is schedulable — the cycle is
  }

  if (SawGuard) {
    Result.Class = CycleClass::Guarded;
    Result.GuardLock = Log.lockInfo(GuardWitness).Name;
  } else if (SawOrdered) {
    Result.Class = CycleClass::HBOrdered;
  }
  return Result;
}

} // namespace

std::vector<CycleClassification>
dlf::analysis::classifyCycles(const LockDependencyLog &Log,
                              const std::vector<AbstractCycle> &Cycles,
                              const GuardPrunerOptions &Opts) {
  std::vector<CycleClassification> Out;
  Out.reserve(Cycles.size());
  for (const AbstractCycle &Cycle : Cycles)
    Out.push_back(classifyOne(Log, Cycle, Opts));
  if (telemetry::enabled()) {
    telemetry::Registry &R = telemetry::Registry::global();
    for (const CycleClassification &C : Out) {
      std::string Name = "dlf_analysis_cycles_";
      for (const char *P = cycleClassName(C.Class); *P; ++P)
        Name += *P == '-' ? '_' : *P;
      Name += "_total";
      R.counter(Name).inc();
    }
  }
  return Out;
}
