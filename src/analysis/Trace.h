//===- analysis/Trace.h - Recorded-trace reader -----------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader for the preload trace format (interpose/TraceFormat.h), shared by
/// dlf-analyze and the offline analysis passes. Unlike the original ad-hoc
/// parse loop, reading distinguishes three outcomes a caller must treat
/// differently:
///
///   * Ok          — events parsed (there is something to analyze)
///   * NoEvents    — the file opened but carries no events (empty file,
///                   comments only): analyzing it is vacuous, not an error
///                   in the trace, but silently reporting "0 cycles" hides
///                   a misconfigured DLF_PRELOAD_TRACE run
///   * Unreadable  — the file cannot be opened, or a line is malformed
///                   (truncated write, unknown event kind, non-numeric id):
///                   the trace is corrupt and any analysis of it is suspect
///
/// dlf-analyze maps these to distinct exit codes (0 / 3 / 2) so scripts can
/// tell "program under test never synchronized" from "trace got truncated".
///
//===----------------------------------------------------------------------===//

#ifndef DLF_ANALYSIS_TRACE_H
#define DLF_ANALYSIS_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace dlf {
namespace analysis {

/// One parsed trace event. Field use per kind:
///   ThreadNew:     A = tid, Text = abstraction
///   LockNew:       A = lid, Text = abstraction
///   Acquire:       A = tid, B = lid, Text = acquire site (exclusive)
///   Release:       A = tid, B = lid (exclusive)
///   SharedAcquire: A = tid, B = lid, Text = acquire site (rwlock read side)
///   SharedRelease: A = tid, B = lid (rwlock read side)
///   TryProbe:      A = tid, B = lid, Text = site (failed trylock; inert
///                  for the wait-for analysis, recorded for visibility)
///   CondNotify:    A = tid, B = cid (signal/broadcast; happens-before
///                  source for subsequent wakeups)
///   CondWake:      A = tid, B = cid (waiter resumed after a notify;
///                  happens-before sink)
///   Fork:          A = parent tid, B = child tid
///   Join:          A = joiner tid, B = joined tid (pthread_join returned:
///                  everything the joined thread did happens-before the
///                  joiner's next step)
///   ObjectNew:     A = oid, Text = abstraction
///   Read/Write:    A = tid, B = oid, Text = access site
struct TraceEvent {
  enum class Kind {
    ThreadNew,
    LockNew,
    Acquire,
    Release,
    SharedAcquire,
    SharedRelease,
    TryProbe,
    CondNotify,
    CondWake,
    Fork,
    Join,
    ObjectNew,
    Read,
    Write
  };
  Kind K = Kind::ThreadNew;
  uint64_t A = 0;
  uint64_t B = 0;
  std::string Text;
};

/// Outcome of reading a trace file (see file comment).
enum class TraceReadStatus { Ok, NoEvents, Unreadable };

/// A fully parsed trace.
struct TraceFile {
  std::vector<TraceEvent> Events;
  /// Non-fatal oddities (e.g. an acquire referencing a thread the trace
  /// never introduced) — semantic warnings, not corruption.
  std::vector<std::string> Warnings;
};

/// Reads and parses \p Path. On Unreadable, \p Error describes the failure
/// (including the offending line number for malformed lines).
TraceReadStatus readTrace(const std::string &Path, TraceFile &Out,
                          std::string *Error);

} // namespace analysis
} // namespace dlf

#endif // DLF_ANALYSIS_TRACE_H
