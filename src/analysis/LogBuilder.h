//===- analysis/LogBuilder.h - Trace events to dependency log ---*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental construction of the lock dependency relation from a trace
/// event stream, extracted from dlf-analyze so the dlf-observe sidecar can
/// feed events in epochs as they drain from the ring: state (thread clocks,
/// held stacks, pending notify clocks, the running event number used in
/// warnings) persists across feed() calls, and feeding a whole trace in one
/// call is exactly the old batch behavior.
///
/// Thread clocks are fork-only (ticked at each F edge): a must-order
/// relation, so the pruner's HBOrdered verdict proves infeasibility instead
/// of merely "didn't overlap this run" — the distinction §1 of the paper
/// draws.
///
/// printCycleReport/printRaceReport render the analysis results in the
/// exact format dlf-analyze established, parameterized only by the tool
/// name, so dlf-observe's final report is diffable against dlf-analyze on
/// the same execution (the ring CI tier does exactly that).
///
//===----------------------------------------------------------------------===//

#ifndef DLF_ANALYSIS_LOGBUILDER_H
#define DLF_ANALYSIS_LOGBUILDER_H

#include "analysis/GuardPruner.h"
#include "analysis/RaceDetector.h"
#include "analysis/Trace.h"
#include "igoodlock/IGoodlock.h"
#include "igoodlock/LockDependency.h"
#include "runtime/Records.h"

#include <iosfwd>
#include <unordered_map>
#include <vector>

namespace dlf {
namespace analysis {

class IncrementalLogBuilder {
public:
  /// Semantic warnings ("acquire references unknown thread") go to
  /// \p WarnOS; pass null to silence them.
  explicit IncrementalLogBuilder(std::ostream *WarnOS = nullptr)
      : Warn(WarnOS) {}

  /// Feeds a batch of events. Each event must be fed exactly once, in
  /// stream order.
  void feed(const std::vector<TraceEvent> &Events);

  const LockDependencyLog &log() const { return Log; }
  uint64_t eventsSeen() const { return EventNo; }

private:
  struct BuilderThread {
    ThreadRecord Record;
    std::vector<LockStackEntry> Stack;
  };

  void feedOne(const TraceEvent &E);

  std::ostream *Warn;
  LockDependencyLog Log;
  std::unordered_map<uint64_t, BuilderThread> Threads;
  std::unordered_map<uint64_t, LockRecord> Locks;
  /// Last notify clock per condvar id: a V event joins it into the waking
  /// thread (the signal→wake happens-before edge of the widened alphabet).
  std::unordered_map<uint64_t, VectorClock> CondNotify;
  uint64_t EventNo = 0;
};

/// Prints the deadlock-cycle report (summary lines, then one block per
/// cycle with classification and machine-readable cycle-spec) in the
/// dlf-analyze format, with \p Tool as the leading tool name.
void printCycleReport(std::ostream &OS, const char *Tool,
                      const LockDependencyLog &Log,
                      const std::vector<AbstractCycle> &Cycles,
                      const std::vector<CycleClassification> &Classes,
                      const IGoodlockStats &Stats);

/// Prints the race report in the dlf-analyze --races format.
void printRaceReport(std::ostream &OS, const char *Tool,
                     const RaceAnalysis &Result);

} // namespace analysis
} // namespace dlf

#endif // DLF_ANALYSIS_LOGBUILDER_H
