//===- analysis/TraceRecorder.h - Runtime events to trace tee ---*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A DependencyRecorder tee: forwards every notification to an inner
/// recorder (typically the iGoodlock LockDependencyLog) while appending
/// the equivalent TraceEvents to an in-memory trace — the same event
/// stream the preload front end writes to disk. Campaigns use it to hand
/// Phase I executions to the --predict engine without a trace file.
///
/// Acquire events are emitted at the *grant* (onLockGranted), not the
/// attempt: the prediction soundness argument requires that conflicting
/// critical sections never overlap in trace order, which only grant-order
/// emission guarantees (see analysis/Predict.cpp).
///
/// Calls are externally synchronized by the runtime, like any recorder.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_ANALYSIS_TRACERECORDER_H
#define DLF_ANALYSIS_TRACERECORDER_H

#include "analysis/Trace.h"
#include "runtime/Recorder.h"

#include <utility>
#include <vector>

namespace dlf {
namespace analysis {

class TraceRecorder : public DependencyRecorder {
public:
  /// \p Inner may be null (trace capture only).
  explicit TraceRecorder(DependencyRecorder *Inner) : Inner(Inner) {}

  void onThreadCreated(const ThreadRecord &T) override;
  void onLockCreated(const LockRecord &L) override;
  void onAcquireExecuted(const ThreadRecord &T, const LockRecord &L,
                         const std::vector<LockStackEntry> &HeldBefore,
                         Label Site, LockMode Mode) override;
  void onLockGranted(const ThreadRecord &T, const LockRecord &L, Label Site,
                     LockMode Mode) override;
  void onReleaseExecuted(const ThreadRecord &T, const LockRecord &L,
                         LockMode Mode) override;
  void onCondNotify(const ThreadRecord &T, const CondRecord &CV) override;
  void onCondWake(const ThreadRecord &T, const CondRecord &CV) override;
  void onForkEdge(const ThreadRecord &Parent, const ThreadRecord &Child) override;
  void onJoinExecuted(const ThreadRecord &T, const ThreadRecord &Target) override;

  const std::vector<TraceEvent> &events() const { return Events; }
  std::vector<TraceEvent> takeEvents() { return std::move(Events); }

private:
  void push(TraceEvent::Kind K, uint64_t A, uint64_t B, std::string Text);

  DependencyRecorder *Inner = nullptr;
  std::vector<TraceEvent> Events;
};

} // namespace analysis
} // namespace dlf

#endif // DLF_ANALYSIS_TRACERECORDER_H
