//===- analysis/LogBuilder.cpp - Trace events to dependency log -------------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LogBuilder.h"

#include <ostream>

namespace dlf {
namespace analysis {

namespace {

/// Builds an Abstraction whose single element is the interned label of the
/// preload abstraction string ("site#n"): equality of strings is equality
/// of abstractions, which is all the closure needs.
AbstractionSet absFromString(const std::string &Text) {
  AbstractionSet Abs;
  uint32_t Raw = Label::intern(Text).raw();
  Abs.Index.Elements = {Raw, 1};
  Abs.KObject.Elements = {Raw};
  return Abs;
}

} // namespace

void IncrementalLogBuilder::feed(const std::vector<TraceEvent> &Events) {
  for (const TraceEvent &E : Events)
    feedOne(E);
}

void IncrementalLogBuilder::feedOne(const TraceEvent &E) {
  ++EventNo;
  switch (E.K) {
  case TraceEvent::Kind::ThreadNew: {
    BuilderThread &T = Threads[E.A];
    T.Record.Id = ThreadId(E.A);
    T.Record.Name = E.Text;
    T.Record.Abs = absFromString(E.Text);
    vcTick(T.Record.Clock, T.Record.Id);
    Log.onThreadCreated(T.Record);
    break;
  }
  case TraceEvent::Kind::LockNew: {
    LockRecord &L = Locks[E.A];
    L.Id = LockId(E.A);
    L.Name = E.Text;
    L.Abs = absFromString(E.Text);
    Log.onLockCreated(L);
    break;
  }
  case TraceEvent::Kind::Fork: {
    auto Parent = Threads.find(E.A);
    auto Child = Threads.find(E.B);
    if (Parent == Threads.end() || Child == Threads.end()) {
      if (Warn)
        *Warn << "warning: event " << EventNo
              << ": fork references unknown thread\n";
      break;
    }
    vcJoin(Child->second.Record.Clock, Parent->second.Record.Clock);
    vcTick(Child->second.Record.Clock, Child->second.Record.Id);
    vcTick(Parent->second.Record.Clock, Parent->second.Record.Id);
    break;
  }
  case TraceEvent::Kind::Acquire:
  case TraceEvent::Kind::SharedAcquire: {
    auto ThreadIt = Threads.find(E.A);
    auto LockIt = Locks.find(E.B);
    if (ThreadIt == Threads.end() || LockIt == Locks.end()) {
      if (Warn)
        *Warn << "warning: event " << EventNo
              << ": acquire references unknown thread/lock\n";
      break;
    }
    LockMode Mode = E.K == TraceEvent::Kind::SharedAcquire
                        ? LockMode::Shared
                        : LockMode::Exclusive;
    BuilderThread &T = ThreadIt->second;
    Log.onAcquireExecuted(T.Record, LockIt->second, T.Stack,
                          Label::intern(E.Text), Mode);
    T.Stack.push_back({LockId(E.B), Label::intern(E.Text), Mode});
    break;
  }
  case TraceEvent::Kind::Release:
  case TraceEvent::Kind::SharedRelease: {
    auto ThreadIt = Threads.find(E.A);
    if (ThreadIt == Threads.end())
      break;
    auto &Stack = ThreadIt->second.Stack;
    for (size_t I = Stack.size(); I-- > 0;) {
      if (Stack[I].Lock == LockId(E.B)) {
        Stack.erase(Stack.begin() + static_cast<long>(I));
        break;
      }
    }
    break;
  }
  case TraceEvent::Kind::Join: {
    auto Joiner = Threads.find(E.A);
    auto Target = Threads.find(E.B);
    if (Joiner == Threads.end() || Target == Threads.end()) {
      if (Warn)
        *Warn << "warning: event " << EventNo
              << ": join references unknown thread\n";
      break;
    }
    // Join is a must-order edge: the whole joined thread happens-before
    // the joiner's next step (strengthens the pruner's HBOrdered check).
    vcJoin(Joiner->second.Record.Clock, Target->second.Record.Clock);
    break;
  }
  case TraceEvent::Kind::CondNotify: {
    auto ThreadIt = Threads.find(E.A);
    if (ThreadIt == Threads.end()) {
      if (Warn)
        *Warn << "warning: event " << EventNo
              << ": cond-notify references unknown thread\n";
      break;
    }
    BuilderThread &T = ThreadIt->second;
    // Store-then-tick: the clock a waiter inherits must exclude the
    // notifier's post-notify tick, or acquires the notifier performs after
    // the notify would falsely order before the waiter's post-wake acquires
    // and the hb filter could discharge a real cycle.
    CondNotify[E.B] = T.Record.Clock;
    vcTick(T.Record.Clock, T.Record.Id);
    break;
  }
  case TraceEvent::Kind::CondWake: {
    auto ThreadIt = Threads.find(E.A);
    if (ThreadIt == Threads.end()) {
      if (Warn)
        *Warn << "warning: event " << EventNo
              << ": cond-wake references unknown thread\n";
      break;
    }
    auto NotifyIt = CondNotify.find(E.B);
    if (NotifyIt != CondNotify.end())
      vcJoin(ThreadIt->second.Record.Clock, NotifyIt->second);
    break;
  }
  case TraceEvent::Kind::TryProbe:
    // A failed probe never blocks, so it contributes no wait-for edge;
    // the preload records it for visibility only.
    break;
  case TraceEvent::Kind::ObjectNew:
  case TraceEvent::Kind::Read:
  case TraceEvent::Kind::Write:
    break; // race-detector events; inert for the deadlock passes
  }
}

void printCycleReport(std::ostream &OS, const char *Tool,
                      const LockDependencyLog &Log,
                      const std::vector<AbstractCycle> &Cycles,
                      const std::vector<CycleClassification> &Classes,
                      const IGoodlockStats &Stats) {
  size_t Schedulable = 0;
  for (const CycleClassification &C : Classes)
    Schedulable += C.schedulable();

  OS << Tool << ": " << Log.entries().size() << " dependency entries, "
     << Log.acquireEvents() << " acquire events, " << Cycles.size()
     << " potential deadlock cycle(s)\n";
  OS << "pruner: " << Schedulable << " schedulable, "
     << (Cycles.size() - Schedulable) << " statically discharged\n";
  OS << "closure: " << Stats.ChainsExplored << " chains, "
     << Stats.ElapsedMicros << " us, "
     << static_cast<uint64_t>(Stats.entriesPerSecond()) << " entries/s, "
     << static_cast<uint64_t>(Stats.chainsPerSecond()) << " chains/s, jobs "
     << Stats.JobsUsed << "\n\n";
  for (size_t I = 0; I != Cycles.size(); ++I) {
    const AbstractCycle &Cycle = Cycles[I];
    OS << "#" << I << " " << Cycle.toString();
    OS << "classification: " << Classes[I].label() << "\n";
    OS << "cycle-spec: ";
    for (size_t C = 0; C != Cycle.Components.size(); ++C) {
      const CycleComponent &Comp = Cycle.Components[C];
      if (C)
        OS << ';';
      OS << Comp.ThreadName << '|' << Comp.LockName << '|';
      for (size_t S = 0; S != Comp.Context.size(); ++S) {
        if (S)
          OS << ',';
        OS << Comp.Context[S].text();
      }
    }
    OS << "\n\n";
  }
}

void printRaceReport(std::ostream &OS, const char *Tool,
                     const RaceAnalysis &Result) {
  OS << Tool << ": " << Result.ObjectsSeen << " shared object(s), "
     << Result.AccessesSeen << " access event(s), " << Result.RacyPairs
     << " racy pair(s)\n";
  if (Result.RacyPairs == 0 && Result.AccessesSeen == 0)
    OS << "note: trace has no access events; record them with "
          "DLF_TRACE_ACCESSES=1 and dlf_trace_read/dlf_trace_write\n";
  if (Result.RacyPairs > Result.Races.size())
    OS << "note: showing first " << Result.Races.size() << " of "
       << Result.RacyPairs << " racy pairs\n";
  OS << "\n";
  for (size_t I = 0; I != Result.Races.size(); ++I)
    OS << "#" << I << " " << Result.Races[I].toString() << "\n";
}

} // namespace analysis
} // namespace dlf
