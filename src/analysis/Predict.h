//===- analysis/Predict.h - Sync-preserving deadlock prediction -*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sound sync-preserving deadlock prediction over a recorded trace, after
/// "Sound Dynamic Deadlock Prediction in Linear Time" (Tunç et al.) and
/// "Partial Orders for Precise and Efficient Dynamic Deadlock Prediction".
/// iGoodlock over-approximates: it reports every cyclic lock-dependency
/// pattern, realizable or not, and Phase II burns repetitions finding out
/// which. This pass answers the question statically, in the sound
/// direction: a cycle is PREDICTED-SOUND only when the trace itself
/// contains a witness — a per-thread-prefix subset of the recorded events
/// that can replay (respecting lock exclusion, fork/join edges and
/// notify→wake edges) into a state where every cycle thread is blocked at
/// its acquire while the next thread over holds the requested lock.
///
/// The witness search is a fixpoint over per-thread included-prefix
/// lengths (the sync-preserving closure): including an acquire forces the
/// release of every earlier conflicting critical section on that lock into
/// the witness, including a wakeup forces its notify, including any event
/// of a forked thread forces the fork, and including a join forces the
/// whole joined thread. Replaying the resulting included set in trace
/// order is legal because conflicting critical sections never overlap in
/// the trace — so a successful fixpoint IS a schedule, and the verdict is
/// sound. Everything else stays UNCONFIRMED (with a reason: guarded /
/// hb-ordered / sync-order / no-witness / assignment-cap), which iGoodlock
/// semantics still cover — prediction never *adds* cycles, it grades them.
///
/// Verdicts are a pure function of (trace, cycle): cycles are sharded
/// round-robin over Jobs worker threads and merged back in cycle order,
/// so stdout reports are byte-identical for every job count (the PR 3
/// determinism contract).
///
//===----------------------------------------------------------------------===//

#ifndef DLF_ANALYSIS_PREDICT_H
#define DLF_ANALYSIS_PREDICT_H

#include "analysis/Trace.h"
#include "igoodlock/IGoodlock.h"
#include "igoodlock/Report.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dlf {
namespace analysis {

/// Verdict for one cycle. Sound means a concrete witness schedule was
/// constructed from the trace; Unconfirmed means none was found (which
/// does not prove absence — the engine is sound, not complete).
enum class PredictVerdict { Sound, Unconfirmed };

/// Stable short name ("sound" / "unconfirmed") for journals and wire use.
const char *predictVerdictName(PredictVerdict V);

/// Parses a predictVerdictName back; returns false for unknown names.
bool predictVerdictFromName(const std::string &Name, PredictVerdict &Out);

/// Prediction for one cycle.
struct CyclePrediction {
  PredictVerdict Verdict = PredictVerdict::Unconfirmed;
  /// Unconfirmed: strongest discharge evidence seen across assignments
  /// ("guarded (guard lock: g)" / "hb-ordered" / "sync-order" /
  /// "no-witness" / "assignment-cap"). Sound: empty.
  std::string Reason;
  /// Sound: number of trace events in the constructed witness prefix set.
  uint64_t WitnessEvents = 0;

  bool sound() const { return Verdict == PredictVerdict::Sound; }
  /// Report label: "PREDICTED-SOUND (witness: N events)" or
  /// "UNCONFIRMED (<reason>)".
  std::string label() const;
};

struct PredictOptions {
  /// Worker threads for the per-cycle verdict computation (1 = serial,
  /// 0 = hardware concurrency). Verdicts are identical for every value.
  unsigned Jobs = 1;
  /// Cap on concrete-occurrence assignments enumerated per cycle; past it
  /// remaining assignments are skipped and the cycle can only report
  /// UNCONFIRMED (assignment-cap) — the conservative direction.
  uint64_t MaxAssignments = 4096;
  /// Cap on concrete acquires considered per cycle component (first in
  /// trace order win, exact context matches preferred).
  size_t MaxOccurrencesPerComponent = 8;
};

struct PredictStats {
  uint64_t EventsSeen = 0;
  uint64_t AcquiresIndexed = 0;
  uint64_t AssignmentsTried = 0;
  uint64_t ElapsedMicros = 0;
  unsigned JobsUsed = 1;
};

/// Computes a verdict for every cycle in \p Cycles against \p Trace.
/// Cycle components are matched to trace acquires by (thread, lock),
/// preferring exact context matches — the same matching discipline as the
/// guard pruner, so prediction discharges at least what the pruner does.
std::vector<CyclePrediction>
evaluateCycles(const TraceFile &Trace, const std::vector<AbstractCycle> &Cycles,
               const PredictOptions &Opts = {}, PredictStats *Stats = nullptr);

/// Full --predict pipeline result: the iGoodlock cycle enumeration (guarded
/// cycles kept, so every candidate gets graded) plus per-cycle verdicts.
struct PredictAnalysis {
  std::vector<AbstractCycle> Cycles;
  std::vector<CyclePrediction> Predictions;
  IGoodlockStats ClosureStats;
  PredictStats Stats;
  size_t DependencyEntries = 0;
  uint64_t AcquireEvents = 0;

  size_t soundCount() const;
};

/// Runs enumeration + prediction over \p Trace (the dlf-analyze --predict
/// entry point). \p Closure controls the candidate enumeration
/// (MaxCycleLength, AnalysisJobs — also used as the verdict job count).
PredictAnalysis predictDeadlocks(const TraceFile &Trace,
                                 const IGoodlockOptions &Closure = {},
                                 const PredictOptions &Opts = {});

/// Prints the --predict report. Deterministic: no timing or job-count
/// chatter — stdout is byte-identical for every --analysis-jobs value.
void printPredictReport(std::ostream &OS, const char *Tool,
                        const PredictAnalysis &R);

} // namespace analysis
} // namespace dlf

#endif // DLF_ANALYSIS_PREDICT_H
