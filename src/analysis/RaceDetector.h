//===- analysis/RaceDetector.h - Lockset + epoch race detector --*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline data-race detection over recorded traces — the second analysis
/// pass the trace already pays for. The algorithm is the classic hybrid:
/// Eraser's lockset discipline filtered by FastTrack-style happens-before
/// (reusing event/VectorClock), so an access pair is racy only when
///
///   * the accesses touch the same object from different threads,
///   * at least one is a write,
///   * their vector clocks are concurrent (fork and release→acquire edges
///     both establish order — a consistently lock-protected handoff is
///     ordered and never reported), and
///   * the locksets held at the two accesses are disjoint.
///
/// Pass structure mirrors the closure engine's determinism contract: a
/// serial event walk computes clocks, locksets and per-object access
/// summaries (inherently ordered — clocks thread through the trace), then
/// per-object pair checking shards across --analysis-jobs workers and
/// results merge in object-first-seen order. Output is byte-identical for
/// every job count, including 0 (= hardware concurrency).
///
/// Accesses come from the opt-in DLF_TRACE_ACCESSES preload knob (L/S/O
/// trace lines); summaries keep the last access per (thread, kind, site)
/// per object, which bounds memory on looping programs without losing any
/// racy *pair of sites*.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_ANALYSIS_RACEDETECTOR_H
#define DLF_ANALYSIS_RACEDETECTOR_H

#include "analysis/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dlf {
namespace analysis {

/// One side of a racy pair.
struct RaceAccess {
  uint64_t Thread = 0;
  std::string ThreadAbs;
  bool IsWrite = false;
  std::string Site;
};

/// A racy access pair on one object.
struct RaceReport {
  uint64_t Object = 0;
  std::string ObjectAbs;
  RaceAccess First;
  RaceAccess Second;

  /// Multi-line human-readable rendering.
  std::string toString() const;
};

struct RaceDetectorOptions {
  /// Worker threads for the pair-checking pass; 0 = hardware concurrency.
  unsigned Jobs = 1;
  /// Cap on reported pairs (the walk still visits everything; reports past
  /// the cap are counted, not rendered).
  size_t MaxReports = 256;
};

/// Result of one detection run.
struct RaceAnalysis {
  std::vector<RaceReport> Races;
  /// Racy pairs found in total, including any past MaxReports.
  uint64_t RacyPairs = 0;
  uint64_t ObjectsSeen = 0;
  uint64_t AccessesSeen = 0;
  /// Semantic oddities (accesses by unintroduced threads/objects).
  std::vector<std::string> Warnings;
};

/// Runs the detector over \p Trace. Deterministic: identical Races order
/// and content for every Jobs value.
RaceAnalysis detectRaces(const TraceFile &Trace,
                         const RaceDetectorOptions &Opts = {});

} // namespace analysis
} // namespace dlf

#endif // DLF_ANALYSIS_RACEDETECTOR_H
