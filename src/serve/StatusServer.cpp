//===- serve/StatusServer.cpp - Loopback HTTP observability plane ---------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/StatusServer.h"

#include "support/Env.h"
#include "support/Retry.h"
#include "telemetry/Metrics.h"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dlf {
namespace serve {

namespace {

/// Largest request head we accept before answering 431; scrapers send a
/// one-line GET, so anything bigger is a confused or hostile peer.
constexpr size_t MaxRequestBytes = 8192;

void closeIfOpen(int &Fd) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

/// Best-effort non-blocking send; SIGPIPE suppressed (a vanished scraper
/// must not kill the analysis).
ssize_t sendSome(int Fd, const char *Data, size_t Len) {
  return ::send(Fd, Data, Len, MSG_NOSIGNAL);
}

/// Splits "host:port" / ":port" / "port"; returns false (with a message)
/// for anything that is not loopback.
bool parseLoopbackAddr(const std::string &Addr, uint16_t &PortOut,
                       std::string *Err) {
  std::string Host;
  std::string PortText = Addr;
  size_t Colon = Addr.rfind(':');
  if (Colon != std::string::npos) {
    Host = Addr.substr(0, Colon);
    PortText = Addr.substr(Colon + 1);
  }
  if (!Host.empty() && Host != "127.0.0.1" && Host != "localhost") {
    if (Err)
      *Err = "refusing non-loopback status address '" + Host +
             "' (the server is loopback-only; use 127.0.0.1)";
    return false;
  }
  uint64_t Port = 0;
  if (!parseUint64Strict(PortText.c_str(), Port) || Port > 65535) {
    if (Err)
      *Err = "bad status port '" + PortText + "' (expected 0-65535)";
    return false;
  }
  PortOut = static_cast<uint16_t>(Port);
  return true;
}

std::string sseFrame(const std::string &Type, const std::string &Json) {
  std::string F;
  F.reserve(Type.size() + Json.size() + 16);
  F += "event: ";
  F += Type;
  F += "\ndata: ";
  F += Json;
  F += "\n\n";
  return F;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        Out += Buf;
      } else {
        Out += Ch;
      }
    }
  }
  return Out;
}

} // namespace

std::string promEscapeLabelValue(const std::string &V) {
  std::string Out;
  Out.reserve(V.size());
  for (char Ch : V) {
    if (Ch == '\\')
      Out += "\\\\";
    else if (Ch == '"')
      Out += "\\\"";
    else if (Ch == '\n')
      Out += "\\n";
    else
      Out += Ch;
  }
  return Out;
}

std::unique_ptr<StatusServer> StatusServer::start(ServerOptions Opts,
                                                  std::string *Err) {
  uint16_t WantPort = 0;
  if (!parseLoopbackAddr(Opts.Addr, WantPort, Err))
    return nullptr;
  if (!Opts.MetricsProvider)
    Opts.MetricsProvider = [] { return telemetry::Registry::global().snapshot(); };

  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    if (Err)
      *Err = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Sin{};
  Sin.sin_family = AF_INET;
  Sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Sin.sin_port = htons(WantPort);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Sin), sizeof(Sin)) < 0 ||
      ::listen(Fd, 16) < 0) {
    if (Err)
      *Err = "bind 127.0.0.1:" + std::to_string(WantPort) + ": " +
             std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  socklen_t SinLen = sizeof(Sin);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Sin), &SinLen) < 0) {
    if (Err)
      *Err = std::string("getsockname: ") + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }

  int Pipe[2];
  if (::pipe2(Pipe, O_NONBLOCK | O_CLOEXEC) < 0) {
    if (Err)
      *Err = std::string("pipe2: ") + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }

  std::unique_ptr<StatusServer> S(new StatusServer());
  S->Opts = std::move(Opts);
  S->Port = ntohs(Sin.sin_port);
  S->ListenFd = Fd;
  S->WakeRead = Pipe[0];
  S->WakeWrite = Pipe[1];
  S->Thread = std::thread([Server = S.get()] { Server->threadMain(); });
  return S;
}

StatusServer::~StatusServer() { stop(); }

std::string StatusServer::address() const {
  return "127.0.0.1:" + std::to_string(Port);
}

void StatusServer::stop() {
  bool Expected = false;
  if (!Stopping.compare_exchange_strong(Expected, true)) {
    if (Thread.joinable())
      Thread.join();
    return;
  }
  if (WakeWrite >= 0) {
    char B = 'q';
    (void)::write(WakeWrite, &B, 1);
  }
  if (Thread.joinable())
    Thread.join();
  closeIfOpen(ListenFd);
  closeIfOpen(WakeRead);
  closeIfOpen(WakeWrite);
}

void StatusServer::publishStatus(const CampaignStatus &S) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    LastStatus = S;
  }
  char B = 's';
  (void)::write(WakeWrite, &B, 1);
}

void StatusServer::publishEvent(const std::string &Type,
                                const std::string &Json) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    PendingEvents.push_back(sseFrame(Type, Json));
    // Bound the queue even with no server thread draining it (shutdown
    // races): old events are strictly less useful than new ones.
    while (PendingEvents.size() > 1024)
      PendingEvents.pop_front();
  }
  char B = 'e';
  (void)::write(WakeWrite, &B, 1);
}

void StatusServer::publishMetrics(const telemetry::MetricsSnapshot &M) {
  std::lock_guard<std::mutex> Lock(Mu);
  PublishedMetrics = M;
}

void StatusServer::threadMain() {
  while (!Stopping.load(std::memory_order_acquire)) {
    std::vector<pollfd> Fds;
    Fds.push_back({WakeRead, POLLIN, 0});
    Fds.push_back({ListenFd, POLLIN, 0});
    for (Client &C : Clients) {
      short Ev = POLLIN;
      if (!C.Out.empty())
        Ev |= POLLOUT;
      Fds.push_back({C.Fd, Ev, 0});
    }

    int N = ::poll(Fds.data(), Fds.size(), 500);
    if (N < 0 && errno != EINTR)
      break;

    if (Fds[0].revents & POLLIN) {
      char Buf[256];
      while (::read(WakeRead, Buf, sizeof(Buf)) > 0) {
      }
    }

    // Frame any freshly published events onto SSE outboxes.
    std::vector<std::string> Fresh;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      while (!PendingEvents.empty()) {
        Fresh.push_back(std::move(PendingEvents.front()));
        PendingEvents.pop_front();
      }
    }
    if (!Fresh.empty()) {
      for (Client &C : Clients) {
        if (!C.Sse)
          continue;
        for (const std::string &F : Fresh)
          C.Out += F;
      }
    }

    if (Fds[1].revents & POLLIN)
      acceptClients();

    for (size_t I = 0; I < Clients.size(); ++I) {
      Client &C = Clients[I];
      // pollfd slot 2+I tracks Clients[I]; acceptClients may have added
      // clients with no slot this round — they flush next iteration.
      size_t Slot = 2 + I;
      bool Alive = true;
      if (Slot < Fds.size() && Fds[Slot].fd == C.Fd) {
        if (Fds[Slot].revents & (POLLERR | POLLHUP | POLLNVAL))
          Alive = false;
        if (Alive && (Fds[Slot].revents & POLLIN))
          Alive = handleReadable(C);
      }
      if (Alive && !C.Out.empty())
        Alive = flushClient(C);
      if (Alive && C.Sse && C.Out.size() > Opts.MaxClientBufferBytes) {
        // A scraper this far behind will never catch up; shed it so the
        // outbox cannot grow without bound.
        SseDropped.fetch_add(1, std::memory_order_relaxed);
        Alive = false;
      }
      if (Alive && !C.Sse && C.CloseAfterFlush && C.Out.empty())
        Alive = false;
      if (!Alive) {
        ::close(C.Fd);
        Clients.erase(Clients.begin() + static_cast<long>(I));
        --I;
      }
    }
  }

  // Courtesy farewell so SSE consumers see an explicit end, then tear
  // everything down. Best effort: the process is exiting either way.
  const std::string Bye = sseFrame("bye", "{}");
  for (Client &C : Clients) {
    if (C.Sse)
      (void)sendSome(C.Fd, Bye.data(), Bye.size());
    ::close(C.Fd);
  }
  Clients.clear();
}

void StatusServer::acceptClients() {
  for (;;) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0)
      return;
    if (Clients.size() >= Opts.MaxClients) {
      const std::string R = simpleResponse(503, "Service Unavailable",
                                           "text/plain", "too many clients\n");
      (void)sendSome(Fd, R.data(), R.size());
      ::close(Fd);
      continue;
    }
    Client C;
    C.Fd = Fd;
    Clients.push_back(std::move(C));
  }
}

bool StatusServer::handleReadable(Client &C) {
  char Buf[4096];
  for (;;) {
    ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (N == 0)
      return false; // peer closed
    if (N < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break;
      if (errno == EINTR)
        continue;
      return false;
    }
    // An SSE subscriber has nothing more to say; drain and ignore.
    if (C.Sse)
      continue;
    C.In.append(Buf, static_cast<size_t>(N));
    if (C.In.size() > MaxRequestBytes) {
      C.Out += simpleResponse(431, "Request Header Fields Too Large",
                              "text/plain", "request too large\n");
      C.CloseAfterFlush = true;
      return true;
    }
  }
  if (C.Sse || C.CloseAfterFlush)
    return true;

  size_t HeadEnd = C.In.find("\r\n\r\n");
  if (HeadEnd == std::string::npos)
    return true; // head still incomplete

  std::string Method;
  std::string Path;
  {
    size_t LineEnd = C.In.find("\r\n");
    std::istringstream Line(C.In.substr(0, LineEnd));
    std::string Version;
    Line >> Method >> Path >> Version;
  }
  C.In.clear();
  size_t Query = Path.find('?');
  if (Query != std::string::npos)
    Path.resize(Query);

  RequestsServed.fetch_add(1, std::memory_order_relaxed);
  dispatchRequest(C, Method, Path);
  return true;
}

void StatusServer::dispatchRequest(Client &C, const std::string &Method,
                                   const std::string &Path) {
  if (Method != "GET") {
    C.Out += simpleResponse(405, "Method Not Allowed", "text/plain",
                            "read-only server: GET only\n");
    C.CloseAfterFlush = true;
    return;
  }

  if (Path == "/healthz") {
    C.Out += simpleResponse(200, "OK", "text/plain", "ok\n");
  } else if (Path == "/metrics") {
    C.Out += simpleResponse(200, "OK", "text/plain; version=0.0.4",
                            renderMetrics());
  } else if (Path == "/status") {
    CampaignStatus S;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      S = LastStatus;
    }
    C.Out += simpleResponse(200, "OK", "application/json", S.toJson() + "\n");
  } else if (Path == "/buildinfo") {
    C.Out += simpleResponse(200, "OK", "application/json",
                            renderBuildInfo() + "\n");
  } else if (Path == "/events") {
    C.Sse = true;
    C.Out += "HTTP/1.1 200 OK\r\n"
             "Content-Type: text/event-stream\r\n"
             "Cache-Control: no-cache\r\n"
             "Connection: keep-alive\r\n"
             "\r\n"
             "retry: 2000\n\n";
    // Seed the stream with the current snapshot so a late subscriber is
    // immediately oriented.
    CampaignStatus S;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      S = LastStatus;
    }
    C.Out += sseFrame("status", S.toJson());
    return; // keep-alive: no CloseAfterFlush
  } else {
    C.Out += simpleResponse(404, "Not Found", "text/plain",
                            "unknown path " + Path + "\n");
  }
  C.CloseAfterFlush = true;
}

bool StatusServer::flushClient(Client &C) {
  while (!C.Out.empty()) {
    ssize_t N = sendSome(C.Fd, C.Out.data(), C.Out.size());
    if (N < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return true;
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false;
    C.Out.erase(0, static_cast<size_t>(N));
  }
  return true;
}

std::string StatusServer::renderMetrics() {
  telemetry::MetricsSnapshot Merged;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Merged = PublishedMetrics;
  }
  Merged.merge(Opts.MetricsProvider());

  std::string Text = Merged.toPrometheus();
  // Synthesized info metric: constant 1, metadata in the labels — the
  // conventional Prometheus shape for build identity.
  Text += "# HELP dlf_build_info Build and tool identity.\n";
  Text += "# TYPE dlf_build_info gauge\n";
  Text += "dlf_build_info{tool=\"" + promEscapeLabelValue(Opts.Tool) + "\"";
  for (const auto &KV : Opts.BuildInfo)
    Text += "," + KV.first + "=\"" + promEscapeLabelValue(KV.second) + "\"";
  Text += "} 1\n";
  return Text;
}

std::string StatusServer::renderBuildInfo() {
  std::string Json = "{\"tool\":\"" + jsonEscape(Opts.Tool) + "\"";
  for (const auto &KV : Opts.BuildInfo)
    Json += ",\"" + jsonEscape(KV.first) + "\":\"" + jsonEscape(KV.second) +
            "\"";
  Json += "}";
  return Json;
}

std::string StatusServer::simpleResponse(int Code, const std::string &Reason,
                                         const std::string &ContentType,
                                         const std::string &Body) {
  std::string R = "HTTP/1.1 " + std::to_string(Code) + " " + Reason + "\r\n";
  R += "Content-Type: " + ContentType + "\r\n";
  R += "Content-Length: " + std::to_string(Body.size()) + "\r\n";
  if (Code == 405)
    R += "Allow: GET\r\n";
  R += "Connection: close\r\n\r\n";
  R += Body;
  return R;
}

} // namespace serve
} // namespace dlf
