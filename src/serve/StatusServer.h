//===- serve/StatusServer.h - Loopback HTTP observability plane --*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free HTTP/1.1 status server for long-running
/// analyses (DESIGN.md §15). One background thread runs a poll() loop over
/// the listen socket, a self-pipe wakeup, and every connected client; the
/// analysis thread never touches a socket. Publishing is a mutex-guarded
/// copy plus a one-byte pipe write, so the hot path cannot block on a slow
/// or stuck scraper — overflowing SSE clients are dropped, not waited on.
///
/// Endpoints (GET only, everything else is 405):
///   /metrics   Prometheus text v0.0.4: the publisher's frontier-merged
///              snapshot (campaign aggregate incl. child sidecars) merged
///              with a live pull from the process registry, plus a
///              dlf_build_info{...} 1 info metric.
///   /status    The last published CampaignStatus as JSON.
///   /events    Server-Sent Events stream of published events (journal
///              commits, quarantines, observer epochs).
///   /healthz   "ok" liveness probe.
///   /buildinfo Build metadata as JSON.
///
/// Security posture: the server refuses to bind anywhere but loopback and
/// serves only reads — it exposes no mutation surface, so no auth layer is
/// needed for its intended localhost-scrape use.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SERVE_STATUSSERVER_H
#define DLF_SERVE_STATUSSERVER_H

#include "serve/CampaignStatus.h"
#include "telemetry/Metrics.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dlf {
namespace serve {

/// Escapes a Prometheus label value (backslash, double quote, newline) per
/// the text exposition format. Exposed for tests.
std::string promEscapeLabelValue(const std::string &V);

struct ServerOptions {
  /// Listen address; loopback only. Accepted forms: "127.0.0.1:PORT",
  /// "localhost:PORT", ":PORT", "PORT". Port 0 binds an ephemeral port
  /// (read it back via port()). Anything non-loopback is refused.
  std::string Addr = "127.0.0.1:0";
  /// Producing tool name, exported in /buildinfo and dlf_build_info.
  std::string Tool = "dlf";
  /// Extra /buildinfo fields, also rendered as dlf_build_info labels.
  std::map<std::string, std::string> BuildInfo;
  /// Live metrics pull for /metrics; defaults to the global registry
  /// snapshot. Runs on the server thread, so it must be thread-safe
  /// (Registry::snapshot is).
  std::function<telemetry::MetricsSnapshot()> MetricsProvider;
  /// Connection cap; accepts past this are answered 503 and closed.
  size_t MaxClients = 32;
  /// Per-client outbox cap; an SSE client this far behind is dropped.
  size_t MaxClientBufferBytes = 1 << 20;
};

/// The server. Create with start(); destruction (or stop()) joins the
/// serving thread and closes every socket. Publish methods are safe from
/// any thread and never block on network I/O.
class StatusServer : public StatusSink {
public:
  /// Binds, listens, and spawns the serving thread. Returns null with a
  /// human-readable \p Err on refusal (non-loopback address, bad port,
  /// bind failure).
  static std::unique_ptr<StatusServer> start(ServerOptions Opts,
                                             std::string *Err);

  ~StatusServer() override;
  StatusServer(const StatusServer &) = delete;
  StatusServer &operator=(const StatusServer &) = delete;

  /// Idempotent shutdown: wakes the poll loop, joins the thread, closes
  /// all fds. SSE clients get a final "bye" event first.
  void stop();

  /// The bound port (resolved even when Addr asked for port 0).
  uint16_t port() const { return Port; }
  /// "127.0.0.1:<port>".
  std::string address() const;

  // -- StatusSink.
  void publishStatus(const CampaignStatus &S) override;
  void publishEvent(const std::string &Type, const std::string &Json) override;
  void publishMetrics(const telemetry::MetricsSnapshot &M) override;

  // -- Introspection (tests, final stderr summary).
  uint64_t requestsServed() const {
    return RequestsServed.load(std::memory_order_relaxed);
  }
  uint64_t sseClientsDropped() const {
    return SseDropped.load(std::memory_order_relaxed);
  }

private:
  StatusServer() = default;

  struct Client {
    int Fd = -1;
    std::string In;   ///< request bytes until the blank line
    std::string Out;  ///< pending response bytes
    bool Sse = false; ///< subscribed to /events
    bool CloseAfterFlush = false;
  };

  void threadMain();
  void acceptClients();
  bool handleReadable(Client &C);
  bool flushClient(Client &C);
  void dispatchRequest(Client &C, const std::string &Method,
                       const std::string &Path);
  std::string renderMetrics();
  std::string renderBuildInfo();
  static std::string simpleResponse(int Code, const std::string &Reason,
                                    const std::string &ContentType,
                                    const std::string &Body);

  ServerOptions Opts;
  uint16_t Port = 0;
  int ListenFd = -1;
  int WakeRead = -1;
  int WakeWrite = -1;
  std::thread Thread;
  std::atomic<bool> Stopping{false};

  /// Guards everything the publisher and the server thread share.
  mutable std::mutex Mu;
  CampaignStatus LastStatus;
  telemetry::MetricsSnapshot PublishedMetrics;
  /// Events published but not yet framed onto client outboxes.
  std::deque<std::string> PendingEvents;

  /// Owned solely by the server thread — no lock needed.
  std::vector<Client> Clients;

  std::atomic<uint64_t> RequestsServed{0};
  std::atomic<uint64_t> SseDropped{0};
};

} // namespace serve
} // namespace dlf

#endif // DLF_SERVE_STATUSSERVER_H
