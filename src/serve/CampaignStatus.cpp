//===- serve/CampaignStatus.cpp - Status snapshot JSON rendering ----------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/CampaignStatus.h"

#include "campaign/Json.h"

namespace dlf {
namespace serve {

std::string CampaignStatus::toJson() const {
  using campaign::JsonValue;

  JsonValue Doc = JsonValue::object();
  Doc.set("tool", Tool);
  Doc.set("benchmark", Benchmark);
  Doc.set("phase", Phase);
  Doc.set("jobs", Jobs);

  JsonValue Prog = JsonValue::object();
  Prog.set("cycles_found", CyclesFound);
  Prog.set("reps_total", RepsTotal);
  Prog.set("reps_committed", RepsCommitted);
  Prog.set("reps_executed", RepsExecuted);
  Prog.set("reps_replayed", RepsReplayed);
  Prog.set("quarantines", Quarantines);
  Prog.set("retries_spent", RetriesSpent);
  Prog.set("journal_records", JournalRecords);
  Doc.set("progress", std::move(Prog));

  JsonValue Cycles = JsonValue::array();
  for (const CycleStatus &C : PerCycle) {
    JsonValue CV = JsonValue::object();
    CV.set("cycle", C.Index);
    CV.set("reps_done", C.RepsDone);
    CV.set("reps_total", C.RepsTotal);
    CV.set("reps_remaining",
           C.RepsTotal > C.RepsDone ? C.RepsTotal - C.RepsDone : 0U);
    CV.set("reproduced", C.Reproduced);
    CV.set("other_deadlocks", C.OtherDeadlocks);
    CV.set("stalls", C.Stalls);
    CV.set("clean_runs", C.CleanRuns);
    CV.set("hung", C.Hung);
    CV.set("crashed", C.Crashed);
    CV.set("oom", C.Oom);
    CV.set("retries", C.Retries);
    CV.set("quarantined", C.Quarantined);
    CV.set("skipped", C.Skipped);
    if (!C.Classification.empty())
      CV.set("classification", C.Classification);
    if (!C.Prediction.empty())
      CV.set("prediction", C.Prediction);
    Cycles.push(std::move(CV));
  }
  Doc.set("cycles", std::move(Cycles));

  JsonValue Lanes = JsonValue::array();
  for (const WorkerStatus &W : Workers) {
    JsonValue WV = JsonValue::object();
    WV.set("lane", W.Lane);
    WV.set("busy", W.Busy);
    if (W.Busy) {
      WV.set("cycle", W.Cycle);
      WV.set("rep", W.Rep);
      WV.set("attempt", W.Attempt);
    }
    Lanes.push(std::move(WV));
  }
  Doc.set("workers", std::move(Lanes));

  JsonValue Obs = JsonValue::object();
  Obs.set("epoch", Epoch);
  Obs.set("events_seen", EventsSeen);
  Doc.set("observer", std::move(Obs));

  // Informational: describes this process, never the deterministic result.
  JsonValue Rate = JsonValue::object();
  Rate.set("wall_ms", WallMs);
  Rate.set("reps_per_second", RepsPerSecond);
  Rate.set("eta_seconds", EtaSeconds);
  Doc.set("throughput", std::move(Rate));

  Doc.set("complete", Complete);
  Doc.set("interrupted", Interrupted);
  return Doc.dump();
}

} // namespace serve
} // namespace dlf
