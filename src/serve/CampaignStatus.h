//===- serve/CampaignStatus.h - Live campaign status snapshot ----*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling-state seam between the analysis engines and the HTTP
/// observability plane. A CampaignStatus is a plain-data, point-in-time
/// snapshot of a long-running tool's progress: per-cycle repetition counts
/// as of the in-order commit frontier, worker occupancy, phase-1 verdicts,
/// throughput, and ETA. The producer (CampaignRunner per frontier commit,
/// dlf-observe per epoch) fills one and hands it to a StatusSink; the
/// consumer (serve::StatusServer today, dlf-serve tomorrow) keeps the last
/// copy under a mutex and serves it on demand.
///
/// Determinism contract: every *count* field is taken at the commit
/// frontier, so for a campaign it is byte-identical across --jobs values at
/// any given frontier position. Wall-clock, throughput, ETA, and worker
/// occupancy are informational — they describe this process, not the
/// deterministic result.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SERVE_CAMPAIGNSTATUS_H
#define DLF_SERVE_CAMPAIGNSTATUS_H

#include "telemetry/Metrics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dlf {
namespace serve {

/// One Phase II worker slot (a campaign pool lane).
struct WorkerStatus {
  uint32_t Lane = 0;
  bool Busy = false;
  /// Valid while Busy: what the lane's child is running.
  unsigned Cycle = 0;
  unsigned Rep = 0;
  unsigned Attempt = 0;
};

/// Per-cycle progress as of the commit frontier.
struct CycleStatus {
  unsigned Index = 0;
  /// Repetitions committed at the frontier / planned for this cycle.
  /// RepsTotal is 0 for a statically discharged (skipped) cycle.
  unsigned RepsDone = 0;
  unsigned RepsTotal = 0;
  unsigned Reproduced = 0;
  unsigned OtherDeadlocks = 0;
  unsigned Stalls = 0;
  unsigned CleanRuns = 0;
  unsigned Hung = 0;
  unsigned Crashed = 0;
  unsigned Oom = 0;
  unsigned Retries = 0;
  bool Quarantined = false;
  bool Skipped = false;
  /// Guard-lock pruner verdict ("schedulable", "guarded (guard lock: g)").
  std::string Classification;
  /// Sync-preserving prediction label (empty unless --phase1 predict/both).
  std::string Prediction;
};

/// A point-in-time snapshot of a running analysis, JSON-serializable for
/// GET /status. Counts are frontier-consistent; wall-clock fields are not.
struct CampaignStatus {
  /// Producing tool ("dlf-run", "dlf-observe", "dlf-analyze").
  std::string Tool;
  /// Workload / trace the tool is chewing on.
  std::string Benchmark;
  /// Coarse lifecycle: "phase1" | "phase2" | "observing" | "analyzing" |
  /// "done" | "interrupted".
  std::string Phase;
  unsigned Jobs = 0;

  // -- Campaign progress (dlf-run --campaign).
  unsigned CyclesFound = 0;
  unsigned RepsTotal = 0;     ///< planned repetitions (skipped cycles: 0)
  unsigned RepsCommitted = 0; ///< committed at the in-order frontier
  unsigned RepsExecuted = 0;  ///< fresh child runs this invocation
  unsigned RepsReplayed = 0;  ///< restored from the journal on resume
  unsigned Quarantines = 0;
  uint64_t RetriesSpent = 0;
  /// Journal records appended by this invocation (header + phase1 + reps).
  uint64_t JournalRecords = 0;
  std::vector<CycleStatus> PerCycle;
  std::vector<WorkerStatus> Workers;

  // -- Observer progress (dlf-observe).
  uint64_t Epoch = 0;
  uint64_t EventsSeen = 0;

  // -- Throughput (informational, never deterministic).
  double WallMs = 0.0;
  double RepsPerSecond = 0.0;
  /// Estimated seconds to finish the remaining repetitions at the current
  /// rate; negative when unknown (no throughput sample yet).
  double EtaSeconds = -1.0;

  bool Complete = false;
  bool Interrupted = false;

  /// Deterministic single-line JSON document (sorted keys via the campaign
  /// JsonValue; counts first-class, throughput clearly informational).
  std::string toJson() const;
};

/// Where a long-running tool publishes its live state. Implemented by
/// serve::StatusServer; a null sink (the default everywhere) costs the
/// producer one pointer test per publish site.
class StatusSink {
public:
  virtual ~StatusSink() = default;

  /// Replaces the last status snapshot (copied by the sink).
  virtual void publishStatus(const CampaignStatus &S) = 0;

  /// Emits one event on the GET /events SSE stream. \p Type becomes the
  /// SSE "event:" field; \p Json must be a single-line JSON document and
  /// becomes the "data:" field.
  virtual void publishEvent(const std::string &Type,
                            const std::string &Json) = 0;

  /// Replaces the sink's frontier-merged metrics snapshot (the campaign
  /// aggregate including child sidecars); served by GET /metrics on top of
  /// the live process registry.
  virtual void publishMetrics(const telemetry::MetricsSnapshot &M) = 0;
};

} // namespace serve
} // namespace dlf

#endif // DLF_SERVE_CAMPAIGNSTATUS_H
