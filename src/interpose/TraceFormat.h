//===- interpose/TraceFormat.h - Preload trace format ------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The text trace format shared between the LD_PRELOAD runtime
/// (libdlf_preload.so) and the offline analyzer (dlf-analyze). One event
/// per line:
///
///   # comment
///   T <tid> <abs>               thread created; abstraction = <site>#<n>
///   M <lid> <abs>               lock first observed; abstraction = <site>#<n>
///   A <tid> <lid> <acq-site>    exclusive acquire executed (mutex, or the
///                               write side of a rwlock; 0->1 only)
///   R <tid> <lid>               exclusive release (1->0 transitions only)
///   Q <tid> <lid> <acq-site>    shared acquire (rwlock read side)
///   U <tid> <lid>               shared release (rwlock read side)
///   P <tid> <lid> <site>        failed trylock probe: the thread asked and
///                               bailed out without blocking. No wait-for
///                               edge; recorded so traces show the attempt
///   N <tid> <cid>               cond signal/broadcast (wakeup-edge source)
///   V <tid> <cid>               cond waiter woke after a notify
///                               (wakeup-edge sink; the reacquire of the
///                               wait mutex is a separate A line)
///   F <parent-tid> <child-tid>  pthread_create edge (happens-before)
///   O <oid> <abs>               shared object first observed (opt-in)
///   L <tid> <oid> <site>        shared-memory read (opt-in)
///   S <tid> <oid> <site>        shared-memory write (opt-in)
///
/// Q/U widen the alphabet for pthread_rwlock_*: the analyzer rebuilds held
/// sets with per-lock modes so read-read overlap is not treated as
/// exclusion, while any pair involving the write side still conflicts.
/// N/V carry the condvar wakeup edges into happens-before: V joins the
/// waiter's clock with the clock of the last N on the same condvar.
/// Mutex-only programs emit none of these lines, so their traces — and the
/// analyzer's stdout over them — are byte-identical to the narrow format.
///
/// F edges are written whenever tracing is on; they carry the fork-order
/// part of happens-before that both the cycle pruner and the race detector
/// consume. O/L/S lines appear only when DLF_TRACE_ACCESSES is also set:
/// a preload library cannot see loads and stores, so the program under
/// test (or its test fixture) calls the exported dlf_trace_read /
/// dlf_trace_write hooks at the accesses it wants checked — the C analogue
/// of the Java implementation's field-access instrumentation.
///
/// Sites are "symbol+0xoffset" strings resolved via dladdr, which are
/// stable across executions of the same binary (unlike raw return
/// addresses under ASLR). Because a preload library cannot observe
/// allocations or calls/returns, object abstractions use the
/// *first-event site + per-site occurrence count* scheme: the n-th thread
/// created at call site S is S#n, and the n-th lock first acquired at site
/// S is S#n. This is the preload analogue of the paper's abstractions —
/// deterministic programs give stable values across runs — and the
/// substitution is recorded in DESIGN.md.
///
/// The Phase II cycle specification (DLF_PRELOAD_CYCLE) is a ';'-separated
/// list of components, each "threadAbs|lockAbs|ctxSite1,ctxSite2,...",
/// where the context sites are the acquire sites of the held locks plus
/// the pending acquire, outermost first — exactly the C_i of an iGoodlock
/// report.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_INTERPOSE_TRACEFORMAT_H
#define DLF_INTERPOSE_TRACEFORMAT_H

namespace dlf {
namespace interpose {

/// Environment variable: path of the Phase I trace to write.
inline constexpr const char *TraceEnvVar = "DLF_PRELOAD_TRACE";

/// Environment variable: Phase II cycle specification.
inline constexpr const char *CycleEnvVar = "DLF_PRELOAD_CYCLE";

/// Environment variable: total pause budget per matched acquire, in
/// milliseconds (default 200).
inline constexpr const char *PauseMsEnvVar = "DLF_PRELOAD_PAUSE_MS";

/// Environment variable: when set (any value) alongside the trace path,
/// the dlf_trace_read/dlf_trace_write hooks record O/L/S events for the
/// race detector (dlf-analyze --races). Opt-in: access recording grows
/// traces and is useless to the deadlock passes.
inline constexpr const char *AccessEnvVar = "DLF_TRACE_ACCESSES";

/// Exit code the preload runtime uses when it confirms a real deadlock
/// (chosen to be distinguishable from crashes and clean exits).
inline constexpr int DeadlockExitCode = 42;

} // namespace interpose
} // namespace dlf

#endif // DLF_INTERPOSE_TRACEFORMAT_H
