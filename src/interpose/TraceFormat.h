//===- interpose/TraceFormat.h - Preload trace format ------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The text trace format shared between the LD_PRELOAD runtime
/// (libdlf_preload.so) and the offline analyzer (dlf-analyze). One event
/// per line:
///
///   # comment
///   T <tid> <site> <n>          thread created; abstraction = <site>#<n>
///   M <lid> <site> <n>          lock first observed; abstraction = <site>#<n>
///   A <tid> <lid> <acq-site>    acquire executed (0->1 transitions only)
///   R <tid> <lid>               release (1->0 transitions only)
///
/// Sites are "symbol+0xoffset" strings resolved via dladdr, which are
/// stable across executions of the same binary (unlike raw return
/// addresses under ASLR). Because a preload library cannot observe
/// allocations or calls/returns, object abstractions use the
/// *first-event site + per-site occurrence count* scheme: the n-th thread
/// created at call site S is S#n, and the n-th lock first acquired at site
/// S is S#n. This is the preload analogue of the paper's abstractions —
/// deterministic programs give stable values across runs — and the
/// substitution is recorded in DESIGN.md.
///
/// The Phase II cycle specification (DLF_PRELOAD_CYCLE) is a ';'-separated
/// list of components, each "threadAbs|lockAbs|ctxSite1,ctxSite2,...",
/// where the context sites are the acquire sites of the held locks plus
/// the pending acquire, outermost first — exactly the C_i of an iGoodlock
/// report.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_INTERPOSE_TRACEFORMAT_H
#define DLF_INTERPOSE_TRACEFORMAT_H

namespace dlf {
namespace interpose {

/// Environment variable: path of the Phase I trace to write.
inline constexpr const char *TraceEnvVar = "DLF_PRELOAD_TRACE";

/// Environment variable: Phase II cycle specification.
inline constexpr const char *CycleEnvVar = "DLF_PRELOAD_CYCLE";

/// Environment variable: total pause budget per matched acquire, in
/// milliseconds (default 200).
inline constexpr const char *PauseMsEnvVar = "DLF_PRELOAD_PAUSE_MS";

/// Exit code the preload runtime uses when it confirms a real deadlock
/// (chosen to be distinguishable from crashes and clean exits).
inline constexpr int DeadlockExitCode = 42;

} // namespace interpose
} // namespace dlf

#endif // DLF_INTERPOSE_TRACEFORMAT_H
