//===- interpose/Analyze.cpp - Offline iGoodlock for preload traces ---------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// dlf-analyze: reads a trace written by libdlf_preload.so (Phase I of the
// LD_PRELOAD workflow), rebuilds the lock dependency relation, runs
// iGoodlock, and prints each potential deadlock cycle both human-readably
// and as a machine spec line
//
//   cycle-spec: <threadAbs>|<lockAbs>|<ctx,...>;<component>;...
//
// suitable for DLF_PRELOAD_CYCLE in Phase II.
//
// Usage: dlf-analyze <trace-file> [--max-cycle-length N]
//                    [--analysis-jobs N]
//
//===----------------------------------------------------------------------===//

#include "igoodlock/IGoodlock.h"
#include "runtime/Records.h"
#include "support/Env.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

using namespace dlf;

namespace {

struct TraceThread {
  ThreadRecord Record;
  std::vector<LockStackEntry> Stack;
};

/// Builds an Abstraction whose single element is the interned label of the
/// preload abstraction string ("site#n"): equality of strings is equality
/// of abstractions, which is all the closure needs.
AbstractionSet absFromString(const std::string &Text) {
  AbstractionSet Abs;
  uint32_t Raw = Label::intern(Text).raw();
  Abs.Index.Elements = {Raw, 1};
  Abs.KObject.Elements = {Raw};
  return Abs;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Usage = "usage: dlf-analyze <trace-file> "
                      "[--max-cycle-length N] [--analysis-jobs N]\n";
  if (Argc < 2) {
    std::cerr << Usage;
    return 1;
  }
  IGoodlockOptions Opts;
  for (int I = 2; I + 1 < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg != "--max-cycle-length" && Arg != "--analysis-jobs")
      continue;
    // atoi would turn garbage into 0 and silently disable cycle search;
    // malformed operands are a usage error instead.
    uint64_t N = 0;
    if (!parseUint64Strict(Argv[I + 1], N)) {
      std::cerr << "error: " << Arg
                << " expects a non-negative integer, got '" << Argv[I + 1]
                << "'\n"
                << Usage;
      return 1;
    }
    if (Arg == "--max-cycle-length")
      Opts.MaxCycleLength = static_cast<unsigned>(N);
    else
      Opts.AnalysisJobs = static_cast<unsigned>(N);
  }

  std::ifstream In(Argv[1]);
  if (!In) {
    std::cerr << "error: cannot open trace file " << Argv[1] << "\n";
    return 1;
  }

  LockDependencyLog Log;
  std::unordered_map<uint64_t, TraceThread> Threads;
  std::unordered_map<uint64_t, LockRecord> Locks;

  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream Fields(Line);
    char Kind = 0;
    Fields >> Kind;
    if (Kind == 'T') {
      uint64_t Tid;
      std::string Abs;
      Fields >> Tid >> Abs;
      TraceThread &T = Threads[Tid];
      T.Record.Id = ThreadId(Tid);
      T.Record.Name = Abs;
      T.Record.Abs = absFromString(Abs);
      Log.onThreadCreated(T.Record);
    } else if (Kind == 'M') {
      uint64_t Lid;
      std::string Abs;
      Fields >> Lid >> Abs;
      LockRecord &L = Locks[Lid];
      L.Id = LockId(Lid);
      L.Name = Abs;
      L.Abs = absFromString(Abs);
      Log.onLockCreated(L);
    } else if (Kind == 'A') {
      uint64_t Tid, Lid;
      std::string Site;
      Fields >> Tid >> Lid >> Site;
      auto ThreadIt = Threads.find(Tid);
      auto LockIt = Locks.find(Lid);
      if (ThreadIt == Threads.end() || LockIt == Locks.end()) {
        std::cerr << "warning: line " << LineNo
                  << ": acquire references unknown thread/lock\n";
        continue;
      }
      TraceThread &T = ThreadIt->second;
      Log.onAcquireExecuted(T.Record, LockIt->second, T.Stack,
                            Label::intern(Site));
      T.Stack.push_back({LockId(Lid), Label::intern(Site)});
    } else if (Kind == 'R') {
      uint64_t Tid, Lid;
      Fields >> Tid >> Lid;
      auto ThreadIt = Threads.find(Tid);
      if (ThreadIt == Threads.end())
        continue;
      auto &Stack = ThreadIt->second.Stack;
      for (size_t I = Stack.size(); I-- > 0;) {
        if (Stack[I].Lock == LockId(Lid)) {
          Stack.erase(Stack.begin() + static_cast<long>(I));
          break;
        }
      }
    } else {
      std::cerr << "warning: line " << LineNo << ": unknown event '" << Kind
                << "'\n";
    }
  }

  IGoodlockStats Stats;
  std::vector<AbstractCycle> Cycles = runIGoodlock(Log, Opts, &Stats);

  std::cout << "dlf-analyze: " << Log.entries().size()
            << " dependency entries, " << Log.acquireEvents()
            << " acquire events, " << Cycles.size()
            << " potential deadlock cycle(s)\n";
  std::cout << "closure: " << Stats.ChainsExplored << " chains, "
            << Stats.ElapsedMicros << " us, "
            << static_cast<uint64_t>(Stats.entriesPerSecond())
            << " entries/s, "
            << static_cast<uint64_t>(Stats.chainsPerSecond())
            << " chains/s, jobs " << Stats.JobsUsed << "\n\n";
  for (size_t I = 0; I != Cycles.size(); ++I) {
    const AbstractCycle &Cycle = Cycles[I];
    std::cout << "#" << I << " " << Cycle.toString();
    std::cout << "cycle-spec: ";
    for (size_t C = 0; C != Cycle.Components.size(); ++C) {
      const CycleComponent &Comp = Cycle.Components[C];
      if (C)
        std::cout << ';';
      std::cout << Comp.ThreadName << '|' << Comp.LockName << '|';
      for (size_t S = 0; S != Comp.Context.size(); ++S) {
        if (S)
          std::cout << ',';
        std::cout << Comp.Context[S].text();
      }
    }
    std::cout << "\n\n";
  }
  return 0;
}
