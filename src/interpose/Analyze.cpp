//===- interpose/Analyze.cpp - Offline analysis for preload traces ----------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// dlf-analyze: reads a trace written by libdlf_preload.so (Phase I of the
// LD_PRELOAD workflow) and runs the offline analysis passes over it.
//
// Default mode rebuilds the lock dependency relation, runs iGoodlock with
// guarded cycles kept, classifies every cycle through the guard-lock pruner
// (analysis/GuardPruner.h), and prints each potential deadlock cycle both
// human-readably and as a machine spec line
//
//   cycle-spec: <threadAbs>|<lockAbs>|<ctx,...>;<component>;...
//
// suitable for DLF_PRELOAD_CYCLE in Phase II.
//
// --races runs the lockset + vector-clock race detector instead
// (analysis/RaceDetector.h) over the opt-in O/L/S access events. Its stdout
// is byte-identical for every --analysis-jobs value; job/timing chatter
// goes to stderr.
//
// Usage: dlf-analyze <trace-file> [--max-cycle-length N]
//                    [--analysis-jobs N] [--races]
//
// Exit codes: 0 analysis ran; 1 usage error; 2 unreadable/corrupt trace;
// 3 trace carries no events (see analysis/Trace.h for the rationale).
//
//===----------------------------------------------------------------------===//

#include "analysis/GuardPruner.h"
#include "analysis/RaceDetector.h"
#include "analysis/Trace.h"
#include "igoodlock/IGoodlock.h"
#include "runtime/Records.h"
#include "support/Env.h"
#include "telemetry/Metrics.h"

#include <fstream>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

using namespace dlf;

namespace {

constexpr int ExitUsage = 1;
constexpr int ExitCorruptTrace = 2;
constexpr int ExitNoEvents = 3;

struct TraceThread {
  ThreadRecord Record;
  std::vector<LockStackEntry> Stack;
};

/// Builds an Abstraction whose single element is the interned label of the
/// preload abstraction string ("site#n"): equality of strings is equality
/// of abstractions, which is all the closure needs.
AbstractionSet absFromString(const std::string &Text) {
  AbstractionSet Abs;
  uint32_t Raw = Label::intern(Text).raw();
  Abs.Index.Elements = {Raw, 1};
  Abs.KObject.Elements = {Raw};
  return Abs;
}

/// Rebuilds the lock dependency relation from the parsed trace. Thread
/// clocks are fork-only (ticked at each F edge): a must-order relation, so
/// the pruner's HBOrdered verdict proves infeasibility instead of merely
/// "didn't overlap this run" — the distinction §1 of the paper draws.
void buildDependencyLog(const analysis::TraceFile &Trace,
                        LockDependencyLog &Log) {
  std::unordered_map<uint64_t, TraceThread> Threads;
  std::unordered_map<uint64_t, LockRecord> Locks;
  // Last notify clock per condvar id: a V event joins it into the waking
  // thread (the signal→wake happens-before edge of the widened alphabet).
  std::unordered_map<uint64_t, VectorClock> CondNotify;

  size_t EventNo = 0;
  for (const analysis::TraceEvent &E : Trace.Events) {
    ++EventNo;
    switch (E.K) {
    case analysis::TraceEvent::Kind::ThreadNew: {
      TraceThread &T = Threads[E.A];
      T.Record.Id = ThreadId(E.A);
      T.Record.Name = E.Text;
      T.Record.Abs = absFromString(E.Text);
      vcTick(T.Record.Clock, T.Record.Id);
      Log.onThreadCreated(T.Record);
      break;
    }
    case analysis::TraceEvent::Kind::LockNew: {
      LockRecord &L = Locks[E.A];
      L.Id = LockId(E.A);
      L.Name = E.Text;
      L.Abs = absFromString(E.Text);
      Log.onLockCreated(L);
      break;
    }
    case analysis::TraceEvent::Kind::Fork: {
      auto Parent = Threads.find(E.A);
      auto Child = Threads.find(E.B);
      if (Parent == Threads.end() || Child == Threads.end()) {
        std::cerr << "warning: event " << EventNo
                  << ": fork references unknown thread\n";
        break;
      }
      vcJoin(Child->second.Record.Clock, Parent->second.Record.Clock);
      vcTick(Child->second.Record.Clock, Child->second.Record.Id);
      vcTick(Parent->second.Record.Clock, Parent->second.Record.Id);
      break;
    }
    case analysis::TraceEvent::Kind::Acquire:
    case analysis::TraceEvent::Kind::SharedAcquire: {
      auto ThreadIt = Threads.find(E.A);
      auto LockIt = Locks.find(E.B);
      if (ThreadIt == Threads.end() || LockIt == Locks.end()) {
        std::cerr << "warning: event " << EventNo
                  << ": acquire references unknown thread/lock\n";
        break;
      }
      LockMode Mode = E.K == analysis::TraceEvent::Kind::SharedAcquire
                          ? LockMode::Shared
                          : LockMode::Exclusive;
      TraceThread &T = ThreadIt->second;
      Log.onAcquireExecuted(T.Record, LockIt->second, T.Stack,
                            Label::intern(E.Text), Mode);
      T.Stack.push_back({LockId(E.B), Label::intern(E.Text), Mode});
      break;
    }
    case analysis::TraceEvent::Kind::Release:
    case analysis::TraceEvent::Kind::SharedRelease: {
      auto ThreadIt = Threads.find(E.A);
      if (ThreadIt == Threads.end())
        break;
      auto &Stack = ThreadIt->second.Stack;
      for (size_t I = Stack.size(); I-- > 0;) {
        if (Stack[I].Lock == LockId(E.B)) {
          Stack.erase(Stack.begin() + static_cast<long>(I));
          break;
        }
      }
      break;
    }
    case analysis::TraceEvent::Kind::CondNotify: {
      auto ThreadIt = Threads.find(E.A);
      if (ThreadIt == Threads.end()) {
        std::cerr << "warning: event " << EventNo
                  << ": cond-notify references unknown thread\n";
        break;
      }
      TraceThread &T = ThreadIt->second;
      vcTick(T.Record.Clock, T.Record.Id);
      CondNotify[E.B] = T.Record.Clock;
      break;
    }
    case analysis::TraceEvent::Kind::CondWake: {
      auto ThreadIt = Threads.find(E.A);
      if (ThreadIt == Threads.end()) {
        std::cerr << "warning: event " << EventNo
                  << ": cond-wake references unknown thread\n";
        break;
      }
      auto NotifyIt = CondNotify.find(E.B);
      if (NotifyIt != CondNotify.end())
        vcJoin(ThreadIt->second.Record.Clock, NotifyIt->second);
      break;
    }
    case analysis::TraceEvent::Kind::TryProbe:
      // A failed probe never blocks, so it contributes no wait-for edge;
      // the preload records it for visibility only.
      break;
    case analysis::TraceEvent::Kind::ObjectNew:
    case analysis::TraceEvent::Kind::Read:
    case analysis::TraceEvent::Kind::Write:
      break; // race-detector events; inert for the deadlock passes
    }
  }
}

int runDeadlockAnalysis(const analysis::TraceFile &Trace,
                        IGoodlockOptions Opts) {
  LockDependencyLog Log;
  buildDependencyLog(Trace, Log);

  // Keep guarded cycles in the closure so the pruner can classify and name
  // them; dlf-analyze is a reporting tool, Phase II budget is not at stake.
  Opts.KeepGuardedCycles = true;

  IGoodlockStats Stats;
  std::vector<AbstractCycle> Cycles = runIGoodlock(Log, Opts, &Stats);
  std::vector<analysis::CycleClassification> Classes =
      analysis::classifyCycles(Log, Cycles);

  size_t Schedulable = 0;
  for (const analysis::CycleClassification &C : Classes)
    Schedulable += C.schedulable();

  std::cout << "dlf-analyze: " << Log.entries().size()
            << " dependency entries, " << Log.acquireEvents()
            << " acquire events, " << Cycles.size()
            << " potential deadlock cycle(s)\n";
  std::cout << "pruner: " << Schedulable << " schedulable, "
            << (Cycles.size() - Schedulable) << " statically discharged\n";
  std::cout << "closure: " << Stats.ChainsExplored << " chains, "
            << Stats.ElapsedMicros << " us, "
            << static_cast<uint64_t>(Stats.entriesPerSecond())
            << " entries/s, "
            << static_cast<uint64_t>(Stats.chainsPerSecond())
            << " chains/s, jobs " << Stats.JobsUsed << "\n\n";
  for (size_t I = 0; I != Cycles.size(); ++I) {
    const AbstractCycle &Cycle = Cycles[I];
    std::cout << "#" << I << " " << Cycle.toString();
    std::cout << "classification: " << Classes[I].label() << "\n";
    std::cout << "cycle-spec: ";
    for (size_t C = 0; C != Cycle.Components.size(); ++C) {
      const CycleComponent &Comp = Cycle.Components[C];
      if (C)
        std::cout << ';';
      std::cout << Comp.ThreadName << '|' << Comp.LockName << '|';
      for (size_t S = 0; S != Comp.Context.size(); ++S) {
        if (S)
          std::cout << ',';
        std::cout << Comp.Context[S].text();
      }
    }
    std::cout << "\n\n";
  }
  return 0;
}

int runRaceAnalysis(const analysis::TraceFile &Trace, unsigned Jobs) {
  analysis::RaceDetectorOptions Opts;
  Opts.Jobs = Jobs;
  analysis::RaceAnalysis Result = analysis::detectRaces(Trace, Opts);

  // Job count and any other run-dependent chatter stay on stderr: stdout is
  // byte-identical for every --analysis-jobs value (the PR 3 determinism
  // contract, extended to this pass).
  std::cerr << "dlf-analyze: race pass over " << Trace.Events.size()
            << " events, jobs " << Jobs << "\n";
  for (const std::string &W : Result.Warnings)
    std::cerr << "warning: " << W << "\n";

  std::cout << "dlf-analyze: " << Result.ObjectsSeen << " shared object(s), "
            << Result.AccessesSeen << " access event(s), " << Result.RacyPairs
            << " racy pair(s)\n";
  if (Result.RacyPairs == 0 && Result.AccessesSeen == 0)
    std::cout << "note: trace has no access events; record them with "
                 "DLF_TRACE_ACCESSES=1 and dlf_trace_read/dlf_trace_write\n";
  if (Result.RacyPairs > Result.Races.size())
    std::cout << "note: showing first " << Result.Races.size() << " of "
              << Result.RacyPairs << " racy pairs\n";
  std::cout << "\n";
  for (size_t I = 0; I != Result.Races.size(); ++I)
    std::cout << "#" << I << " " << Result.Races[I].toString() << "\n";
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Usage = "usage: dlf-analyze <trace-file> "
                      "[--max-cycle-length N] [--analysis-jobs N] [--races]\n"
                      "                   [--metrics-out FILE] "
                      "[--metrics-format json|prom]\n";
  if (Argc < 2) {
    std::cerr << Usage;
    return ExitUsage;
  }
  IGoodlockOptions Opts;
  bool Races = false;
  std::string MetricsOut;
  bool MetricsProm = false;
  bool MetricsFormatGiven = false;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--races") {
      Races = true;
      continue;
    }
    if (Arg == "--metrics-out") {
      if (I + 1 >= Argc) {
        std::cerr << "error: --metrics-out expects a value\n" << Usage;
        return ExitUsage;
      }
      MetricsOut = Argv[++I];
      continue;
    }
    if (Arg == "--metrics-format") {
      if (I + 1 >= Argc) {
        std::cerr << "error: --metrics-format expects a value\n" << Usage;
        return ExitUsage;
      }
      MetricsFormatGiven = true;
      std::string Fmt = Argv[++I];
      if (Fmt == "json") {
        MetricsProm = false;
      } else if (Fmt == "prom") {
        MetricsProm = true;
      } else {
        std::cerr << "error: --metrics-format must be json|prom\n" << Usage;
        return ExitUsage;
      }
      continue;
    }
    if (Arg != "--max-cycle-length" && Arg != "--analysis-jobs") {
      std::cerr << "error: unknown option '" << Arg << "'\n" << Usage;
      return ExitUsage;
    }
    if (I + 1 >= Argc) {
      std::cerr << "error: " << Arg << " expects a value\n" << Usage;
      return ExitUsage;
    }
    // atoi would turn garbage into 0 and silently disable cycle search;
    // malformed operands are a usage error instead.
    uint64_t N = 0;
    if (!parseUint64Strict(Argv[I + 1], N)) {
      std::cerr << "error: " << Arg << " expects a non-negative integer, got '"
                << Argv[I + 1] << "'\n"
                << Usage;
      return ExitUsage;
    }
    if (Arg == "--max-cycle-length")
      Opts.MaxCycleLength = static_cast<unsigned>(N);
    else
      Opts.AnalysisJobs = static_cast<unsigned>(N);
    ++I;
  }
  if (MetricsFormatGiven && MetricsOut.empty()) {
    std::cerr << "error: --metrics-format only applies to --metrics-out\n"
              << Usage;
    return ExitUsage;
  }
  // Enable before the passes run so the closure/pruner/race counters
  // (dlf_igoodlock_*, dlf_analysis_*) are recorded.
  if (!MetricsOut.empty())
    telemetry::setEnabled(true);

  analysis::TraceFile Trace;
  std::string Error;
  switch (analysis::readTrace(Argv[1], Trace, &Error)) {
  case analysis::TraceReadStatus::Ok:
    break;
  case analysis::TraceReadStatus::Unreadable:
    std::cerr << "error: " << Error << "\n";
    return ExitCorruptTrace;
  case analysis::TraceReadStatus::NoEvents:
    std::cerr << "error: " << Error << "\n";
    return ExitNoEvents;
  }
  for (const std::string &W : Trace.Warnings)
    std::cerr << "warning: " << W << "\n";

  int Rc = Races ? runRaceAnalysis(Trace, Opts.AnalysisJobs)
                 : runDeadlockAnalysis(Trace, Opts);
  if (Rc == 0 && !MetricsOut.empty()) {
    telemetry::MetricsSnapshot Snap =
        telemetry::Registry::global().snapshot();
    std::ofstream OS(MetricsOut, std::ios::binary | std::ios::trunc);
    OS << (MetricsProm ? Snap.toPrometheus() : Snap.toJson());
    OS.flush();
    if (!OS) {
      std::cerr << "error: cannot write " << MetricsOut << "\n";
      return ExitUsage;
    }
    std::cerr << "metrics written to " << MetricsOut << "\n";
  }
  return Rc;
}
