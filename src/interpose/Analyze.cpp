//===- interpose/Analyze.cpp - Offline analysis for preload traces ----------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// dlf-analyze: reads a trace written by libdlf_preload.so (Phase I of the
// LD_PRELOAD workflow) and runs the offline analysis passes over it.
//
// Default mode rebuilds the lock dependency relation, runs iGoodlock with
// guarded cycles kept, classifies every cycle through the guard-lock pruner
// (analysis/GuardPruner.h), and prints each potential deadlock cycle both
// human-readably and as a machine spec line
//
//   cycle-spec: <threadAbs>|<lockAbs>|<ctx,...>;<component>;...
//
// suitable for DLF_PRELOAD_CYCLE in Phase II.
//
// --races runs the lockset + vector-clock race detector instead
// (analysis/RaceDetector.h) over the opt-in O/L/S access events. Its stdout
// is byte-identical for every --analysis-jobs value; job/timing chatter
// goes to stderr.
//
// --predict runs the sound sync-preserving deadlock predictor instead
// (analysis/Predict.h): the same iGoodlock enumeration, but every cycle
// gets a PREDICTED-SOUND / UNCONFIRMED verdict backed by a witness search
// over the trace. Same determinism contract: stdout is byte-identical for
// every --analysis-jobs value.
//
// Mode flags are mutually exclusive: --predict --races has no defined merge
// semantics and is a usage error (exit 1).
//
// Usage: dlf-analyze <trace-file> [--max-cycle-length N]
//                    [--analysis-jobs N] [--races | --predict]
//
// Exit codes (all modes, --predict included): 0 analysis ran; 1 usage
// error; 2 unreadable/corrupt trace; 3 trace carries no events (see
// analysis/Trace.h for the rationale). A PREDICTED-SOUND cycle does not
// change the exit code — verdicts are report content, not process status.
//
//===----------------------------------------------------------------------===//

#include "analysis/GuardPruner.h"
#include "analysis/LogBuilder.h"
#include "analysis/Predict.h"
#include "analysis/RaceDetector.h"
#include "analysis/Trace.h"
#include "igoodlock/IGoodlock.h"
#include "runtime/Records.h"
#include "serve/StatusServer.h"
#include "support/Env.h"
#include "telemetry/Metrics.h"

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

using namespace dlf;

namespace {

constexpr int ExitUsage = 1;
constexpr int ExitCorruptTrace = 2;
constexpr int ExitNoEvents = 3;

int runDeadlockAnalysis(const analysis::TraceFile &Trace,
                        IGoodlockOptions Opts) {
  // The dependency-log construction and the report format live in
  // analysis/LogBuilder.{h,cpp}, shared with dlf-observe; a one-shot feed
  // of the whole trace is the batch case of the incremental builder.
  analysis::IncrementalLogBuilder Builder(&std::cerr);
  Builder.feed(Trace.Events);

  // Keep guarded cycles in the closure so the pruner can classify and name
  // them; dlf-analyze is a reporting tool, Phase II budget is not at stake.
  Opts.KeepGuardedCycles = true;

  IGoodlockStats Stats;
  std::vector<AbstractCycle> Cycles = runIGoodlock(Builder.log(), Opts,
                                                   &Stats);
  std::vector<analysis::CycleClassification> Classes =
      analysis::classifyCycles(Builder.log(), Cycles);
  analysis::printCycleReport(std::cout, "dlf-analyze", Builder.log(), Cycles,
                             Classes, Stats);
  return 0;
}

int runPredictAnalysis(const analysis::TraceFile &Trace,
                       const IGoodlockOptions &Opts) {
  analysis::PredictAnalysis R = analysis::predictDeadlocks(Trace, Opts);

  // Run-dependent chatter (jobs, timing, assignment counts) stays on
  // stderr: stdout is byte-identical for every --analysis-jobs value.
  std::cerr << "dlf-analyze: predict pass over " << R.Stats.EventsSeen
            << " events, " << R.Stats.AcquiresIndexed << " acquires, "
            << R.Stats.AssignmentsTried << " assignments, "
            << R.Stats.ElapsedMicros << " us, jobs " << R.Stats.JobsUsed
            << "\n";

  analysis::printPredictReport(std::cout, "dlf-analyze", R);
  return 0;
}

int runRaceAnalysis(const analysis::TraceFile &Trace, unsigned Jobs) {
  analysis::RaceDetectorOptions Opts;
  Opts.Jobs = Jobs;
  analysis::RaceAnalysis Result = analysis::detectRaces(Trace, Opts);

  // Job count and any other run-dependent chatter stay on stderr: stdout is
  // byte-identical for every --analysis-jobs value (the PR 3 determinism
  // contract, extended to this pass).
  std::cerr << "dlf-analyze: race pass over " << Trace.Events.size()
            << " events, jobs " << Jobs << "\n";
  for (const std::string &W : Result.Warnings)
    std::cerr << "warning: " << W << "\n";

  analysis::printRaceReport(std::cout, "dlf-analyze", Result);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Usage = "usage: dlf-analyze <trace-file> "
                      "[--max-cycle-length N] [--analysis-jobs N]\n"
                      "                   [--races | --predict] "
                      "[--metrics-out FILE]\n"
                      "                   [--metrics-format json|prom] "
                      "[--status-addr ADDR]\n";
  if (Argc < 2) {
    std::cerr << Usage;
    return ExitUsage;
  }
  IGoodlockOptions Opts;
  bool Races = false;
  bool Predict = false;
  std::string MetricsOut;
  bool MetricsProm = false;
  bool MetricsFormatGiven = false;
  std::string StatusAddr;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--races") {
      Races = true;
      continue;
    }
    if (Arg == "--predict") {
      Predict = true;
      continue;
    }
    if (Arg == "--metrics-out") {
      if (I + 1 >= Argc) {
        std::cerr << "error: --metrics-out expects a value\n" << Usage;
        return ExitUsage;
      }
      MetricsOut = Argv[++I];
      continue;
    }
    if (Arg == "--status-addr") {
      if (I + 1 >= Argc) {
        std::cerr << "error: --status-addr expects a value\n" << Usage;
        return ExitUsage;
      }
      StatusAddr = Argv[++I];
      continue;
    }
    if (Arg == "--metrics-format") {
      if (I + 1 >= Argc) {
        std::cerr << "error: --metrics-format expects a value\n" << Usage;
        return ExitUsage;
      }
      MetricsFormatGiven = true;
      std::string Fmt = Argv[++I];
      if (Fmt == "json") {
        MetricsProm = false;
      } else if (Fmt == "prom") {
        MetricsProm = true;
      } else {
        std::cerr << "error: --metrics-format must be json|prom\n" << Usage;
        return ExitUsage;
      }
      continue;
    }
    if (Arg != "--max-cycle-length" && Arg != "--analysis-jobs") {
      std::cerr << "error: unknown option '" << Arg << "'\n" << Usage;
      return ExitUsage;
    }
    if (I + 1 >= Argc) {
      std::cerr << "error: " << Arg << " expects a value\n" << Usage;
      return ExitUsage;
    }
    // atoi would turn garbage into 0 and silently disable cycle search;
    // malformed operands are a usage error instead.
    uint64_t N = 0;
    if (!parseUint64Strict(Argv[I + 1], N)) {
      std::cerr << "error: " << Arg << " expects a non-negative integer, got '"
                << Argv[I + 1] << "'\n"
                << Usage;
      return ExitUsage;
    }
    if (Arg == "--max-cycle-length")
      Opts.MaxCycleLength = static_cast<unsigned>(N);
    else
      Opts.AnalysisJobs = static_cast<unsigned>(N);
    ++I;
  }
  if (Races && Predict) {
    // Contradictory mode flags: the passes print different report formats
    // and there is no defined merge; refuse rather than silently pick one.
    std::cerr << "error: --predict and --races are mutually exclusive\n"
              << Usage;
    return ExitUsage;
  }
  if (MetricsFormatGiven && MetricsOut.empty()) {
    std::cerr << "error: --metrics-format only applies to --metrics-out\n"
              << Usage;
    return ExitUsage;
  }
  // Enable before the passes run so the closure/pruner/race counters
  // (dlf_igoodlock_*, dlf_analysis_*) are recorded.
  if (!MetricsOut.empty() || !StatusAddr.empty())
    telemetry::setEnabled(true);

  std::unique_ptr<serve::StatusServer> Server;
  if (!StatusAddr.empty()) {
    serve::ServerOptions SO;
    SO.Addr = StatusAddr;
    SO.Tool = "dlf-analyze";
    SO.BuildInfo["trace"] = Argv[1];
    std::string SErr;
    Server = serve::StatusServer::start(std::move(SO), &SErr);
    if (!Server) {
      std::cerr << "error: " << SErr << "\n";
      return ExitUsage;
    }
    // The port echo is the contract for --status-addr 127.0.0.1:0:
    // scripts parse this stderr line to find the ephemeral port.
    std::cerr << "status server listening on http://" << Server->address()
              << " (/metrics /status /events /healthz /buildinfo)\n";
  }
  auto PublishPhase = [&](const char *Phase, bool Complete) {
    if (!Server)
      return;
    serve::CampaignStatus St;
    St.Tool = "dlf-analyze";
    St.Benchmark = Argv[1];
    St.Phase = Phase;
    St.Complete = Complete;
    Server->publishStatus(St);
    Server->publishMetrics(telemetry::Registry::global().snapshot());
  };
  PublishPhase("analyzing", false);

  analysis::TraceFile Trace;
  std::string Error;
  switch (analysis::readTrace(Argv[1], Trace, &Error)) {
  case analysis::TraceReadStatus::Ok:
    break;
  case analysis::TraceReadStatus::Unreadable:
    std::cerr << "error: " << Error << "\n";
    return ExitCorruptTrace;
  case analysis::TraceReadStatus::NoEvents:
    std::cerr << "error: " << Error << "\n";
    return ExitNoEvents;
  }
  for (const std::string &W : Trace.Warnings)
    std::cerr << "warning: " << W << "\n";

  int Rc = Races     ? runRaceAnalysis(Trace, Opts.AnalysisJobs)
           : Predict ? runPredictAnalysis(Trace, Opts)
                     : runDeadlockAnalysis(Trace, Opts);
  PublishPhase("done", Rc == 0);
  if (Rc == 0 && !MetricsOut.empty()) {
    telemetry::MetricsSnapshot Snap =
        telemetry::Registry::global().snapshot();
    std::ofstream OS(MetricsOut, std::ios::binary | std::ios::trunc);
    OS << (MetricsProm ? Snap.toPrometheus() : Snap.toJson());
    OS.flush();
    if (!OS) {
      std::cerr << "error: cannot write " << MetricsOut << "\n";
      return ExitUsage;
    }
    std::cerr << "metrics written to " << MetricsOut << "\n";
  }
  return Rc;
}
