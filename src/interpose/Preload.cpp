//===- interpose/Preload.cpp - LD_PRELOAD pthread front end -----------------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The pthread interposition front end: run *unmodified* pthreads programs
// under the DeadlockFuzzer workflow.
//
//   Phase I:  LD_PRELOAD=libdlf_preload.so DLF_PRELOAD_TRACE=/tmp/t ./app
//             -> writes an event trace; analyze with `dlf-analyze /tmp/t`.
//   Phase II: LD_PRELOAD=libdlf_preload.so DLF_PRELOAD_CYCLE='<spec>' ./app
//             -> pauses threads before cycle-component acquires; when the
//             wait-for graph closes a cycle, prints the witness and exits
//             with code 42 *before* physically wedging the process.
//
// Unlike the managed runtime (src/runtime), this front end cannot serialize
// the schedule; it biases a real concurrent execution by sleeping matched
// threads, the closest LD_PRELOAD analogue of Algorithm 3's Paused set
// (pauses expire after DLF_PRELOAD_PAUSE_MS, playing the role of the
// thrash handler / livelock monitor). Interposed: pthread_mutex_lock /
// trylock / unlock / destroy, pthread_rwlock_rdlock / wrlock / tryrdlock /
// trywrlock / unlock / destroy, pthread_cond_wait / timedwait / signal /
// broadcast, and pthread_create.
//
// The synchronization alphabet is wider than mutexes: rwlock read-side
// holds carry a shared flag (read-read overlap is not a wait-for edge),
// condvar signal/broadcast and post-wait wakeups are recorded as N/V
// happens-before edges, and a failed trylock is a P probe line — the
// thread asked and bailed out, so it is never treated as blocked.
//
// This file is deliberately self-contained (no dependency on libdlf): a
// preload library must not drag in anything that might initialize before
// the dynamic linker is ready.
//
//===----------------------------------------------------------------------===//

#include "interpose/TraceFormat.h"
// The ring transport is standard-library + POSIX only; Ring.cpp is compiled
// directly into libdlf_preload.so (see src/CMakeLists.txt), so the
// no-libdlf constraint holds.
#include "ring/Ring.h"
#include "support/Env.h" // header-only; keeps the no-libdlf constraint
// Telemetry depends only on the standard library; its .cpp files are
// compiled directly into libdlf_preload.so (see src/CMakeLists.txt), so
// the no-libdlf constraint holds.
#include "telemetry/Metrics.h"
#include "telemetry/Sidecar.h"

#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include <dlfcn.h>
#include <pthread.h>
#include <time.h>
#include <unistd.h>

namespace {

// -- Real function pointers ----------------------------------------------------

using MutexLockFn = int (*)(pthread_mutex_t *);
using MutexUnlockFn = int (*)(pthread_mutex_t *);
using MutexTrylockFn = int (*)(pthread_mutex_t *);
using MutexDestroyFn = int (*)(pthread_mutex_t *);
using CondWaitFn = int (*)(pthread_cond_t *, pthread_mutex_t *);
using CondTimedwaitFn = int (*)(pthread_cond_t *, pthread_mutex_t *,
                                const struct timespec *);
using CondNotifyFn = int (*)(pthread_cond_t *);
using RwlockOpFn = int (*)(pthread_rwlock_t *);
using CreateFn = int (*)(pthread_t *, const pthread_attr_t *,
                         void *(*)(void *), void *);
using JoinFn = int (*)(pthread_t, void **);

MutexLockFn RealLock;
MutexUnlockFn RealUnlock;
MutexTrylockFn RealTrylock;
MutexDestroyFn RealDestroy;
CondWaitFn RealCondWait;
CondTimedwaitFn RealCondTimedwait;
CondNotifyFn RealCondSignal;
CondNotifyFn RealCondBroadcast;
RwlockOpFn RealRdlock;
RwlockOpFn RealWrlock;
RwlockOpFn RealTryRdlock;
RwlockOpFn RealTryWrlock;
RwlockOpFn RealRwUnlock;
RwlockOpFn RealRwDestroy;
CreateFn RealCreate;
JoinFn RealJoin;

void resolveReals() {
  // Called from the library constructor; dlsym(RTLD_NEXT) is safe by then.
  RealLock = reinterpret_cast<MutexLockFn>(dlsym(RTLD_NEXT,
                                                 "pthread_mutex_lock"));
  RealUnlock = reinterpret_cast<MutexUnlockFn>(dlsym(RTLD_NEXT,
                                                     "pthread_mutex_unlock"));
  RealTrylock = reinterpret_cast<MutexTrylockFn>(
      dlsym(RTLD_NEXT, "pthread_mutex_trylock"));
  RealDestroy = reinterpret_cast<MutexDestroyFn>(
      dlsym(RTLD_NEXT, "pthread_mutex_destroy"));
  RealCondWait = reinterpret_cast<CondWaitFn>(dlsym(RTLD_NEXT,
                                                    "pthread_cond_wait"));
  RealCondTimedwait = reinterpret_cast<CondTimedwaitFn>(
      dlsym(RTLD_NEXT, "pthread_cond_timedwait"));
  RealCondSignal = reinterpret_cast<CondNotifyFn>(
      dlsym(RTLD_NEXT, "pthread_cond_signal"));
  RealCondBroadcast = reinterpret_cast<CondNotifyFn>(
      dlsym(RTLD_NEXT, "pthread_cond_broadcast"));
  RealRdlock = reinterpret_cast<RwlockOpFn>(
      dlsym(RTLD_NEXT, "pthread_rwlock_rdlock"));
  RealWrlock = reinterpret_cast<RwlockOpFn>(
      dlsym(RTLD_NEXT, "pthread_rwlock_wrlock"));
  RealTryRdlock = reinterpret_cast<RwlockOpFn>(
      dlsym(RTLD_NEXT, "pthread_rwlock_tryrdlock"));
  RealTryWrlock = reinterpret_cast<RwlockOpFn>(
      dlsym(RTLD_NEXT, "pthread_rwlock_trywrlock"));
  RealRwUnlock = reinterpret_cast<RwlockOpFn>(
      dlsym(RTLD_NEXT, "pthread_rwlock_unlock"));
  RealRwDestroy = reinterpret_cast<RwlockOpFn>(
      dlsym(RTLD_NEXT, "pthread_rwlock_destroy"));
  RealCreate = reinterpret_cast<CreateFn>(dlsym(RTLD_NEXT, "pthread_create"));
  RealJoin = reinterpret_cast<JoinFn>(dlsym(RTLD_NEXT, "pthread_join"));
}

// -- Site resolution -------------------------------------------------------------

/// Resolves a return address to a stable "symbol+0xoff" site string.
std::string resolveSite(void *Address) {
  Dl_info Info;
  if (dladdr(Address, &Info) && Info.dli_sname) {
    char Buffer[256];
    snprintf(Buffer, sizeof(Buffer), "%s+0x%" PRIxPTR, Info.dli_sname,
             reinterpret_cast<uintptr_t>(Address) -
                 reinterpret_cast<uintptr_t>(Info.dli_saddr));
    return Buffer;
  }
  if (dladdr(Address, &Info) && Info.dli_fname) {
    char Buffer[512];
    snprintf(Buffer, sizeof(Buffer), "%s+0x%" PRIxPTR,
             strrchr(Info.dli_fname, '/') ? strrchr(Info.dli_fname, '/') + 1
                                          : Info.dli_fname,
             reinterpret_cast<uintptr_t>(Address) -
                 reinterpret_cast<uintptr_t>(Info.dli_fbase));
    return Buffer;
  }
  char Buffer[32];
  snprintf(Buffer, sizeof(Buffer), "addr:%p", Address);
  return Buffer;
}

// -- Shared state ------------------------------------------------------------------

constexpr unsigned MaxStackDepth = 64;

struct HeldEntry {
  uint64_t LockId;
  std::string AcqSite;
  /// True for the read side of a rwlock: a shared hold only conflicts
  /// with exclusive waiters.
  bool Shared = false;
};

struct ThreadSlot {
  uint64_t Tid = 0;
  std::string Abs; ///< "<site>#<n>"
  bool Live = false;
  std::vector<HeldEntry> Stack;
  /// Lock this thread is blocked on / paused before; 0 when none.
  uint64_t PendingLock = 0;
  std::string PendingSite;
  /// True when the pending acquire is a rwlock read-side one.
  bool PendingShared = false;
};

struct LockInfo {
  uint64_t Id = 0;
  std::string Abs; ///< "<site>#<n>"
  uint64_t OwnerTid = 0;
  unsigned Recursion = 0;
  /// Read-side holders (rwlocks only; empty for mutexes).
  std::vector<uint64_t> ReaderTids;
};

struct CycleComponentSpec {
  std::string ThreadAbs;
  std::string LockAbs;
  std::vector<std::string> Context;
};

struct ObjectInfo {
  uint64_t Id = 0;
  std::string Abs; ///< "<first-access-site>#<n>"
};

/// All global state; created by the library constructor. Internal locking
/// uses RealLock directly, so the interposition never recurses.
struct GlobalState {
  pthread_mutex_t Mu = PTHREAD_MUTEX_INITIALIZER;
  FILE *Trace = nullptr;
  bool TraceAccesses = false;
  /// Shared-memory event transport (DLF_RING); null when not requested.
  dlf::ring::RingWriter *Ring = nullptr;
  /// Ring with neither text trace nor Phase II cycle: the hot path takes
  /// no lock and resolves no site — one ring write per event.
  bool RingOnly = false;
  std::vector<CycleComponentSpec> Cycle;
  unsigned PauseMs = 200;

  uint64_t NextTid = 1;
  uint64_t NextLockId = 1;
  uint64_t NextObjectId = 1;
  uint64_t NextCondId = 1;
  std::unordered_map<pthread_mutex_t *, LockInfo> Locks;
  /// Rwlocks share the id space (NextLockId) and LockInfo shape with
  /// mutexes; only the keying pointer type differs.
  std::unordered_map<pthread_rwlock_t *, LockInfo> RwLocks;
  std::unordered_map<pthread_cond_t *, uint64_t> Conds;
  std::unordered_map<const void *, ObjectInfo> Objects;
  std::vector<ThreadSlot *> Threads;
  /// pthread_create handle -> our tid, consumed by the pthread_join
  /// interposition to emit the J (join happens-before) edge.
  std::unordered_map<pthread_t, uint64_t> JoinHandles;
  std::unordered_map<std::string, uint64_t> SiteCounts;

  void lock() { RealLock(&Mu); }
  void unlock() { RealUnlock(&Mu); }
};

GlobalState *State;

/// Per-thread slot pointer; the main thread gets one lazily.
thread_local ThreadSlot *Self;

/// True while this thread is inside preload-internal code (telemetry) that
/// takes std::mutex locks. std::mutex::lock() lands on the interposed
/// pthread_mutex_lock, so without this flag the analysis would recurse into
/// itself through its own bookkeeping locks; the interposed entry points
/// route guarded calls straight to the real implementation instead.
thread_local bool InInternal = false;

struct InternalGuard {
  // Save/restore rather than set/clear: guarded regions nest (an internal
  // helper called from inside another guarded region must not drop the
  // outer region's protection on destruction).
  bool Prev;
  InternalGuard() : Prev(InInternal) { InInternal = true; }
  ~InternalGuard() { InInternal = Prev; }
};

// -- Ring transport ------------------------------------------------------------------

/// Per-thread SPSC shard; claimed lazily on first event, released when the
/// trampoline sees the thread routine return (the main thread never
/// releases — the ring outlives it anyway).
thread_local dlf::ring::ShardHandle RingShard;
thread_local bool RingShardClaimed = false;

dlf::ring::ShardHandle &ringShardHandle() {
  if (!RingShardClaimed) {
    // claimShard serializes on a std::mutex; guard so our own interposed
    // pthread_mutex_lock passes it through.
    InternalGuard G;
    RingShard = State->Ring->claimShard();
    RingShardClaimed = true;
  }
  return RingShard;
}

/// One fixed-size ring write; the entire per-event cost of the ring path.
/// Telemetry (occupancy histogram, drop counter) only runs when a sidecar
/// asked for metrics — the default hot path is the write alone.
void ringEmit(dlf::ring::RecordKind Kind, uint64_t Tid, uint64_t Addr,
              uint32_t Site) {
  bool WantStats = dlf::telemetry::enabled();
  uint64_t Occupancy = 0;
  bool Ok = State->Ring->write(ringShardHandle(), Kind,
                               static_cast<uint32_t>(Tid), Addr, Site,
                               WantStats ? &Occupancy : nullptr);
  if (WantStats) {
    InternalGuard G;
    // Registered once and cached: the name-lookup takes the registry lock,
    // and this path runs per event — sometimes from contexts (thread-exit
    // TLS destructors) where re-entering the registry is not safe.
    static dlf::telemetry::Counter Records =
        dlf::telemetry::Registry::global().counter("dlf_ring_records_total");
    static dlf::telemetry::Counter Dropped =
        dlf::telemetry::Registry::global().counter("dlf_ring_dropped_total");
    static dlf::telemetry::Histogram Occ =
        dlf::telemetry::Registry::global().histogram("dlf_ring_occupancy");
    Records.inc();
    if (!Ok)
      Dropped.inc();
    Occ.observe(Occupancy);
  }
}

/// Interns a site string into the ring's shared string table (slow, mutex
/// under the hood — callers cache).
uint32_t ringInternString(const std::string &Site) {
  InternalGuard G;
  return State->Ring->internSite(Site);
}

/// Return-address -> interned site id, cached per thread so the steady
/// state is one hash lookup — no dladdr, no snprintf, no intern mutex.
uint32_t ringSiteId(void *CallerAddr) {
  thread_local std::unordered_map<void *, uint32_t> Cache;
  auto It = Cache.find(CallerAddr);
  if (It != Cache.end())
    return It->second;
  uint32_t Id = ringInternString(resolveSite(CallerAddr));
  Cache.emplace(CallerAddr, Id);
  return Id;
}

/// No observation mode (text trace, Phase II cycle, ring) wants events:
/// pure passthrough.
bool analysisOff() {
  return !State->Trace && State->Cycle.empty() && !State->Ring;
}

/// Hand-off from the pthread_create interposition to the trampoline. The
/// slot is created (and its T/F trace lines written) in the *parent*, so
/// the fork edge is on file before any child event and the child's tid is
/// deterministic in program order, not in thread start-up order.
struct TrampolineArg {
  void *(*Routine)(void *);
  void *Arg;
  ThreadSlot *Slot;
};

std::string bumpSite(GlobalState &G, const std::string &Site) {
  uint64_t N = ++G.SiteCounts[Site];
  return Site + "#" + std::to_string(N);
}

ThreadSlot *selfSlot() {
  if (Self)
    return Self;
  // Unregistered thread (the main thread, or one created before we were
  // loaded): register with a synthetic site.
  State->lock();
  auto *Slot = new ThreadSlot();
  Slot->Tid = State->NextTid++;
  const char *Base = Slot->Tid == 1 ? "main" : "unknown-thread";
  Slot->Abs = bumpSite(*State, Base);
  Slot->Live = true;
  State->Threads.push_back(Slot);
  if (State->Trace)
    fprintf(State->Trace, "T %" PRIu64 " %s\n", Slot->Tid, Slot->Abs.c_str());
  // The ring carries the raw site; the observer replays the #n bumping
  // (same order: registration points are serialized by the state lock).
  if (State->Ring)
    ringEmit(dlf::ring::RecordKind::ThreadSelf, Slot->Tid, 0,
             ringInternString(Base));
  State->unlock();
  Self = Slot;
  return Slot;
}

LockInfo &lockInfoLocked(pthread_mutex_t *M, const std::string &Site) {
  auto It = State->Locks.find(M);
  if (It != State->Locks.end())
    return It->second;
  LockInfo Info;
  Info.Id = State->NextLockId++;
  Info.Abs = bumpSite(*State, Site);
  auto [NewIt, Inserted] = State->Locks.emplace(M, std::move(Info));
  if (State->Trace)
    fprintf(State->Trace, "M %" PRIu64 " %s\n", NewIt->second.Id,
            NewIt->second.Abs.c_str());
  if (State->Ring)
    ringEmit(dlf::ring::RecordKind::LockSeen, 0,
             reinterpret_cast<uintptr_t>(M), ringInternString(Site));
  return NewIt->second;
}

LockInfo &rwlockInfoLocked(pthread_rwlock_t *RW, const std::string &Site) {
  auto It = State->RwLocks.find(RW);
  if (It != State->RwLocks.end())
    return It->second;
  LockInfo Info;
  Info.Id = State->NextLockId++;
  Info.Abs = bumpSite(*State, Site);
  auto [NewIt, Inserted] = State->RwLocks.emplace(RW, std::move(Info));
  if (State->Trace)
    fprintf(State->Trace, "M %" PRIu64 " %s\n", NewIt->second.Id,
            NewIt->second.Abs.c_str());
  if (State->Ring)
    ringEmit(dlf::ring::RecordKind::LockSeen, 0,
             reinterpret_cast<uintptr_t>(RW), ringInternString(Site));
  return NewIt->second;
}

uint64_t condIdLocked(pthread_cond_t *C) {
  auto [It, Inserted] = State->Conds.try_emplace(C, State->NextCondId);
  if (Inserted) {
    ++State->NextCondId;
    // Mirror the id-assignment point so the observer numbers condvars in
    // the same order the in-process model does.
    if (State->Ring)
      ringEmit(dlf::ring::RecordKind::CondSeen, 0,
               reinterpret_cast<uintptr_t>(C), 0);
  }
  return It->second;
}

// -- Cycle matching (Phase II) -------------------------------------------------------

bool matchesComponent(const ThreadSlot &T, const LockInfo &L,
                      const std::string &PendingSite) {
  for (const CycleComponentSpec &C : State->Cycle) {
    if (C.ThreadAbs != T.Abs || C.LockAbs != L.Abs)
      continue;
    if (C.Context.size() != T.Stack.size() + 1)
      continue;
    bool Equal = true;
    for (size_t I = 0; I != T.Stack.size() && Equal; ++I)
      Equal = (T.Stack[I].AcqSite == C.Context[I]);
    if (Equal && C.Context.back() == PendingSite)
      return true;
  }
  return false;
}

/// Do a wait in \p WantShared mode and a hold in \p HeldShared mode
/// conflict? Only read-read pairs coexist.
bool modesConflict(bool WantShared, bool HeldShared) {
  return !(WantShared && HeldShared);
}

/// Algorithm 4 over the global registry: looks for a wait-for cycle among
/// held stacks + pending locks. Caller holds the state lock. Positions
/// carry the hold/wait mode so a shared hold never blocks a shared wait.
bool findDeadlockLocked(std::string &Witness) {
  // Build per-thread ordered lock lists: held locks then the pending one.
  struct View {
    const ThreadSlot *T;
    std::vector<uint64_t> Locks;
    std::vector<std::string> Sites;
    std::vector<bool> Shared;
  };
  std::vector<View> Views;
  for (ThreadSlot *T : State->Threads) {
    if (!T->Live || (T->Stack.empty() && !T->PendingLock))
      continue;
    View V;
    V.T = T;
    for (const HeldEntry &H : T->Stack) {
      V.Locks.push_back(H.LockId);
      V.Sites.push_back(H.AcqSite);
      V.Shared.push_back(H.Shared);
    }
    if (T->PendingLock) {
      V.Locks.push_back(T->PendingLock);
      V.Sites.push_back(T->PendingSite);
      V.Shared.push_back(T->PendingShared);
    }
    Views.push_back(std::move(V));
  }

  // Depth-first search for a cycle with distinct threads and locks.
  struct Search {
    const std::vector<View> &Views;
    std::vector<bool> UsedThread;
    std::vector<uint64_t> UsedLocks;
    uint64_t StartLock = 0;
    /// Mode the start thread holds StartLock in: the closing wait must
    /// conflict with it.
    bool StartHeldShared = false;
    std::vector<std::pair<size_t, size_t>> Path;

    explicit Search(const std::vector<View> &Views)
        : Views(Views), UsedThread(Views.size(), false) {}

    bool lockUsed(uint64_t L) const {
      for (uint64_t U : UsedLocks)
        if (U == L)
          return true;
      return false;
    }

    bool extend(uint64_t Current, bool CurrentWantShared) {
      for (size_t V = 0; V != Views.size(); ++V) {
        if (UsedThread[V])
          continue;
        const auto &Locks = Views[V].Locks;
        for (size_t From = 0; From != Locks.size(); ++From) {
          if (Locks[From] != Current)
            continue;
          // The hold must actually block the wait: a shared hold of the
          // wanted lock is no obstacle to a shared wait.
          if (!modesConflict(CurrentWantShared, Views[V].Shared[From]))
            break;
          for (size_t To = From + 1; To != Locks.size(); ++To) {
            if (Locks[To] == StartLock) {
              if (!modesConflict(Views[V].Shared[To], StartHeldShared))
                continue;
              Path.push_back({V, To});
              return true;
            }
            if (lockUsed(Locks[To]))
              continue;
            UsedThread[V] = true;
            UsedLocks.push_back(Locks[To]);
            Path.push_back({V, To});
            if (extend(Locks[To], Views[V].Shared[To]))
              return true;
            Path.pop_back();
            UsedLocks.pop_back();
            UsedThread[V] = false;
          }
          break;
        }
      }
      return false;
    }

    bool run() {
      for (size_t V = 0; V != Views.size(); ++V) {
        const auto &Locks = Views[V].Locks;
        for (size_t From = 0; From != Locks.size(); ++From) {
          for (size_t To = From + 1; To != Locks.size(); ++To) {
            std::fill(UsedThread.begin(), UsedThread.end(), false);
            UsedLocks.clear();
            Path.clear();
            StartLock = Locks[From];
            StartHeldShared = Views[V].Shared[From];
            UsedThread[V] = true;
            UsedLocks.push_back(StartLock);
            UsedLocks.push_back(Locks[To]);
            Path.push_back({V, To});
            if (Locks[To] == StartLock)
              continue;
            if (extend(Locks[To], Views[V].Shared[To]))
              return true;
          }
        }
      }
      return false;
    }
  };

  Search S(Views);
  if (!S.run())
    return false;

  Witness = "real deadlock cycle:";
  for (auto [V, Pos] : S.Path) {
    Witness += " [thread ";
    Witness += Views[V].T->Abs;
    Witness += " waits at ";
    Witness += Views[V].Sites[Pos];
    Witness += "]";
  }
  return true;
}

void reportDeadlockAndExit(const std::string &Witness) {
  fprintf(stderr, "DLF-PRELOAD: %s\n", Witness.c_str());
  if (State && State->Ring)
    State->Ring->markDone(); // _exit skips the destructor
  if (State && State->Trace)
    fflush(State->Trace);
  if (dlf::telemetry::enabled()) {
    InternalGuard G;
    dlf::telemetry::Registry::global()
        .counter("dlf_preload_deadlocks_reported_total")
        .inc();
    // _exit skips the destructor, so the sidecar is written here.
    dlf::telemetry::flushChildTelemetry();
  }
  fflush(nullptr);
  _exit(dlf::interpose::DeadlockExitCode);
}

void sleepMs(unsigned Ms) {
  struct timespec Ts;
  Ts.tv_sec = Ms / 1000;
  Ts.tv_nsec = static_cast<long>(Ms % 1000) * 1000000L;
  nanosleep(&Ts, nullptr);
}

// -- Cycle spec parsing ----------------------------------------------------------

void parseCycleSpec(const char *Spec) {
  // "<threadAbs>|<lockAbs>|<ctx1>,<ctx2>;<component>;..."
  std::string Text(Spec);
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find(';', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Component = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Component.empty())
      continue;

    size_t Bar1 = Component.find('|');
    size_t Bar2 = Component.find('|', Bar1 + 1);
    if (Bar1 == std::string::npos || Bar2 == std::string::npos)
      continue;
    CycleComponentSpec Parsed;
    Parsed.ThreadAbs = Component.substr(0, Bar1);
    Parsed.LockAbs = Component.substr(Bar1 + 1, Bar2 - Bar1 - 1);
    std::string Ctx = Component.substr(Bar2 + 1);
    size_t CtxPos = 0;
    while (CtxPos < Ctx.size()) {
      size_t Comma = Ctx.find(',', CtxPos);
      if (Comma == std::string::npos)
        Comma = Ctx.size();
      Parsed.Context.push_back(Ctx.substr(CtxPos, Comma - CtxPos));
      CtxPos = Comma + 1;
    }
    if (!Parsed.Context.empty())
      State->Cycle.push_back(std::move(Parsed));
  }
}

// -- Initialization -----------------------------------------------------------------

__attribute__((constructor)) void dlfPreloadInit() {
  resolveReals();
  State = new GlobalState();
  // A campaign (or operator) that wants metrics from the traced program
  // points DLF_METRICS_SIDECAR at a file; the shutdown hook dumps there.
  if (getenv(dlf::telemetry::SidecarEnvVar))
    dlf::telemetry::setEnabled(true);
  if (const char *Path = getenv(dlf::interpose::TraceEnvVar)) {
    State->Trace = fopen(Path, "w");
    if (State->Trace)
      fprintf(State->Trace, "# dlf-preload trace v1\n");
  }
  if (const char *Spec = getenv(dlf::ring::RingEnvVar)) {
    std::string Err;
    State->Ring = dlf::ring::RingWriter::openSpec(
        Spec, dlf::ring::shardsFromEnv(), dlf::ring::slotsFromEnv(), &Err);
    if (!State->Ring) {
      // Fail fast: silently recording nothing would make dlf-observe
      // report a clean run for an execution that was never observed.
      fprintf(stderr, "dlf-preload: %s: %s\n", dlf::ring::RingEnvVar,
              Err.c_str());
      _exit(2);
    }
  }
  State->TraceAccesses = (State->Trace || State->Ring) &&
                         getenv(dlf::interpose::AccessEnvVar) != nullptr;
  if (const char *Spec = getenv(dlf::interpose::CycleEnvVar))
    parseCycleSpec(Spec);
  State->RingOnly =
      State->Ring && !State->Trace && State->Cycle.empty();
  if (const char *Ms = getenv(dlf::interpose::PauseMsEnvVar)) {
    // atoi would map a typo to PauseMs = 0, silently disarming the biased
    // scheduler; fail fast before the program under test starts instead.
    uint64_t N = 0;
    if (!dlf::parseUint64Strict(Ms, N)) {
      fprintf(stderr,
              "dlf-preload: %s expects a non-negative integer, got '%s'\n",
              dlf::interpose::PauseMsEnvVar, Ms);
      _exit(2);
    }
    State->PauseMs = static_cast<unsigned>(N);
  }
}

__attribute__((destructor)) void dlfPreloadShutdown() {
  if (State && State->Trace) {
    fflush(State->Trace);
    fclose(State->Trace);
    State->Trace = nullptr;
  }
  if (State && State->Ring)
    State->Ring->markDone(); // tells dlf-observe to finish draining
  InternalGuard G;
  dlf::telemetry::flushChildTelemetry();
}

// -- Event handlers ------------------------------------------------------------------

/// Algorithm 3's pause, shared by the mutex and rwlock acquire paths:
/// register the wait-for edge, then sleep in slices watching for the cycle
/// to physically form around us; give up after the budget (thrash /
/// livelock-monitor analogue).
void pauseAndWatch(ThreadSlot *T, uint64_t LockId, const std::string &Site,
                   bool Shared) {
  if (dlf::telemetry::enabled()) {
    InternalGuard G;
    dlf::telemetry::Registry::global()
        .counter("dlf_preload_pauses_total")
        .inc();
  }
  State->lock();
  T->PendingLock = LockId;
  T->PendingSite = Site;
  T->PendingShared = Shared;
  std::string Witness;
  bool Found = findDeadlockLocked(Witness);
  State->unlock();
  if (Found)
    reportDeadlockAndExit(Witness);

  unsigned Waited = 0;
  const unsigned Slice = 2;
  while (Waited < State->PauseMs) {
    sleepMs(Slice);
    Waited += Slice;
    State->lock();
    std::string SliceWitness;
    bool SliceFound = findDeadlockLocked(SliceWitness);
    State->unlock();
    if (SliceFound)
      reportDeadlockAndExit(SliceWitness);
  }
  State->lock();
  T->PendingLock = 0;
  T->PendingSite.clear();
  T->PendingShared = false;
  State->unlock();
}

/// Register a blocking wait-for edge and check for a completed deadlock
/// (the last edge is ours) right before blocking for real.
void registerBlockedAndCheck(ThreadSlot *T, uint64_t LockId,
                             const std::string &Site, bool Shared) {
  std::string Witness;
  bool Found = false;
  {
    State->lock();
    T->PendingLock = LockId;
    T->PendingSite = Site;
    T->PendingShared = Shared;
    Found = findDeadlockLocked(Witness);
    State->unlock();
  }
  if (Found)
    reportDeadlockAndExit(Witness);
}

/// Core acquire protocol shared by lock and cond_wait re-acquire.
int acquireWithAnalysis(pthread_mutex_t *M, void *CallerAddr) {
  ThreadSlot *T = selfSlot();
  std::string Site = resolveSite(CallerAddr);
  if (dlf::telemetry::enabled()) {
    InternalGuard G;
    dlf::telemetry::Registry::global()
        .counter("dlf_preload_acquires_total")
        .inc();
  }

  bool Reentrant = false;
  bool ShouldPause = false;
  uint64_t LockId = 0;
  {
    State->lock();
    LockInfo &L = lockInfoLocked(M, Site);
    LockId = L.Id;
    if (L.OwnerTid == T->Tid) {
      ++L.Recursion;
      Reentrant = true; // invisible to the analysis (footnote 2)
    } else if (!State->Cycle.empty()) {
      ShouldPause = matchesComponent(*T, L, Site);
    }
    State->unlock();
  }
  if (Reentrant)
    return RealLock(M);

  if (ShouldPause)
    pauseAndWatch(T, LockId, Site, /*Shared=*/false);

  // Execute the acquire: try fast, else register the wait-for edge, check
  // for a completed deadlock (the last edge is ours), then block for real.
  if (RealTrylock(M) != 0) {
    registerBlockedAndCheck(T, LockId, Site, /*Shared=*/false);
    int Rc = RealLock(M);
    if (Rc != 0) {
      State->lock();
      T->PendingLock = 0;
      T->PendingShared = false;
      State->unlock();
      return Rc;
    }
  }

  State->lock();
  LockInfo &L = lockInfoLocked(M, Site);
  L.OwnerTid = T->Tid;
  L.Recursion = 1;
  T->PendingLock = 0;
  T->PendingSite.clear();
  T->PendingShared = false;
  if (State->Trace)
    fprintf(State->Trace, "A %" PRIu64 " %" PRIu64 " %s\n", T->Tid, L.Id,
            Site.c_str());
  if (State->Ring)
    ringEmit(dlf::ring::RecordKind::Acquire, T->Tid,
             reinterpret_cast<uintptr_t>(M), ringInternString(Site));
  T->Stack.push_back({L.Id, Site});
  State->unlock();
  return 0;
}

/// Acquire protocol for the rwlock sides: same pause/edge/deadlock-check
/// shape as the mutex path, with the shared flag threaded through so the
/// wait-for search applies read-read non-exclusion.
int rwAcquireWithAnalysis(pthread_rwlock_t *RW, bool Shared,
                          void *CallerAddr) {
  ThreadSlot *T = selfSlot();
  std::string Site = resolveSite(CallerAddr);
  if (dlf::telemetry::enabled()) {
    InternalGuard G;
    dlf::telemetry::Registry::global()
        .counter("dlf_preload_acquires_total")
        .inc();
  }

  bool ShouldPause = false;
  uint64_t LockId = 0;
  {
    State->lock();
    LockInfo &L = rwlockInfoLocked(RW, Site);
    LockId = L.Id;
    if (!State->Cycle.empty())
      ShouldPause = matchesComponent(*T, L, Site);
    State->unlock();
  }

  if (ShouldPause)
    pauseAndWatch(T, LockId, Site, Shared);

  if ((Shared ? RealTryRdlock(RW) : RealTryWrlock(RW)) != 0) {
    registerBlockedAndCheck(T, LockId, Site, Shared);
    int Rc = Shared ? RealRdlock(RW) : RealWrlock(RW);
    if (Rc != 0) {
      State->lock();
      T->PendingLock = 0;
      T->PendingShared = false;
      State->unlock();
      return Rc;
    }
  }

  State->lock();
  LockInfo &L = rwlockInfoLocked(RW, Site);
  if (Shared)
    L.ReaderTids.push_back(T->Tid);
  else {
    L.OwnerTid = T->Tid;
    L.Recursion = 1;
  }
  T->PendingLock = 0;
  T->PendingSite.clear();
  T->PendingShared = false;
  if (State->Trace)
    fprintf(State->Trace, "%c %" PRIu64 " %" PRIu64 " %s\n",
            Shared ? 'Q' : 'A', T->Tid, L.Id, Site.c_str());
  if (State->Ring)
    ringEmit(Shared ? dlf::ring::RecordKind::SharedAcquire
                    : dlf::ring::RecordKind::Acquire,
             T->Tid, reinterpret_cast<uintptr_t>(RW), ringInternString(Site));
  T->Stack.push_back({L.Id, Site, Shared});
  State->unlock();
  return 0;
}

/// Model-side release for one rwlock side; emits the matching R/U line.
/// The side is determined from the registry (pthread_rwlock_unlock does
/// not say which side it releases).
void rwReleaseWithAnalysis(pthread_rwlock_t *RW) {
  ThreadSlot *T = selfSlot();
  State->lock();
  auto It = State->RwLocks.find(RW);
  if (It == State->RwLocks.end()) {
    State->unlock();
    return; // never observed the acquire (pre-init lock) — pass through
  }
  LockInfo &L = It->second;
  bool Shared;
  if (L.OwnerTid == T->Tid) {
    Shared = false;
    L.OwnerTid = 0;
    L.Recursion = 0;
  } else {
    auto Rd = std::find(L.ReaderTids.begin(), L.ReaderTids.end(), T->Tid);
    if (Rd == L.ReaderTids.end()) {
      State->unlock();
      return;
    }
    Shared = true;
    L.ReaderTids.erase(Rd);
  }
  for (size_t I = T->Stack.size(); I-- > 0;) {
    if (T->Stack[I].LockId == L.Id) {
      T->Stack.erase(T->Stack.begin() + static_cast<long>(I));
      break;
    }
  }
  if (State->Trace)
    fprintf(State->Trace, "%c %" PRIu64 " %" PRIu64 "\n", Shared ? 'U' : 'R',
            T->Tid, L.Id);
  // The observer re-resolves the side from its own owner/reader registry,
  // which mirrors this one record for record.
  if (State->Ring)
    ringEmit(dlf::ring::RecordKind::RwUnlock, T->Tid,
             reinterpret_cast<uintptr_t>(RW), 0);
  State->unlock();
}

void releaseWithAnalysis(pthread_mutex_t *M, bool &Reentrant) {
  ThreadSlot *T = selfSlot();
  State->lock();
  auto It = State->Locks.find(M);
  if (It == State->Locks.end() || It->second.OwnerTid != T->Tid) {
    // Never observed the acquire (pre-init lock) — pass through.
    Reentrant = true;
    State->unlock();
    return;
  }
  LockInfo &L = It->second;
  if (L.Recursion > 1) {
    --L.Recursion;
    Reentrant = true;
    State->unlock();
    return;
  }
  Reentrant = false;
  L.OwnerTid = 0;
  L.Recursion = 0;
  for (size_t I = T->Stack.size(); I-- > 0;) {
    if (T->Stack[I].LockId == L.Id) {
      T->Stack.erase(T->Stack.begin() + static_cast<long>(I));
      break;
    }
  }
  if (State->Trace)
    fprintf(State->Trace, "R %" PRIu64 " %" PRIu64 "\n", T->Tid, L.Id);
  if (State->Ring)
    ringEmit(dlf::ring::RecordKind::Release, T->Tid,
             reinterpret_cast<uintptr_t>(M), 0);
  State->unlock();
}

/// Shared body of the cond-wait wrappers: cond_wait releases and
/// re-acquires the mutex, so the model releases first, runs the real wait,
/// then records the wakeup edge and the re-acquire. A timed-out wait
/// (ETIMEDOUT) still re-acquires the mutex — only the V wakeup edge is
/// conditional on a zero return. The re-acquire's site is the caller's
/// real wait site, not a synthetic constant, so Phase II contexts match.
template <typename RealWaitFn>
int condWaitWithAnalysis(pthread_cond_t *Cond, pthread_mutex_t *M,
                         void *CallerAddr, RealWaitFn RealWait) {
  ThreadSlot *T = selfSlot();
  std::string Site = resolveSite(CallerAddr);
  uint64_t CondId;
  {
    State->lock();
    CondId = condIdLocked(Cond);
    State->unlock();
  }
  bool Reentrant = false;
  releaseWithAnalysis(M, Reentrant);
  int Rc = RealWait();
  State->lock();
  if (Rc == 0) {
    if (State->Trace)
      fprintf(State->Trace, "V %" PRIu64 " %" PRIu64 "\n", T->Tid, CondId);
    if (State->Ring)
      ringEmit(dlf::ring::RecordKind::CondWake, T->Tid,
               reinterpret_cast<uintptr_t>(Cond), 0);
  }
  if (!Reentrant) {
    LockInfo &L = lockInfoLocked(M, Site);
    L.OwnerTid = T->Tid;
    L.Recursion = 1;
    if (State->Trace)
      fprintf(State->Trace, "A %" PRIu64 " %" PRIu64 " %s\n", T->Tid, L.Id,
              Site.c_str());
    if (State->Ring)
      ringEmit(dlf::ring::RecordKind::Acquire, T->Tid,
               reinterpret_cast<uintptr_t>(M), ringInternString(Site));
    T->Stack.push_back({L.Id, Site});
  }
  State->unlock();
  return Rc;
}

/// Records the N notify line for signal/broadcast. Written *before* the
/// real call so a woken waiter's V line can never precede its N source in
/// the trace.
void recordNotify(pthread_cond_t *Cond, ThreadSlot *T) {
  State->lock();
  uint64_t CondId = condIdLocked(Cond);
  if (State->Trace)
    fprintf(State->Trace, "N %" PRIu64 " %" PRIu64 "\n", T->Tid, CondId);
  if (State->Ring)
    ringEmit(dlf::ring::RecordKind::CondNotify, T->Tid,
             reinterpret_cast<uintptr_t>(Cond), 0);
  State->unlock();
}

void *threadTrampoline(void *Raw) {
  auto *Arg = static_cast<TrampolineArg *>(Raw);
  ThreadSlot *Slot = Arg->Slot;
  State->lock();
  Slot->Live = true;
  State->unlock();
  Self = Slot;

  void *Result = Arg->Routine(Arg->Arg);

  State->lock();
  Slot->Live = false;
  Slot->Stack.clear();
  Slot->PendingLock = 0;
  Slot->PendingShared = false;
  State->unlock();
  if (State->Ring && RingShardClaimed) {
    // Return the shard to the pool so later threads reuse it instead of
    // spilling into the shared overflow shard.
    State->Ring->releaseShard(RingShard);
    RingShardClaimed = false;
  }
  delete Arg;
  return Result;
}

/// Shared-access recording behind DLF_TRACE_ACCESSES (see TraceFormat.h).
/// \p Site may be null, in which case the caller's return address resolves
/// the site the same way acquires do.
void recordAccess(const void *Addr, const char *Site, bool IsWrite,
                  void *CallerAddr) {
  if (!State || !State->TraceAccesses || !Addr)
    return;
  ThreadSlot *T = selfSlot();
  if (State->RingOnly) {
    // One ring write; the observer assigns object ids and abstractions.
    uint32_t SiteId = Site && *Site ? ringInternString(Site)
                                    : ringSiteId(CallerAddr);
    ringEmit(IsWrite ? dlf::ring::RecordKind::AccessWrite
                     : dlf::ring::RecordKind::AccessRead,
             T->Tid, reinterpret_cast<uintptr_t>(Addr), SiteId);
    return;
  }
  std::string SiteText = Site && *Site ? Site : resolveSite(CallerAddr);
  State->lock();
  auto It = State->Objects.find(Addr);
  if (It == State->Objects.end()) {
    ObjectInfo Info;
    Info.Id = State->NextObjectId++;
    Info.Abs = bumpSite(*State, SiteText);
    It = State->Objects.emplace(Addr, std::move(Info)).first;
    if (State->Trace)
      fprintf(State->Trace, "O %" PRIu64 " %s\n", It->second.Id,
              It->second.Abs.c_str());
  }
  if (State->Trace)
    fprintf(State->Trace, "%c %" PRIu64 " %" PRIu64 " %s\n",
            IsWrite ? 'S' : 'L', T->Tid, It->second.Id, SiteText.c_str());
  if (State->Ring)
    ringEmit(IsWrite ? dlf::ring::RecordKind::AccessWrite
                     : dlf::ring::RecordKind::AccessRead,
             T->Tid, reinterpret_cast<uintptr_t>(Addr),
             ringInternString(SiteText));
  State->unlock();
}

} // namespace

// -- Interposed entry points ----------------------------------------------------------

extern "C" {

int pthread_mutex_lock(pthread_mutex_t *M) {
  if (!State || !RealLock) {
    // Called before our constructor (e.g. by the dynamic linker itself):
    // resolve lazily and pass through.
    if (!RealLock)
      RealLock = reinterpret_cast<MutexLockFn>(
          dlsym(RTLD_NEXT, "pthread_mutex_lock"));
    return RealLock(M);
  }
  if (InInternal)
    return RealLock(M); // our own telemetry locking: invisible to the analysis
  if (State->RingOnly) {
    // The hot path the ring exists for: no state lock, no site resolution
    // after the first call from a site — one fixed-size ring write.
    uint64_t Tid = selfSlot()->Tid;
    uint32_t SiteId = ringSiteId(__builtin_return_address(0));
    int Rc = RealLock(M);
    if (Rc == 0)
      ringEmit(dlf::ring::RecordKind::Acquire, Tid,
               reinterpret_cast<uintptr_t>(M), SiteId);
    return Rc;
  }
  if (analysisOff())
    return RealLock(M); // neither phase requested: pure passthrough
  return acquireWithAnalysis(M, __builtin_return_address(0));
}

int pthread_mutex_trylock(pthread_mutex_t *M) {
  if (!RealTrylock)
    RealTrylock = reinterpret_cast<MutexTrylockFn>(
        dlsym(RTLD_NEXT, "pthread_mutex_trylock"));
  if (!State || InInternal)
    return RealTrylock(M);
  if (State->RingOnly) {
    uint64_t Tid = selfSlot()->Tid;
    uint32_t SiteId = ringSiteId(__builtin_return_address(0));
    int Rc = RealTrylock(M);
    ringEmit(Rc == 0 ? dlf::ring::RecordKind::Acquire
                     : dlf::ring::RecordKind::TryProbe,
             Tid, reinterpret_cast<uintptr_t>(M), SiteId);
    return Rc;
  }
  int Rc = RealTrylock(M);
  if (analysisOff())
    return Rc;
  if (Rc != 0) {
    // Failed probe: the thread asked and bailed out without blocking — no
    // wait-for edge, no pending registration, just a P line so offline
    // passes can see the attempt happened.
    if (State->Trace || State->Ring) {
      ThreadSlot *T = selfSlot();
      std::string Site = resolveSite(__builtin_return_address(0));
      State->lock();
      LockInfo &L = lockInfoLocked(M, Site);
      if (State->Trace)
        fprintf(State->Trace, "P %" PRIu64 " %" PRIu64 " %s\n", T->Tid, L.Id,
                Site.c_str());
      if (State->Ring)
        ringEmit(dlf::ring::RecordKind::TryProbe, T->Tid,
                 reinterpret_cast<uintptr_t>(M), ringInternString(Site));
      State->unlock();
    }
    return Rc;
  }
  // Successful trylock: record the acquire (same bookkeeping, no pause).
  ThreadSlot *T = selfSlot();
  std::string Site = resolveSite(__builtin_return_address(0));
  State->lock();
  LockInfo &L = lockInfoLocked(M, Site);
  if (L.OwnerTid == T->Tid) {
    ++L.Recursion;
  } else {
    L.OwnerTid = T->Tid;
    L.Recursion = 1;
    if (State->Trace)
      fprintf(State->Trace, "A %" PRIu64 " %" PRIu64 " %s\n", T->Tid, L.Id,
              Site.c_str());
    if (State->Ring)
      ringEmit(dlf::ring::RecordKind::Acquire, T->Tid,
               reinterpret_cast<uintptr_t>(M), ringInternString(Site));
    T->Stack.push_back({L.Id, Site});
  }
  State->unlock();
  return 0;
}

int pthread_mutex_unlock(pthread_mutex_t *M) {
  if (!State || !RealUnlock) {
    if (!RealUnlock)
      RealUnlock = reinterpret_cast<MutexUnlockFn>(
          dlsym(RTLD_NEXT, "pthread_mutex_unlock"));
    return RealUnlock(M);
  }
  if (InInternal)
    return RealUnlock(M);
  if (State->RingOnly) {
    // Source side: the record precedes the real unlock so a dependent
    // acquire can never be sequenced before its release.
    ringEmit(dlf::ring::RecordKind::Release, selfSlot()->Tid,
             reinterpret_cast<uintptr_t>(M), 0);
    return RealUnlock(M);
  }
  if (analysisOff())
    return RealUnlock(M);
  bool Reentrant = false;
  releaseWithAnalysis(M, Reentrant);
  (void)Reentrant;
  return RealUnlock(M);
}

int pthread_mutex_destroy(pthread_mutex_t *M) {
  if (!RealDestroy) {
    // Resolve lazily like every other wrapper: destroy can be reached
    // before our constructor runs (static destructor ordering, early
    // libc teardown paths), and returning success without destroying the
    // real mutex would leak its kernel state.
    RealDestroy = reinterpret_cast<MutexDestroyFn>(
        dlsym(RTLD_NEXT, "pthread_mutex_destroy"));
  }
  if (State && !InInternal) {
    if (State->RingOnly) {
      ringEmit(dlf::ring::RecordKind::LockDestroy, 0,
               reinterpret_cast<uintptr_t>(M), 0);
    } else {
      State->lock();
      State->Locks.erase(M);
      if (State->Ring)
        ringEmit(dlf::ring::RecordKind::LockDestroy, 0,
                 reinterpret_cast<uintptr_t>(M), 0);
      State->unlock();
    }
  }
  return RealDestroy(M);
}

int pthread_cond_wait(pthread_cond_t *Cond, pthread_mutex_t *M) {
  if (!RealCondWait)
    RealCondWait = reinterpret_cast<CondWaitFn>(
        dlsym(RTLD_NEXT, "pthread_cond_wait"));
  if (!State || InInternal)
    return RealCondWait(Cond, M);
  if (State->RingOnly) {
    uint64_t Tid = selfSlot()->Tid;
    uint32_t SiteId = ringSiteId(__builtin_return_address(0));
    ringEmit(dlf::ring::RecordKind::Release, Tid,
             reinterpret_cast<uintptr_t>(M), 0);
    int Rc = RealCondWait(Cond, M);
    if (Rc == 0)
      ringEmit(dlf::ring::RecordKind::CondWake, Tid,
               reinterpret_cast<uintptr_t>(Cond), 0);
    ringEmit(dlf::ring::RecordKind::Acquire, Tid,
             reinterpret_cast<uintptr_t>(M), SiteId);
    return Rc;
  }
  if (analysisOff())
    return RealCondWait(Cond, M);
  return condWaitWithAnalysis(Cond, M, __builtin_return_address(0),
                              [&] { return RealCondWait(Cond, M); });
}

int pthread_cond_timedwait(pthread_cond_t *Cond, pthread_mutex_t *M,
                           const struct timespec *Abstime) {
  if (!RealCondTimedwait)
    RealCondTimedwait = reinterpret_cast<CondTimedwaitFn>(
        dlsym(RTLD_NEXT, "pthread_cond_timedwait"));
  if (!State || InInternal)
    return RealCondTimedwait(Cond, M, Abstime);
  if (State->RingOnly) {
    uint64_t Tid = selfSlot()->Tid;
    uint32_t SiteId = ringSiteId(__builtin_return_address(0));
    ringEmit(dlf::ring::RecordKind::Release, Tid,
             reinterpret_cast<uintptr_t>(M), 0);
    int Rc = RealCondTimedwait(Cond, M, Abstime);
    if (Rc == 0)
      ringEmit(dlf::ring::RecordKind::CondWake, Tid,
               reinterpret_cast<uintptr_t>(Cond), 0);
    ringEmit(dlf::ring::RecordKind::Acquire, Tid,
             reinterpret_cast<uintptr_t>(M), SiteId);
    return Rc;
  }
  if (analysisOff())
    return RealCondTimedwait(Cond, M, Abstime);
  return condWaitWithAnalysis(
      Cond, M, __builtin_return_address(0),
      [&] { return RealCondTimedwait(Cond, M, Abstime); });
}

int pthread_cond_signal(pthread_cond_t *Cond) {
  if (!RealCondSignal)
    RealCondSignal = reinterpret_cast<CondNotifyFn>(
        dlsym(RTLD_NEXT, "pthread_cond_signal"));
  if (State && !InInternal) {
    if (State->RingOnly)
      ringEmit(dlf::ring::RecordKind::CondNotify, selfSlot()->Tid,
               reinterpret_cast<uintptr_t>(Cond), 0);
    else if (State->Trace || State->Ring)
      recordNotify(Cond, selfSlot());
  }
  return RealCondSignal(Cond);
}

int pthread_cond_broadcast(pthread_cond_t *Cond) {
  if (!RealCondBroadcast)
    RealCondBroadcast = reinterpret_cast<CondNotifyFn>(
        dlsym(RTLD_NEXT, "pthread_cond_broadcast"));
  if (State && !InInternal) {
    if (State->RingOnly)
      ringEmit(dlf::ring::RecordKind::CondNotify, selfSlot()->Tid,
               reinterpret_cast<uintptr_t>(Cond), 0);
    else if (State->Trace || State->Ring)
      recordNotify(Cond, selfSlot());
  }
  return RealCondBroadcast(Cond);
}

int pthread_rwlock_rdlock(pthread_rwlock_t *RW) {
  if (!State || !RealRdlock) {
    if (!RealRdlock)
      RealRdlock = reinterpret_cast<RwlockOpFn>(
          dlsym(RTLD_NEXT, "pthread_rwlock_rdlock"));
    return RealRdlock(RW);
  }
  if (InInternal)
    return RealRdlock(RW);
  if (State->RingOnly) {
    uint64_t Tid = selfSlot()->Tid;
    uint32_t SiteId = ringSiteId(__builtin_return_address(0));
    int Rc = RealRdlock(RW);
    if (Rc == 0)
      ringEmit(dlf::ring::RecordKind::SharedAcquire, Tid,
               reinterpret_cast<uintptr_t>(RW), SiteId);
    return Rc;
  }
  if (analysisOff())
    return RealRdlock(RW);
  return rwAcquireWithAnalysis(RW, /*Shared=*/true,
                               __builtin_return_address(0));
}

int pthread_rwlock_wrlock(pthread_rwlock_t *RW) {
  if (!State || !RealWrlock) {
    if (!RealWrlock)
      RealWrlock = reinterpret_cast<RwlockOpFn>(
          dlsym(RTLD_NEXT, "pthread_rwlock_wrlock"));
    return RealWrlock(RW);
  }
  if (InInternal)
    return RealWrlock(RW);
  if (State->RingOnly) {
    uint64_t Tid = selfSlot()->Tid;
    uint32_t SiteId = ringSiteId(__builtin_return_address(0));
    int Rc = RealWrlock(RW);
    if (Rc == 0)
      ringEmit(dlf::ring::RecordKind::Acquire, Tid,
               reinterpret_cast<uintptr_t>(RW), SiteId);
    return Rc;
  }
  if (analysisOff())
    return RealWrlock(RW);
  return rwAcquireWithAnalysis(RW, /*Shared=*/false,
                               __builtin_return_address(0));
}

int pthread_rwlock_tryrdlock(pthread_rwlock_t *RW) {
  if (!RealTryRdlock)
    RealTryRdlock = reinterpret_cast<RwlockOpFn>(
        dlsym(RTLD_NEXT, "pthread_rwlock_tryrdlock"));
  if (!State || InInternal)
    return RealTryRdlock(RW);
  if (State->RingOnly) {
    uint64_t Tid = selfSlot()->Tid;
    uint32_t SiteId = ringSiteId(__builtin_return_address(0));
    int Rc = RealTryRdlock(RW);
    ringEmit(Rc == 0 ? dlf::ring::RecordKind::SharedAcquire
                     : dlf::ring::RecordKind::TryProbe,
             Tid, reinterpret_cast<uintptr_t>(RW), SiteId);
    return Rc;
  }
  int Rc = RealTryRdlock(RW);
  if (analysisOff())
    return Rc;
  ThreadSlot *T = selfSlot();
  std::string Site = resolveSite(__builtin_return_address(0));
  State->lock();
  LockInfo &L = rwlockInfoLocked(RW, Site);
  if (Rc != 0) {
    if (State->Trace)
      fprintf(State->Trace, "P %" PRIu64 " %" PRIu64 " %s\n", T->Tid, L.Id,
              Site.c_str());
    if (State->Ring)
      ringEmit(dlf::ring::RecordKind::TryProbe, T->Tid,
               reinterpret_cast<uintptr_t>(RW), ringInternString(Site));
  } else {
    L.ReaderTids.push_back(T->Tid);
    if (State->Trace)
      fprintf(State->Trace, "Q %" PRIu64 " %" PRIu64 " %s\n", T->Tid, L.Id,
              Site.c_str());
    if (State->Ring)
      ringEmit(dlf::ring::RecordKind::SharedAcquire, T->Tid,
               reinterpret_cast<uintptr_t>(RW), ringInternString(Site));
    T->Stack.push_back({L.Id, Site, /*Shared=*/true});
  }
  State->unlock();
  return Rc;
}

int pthread_rwlock_trywrlock(pthread_rwlock_t *RW) {
  if (!RealTryWrlock)
    RealTryWrlock = reinterpret_cast<RwlockOpFn>(
        dlsym(RTLD_NEXT, "pthread_rwlock_trywrlock"));
  if (!State || InInternal)
    return RealTryWrlock(RW);
  if (State->RingOnly) {
    uint64_t Tid = selfSlot()->Tid;
    uint32_t SiteId = ringSiteId(__builtin_return_address(0));
    int Rc = RealTryWrlock(RW);
    ringEmit(Rc == 0 ? dlf::ring::RecordKind::Acquire
                     : dlf::ring::RecordKind::TryProbe,
             Tid, reinterpret_cast<uintptr_t>(RW), SiteId);
    return Rc;
  }
  int Rc = RealTryWrlock(RW);
  if (analysisOff())
    return Rc;
  ThreadSlot *T = selfSlot();
  std::string Site = resolveSite(__builtin_return_address(0));
  State->lock();
  LockInfo &L = rwlockInfoLocked(RW, Site);
  if (Rc != 0) {
    if (State->Trace)
      fprintf(State->Trace, "P %" PRIu64 " %" PRIu64 " %s\n", T->Tid, L.Id,
              Site.c_str());
    if (State->Ring)
      ringEmit(dlf::ring::RecordKind::TryProbe, T->Tid,
               reinterpret_cast<uintptr_t>(RW), ringInternString(Site));
  } else {
    L.OwnerTid = T->Tid;
    L.Recursion = 1;
    if (State->Trace)
      fprintf(State->Trace, "A %" PRIu64 " %" PRIu64 " %s\n", T->Tid, L.Id,
              Site.c_str());
    if (State->Ring)
      ringEmit(dlf::ring::RecordKind::Acquire, T->Tid,
               reinterpret_cast<uintptr_t>(RW), ringInternString(Site));
    T->Stack.push_back({L.Id, Site, /*Shared=*/false});
  }
  State->unlock();
  return Rc;
}

int pthread_rwlock_unlock(pthread_rwlock_t *RW) {
  if (!State || !RealRwUnlock) {
    if (!RealRwUnlock)
      RealRwUnlock = reinterpret_cast<RwlockOpFn>(
          dlsym(RTLD_NEXT, "pthread_rwlock_unlock"));
    return RealRwUnlock(RW);
  }
  if (InInternal)
    return RealRwUnlock(RW);
  if (State->RingOnly) {
    ringEmit(dlf::ring::RecordKind::RwUnlock, selfSlot()->Tid,
             reinterpret_cast<uintptr_t>(RW), 0);
    return RealRwUnlock(RW);
  }
  if (analysisOff())
    return RealRwUnlock(RW);
  rwReleaseWithAnalysis(RW);
  return RealRwUnlock(RW);
}

int pthread_rwlock_destroy(pthread_rwlock_t *RW) {
  if (!RealRwDestroy)
    RealRwDestroy = reinterpret_cast<RwlockOpFn>(
        dlsym(RTLD_NEXT, "pthread_rwlock_destroy"));
  if (State && !InInternal) {
    if (State->RingOnly) {
      ringEmit(dlf::ring::RecordKind::LockDestroy, 0,
               reinterpret_cast<uintptr_t>(RW), 0);
    } else {
      State->lock();
      State->RwLocks.erase(RW);
      if (State->Ring)
        ringEmit(dlf::ring::RecordKind::LockDestroy, 0,
                 reinterpret_cast<uintptr_t>(RW), 0);
      State->unlock();
    }
  }
  return RealRwDestroy(RW);
}

int pthread_create(pthread_t *Thread, const pthread_attr_t *Attr,
                   void *(*Routine)(void *), void *Arg) {
  if (!State || !RealCreate) {
    if (!RealCreate)
      RealCreate = reinterpret_cast<CreateFn>(dlsym(RTLD_NEXT,
                                                    "pthread_create"));
    return RealCreate(Thread, Attr, Routine, Arg);
  }
  if (analysisOff())
    return RealCreate(Thread, Attr, Routine, Arg);

  // Even in ring-only mode thread creation goes through the registry: the
  // child's tid must be allocated centrally, and creates are rare enough
  // that the state lock does not matter here.
  ThreadSlot *Parent = selfSlot(); // register the creator (e.g. main)
  std::string Site = resolveSite(__builtin_return_address(0));
  State->lock();
  auto *Slot = new ThreadSlot();
  Slot->Tid = State->NextTid++;
  Slot->Abs = bumpSite(*State, Site);
  State->Threads.push_back(Slot);
  if (State->Trace) {
    fprintf(State->Trace, "T %" PRIu64 " %s\n", Slot->Tid, Slot->Abs.c_str());
    fprintf(State->Trace, "F %" PRIu64 " %" PRIu64 "\n", Parent->Tid,
            Slot->Tid);
  }
  // One record covers both lines: the observer expands it to T then F.
  if (State->Ring)
    ringEmit(dlf::ring::RecordKind::ThreadFork, Parent->Tid, Slot->Tid,
             ringInternString(Site));
  State->unlock();

  auto *Wrapped = new TrampolineArg{Routine, Arg, Slot};
  int Rc = RealCreate(Thread, Attr, threadTrampoline, Wrapped);
  if (Rc != 0) {
    // The slot stays registered (its tid and trace lines are already out);
    // it just never goes live.
    delete Wrapped;
  } else {
    // The handle is only meaningful to callers once we return, so binding
    // it after the real create cannot race a join on it.
    State->lock();
    State->JoinHandles[*Thread] = Slot->Tid;
    State->unlock();
  }
  return Rc;
}

int pthread_join(pthread_t Thread, void **Retval) {
  if (!RealJoin)
    RealJoin = reinterpret_cast<JoinFn>(dlsym(RTLD_NEXT, "pthread_join"));
  int Rc = RealJoin(Thread, Retval);
  if (Rc != 0 || !State || InInternal || analysisOff())
    return Rc;
  // A returned join is a happens-before edge: everything the joined thread
  // did is ordered before the joiner's next step. Without the J line the
  // race detector reports false positives on join-synchronized accesses.
  ThreadSlot *T = selfSlot();
  State->lock();
  auto It = State->JoinHandles.find(Thread);
  if (It != State->JoinHandles.end()) {
    uint64_t Child = It->second;
    State->JoinHandles.erase(It);
    if (State->Trace)
      fprintf(State->Trace, "J %" PRIu64 " %" PRIu64 "\n", T->Tid, Child);
    if (State->Ring)
      ringEmit(dlf::ring::RecordKind::Join, T->Tid, Child, 0);
  }
  State->unlock();
  return Rc;
}

// Shared-memory access hooks for the race detector. Programs (or test
// fixtures) declare these weak and call them around interesting accesses;
// without the preload library the weak reference is null and the calls are
// skipped, so instrumented code runs unmodified everywhere. No-ops unless
// both DLF_PRELOAD_TRACE and DLF_TRACE_ACCESSES are set.

void dlf_trace_read(const void *Addr, const char *Site) {
  recordAccess(Addr, Site, /*IsWrite=*/false, __builtin_return_address(0));
}

void dlf_trace_write(const void *Addr, const char *Site) {
  recordAccess(Addr, Site, /*IsWrite=*/true, __builtin_return_address(0));
}

} // extern "C"
