//===- faultinject/FaultInject.cpp - Deterministic fault injection --------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "faultinject/FaultInject.h"

#include "support/Env.h"
#include "support/Hash.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

using namespace dlf;
using namespace dlf::faultinject;

namespace {

/// The registry of injection sites and the actions each accepts. A null
/// action list means the site takes no action.
struct SiteInfo {
  const char *Name;
  const char *Actions; ///< Space-separated; first entry is the default.
};

const SiteInfo Sites[] = {
    {"journal.open", "enospc eio eacces"},
    {"journal.write", "enospc eio"},
    {"journal.fsync", "enospc eio"},
    {"journal.torn", nullptr},
    {"worker.spawn", "eagain enomem"},
    {"runner.kill", nullptr},
    {"child.crash", "abort segv kill exit"},
    {"child.hang", nullptr},
    {"sidecar.truncate", nullptr},
    {"sidecar.missing", nullptr},
    {"ring.write.halfslot", nullptr},
};

const SiteInfo *findSite(const std::string &Name) {
  for (const SiteInfo &S : Sites)
    if (Name == S.Name)
      return &S;
  return nullptr;
}

bool isChildSite(const std::string &Site) {
  return Site.rfind("child.", 0) == 0 || Site.rfind("sidecar.", 0) == 0;
}

bool actionAllowed(const SiteInfo &Site, const std::string &Action) {
  if (!Site.Actions)
    return false;
  // Space-separated word match.
  const char *P = Site.Actions;
  while (*P) {
    const char *End = std::strchr(P, ' ');
    size_t Len = End ? static_cast<size_t>(End - P) : std::strlen(P);
    if (Action.size() == Len && Action.compare(0, Len, P, Len) == 0)
      return true;
    P = End ? End + 1 : P + Len;
  }
  return false;
}

std::string knownSiteList() {
  std::string Out;
  for (const SiteInfo &S : Sites) {
    if (!Out.empty())
      Out += ", ";
    Out += S.Name;
  }
  return Out;
}

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t");
  return S.substr(B, E - B + 1);
}

/// Maps a probability clause to [0, 1) as a pure function of the plan seed,
/// the site name, and a stable key (hit index for parent sites, the packed
/// (cycle, rep) identity for child sites). Pure so decisions survive resume
/// and are identical across --jobs values.
double unitHash(uint64_t Seed, const std::string &Site, uint64_t Key) {
  Hasher128 H;
  H.add(Seed);
  H.add(Site.size());
  for (char Ch : Site)
    H.add(static_cast<unsigned char>(Ch));
  H.add(Key);
  return static_cast<double>(H.finish().Lo >> 11) * 0x1.0p-53;
}

uint64_t packCycleRep(uint64_t Cycle, uint64_t Rep) {
  return (Cycle << 32) ^ Rep;
}

bool parseProbability(const std::string &Text, double &Out) {
  if (Text.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Text.c_str(), &End);
  if (errno != 0 || End == Text.c_str() || *End != '\0')
    return false;
  if (!(V >= 0.0 && V <= 1.0))
    return false;
  Out = V;
  return true;
}

} // namespace

bool FaultPlan::parse(const std::string &Text, std::string *Error) {
  std::vector<FaultSpec> Parsed;
  uint64_t NewSeed = Seed;
  bool HaveSeed = false;

  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Sep = Text.find_first_of(";,", Pos);
    size_t End = Sep == std::string::npos ? Text.size() : Sep;
    std::string Clause = trim(Text.substr(Pos, End - Pos));
    Pos = Sep == std::string::npos ? Text.size() + 1 : Sep + 1;
    if (Clause.empty())
      continue;

    auto Fail = [&](const std::string &Why) {
      if (Error)
        *Error = "bad fault clause '" + Clause + "': " + Why;
      return false;
    };

    if (Clause.rfind("seed=", 0) == 0) {
      uint64_t V = 0;
      if (!parseUint64Strict(Clause.c_str() + 5, V))
        return Fail("seed must be a non-negative integer");
      NewSeed = V;
      HaveSeed = true;
      continue;
    }

    size_t At = Clause.find('@');
    if (At == std::string::npos)
      return Fail("expected site[:action]@trigger");

    std::string Left = trim(Clause.substr(0, At));
    std::string TriggerText = trim(Clause.substr(At + 1));

    FaultSpec Spec;
    size_t Colon = Left.find(':');
    Spec.Site = Colon == std::string::npos ? Left : trim(Left.substr(0, Colon));
    if (Colon != std::string::npos)
      Spec.Action = trim(Left.substr(Colon + 1));

    const SiteInfo *Info = findSite(Spec.Site);
    if (!Info)
      return Fail("unknown site '" + Spec.Site +
                  "' (known: " + knownSiteList() + ")");
    if (!Spec.Action.empty() && !actionAllowed(*Info, Spec.Action))
      return Fail("site " + Spec.Site + " does not take action '" +
                  Spec.Action + "'" +
                  (Info->Actions ? " (allowed: " + std::string(Info->Actions) +
                                       ")"
                                 : " (site takes no action)"));

    if (TriggerText == "always") {
      Spec.Kind = Trigger::Always;
    } else if (TriggerText.rfind("rep=", 0) == 0) {
      if (!isChildSite(Spec.Site))
        return Fail("rep= triggers only apply to child.* / sidecar.* sites");
      if (!parseUint64Strict(TriggerText.c_str() + 4, Spec.N))
        return Fail("rep= takes a non-negative integer");
      Spec.Kind = Trigger::Rep;
    } else if (TriggerText.rfind("p=", 0) == 0) {
      if (!parseProbability(TriggerText.substr(2), Spec.P))
        return Fail("p= takes a probability in [0, 1]");
      Spec.Kind = Trigger::Probability;
    } else {
      if (!parseUint64Strict(TriggerText.c_str(), Spec.N) || Spec.N == 0)
        return Fail("ordinal trigger must be a positive integer, rep=N, "
                    "p=F, or always");
      Spec.Kind = Trigger::Ordinal;
    }
    Parsed.push_back(std::move(Spec));
  }

  Specs.insert(Specs.end(), Parsed.begin(), Parsed.end());
  if (HaveSeed)
    Seed = NewSeed;
  return true;
}

FaultPlan FaultPlan::chaos(uint64_t Seed) {
  // A SplitMix64 stream keyed by the seed drives every parameter choice, so
  // the generated plan is a pure function of the seed.
  uint64_t X = Seed;
  auto Next = [&X] {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  };
  auto Unit = [&] {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  };

  FaultPlan P;
  P.Seed = Seed;

  auto Add = [&](const char *Site, const char *Action, double Prob) {
    FaultSpec S;
    S.Site = Site;
    S.Action = Action ? Action : "";
    S.Kind = Trigger::Probability;
    S.P = Prob;
    P.Specs.push_back(std::move(S));
  };

  static const char *CrashActions[] = {"abort", "segv", "exit"};
  Add("child.crash", CrashActions[Next() % 3], 0.03 + 0.07 * Unit());
  Add("child.hang", nullptr, 0.01 + 0.04 * Unit());
  Add("worker.spawn", "eagain", 0.01 + 0.04 * Unit());
  Add("sidecar.truncate", nullptr, 0.05 + 0.15 * Unit());
  if (Unit() < 0.5) {
    // Half the seeds also lose the journal partway through: a one-shot
    // fsync ENOSPC, which the runner must absorb by degrading to in-memory
    // results rather than aborting.
    FaultSpec S;
    S.Site = "journal.fsync";
    S.Action = "enospc";
    S.Kind = Trigger::Ordinal;
    S.N = 3 + Next() % 10;
    P.Specs.push_back(std::move(S));
  }
  return P;
}

std::string FaultPlan::describe() const {
  std::string Out;
  for (const FaultSpec &S : Specs) {
    if (!Out.empty())
      Out += ";";
    Out += S.Site;
    if (!S.Action.empty())
      Out += ":" + S.Action;
    char Buf[64];
    switch (S.Kind) {
    case Trigger::Ordinal:
      std::snprintf(Buf, sizeof(Buf), "@%llu",
                    static_cast<unsigned long long>(S.N));
      break;
    case Trigger::Rep:
      std::snprintf(Buf, sizeof(Buf), "@rep=%llu",
                    static_cast<unsigned long long>(S.N));
      break;
    case Trigger::Probability:
      std::snprintf(Buf, sizeof(Buf), "@p=%.6g", S.P);
      break;
    case Trigger::Always:
      std::snprintf(Buf, sizeof(Buf), "@always");
      break;
    }
    Out += Buf;
  }
  if (Seed != 0) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), ";seed=%llu",
                  static_cast<unsigned long long>(Seed));
    Out += Out.empty() ? Buf + 1 : Buf;
  }
  return Out;
}

bool FaultPlan::fires(const FaultSpec &Spec, uint64_t HitIndex) {
  switch (Spec.Kind) {
  case Trigger::Ordinal:
    return HitIndex == Spec.N;
  case Trigger::Always:
    return true;
  case Trigger::Probability:
    return unitHash(Seed, Spec.Site, HitIndex) < Spec.P;
  case Trigger::Rep:
    return false; // Rep triggers are resolved by childFaults only.
  }
  return false;
}

const FaultSpec *FaultPlan::hit(const std::string &Site) {
  uint64_t Index = ++Hits[Site];
  for (const FaultSpec &S : Specs)
    if (S.Site == Site && fires(S, Index))
      return &S;
  return nullptr;
}

ChildFaults FaultPlan::childFaults(uint64_t Cycle, uint64_t Rep,
                                   uint64_t Attempt) {
  ChildFaults CF;
  if (Specs.empty())
    return CF;
  // All child sites share one launch counter: `child.crash@3` means "the
  // third phase-2 attempt this runner launches".
  uint64_t Launch = ++Hits["child.launch"];
  for (const FaultSpec &S : Specs) {
    if (!isChildSite(S.Site))
      continue;
    bool IsSidecar = S.Site.rfind("sidecar.", 0) == 0;
    bool Fire = false;
    switch (S.Kind) {
    case Trigger::Ordinal:
      Fire = Launch == S.N;
      break;
    case Trigger::Always:
      Fire = true;
      break;
    case Trigger::Rep:
      // Crash/hang only on the first attempt, so the supervised same-seed
      // restart can complete the rep; sidecar faults stick to the rep.
      Fire = Rep == S.N && (IsSidecar || Attempt == 0);
      break;
    case Trigger::Probability:
      Fire = (IsSidecar || Attempt == 0) &&
             unitHash(Seed, S.Site, packCycleRep(Cycle, Rep)) < S.P;
      break;
    }
    if (!Fire)
      continue;
    if (S.Site == "child.crash" && CF.CrashAction.empty())
      CF.CrashAction = S.Action.empty() ? "abort" : S.Action;
    else if (S.Site == "child.hang")
      CF.Hang = true;
    else if (S.Site == "sidecar.truncate")
      CF.SidecarTruncate = true;
    else if (S.Site == "sidecar.missing")
      CF.SidecarMissing = true;
  }
  return CF;
}

namespace {

FaultPlan &globalPlan() {
  static FaultPlan *P = [] {
    auto *Plan = new FaultPlan();
    if (const char *Env = std::getenv("DLF_FAULTS")) {
      std::string Err;
      if (!Plan->parse(Env, &Err)) {
        std::fprintf(stderr, "dlf: ignoring DLF_FAULTS: %s\n", Err.c_str());
        *Plan = FaultPlan();
      }
    }
    return Plan;
  }();
  return *P;
}

/// Set once by applyChildFaults in campaign children; writeSidecar then
/// replays the parent's decision instead of consulting the inherited plan.
bool GChildContext = false;
int GSidecarFault = 0;

int actionErrno(const std::string &Action, int Default) {
  if (Action == "enospc")
    return ENOSPC;
  if (Action == "eio")
    return EIO;
  if (Action == "eacces")
    return EACCES;
  if (Action == "eagain")
    return EAGAIN;
  if (Action == "enomem")
    return ENOMEM;
  return Default;
}

} // namespace

FaultPlan &faultinject::plan() { return globalPlan(); }

void faultinject::setPlan(FaultPlan P) { globalPlan() = std::move(P); }

bool faultinject::enabled() { return !globalPlan().empty(); }

int faultinject::failErrno(const char *Site, int DefaultErrno) {
  if (!enabled())
    return 0;
  const FaultSpec *S = globalPlan().hit(Site);
  return S ? actionErrno(S->Action, DefaultErrno) : 0;
}

bool faultinject::fires(const char *Site) {
  if (!enabled())
    return false;
  return globalPlan().hit(Site) != nullptr;
}

void faultinject::applyChildFaults(const ChildFaults &CF) {
  GChildContext = true;
  GSidecarFault = CF.SidecarMissing ? 2 : (CF.SidecarTruncate ? 1 : 0);
  if (!CF.CrashAction.empty()) {
    if (CF.CrashAction == "segv")
      ::raise(SIGSEGV);
    else if (CF.CrashAction == "kill")
      ::raise(SIGKILL);
    else if (CF.CrashAction == "exit")
      ::_exit(21);
    else
      std::abort();
  }
  if (CF.Hang)
    for (;;)
      ::pause(); // The sandbox watchdog's SIGTERM/SIGKILL ends this.
}

int faultinject::sidecarWriteFault() {
  if (GChildContext)
    return GSidecarFault;
  if (!enabled())
    return 0;
  if (globalPlan().hit("sidecar.missing"))
    return 2;
  if (globalPlan().hit("sidecar.truncate"))
    return 1;
  return 0;
}
