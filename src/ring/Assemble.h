//===- ring/Assemble.h - Ring records to trace events -----------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observer-side model rebuilder: turns the raw, sequence-merged ring
/// records (ring/Ring.h) into the same analysis::TraceEvent stream the
/// in-process text writer would have produced for the same execution.
///
/// The ring writer deliberately keeps no model — it emits one record per
/// interposed call, carrying only raw identities (pthread object address,
/// interned call-site id, thread id). Everything the text path computes
/// inline under its state lock is reconstructed here instead:
///
///  * dense lock / condvar / object ids, assigned at first sight;
///  * "site#n" abstractions via the same shared per-site occurrence
///    counter the preload's bumpSite uses;
///  * mutex recursion collapse (footnote 2: only 0->1 acquires and 1->0
///    releases are events);
///  * rwlock unlock side resolution (pthread_rwlock_unlock does not say
///    which side it releases — the owner/reader registry does);
///  * releases of locks whose acquire was never observed are dropped, the
///    text path's pre-init passthrough behavior.
///
/// In combined mode (DLF_RING alongside DLF_PRELOAD_TRACE) the writer
/// mirrors records inside the same critical sections that write the text
/// lines, including the LockSeen/CondSeen first-sight markers, so this
/// reconstruction yields an event stream identical to parsing the text
/// trace — the equivalence the CI tier asserts.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RING_ASSEMBLE_H
#define DLF_RING_ASSEMBLE_H

#include "analysis/Trace.h"
#include "ring/Ring.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace dlf {
namespace ring {

class Assembler {
public:
  /// \p Reader resolves interned site ids; it must outlive the assembler.
  explicit Assembler(const RingReader &Reader) : Reader(Reader) {}

  /// Feeds records (already merged in ascending sequence order) and appends
  /// the reconstructed events to \p Out. Stateful: feed each record once,
  /// in order, across calls.
  void feed(const std::vector<Record> &Records,
            std::vector<analysis::TraceEvent> &Out);

  /// Records skipped because their kind was unknown (version skew).
  uint64_t unknownKindRecords() const { return UnknownKinds; }

private:
  struct LockState {
    uint64_t Id = 0;
    uint64_t OwnerTid = 0;
    unsigned Recursion = 0;
    std::vector<uint64_t> ReaderTids;
  };

  const std::string &siteText(uint32_t Id);
  std::string bumpSite(const std::string &Site);
  /// First-sight lock registration (emits the LockNew event).
  LockState &lockAt(uint64_t Addr, uint32_t Site,
                    std::vector<analysis::TraceEvent> &Out);
  uint64_t condId(uint64_t Addr);

  const RingReader &Reader;
  std::unordered_map<uint32_t, std::string> SiteCache;
  std::unordered_map<uint64_t, LockState> Locks;
  std::unordered_map<uint64_t, uint64_t> Conds;
  std::unordered_map<uint64_t, uint64_t> Objects;
  std::unordered_map<std::string, uint64_t> SiteCounts;
  uint64_t NextLockId = 1;
  uint64_t NextCondId = 1;
  uint64_t NextObjectId = 1;
  uint64_t UnknownKinds = 0;
};

} // namespace ring
} // namespace dlf

#endif // DLF_RING_ASSEMBLE_H
