//===- ring/Assemble.cpp - Ring records to trace events ---------------------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ring/Assemble.h"

#include <utility>

namespace dlf {
namespace ring {

namespace {

void push(std::vector<analysis::TraceEvent> &Out, analysis::TraceEvent::Kind K,
          uint64_t A, uint64_t B = 0, std::string Text = std::string()) {
  analysis::TraceEvent E;
  E.K = K;
  E.A = A;
  E.B = B;
  E.Text = std::move(Text);
  Out.push_back(std::move(E));
}

} // namespace

const std::string &Assembler::siteText(uint32_t Id) {
  auto It = SiteCache.find(Id);
  if (It != SiteCache.end())
    return It->second;
  std::string Name = Reader.siteName(Id);
  if (Name.empty())
    Name = "unknown"; // id 0: the writer's string table overflowed
  return SiteCache.emplace(Id, std::move(Name)).first->second;
}

std::string Assembler::bumpSite(const std::string &Site) {
  // Same scheme as the preload's bumpSite: occurrences of one static site
  // count up, so distinct dynamic instances get distinct abstractions.
  uint64_t N = ++SiteCounts[Site];
  return Site + "#" + std::to_string(N);
}

Assembler::LockState &Assembler::lockAt(uint64_t Addr, uint32_t Site,
                                        std::vector<analysis::TraceEvent> &Out) {
  auto It = Locks.find(Addr);
  if (It != Locks.end())
    return It->second;
  LockState L;
  L.Id = NextLockId++;
  It = Locks.emplace(Addr, std::move(L)).first;
  push(Out, analysis::TraceEvent::Kind::LockNew, It->second.Id, 0,
       bumpSite(siteText(Site)));
  return It->second;
}

uint64_t Assembler::condId(uint64_t Addr) {
  auto [It, Inserted] = Conds.try_emplace(Addr, NextCondId);
  if (Inserted)
    ++NextCondId;
  return It->second;
}

void Assembler::feed(const std::vector<Record> &Records,
                     std::vector<analysis::TraceEvent> &Out) {
  using K = analysis::TraceEvent::Kind;
  for (const Record &R : Records) {
    switch (static_cast<RecordKind>(R.Kind)) {
    case RecordKind::ThreadSelf:
      push(Out, K::ThreadNew, R.Tid, 0, bumpSite(siteText(R.Site)));
      break;

    case RecordKind::ThreadFork:
      // Addr carries the child tid; the T line precedes the F line.
      push(Out, K::ThreadNew, R.Addr, 0, bumpSite(siteText(R.Site)));
      push(Out, K::Fork, R.Tid, R.Addr);
      break;

    case RecordKind::LockSeen:
      (void)lockAt(R.Addr, R.Site, Out);
      break;

    case RecordKind::Acquire: {
      LockState &L = lockAt(R.Addr, R.Site, Out);
      if (L.OwnerTid == R.Tid) {
        // Ring-only mode carries every acquire; collapse recursion the way
        // the in-process model does (footnote 2). Combined mode pre-filters
        // reentrant acquires, so this branch never fires there.
        ++L.Recursion;
        break;
      }
      L.OwnerTid = R.Tid;
      L.Recursion = 1;
      push(Out, K::Acquire, R.Tid, L.Id, siteText(R.Site));
      break;
    }

    case RecordKind::Release: {
      auto It = Locks.find(R.Addr);
      if (It == Locks.end() || It->second.OwnerTid != R.Tid)
        break; // acquire never observed — the text path's passthrough
      LockState &L = It->second;
      if (L.Recursion > 1) {
        --L.Recursion;
        break;
      }
      L.OwnerTid = 0;
      L.Recursion = 0;
      push(Out, K::Release, R.Tid, L.Id);
      break;
    }

    case RecordKind::SharedAcquire: {
      LockState &L = lockAt(R.Addr, R.Site, Out);
      L.ReaderTids.push_back(R.Tid);
      push(Out, K::SharedAcquire, R.Tid, L.Id, siteText(R.Site));
      break;
    }

    case RecordKind::RwUnlock: {
      // pthread_rwlock_unlock does not say which side it releases; resolve
      // from the reconstructed owner/reader registry, exactly like the
      // in-process model does.
      auto It = Locks.find(R.Addr);
      if (It == Locks.end())
        break;
      LockState &L = It->second;
      if (L.OwnerTid == R.Tid) {
        L.OwnerTid = 0;
        L.Recursion = 0;
        push(Out, K::Release, R.Tid, L.Id);
        break;
      }
      for (size_t I = 0; I != L.ReaderTids.size(); ++I) {
        if (L.ReaderTids[I] == R.Tid) {
          L.ReaderTids.erase(L.ReaderTids.begin() + static_cast<long>(I));
          push(Out, K::SharedRelease, R.Tid, L.Id);
          break;
        }
      }
      break;
    }

    case RecordKind::TryProbe: {
      LockState &L = lockAt(R.Addr, R.Site, Out);
      push(Out, K::TryProbe, R.Tid, L.Id, siteText(R.Site));
      break;
    }

    case RecordKind::CondSeen:
      (void)condId(R.Addr);
      break;

    case RecordKind::CondNotify:
      push(Out, K::CondNotify, R.Tid, condId(R.Addr));
      break;

    case RecordKind::CondWake:
      push(Out, K::CondWake, R.Tid, condId(R.Addr));
      break;

    case RecordKind::LockDestroy:
      // The address binding ends; a later lock at the same address is a new
      // lock with a new id.
      Locks.erase(R.Addr);
      break;

    case RecordKind::AccessRead:
    case RecordKind::AccessWrite: {
      auto It = Objects.find(R.Addr);
      if (It == Objects.end()) {
        It = Objects.emplace(R.Addr, NextObjectId++).first;
        push(Out, K::ObjectNew, It->second, 0, bumpSite(siteText(R.Site)));
      }
      push(Out,
           static_cast<RecordKind>(R.Kind) == RecordKind::AccessWrite
               ? K::Write
               : K::Read,
           R.Tid, It->second, siteText(R.Site));
      break;
    }

    case RecordKind::Join:
      // Addr carries the joined (child) tid, mirroring ThreadFork.
      push(Out, K::Join, R.Tid, R.Addr);
      break;

    case RecordKind::Invalid:
    default:
      ++UnknownKinds; // version skew: count, never crash the observer
      break;
    }
  }
}

} // namespace ring
} // namespace dlf
