//===- ring/Ring.h - Lock-free shared-memory event ring ---------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The out-of-process observation transport (DESIGN.md §13): a shared-memory
/// ring the LD_PRELOAD interposer writes fixed-size binary event records
/// into, and a sidecar observer process (`dlf-observe`) drains, following
/// OrderLab's orbit model — all analysis cost moves out of the target
/// process, leaving the hot path a hard budget of one ring write per event.
///
/// Layout of the mapping (one file or memfd, created by whichever side
/// starts first):
///
///   RingHeader | StringTable | ShardCtl[Shards] | Slot[Shards * Slots]
///
/// * Per-thread SPSC shards. Each registered thread claims one shard for
///   its lifetime (a free-list of ShardCtl::Busy flags); shard 0 is the
///   designated overflow shard, shared by threads that arrive after the
///   pool is exhausted and serialized by a tiny spinlock. Everywhere else
///   there is exactly one writer and one reader per shard, so the hot path
///   is wait-free: no CAS, no lock, no syscall.
///
/// * 32-byte slots: an 8-byte seqlock stamp plus a 24-byte Record. The
///   stamp encodes the record's global sequence number and a phase
///   (claimed / in-progress / complete), so a reader can (a) detect a torn
///   or half-written slot by re-reading the stamp after copying the
///   payload, and (b) learn the sequence number of a record that is still
///   being written (the merge frontier below).
///
/// * Cached head/tail. The writer refreshes its private copy of the
///   reader's Tail only when the ring looks full, and the reader refreshes
///   its private copy of Head only when it looks empty — steady-state
///   traffic touches no cross-core cache line except the slots themselves.
///
/// * Overflow drops instead of blocking. A full shard increments a drop
///   counter and the event is lost; the target never stalls on a slow (or
///   absent) observer. Drops are counted per shard and surfaced through
///   telemetry (dlf_ring_dropped_total) and the observer's report.
///
/// * Monotonic global sequence numbers. Every record carries a sequence
///   from a single fetch-add counter in the header; the observer merges
///   shards by sorting on it. Causal safety: a record that happens-before
///   another (release before acquire, notify before wake, create before
///   first child event) is always *published* before the later record is
///   even claimed — the interposer writes source-side records before the
///   real operation and sink-side records after it — so feeding records in
///   sequence order below the safe frontier (RingReader::drainPass) never
///   reorders a cause after its effect.
///
/// This header (and Ring.cpp) depends only on the standard library and
/// POSIX: it is compiled both into libdlf and into the self-contained
/// LD_PRELOAD DSO, which must not drag in libdlf.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RING_RING_H
#define DLF_RING_RING_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace dlf {
namespace ring {

/// Environment variable: where the event ring lives. Either a filesystem
/// path (the writer creates/truncates it; put it on tmpfs for zero disk
/// I/O) or "fd:<n>" for a pre-created memfd inherited from `dlf-observe`.
inline constexpr const char *RingEnvVar = "DLF_RING";

/// Environment variables overriding the default geometry (powers of two).
inline constexpr const char *RingShardsEnvVar = "DLF_RING_SHARDS";
inline constexpr const char *RingSlotsEnvVar = "DLF_RING_SLOTS";

inline constexpr uint64_t RingMagic = 0x31474e4952464c44ull; // "DLFRING1"
inline constexpr uint32_t RingVersion = 1;

inline constexpr uint32_t DefaultShards = 64;
inline constexpr uint32_t DefaultSlotsPerShard = 4096;
inline constexpr uint32_t MaxShards = 512;
inline constexpr uint32_t MaxSlotsPerShard = 1u << 20;

/// String-table capacity: interned site strings ("symbol+0xoff"). Sites
/// are interned once per unique call site, so 4096 entries cover any
/// realistic target; overflow degrades to site id 0 ("site-overflow").
inline constexpr uint32_t MaxSites = 4096;
inline constexpr uint32_t SiteDataCap = 256 * 1024;

/// What one ring record describes. Raw events only: the observer rebuilds
/// the model (dense lock ids, recursion collapse, rwlock unlock sides,
/// "site#n" abstractions) that the in-process text writer computes inline,
/// so the hot path carries no bookkeeping.
enum class RecordKind : uint16_t {
  Invalid = 0,
  ThreadSelf,    ///< Unregistered thread registered itself (Site: "main"...)
  ThreadFork,    ///< pthread_create: Addr = child tid, Site = create site
  LockSeen,      ///< Combined mode only: mirrors the M line's first-sight
                 ///< point so the observer assigns lock ids in text order
  Acquire,       ///< Exclusive acquire executed (mutex or rwlock write side)
  Release,       ///< Mutex release (ring-only mode does not collapse
                 ///< recursion on the writer side; the observer does)
  SharedAcquire, ///< rwlock read side acquired
  RwUnlock,      ///< rwlock unlocked (side resolved by the observer)
  TryProbe,      ///< failed trylock: asked and bailed out, no wait-for edge
  CondSeen,      ///< Combined mode only: condvar first sight (id assignment)
  CondNotify,    ///< cond signal/broadcast (Addr = condvar address)
  CondWake,      ///< cond waiter resumed after a notify
  LockDestroy,   ///< mutex/rwlock destroyed: the address binding ends
  AccessRead,    ///< opt-in shared-memory read (Addr = object address)
  AccessWrite,   ///< opt-in shared-memory write
  Join,          ///< pthread_join returned: Addr = joined (child) tid
};

/// One 24-byte event payload. Tid is the dense preload tid (threads beyond
/// 65535 are dropped with a counter — see RingWriter::write).
struct Record {
  uint64_t Seq = 0;  ///< Global sequence (also encoded in the slot stamp).
  uint64_t Addr = 0; ///< Lock/cond/object address, or child tid (ThreadFork).
  uint32_t Site = 0; ///< Interned site id (0 = none/overflow).
  uint16_t Kind = 0; ///< RecordKind.
  uint16_t Tid = 0;  ///< Writer thread id.
};
static_assert(sizeof(Record) == 24, "records are 24-byte payloads");

/// Slot stamp encoding (one atomic word per slot):
///   0                  never written
///   StampClaimed (1)   claimed, sequence not assigned yet (transient)
///   ((Seq+1)<<2) | 1   in-progress: payload being written, Seq known
///   ((Seq+1)<<2) | 2   complete: payload valid
inline constexpr uint64_t StampClaimed = 1;
inline constexpr uint64_t stampInProgress(uint64_t Seq) {
  return ((Seq + 1) << 2) | 1;
}
inline constexpr uint64_t stampComplete(uint64_t Seq) {
  return ((Seq + 1) << 2) | 2;
}
inline constexpr bool stampHasSeq(uint64_t S) { return (S >> 2) != 0; }
inline constexpr uint64_t stampSeq(uint64_t S) { return (S >> 2) - 1; }
inline constexpr unsigned stampPhase(uint64_t S) {
  return static_cast<unsigned>(S & 3);
}

struct Slot {
  std::atomic<uint64_t> Stamp;
  Record R;
};
static_assert(sizeof(Slot) == 32, "one slot is one 32-byte record");

/// Shared-memory header. All cross-process state is std::atomic on the
/// mapping (lock-free on every supported target; checked in Ring.cpp).
struct RingHeader {
  uint64_t Magic = 0;
  uint32_t Version = 0;
  uint32_t ShardCount = 0;
  uint32_t SlotsPerShard = 0;
  uint32_t RecordSize = 0;
  uint64_t TotalBytes = 0;
  /// Single global sequence counter; one fetch-add per record is the only
  /// cross-shard synchronization on the write path.
  std::atomic<uint64_t> GlobalSeq{0};
  /// Pid of the writer process (0 until a writer attaches) and its
  /// done-flag (set by the preload destructor).
  std::atomic<uint32_t> WriterPid{0};
  std::atomic<uint32_t> Done{0};
  /// Records dropped because the writer tid exceeded the 16-bit record
  /// field (kept here, not per shard: it is a property of the process).
  std::atomic<uint64_t> TidOverflowDrops{0};
};

struct SiteEntry {
  uint32_t Off = 0;
  uint32_t Len = 0;
};

/// Append-only interned-string table. Writers append under an in-process
/// mutex (all writers live in the target); readers snapshot Count with
/// acquire loads — entries below it are immutable.
struct StringTable {
  std::atomic<uint32_t> Count{0};
  std::atomic<uint32_t> DataUsed{0};
  SiteEntry Entries[MaxSites];
  char Data[SiteDataCap];
};

/// Per-shard control block: one writer-owned cache line and one
/// reader-owned cache line, so neither side's steady-state writes ping-pong
/// the other's.
struct ShardCtl {
  // -- writer line --
  std::atomic<uint64_t> Head{0};  ///< Records published (reader-visible).
  std::atomic<uint64_t> Drops{0}; ///< Records lost to overflow.
  std::atomic<uint32_t> Busy{0};  ///< Free-list flag / shard-0 spinlock.
  uint32_t Pad0 = 0;
  char Pad1[64 - 2 * sizeof(uint64_t) - 2 * sizeof(uint32_t)];
  // -- reader line --
  std::atomic<uint64_t> Tail{0}; ///< Records consumed (writer-visible).
  char Pad2[64 - sizeof(uint64_t)];
};
static_assert(sizeof(ShardCtl) == 128, "two cache lines per shard");

/// Geometry + offsets of a mapping; derived from the header.
struct RingGeometry {
  uint32_t Shards = DefaultShards;
  uint32_t Slots = DefaultSlotsPerShard;
  size_t totalBytes() const;
  size_t stringTableOff() const;
  size_t shardCtlOff() const;
  size_t slotsOff() const;
};

/// DLF_RING_SHARDS / DLF_RING_SLOTS, clamped and rounded up to a power of
/// two; the defaults when unset or unparsable.
uint32_t shardsFromEnv();
uint32_t slotsFromEnv();

/// Writer-side per-thread shard handle. CachedTail and the private head
/// mirror live here (in the writer process, not the mapping) so the hot
/// path reads no reader-owned shared line until the ring looks full.
struct ShardHandle {
  uint32_t Index = 0;
  bool SharedShard = false; ///< Shard 0: claim serialized by the spinlock.
  uint64_t LocalHead = 0;
  uint64_t CachedTail = 0;
};

/// The writer side, living inside the target process. Thread-safe: every
/// registered thread holds its own ShardHandle; interning and shard
/// claiming take an in-process mutex (both are once-per-thread or
/// once-per-site cold paths).
class RingWriter {
public:
  /// Creates (or re-initializes) the ring at \p Path. An existing file is
  /// reused only when it is a valid ring with no writer yet (the
  /// dlf-observe launch handshake); anything else is truncated and
  /// re-created. nullptr + \p Err on failure.
  static RingWriter *create(const std::string &Path, uint32_t Shards,
                            uint32_t Slots, std::string *Err);

  /// Attaches to an already-initialized ring through an inherited file
  /// descriptor (the memfd handshake: DLF_RING=fd:<n>).
  static RingWriter *attachFd(int Fd, std::string *Err);

  /// Opens from a DLF_RING value: "fd:<n>" attaches to an inherited
  /// descriptor, anything else is a path for create().
  static RingWriter *openSpec(const std::string &Spec, uint32_t Shards,
                              uint32_t Slots, std::string *Err);

  ~RingWriter();
  RingWriter(const RingWriter &) = delete;
  RingWriter &operator=(const RingWriter &) = delete;

  /// Claims a shard for the calling thread. Exclusive while any remain,
  /// else the shared overflow shard 0. Never fails.
  ShardHandle claimShard();
  /// Returns an exclusive shard to the free list (thread exit).
  void releaseShard(ShardHandle &H);

  /// The hot path: one fixed-size record, wait-free, drop-on-overflow.
  /// Returns false when the record was dropped (shard full, or \p Tid does
  /// not fit the 16-bit record field). \p Occupancy (optional) receives
  /// the shard occupancy observed at write time, for telemetry.
  bool write(ShardHandle &H, RecordKind Kind, uint32_t Tid, uint64_t Addr,
             uint32_t Site, uint64_t *Occupancy = nullptr);

  /// Interns \p Site (cold: once per unique call site). 0 on overflow.
  uint32_t internSite(const std::string &Site);

  /// Marks the stream finished (preload destructor).
  void markDone();

  uint64_t dropsTotal() const;
  const RingHeader *header() const { return Hdr; }
  uint32_t shardCount() const { return Geom.Shards; }

private:
  RingWriter() = default;
  static RingWriter *fromMapping(void *Mem, size_t Bytes, int Fd,
                                 std::string *Err);

  void *Mem = nullptr;
  size_t Bytes = 0;
  int Fd = -1;
  RingHeader *Hdr = nullptr;
  StringTable *Sites = nullptr;
  ShardCtl *Ctl = nullptr;
  Slot *Slots = nullptr;
  RingGeometry Geom;
  /// In-process writer state that must not live in the shared mapping —
  /// and must be per-instance, not process-global: a second writer in the
  /// same process (tests, or a re-opened ring) would otherwise satisfy
  /// interning from another ring's cache without ever writing the string
  /// into its own table.
  std::mutex LocalMu;
  std::unordered_map<std::string, uint32_t> SiteIds;
};

/// One drained record plus bookkeeping the observer reports.
struct DrainStats {
  uint64_t Drained = 0;       ///< Records handed to the caller so far.
  uint64_t Torn = 0;          ///< Slots whose stamp changed under the read.
  uint64_t Corrupt = 0;       ///< Stamp/payload sequence mismatches.
  uint64_t HalfWritten = 0;   ///< In-flight slots abandoned by a dead writer.
  uint64_t HeldBack = 0;      ///< Records buffered above the safe frontier.
  uint64_t Passes = 0;        ///< drainPass calls.
  uint64_t StalledPasses = 0; ///< Passes that saw a claim without a seq yet.
};

/// The reader side, living inside the observer process. Single-threaded.
class RingReader {
public:
  /// Maps an existing ring at \p Path; fails (nullptr + \p Err) unless the
  /// header validates. Use attachFd for a memfd the observer created.
  static RingReader *attach(const std::string &Path, std::string *Err);
  static RingReader *attachFd(int Fd, std::string *Err);

  /// Creates and initializes a ring on an anonymous memfd, returning the fd
  /// (for DLF_RING=fd:<n> inheritance) through \p FdOut. nullptr on
  /// failure (e.g. no memfd_create), with \p Err set.
  static RingReader *createMemfd(uint32_t Shards, uint32_t Slots, int *FdOut,
                                 std::string *Err);

  ~RingReader();
  RingReader(const RingReader &) = delete;
  RingReader &operator=(const RingReader &) = delete;

  /// One merge pass: drains every shard, then appends to \p Out — in
  /// ascending sequence order — every buffered record below the safe
  /// frontier (the smallest sequence number that could still appear in a
  /// not-yet-drained slot). Records above the frontier stay buffered for a
  /// later pass. Returns true if any record was appended.
  bool drainPass(std::vector<Record> &Out);

  /// Final drain once the writer is done or dead: drains what remains,
  /// counts abandoned in-flight slots as half-written, and flushes the
  /// entire hold-back buffer in sequence order.
  void finishDrain(std::vector<Record> &Out);

  bool writerDone() const;
  uint32_t writerPid() const;
  /// Sum of the per-shard overflow drop counters (plus tid overflows).
  uint64_t dropsTotal() const;
  /// Records currently published but not yet consumed, across all shards
  /// (the occupancy the dlf_ring_occupancy histogram samples).
  uint64_t occupancy() const;

  const DrainStats &stats() const { return Stats; }
  /// Site string for an interned id ("" for 0/unknown).
  std::string siteName(uint32_t Id) const;
  const RingHeader *header() const { return Hdr; }

private:
  RingReader() = default;
  static RingReader *fromMapping(void *Mem, size_t Bytes, int Fd,
                                 std::string *Err);
  /// Drains published records of shard \p S into the hold-back buffer;
  /// returns this shard's contribution to the safe frontier, or UINT64_MAX
  /// when the shard constrains nothing. Sets \p Unknown when the shard has
  /// a claimed slot whose sequence is not visible yet.
  uint64_t drainShard(uint32_t S, bool *Unknown);

  void *Mem = nullptr;
  size_t Bytes = 0;
  int Fd = -1;
  bool OwnsFd = false;
  RingHeader *Hdr = nullptr;
  StringTable *Sites = nullptr;
  ShardCtl *Ctl = nullptr;
  Slot *Slots = nullptr;
  RingGeometry Geom;

  std::vector<uint64_t> Consumed;     ///< Per-shard consumed count (== Tail).
  std::vector<uint64_t> LastSeq;      ///< Highest sequence drained per shard.
  std::vector<Record> HoldBack;       ///< Min-heap on Seq.
  DrainStats Stats;
};

} // namespace ring
} // namespace dlf

#endif // DLF_RING_RING_H
