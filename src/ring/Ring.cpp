//===- ring/Ring.cpp - Lock-free shared-memory event ring -----------------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ring/Ring.h"

#include "faultinject/FaultInject.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace dlf {
namespace ring {

static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "the ring header lives in shared memory");
static_assert(std::atomic<uint32_t>::is_always_lock_free,
              "the ring header lives in shared memory");

//===----------------------------------------------------------------------===//
// Geometry
//===----------------------------------------------------------------------===//

static size_t alignUp(size_t N, size_t A) { return (N + A - 1) & ~(A - 1); }

size_t RingGeometry::stringTableOff() const {
  return alignUp(sizeof(RingHeader), 64);
}
size_t RingGeometry::shardCtlOff() const {
  return alignUp(stringTableOff() + sizeof(StringTable), 64);
}
size_t RingGeometry::slotsOff() const {
  return alignUp(shardCtlOff() + size_t(Shards) * sizeof(ShardCtl), 64);
}
size_t RingGeometry::totalBytes() const {
  return slotsOff() + size_t(Shards) * Slots * sizeof(Slot);
}

static uint32_t roundPow2(uint32_t N) {
  uint32_t P = 1;
  while (P < N)
    P <<= 1;
  return P;
}

static uint32_t geomFromEnv(const char *Var, uint32_t Default, uint32_t Min,
                            uint32_t Max) {
  const char *Raw = ::getenv(Var);
  if (!Raw || !*Raw)
    return Default;
  char *End = nullptr;
  errno = 0;
  unsigned long V = ::strtoul(Raw, &End, 10);
  if (errno != 0 || !End || *End != '\0' || V == 0)
    return Default;
  uint32_t N = roundPow2(static_cast<uint32_t>(V > Max ? Max : V));
  if (N < Min)
    N = Min;
  if (N > Max)
    N = Max;
  return N;
}

uint32_t shardsFromEnv() {
  // At least two shards: shard 0 is reserved for overflow threads.
  return geomFromEnv(RingShardsEnvVar, DefaultShards, 2, MaxShards);
}
uint32_t slotsFromEnv() {
  return geomFromEnv(RingSlotsEnvVar, DefaultSlotsPerShard, 8,
                     MaxSlotsPerShard);
}

//===----------------------------------------------------------------------===//
// Mapping helpers
//===----------------------------------------------------------------------===//

static bool validHeader(const RingHeader *H, size_t MappedBytes,
                        std::string *Err) {
  if (H->Magic != RingMagic || H->Version != RingVersion) {
    if (Err)
      *Err = "not a DLF ring (bad magic/version)";
    return false;
  }
  if (H->ShardCount < 2 || H->ShardCount > MaxShards ||
      H->SlotsPerShard < 8 || H->SlotsPerShard > MaxSlotsPerShard ||
      (H->SlotsPerShard & (H->SlotsPerShard - 1)) != 0 ||
      H->RecordSize != sizeof(Slot)) {
    if (Err)
      *Err = "ring header has an impossible geometry";
    return false;
  }
  RingGeometry G;
  G.Shards = H->ShardCount;
  G.Slots = H->SlotsPerShard;
  if (H->TotalBytes != G.totalBytes() || MappedBytes < G.totalBytes()) {
    if (Err)
      *Err = "ring mapping is truncated";
    return false;
  }
  return true;
}

static void initMapping(void *Mem, const RingGeometry &G) {
  // The mapping is freshly zeroed (ftruncate-grown); all-zero bytes are the
  // correct representation for value 0 of every lock-free atomic here, so
  // initialization is just the non-zero header fields.
  auto *H = static_cast<RingHeader *>(Mem);
  H->Version = RingVersion;
  H->ShardCount = G.Shards;
  H->SlotsPerShard = G.Slots;
  H->RecordSize = sizeof(Slot);
  H->TotalBytes = G.totalBytes();
  // Publish the magic last: a reader that maps a half-initialized file sees
  // a bad magic, not a bad geometry.
  std::atomic_thread_fence(std::memory_order_release);
  H->Magic = RingMagic;
}

static void *mapFd(int Fd, size_t Bytes, std::string *Err) {
  void *Mem = ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE, MAP_SHARED, Fd,
                     0);
  if (Mem == MAP_FAILED) {
    if (Err)
      *Err = std::string("mmap: ") + std::strerror(errno);
    return nullptr;
  }
  return Mem;
}

//===----------------------------------------------------------------------===//
// RingWriter
//===----------------------------------------------------------------------===//

RingWriter *RingWriter::fromMapping(void *M, size_t B, int Fd,
                                    std::string *Err) {
  auto *H = static_cast<RingHeader *>(M);
  if (!validHeader(H, B, Err)) {
    ::munmap(M, B);
    return nullptr;
  }
  auto *W = new RingWriter();
  W->Mem = M;
  W->Bytes = B;
  W->Fd = Fd;
  W->Hdr = H;
  W->Geom.Shards = H->ShardCount;
  W->Geom.Slots = H->SlotsPerShard;
  W->Sites = reinterpret_cast<StringTable *>(static_cast<char *>(M) +
                                             W->Geom.stringTableOff());
  W->Ctl = reinterpret_cast<ShardCtl *>(static_cast<char *>(M) +
                                        W->Geom.shardCtlOff());
  W->Slots = reinterpret_cast<Slot *>(static_cast<char *>(M) +
                                      W->Geom.slotsOff());
  H->WriterPid.store(static_cast<uint32_t>(::getpid()),
                     std::memory_order_release);
  return W;
}

RingWriter *RingWriter::create(const std::string &Path, uint32_t Shards,
                               uint32_t Slots, std::string *Err) {
  if (Shards < 2 || Shards > MaxShards || Slots < 8 ||
      Slots > MaxSlotsPerShard || (Slots & (Slots - 1)) != 0) {
    if (Err)
      *Err = "bad ring geometry";
    return nullptr;
  }
  int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (Fd < 0) {
    if (Err)
      *Err = Path + ": " + std::strerror(errno);
    return nullptr;
  }

  // dlf-observe's launch handshake pre-creates the ring so it can attach
  // before the target starts; adopt such a file (valid ring, no writer yet)
  // instead of re-initializing it under the observer.
  struct stat St;
  if (::fstat(Fd, &St) == 0 &&
      St.st_size >= static_cast<off_t>(sizeof(RingHeader))) {
    void *Probe = mapFd(Fd, static_cast<size_t>(St.st_size), nullptr);
    if (Probe) {
      auto *H = static_cast<RingHeader *>(Probe);
      if (validHeader(H, static_cast<size_t>(St.st_size), nullptr) &&
          H->WriterPid.load(std::memory_order_acquire) == 0)
        return fromMapping(Probe, static_cast<size_t>(St.st_size), Fd, Err);
      ::munmap(Probe, static_cast<size_t>(St.st_size));
    }
  }

  RingGeometry G;
  G.Shards = Shards;
  G.Slots = Slots;
  size_t Total = G.totalBytes();
  // Shrink to zero first so a recycled file's stale contents cannot leak
  // into the fresh mapping.
  if (::ftruncate(Fd, 0) != 0 ||
      ::ftruncate(Fd, static_cast<off_t>(Total)) != 0) {
    if (Err)
      *Err = Path + ": ftruncate: " + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  void *M = mapFd(Fd, Total, Err);
  if (!M) {
    ::close(Fd);
    return nullptr;
  }
  initMapping(M, G);
  return fromMapping(M, Total, Fd, Err);
}

RingWriter *RingWriter::attachFd(int Fd, std::string *Err) {
  struct stat St;
  if (::fstat(Fd, &St) != 0 ||
      St.st_size < static_cast<off_t>(sizeof(RingHeader))) {
    if (Err)
      *Err = "DLF_RING fd is not a ring";
    return nullptr;
  }
  void *M = mapFd(Fd, static_cast<size_t>(St.st_size), Err);
  if (!M)
    return nullptr;
  return fromMapping(M, static_cast<size_t>(St.st_size), Fd, Err);
}

RingWriter *RingWriter::openSpec(const std::string &Spec, uint32_t Shards,
                                 uint32_t Slots, std::string *Err) {
  if (Spec.rfind("fd:", 0) == 0) {
    char *End = nullptr;
    errno = 0;
    long Fd = ::strtol(Spec.c_str() + 3, &End, 10);
    if (errno != 0 || !End || *End != '\0' || Fd < 0) {
      if (Err)
        *Err = "bad DLF_RING fd spec: " + Spec;
      return nullptr;
    }
    return attachFd(static_cast<int>(Fd), Err);
  }
  return create(Spec, Shards, Slots, Err);
}

RingWriter::~RingWriter() {
  if (Mem)
    ::munmap(Mem, Bytes);
  if (Fd >= 0)
    ::close(Fd);
}

ShardHandle RingWriter::claimShard() {
  std::lock_guard<std::mutex> G(LocalMu);
  for (uint32_t I = 1; I < Geom.Shards; ++I) {
    uint32_t Free = 0;
    if (Ctl[I].Busy.load(std::memory_order_relaxed) == 0 &&
        Ctl[I].Busy.compare_exchange_strong(Free, 1,
                                            std::memory_order_acq_rel)) {
      ShardHandle H;
      H.Index = I;
      H.SharedShard = false;
      // A reused shard (its previous owner exited) keeps its history; pick
      // up where the old head left off.
      H.LocalHead = Ctl[I].Head.load(std::memory_order_relaxed);
      H.CachedTail = Ctl[I].Tail.load(std::memory_order_acquire);
      return H;
    }
  }
  // Pool exhausted: fall back to the shared overflow shard, serialized per
  // write by its spinlock.
  ShardHandle H;
  H.Index = 0;
  H.SharedShard = true;
  return H;
}

void RingWriter::releaseShard(ShardHandle &H) {
  if (!H.SharedShard && H.Index != 0)
    Ctl[H.Index].Busy.store(0, std::memory_order_release);
  H.Index = 0;
  H.SharedShard = true;
}

bool RingWriter::write(ShardHandle &H, RecordKind Kind, uint32_t Tid,
                       uint64_t Addr, uint32_t Site, uint64_t *Occupancy) {
  if (Tid > 0xFFFF) {
    Hdr->TidOverflowDrops.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ShardCtl &C = Ctl[H.Index];
  if (H.SharedShard) {
    // Shard 0 has many writers; a tiny spinlock restores the SPSC
    // invariant. Only threads beyond the shard pool ever pay this.
    while (C.Busy.exchange(1, std::memory_order_acquire) != 0) {
    }
    H.LocalHead = C.Head.load(std::memory_order_relaxed);
    H.CachedTail = C.Tail.load(std::memory_order_relaxed);
  }

  if (H.LocalHead - H.CachedTail >= Geom.Slots) {
    // Looks full against the cached tail; refresh from the reader's line
    // (the only cross-core read on this path, and only when near-full).
    H.CachedTail = C.Tail.load(std::memory_order_acquire);
    if (H.LocalHead - H.CachedTail >= Geom.Slots) {
      C.Drops.fetch_add(1, std::memory_order_relaxed);
      if (Occupancy)
        *Occupancy = Geom.Slots;
      if (H.SharedShard)
        C.Busy.store(0, std::memory_order_release);
      return false;
    }
  }

  Slot &S =
      Slots[size_t(H.Index) * Geom.Slots + (H.LocalHead & (Geom.Slots - 1))];
  // Claim before taking a sequence number, seq_cst on both: the observer
  // snapshots GlobalSeq (S0) and then peeks this stamp; in the seq_cst
  // total order, a fetch-add ordered before the snapshot implies this
  // claim store is too, so a slot that still looks unclaimed cannot be
  // hiding a sequence below S0 (DESIGN.md §13.3).
  S.Stamp.store(StampClaimed, std::memory_order_seq_cst);
  uint64_t Seq = Hdr->GlobalSeq.fetch_add(1, std::memory_order_seq_cst);
  S.Stamp.store(stampInProgress(Seq), std::memory_order_relaxed);

  // Crash plane: die (from the ring's point of view) after claiming the
  // slot but before the payload — the observer must classify this slot as
  // half-written, not corrupt, and must not stall forever on it.
  if (faultinject::enabled() && faultinject::fires("ring.write.halfslot")) {
    if (H.SharedShard)
      C.Busy.store(0, std::memory_order_release);
    return true;
  }

  S.R.Seq = Seq;
  S.R.Addr = Addr;
  S.R.Site = Site;
  S.R.Kind = static_cast<uint16_t>(Kind);
  S.R.Tid = static_cast<uint16_t>(Tid);
  S.Stamp.store(stampComplete(Seq), std::memory_order_release);

  ++H.LocalHead;
  C.Head.store(H.LocalHead, std::memory_order_release);
  if (Occupancy)
    *Occupancy = H.LocalHead - H.CachedTail;
  if (H.SharedShard)
    C.Busy.store(0, std::memory_order_release);
  return true;
}

uint32_t RingWriter::internSite(const std::string &Site) {
  std::lock_guard<std::mutex> G(LocalMu);
  auto It = SiteIds.find(Site);
  if (It != SiteIds.end())
    return It->second;

  uint32_t N = Sites->Count.load(std::memory_order_relaxed);
  uint32_t Used = Sites->DataUsed.load(std::memory_order_relaxed);
  if (N >= MaxSites || Used + Site.size() > SiteDataCap) {
    SiteIds.emplace(Site, 0); // Overflow: degrade to "unknown site".
    return 0;
  }
  std::memcpy(Sites->Data + Used, Site.data(), Site.size());
  Sites->Entries[N].Off = Used;
  Sites->Entries[N].Len = static_cast<uint32_t>(Site.size());
  Sites->DataUsed.store(Used + static_cast<uint32_t>(Site.size()),
                        std::memory_order_relaxed);
  // Publish the entry by bumping Count last (readers acquire-load it and
  // never look past it).
  Sites->Count.store(N + 1, std::memory_order_release);
  uint32_t Id = N + 1; // Id 0 is reserved for "no site".
  SiteIds.emplace(Site, Id);
  return Id;
}

void RingWriter::markDone() { Hdr->Done.store(1, std::memory_order_release); }

uint64_t RingWriter::dropsTotal() const {
  uint64_t Total = Hdr->TidOverflowDrops.load(std::memory_order_relaxed);
  for (uint32_t I = 0; I < Geom.Shards; ++I)
    Total += Ctl[I].Drops.load(std::memory_order_relaxed);
  return Total;
}

//===----------------------------------------------------------------------===//
// RingReader
//===----------------------------------------------------------------------===//

RingReader *RingReader::fromMapping(void *M, size_t B, int Fd,
                                    std::string *Err) {
  auto *H = static_cast<RingHeader *>(M);
  if (!validHeader(H, B, Err)) {
    ::munmap(M, B);
    return nullptr;
  }
  auto *R = new RingReader();
  R->Mem = M;
  R->Bytes = B;
  R->Fd = Fd;
  R->Hdr = H;
  R->Geom.Shards = H->ShardCount;
  R->Geom.Slots = H->SlotsPerShard;
  R->Sites = reinterpret_cast<StringTable *>(static_cast<char *>(M) +
                                             R->Geom.stringTableOff());
  R->Ctl = reinterpret_cast<ShardCtl *>(static_cast<char *>(M) +
                                        R->Geom.shardCtlOff());
  R->Slots = reinterpret_cast<Slot *>(static_cast<char *>(M) +
                                      R->Geom.slotsOff());
  R->Consumed.resize(R->Geom.Shards, 0);
  R->LastSeq.resize(R->Geom.Shards, 0); // Stored as Seq+1; 0 = none yet.
  // Attaching mid-run: pick up from whatever the shards already consumed
  // (a previous observer) rather than re-reading overwritten slots.
  for (uint32_t I = 0; I < R->Geom.Shards; ++I)
    R->Consumed[I] = R->Ctl[I].Tail.load(std::memory_order_acquire);
  return R;
}

RingReader *RingReader::attach(const std::string &Path, std::string *Err) {
  int Fd = ::open(Path.c_str(), O_RDWR | O_CLOEXEC);
  if (Fd < 0) {
    if (Err)
      *Err = Path + ": " + std::strerror(errno);
    return nullptr;
  }
  struct stat St;
  if (::fstat(Fd, &St) != 0 ||
      St.st_size < static_cast<off_t>(sizeof(RingHeader))) {
    if (Err)
      *Err = Path + ": not a ring file";
    ::close(Fd);
    return nullptr;
  }
  void *M = mapFd(Fd, static_cast<size_t>(St.st_size), Err);
  if (!M) {
    ::close(Fd);
    return nullptr;
  }
  RingReader *R = fromMapping(M, static_cast<size_t>(St.st_size), Fd, Err);
  if (R)
    R->OwnsFd = true;
  return R;
}

RingReader *RingReader::attachFd(int Fd, std::string *Err) {
  struct stat St;
  if (::fstat(Fd, &St) != 0 ||
      St.st_size < static_cast<off_t>(sizeof(RingHeader))) {
    if (Err)
      *Err = "fd is not a ring";
    return nullptr;
  }
  void *M = mapFd(Fd, static_cast<size_t>(St.st_size), Err);
  if (!M)
    return nullptr;
  return fromMapping(M, static_cast<size_t>(St.st_size), Fd, Err);
}

RingReader *RingReader::createMemfd(uint32_t Shards, uint32_t Slots,
                                    int *FdOut, std::string *Err) {
  if (Shards < 2 || Shards > MaxShards || Slots < 8 ||
      Slots > MaxSlotsPerShard || (Slots & (Slots - 1)) != 0) {
    if (Err)
      *Err = "bad ring geometry";
    return nullptr;
  }
  // No MFD_CLOEXEC: the fd must survive exec into the target, which finds
  // it through DLF_RING=fd:<n>.
  int Fd = ::memfd_create("dlf-ring", 0);
  if (Fd < 0) {
    if (Err)
      *Err = std::string("memfd_create: ") + std::strerror(errno);
    return nullptr;
  }
  RingGeometry G;
  G.Shards = Shards;
  G.Slots = Slots;
  size_t Total = G.totalBytes();
  if (::ftruncate(Fd, static_cast<off_t>(Total)) != 0) {
    if (Err)
      *Err = std::string("ftruncate: ") + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  void *M = mapFd(Fd, Total, Err);
  if (!M) {
    ::close(Fd);
    return nullptr;
  }
  initMapping(M, G);
  RingReader *R = fromMapping(M, Total, Fd, Err);
  if (R && FdOut)
    *FdOut = Fd;
  return R;
}

RingReader::~RingReader() {
  if (Mem)
    ::munmap(Mem, Bytes);
  if (Fd >= 0 && OwnsFd)
    ::close(Fd);
}

bool RingReader::writerDone() const {
  return Hdr->Done.load(std::memory_order_acquire) != 0;
}

uint32_t RingReader::writerPid() const {
  return Hdr->WriterPid.load(std::memory_order_acquire);
}

uint64_t RingReader::dropsTotal() const {
  uint64_t Total = Hdr->TidOverflowDrops.load(std::memory_order_relaxed);
  for (uint32_t I = 0; I < Geom.Shards; ++I)
    Total += Ctl[I].Drops.load(std::memory_order_relaxed);
  return Total;
}

uint64_t RingReader::occupancy() const {
  uint64_t Total = 0;
  for (uint32_t I = 0; I < Geom.Shards; ++I) {
    uint64_t Head = Ctl[I].Head.load(std::memory_order_relaxed);
    uint64_t Tail = Ctl[I].Tail.load(std::memory_order_relaxed);
    if (Head > Tail)
      Total += Head - Tail;
  }
  return Total;
}

std::string RingReader::siteName(uint32_t Id) const {
  if (Id == 0)
    return "";
  uint32_t N = Sites->Count.load(std::memory_order_acquire);
  if (Id > N)
    return "";
  const SiteEntry &E = Sites->Entries[Id - 1];
  if (E.Off + E.Len > SiteDataCap)
    return "";
  return std::string(Sites->Data + E.Off, E.Len);
}

namespace {
struct SeqGreater {
  bool operator()(const Record &A, const Record &B) const {
    return A.Seq > B.Seq;
  }
};
} // namespace

uint64_t RingReader::drainShard(uint32_t S, bool *Unknown) {
  ShardCtl &C = Ctl[S];
  uint64_t Head = C.Head.load(std::memory_order_acquire);
  uint64_t Tail = Consumed[S];

  for (; Tail != Head; ++Tail) {
    Slot &Sl = Slots[size_t(S) * Geom.Slots + (Tail & (Geom.Slots - 1))];
    // Seqlock read: published slots are stable in a healthy run (the
    // writer cannot lap the reader past Tail), so the re-read only fires
    // on a corrupted mapping or a writer that died mid-slot.
    uint64_t S1 = Sl.Stamp.load(std::memory_order_acquire);
    Record R = Sl.R;
    std::atomic_thread_fence(std::memory_order_acquire);
    uint64_t S2 = Sl.Stamp.load(std::memory_order_relaxed);
    if (S1 != S2 || stampPhase(S1) == 1) {
      // Moved under us, or stably claimed/in-progress: a torn record (the
      // payload cannot be trusted), consumed but not believed.
      ++Stats.Torn;
      continue;
    }
    if (stampPhase(S1) != 2 || !stampHasSeq(S1) || stampSeq(S1) != R.Seq) {
      ++Stats.Corrupt;
      continue;
    }
    HoldBack.push_back(R);
    std::push_heap(HoldBack.begin(), HoldBack.end(), SeqGreater());
    LastSeq[S] = R.Seq + 1;
  }
  Consumed[S] = Tail;
  C.Tail.store(Tail, std::memory_order_release);

  // Merge frontier: peek the next unpublished slot. A claim marker with no
  // sequence yet means this shard might be about to publish any sequence
  // above its last one — hold the frontier there. A visible in-progress or
  // complete stamp names the pending sequence exactly. Anything else (empty
  // slot, or a stale stamp from the previous lap) constrains nothing:
  // future claims must take sequences at or above the S0 snapshot.
  uint64_t Peek =
      Slots[size_t(S) * Geom.Slots + (Head & (Geom.Slots - 1))].Stamp.load(
          std::memory_order_seq_cst);
  if (Peek == StampClaimed) {
    *Unknown = true;
    return LastSeq[S]; // Seq+1 of the last drained record; 0 if none.
  }
  if (stampHasSeq(Peek) && stampSeq(Peek) + 1 > LastSeq[S])
    return stampSeq(Peek);
  return UINT64_MAX;
}

bool RingReader::drainPass(std::vector<Record> &Out) {
  // Snapshot BEFORE scanning: every record claimed after this point has a
  // sequence >= S0, so S0 caps the frontier for slots that look empty.
  uint64_t S0 = Hdr->GlobalSeq.load(std::memory_order_seq_cst);
  uint64_t Safe = S0;
  bool Stalled = false;
  for (uint32_t S = 0; S < Geom.Shards; ++S) {
    bool Unknown = false;
    uint64_t Bound = drainShard(S, &Unknown);
    if (Bound < Safe)
      Safe = Bound;
    Stalled |= Unknown;
  }
  ++Stats.Passes;
  if (Stalled)
    ++Stats.StalledPasses;

  size_t Emitted = 0;
  while (!HoldBack.empty() && HoldBack.front().Seq < Safe) {
    std::pop_heap(HoldBack.begin(), HoldBack.end(), SeqGreater());
    Out.push_back(HoldBack.back());
    HoldBack.pop_back();
    ++Emitted;
  }
  Stats.Drained += Emitted;
  Stats.HeldBack = HoldBack.size();
  return Emitted != 0;
}

void RingReader::finishDrain(std::vector<Record> &Out) {
  std::vector<Record> Tmp;
  drainPass(Tmp);
  // The writer is done or dead: count in-flight slots it abandoned, then
  // release the whole hold-back buffer — no new sequences can appear.
  for (uint32_t S = 0; S < Geom.Shards; ++S) {
    uint64_t Head = Ctl[S].Head.load(std::memory_order_acquire);
    uint64_t Peek =
        Slots[size_t(S) * Geom.Slots + (Head & (Geom.Slots - 1))].Stamp.load(
            std::memory_order_acquire);
    if (Peek == StampClaimed ||
        (stampHasSeq(Peek) && stampPhase(Peek) == 1 &&
         stampSeq(Peek) + 1 > LastSeq[S]))
      ++Stats.HalfWritten;
  }
  // drainPass emitted everything below the frontier in ascending order;
  // heap pops release the rest (all above it) ascending too, so the
  // concatenation stays sorted by sequence.
  Stats.Drained += HoldBack.size();
  while (!HoldBack.empty()) {
    std::pop_heap(HoldBack.begin(), HoldBack.end(), SeqGreater());
    Tmp.push_back(HoldBack.back());
    HoldBack.pop_back();
  }
  Stats.HeldBack = 0;
  Out.insert(Out.end(), Tmp.begin(), Tmp.end());
}

} // namespace ring
} // namespace dlf
