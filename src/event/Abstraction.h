//===- event/Abstraction.h - Object abstraction values ---------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value type for object abstractions (paper §2.4). An abstraction
/// identifies "the same" object across executions by static program
/// information: if two dynamic objects in different executions are the same,
/// they must have equal abstractions. Three schemes are supported:
///
///  * Trivial          — every object has the empty abstraction.
///  * KObjectSensitive — absO_k(o) = the chain of allocation-site labels
///                       (c1, ..., ck) walking the CreationMap (§2.4.1).
///  * ExecutionIndex   — absI_k(o) = the top 2k elements of the creating
///                       thread's (site, count) call stack (§2.4.2).
///
/// An AbstractionSet carries all three for one object so that the fuzzer can
/// be configured per-variant without re-running Phase I.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_EVENT_ABSTRACTION_H
#define DLF_EVENT_ABSTRACTION_H

#include "event/Label.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dlf {

/// Which abstraction scheme a variant of DeadlockFuzzer matches on.
enum class AbstractionKind {
  Trivial,          ///< paper variant 3: "ignore abstraction"
  KObjectSensitive, ///< paper variant 1: k-object-sensitivity
  ExecutionIndex,   ///< paper variant 2: light-weight execution indexing
};

/// Returns a human-readable name for \p Kind.
const char *abstractionKindName(AbstractionKind Kind);

/// One abstraction value: an opaque sequence of 32-bit elements.
///
/// For KObjectSensitive the elements are raw label ids (c1..ck); for
/// ExecutionIndex they alternate label ids and occurrence counts
/// [c1, q1, ..., ck, qk]; for Trivial the sequence is empty. Equality is
/// element-wise, which is all the matching in Phase II needs.
struct Abstraction {
  std::vector<uint32_t> Elements;

  friend bool operator==(const Abstraction &A, const Abstraction &B) {
    return A.Elements == B.Elements;
  }
  friend bool operator!=(const Abstraction &A, const Abstraction &B) {
    return !(A == B);
  }

  /// Renders e.g. "[f.cpp:11 x3, f.cpp:6 x1]" for debugging and reports.
  /// \p PairedCounts selects the execution-indexing rendering.
  std::string toString(bool PairedCounts) const;
};

/// All three abstraction values for one dynamic object, computed eagerly at
/// its creation event.
struct AbstractionSet {
  Abstraction KObject;
  Abstraction Index;

  /// Selects the value used by the given scheme; Trivial yields a reference
  /// to a shared empty abstraction.
  const Abstraction &select(AbstractionKind Kind) const;
};

} // namespace dlf

namespace std {
template <> struct hash<dlf::Abstraction> {
  size_t operator()(const dlf::Abstraction &A) const {
    // FNV-1a over the element words.
    size_t H = 1469598103934665603ULL;
    for (uint32_t E : A.Elements) {
      H ^= E;
      H *= 1099511628211ULL;
    }
    return H;
  }
};
} // namespace std

#endif // DLF_EVENT_ABSTRACTION_H
