//===- event/VectorClock.h - Happens-before timestamps -----------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector clocks for the happens-before relation (Lamport). The paper's §1
/// discusses making dynamic deadlock detection precise by "taking the
/// happens-before relation into account" — at the cost of predictive
/// power. This implementation lets that trade be *measured*: the runtime
/// can track fork/join edges only (pruning provably infeasible cycles like
/// the §5.4 CachedThread pattern) or the full synchronization order
/// (release→acquire edges, which also orders away deadlocks that merely
/// *happened* not to overlap in the observed run).
///
/// A clock is a dense vector indexed by ThreadId (ids are small and
/// sequential per execution); missing entries read as zero.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_EVENT_VECTORCLOCK_H
#define DLF_EVENT_VECTORCLOCK_H

#include "event/Ids.h"

#include <cstdint>
#include <vector>

namespace dlf {

/// Component i holds the last-observed event count of thread id (i+1).
using VectorClock = std::vector<uint32_t>;

/// Advances \p Clock's own component for \p Self.
void vcTick(VectorClock &Clock, ThreadId Self);

/// Merges \p Other into \p Clock (pointwise maximum).
void vcJoin(VectorClock &Clock, const VectorClock &Other);

/// True when \p A ≤ \p B pointwise (A happens-before-or-equals B).
bool vcLeq(const VectorClock &A, const VectorClock &B);

/// How two clocks relate. Equal means pointwise-equal (ordered both ways);
/// NoInfo means at least one clock is empty and carries no information.
enum class VcOrder { Before, After, Equal, Concurrent, NoInfo };

/// Computes the ordering of \p A and \p B in one pass over both vectors
/// (vcLeq both ways walks them twice; the closure's happens-before filter
/// compares the same acquire pairs repeatedly and memoizes this).
VcOrder vcOrder(const VectorClock &A, const VectorClock &B);

/// True when neither clock is ordered before the other — the events are
/// concurrent. Empty clocks carry no information and are treated as
/// concurrent with everything.
bool vcConcurrent(const VectorClock &A, const VectorClock &B);

} // namespace dlf

#endif // DLF_EVENT_VECTORCLOCK_H
