//===- event/Label.h - Interned statement labels ----------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement labels. The paper identifies every dynamic instance of a
/// labeled program statement (`c : Acquire(l)`, `c : Call(m)`, ...) by its
/// static label `c`. In the Java implementation labels come from bytecode
/// instrumentation; here they are interned strings produced either by the
/// DLF_SITE() macro (file:line) or chosen by the substrate code
/// ("SyncList::addAll/outer"). Labels are stable across executions, which is
/// the property every abstraction scheme builds on.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_EVENT_LABEL_H
#define DLF_EVENT_LABEL_H

#include <cstdint>
#include <functional>
#include <string>

namespace dlf {

/// An interned statement label; equality and hashing are O(1).
///
/// Label 0 is the invalid/unknown label. Interning is process-global and
/// thread-safe: the same string always maps to the same Label in one
/// process, so labels recorded in Phase I compare equal to labels observed
/// in Phase II.
class Label {
public:
  constexpr Label() = default;

  /// Interns \p Text and returns its label. Thread-safe.
  static Label intern(const std::string &Text);

  /// Returns the interned text for this label ("<none>" for the invalid
  /// label). Thread-safe.
  const std::string &text() const;

  /// Returns the text for a raw label id (used when abstraction values carry
  /// raw ids). Thread-safe; returns "<none>" for out-of-range ids.
  static const std::string &textByRaw(uint32_t Raw);

  /// Rebuilds a Label from a raw id previously obtained via raw(). The id
  /// must come from this process's intern table.
  static Label fromRaw(uint32_t Raw) { return Label(Raw); }

  constexpr bool isValid() const { return Raw != 0; }
  constexpr uint32_t raw() const { return Raw; }

  friend constexpr bool operator==(Label A, Label B) { return A.Raw == B.Raw; }
  friend constexpr bool operator!=(Label A, Label B) { return A.Raw != B.Raw; }
  friend constexpr bool operator<(Label A, Label B) { return A.Raw < B.Raw; }

private:
  constexpr explicit Label(uint32_t Raw) : Raw(Raw) {}
  uint32_t Raw = 0;
};

} // namespace dlf

namespace std {
template <> struct hash<dlf::Label> {
  size_t operator()(dlf::Label L) const {
    return std::hash<uint32_t>()(L.raw());
  }
};
} // namespace std

/// Expands to a Label naming the current source location. The text embeds
/// file and line, so two acquires on different lines get distinct labels.
#define DLF_SITE()                                                             \
  ([] {                                                                        \
    static const ::dlf::Label CachedSite =                                     \
        ::dlf::Label::intern(std::string(__FILE__) + ":" +                     \
                             std::to_string(__LINE__));                        \
    return CachedSite;                                                         \
  }())

/// Expands to a Label with explicit \p Name text (interned once).
#define DLF_NAMED_SITE(Name)                                                   \
  ([] {                                                                        \
    static const ::dlf::Label CachedSite = ::dlf::Label::intern(Name);         \
    return CachedSite;                                                         \
  }())

#endif // DLF_EVENT_LABEL_H
