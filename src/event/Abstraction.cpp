//===- event/Abstraction.cpp - Object abstraction values -------------------===//

#include "event/Abstraction.h"

#include <sstream>

using namespace dlf;

const char *dlf::abstractionKindName(AbstractionKind Kind) {
  switch (Kind) {
  case AbstractionKind::Trivial:
    return "trivial";
  case AbstractionKind::KObjectSensitive:
    return "k-object";
  case AbstractionKind::ExecutionIndex:
    return "exec-index";
  }
  return "unknown";
}

std::string Abstraction::toString(bool PairedCounts) const {
  std::ostringstream OS;
  OS << '[';
  if (PairedCounts) {
    for (size_t I = 0; I + 1 < Elements.size(); I += 2) {
      if (I)
        OS << ", ";
      OS << Label::textByRaw(Elements[I]) << " x" << Elements[I + 1];
    }
  } else {
    for (size_t I = 0; I != Elements.size(); ++I) {
      if (I)
        OS << ", ";
      OS << Label::textByRaw(Elements[I]);
    }
  }
  OS << ']';
  return OS.str();
}

const Abstraction &AbstractionSet::select(AbstractionKind Kind) const {
  static const Abstraction Empty;
  switch (Kind) {
  case AbstractionKind::Trivial:
    return Empty;
  case AbstractionKind::KObjectSensitive:
    return KObject;
  case AbstractionKind::ExecutionIndex:
    return Index;
  }
  return Empty;
}
