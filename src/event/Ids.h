//===- event/Ids.h - Strongly typed runtime identifiers --------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strong identifier types for the dynamic entities the analysis tracks:
/// threads, locks, and generic heap objects. The paper calls these the
/// "unique ids" of objects (typically the object address in the Java
/// implementation); they are only meaningful within one execution, which is
/// exactly why Phase II matches on abstractions instead (see
/// abstraction/AbstractionEngine.h).
///
//===----------------------------------------------------------------------===//

#ifndef DLF_EVENT_IDS_H
#define DLF_EVENT_IDS_H

#include <cstdint>
#include <functional>

namespace dlf {

namespace detail {

/// CRTP-free strong wrapper over a uint64_t with total ordering and hashing.
/// \p Tag distinguishes otherwise-identical id spaces at compile time.
template <typename Tag> struct StrongId {
  uint64_t Raw = 0;

  constexpr StrongId() = default;
  constexpr explicit StrongId(uint64_t Raw) : Raw(Raw) {}

  /// Ids start at 1; 0 means "invalid / not assigned".
  constexpr bool isValid() const { return Raw != 0; }

  friend constexpr bool operator==(StrongId A, StrongId B) {
    return A.Raw == B.Raw;
  }
  friend constexpr bool operator!=(StrongId A, StrongId B) {
    return A.Raw != B.Raw;
  }
  friend constexpr bool operator<(StrongId A, StrongId B) {
    return A.Raw < B.Raw;
  }
  friend constexpr bool operator>(StrongId A, StrongId B) {
    return A.Raw > B.Raw;
  }
};

} // namespace detail

struct ThreadIdTag {};
struct LockIdTag {};
struct ObjectIdTag {};

/// The mode a lock is (being) acquired in. Plain mutexes and rwlock write
/// sides are Exclusive; rwlock read sides are Shared. Two Shared holds of
/// the same lock coexist, which is what the closure's held-set disjointness
/// check, the guard pruner, and checkRealDeadlock must all respect: a
/// wait/hold pair on one lock is a deadlock edge iff NOT both sides are
/// Shared.
enum class LockMode : uint8_t {
  Exclusive,
  Shared,
};

/// True when a thread waiting for \p Wait conflicts with a thread holding
/// the same lock in \p Held — i.e. the waiter cannot proceed while the
/// holder keeps its hold. Only shared/shared pairs are compatible.
constexpr bool lockModesConflict(LockMode Wait, LockMode Held) {
  return !(Wait == LockMode::Shared && Held == LockMode::Shared);
}

/// Identifies one dynamic thread within a single execution.
using ThreadId = detail::StrongId<ThreadIdTag>;
/// Identifies one dynamic lock object within a single execution.
using LockId = detail::StrongId<LockIdTag>;
/// Identifies one dynamic heap object within a single execution (used by the
/// k-object-sensitivity CreationMap).
using ObjectId = detail::StrongId<ObjectIdTag>;

} // namespace dlf

namespace std {
template <typename Tag> struct hash<dlf::detail::StrongId<Tag>> {
  size_t operator()(dlf::detail::StrongId<Tag> Id) const {
    return std::hash<uint64_t>()(Id.Raw);
  }
};
} // namespace std

#endif // DLF_EVENT_IDS_H
