//===- event/Label.cpp - Interned statement labels -------------------------===//

#include "event/Label.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <unordered_map>

using namespace dlf;

namespace {

/// Process-global intern table. Uses a deque so interned strings have stable
/// addresses; text() can hand out references without holding the mutex.
struct InternTable {
  std::mutex Mu;
  std::unordered_map<std::string, uint32_t> Index;
  std::deque<std::string> Texts;

  InternTable() { Texts.push_back("<none>"); } // slot 0 = invalid label

  static InternTable &get() {
    static InternTable Table;
    return Table;
  }
};

} // namespace

Label Label::intern(const std::string &Text) {
  InternTable &Table = InternTable::get();
  std::lock_guard<std::mutex> Guard(Table.Mu);
  auto [It, Inserted] =
      Table.Index.try_emplace(Text, static_cast<uint32_t>(Table.Texts.size()));
  if (Inserted)
    Table.Texts.push_back(Text);
  return Label(It->second);
}

const std::string &Label::text() const { return textByRaw(Raw); }

const std::string &Label::textByRaw(uint32_t Raw) {
  InternTable &Table = InternTable::get();
  std::lock_guard<std::mutex> Guard(Table.Mu);
  if (Raw >= Table.Texts.size())
    Raw = 0;
  return Table.Texts[Raw];
}
