//===- event/VectorClock.cpp - Happens-before timestamps --------------------===//

#include "event/VectorClock.h"

#include <algorithm>

using namespace dlf;

void dlf::vcTick(VectorClock &Clock, ThreadId Self) {
  size_t Index = static_cast<size_t>(Self.Raw) - 1;
  if (Clock.size() <= Index)
    Clock.resize(Index + 1, 0);
  ++Clock[Index];
}

void dlf::vcJoin(VectorClock &Clock, const VectorClock &Other) {
  if (Clock.size() < Other.size())
    Clock.resize(Other.size(), 0);
  for (size_t I = 0; I != Other.size(); ++I)
    Clock[I] = std::max(Clock[I], Other[I]);
}

bool dlf::vcLeq(const VectorClock &A, const VectorClock &B) {
  for (size_t I = 0; I != A.size(); ++I) {
    uint32_t BVal = I < B.size() ? B[I] : 0;
    if (A[I] > BVal)
      return false;
  }
  return true;
}

VcOrder dlf::vcOrder(const VectorClock &A, const VectorClock &B) {
  if (A.empty() || B.empty())
    return VcOrder::NoInfo;
  bool ALeB = true, BLeA = true;
  size_t Common = std::min(A.size(), B.size());
  for (size_t I = 0; I != Common && (ALeB || BLeA); ++I) {
    if (A[I] > B[I])
      ALeB = false;
    else if (A[I] < B[I])
      BLeA = false;
  }
  // Components past the shorter clock read as zero on the other side.
  for (size_t I = Common; I != A.size() && ALeB; ++I)
    if (A[I] > 0)
      ALeB = false;
  for (size_t I = Common; I != B.size() && BLeA; ++I)
    if (B[I] > 0)
      BLeA = false;
  if (ALeB && BLeA)
    return VcOrder::Equal;
  if (ALeB)
    return VcOrder::Before;
  if (BLeA)
    return VcOrder::After;
  return VcOrder::Concurrent;
}

bool dlf::vcConcurrent(const VectorClock &A, const VectorClock &B) {
  VcOrder Order = vcOrder(A, B);
  // No information: assume concurrent (the filter must not prune).
  return Order == VcOrder::Concurrent || Order == VcOrder::NoInfo;
}
