//===- event/VectorClock.cpp - Happens-before timestamps --------------------===//

#include "event/VectorClock.h"

#include <algorithm>

using namespace dlf;

void dlf::vcTick(VectorClock &Clock, ThreadId Self) {
  size_t Index = static_cast<size_t>(Self.Raw) - 1;
  if (Clock.size() <= Index)
    Clock.resize(Index + 1, 0);
  ++Clock[Index];
}

void dlf::vcJoin(VectorClock &Clock, const VectorClock &Other) {
  if (Clock.size() < Other.size())
    Clock.resize(Other.size(), 0);
  for (size_t I = 0; I != Other.size(); ++I)
    Clock[I] = std::max(Clock[I], Other[I]);
}

bool dlf::vcLeq(const VectorClock &A, const VectorClock &B) {
  for (size_t I = 0; I != A.size(); ++I) {
    uint32_t BVal = I < B.size() ? B[I] : 0;
    if (A[I] > BVal)
      return false;
  }
  return true;
}

bool dlf::vcConcurrent(const VectorClock &A, const VectorClock &B) {
  if (A.empty() || B.empty())
    return true; // no information: assume concurrent
  return !vcLeq(A, B) && !vcLeq(B, A);
}
