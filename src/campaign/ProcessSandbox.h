//===- campaign/ProcessSandbox.h - Fault-isolated child runs ----*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one unit of work in a forked, watchdog-guarded child process. The
/// program under test is deadlock-prone *by design*: a Record-mode run that
/// truly deadlocks blocks forever, a buggy workload can crash, and a
/// livelocked Active run can spin. Fork isolation turns each of those into
/// a classified outcome instead of a hung or dead campaign.
///
/// Guarantees the previous ad-hoc harness (runForkedWithTimeout) lacked:
///  * SIGTERM -> SIGKILL escalation with a grace period, so children that
///    can unwind do, and children that cannot are still collected,
///  * EINTR-safe waitpid loops and unconditional reaping (no zombies),
///  * optional rlimit caps on CPU time and address space, with address-
///    space exhaustion classified separately (the child maps bad_alloc to
///    a reserved exit code),
///  * a result pipe the child writes its payload to (drained concurrently,
///    so a full pipe can never wedge the child) and a bounded stderr
///    capture for crash triage.
///
/// Two entry points share one implementation: the blocking runInSandbox
/// (start one child, pump it to completion) and the non-blocking
/// SandboxProcess (start / poll / reap), which the campaign WorkerPool
/// uses to keep N children in flight from a single dispatch thread.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_CAMPAIGN_PROCESSSANDBOX_H
#define DLF_CAMPAIGN_PROCESSSANDBOX_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/types.h>

namespace dlf {
namespace campaign {

/// Reserved child exit codes (outside the 0..100 range workloads use).
/// The child wrapper maps C++-level failures onto these so the parent can
/// triage without a debugger attached.
inline constexpr int OomExitCode = 113;      ///< std::bad_alloc escaped
inline constexpr int ExceptionExitCode = 112; ///< any other exception escaped

/// Resource caps and watchdog settings for one sandboxed run.
struct SandboxLimits {
  /// Wall-clock watchdog; 0 disables (the child may then run forever).
  uint64_t TimeoutMs = 10'000;

  /// Grace period between SIGTERM and SIGKILL when the watchdog fires.
  uint64_t GraceMs = 500;

  /// RLIMIT_CPU in seconds; 0 inherits the parent's limit.
  uint64_t CpuSeconds = 0;

  /// RLIMIT_AS in MiB; 0 inherits. An allocation past this cap surfaces
  /// as SandboxStatus::OutOfMemory.
  uint64_t AddressSpaceMb = 0;

  /// Upper bound on the payload the parent accumulates from the result
  /// pipe (excess is discarded, not blocked on).
  size_t MaxPayloadBytes = 1 << 20;

  /// Capture the child's stderr (bounded tail) for crash triage.
  bool CaptureStderr = false;

  /// Bytes of stderr tail kept when CaptureStderr is on.
  size_t MaxStderrBytes = 4096;
};

/// Process-level classification of one sandboxed run.
enum class SandboxStatus {
  Completed,   ///< child exited 0
  Exited,      ///< child exited nonzero (other than the reserved codes)
  Signaled,    ///< child was terminated by a signal it raised itself
  Hung,        ///< watchdog expired; child was killed by the sandbox
  OutOfMemory, ///< child exceeded the address-space cap (reserved code)
  ForkFailed,  ///< fork() itself failed; nothing ran
};

/// Returns a human-readable name for \p Status.
const char *sandboxStatusName(SandboxStatus Status);

/// Everything the parent learns about one sandboxed run.
struct SandboxResult {
  SandboxStatus Status = SandboxStatus::ForkFailed;

  /// Exit code (valid for Completed / Exited / OutOfMemory).
  int ExitCode = 0;

  /// Terminating signal (valid for Signaled and Hung).
  int TermSignal = 0;

  /// True when the child ignored SIGTERM and had to be SIGKILLed.
  bool TermEscalated = false;

  /// Wall-clock duration of the child, in milliseconds.
  double WallMs = 0.0;

  /// CPU time the child consumed (user + system, from wait4's rusage), in
  /// milliseconds. The campaign report sums this across children to show
  /// wall vs. cumulative CPU under parallel execution.
  double CpuMs = 0.0;

  /// Bytes the child wrote to the result pipe (possibly truncated at
  /// MaxPayloadBytes).
  std::string Payload;

  /// Bounded tail of the child's stderr (when CaptureStderr was set).
  std::string StderrTail;

  /// Pid the child ran as. The child is always reaped before
  /// runInSandbox returns; exposed so tests can assert there is no zombie.
  pid_t ChildPid = -1;

  /// One-line triage summary ("crashed: SIGABRT", "exited 3", ...).
  std::string triage() const;
};

/// One sandboxed child, driven without blocking: start() forks it, poll()
/// pumps its pipes / advances the watchdog / reaps it when it exits, and
/// takeResult() yields the classification. The watchdog needs poll() to be
/// called every few milliseconds while the child runs; appendPollFds()
/// exposes the read ends so a dispatcher can sleep in ::poll across many
/// children and still wake instantly on output.
class SandboxProcess {
public:
  SandboxProcess() = default;
  ~SandboxProcess();
  SandboxProcess(const SandboxProcess &) = delete;
  SandboxProcess &operator=(const SandboxProcess &) = delete;

  /// Forks the child (see runInSandbox for \p Fn's contract). Returns
  /// false when pipe/fork creation fails; the process is then finished()
  /// with SandboxStatus::ForkFailed.
  bool start(const std::function<int(int PayloadFd)> &Fn,
             const SandboxLimits &Limits);

  /// True once the child is reaped (or start failed); the result is final.
  bool finished() const { return Finished; }

  pid_t childPid() const { return Result.ChildPid; }

  /// Non-blocking pump: drains the pipes, fires the SIGTERM -> SIGKILL
  /// watchdog when due, and reaps an exited child. Returns finished().
  bool poll();

  /// Appends this child's readable pipe fds to \p Fds (for a combined
  /// ::poll sleep). Fds at EOF are skipped.
  void appendPollFds(std::vector<struct pollfd> &Fds) const;

  /// SIGKILLs and reaps the child immediately (used to cancel speculative
  /// work). The result is marked finished but is not meaningful.
  void forceKill();

  const SandboxResult &result() const { return Result; }
  SandboxResult takeResult() { return std::move(Result); }

private:
  struct Drain {
    int Fd = -1;
    std::string *Out = nullptr;
    size_t Cap = 0;
    bool KeepTail = false;
    bool Eof = false;
    void pump();
  };

  double elapsedMs() const;
  void finalize(int Status);
  void closePipes();

  SandboxLimits Limits;
  std::chrono::steady_clock::time_point StartTime;
  enum class Phase { Running, Termed, Killed } Ph = Phase::Running;
  double TermAtMs = 0;
  bool TimedOut = false;
  bool Started = false;
  bool Finished = false;
  int PayloadFd = -1;
  int StderrFd = -1;
  Drain PayloadDrain, StderrDrain;
  SandboxResult Result;
};

/// Runs \p Fn in a forked child under \p Limits. \p Fn receives the write
/// end of the result pipe and returns the child's exit code; exceptions
/// escaping \p Fn are mapped to the reserved exit codes above. The child
/// exits via _exit (no atexit handlers run), so the parent's state is
/// never perturbed. POSIX-only.
SandboxResult runInSandbox(const std::function<int(int PayloadFd)> &Fn,
                           const SandboxLimits &Limits = {});

} // namespace campaign
} // namespace dlf

#endif // DLF_CAMPAIGN_PROCESSSANDBOX_H
