//===- campaign/ProcessSandbox.cpp - Fault-isolated child runs --------------===//

#include "campaign/ProcessSandbox.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <exception>
#include <new>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dlf;
using namespace dlf::campaign;

const char *dlf::campaign::sandboxStatusName(SandboxStatus Status) {
  switch (Status) {
  case SandboxStatus::Completed:
    return "completed";
  case SandboxStatus::Exited:
    return "crashed-exit";
  case SandboxStatus::Signaled:
    return "crashed-signal";
  case SandboxStatus::Hung:
    return "hung";
  case SandboxStatus::OutOfMemory:
    return "oom";
  case SandboxStatus::ForkFailed:
    return "fork-failed";
  }
  return "unknown";
}

std::string SandboxResult::triage() const {
  std::ostringstream OS;
  switch (Status) {
  case SandboxStatus::Completed:
    OS << "completed in " << WallMs << " ms";
    break;
  case SandboxStatus::Exited:
    OS << "exited " << ExitCode;
    break;
  case SandboxStatus::Signaled: {
    const char *Name = strsignal(TermSignal);
    OS << "crashed: signal " << TermSignal << " (" << (Name ? Name : "?")
       << ")";
    break;
  }
  case SandboxStatus::Hung:
    OS << "hung: watchdog expired after " << WallMs << " ms"
       << (TermEscalated ? " (SIGTERM ignored; escalated to SIGKILL)" : "");
    break;
  case SandboxStatus::OutOfMemory:
    OS << "oom: allocation past the address-space cap";
    break;
  case SandboxStatus::ForkFailed:
    OS << "fork failed";
    break;
  }
  if (!StderrTail.empty())
    OS << "; stderr tail: " << StderrTail;
  return OS.str();
}

namespace {

/// waitpid that retries on EINTR (a signal delivered to the campaign
/// runner must not leak a zombie or misclassify the child).
pid_t waitpidEintrSafe(pid_t Pid, int *Status, int Flags) {
  for (;;) {
    pid_t R = waitpid(Pid, Status, Flags);
    if (R >= 0 || errno != EINTR)
      return R;
  }
}

void applyRlimit(int Resource, uint64_t Value) {
  struct rlimit Lim;
  Lim.rlim_cur = Value;
  Lim.rlim_max = Value;
  setrlimit(Resource, &Lim); // best-effort: a refused cap is not fatal
}

/// Accumulates up to Cap bytes from Fd into Out; beyond the cap, for the
/// payload pipe excess is read and discarded (so the child never blocks on
/// a full pipe), and for the stderr pipe only the tail is kept.
struct PipeDrain {
  int Fd = -1;
  std::string *Out = nullptr;
  size_t Cap = 0;
  bool KeepTail = false;
  bool Eof = false;

  void drain() {
    if (Fd < 0 || Eof)
      return;
    char Buf[4096];
    for (;;) {
      ssize_t N = read(Fd, Buf, sizeof(Buf));
      if (N > 0) {
        Out->append(Buf, static_cast<size_t>(N));
        if (Out->size() > Cap) {
          if (KeepTail)
            Out->erase(0, Out->size() - Cap);
          else
            Out->resize(Cap);
        }
        continue;
      }
      if (N == 0) {
        Eof = true;
        return;
      }
      if (errno == EINTR)
        continue;
      return; // EAGAIN (or a real error): nothing more right now
    }
  }
};

} // namespace

SandboxResult
dlf::campaign::runInSandbox(const std::function<int(int PayloadFd)> &Fn,
                            const SandboxLimits &Limits) {
  SandboxResult Result;

  int PayloadPipe[2] = {-1, -1};
  int StderrPipe[2] = {-1, -1};
  if (pipe(PayloadPipe) != 0)
    return Result;
  if (Limits.CaptureStderr && pipe(StderrPipe) != 0) {
    close(PayloadPipe[0]);
    close(PayloadPipe[1]);
    return Result;
  }

  auto Start = std::chrono::steady_clock::now();
  pid_t Child = fork();
  if (Child < 0) {
    close(PayloadPipe[0]);
    close(PayloadPipe[1]);
    if (Limits.CaptureStderr) {
      close(StderrPipe[0]);
      close(StderrPipe[1]);
    }
    return Result;
  }

  if (Child == 0) {
    // Child. Restore default signal dispositions (the campaign runner may
    // have a SIGINT handler armed) and apply the resource caps before any
    // user code runs.
    signal(SIGTERM, SIG_DFL);
    signal(SIGINT, SIG_DFL);
    close(PayloadPipe[0]);
    if (Limits.CaptureStderr) {
      close(StderrPipe[0]);
      dup2(StderrPipe[1], STDERR_FILENO);
      close(StderrPipe[1]);
    }
    if (Limits.CpuSeconds)
      applyRlimit(RLIMIT_CPU, Limits.CpuSeconds);
    if (Limits.AddressSpaceMb)
      applyRlimit(RLIMIT_AS, Limits.AddressSpaceMb * 1024 * 1024);

    int Code;
    try {
      Code = Fn(PayloadPipe[1]);
    } catch (const std::bad_alloc &) {
      Code = OomExitCode;
    } catch (...) {
      Code = ExceptionExitCode;
    }
    // _exit: no atexit handlers, no flushes of parent-inherited state.
    _exit(Code);
  }

  // Parent.
  Result.ChildPid = Child;
  close(PayloadPipe[1]);
  if (Limits.CaptureStderr)
    close(StderrPipe[1]);
  fcntl(PayloadPipe[0], F_SETFL, O_NONBLOCK);
  if (Limits.CaptureStderr)
    fcntl(StderrPipe[0], F_SETFL, O_NONBLOCK);

  PipeDrain Payload{PayloadPipe[0], &Result.Payload, Limits.MaxPayloadBytes,
                    /*KeepTail=*/false};
  PipeDrain Stderr{Limits.CaptureStderr ? StderrPipe[0] : -1,
                   &Result.StderrTail, Limits.MaxStderrBytes,
                   /*KeepTail=*/true};

  auto ElapsedMs = [&] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
        .count();
  };

  // Poll loop: drain the pipes (a blocked child writer would otherwise
  // outlive any watchdog) and reap the child without blocking. Three
  // phases: running, SIGTERM sent, SIGKILL sent.
  enum class Phase { Running, Termed, Killed } Ph = Phase::Running;
  double TermAtMs = 0;
  int Status = 0;
  bool Reaped = false;
  bool TimedOut = false;

  while (!Reaped) {
    Payload.drain();
    Stderr.drain();

    pid_t Done = waitpidEintrSafe(Child, &Status, WNOHANG);
    if (Done == Child) {
      Reaped = true;
      break;
    }

    double Now = ElapsedMs();
    if (Ph == Phase::Running && Limits.TimeoutMs &&
        Now >= static_cast<double>(Limits.TimeoutMs)) {
      TimedOut = true;
      kill(Child, SIGTERM);
      TermAtMs = Now;
      Ph = Phase::Termed;
    } else if (Ph == Phase::Termed &&
               Now - TermAtMs >= static_cast<double>(Limits.GraceMs)) {
      kill(Child, SIGKILL);
      Ph = Phase::Killed;
      Result.TermEscalated = true;
      // SIGKILL cannot be ignored: wait for the reap synchronously.
      waitpidEintrSafe(Child, &Status, 0);
      Reaped = true;
      break;
    }

    // Sleep in poll() on the pipes so child output wakes us immediately
    // and a quiet child costs one syscall per millisecond at most.
    struct pollfd Fds[2];
    nfds_t NFds = 0;
    if (!Payload.Eof)
      Fds[NFds++] = {PayloadPipe[0], POLLIN, 0};
    if (Stderr.Fd >= 0 && !Stderr.Eof)
      Fds[NFds++] = {StderrPipe[0], POLLIN, 0};
    poll(Fds, NFds, /*timeout=*/1);
  }

  Result.WallMs = ElapsedMs();
  // Final drain: the child may have written between our last drain and its
  // exit; EOF is guaranteed now that the write ends are closed.
  Payload.drain();
  Stderr.drain();
  close(PayloadPipe[0]);
  if (Limits.CaptureStderr)
    close(StderrPipe[0]);

  if (WIFSIGNALED(Status)) {
    Result.TermSignal = WTERMSIG(Status);
    // A SIGTERM/SIGKILL death after our watchdog fired is a hang; any
    // other signal (or a signal before the timeout) is the child's own
    // crash. SIGXCPU from the RLIMIT_CPU cap counts as a hang too: the
    // child was spinning.
    if (TimedOut &&
        (Result.TermSignal == SIGTERM || Result.TermSignal == SIGKILL))
      Result.Status = SandboxStatus::Hung;
    else if (Result.TermSignal == SIGXCPU)
      Result.Status = SandboxStatus::Hung;
    else
      Result.Status = SandboxStatus::Signaled;
    return Result;
  }

  Result.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  if (TimedOut) {
    // The child unwound on SIGTERM and exited on its own: still a hang —
    // the watchdog expired; the exit code is kept for triage only.
    Result.Status = SandboxStatus::Hung;
  } else if (Result.ExitCode == 0)
    Result.Status = SandboxStatus::Completed;
  else if (Result.ExitCode == OomExitCode)
    Result.Status = SandboxStatus::OutOfMemory;
  else
    Result.Status = SandboxStatus::Exited;
  return Result;
}
