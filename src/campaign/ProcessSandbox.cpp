//===- campaign/ProcessSandbox.cpp - Fault-isolated child runs --------------===//

#include "campaign/ProcessSandbox.h"

#include "faultinject/FaultInject.h"
#include "support/Retry.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <exception>
#include <new>
#include <sstream>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

using namespace dlf;
using namespace dlf::campaign;

const char *dlf::campaign::sandboxStatusName(SandboxStatus Status) {
  switch (Status) {
  case SandboxStatus::Completed:
    return "completed";
  case SandboxStatus::Exited:
    return "crashed-exit";
  case SandboxStatus::Signaled:
    return "crashed-signal";
  case SandboxStatus::Hung:
    return "hung";
  case SandboxStatus::OutOfMemory:
    return "oom";
  case SandboxStatus::ForkFailed:
    return "fork-failed";
  }
  return "unknown";
}

std::string SandboxResult::triage() const {
  std::ostringstream OS;
  switch (Status) {
  case SandboxStatus::Completed:
    OS << "completed in " << WallMs << " ms";
    break;
  case SandboxStatus::Exited:
    OS << "exited " << ExitCode;
    break;
  case SandboxStatus::Signaled: {
    const char *Name = strsignal(TermSignal);
    OS << "crashed: signal " << TermSignal << " (" << (Name ? Name : "?")
       << ")";
    break;
  }
  case SandboxStatus::Hung:
    OS << "hung: watchdog expired after " << WallMs << " ms"
       << (TermEscalated ? " (SIGTERM ignored; escalated to SIGKILL)" : "");
    break;
  case SandboxStatus::OutOfMemory:
    OS << "oom: allocation past the address-space cap";
    break;
  case SandboxStatus::ForkFailed:
    OS << "fork failed";
    break;
  }
  if (!StderrTail.empty())
    OS << "; stderr tail: " << StderrTail;
  return OS.str();
}

namespace {

/// wait4 that retries on EINTR (a signal delivered to the campaign
/// runner must not leak a zombie or misclassify the child). rusage gives
/// the reaped child's CPU time for the throughput report.
pid_t wait4EintrSafe(pid_t Pid, int *Status, int Flags, struct rusage *RU) {
  return retryEintr([&] { return wait4(Pid, Status, Flags, RU); });
}

void applyRlimit(int Resource, uint64_t Value) {
  struct rlimit Lim;
  Lim.rlim_cur = Value;
  Lim.rlim_max = Value;
  setrlimit(Resource, &Lim); // best-effort: a refused cap is not fatal
}

double rusageCpuMs(const struct rusage &RU) {
  auto ToMs = [](const struct timeval &TV) {
    return static_cast<double>(TV.tv_sec) * 1000.0 +
           static_cast<double>(TV.tv_usec) / 1000.0;
  };
  return ToMs(RU.ru_utime) + ToMs(RU.ru_stime);
}

} // namespace

/// Accumulates up to Cap bytes from Fd into Out; beyond the cap, for the
/// payload pipe excess is read and discarded (so the child never blocks on
/// a full pipe), and for the stderr pipe only the tail is kept.
void SandboxProcess::Drain::pump() {
  if (Fd < 0 || Eof)
    return;
  char Buf[4096];
  for (;;) {
    ssize_t N = retryEintr([&] { return read(Fd, Buf, sizeof(Buf)); });
    if (N > 0) {
      Out->append(Buf, static_cast<size_t>(N));
      if (Out->size() > Cap) {
        if (KeepTail)
          Out->erase(0, Out->size() - Cap);
        else
          Out->resize(Cap);
      }
      continue;
    }
    if (N == 0) {
      Eof = true;
      return;
    }
    return; // EAGAIN (or a real error): nothing more right now
  }
}

SandboxProcess::~SandboxProcess() {
  if (Started && !Finished)
    forceKill();
  closePipes();
}

double SandboxProcess::elapsedMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - StartTime)
      .count();
}

void SandboxProcess::closePipes() {
  if (PayloadFd >= 0) {
    close(PayloadFd);
    PayloadFd = -1;
    PayloadDrain.Fd = -1;
  }
  if (StderrFd >= 0) {
    close(StderrFd);
    StderrFd = -1;
    StderrDrain.Fd = -1;
  }
}

bool SandboxProcess::start(const std::function<int(int PayloadFd)> &Fn,
                           const SandboxLimits &L) {
  Limits = L;
  if (int E = faultinject::failErrno("worker.spawn", EAGAIN)) {
    // Injected spawn failure: behaves exactly like a failed fork — the
    // result stays ForkFailed and the campaign's supervised-restart path
    // retries with the same seed (the child never ran).
    errno = E;
    Finished = true;
    return false;
  }
  int PayloadPipe[2] = {-1, -1};
  int StderrPipe[2] = {-1, -1};
  if (pipe(PayloadPipe) != 0) {
    Finished = true;
    return false;
  }
  if (Limits.CaptureStderr && pipe(StderrPipe) != 0) {
    close(PayloadPipe[0]);
    close(PayloadPipe[1]);
    Finished = true;
    return false;
  }

  StartTime = std::chrono::steady_clock::now();
  pid_t Parent = getpid();
  pid_t Child = fork();
  if (Child < 0) {
    close(PayloadPipe[0]);
    close(PayloadPipe[1]);
    if (Limits.CaptureStderr) {
      close(StderrPipe[0]);
      close(StderrPipe[1]);
    }
    Finished = true;
    return false;
  }

  if (Child == 0) {
    // Child. Restore default signal dispositions (the campaign runner may
    // have a SIGINT handler armed) and apply the resource caps before any
    // user code runs.
    signal(SIGTERM, SIG_DFL);
    signal(SIGINT, SIG_DFL);
#ifdef __linux__
    // If the runner dies abruptly (SIGKILL, chaos runner.kill injection)
    // its watchdogs die with it; tie the child's lifetime to the parent so
    // an orphaned hang can never outlive the campaign.
    prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (getppid() != Parent)
      _exit(125); // parent died in the fork/prctl window
#else
    (void)Parent;
#endif
    close(PayloadPipe[0]);
    if (Limits.CaptureStderr) {
      close(StderrPipe[0]);
      dup2(StderrPipe[1], STDERR_FILENO);
      close(StderrPipe[1]);
    }
    if (Limits.CpuSeconds)
      applyRlimit(RLIMIT_CPU, Limits.CpuSeconds);
    if (Limits.AddressSpaceMb)
      applyRlimit(RLIMIT_AS, Limits.AddressSpaceMb * 1024 * 1024);

    int Code;
    try {
      Code = Fn(PayloadPipe[1]);
    } catch (const std::bad_alloc &) {
      Code = OomExitCode;
    } catch (...) {
      Code = ExceptionExitCode;
    }
    // _exit: no atexit handlers, no flushes of parent-inherited state.
    _exit(Code);
  }

  // Parent.
  Started = true;
  Result.ChildPid = Child;
  close(PayloadPipe[1]);
  if (Limits.CaptureStderr)
    close(StderrPipe[1]);
  PayloadFd = PayloadPipe[0];
  StderrFd = Limits.CaptureStderr ? StderrPipe[0] : -1;
  fcntl(PayloadFd, F_SETFL, O_NONBLOCK);
  if (StderrFd >= 0)
    fcntl(StderrFd, F_SETFL, O_NONBLOCK);

  PayloadDrain = {PayloadFd, &Result.Payload, Limits.MaxPayloadBytes,
                  /*KeepTail=*/false, /*Eof=*/false};
  StderrDrain = {StderrFd, &Result.StderrTail, Limits.MaxStderrBytes,
                 /*KeepTail=*/true, /*Eof=*/false};
  return true;
}

void SandboxProcess::finalize(int Status) {
  Result.WallMs = elapsedMs();
  // Final drain: the child may have written between our last pump and its
  // exit; EOF is guaranteed now that the write ends are closed.
  PayloadDrain.pump();
  StderrDrain.pump();
  closePipes();
  Finished = true;

  if (WIFSIGNALED(Status)) {
    Result.TermSignal = WTERMSIG(Status);
    // A SIGTERM/SIGKILL death after our watchdog fired is a hang; any
    // other signal (or a signal before the timeout) is the child's own
    // crash. SIGXCPU from the RLIMIT_CPU cap counts as a hang too: the
    // child was spinning.
    if (TimedOut &&
        (Result.TermSignal == SIGTERM || Result.TermSignal == SIGKILL))
      Result.Status = SandboxStatus::Hung;
    else if (Result.TermSignal == SIGXCPU)
      Result.Status = SandboxStatus::Hung;
    else
      Result.Status = SandboxStatus::Signaled;
    return;
  }

  Result.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  if (TimedOut) {
    // The child unwound on SIGTERM and exited on its own: still a hang —
    // the watchdog expired; the exit code is kept for triage only.
    Result.Status = SandboxStatus::Hung;
  } else if (Result.ExitCode == 0)
    Result.Status = SandboxStatus::Completed;
  else if (Result.ExitCode == OomExitCode)
    Result.Status = SandboxStatus::OutOfMemory;
  else
    Result.Status = SandboxStatus::Exited;
}

bool SandboxProcess::poll() {
  if (Finished)
    return true;
  PayloadDrain.pump();
  StderrDrain.pump();

  int Status = 0;
  struct rusage RU;
  std::memset(&RU, 0, sizeof(RU));
  pid_t Done = wait4EintrSafe(Result.ChildPid, &Status, WNOHANG, &RU);
  if (Done == Result.ChildPid) {
    Result.CpuMs = rusageCpuMs(RU);
    finalize(Status);
    return true;
  }

  double Now = elapsedMs();
  if (Ph == Phase::Running && Limits.TimeoutMs &&
      Now >= static_cast<double>(Limits.TimeoutMs)) {
    TimedOut = true;
    kill(Result.ChildPid, SIGTERM);
    TermAtMs = Now;
    Ph = Phase::Termed;
  } else if (Ph == Phase::Termed &&
             Now - TermAtMs >= static_cast<double>(Limits.GraceMs)) {
    kill(Result.ChildPid, SIGKILL);
    Ph = Phase::Killed;
    Result.TermEscalated = true;
    // SIGKILL cannot be ignored: wait for the reap synchronously.
    wait4EintrSafe(Result.ChildPid, &Status, 0, &RU);
    Result.CpuMs = rusageCpuMs(RU);
    finalize(Status);
    return true;
  }
  return false;
}

void SandboxProcess::appendPollFds(std::vector<struct pollfd> &Fds) const {
  if (Finished)
    return;
  if (PayloadFd >= 0 && !PayloadDrain.Eof)
    Fds.push_back({PayloadFd, POLLIN, 0});
  if (StderrFd >= 0 && !StderrDrain.Eof)
    Fds.push_back({StderrFd, POLLIN, 0});
}

void SandboxProcess::forceKill() {
  if (!Started || Finished)
    return;
  kill(Result.ChildPid, SIGKILL);
  int Status = 0;
  struct rusage RU;
  std::memset(&RU, 0, sizeof(RU));
  wait4EintrSafe(Result.ChildPid, &Status, 0, &RU);
  Result.CpuMs = rusageCpuMs(RU);
  TimedOut = true; // classify as Hung, not as the child's own crash
  finalize(Status);
}

SandboxResult
dlf::campaign::runInSandbox(const std::function<int(int PayloadFd)> &Fn,
                            const SandboxLimits &Limits) {
  SandboxProcess P;
  if (!P.start(Fn, Limits))
    return P.takeResult();
  while (!P.poll()) {
    // Sleep in poll() on the pipes so child output wakes us immediately
    // and a quiet child costs one syscall per millisecond at most.
    std::vector<struct pollfd> Fds;
    P.appendPollFds(Fds);
    ::poll(Fds.empty() ? nullptr : Fds.data(), Fds.size(), /*timeout=*/1);
  }
  return P.takeResult();
}
