//===- campaign/Json.cpp - Minimal JSON reader/writer -----------------------===//

#include "campaign/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

using namespace dlf;
using namespace dlf::campaign;

const JsonValue &JsonValue::operator[](const std::string &Key) const {
  static const JsonValue Null;
  auto It = ObjVal.find(Key);
  return It == ObjVal.end() ? Null : It->second;
}

namespace {

void dumpString(std::ostringstream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\r':
      OS << "\\r";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

void dumpValue(std::ostringstream &OS, const JsonValue &V);

void dumpNumber(std::ostringstream &OS, double N) {
  if (std::isfinite(N) && N == std::floor(N) && std::fabs(N) < 9e15) {
    OS << static_cast<long long>(N);
    return;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.17g", N);
  OS << Buf;
}

} // namespace

std::string JsonValue::dump() const {
  std::ostringstream OS;
  dumpValue(OS, *this);
  return OS.str();
}

namespace {

void dumpValue(std::ostringstream &OS, const JsonValue &V) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    OS << "null";
    break;
  case JsonValue::Kind::Bool:
    OS << (V.asBool() ? "true" : "false");
    break;
  case JsonValue::Kind::Number:
    dumpNumber(OS, V.asNumber());
    break;
  case JsonValue::Kind::String:
    dumpString(OS, V.asString());
    break;
  case JsonValue::Kind::Array: {
    OS << '[';
    bool First = true;
    for (const JsonValue &E : V.items()) {
      if (!First)
        OS << ',';
      First = false;
      dumpValue(OS, E);
    }
    OS << ']';
    break;
  }
  case JsonValue::Kind::Object: {
    // std::map iterates sorted, so journal lines are byte-deterministic
    // for a given field set.
    OS << '{';
    bool First = true;
    for (const auto &[Key, Val] : V.fields()) {
      if (!First)
        OS << ',';
      First = false;
      dumpString(OS, Key);
      OS << ':';
      dumpValue(OS, Val);
    }
    OS << '}';
    break;
  }
  }
}

} // namespace

namespace {

// -- Parser ------------------------------------------------------------------

struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Err;

  explicit Parser(const std::string &T) : Text(T) {}

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool peekIs(char C) {
    skipWs();
    return Pos < Text.size() && Text[Pos] == C;
  }

  bool parseValue(JsonValue &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue(std::move(S));
      return true;
    }
    if (C == 't' || C == 'f')
      return parseKeyword(Out);
    if (C == 'n')
      return parseKeyword(Out);
    return parseNumber(Out);
  }

  bool parseKeyword(JsonValue &Out) {
    auto Match = [&](const char *Kw) {
      size_t N = std::strlen(Kw);
      if (Text.compare(Pos, N, Kw) == 0) {
        Pos += N;
        return true;
      }
      return false;
    };
    if (Match("true")) {
      Out = JsonValue(true);
      return true;
    }
    if (Match("false")) {
      Out = JsonValue(false);
      return true;
    }
    if (Match("null")) {
      Out = JsonValue();
      return true;
    }
    return fail("invalid keyword");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      return fail("invalid number");
    char *End = nullptr;
    std::string Num = Text.substr(Start, Pos - Start);
    double V = std::strtod(Num.c_str(), &End);
    if (!End || *End != '\0')
      return fail("invalid number");
    Out = JsonValue(V);
    return true;
  }

  bool parseString(std::string &Out) {
    skipWs();
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code += static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code += static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code += static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("invalid \\u escape");
        }
        // The journal only escapes control characters; encode the code
        // point as UTF-8 for completeness.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseArray(JsonValue &Out) {
    if (!consume('['))
      return false;
    Out = JsonValue::array();
    if (peekIs(']')) {
      ++Pos;
      return true;
    }
    for (;;) {
      JsonValue Elem;
      if (!parseValue(Elem))
        return false;
      Out.push(std::move(Elem));
      skipWs();
      if (peekIs(',')) {
        ++Pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parseObject(JsonValue &Out) {
    if (!consume('{'))
      return false;
    Out = JsonValue::object();
    if (peekIs('}')) {
      ++Pos;
      return true;
    }
    for (;;) {
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!consume(':'))
        return false;
      JsonValue Val;
      if (!parseValue(Val))
        return false;
      Out.set(Key, std::move(Val));
      if (peekIs(',')) {
        ++Pos;
        continue;
      }
      return consume('}');
    }
  }
};

} // namespace

bool dlf::campaign::parseJson(const std::string &Text, JsonValue &Out,
                              std::string *Error) {
  Parser P(Text);
  if (!P.parseValue(Out)) {
    if (Error)
      *Error = P.Err;
    return false;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    if (Error)
      *Error = "trailing characters at offset " + std::to_string(P.Pos);
    return false;
  }
  return true;
}
