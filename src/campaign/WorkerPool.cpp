//===- campaign/WorkerPool.cpp - Concurrent sandboxed children --------------===//

#include "campaign/WorkerPool.h"

#include <algorithm>
#include <thread>

#include <poll.h>

using namespace dlf;
using namespace dlf::campaign;

WorkerPool::WorkerPool(unsigned Jobs) : Jobs(std::max(Jobs, 1u)) {}

WorkerPool::~WorkerPool() {
  // Whatever path ends the campaign, no child outlives the pool: anything
  // still in flight is killed and reaped here.
  for (auto &KV : InFlight)
    KV.second->forceKill();
  InFlight.clear();
}

unsigned WorkerPool::resolveJobs(unsigned Requested) {
  if (Requested)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

uint64_t WorkerPool::launch(const std::function<int(int PayloadFd)> &Fn,
                            const SandboxLimits &Limits) {
  uint64_t Ticket = NextTicket++;
  auto P = std::make_unique<SandboxProcess>();
  P->start(Fn, Limits); // a failed fork is finished() with ForkFailed
  InFlight.emplace(Ticket, std::move(P));
  Peak = std::max(Peak, static_cast<unsigned>(InFlight.size()));
  return Ticket;
}

void WorkerPool::pump(std::vector<PoolCompletion> &Out) {
  for (auto It = InFlight.begin(); It != InFlight.end();) {
    if (It->second->poll()) {
      Out.push_back({It->first, It->second->takeResult()});
      It = InFlight.erase(It);
    } else {
      ++It;
    }
  }
}

std::vector<PoolCompletion> WorkerPool::poll(int WaitMs) {
  std::vector<PoolCompletion> Done;
  pump(Done);
  if (!Done.empty() || InFlight.empty() || WaitMs <= 0)
    return Done;

  std::vector<struct pollfd> Fds;
  for (const auto &KV : InFlight)
    KV.second->appendPollFds(Fds);
  // With every pipe at EOF there is nothing to wake on early; ::poll with
  // no fds is still the sleep that paces the watchdog ticks.
  ::poll(Fds.empty() ? nullptr : Fds.data(), Fds.size(), WaitMs);
  pump(Done);
  return Done;
}

void WorkerPool::cancel(uint64_t Ticket) {
  auto It = InFlight.find(Ticket);
  if (It == InFlight.end())
    return;
  It->second->forceKill();
  InFlight.erase(It);
}

void WorkerPool::drainAll(std::vector<PoolCompletion> &Out) {
  while (!InFlight.empty()) {
    std::vector<PoolCompletion> Done = poll(/*WaitMs=*/2);
    Out.insert(Out.end(), std::make_move_iterator(Done.begin()),
               std::make_move_iterator(Done.end()));
  }
}
