//===- campaign/WorkerPool.h - Concurrent sandboxed children ----*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process worker pool over SandboxProcess: up to N forked children in
/// flight at once, driven from a single dispatch thread with a combined
/// ::poll over every child's pipes (no thread per child, no blocking
/// run-one-wait-one). Each launch returns a ticket; completions are
/// reported with the ticket so the caller can reassociate out-of-order
/// results with their work items. The pool guarantees every child is
/// reaped — drainAll() on shutdown, forceKill on cancel — so a campaign
/// never leaks zombies however it ends.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_CAMPAIGN_WORKERPOOL_H
#define DLF_CAMPAIGN_WORKERPOOL_H

#include "campaign/ProcessSandbox.h"

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace dlf {
namespace campaign {

/// One finished child, keyed by the ticket launch() returned.
struct PoolCompletion {
  uint64_t Ticket = 0;
  SandboxResult Result;
};

class WorkerPool {
public:
  /// \p Jobs is the concurrency cap; use resolveJobs to map a user-facing
  /// value (0 = hardware concurrency) first. Clamped to at least 1.
  explicit WorkerPool(unsigned Jobs);
  ~WorkerPool();

  /// Maps the --jobs flag to a concrete worker count: 0 means hardware
  /// concurrency (at least 1), anything else is taken as-is.
  static unsigned resolveJobs(unsigned Requested);

  unsigned jobs() const { return Jobs; }
  size_t inFlight() const { return InFlight.size(); }
  bool hasCapacity() const { return InFlight.size() < Jobs; }

  /// Most children simultaneously in flight over the pool's lifetime.
  unsigned peakConcurrency() const { return Peak; }

  /// Forks \p Fn under \p Limits (requires hasCapacity()). Returns the
  /// completion ticket. A failed fork still returns a ticket; the
  /// completion carries SandboxStatus::ForkFailed.
  uint64_t launch(const std::function<int(int PayloadFd)> &Fn,
                  const SandboxLimits &Limits);

  /// Pumps every in-flight child once, then — if none finished — sleeps
  /// up to \p WaitMs in ::poll on their pipes and pumps again. Returns
  /// the children that finished. WaitMs should stay small (~1 ms): it
  /// bounds the watchdog granularity for hung children.
  std::vector<PoolCompletion> poll(int WaitMs);

  /// SIGKILLs one in-flight child and discards it (no completion is ever
  /// reported for the ticket). Used to cancel speculative work.
  void cancel(uint64_t Ticket);

  /// Blocks until every in-flight child has finished naturally (their
  /// watchdogs bound the wait), appending the completions to \p Out.
  void drainAll(std::vector<PoolCompletion> &Out);

private:
  void pump(std::vector<PoolCompletion> &Out);

  unsigned Jobs;
  unsigned Peak = 0;
  uint64_t NextTicket = 1;
  std::map<uint64_t, std::unique_ptr<SandboxProcess>> InFlight;
};

} // namespace campaign
} // namespace dlf

#endif // DLF_CAMPAIGN_WORKERPOOL_H
