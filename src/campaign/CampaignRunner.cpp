//===- campaign/CampaignRunner.cpp - Resumable two-phase campaigns ----------===//

#include "campaign/CampaignRunner.h"

#include "faultinject/FaultInject.h"
#include "igoodlock/Serialize.h"
#include "serve/CampaignStatus.h"
#include "support/Debug.h"
#include "support/Fs.h"
#include "support/Retry.h"
#include "telemetry/Sidecar.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>

#include <csignal>
#include <sys/stat.h>
#include <unistd.h>

using namespace dlf;
using namespace dlf::campaign;

const char *dlf::campaign::runClassName(RunClass C) {
  switch (C) {
  case RunClass::Completed:
    return "completed";
  case RunClass::Reproduced:
    return "reproduced";
  case RunClass::OtherDeadlock:
    return "other-deadlock";
  case RunClass::Stalled:
    return "stalled";
  case RunClass::Hung:
    return "hung";
  case RunClass::CrashedSignal:
    return "crashed-signal";
  case RunClass::CrashedExit:
    return "crashed-exit";
  case RunClass::OutOfMemory:
    return "oom";
  }
  return "unknown";
}

bool dlf::campaign::runClassFromName(const std::string &Name, RunClass &Out) {
  for (RunClass C :
       {RunClass::Completed, RunClass::Reproduced, RunClass::OtherDeadlock,
        RunClass::Stalled, RunClass::Hung, RunClass::CrashedSignal,
        RunClass::CrashedExit, RunClass::OutOfMemory}) {
    if (Name == runClassName(C)) {
      Out = C;
      return true;
    }
  }
  return false;
}

bool dlf::campaign::runClassIsTransient(RunClass C) {
  switch (C) {
  case RunClass::Hung:
  case RunClass::CrashedSignal:
  case RunClass::CrashedExit:
  case RunClass::OutOfMemory:
    return true;
  case RunClass::Completed:
  case RunClass::Reproduced:
  case RunClass::OtherDeadlock:
  case RunClass::Stalled:
    return false;
  }
  return false;
}

const char *dlf::campaign::phase1EngineName(Phase1Engine E) {
  switch (E) {
  case Phase1Engine::IGoodlock:
    return "igoodlock";
  case Phase1Engine::Predict:
    return "predict";
  case Phase1Engine::Both:
    return "both";
  }
  return "unknown";
}

bool dlf::campaign::phase1EngineFromName(const std::string &Name,
                                         Phase1Engine &Out) {
  for (Phase1Engine E : {Phase1Engine::IGoodlock, Phase1Engine::Predict,
                         Phase1Engine::Both}) {
    if (Name == phase1EngineName(E)) {
      Out = E;
      return true;
    }
  }
  return false;
}

std::string CycleCampaignStats::countsKey() const {
  std::ostringstream OS;
  OS << "reps=" << Reps << " repro=" << Reproduced << " other="
     << OtherDeadlocks << " stall=" << Stalls << " clean=" << CleanRuns
     << " hung=" << Hung << " csig=" << CrashedSignal << " cexit="
     << CrashedExit << " oom=" << Oom << " retries=" << RetriesSpent
     << " quarantined=" << (Quarantined ? 1 : 0);
  return OS.str();
}

std::string CampaignReport::toString() const {
  std::ostringstream OS;
  if (!Error.empty()) {
    OS << "campaign error: " << Error << "\n";
    return OS.str();
  }
  OS << "phase 1: " << Cycles.size() << " cycle(s), "
     << (PhaseOneCompleted ? "observation completed" : "observation partial")
     << " (" << PhaseOneAttempts << " sandboxed attempt(s))\n";
  for (size_t I = 0; I != PerCycle.size(); ++I) {
    const CycleCampaignStats &S = PerCycle[I];
    OS << "cycle #" << I << ": " << S.countsKey()
       << " p=" << S.probability() << "\n";
    if (!S.Classification.empty() && S.Classification != "schedulable")
      OS << "  classification: " << S.Classification
         << (S.Skipped ? " (phase 2 skipped; rerun with --include-guarded)"
                       : "")
         << "\n";
    if (!S.Prediction.empty())
      OS << "  prediction: " << S.Prediction
         << (S.Skipped && S.Prediction.rfind("UNCONFIRMED", 0) == 0
                 ? " (phase 2 skipped; rerun with --include-guarded)"
                 : "")
         << "\n";
    if (S.Quarantined)
      OS << "  quarantined: " << S.QuarantineReason << "\n";
  }
  OS << "reps executed " << RepsExecuted << ", replayed from journal "
     << RepsReplayed << "\n";
  if (RepsExecuted) {
    OS << "throughput: " << RepsExecuted << " rep(s) in "
       << PhaseTwoWallMs / 1000.0 << " s wall (" << repsPerSecond()
       << " reps/s), child cpu " << ChildCpuMs / 1000.0 << " s, peak "
       << PeakConcurrency << " concurrent child(ren), jobs " << JobsUsed
       << "\n";
  }
  if (JournalDegraded)
    OS << "journal degraded: " << JournalError
       << " — results computed in-memory; journal renamed aside "
          "(non-resumable)\n";
  const char *ResumeHint =
      JournalDegraded ? " (journal degraded; resume unavailable)\n"
                      : "; resume with --resume\n";
  if (BudgetExhausted)
    OS << "wall-clock budget exhausted" << ResumeHint;
  else if (Interrupted)
    OS << "interrupted" << ResumeHint;
  else if (CampaignComplete)
    OS << "campaign complete\n";
  return OS.str();
}

// -- Signal handling ---------------------------------------------------------

namespace {
volatile sig_atomic_t GInterruptRequested = 0;
void onSigint(int) { GInterruptRequested = 1; }
} // namespace

void CampaignRunner::installSigintHandler() {
  GInterruptRequested = 0;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSigint;
  // No SA_RESTART: in-flight waits return EINTR, which every wait loop in
  // the sandbox handles, so the stop request is observed promptly.
  sigaction(SIGINT, &SA, nullptr);
}

bool CampaignRunner::interruptRequested() { return GInterruptRequested != 0; }

// -- Helpers -----------------------------------------------------------------

namespace {

void writeAll(int Fd, const std::string &Data) {
  // Best-effort: if the parent vanished there is nothing sensible left to
  // do in the child.
  (void)writeFully(Fd, Data.data(), Data.size());
}

/// Parses a "key=value key=value" payload line.
std::map<std::string, std::string> parseKvLine(const std::string &Line) {
  std::map<std::string, std::string> Out;
  std::istringstream IS(Line);
  std::string Tok;
  while (IS >> Tok) {
    size_t Eq = Tok.find('=');
    if (Eq != std::string::npos)
      Out[Tok.substr(0, Eq)] = Tok.substr(Eq + 1);
  }
  return Out;
}

/// Witness lock names travel on one whitespace/;-delimited protocol line
/// (and through the journal); collapse any delimiter bytes they contain.
std::string sanitizeWitness(std::string Name) {
  for (char &C : Name)
    if (C == ';' || C == '|' || C == ' ' || C == '\t' || C == '\n' ||
        C == '\r')
      C = '_';
  return Name;
}

/// ';'-joined "<class>|<witness>" list, parallel to the cycle list — the
/// pruner verdicts' wire/journal form.
std::string serializePrune(
    const std::vector<analysis::CycleClassification> &Classes) {
  std::string Out;
  for (size_t I = 0; I != Classes.size(); ++I) {
    if (I)
      Out += ';';
    Out += analysis::cycleClassName(Classes[I].Class);
    Out += '|';
    Out += sanitizeWitness(Classes[I].GuardLock);
  }
  return Out;
}

/// Parses serializePrune output. Anything unparseable (old journal, count
/// mismatch, unknown class name) yields all-Schedulable: the conservative
/// reading that never skips a repetition it should have run.
std::vector<analysis::CycleClassification> parsePrune(const std::string &Text,
                                                      size_t NumCycles) {
  std::vector<analysis::CycleClassification> Out(NumCycles);
  if (Text.empty())
    return Out;
  std::vector<analysis::CycleClassification> Parsed;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t End = Text.find(';', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Item = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    size_t Bar = Item.find('|');
    analysis::CycleClassification C;
    if (!analysis::cycleClassFromName(Item.substr(0, Bar), C.Class))
      return Out;
    if (Bar != std::string::npos)
      C.GuardLock = Item.substr(Bar + 1);
    Parsed.push_back(std::move(C));
    if (End == Text.size())
      break;
  }
  if (Parsed.size() != NumCycles)
    return Out;
  return Parsed;
}

/// Prediction reasons embed lock names and travel on one ';'-delimited
/// protocol line; collapse the structural delimiters only (spaces are
/// legal inside an item, unlike on the witness line).
std::string sanitizeReason(std::string S) {
  for (char &C : S)
    if (C == ';' || C == '|' || C == '\n' || C == '\r')
      C = '_';
  return S;
}

/// ';'-joined "<verdict>|<witness-events>|<reason>" list, parallel to the
/// cycle list — the prediction verdicts' wire/journal form.
std::string
serializePredict(const std::vector<analysis::CyclePrediction> &Preds) {
  std::string Out;
  for (size_t I = 0; I != Preds.size(); ++I) {
    if (I)
      Out += ';';
    Out += analysis::predictVerdictName(Preds[I].Verdict);
    Out += '|';
    Out += std::to_string(Preds[I].WitnessEvents);
    Out += '|';
    Out += sanitizeReason(Preds[I].Reason);
  }
  return Out;
}

/// Parses serializePredict output. Anything unparseable (old journal,
/// count mismatch, unknown verdict) yields an empty vector: with no
/// verdicts the campaign neither reorders nor skips — the conservative
/// reading that never drops a repetition it should have run.
std::vector<analysis::CyclePrediction> parsePredict(const std::string &Text,
                                                    size_t NumCycles) {
  std::vector<analysis::CyclePrediction> Parsed;
  if (Text.empty())
    return Parsed;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t End = Text.find(';', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Item = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    size_t Bar1 = Item.find('|');
    analysis::CyclePrediction P;
    if (!analysis::predictVerdictFromName(Item.substr(0, Bar1), P.Verdict))
      return {};
    if (Bar1 != std::string::npos) {
      size_t Bar2 = Item.find('|', Bar1 + 1);
      P.WitnessEvents =
          std::strtoull(Item.c_str() + Bar1 + 1, nullptr, 10);
      if (Bar2 != std::string::npos)
        P.Reason = Item.substr(Bar2 + 1);
    }
    Parsed.push_back(std::move(P));
    if (End == Text.size())
      break;
  }
  if (Parsed.size() != NumCycles)
    return {};
  return Parsed;
}

/// Campaign-level counters for one committed repetition, recorded at the
/// in-order commit frontier so totals are identical for every Jobs value.
/// (Wall/cpu histograms are informational — wall-clock is never claimed
/// deterministic.)
void recordRepMetrics(telemetry::MetricsSnapshot &M, const RepOutcome &O) {
  ++M.Counters["dlf_campaign_reps_total"];
  std::string Cls = runClassName(O.Class);
  for (char &Ch : Cls)
    if (Ch == '-')
      Ch = '_';
  ++M.Counters["dlf_campaign_reps_" + Cls + "_total"];
  if (O.Attempts > 1)
    M.Counters["dlf_campaign_retries_total"] += O.Attempts - 1;
  M.Histograms["dlf_campaign_rep_wall_ms"].observe(
      static_cast<uint64_t>(O.WallMs));
  M.Histograms["dlf_campaign_rep_cpu_ms"].observe(
      static_cast<uint64_t>(O.CpuMs));
}

uint64_t backoffDelayMs(unsigned Attempt, uint64_t BaseMs, uint64_t CapMs) {
  uint64_t Ms = BaseMs ? BaseMs << std::min<unsigned>(Attempt, 20) : 0;
  return std::min(Ms, CapMs);
}

void backoffSleep(unsigned Attempt, uint64_t BaseMs, uint64_t CapMs) {
  uint64_t Ms = backoffDelayMs(Attempt, BaseMs, CapMs);
  if (Ms)
    usleep(static_cast<useconds_t>(Ms * 1000));
}

} // namespace

// -- CampaignRunner ----------------------------------------------------------

CampaignRunner::CampaignRunner(CampaignConfig Config)
    : Config(std::move(Config)) {}

uint64_t CampaignRunner::runTimeoutMs() const {
  return Config.RunTimeoutMs ? Config.RunTimeoutMs
                             : Config.Tester.Base.WatchdogMs;
}

uint64_t CampaignRunner::graceMs() const {
  return Config.GraceMs ? Config.GraceMs
                        : Config.Tester.Base.WatchdogGraceMs;
}

SandboxLimits CampaignRunner::childLimits() const {
  SandboxLimits L;
  L.TimeoutMs = runTimeoutMs();
  L.GraceMs = graceMs();
  L.CpuSeconds = Config.RlimitCpuS;
  L.AddressSpaceMb = Config.RlimitAsMb;
  L.CaptureStderr = true;
  return L;
}

JsonValue CampaignRunner::headerRecord() const {
  // Deliberately excludes Jobs: parallelism changes scheduling of the
  // host processes, not the seed-deterministic outcome of any repetition,
  // so journals resume interchangeably across --jobs values.
  JsonValue H = JsonValue::object();
  H.set("dlf_campaign", 1);
  H.set("benchmark", Config.BenchmarkName);
  H.set("p1mode", runModeName(Config.Tester.PhaseOneMode));
  H.set("kind", abstractionKindName(Config.Tester.Base.Kind));
  H.set("context", Config.Tester.Base.UseContext);
  H.set("yields", Config.Tester.Base.UseYields);
  H.set("p1seed", Config.Tester.PhaseOneSeed);
  H.set("p2base", Config.Tester.PhaseTwoSeedBase);
  H.set("reps", Config.Tester.PhaseTwoReps);
  H.set("timeout_ms", runTimeoutMs());
  H.set("max_retries", Config.MaxRetries);
  H.set("quarantine", Config.QuarantineThreshold);
  // IncludeGuarded changes which repetitions exist at all (skipped cycles
  // have none), so unlike Jobs it MUST fence journals apart.
  H.set("include_guarded", Config.IncludeGuarded);
  // The Phase I engine changes the cycle order (sound-first reorder) and,
  // in predict mode, which repetitions exist — it must fence too.
  H.set("phase1", phase1EngineName(Config.Phase1));
  return H;
}

bool CampaignRunner::headerMatches(const JsonValue &Header,
                                   std::string *Why) const {
  std::string Expected = headerRecord().dump();
  std::string Got = Header.dump();
  if (Expected == Got)
    return true;
  if (Why)
    *Why = "journal header " + Got + " does not match configuration " +
           Expected;
  return false;
}

std::string CampaignRunner::resolveSidecarDir() {
  if (!Config.Telemetry)
    return std::string();
  std::string Dir = Config.SidecarDir;
  if (Dir.empty()) {
    if (!Config.JournalPath.empty()) {
      Dir = Config.JournalPath + ".sidecars";
    } else {
      const char *Tmp = std::getenv("TMPDIR");
      Dir = std::string(Tmp && *Tmp ? Tmp : "/tmp") + "/dlf-sidecars-" +
            std::to_string(static_cast<unsigned long>(getpid()));
    }
  }
  if (!makeDirs(Dir))
    return std::string(); // degrade: campaign metrics without child detail
  return Dir;
}

void CampaignRunner::journalAppend(const JsonValue &Record) {
  if (!Writer.isOpen() || JournalDegraded)
    return; // journal-less campaigns are legal; degraded ones run in memory
  if (Writer.append(Record))
    ++JournalRecords;
  else
    degradeJournal(Writer.lastError());
}

void CampaignRunner::degradeJournal(const std::string &Why) {
  // Persistent journal failure (ENOSPC, EIO, ...): self-heal by finishing
  // the campaign in memory. The prefix already on disk is still valid, but
  // it no longer reflects the work this process goes on to do, so the
  // epilogue renames it aside to make it non-resumable.
  JournalDegraded = true;
  JournalDegradedWhy = Why;
  Writer.close();
  std::fprintf(stderr,
               "dlf-campaign: journal append failed (%s); continuing "
               "in-memory — results will be complete but the journal is no "
               "longer resumable\n",
               Why.c_str());
}

bool CampaignRunner::runPhaseOneSandboxed(CampaignReport &Report,
                                          JsonValue &Record) {
  std::string LastTriage = "never ran";
  // ActiveTester consumes PhaseOneRetries+1 consecutive seeds internally; a
  // sandbox-level retry after the child actually ran (hung, crashed, broke
  // the protocol) steps past that range so every observation uses a fresh
  // seed. A spawn failure (fork EAGAIN — the child never ran) restarts with
  // the SAME seed, so transient resource pressure cannot change which
  // cycles phase 1 observes.
  unsigned SeedSteps = 0;
  for (unsigned Attempt = 0; Attempt <= Config.MaxRetries; ++Attempt) {
    uint64_t Seed = Config.Tester.PhaseOneSeed +
                    SeedSteps * (Config.Tester.PhaseOneRetries + 1);
    Report.PhaseOneSeeds.push_back(Seed);
    ++Report.PhaseOneAttempts;

    ActiveTesterConfig TC = Config.Tester;
    TC.PhaseOneSeed = Seed;
    // The closure keeps guard-lock cycles so the pruner can see, classify,
    // and *name* them; whether Phase II spends budget on them is the
    // IncludeGuarded policy decision, applied at dispatch time.
    TC.Goodlock.KeepGuardedCycles = true;
    // Prediction needs the observation as an event trace, not just the
    // dependency log.
    TC.RecordTrace = Config.Phase1 != Phase1Engine::IGoodlock;
    std::string SidecarPath;
    if (!SidecarDirInUse.empty())
      SidecarPath =
          SidecarDirInUse + "/p1_a" + std::to_string(Attempt) + ".sidecar";
    uint64_t LaunchUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - TelemetryEpoch)
            .count());
    SandboxResult SR = runInSandbox(
        [&](int Fd) {
          if (!SidecarPath.empty()) {
            setenv(telemetry::SidecarEnvVar, SidecarPath.c_str(), 1);
            telemetry::beginChildTelemetry();
          }
          ActiveTester T(Config.Entry, TC);
          PhaseOneResult P1 = T.runPhaseOne();
          std::vector<analysis::CycleClassification> Classes =
              analysis::classifyCycles(P1.Log, P1.Cycles);
          std::ostringstream Head;
          Head << "p1 completed=" << (P1.Exec.Completed ? 1 : 0)
               << " exhausted=" << (P1.RetriesExhausted ? 1 : 0)
               << " seeds=" << P1.SeedsTried.size() << "\n";
          Head << "prune " << serializePrune(Classes) << "\n";
          if (TC.RecordTrace) {
            // Sync-preserving verdicts over the captured trace (serial:
            // the child is already one process of a possibly parallel
            // campaign, and verdicts are jobs-independent anyway).
            analysis::TraceFile Trace;
            Trace.Events = std::move(P1.Trace);
            std::vector<analysis::CyclePrediction> Preds =
                analysis::evaluateCycles(Trace, P1.Cycles);
            Head << "predict " << serializePredict(Preds) << "\n";
          }
          writeAll(Fd, Head.str());
          writeAll(Fd, serializeCycles(P1.Cycles));
          if (!SidecarPath.empty())
            telemetry::flushChildTelemetry();
          return 0;
        },
        childLimits());

    if (Config.Telemetry)
      ++Report.Metrics.Counters["dlf_campaign_phase1_attempts_total"];
    // Merges the Phase I child's own metrics (scheduler, closure, pruner)
    // and rebases its timeline as pid 2. Called only on the attempt that
    // definitively succeeds, so a retried attempt never double-counts.
    auto MergePhaseOneSidecar = [&]() {
      if (SidecarPath.empty())
        return;
      telemetry::MetricsSnapshot Snap;
      std::vector<telemetry::TraceEvent> Events;
      std::map<uint32_t, std::string> Threads;
      bool Complete = false;
      if (telemetry::readSidecar(SidecarPath, Snap, Events, Threads,
                                 &Complete)) {
        Report.Metrics.merge(Snap);
        if (!Events.empty())
          Report.TimelineProcessNames[2] = "phase 1";
        for (telemetry::TraceEvent E : Events) {
          E.Pid = 2;
          E.TsUs += LaunchUs;
          Report.Timeline.push_back(std::move(E));
        }
        for (const auto &KV : Threads)
          Report.TimelineThreadNames[(uint64_t(2) << 32) | KV.first] =
              KV.second;
      }
      if (!Complete)
        ++Report.Metrics.Counters["dlf_campaign_sidecars_missing_total"];
    };

    if (SR.Status == SandboxStatus::Completed) {
      size_t Nl = SR.Payload.find('\n');
      std::string Head = SR.Payload.substr(0, Nl);
      std::string Doc =
          Nl == std::string::npos ? std::string() : SR.Payload.substr(Nl + 1);
      // Optional second protocol line: the pruner verdicts. Peeled off
      // before the cycle document; absent (defensively) means no verdicts.
      std::string PruneText;
      if (Doc.rfind("prune", 0) == 0) {
        size_t PruneNl = Doc.find('\n');
        std::string PruneLine =
            Doc.substr(0, PruneNl == std::string::npos ? Doc.size() : PruneNl);
        Doc = PruneNl == std::string::npos ? std::string()
                                           : Doc.substr(PruneNl + 1);
        if (PruneLine.size() > 6)
          PruneText = PruneLine.substr(6);
      }
      // Optional third protocol line: the prediction verdicts (--phase1
      // predict/both). Same peel-before-the-document discipline.
      std::string PredictText;
      if (Doc.rfind("predict", 0) == 0) {
        size_t PredNl = Doc.find('\n');
        std::string PredLine =
            Doc.substr(0, PredNl == std::string::npos ? Doc.size() : PredNl);
        Doc = PredNl == std::string::npos ? std::string()
                                          : Doc.substr(PredNl + 1);
        if (PredLine.size() > 8)
          PredictText = PredLine.substr(8);
      }
      auto Kv = parseKvLine(Head);
      std::string ParseError;
      if (Kv.count("completed") == 0 ||
          !deserializeCycles(Doc, Report.Cycles, &ParseError)) {
        LastTriage = "phase 1 result protocol violation: " + ParseError;
        ++SeedSteps; // the child ran; take a fresh observation seed
        if (!SidecarPath.empty())
          unlink(SidecarPath.c_str());
        if (Attempt < Config.MaxRetries) {
          if (Config.Telemetry)
            ++Report.Metrics.Counters["dlf_campaign_worker_restarts_total"];
          backoffSleep(Attempt, Config.BackoffBaseMs, Config.BackoffCapMs);
        }
        continue;
      }
      Report.PhaseOneCompleted = Kv["completed"] == "1";
      Report.Classifications = parsePrune(PruneText, Report.Cycles.size());
      Report.Predictions = parsePredict(PredictText, Report.Cycles.size());
      // Sound-first stable reorder (predict/both): Phase II budget reaches
      // the realizable cycles before any UNCONFIRMED one, and in predict
      // mode the skipped suffix is contiguous. Applied BEFORE the journal
      // record is built, so cycle indices mean the same thing on resume.
      if (Config.Phase1 != Phase1Engine::IGoodlock &&
          Report.Predictions.size() == Report.Cycles.size()) {
        std::vector<size_t> Order(Report.Cycles.size());
        for (size_t I = 0; I != Order.size(); ++I)
          Order[I] = I;
        std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
          return Report.Predictions[A].sound() > Report.Predictions[B].sound();
        });
        std::vector<AbstractCycle> Cycles;
        std::vector<analysis::CycleClassification> Classes;
        std::vector<analysis::CyclePrediction> Preds;
        for (size_t I : Order) {
          Cycles.push_back(std::move(Report.Cycles[I]));
          if (I < Report.Classifications.size())
            Classes.push_back(std::move(Report.Classifications[I]));
          Preds.push_back(std::move(Report.Predictions[I]));
        }
        Report.Cycles = std::move(Cycles);
        Report.Classifications = std::move(Classes);
        Report.Predictions = std::move(Preds);
      }
      MergePhaseOneSidecar();
      if (!SidecarPath.empty())
        unlink(SidecarPath.c_str());

      Record = JsonValue::object();
      Record.set("event", "phase1");
      Record.set("completed", Report.PhaseOneCompleted);
      Record.set("attempts", Report.PhaseOneAttempts);
      JsonValue Seeds = JsonValue::array();
      for (uint64_t S : Report.PhaseOneSeeds)
        Seeds.push(JsonValue(S));
      Record.set("seeds", std::move(Seeds));
      Record.set("cycles", serializeCycles(Report.Cycles));
      Record.set("prune", serializePrune(Report.Classifications));
      Record.set("predict", serializePredict(Report.Predictions));
      return true;
    }

    LastTriage = SR.triage();
    if (SR.Status != SandboxStatus::ForkFailed)
      ++SeedSteps; // the child ran; take a fresh observation seed
    if (!SidecarPath.empty())
      unlink(SidecarPath.c_str());
    DLF_DEBUG_LOG("phase 1 sandboxed attempt " << Attempt
                                               << " failed: " << LastTriage);
    if (Attempt < Config.MaxRetries) {
      if (Config.Telemetry)
        ++Report.Metrics.Counters["dlf_campaign_worker_restarts_total"];
      backoffSleep(Attempt, Config.BackoffBaseMs, Config.BackoffCapMs);
    }
  }
  Report.Error = "phase 1 failed after " +
                 std::to_string(Config.MaxRetries + 1) +
                 " sandboxed attempts; last: " + LastTriage;
  return false;
}

void CampaignRunner::accumulate(CycleCampaignStats &S, const RepOutcome &O) {
  ++S.Reps;
  S.RetriesSpent += O.Attempts - 1;
  S.TotalThrashes += O.Thrashes;
  S.TotalForcedUnpauses += O.ForcedUnpauses;
  S.TotalWallMs += O.WallMs;
  switch (O.Class) {
  case RunClass::Completed:
    ++S.CleanRuns;
    break;
  case RunClass::Reproduced:
    ++S.Reproduced;
    break;
  case RunClass::OtherDeadlock:
    ++S.OtherDeadlocks;
    break;
  case RunClass::Stalled:
    ++S.Stalls;
    break;
  case RunClass::Hung:
    ++S.Hung;
    break;
  case RunClass::CrashedSignal:
    ++S.CrashedSignal;
    break;
  case RunClass::CrashedExit:
    ++S.CrashedExit;
    break;
  case RunClass::OutOfMemory:
    ++S.Oom;
    break;
  }
}

// -- Phase II dispatcher -----------------------------------------------------

namespace {

/// Per-cycle dispatch/commit bookkeeping.
struct CycleProgress {
  unsigned Frontier = 0;            ///< next rep index to commit, in order
  unsigned NextDispatch = 0;        ///< next rep index to launch fresh
  unsigned ConsecutiveFailures = 0; ///< transient classes at the frontier
  bool Quarantined = false;
};

/// What a pool ticket was running.
struct FlightInfo {
  unsigned Cycle = 0;
  unsigned Rep = 0;
  unsigned Attempt = 0;
  /// Child telemetry sidecar (empty when telemetry is off).
  std::string SidecarPath;
  /// Launch time in µs since the campaign telemetry epoch.
  uint64_t StartUs = 0;
  /// Worker-lane index for the timeline (smallest free slot at launch).
  uint32_t Lane = 0;
};

/// A repetition waiting out its retry backoff before relaunch.
struct RetryItem {
  unsigned Cycle = 0;
  unsigned Rep = 0;
  unsigned Attempt = 0; ///< attempt index to run next
  std::chrono::steady_clock::time_point NotBefore;
};

/// A finalized outcome waiting for the in-order commit to reach it.
/// Telemetry captured from the final attempt rides along so sidecar data
/// is only merged if — and when — the outcome commits at the frontier.
struct PendingOutcome {
  RepOutcome O;
  bool Replayed = false;
  telemetry::MetricsSnapshot Metrics;
  std::vector<telemetry::TraceEvent> Events;
  std::map<uint32_t, std::string> ChildThreads;
  bool HadSidecarPath = false;
  bool SidecarComplete = false;
  uint64_t StartUs = 0;
  uint64_t EndUs = 0;
  uint32_t Lane = 0;
};

} // namespace

void CampaignRunner::runPhaseTwo(
    CampaignReport &Report,
    std::map<std::pair<unsigned, unsigned>, RepOutcome> &Replay,
    std::map<unsigned, std::string> &JournaledQuarantines, bool HaveDone) {
  using Clock = std::chrono::steady_clock;
  const unsigned NumCycles = static_cast<unsigned>(Report.Cycles.size());
  const unsigned Reps = Config.Tester.PhaseTwoReps;

  const Clock::time_point Start = Clock::now();
  Clock::time_point Deadline = Clock::time_point::max();
  if (Config.BudgetS)
    Deadline = Start + std::chrono::seconds(Config.BudgetS);

  WorkerPool Pool(WorkerPool::resolveJobs(Config.Jobs));
  Report.JobsUsed = Pool.jobs();

  std::vector<CycleProgress> Progress(NumCycles);
  // Statically discharged cycles consume no repetition budget unless
  // IncludeGuarded overrides: their frontier starts fully committed, so the
  // commit walk, journal, and resume all agree the cycle has nothing to do.
  // Under --phase1 predict, an UNCONFIRMED verdict discharges the same way
  // (the engine is sound: a cycle with no witness in the observation gets
  // no budget); --phase1 both keeps iGoodlock's budget policy and uses
  // verdicts for ordering/reporting only.
  for (unsigned C = 0; C != NumCycles; ++C) {
    bool PrunerSkip = C < Report.Classifications.size() &&
                      !Report.Classifications[C].schedulable();
    bool PredictSkip = Config.Phase1 == Phase1Engine::Predict &&
                       C < Report.Predictions.size() &&
                       !Report.Predictions[C].sound();
    if (!Config.IncludeGuarded && (PrunerSkip || PredictSkip)) {
      Progress[C].Frontier = Reps;
      Progress[C].NextDispatch = Reps;
      Report.PerCycle[C].Skipped = true;
    }
  }
  // Journaled outcomes enter the commit queue up front; fresh results join
  // them as children finish (possibly out of order).
  std::map<std::pair<unsigned, unsigned>, PendingOutcome> Pending;
  for (auto &KV : Replay)
    Pending[KV.first] = {KV.second, /*Replayed=*/true};

  std::map<uint64_t, FlightInfo> Flight;
  std::vector<RetryItem> Retries;
  unsigned CommitCycle = 0;

  // Timeline worker lanes: each launch takes the smallest free slot, so
  // the trace shows pool occupancy directly. The status plane reuses the
  // same lane bookkeeping for its worker view, so lanes are tracked
  // whenever either consumer is on.
  const bool TrackLanes = Config.Telemetry || Config.Status != nullptr;
  std::vector<char> LaneBusy;
  bool StatusDirty = Config.Status != nullptr;
  auto ElapsedUs = [&]() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - TelemetryEpoch)
            .count());
  };
  if (Config.Telemetry)
    Report.TimelineProcessNames[1] = "campaign workers";

  enum class StopReason { None, Sigint, Hook, Budget };
  StopReason Stop = StopReason::None;

  // Every attempt of a repetition runs the SAME seed: a supervised restart
  // after a transient failure must converge to the classification a
  // fault-free run would have produced, otherwise environmental crashes
  // (and injected chaos) would perturb the campaign's committed counts.
  auto SeedFor = [&](unsigned Rep) {
    return Config.Tester.PhaseTwoSeedBase + Rep;
  };

  auto LaunchAttempt = [&](unsigned C, unsigned R, unsigned Attempt) {
    uint64_t Seed = SeedFor(R);
    const AbstractCycle &Cycle = Report.Cycles[C];
    // Child-site faults are decided here, in the parent, where the plan's
    // counters live; the child just applies the verdict after the fork.
    faultinject::ChildFaults CF;
    if (faultinject::enabled())
      CF = faultinject::plan().childFaults(C, R, Attempt);
    std::string SidecarPath;
    if (!SidecarDirInUse.empty())
      SidecarPath = SidecarDirInUse + "/c" + std::to_string(C) + "_r" +
                    std::to_string(R) + "_a" + std::to_string(Attempt) +
                    ".sidecar";
    uint32_t Lane = 0;
    if (TrackLanes) {
      while (Lane < LaneBusy.size() && LaneBusy[Lane])
        ++Lane;
      if (Lane == LaneBusy.size())
        LaneBusy.push_back(0);
      LaneBusy[Lane] = 1;
    }
    uint64_t Ticket = Pool.launch(
        [this, C, R, Attempt, Seed, &Cycle, SidecarPath, CF](int Fd) {
          if (!SidecarPath.empty()) {
            setenv(telemetry::SidecarEnvVar, SidecarPath.c_str(), 1);
            telemetry::beginChildTelemetry();
          }
          // Unconditional: also marks this process as a campaign child so
          // the inherited global plan cannot double-fire sidecar faults.
          faultinject::applyChildFaults(CF);
          if (Config.ChildFaultHook)
            Config.ChildFaultHook(C, R, Attempt);
          const ActiveTesterConfig &TC = Config.Tester;
          ActiveTester T(Config.Entry, TC);
          ExecutionResult E = T.runOnce(Cycle, Seed);
          const char *Cls = "completed";
          if (E.DeadlockFound && E.Witness)
            Cls = ActiveTester::witnessMatchesCycle(*E.Witness, Cycle,
                                                    TC.Base.Kind,
                                                    TC.Base.UseContext)
                      ? "reproduced"
                      : "other-deadlock";
          else if (E.Stalled || E.LivelockAborted)
            Cls = "stalled";
          std::ostringstream Line;
          Line << "p2 class=" << Cls << " thrashes=" << E.Thrashes
               << " unpauses=" << E.ForcedUnpauses << "\n";
          writeAll(Fd, Line.str());
          if (!SidecarPath.empty())
            telemetry::flushChildTelemetry();
          return 0;
        },
        childLimits());
    Flight[Ticket] = {C, R, Attempt, SidecarPath, ElapsedUs(), Lane};
    StatusDirty = true;
  };

  auto Classify = [](const SandboxResult &SR, RepOutcome &O) {
    O.WallMs = SR.WallMs;
    O.CpuMs = SR.CpuMs;
    O.Diagnostic.clear();
    bool Definitive = false;
    switch (SR.Status) {
    case SandboxStatus::Completed: {
      auto Kv = parseKvLine(SR.Payload);
      RunClass Parsed;
      if (Kv.count("class") && runClassFromName(Kv["class"], Parsed)) {
        O.Class = Parsed;
        O.Thrashes = std::strtoull(Kv["thrashes"].c_str(), nullptr, 10);
        O.ForcedUnpauses =
            std::strtoull(Kv["unpauses"].c_str(), nullptr, 10);
        Definitive = true;
      } else {
        // Exited 0 without a parseable result line: the child broke the
        // protocol (e.g. crashed inside the serializer); retry like any
        // other process-level failure.
        O.Class = RunClass::CrashedExit;
        O.Diagnostic = "result protocol violation; payload: " +
                       SR.Payload.substr(0, 120);
      }
      break;
    }
    case SandboxStatus::Hung:
      O.Class = RunClass::Hung;
      O.Diagnostic = SR.triage();
      break;
    case SandboxStatus::Signaled:
      O.Class = RunClass::CrashedSignal;
      O.Diagnostic = SR.triage();
      break;
    case SandboxStatus::OutOfMemory:
      O.Class = RunClass::OutOfMemory;
      O.Diagnostic = SR.triage();
      break;
    case SandboxStatus::Exited:
    case SandboxStatus::ForkFailed:
      O.Class = RunClass::CrashedExit;
      O.Diagnostic = SR.triage();
      break;
    }
    return Definitive;
  };

  // Finalizes one finished child: retry a transient failure (when retries
  // remain and we are not draining) or queue the outcome for commit.
  auto HandleCompletion = [&](PoolCompletion &PC, bool AllowRetry) {
    auto It = Flight.find(PC.Ticket);
    if (It == Flight.end())
      return; // canceled speculative work
    FlightInfo FI = It->second;
    Flight.erase(It);
    if (TrackLanes && FI.Lane < LaneBusy.size())
      LaneBusy[FI.Lane] = 0;
    StatusDirty = true;
    Report.ChildCpuMs += PC.Result.CpuMs;
    if (Progress[FI.Cycle].Quarantined) {
      if (!FI.SidecarPath.empty())
        unlink(FI.SidecarPath.c_str());
      return; // speculation past a quarantine; discard
    }

    RepOutcome O;
    O.CycleIdx = FI.Cycle;
    O.Rep = FI.Rep;
    O.Attempts = FI.Attempt + 1;
    O.Seed = SeedFor(FI.Rep);
    bool Definitive = Classify(PC.Result, O);
    if (!Definitive && FI.Attempt < Config.MaxRetries) {
      // Non-final attempt: its sidecar is discarded — only the final
      // attempt's telemetry can merge, keeping totals jobs-deterministic.
      if (!FI.SidecarPath.empty())
        unlink(FI.SidecarPath.c_str());
      if (AllowRetry) {
        DLF_DEBUG_LOG("rep " << FI.Cycle << "/" << FI.Rep << " attempt "
                             << FI.Attempt << " " << runClassName(O.Class)
                             << "; restarting with the same seed");
        // Counted live at restart-scheduling time, so an operator watching
        // the metrics sees supervision working as it happens. Unlike
        // dlf_campaign_retries_total (counted at the commit frontier) this
        // includes restarts of work a drain later drops, so it is
        // operational — not jobs-deterministic.
        if (Config.Telemetry)
          ++Report.Metrics.Counters["dlf_campaign_worker_restarts_total"];
        uint64_t DelayMs = backoffDelayMs(FI.Attempt, Config.BackoffBaseMs,
                                          Config.BackoffCapMs);
        Retries.push_back({FI.Cycle, FI.Rep, FI.Attempt + 1,
                           Clock::now() + std::chrono::milliseconds(DelayMs)});
      }
      // While draining, the unfinished repetition is dropped un-journaled:
      // resume re-runs it from attempt 0 and, by per-seed determinism,
      // reaches the same final classification.
      return;
    }
    PendingOutcome PO;
    PO.O = std::move(O);
    PO.Replayed = false;
    PO.StartUs = FI.StartUs;
    PO.EndUs = ElapsedUs();
    PO.Lane = FI.Lane;
    if (!FI.SidecarPath.empty()) {
      PO.HadSidecarPath = true;
      telemetry::readSidecar(FI.SidecarPath, PO.Metrics, PO.Events,
                             PO.ChildThreads, &PO.SidecarComplete);
      unlink(FI.SidecarPath.c_str());
    }
    Pending[{FI.Cycle, FI.Rep}] = std::move(PO);
  };

  // Quarantine kills the cycle's speculative children and retries, and
  // drops its uncommitted outcomes so nothing past the quarantine point is
  // ever journaled — exactly the records a serial campaign writes.
  auto CancelCycle = [&](unsigned C) {
    for (auto It = Flight.begin(); It != Flight.end();) {
      if (It->second.Cycle == C) {
        Pool.cancel(It->first);
        if (TrackLanes && It->second.Lane < LaneBusy.size())
          LaneBusy[It->second.Lane] = 0;
        if (!It->second.SidecarPath.empty())
          unlink(It->second.SidecarPath.c_str());
        It = Flight.erase(It);
      } else {
        ++It;
      }
    }
    Retries.erase(std::remove_if(Retries.begin(), Retries.end(),
                                 [C](const RetryItem &RI) {
                                   return RI.Cycle == C;
                                 }),
                  Retries.end());
    for (auto It = Pending.lower_bound({C, 0});
         It != Pending.end() && It->first.first == C;)
      It = Pending.erase(It);
    Progress[C].NextDispatch = Reps;
  };

  // Commits queued outcomes strictly in (cycle, rep) order: journal (fresh
  // ones only), accumulate, and apply the quarantine policy at the commit
  // frontier — identical to the serial walk whatever order children finish.
  auto CommitReady = [&]() {
    while (CommitCycle < NumCycles) {
      CycleProgress &P = Progress[CommitCycle];
      CycleCampaignStats &S = Report.PerCycle[CommitCycle];
      if (P.Quarantined || P.Frontier == Reps) {
        ++CommitCycle;
        continue;
      }
      auto It = Pending.find({CommitCycle, P.Frontier});
      if (It == Pending.end())
        return;
      PendingOutcome PO = std::move(It->second);
      Pending.erase(It);
      ++P.Frontier;
      StatusDirty = true;

      const RepOutcome &O = PO.O;
      if (PO.Replayed) {
        ++Report.RepsReplayed;
      } else {
        ++Report.RepsExecuted;
        JsonValue Rec = JsonValue::object();
        Rec.set("event", "rep");
        Rec.set("cycle", O.CycleIdx);
        Rec.set("rep", O.Rep);
        Rec.set("class", runClassName(O.Class));
        Rec.set("attempts", O.Attempts);
        Rec.set("seed", O.Seed);
        Rec.set("thrashes", O.Thrashes);
        Rec.set("unpauses", O.ForcedUnpauses);
        Rec.set("wall_ms", O.WallMs);
        Rec.set("cpu_ms", O.CpuMs);
        if (!O.Diagnostic.empty())
          Rec.set("diag", O.Diagnostic);
        journalAppend(Rec);
        if (faultinject::fires("runner.kill")) {
          // Chaos: abrupt runner death right after this record became
          // durable. PDEATHSIG takes the children down with us; resume
          // must pick up from exactly this point.
          Writer.close();
          ::raise(SIGKILL);
        }
        // The /events stream mirrors the journal: one "commit" per fresh
        // frontier record, in the exact order the journal receives them.
        if (Config.Status)
          Config.Status->publishEvent("commit", Rec.dump());
      }

      accumulate(S, O);
      if (Config.Telemetry) {
        recordRepMetrics(Report.Metrics, O);
        if (!PO.Replayed) {
          // The frontier is the one place child telemetry enters the
          // report: canceled speculation and non-final attempts never get
          // here, so merged counter totals match the serial campaign.
          Report.Metrics.merge(PO.Metrics);
          if (PO.HadSidecarPath && !PO.SidecarComplete)
            ++Report.Metrics.Counters["dlf_campaign_sidecars_missing_total"];
          Report.Timeline.push_back(telemetry::TraceEvent{
              'X', 1, PO.Lane, PO.StartUs, PO.EndUs - PO.StartUs,
              "c" + std::to_string(O.CycleIdx) + "/r" +
                  std::to_string(O.Rep) + ":" + runClassName(O.Class)});
          Report.TimelineThreadNames[(uint64_t(1) << 32) | PO.Lane] =
              "worker " + std::to_string(PO.Lane);
          if (!PO.Events.empty()) {
            uint32_t Pid = 10 + O.CycleIdx * Reps + O.Rep;
            Report.TimelineProcessNames[Pid] =
                "cycle " + std::to_string(O.CycleIdx) + " rep " +
                std::to_string(O.Rep);
            for (telemetry::TraceEvent E : PO.Events) {
              E.Pid = Pid;
              E.TsUs += PO.StartUs;
              Report.Timeline.push_back(std::move(E));
            }
            for (const auto &KV : PO.ChildThreads)
              Report.TimelineThreadNames[(uint64_t(Pid) << 32) | KV.first] =
                  KV.second;
          }
        }
      }
      if (runClassIsTransient(O.Class))
        ++P.ConsecutiveFailures;
      else
        P.ConsecutiveFailures = 0;

      if (Config.QuarantineThreshold &&
          P.ConsecutiveFailures >= Config.QuarantineThreshold) {
        P.Quarantined = true;
        S.Quarantined = true;
        std::ostringstream Reason;
        Reason << P.ConsecutiveFailures
               << " consecutive failed repetitions (last: "
               << runClassName(O.Class)
               << (O.Diagnostic.empty() ? "" : "; " + O.Diagnostic) << ")";
        S.QuarantineReason = Reason.str();
        if (Config.Telemetry)
          ++Report.Metrics.Counters["dlf_campaign_quarantines_total"];
        CancelCycle(CommitCycle);
        if (Config.Status) {
          JsonValue Ev = JsonValue::object();
          Ev.set("cycle", CommitCycle);
          Ev.set("reason", S.QuarantineReason);
          Config.Status->publishEvent("quarantine", Ev.dump());
        }
        if (!JournaledQuarantines.count(CommitCycle)) {
          JsonValue Rec = JsonValue::object();
          Rec.set("event", "quarantine");
          Rec.set("cycle", CommitCycle);
          Rec.set("reason", S.QuarantineReason);
          journalAppend(Rec);
        }
      }
    }
  };

  // Next repetition that needs a fresh (attempt 0) child, in dispatch
  // order. Replayed repetitions are skipped: their outcome is queued.
  auto PeekFresh = [&]() -> std::optional<std::pair<unsigned, unsigned>> {
    for (unsigned C = CommitCycle; C < NumCycles; ++C) {
      CycleProgress &P = Progress[C];
      if (P.Quarantined)
        continue;
      while (P.NextDispatch < Reps && Replay.count({C, P.NextDispatch}))
        ++P.NextDispatch;
      if (P.NextDispatch < Reps)
        return std::make_pair(C, P.NextDispatch);
    }
    return std::nullopt;
  };

  auto Dispatch = [&]() {
    while (Stop == StopReason::None && Pool.hasCapacity()) {
      // Ripe retries first: they hold the commit frontier back.
      auto Now = Clock::now();
      auto Ripe = std::find_if(Retries.begin(), Retries.end(),
                               [&](const RetryItem &RI) {
                                 return RI.NotBefore <= Now;
                               });
      if (Ripe != Retries.end()) {
        RetryItem RI = *Ripe;
        Retries.erase(Ripe);
        LaunchAttempt(RI.Cycle, RI.Rep, RI.Attempt);
        continue;
      }
      auto Fresh = PeekFresh();
      if (!Fresh)
        return;
      // The stop/budget gates sit where the serial loop had them: before
      // each fresh repetition (in-flight retries are not re-gated).
      if (Config.ShouldStop && Config.ShouldStop()) {
        Stop = StopReason::Hook;
        return;
      }
      if (Now >= Deadline) {
        Stop = StopReason::Budget;
        return;
      }
      LaunchAttempt(Fresh->first, Fresh->second, /*Attempt=*/0);
      ++Progress[Fresh->first].NextDispatch;
    }
  };

  auto AllCommitted = [&]() {
    for (unsigned C = 0; C != NumCycles; ++C)
      if (!Progress[C].Quarantined && Progress[C].Frontier != Reps)
        return false;
    return true;
  };

  // Builds the /status snapshot. Every count is read at the commit
  // frontier, so the snapshot a scraper sees at a given frontier position
  // is byte-identical across --jobs values; worker occupancy and the
  // throughput block describe this process only.
  auto BuildStatus = [&](const char *Phase) {
    serve::CampaignStatus St;
    St.Tool = "dlf-run";
    St.Benchmark = Config.BenchmarkName;
    St.Phase = Phase;
    St.Jobs = Report.JobsUsed;
    St.CyclesFound = NumCycles;
    St.RepsExecuted = Report.RepsExecuted;
    St.RepsReplayed = Report.RepsReplayed;
    St.JournalRecords = JournalRecords;
    unsigned Remaining = 0;
    for (unsigned C = 0; C != NumCycles; ++C) {
      const CycleCampaignStats &S = Report.PerCycle[C];
      serve::CycleStatus CS;
      CS.Index = C;
      CS.RepsTotal = S.Skipped ? 0 : Reps;
      CS.RepsDone = S.Skipped ? 0 : Progress[C].Frontier;
      CS.Reproduced = S.Reproduced;
      CS.OtherDeadlocks = S.OtherDeadlocks;
      CS.Stalls = S.Stalls;
      CS.CleanRuns = S.CleanRuns;
      CS.Hung = S.Hung;
      CS.Crashed = S.CrashedSignal + S.CrashedExit;
      CS.Oom = S.Oom;
      CS.Retries = S.RetriesSpent;
      CS.Quarantined = S.Quarantined;
      CS.Skipped = S.Skipped;
      CS.Classification = S.Classification;
      CS.Prediction = S.Prediction;
      St.RepsTotal += CS.RepsTotal;
      St.RepsCommitted += CS.RepsDone;
      St.RetriesSpent += S.RetriesSpent;
      if (S.Quarantined)
        ++St.Quarantines;
      else
        Remaining += CS.RepsTotal - CS.RepsDone;
      St.PerCycle.push_back(std::move(CS));
    }
    St.Workers.resize(LaneBusy.size());
    for (size_t L = 0; L != LaneBusy.size(); ++L) {
      St.Workers[L].Lane = static_cast<uint32_t>(L);
      St.Workers[L].Busy = LaneBusy[L] != 0;
    }
    for (const auto &KV : Flight) {
      const FlightInfo &FI = KV.second;
      if (FI.Lane < St.Workers.size()) {
        serve::WorkerStatus &W = St.Workers[FI.Lane];
        W.Cycle = FI.Cycle;
        W.Rep = FI.Rep;
        W.Attempt = FI.Attempt;
      }
    }
    St.WallMs =
        std::chrono::duration<double, std::milli>(Clock::now() - Start)
            .count();
    St.RepsPerSecond = St.WallMs > 0.0
                           ? Report.RepsExecuted / (St.WallMs / 1000.0)
                           : 0.0;
    if (St.RepsPerSecond > 0.0)
      St.EtaSeconds = Remaining / St.RepsPerSecond;
    St.Complete = Report.CampaignComplete;
    St.Interrupted = Report.Interrupted;
    return St;
  };

  // -- Dispatch/collect loop.
  for (;;) {
    CommitReady();
    if (Stop != StopReason::None)
      break;
    // The interrupt check precedes the completion check: a SIGINT that
    // lands while the final repetitions commit is still honored (and its
    // pending flag consumed) rather than lost to a completion race.
    if (interruptRequested()) {
      GInterruptRequested = 0; // the request is being honored; consume it
      Stop = StopReason::Sigint;
      break;
    }
    if (AllCommitted())
      break;
    Dispatch();
    if (Stop != StopReason::None)
      break;

    std::vector<PoolCompletion> Done = Pool.poll(/*WaitMs=*/1);
    for (PoolCompletion &PC : Done)
      HandleCompletion(PC, /*AllowRetry=*/true);

    // Publish at most once per loop iteration, and only when something
    // changed: the sink copies under its own mutex and never does network
    // I/O here, so the analysis loop cannot block on a slow scraper.
    if (Config.Status && StatusDirty) {
      StatusDirty = false;
      Config.Status->publishStatus(BuildStatus("phase2"));
      if (Config.Telemetry)
        Config.Status->publishMetrics(Report.Metrics);
    }

    // Nothing in flight and only unripe retries left: sleep toward the
    // earliest backoff expiry instead of spinning (SIGINT still wakes us
    // via EINTR).
    if (Pool.inFlight() == 0 && Done.empty() && !Retries.empty()) {
      auto Next = std::min_element(Retries.begin(), Retries.end(),
                                   [](const RetryItem &A, const RetryItem &B) {
                                     return A.NotBefore < B.NotBefore;
                                   })
                      ->NotBefore;
      auto Now = Clock::now();
      if (Next > Now) {
        auto Us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Next - Now)
                      .count();
        usleep(static_cast<useconds_t>(
            std::min<long long>(std::max<long long>(Us, 1000), 50'000)));
      }
    }
  }

  // -- Graceful drain: stop dispatching, let in-flight children finish
  // naturally (their watchdogs bound the wait), and commit the in-order
  // prefix of what they produced. Outcomes past the first gap are dropped
  // un-journaled; resume re-executes them deterministically.
  if (Stop != StopReason::None) {
    std::vector<PoolCompletion> Rest;
    Pool.drainAll(Rest);
    for (PoolCompletion &PC : Rest)
      HandleCompletion(PC, /*AllowRetry=*/false);
    CommitReady();
  }

  switch (Stop) {
  case StopReason::None:
    Report.CampaignComplete = true;
    if (!HaveDone) {
      JsonValue Rec = JsonValue::object();
      Rec.set("event", "done");
      journalAppend(Rec);
    }
    break;
  case StopReason::Sigint:
  case StopReason::Hook:
  case StopReason::Budget: {
    JsonValue Rec = JsonValue::object();
    Rec.set("event", "interrupted");
    Rec.set("reason", Stop == StopReason::Sigint  ? "sigint"
                      : Stop == StopReason::Hook  ? "stop"
                                                  : "budget");
    journalAppend(Rec);
    Report.Interrupted = true;
    if (Stop == StopReason::Budget)
      Report.BudgetExhausted = true;
    break;
  }
  }

  Report.PeakConcurrency = Pool.peakConcurrency();
  Report.PhaseTwoWallMs =
      std::chrono::duration<double, std::milli>(Clock::now() - Start).count();
  if (Config.Telemetry) {
    // Watermark gauges (max-merged, explicitly not jobs-deterministic).
    int64_t Peak = static_cast<int64_t>(Report.PeakConcurrency);
    int64_t &G = Report.Metrics.Gauges["dlf_campaign_pool_peak_in_flight"];
    G = std::max(G, Peak);
    int64_t &J = Report.Metrics.Gauges["dlf_campaign_jobs"];
    J = std::max(J, static_cast<int64_t>(Report.JobsUsed));
  }

  if (Config.Status) {
    Config.Status->publishStatus(BuildStatus(
        Report.Interrupted ? "interrupted"
                           : (Report.CampaignComplete ? "done" : "phase2")));
    if (Config.Telemetry)
      Config.Status->publishMetrics(Report.Metrics);
    JsonValue Ev = JsonValue::object();
    Ev.set("complete", Report.CampaignComplete);
    Ev.set("interrupted", Report.Interrupted);
    Ev.set("reps_executed", Report.RepsExecuted);
    Ev.set("reps_replayed", Report.RepsReplayed);
    Config.Status->publishEvent("campaign", Ev.dump());
  }
}

CampaignReport CampaignRunner::run(bool Resume) {
  CampaignReport Report;
  TelemetryEpoch = std::chrono::steady_clock::now();
  SidecarDirInUse = resolveSidecarDir();

  std::map<std::pair<unsigned, unsigned>, RepOutcome> Replay;
  std::map<unsigned, std::string> JournaledQuarantines;
  bool HavePhase1 = false;
  bool HaveDone = false;
  JsonValue Phase1Rec;

  if (Resume) {
    if (Config.JournalPath.empty()) {
      Report.Error = "resume requires a journal path";
      return Report;
    }
    JournalContents JC;
    JournalSalvage Salvage;
    std::string Err;
    if (!loadJournal(Config.JournalPath, JC, &Err, &Salvage)) {
      Report.Error = "cannot load journal: " + Err;
      return Report;
    }
    std::string Why;
    if (!headerMatches(JC.Header, &Why)) {
      Report.Error = Why;
      return Report;
    }
    if (!Salvage.clean()) {
      // Torn or corrupt tail (power loss mid-append, bit rot): quarantine
      // it to <journal>.corrupt and truncate back to the valid prefix so
      // our appends extend a fully valid file — then say so, loudly enough
      // to be seen but without failing a resume that is fine to continue.
      std::string QErr;
      if (!quarantineJournalTail(Config.JournalPath, Salvage, &QErr)) {
        Report.Error = "cannot quarantine corrupt journal tail: " + QErr;
        return Report;
      }
      std::fprintf(stderr,
                   "dlf-campaign: journal %s: salvaged %u intact record(s); "
                   "dropped %u torn/corrupt line(s) to %s.corrupt\n",
                   Config.JournalPath.c_str(), Salvage.Records,
                   Salvage.DroppedLines, Config.JournalPath.c_str());
      Report.JournalTailDropped = Salvage.DroppedLines;
      Report.Metrics.Counters["dlf_journal_torn_tail_total"] +=
          Salvage.DroppedLines;
    }
    for (JsonValue &Rec : JC.Records) {
      const std::string &Event = Rec["event"].asString();
      if (Event == "phase1") {
        HavePhase1 = true;
        Phase1Rec = std::move(Rec);
      } else if (Event == "rep") {
        RepOutcome O;
        O.CycleIdx = static_cast<unsigned>(Rec["cycle"].asUInt());
        O.Rep = static_cast<unsigned>(Rec["rep"].asUInt());
        if (!runClassFromName(Rec["class"].asString(), O.Class))
          O.Class = RunClass::CrashedExit;
        O.Attempts = static_cast<unsigned>(Rec["attempts"].asUInt(1));
        O.Seed = Rec["seed"].asUInt();
        O.Thrashes = Rec["thrashes"].asUInt();
        O.ForcedUnpauses = Rec["unpauses"].asUInt();
        O.WallMs = Rec["wall_ms"].asNumber();
        O.CpuMs = Rec["cpu_ms"].asNumber();
        O.Diagnostic = Rec["diag"].asString();
        Replay[{O.CycleIdx, O.Rep}] = std::move(O);
      } else if (Event == "quarantine") {
        JournaledQuarantines[static_cast<unsigned>(Rec["cycle"].asUInt())] =
            Rec["reason"].asString();
      } else if (Event == "done") {
        HaveDone = true;
      }
      // "interrupted" records are informational only.
    }
    if (!Writer.open(Config.JournalPath, /*Truncate=*/false)) {
      Report.Error = "cannot reopen journal for append: " +
                     Writer.lastError();
      return Report;
    }
  } else if (!Config.JournalPath.empty()) {
    std::string Dir = parentDir(Config.JournalPath);
    std::string MkErr;
    if (!Dir.empty() && !makeDirs(Dir, &MkErr)) {
      Report.Error = "cannot create journal directory: " + MkErr;
      return Report;
    }
    if (!Writer.open(Config.JournalPath, /*Truncate=*/true)) {
      Report.Error = "cannot create journal: " + Writer.lastError();
      return Report;
    }
    journalAppend(headerRecord()); // a failure here degrades, like any other
  }

  // -- Phase I ---------------------------------------------------------------
  if (Config.Status) {
    serve::CampaignStatus St;
    St.Tool = "dlf-run";
    St.Benchmark = Config.BenchmarkName;
    St.Phase = "phase1";
    Config.Status->publishStatus(St);
  }
  if (HavePhase1) {
    Report.PhaseOneCompleted = Phase1Rec["completed"].asBool();
    Report.PhaseOneAttempts =
        static_cast<unsigned>(Phase1Rec["attempts"].asUInt());
    for (const JsonValue &S : Phase1Rec["seeds"].items())
      Report.PhaseOneSeeds.push_back(S.asUInt());
    std::string ParseError;
    if (!deserializeCycles(Phase1Rec["cycles"].asString(), Report.Cycles,
                           &ParseError)) {
      Report.Error = "journal phase-1 cycles are corrupt: " + ParseError;
      return Report;
    }
    // Missing/garbled verdicts degrade to all-Schedulable (nothing skipped).
    Report.Classifications =
        parsePrune(Phase1Rec["prune"].asString(), Report.Cycles.size());
    // Journaled cycles are already in sound-first order; only the verdicts
    // themselves need restoring (garbled → empty → nothing skipped).
    Report.Predictions =
        parsePredict(Phase1Rec["predict"].asString(), Report.Cycles.size());
  } else {
    JsonValue Record;
    if (!runPhaseOneSandboxed(Report, Record))
      return Report; // Error is set; nothing journaled, resume retries.
    journalAppend(Record);
  }

  if (Config.Status) {
    JsonValue Ev = JsonValue::object();
    Ev.set("cycles", static_cast<unsigned>(Report.Cycles.size()));
    Ev.set("completed", Report.PhaseOneCompleted);
    Ev.set("replayed", HavePhase1);
    Config.Status->publishEvent("phase1", Ev.dump());
  }

  // -- Phase II --------------------------------------------------------------
  if (Report.Classifications.size() != Report.Cycles.size())
    Report.Classifications.assign(Report.Cycles.size(), {});
  Report.PerCycle.resize(Report.Cycles.size());
  for (size_t I = 0; I != Report.Cycles.size(); ++I) {
    Report.PerCycle[I].Cycle = Report.Cycles[I];
    Report.PerCycle[I].Classification = Report.Classifications[I].label();
    if (I < Report.Predictions.size())
      Report.PerCycle[I].Prediction = Report.Predictions[I].label();
  }

  runPhaseTwo(Report, Replay, JournaledQuarantines, HaveDone);

  if (!SidecarDirInUse.empty())
    rmdir(SidecarDirInUse.c_str()); // best-effort; fails if files remain

  if (JournalDegraded) {
    Report.JournalDegraded = true;
    Report.JournalError = JournalDegradedWhy;
    if (Config.Telemetry)
      ++Report.Metrics.Counters["dlf_campaign_journal_degraded_total"];
    // Mark the journal non-resumable: its prefix no longer reflects the
    // work this process went on to do in memory. Renamed (best-effort, and
    // only if it is a regular file — never a device node someone pointed
    // the journal at) rather than deleted, for post-mortems.
    struct stat St = {};
    if (!Config.JournalPath.empty() &&
        ::stat(Config.JournalPath.c_str(), &St) == 0 && S_ISREG(St.st_mode))
      ::rename(Config.JournalPath.c_str(),
               (Config.JournalPath + ".broken").c_str());
  }
  return Report;
}
