//===- campaign/CampaignRunner.cpp - Resumable two-phase campaigns ----------===//

#include "campaign/CampaignRunner.h"

#include "igoodlock/Serialize.h"
#include "support/Debug.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

#include <csignal>
#include <unistd.h>

using namespace dlf;
using namespace dlf::campaign;

// Seed stride between retry attempts of the same repetition: far larger
// than any realistic rep count, so retry seeds never collide with another
// repetition's seed.
static constexpr uint64_t RetrySeedStride = 1'000'003;

const char *dlf::campaign::runClassName(RunClass C) {
  switch (C) {
  case RunClass::Completed:
    return "completed";
  case RunClass::Reproduced:
    return "reproduced";
  case RunClass::OtherDeadlock:
    return "other-deadlock";
  case RunClass::Stalled:
    return "stalled";
  case RunClass::Hung:
    return "hung";
  case RunClass::CrashedSignal:
    return "crashed-signal";
  case RunClass::CrashedExit:
    return "crashed-exit";
  case RunClass::OutOfMemory:
    return "oom";
  }
  return "unknown";
}

bool dlf::campaign::runClassFromName(const std::string &Name, RunClass &Out) {
  for (RunClass C :
       {RunClass::Completed, RunClass::Reproduced, RunClass::OtherDeadlock,
        RunClass::Stalled, RunClass::Hung, RunClass::CrashedSignal,
        RunClass::CrashedExit, RunClass::OutOfMemory}) {
    if (Name == runClassName(C)) {
      Out = C;
      return true;
    }
  }
  return false;
}

bool dlf::campaign::runClassIsTransient(RunClass C) {
  switch (C) {
  case RunClass::Hung:
  case RunClass::CrashedSignal:
  case RunClass::CrashedExit:
  case RunClass::OutOfMemory:
    return true;
  case RunClass::Completed:
  case RunClass::Reproduced:
  case RunClass::OtherDeadlock:
  case RunClass::Stalled:
    return false;
  }
  return false;
}

std::string CycleCampaignStats::countsKey() const {
  std::ostringstream OS;
  OS << "reps=" << Reps << " repro=" << Reproduced << " other="
     << OtherDeadlocks << " stall=" << Stalls << " clean=" << CleanRuns
     << " hung=" << Hung << " csig=" << CrashedSignal << " cexit="
     << CrashedExit << " oom=" << Oom << " retries=" << RetriesSpent
     << " quarantined=" << (Quarantined ? 1 : 0);
  return OS.str();
}

std::string CampaignReport::toString() const {
  std::ostringstream OS;
  if (!Error.empty()) {
    OS << "campaign error: " << Error << "\n";
    return OS.str();
  }
  OS << "phase 1: " << Cycles.size() << " cycle(s), "
     << (PhaseOneCompleted ? "observation completed" : "observation partial")
     << " (" << PhaseOneAttempts << " sandboxed attempt(s))\n";
  for (size_t I = 0; I != PerCycle.size(); ++I) {
    const CycleCampaignStats &S = PerCycle[I];
    OS << "cycle #" << I << ": " << S.countsKey()
       << " p=" << S.probability() << "\n";
    if (S.Quarantined)
      OS << "  quarantined: " << S.QuarantineReason << "\n";
  }
  OS << "reps executed " << RepsExecuted << ", replayed from journal "
     << RepsReplayed << "\n";
  if (BudgetExhausted)
    OS << "wall-clock budget exhausted; resume with --resume\n";
  else if (Interrupted)
    OS << "interrupted; resume with --resume\n";
  else if (CampaignComplete)
    OS << "campaign complete\n";
  return OS.str();
}

// -- Signal handling ---------------------------------------------------------

namespace {
volatile sig_atomic_t GInterruptRequested = 0;
void onSigint(int) { GInterruptRequested = 1; }
} // namespace

void CampaignRunner::installSigintHandler() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSigint;
  // No SA_RESTART: in-flight waits return EINTR, which every wait loop in
  // the sandbox handles, so the stop request is observed promptly.
  sigaction(SIGINT, &SA, nullptr);
}

bool CampaignRunner::interruptRequested() { return GInterruptRequested != 0; }

// -- Helpers -----------------------------------------------------------------

namespace {

void writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = write(Fd, Data.data() + Off, Data.size() - Off);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return; // parent vanished; nothing sensible left to do in the child
  }
}

/// Parses a "key=value key=value" payload line.
std::map<std::string, std::string> parseKvLine(const std::string &Line) {
  std::map<std::string, std::string> Out;
  std::istringstream IS(Line);
  std::string Tok;
  while (IS >> Tok) {
    size_t Eq = Tok.find('=');
    if (Eq != std::string::npos)
      Out[Tok.substr(0, Eq)] = Tok.substr(Eq + 1);
  }
  return Out;
}

void backoffSleep(unsigned Attempt, uint64_t BaseMs, uint64_t CapMs) {
  uint64_t Ms = BaseMs ? BaseMs << std::min<unsigned>(Attempt, 20) : 0;
  Ms = std::min(Ms, CapMs);
  if (Ms)
    usleep(static_cast<useconds_t>(Ms * 1000));
}

} // namespace

// -- CampaignRunner ----------------------------------------------------------

CampaignRunner::CampaignRunner(CampaignConfig Config)
    : Config(std::move(Config)) {}

uint64_t CampaignRunner::runTimeoutMs() const {
  return Config.RunTimeoutMs ? Config.RunTimeoutMs
                             : Config.Tester.Base.WatchdogMs;
}

uint64_t CampaignRunner::graceMs() const {
  return Config.GraceMs ? Config.GraceMs
                        : Config.Tester.Base.WatchdogGraceMs;
}

SandboxLimits CampaignRunner::childLimits() const {
  SandboxLimits L;
  L.TimeoutMs = runTimeoutMs();
  L.GraceMs = graceMs();
  L.CpuSeconds = Config.RlimitCpuS;
  L.AddressSpaceMb = Config.RlimitAsMb;
  L.CaptureStderr = true;
  return L;
}

JsonValue CampaignRunner::headerRecord() const {
  JsonValue H = JsonValue::object();
  H.set("dlf_campaign", 1);
  H.set("benchmark", Config.BenchmarkName);
  H.set("p1mode", runModeName(Config.Tester.PhaseOneMode));
  H.set("kind", abstractionKindName(Config.Tester.Base.Kind));
  H.set("context", Config.Tester.Base.UseContext);
  H.set("yields", Config.Tester.Base.UseYields);
  H.set("p1seed", Config.Tester.PhaseOneSeed);
  H.set("p2base", Config.Tester.PhaseTwoSeedBase);
  H.set("reps", Config.Tester.PhaseTwoReps);
  H.set("timeout_ms", runTimeoutMs());
  H.set("max_retries", Config.MaxRetries);
  H.set("quarantine", Config.QuarantineThreshold);
  return H;
}

bool CampaignRunner::headerMatches(const JsonValue &Header,
                                   std::string *Why) const {
  std::string Expected = headerRecord().dump();
  std::string Got = Header.dump();
  if (Expected == Got)
    return true;
  if (Why)
    *Why = "journal header " + Got + " does not match configuration " +
           Expected;
  return false;
}

void CampaignRunner::journalAppend(const JsonValue &Record) {
  if (!Writer.isOpen())
    return;
  if (!Writer.append(Record))
    JournalFailed = true;
}

bool CampaignRunner::runPhaseOneSandboxed(CampaignReport &Report,
                                          JsonValue &Record) {
  std::string LastTriage = "never ran";
  for (unsigned Attempt = 0; Attempt <= Config.MaxRetries; ++Attempt) {
    // ActiveTester consumes PhaseOneRetries+1 consecutive seeds internally;
    // a sandbox-level retry (the whole child hung or crashed) starts past
    // that range so every observation uses a fresh seed.
    uint64_t Seed = Config.Tester.PhaseOneSeed +
                    Attempt * (Config.Tester.PhaseOneRetries + 1);
    Report.PhaseOneSeeds.push_back(Seed);
    ++Report.PhaseOneAttempts;

    ActiveTesterConfig TC = Config.Tester;
    TC.PhaseOneSeed = Seed;
    SandboxResult SR = runInSandbox(
        [&](int Fd) {
          ActiveTester T(Config.Entry, TC);
          PhaseOneResult P1 = T.runPhaseOne();
          std::ostringstream Head;
          Head << "p1 completed=" << (P1.Exec.Completed ? 1 : 0)
               << " exhausted=" << (P1.RetriesExhausted ? 1 : 0)
               << " seeds=" << P1.SeedsTried.size() << "\n";
          writeAll(Fd, Head.str());
          writeAll(Fd, serializeCycles(P1.Cycles));
          return 0;
        },
        childLimits());

    if (SR.Status == SandboxStatus::Completed) {
      size_t Nl = SR.Payload.find('\n');
      std::string Head = SR.Payload.substr(0, Nl);
      std::string Doc =
          Nl == std::string::npos ? std::string() : SR.Payload.substr(Nl + 1);
      auto Kv = parseKvLine(Head);
      std::string ParseError;
      if (Kv.count("completed") == 0 ||
          !deserializeCycles(Doc, Report.Cycles, &ParseError)) {
        LastTriage = "phase 1 result protocol violation: " + ParseError;
        if (Attempt < Config.MaxRetries)
          backoffSleep(Attempt, Config.BackoffBaseMs, Config.BackoffCapMs);
        continue;
      }
      Report.PhaseOneCompleted = Kv["completed"] == "1";

      Record = JsonValue::object();
      Record.set("event", "phase1");
      Record.set("completed", Report.PhaseOneCompleted);
      Record.set("attempts", Report.PhaseOneAttempts);
      JsonValue Seeds = JsonValue::array();
      for (uint64_t S : Report.PhaseOneSeeds)
        Seeds.push(JsonValue(S));
      Record.set("seeds", std::move(Seeds));
      Record.set("cycles", serializeCycles(Report.Cycles));
      return true;
    }

    LastTriage = SR.triage();
    DLF_DEBUG_LOG("phase 1 sandboxed attempt " << Attempt
                                               << " failed: " << LastTriage);
    if (Attempt < Config.MaxRetries)
      backoffSleep(Attempt, Config.BackoffBaseMs, Config.BackoffCapMs);
  }
  Report.Error = "phase 1 failed after " +
                 std::to_string(Config.MaxRetries + 1) +
                 " sandboxed attempts; last: " + LastTriage;
  return false;
}

RepOutcome CampaignRunner::runOneRep(unsigned CycleIdx,
                                     const AbstractCycle &Cycle,
                                     unsigned Rep) {
  RepOutcome O;
  O.CycleIdx = CycleIdx;
  O.Rep = Rep;

  for (unsigned Attempt = 0;; ++Attempt) {
    uint64_t Seed =
        Config.Tester.PhaseTwoSeedBase + Rep + Attempt * RetrySeedStride;
    O.Seed = Seed;
    O.Attempts = Attempt + 1;

    const ActiveTesterConfig &TC = Config.Tester;
    SandboxResult SR = runInSandbox(
        [&](int Fd) {
          if (Config.ChildFaultHook)
            Config.ChildFaultHook(CycleIdx, Rep, Attempt);
          ActiveTester T(Config.Entry, TC);
          ExecutionResult E = T.runOnce(Cycle, Seed);
          const char *Cls = "completed";
          if (E.DeadlockFound && E.Witness)
            Cls = ActiveTester::witnessMatchesCycle(*E.Witness, Cycle,
                                                    TC.Base.Kind,
                                                    TC.Base.UseContext)
                      ? "reproduced"
                      : "other-deadlock";
          else if (E.Stalled || E.LivelockAborted)
            Cls = "stalled";
          std::ostringstream Line;
          Line << "p2 class=" << Cls << " thrashes=" << E.Thrashes
               << " unpauses=" << E.ForcedUnpauses << "\n";
          writeAll(Fd, Line.str());
          return 0;
        },
        childLimits());

    O.WallMs = SR.WallMs;
    O.Diagnostic.clear();

    bool Definitive = false;
    switch (SR.Status) {
    case SandboxStatus::Completed: {
      auto Kv = parseKvLine(SR.Payload);
      RunClass Parsed;
      if (Kv.count("class") && runClassFromName(Kv["class"], Parsed)) {
        O.Class = Parsed;
        O.Thrashes = std::strtoull(Kv["thrashes"].c_str(), nullptr, 10);
        O.ForcedUnpauses =
            std::strtoull(Kv["unpauses"].c_str(), nullptr, 10);
        Definitive = true;
      } else {
        // Exited 0 without a parseable result line: the child broke the
        // protocol (e.g. crashed inside the serializer); retry like any
        // other process-level failure.
        O.Class = RunClass::CrashedExit;
        O.Diagnostic = "result protocol violation; payload: " +
                       SR.Payload.substr(0, 120);
      }
      break;
    }
    case SandboxStatus::Hung:
      O.Class = RunClass::Hung;
      O.Diagnostic = SR.triage();
      break;
    case SandboxStatus::Signaled:
      O.Class = RunClass::CrashedSignal;
      O.Diagnostic = SR.triage();
      break;
    case SandboxStatus::OutOfMemory:
      O.Class = RunClass::OutOfMemory;
      O.Diagnostic = SR.triage();
      break;
    case SandboxStatus::Exited:
    case SandboxStatus::ForkFailed:
      O.Class = RunClass::CrashedExit;
      O.Diagnostic = SR.triage();
      break;
    }

    if (Definitive || Attempt >= Config.MaxRetries)
      return O;
    DLF_DEBUG_LOG("rep " << CycleIdx << "/" << Rep << " attempt " << Attempt
                         << " " << runClassName(O.Class) << "; retrying");
    backoffSleep(Attempt, Config.BackoffBaseMs, Config.BackoffCapMs);
  }
}

void CampaignRunner::accumulate(CycleCampaignStats &S, const RepOutcome &O) {
  ++S.Reps;
  S.RetriesSpent += O.Attempts - 1;
  S.TotalThrashes += O.Thrashes;
  S.TotalForcedUnpauses += O.ForcedUnpauses;
  S.TotalWallMs += O.WallMs;
  switch (O.Class) {
  case RunClass::Completed:
    ++S.CleanRuns;
    break;
  case RunClass::Reproduced:
    ++S.Reproduced;
    break;
  case RunClass::OtherDeadlock:
    ++S.OtherDeadlocks;
    break;
  case RunClass::Stalled:
    ++S.Stalls;
    break;
  case RunClass::Hung:
    ++S.Hung;
    break;
  case RunClass::CrashedSignal:
    ++S.CrashedSignal;
    break;
  case RunClass::CrashedExit:
    ++S.CrashedExit;
    break;
  case RunClass::OutOfMemory:
    ++S.Oom;
    break;
  }
}

CampaignReport CampaignRunner::run(bool Resume) {
  CampaignReport Report;

  std::map<std::pair<unsigned, unsigned>, RepOutcome> Replay;
  std::map<unsigned, std::string> JournaledQuarantines;
  bool HavePhase1 = false;
  bool HaveDone = false;
  JsonValue Phase1Rec;

  if (Resume) {
    if (Config.JournalPath.empty()) {
      Report.Error = "resume requires a journal path";
      return Report;
    }
    JournalContents JC;
    std::string Err;
    if (!loadJournal(Config.JournalPath, JC, &Err)) {
      Report.Error = "cannot load journal: " + Err;
      return Report;
    }
    std::string Why;
    if (!headerMatches(JC.Header, &Why)) {
      Report.Error = Why;
      return Report;
    }
    for (JsonValue &Rec : JC.Records) {
      const std::string &Event = Rec["event"].asString();
      if (Event == "phase1") {
        HavePhase1 = true;
        Phase1Rec = std::move(Rec);
      } else if (Event == "rep") {
        RepOutcome O;
        O.CycleIdx = static_cast<unsigned>(Rec["cycle"].asUInt());
        O.Rep = static_cast<unsigned>(Rec["rep"].asUInt());
        if (!runClassFromName(Rec["class"].asString(), O.Class))
          O.Class = RunClass::CrashedExit;
        O.Attempts = static_cast<unsigned>(Rec["attempts"].asUInt(1));
        O.Seed = Rec["seed"].asUInt();
        O.Thrashes = Rec["thrashes"].asUInt();
        O.ForcedUnpauses = Rec["unpauses"].asUInt();
        O.WallMs = Rec["wall_ms"].asNumber();
        O.Diagnostic = Rec["diag"].asString();
        Replay[{O.CycleIdx, O.Rep}] = std::move(O);
      } else if (Event == "quarantine") {
        JournaledQuarantines[static_cast<unsigned>(Rec["cycle"].asUInt())] =
            Rec["reason"].asString();
      } else if (Event == "done") {
        HaveDone = true;
      }
      // "interrupted" records are informational only.
    }
    if (!Writer.open(Config.JournalPath, /*Truncate=*/false)) {
      Report.Error = "cannot reopen journal for append: " +
                     Config.JournalPath;
      return Report;
    }
  } else if (!Config.JournalPath.empty()) {
    if (!Writer.open(Config.JournalPath, /*Truncate=*/true)) {
      Report.Error = "cannot create journal: " + Config.JournalPath;
      return Report;
    }
    journalAppend(headerRecord());
  }

  // -- Phase I ---------------------------------------------------------------
  if (HavePhase1) {
    Report.PhaseOneCompleted = Phase1Rec["completed"].asBool();
    Report.PhaseOneAttempts =
        static_cast<unsigned>(Phase1Rec["attempts"].asUInt());
    for (const JsonValue &S : Phase1Rec["seeds"].items())
      Report.PhaseOneSeeds.push_back(S.asUInt());
    std::string ParseError;
    if (!deserializeCycles(Phase1Rec["cycles"].asString(), Report.Cycles,
                           &ParseError)) {
      Report.Error = "journal phase-1 cycles are corrupt: " + ParseError;
      return Report;
    }
  } else {
    JsonValue Record;
    if (!runPhaseOneSandboxed(Report, Record))
      return Report; // Error is set; nothing journaled, resume retries.
    journalAppend(Record);
  }

  // -- Phase II --------------------------------------------------------------
  auto Deadline = std::chrono::steady_clock::time_point::max();
  if (Config.BudgetS)
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::seconds(Config.BudgetS);

  Report.PerCycle.resize(Report.Cycles.size());
  for (size_t I = 0; I != Report.Cycles.size(); ++I)
    Report.PerCycle[I].Cycle = Report.Cycles[I];

  auto interruptWith = [&](const char *Reason) {
    JsonValue Rec = JsonValue::object();
    Rec.set("event", "interrupted");
    Rec.set("reason", Reason);
    journalAppend(Rec);
    Report.Interrupted = true;
  };

  bool Stopped = false;
  for (unsigned C = 0; C != Report.Cycles.size() && !Stopped; ++C) {
    CycleCampaignStats &S = Report.PerCycle[C];
    unsigned ConsecutiveFailures = 0;
    for (unsigned R = 0; R != Config.Tester.PhaseTwoReps; ++R) {
      RepOutcome O;
      auto It = Replay.find({C, R});
      if (It != Replay.end()) {
        O = It->second;
        ++Report.RepsReplayed;
      } else {
        if (interruptRequested() ||
            (Config.ShouldStop && Config.ShouldStop())) {
          interruptWith(interruptRequested() ? "sigint" : "stop");
          Stopped = true;
          break;
        }
        if (std::chrono::steady_clock::now() >= Deadline) {
          interruptWith("budget");
          Report.BudgetExhausted = true;
          Stopped = true;
          break;
        }
        O = runOneRep(C, Report.Cycles[C], R);
        ++Report.RepsExecuted;

        JsonValue Rec = JsonValue::object();
        Rec.set("event", "rep");
        Rec.set("cycle", C);
        Rec.set("rep", R);
        Rec.set("class", runClassName(O.Class));
        Rec.set("attempts", O.Attempts);
        Rec.set("seed", O.Seed);
        Rec.set("thrashes", O.Thrashes);
        Rec.set("unpauses", O.ForcedUnpauses);
        Rec.set("wall_ms", O.WallMs);
        if (!O.Diagnostic.empty())
          Rec.set("diag", O.Diagnostic);
        journalAppend(Rec);
      }

      accumulate(S, O);
      if (runClassIsTransient(O.Class))
        ++ConsecutiveFailures;
      else
        ConsecutiveFailures = 0;

      if (Config.QuarantineThreshold &&
          ConsecutiveFailures >= Config.QuarantineThreshold) {
        S.Quarantined = true;
        std::ostringstream Reason;
        Reason << ConsecutiveFailures
               << " consecutive failed repetitions (last: "
               << runClassName(O.Class)
               << (O.Diagnostic.empty() ? "" : "; " + O.Diagnostic) << ")";
        S.QuarantineReason = Reason.str();
        if (!JournaledQuarantines.count(C)) {
          JsonValue Rec = JsonValue::object();
          Rec.set("event", "quarantine");
          Rec.set("cycle", C);
          Rec.set("reason", S.QuarantineReason);
          journalAppend(Rec);
        }
        break; // skip the cycle's remaining reps; the campaign continues
      }
    }
  }

  if (!Stopped) {
    Report.CampaignComplete = true;
    if (!HaveDone) {
      JsonValue Rec = JsonValue::object();
      Rec.set("event", "done");
      journalAppend(Rec);
    }
  }
  if (JournalFailed && Report.Error.empty())
    Report.Error = "journal writes failed; campaign completed in memory "
                   "but is not resumable";
  return Report;
}
