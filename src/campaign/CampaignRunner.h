//===- campaign/CampaignRunner.h - Resumable two-phase campaigns -*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-isolated campaign layer over ActiveTester. The paper's
/// Phase II protocol re-executes the program under test hundreds of times
/// (100 reps x N cycles for Table 1 / Figure 2) against a workload that is
/// deadlock-prone by construction; in-process execution means one hung or
/// crashed repetition destroys the whole campaign. The CampaignRunner
/// executes Phase I and every Phase II repetition in a ProcessSandbox
/// child, communicates results back over the sandbox pipe using a
/// TraceFormat-style line protocol, classifies each run (completed /
/// reproduced / other-deadlock / stalled / hung / crashed-signal /
/// crashed-exit / oom), supervises transient failures with bounded
/// same-seed restarts under capped exponential backoff (a restarted
/// repetition re-runs its original seed, so a crash that was environmental
/// — OOM kill, injected fault, machine pressure — converges to the
/// fault-free classification and committed counts stay byte-identical to
/// an undisturbed run), and journals progress after every repetition so an
/// interrupted campaign resumes exactly where it left off. A cycle whose
/// repetitions keep failing is quarantined with a diagnostic record
/// instead of aborting the campaign; a journal whose writes start failing
/// (ENOSPC, EIO) degrades the campaign to in-memory results instead of
/// aborting it.
///
/// Phase II is sharded over a WorkerPool of up to Jobs concurrent
/// children. Results complete out of order but are committed — journaled
/// and accumulated — strictly in (cycle, rep) order, so the journal a
/// parallel campaign writes is record-for-record what the serial campaign
/// writes, classification counts are byte-identical across any Jobs
/// value, and journals resume interchangeably between modes.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_CAMPAIGN_CAMPAIGNRUNNER_H
#define DLF_CAMPAIGN_CAMPAIGNRUNNER_H

#include "analysis/GuardPruner.h"
#include "analysis/Predict.h"
#include "campaign/Journal.h"
#include "campaign/ProcessSandbox.h"
#include "campaign/WorkerPool.h"
#include "fuzzer/ActiveTester.h"
#include "telemetry/Metrics.h"
#include "telemetry/Timeline.h"

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dlf {

namespace serve {
class StatusSink;
} // namespace serve

namespace campaign {

/// Final classification of one repetition (after retries).
enum class RunClass {
  Completed,     ///< child completed; execution ran clean (no deadlock)
  Reproduced,    ///< child completed; the target cycle was re-created
  OtherDeadlock, ///< child completed; a different real deadlock confirmed
  Stalled,       ///< child completed; uncontrolled stall / livelock abort
  Hung,          ///< watchdog expired (even after retries)
  CrashedSignal, ///< child died on a signal
  CrashedExit,   ///< child exited nonzero or broke the result protocol
  OutOfMemory,   ///< child exceeded the address-space cap
};

/// Returns a stable short name ("reproduced", "crashed-signal", ...) used
/// in the journal and reports.
const char *runClassName(RunClass C);

/// Parses a runClassName back; returns false for unknown names.
bool runClassFromName(const std::string &Name, RunClass &Out);

/// True for process-level failures worth retrying with a fresh seed
/// (hung / crashed / oom); false for in-protocol results.
bool runClassIsTransient(RunClass C);

/// Which engine grades Phase I's cycle candidates before Phase II spends
/// repetitions on them.
enum class Phase1Engine {
  /// iGoodlock alone (the paper's Phase I): every enumerated cycle that the
  /// guard pruner cannot discharge gets Phase II budget.
  IGoodlock,
  /// Sync-preserving prediction: the Phase I child also captures the
  /// observation as an event trace and computes a sound verdict per cycle.
  /// Phase II runs only PREDICTED-SOUND cycles (plus whatever
  /// --include-guarded re-admits), sound-first.
  Predict,
  /// Both: verdicts are computed and reported, and sound cycles are
  /// scheduled first, but no cycle is skipped on prediction grounds —
  /// iGoodlock's budget policy with prediction's prioritization.
  Both,
};

/// Stable short name ("igoodlock" / "predict" / "both") for the journal
/// header and --phase1.
const char *phase1EngineName(Phase1Engine E);

/// Parses a phase1EngineName back; returns false for unknown names.
bool phase1EngineFromName(const std::string &Name, Phase1Engine &Out);

/// Campaign configuration. Sandbox and retry knobs default from
/// Options::WatchdogMs / WatchdogGraceMs via the ActiveTesterConfig.
struct CampaignConfig {
  /// Registry name of the workload; part of the journal fingerprint so a
  /// journal cannot silently resume a different campaign.
  std::string BenchmarkName;

  Program Entry;
  ActiveTesterConfig Tester;

  /// Wall-clock watchdog per child run (0: use Tester.Base.WatchdogMs).
  uint64_t RunTimeoutMs = 0;

  /// SIGTERM -> SIGKILL grace (0: use Tester.Base.WatchdogGraceMs).
  uint64_t GraceMs = 0;

  /// Supervised restarts per repetition for transient failures (hung /
  /// crashed / oom children). Every restart re-runs the SAME seed: per-seed
  /// determinism means a deterministic workload failure keeps failing (and
  /// eventually quarantines the cycle, which is the honest answer), while
  /// an environmental failure converges to the classification a fault-free
  /// run would have produced.
  unsigned MaxRetries = 3;

  /// Exponential backoff between retries: min(Base << attempt, Cap).
  uint64_t BackoffBaseMs = 10;
  uint64_t BackoffCapMs = 2000;

  /// Wall-clock budget for this invocation in seconds; 0 = unlimited.
  /// Exhaustion journals an interruption record and returns a partial
  /// (resumable) report.
  uint64_t BudgetS = 0;

  /// Consecutive failed repetitions (after retries) that quarantine a
  /// cycle instead of aborting the campaign.
  unsigned QuarantineThreshold = 5;

  /// Phase II worker processes kept in flight at once. 1 (the default)
  /// is the serial campaign; 0 means hardware concurrency. Because every
  /// repetition's classification is deterministic per seed and results
  /// are committed to the journal in (cycle, rep) order regardless of
  /// completion order, the per-cycle classification counts are identical
  /// for every value of Jobs, and Jobs is deliberately NOT part of the
  /// journal fingerprint: a serial journal resumes in parallel and vice
  /// versa.
  unsigned Jobs = 1;

  /// Spend Phase II repetitions on cycles the guard-lock pruner statically
  /// discharged (guarded / hb-ordered / single-thread). Off by default:
  /// discharged cycles are reported with their classification but consume
  /// no repetition budget. Part of the journal fingerprint — skipping
  /// changes which repetitions exist.
  bool IncludeGuarded = false;

  /// Phase I grading engine (--phase1). Predict/Both reorder the cycle
  /// list sound-first and Predict skips UNCONFIRMED cycles, so the engine
  /// is part of the journal fingerprint: it changes both the meaning of
  /// cycle indices and which repetitions exist.
  Phase1Engine Phase1 = Phase1Engine::IGoodlock;

  /// rlimit caps applied to every child; 0 inherits.
  uint64_t RlimitAsMb = 0;
  uint64_t RlimitCpuS = 0;

  /// Campaign-wide telemetry (off by default; flipped on by --metrics-out
  /// / --timeline-out). Children dump metrics + timeline sidecars which
  /// the parent merges — only the final attempt of each *committed*
  /// repetition, at the in-order commit frontier, so merged counter totals
  /// are identical for every Jobs value. A missing or truncated sidecar
  /// (crashed child) is counted, never a campaign failure.
  bool Telemetry = false;

  /// Directory for child sidecar files. Empty derives
  /// "<JournalPath>.sidecars", falling back to a directory under TMPDIR
  /// for journal-less campaigns.
  std::string SidecarDir;

  /// Checkpoint file (JSON Lines). Empty runs without a journal (no
  /// resume, but still fault-isolated).
  std::string JournalPath;

  /// Optional live observability sink (serve::StatusServer), non-owning.
  /// Snapshots are built at the in-order commit frontier — the one point
  /// where counts are jobs-deterministic — and events mirror the journal
  /// records. Null (the default) costs one pointer test per publish site,
  /// so the no-server hot path is unchanged.
  serve::StatusSink *Status = nullptr;

  /// Test hook: runs *in the child* before each Phase II repetition, so
  /// tests can inject hangs/crashes/allocation storms deterministically.
  std::function<void(unsigned Cycle, unsigned Rep, unsigned Attempt)>
      ChildFaultHook;

  /// Test hook: checked before each fresh child run; returning true stops
  /// the campaign as if interrupted (journaled, resumable).
  std::function<bool()> ShouldStop;
};

/// Outcome of one repetition (final, after retries).
struct RepOutcome {
  unsigned CycleIdx = 0;
  unsigned Rep = 0;
  RunClass Class = RunClass::Completed;
  /// Child runs consumed: 1 + retries.
  unsigned Attempts = 1;
  /// Seed of the final attempt.
  uint64_t Seed = 0;
  uint64_t Thrashes = 0;
  uint64_t ForcedUnpauses = 0;
  double WallMs = 0.0;
  /// CPU time of the final attempt's child (user + system).
  double CpuMs = 0.0;
  /// Crash triage for failed runs: sandbox classification + stderr tail.
  std::string Diagnostic;
};

/// Aggregated per-cycle campaign statistics. The deterministic fields
/// (every count) are reproducible across interrupt/resume given the same
/// seeds; wall-clock totals are informational.
struct CycleCampaignStats {
  AbstractCycle Cycle;
  unsigned Reps = 0;
  unsigned Reproduced = 0;
  unsigned OtherDeadlocks = 0;
  unsigned Stalls = 0;
  unsigned CleanRuns = 0;
  unsigned Hung = 0;
  unsigned CrashedSignal = 0;
  unsigned CrashedExit = 0;
  unsigned Oom = 0;
  unsigned RetriesSpent = 0;
  uint64_t TotalThrashes = 0;
  uint64_t TotalForcedUnpauses = 0;
  double TotalWallMs = 0.0;
  bool Quarantined = false;
  std::string QuarantineReason;
  /// Pruner verdict for this cycle ("schedulable", "guarded (guard lock:
  /// m)", ...); empty for journals/campaigns that predate the pruner.
  std::string Classification;
  /// Prediction label ("PREDICTED-SOUND (witness: N events)" /
  /// "UNCONFIRMED (<reason>)"); empty unless the campaign ran with
  /// --phase1 predict or both.
  std::string Prediction;
  /// True when Phase II spent no budget on this cycle because the pruner
  /// discharged it (and IncludeGuarded was off) — or, under --phase1
  /// predict, because the prediction engine left it UNCONFIRMED.
  bool Skipped = false;

  double probability() const {
    return Reps ? static_cast<double>(Reproduced) / Reps : 0.0;
  }
  /// The deterministic classification counts as a comparable string (used
  /// by the resume-equivalence test and toString).
  std::string countsKey() const;
};

/// Full campaign report.
struct CampaignReport {
  bool PhaseOneCompleted = false;
  unsigned PhaseOneAttempts = 0;
  std::vector<uint64_t> PhaseOneSeeds;
  std::vector<AbstractCycle> Cycles;
  /// Guard-lock pruner verdict per cycle, parallel to Cycles (computed in
  /// the Phase I child, journaled, restored on resume).
  std::vector<analysis::CycleClassification> Classifications;
  /// Sync-preserving prediction verdict per cycle, parallel to Cycles
  /// (Phase1Engine::Predict / Both; empty otherwise, or when the wire /
  /// journal form failed to parse — then nothing is skipped or reordered,
  /// the conservative reading).
  std::vector<analysis::CyclePrediction> Predictions;
  std::vector<CycleCampaignStats> PerCycle;

  /// Fresh child repetitions executed by this invocation.
  unsigned RepsExecuted = 0;
  /// Repetitions restored from the journal instead of re-run.
  unsigned RepsReplayed = 0;

  // -- Throughput observability (this invocation's Phase II only).
  /// Wall-clock time Phase II took, in milliseconds.
  double PhaseTwoWallMs = 0.0;
  /// Cumulative CPU time of every Phase II child run (including retried
  /// attempts); under parallel execution this exceeds the wall clock.
  double ChildCpuMs = 0.0;
  /// Most sandboxed children simultaneously in flight.
  unsigned PeakConcurrency = 0;
  /// Worker count the campaign ran with (after resolving Jobs = 0).
  unsigned JobsUsed = 1;

  /// Fresh repetitions per wall-clock second (0 when none ran).
  double repsPerSecond() const {
    return PhaseTwoWallMs > 0.0 ? RepsExecuted / (PhaseTwoWallMs / 1000.0)
                                : 0.0;
  }

  /// Campaign-wide merged telemetry (populated when Config.Telemetry):
  /// campaign-level counters plus every committed child's sidecar
  /// snapshot. Counter totals are deterministic across Jobs; gauges and
  /// wall-clock histograms are informational.
  telemetry::MetricsSnapshot Metrics;
  /// Merged timeline: campaign worker-lane spans (pid 1, one tid per
  /// worker slot) plus committed children's scheduler events rebased into
  /// the campaign clock (one pid per repetition).
  std::vector<telemetry::TraceEvent> Timeline;
  /// Display names for the timeline, keyed by pid and (pid<<32|tid).
  std::map<uint32_t, std::string> TimelineProcessNames;
  std::map<uint64_t, std::string> TimelineThreadNames;

  bool BudgetExhausted = false;
  bool Interrupted = false;
  /// Every cycle reached its repetition count (or was quarantined).
  bool CampaignComplete = false;
  /// Journal writes started failing persistently (ENOSPC, EIO): the
  /// campaign finished in memory, the results above are complete, and the
  /// on-disk journal was renamed to "<path>.broken" (non-resumable).
  bool JournalDegraded = false;
  /// The append failure that triggered the degradation.
  std::string JournalError;
  /// Corrupt/torn trailing journal lines dropped by the salvage pass on
  /// resume (also counted as dlf_journal_torn_tail_total).
  unsigned JournalTailDropped = 0;
  /// Set on configuration/journal errors; the report is then empty.
  std::string Error;

  std::string toString() const;
};

/// Drives one campaign: Phase I and every Phase II repetition in a
/// sandboxed child, journaled and resumable.
class CampaignRunner {
public:
  explicit CampaignRunner(CampaignConfig Config);

  /// Runs the campaign. With \p Resume, the journal at JournalPath is
  /// loaded first: its fingerprint is validated, journaled repetitions
  /// are replayed into the statistics, and execution continues with the
  /// first missing repetition.
  CampaignReport run(bool Resume = false);

  /// Arms a SIGINT handler that requests a graceful stop (clearing any
  /// pending request first): new work stops being dispatched, in-flight
  /// children drain naturally (bounded by their watchdogs) and their
  /// in-order results are journaled, then the campaign returns a
  /// resumable partial report.
  static void installSigintHandler();
  static bool interruptRequested();

  const CampaignConfig &config() const { return Config; }

private:
  uint64_t runTimeoutMs() const;
  uint64_t graceMs() const;
  SandboxLimits childLimits() const;
  JsonValue headerRecord() const;
  bool headerMatches(const JsonValue &Header, std::string *Why) const;

  bool runPhaseOneSandboxed(CampaignReport &Report, JsonValue &Record);
  /// The sharded Phase II dispatcher/collector; Jobs = 1 is the serial
  /// campaign through the same code path.
  void runPhaseTwo(CampaignReport &Report,
                   std::map<std::pair<unsigned, unsigned>, RepOutcome> &Replay,
                   std::map<unsigned, std::string> &JournaledQuarantines,
                   bool HaveDone);
  static void accumulate(CycleCampaignStats &S, const RepOutcome &O);
  /// Appends \p Record if a journal is open and healthy. An append failure
  /// degrades the journal (once) instead of stopping the campaign: the
  /// campaign keeps running in memory and the epilogue marks the journal
  /// non-resumable.
  void journalAppend(const JsonValue &Record);
  /// Switches to in-memory mode after a persistent journal write failure.
  void degradeJournal(const std::string &Why);
  /// Creates (if needed) and returns the sidecar directory; empty string
  /// disables sidecars for this run (telemetry off or mkdir failure —
  /// the campaign still runs, metrics just lose child detail).
  std::string resolveSidecarDir();

  CampaignConfig Config;
  JournalWriter Writer;
  /// Records successfully appended by this invocation (status reporting).
  uint64_t JournalRecords = 0;
  bool JournalDegraded = false;
  std::string JournalDegradedWhy;
  std::string SidecarDirInUse;
  /// Zero point of the merged timeline (run() entry); child events are
  /// rebased onto it via their launch offset.
  std::chrono::steady_clock::time_point TelemetryEpoch;
};

} // namespace campaign
} // namespace dlf

#endif // DLF_CAMPAIGN_CAMPAIGNRUNNER_H
