//===- campaign/Journal.h - Crash-safe campaign checkpointing ---*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign journal is JSON Lines: a header object on the first line,
/// then one record per event (phase-1 result, one per repetition,
/// quarantine, interruption, completion), appended and flushed after every
/// repetition. Append-only means an interrupted campaign (SIGKILL, machine
/// death, exhausted wall-clock budget) loses at most the repetition in
/// flight; resume replays the journaled prefix and continues.
///
/// Every record line carries a CRC32 integrity tag: `<json>\t<8 hex>\n`,
/// where the checksum covers the JSON text. A raw tab can never appear
/// inside the JSON (dump() escapes it as the two-character sequence `\t`),
/// so the last tab on a line unambiguously separates record from tag.
/// Loading salvages the longest valid prefix: the first torn or corrupt
/// line — wherever it is, not just at the tail — stops the scan, and the
/// caller gets a JournalSalvage report saying how many bytes are intact and
/// how many lines were dropped, so resume can quarantine the corrupt tail
/// and truncate the journal back to the valid prefix before appending.
/// Untagged lines (journals written before the tag existed) still load.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_CAMPAIGN_JOURNAL_H
#define DLF_CAMPAIGN_JOURNAL_H

#include "campaign/Json.h"

#include <cstdio>
#include <string>
#include <vector>

namespace dlf {
namespace campaign {

/// Appends one JSON object per line, flushing (and fsyncing) after each
/// append so a journal line is durable before the next repetition starts.
class JournalWriter {
public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter &) = delete;
  JournalWriter &operator=(const JournalWriter &) = delete;

  /// Opens \p Path for appending (\p Truncate starts a fresh journal).
  bool open(const std::string &Path, bool Truncate);

  /// Writes \p Record as one CRC-tagged line and makes it durable (flush +
  /// fsync, with every return value checked). Returns false on any I/O or
  /// sync failure — the record may not have reached stable storage. The
  /// campaign runner reacts by degrading to in-memory results (the journaled
  /// prefix stays valid; it is just no longer growing).
  bool append(const JsonValue &Record);

  /// Human-readable description of the last open/append failure.
  const std::string &lastError() const { return LastError; }

  bool isOpen() const { return Stream != nullptr; }
  void close();

private:
  std::FILE *Stream = nullptr;
  std::string LastError;
};

/// A loaded journal: the header plus every intact record, in order.
struct JournalContents {
  JsonValue Header;
  std::vector<JsonValue> Records;
};

/// What the salvage pass found while loading a journal.
struct JournalSalvage {
  size_t TotalBytes = 0;   ///< File size at load time.
  size_t ValidBytes = 0;   ///< Length of the longest valid record prefix.
  unsigned Records = 0;    ///< Intact records loaded (excluding the header).
  unsigned DroppedLines = 0; ///< Torn/corrupt trailing lines not loaded.

  bool clean() const { return DroppedLines == 0; }
};

/// Parses \p Path, salvaging the longest valid prefix. Corrupt or torn
/// content after that prefix is dropped and counted in \p Salvage (when
/// provided) rather than failing the load. Returns false only when the file
/// cannot be read or no intact header line exists.
bool loadJournal(const std::string &Path, JournalContents &Out,
                 std::string *Error = nullptr,
                 JournalSalvage *Salvage = nullptr);

/// Moves the corrupt tail reported by \p Salvage out of the journal: the
/// bytes past the valid prefix are appended to `<Path>.corrupt` and the
/// journal is truncated back to the prefix, so subsequent appends extend a
/// fully valid file. No-op when the salvage report is clean.
bool quarantineJournalTail(const std::string &Path,
                           const JournalSalvage &Salvage,
                           std::string *Error = nullptr);

} // namespace campaign
} // namespace dlf

#endif // DLF_CAMPAIGN_JOURNAL_H
