//===- campaign/Journal.h - Crash-safe campaign checkpointing ---*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign journal is JSON Lines: a header object on the first line,
/// then one record per event (phase-1 result, one per repetition,
/// quarantine, interruption, completion), appended and flushed after every
/// repetition. Append-only means an interrupted campaign (SIGKILL, machine
/// death, exhausted wall-clock budget) loses at most the repetition in
/// flight; resume replays the journaled prefix and continues. A torn final
/// line (death mid-write) is tolerated and dropped on load.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_CAMPAIGN_JOURNAL_H
#define DLF_CAMPAIGN_JOURNAL_H

#include "campaign/Json.h"

#include <cstdio>
#include <string>
#include <vector>

namespace dlf {
namespace campaign {

/// Appends one JSON object per line, flushing (and fsyncing) after each
/// append so a journal line is durable before the next repetition starts.
class JournalWriter {
public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter &) = delete;
  JournalWriter &operator=(const JournalWriter &) = delete;

  /// Opens \p Path for appending (\p Truncate starts a fresh journal).
  bool open(const std::string &Path, bool Truncate);

  /// Writes \p Record as one line and makes it durable (flush + fsync,
  /// with every return value checked). Returns false on any I/O or sync
  /// failure — the record may not have reached stable storage, so the
  /// campaign stops rather than keep executing work whose checkpoints are
  /// silently lost; the journaled prefix stays resumable.
  bool append(const JsonValue &Record);

  /// Human-readable description of the last open/append failure.
  const std::string &lastError() const { return LastError; }

  bool isOpen() const { return Stream != nullptr; }
  void close();

private:
  std::FILE *Stream = nullptr;
  std::string LastError;
};

/// A loaded journal: the header plus every intact record, in order.
struct JournalContents {
  JsonValue Header;
  std::vector<JsonValue> Records;
};

/// Parses \p Path. A torn final line is dropped silently; any other
/// malformed content fails with \p Error. Returns false when the file
/// cannot be read or has no intact header.
bool loadJournal(const std::string &Path, JournalContents &Out,
                 std::string *Error = nullptr);

} // namespace campaign
} // namespace dlf

#endif // DLF_CAMPAIGN_JOURNAL_H
