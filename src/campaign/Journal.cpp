//===- campaign/Journal.cpp - Crash-safe campaign checkpointing -------------===//

#include "campaign/Journal.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#include <unistd.h>

using namespace dlf;
using namespace dlf::campaign;

bool JournalWriter::open(const std::string &Path, bool Truncate) {
  close();
  LastError.clear();
  Stream = std::fopen(Path.c_str(), Truncate ? "w" : "a");
  if (!Stream) {
    LastError = Path + ": " + std::strerror(errno);
    return false;
  }
  return true;
}

bool JournalWriter::append(const JsonValue &Record) {
  if (!Stream) {
    LastError = "journal is not open";
    return false;
  }
  std::string Line = Record.dump();
  Line += '\n';
  errno = 0;
  if (std::fwrite(Line.data(), 1, Line.size(), Stream) != Line.size()) {
    LastError = std::string("write failed: ") + std::strerror(errno);
    return false;
  }
  if (std::fflush(Stream) != 0) {
    LastError = std::string("flush failed: ") + std::strerror(errno);
    return false;
  }
  // fsync so the record survives machine death, not just process death. A
  // failed sync (ENOSPC, EIO) means the record is NOT durable: report it
  // as a failure so the campaign stops instead of journaling into the
  // void and pretending the prefix is resumable.
  if (fsync(fileno(Stream)) != 0) {
    LastError = std::string("fsync failed: ") + std::strerror(errno);
    return false;
  }
  return true;
}

void JournalWriter::close() {
  if (Stream) {
    std::fclose(Stream);
    Stream = nullptr;
  }
}

bool dlf::campaign::loadJournal(const std::string &Path, JournalContents &Out,
                                std::string *Error) {
  Out.Header = JsonValue();
  Out.Records.clear();

  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }

  std::string Line;
  size_t LineNo = 0;
  bool HaveHeader = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    JsonValue V;
    std::string ParseError;
    if (!parseJson(Line, V, &ParseError)) {
      // A torn trailing line is the expected signature of dying mid-write:
      // drop it. Corruption anywhere else is a real error.
      if (In.peek() == std::char_traits<char>::eof())
        break;
      if (Error)
        *Error = Path + ":" + std::to_string(LineNo) + ": " + ParseError;
      return false;
    }
    if (!V.isObject()) {
      if (Error)
        *Error = Path + ":" + std::to_string(LineNo) + ": not an object";
      return false;
    }
    if (!HaveHeader) {
      Out.Header = std::move(V);
      HaveHeader = true;
    } else {
      Out.Records.push_back(std::move(V));
    }
  }
  if (!HaveHeader) {
    if (Error)
      *Error = Path + ": no journal header";
    return false;
  }
  return true;
}
