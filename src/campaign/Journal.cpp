//===- campaign/Journal.cpp - Crash-safe campaign checkpointing -------------===//

#include "campaign/Journal.h"

#include "faultinject/FaultInject.h"
#include "support/Hash.h"
#include "support/Retry.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

using namespace dlf;
using namespace dlf::campaign;

bool JournalWriter::open(const std::string &Path, bool Truncate) {
  close();
  LastError.clear();
  if (int E = faultinject::failErrno("journal.open", ENOSPC)) {
    LastError = Path + ": " + std::strerror(E) + " (injected)";
    return false;
  }
  Stream = std::fopen(Path.c_str(), Truncate ? "w" : "a");
  if (!Stream) {
    LastError = Path + ": " + std::strerror(errno);
    return false;
  }
  return true;
}

bool JournalWriter::append(const JsonValue &Record) {
  if (!Stream) {
    LastError = "journal is not open";
    return false;
  }
  std::string Json = Record.dump();
  char Tag[16];
  std::snprintf(Tag, sizeof(Tag), "\t%08x\n", crc32(Json.data(), Json.size()));
  std::string Line = Json + Tag;

  if (faultinject::fires("journal.torn")) {
    // Simulated death mid-write: half a record reaches the file, then the
    // process is gone. The salvage pass must recover everything before it.
    std::fwrite(Line.data(), 1, Line.size() / 2, Stream);
    std::fflush(Stream);
    ::_exit(122);
  }

  errno = 0;
  if (int E = faultinject::failErrno("journal.write", ENOSPC)) {
    LastError = std::string("write failed: ") + std::strerror(E) +
                " (injected)";
    return false;
  }
  if (std::fwrite(Line.data(), 1, Line.size(), Stream) != Line.size()) {
    LastError = std::string("write failed: ") + std::strerror(errno);
    return false;
  }
  if (std::fflush(Stream) != 0) {
    LastError = std::string("flush failed: ") + std::strerror(errno);
    return false;
  }
  // fsync so the record survives machine death, not just process death. A
  // failed sync (ENOSPC, EIO) means the record is NOT durable: report it so
  // the campaign can degrade instead of journaling into the void.
  if (int E = faultinject::failErrno("journal.fsync", ENOSPC)) {
    LastError = std::string("fsync failed: ") + std::strerror(E) +
                " (injected)";
    return false;
  }
  if (retryEintr([&] { return fsync(fileno(Stream)); }) != 0) {
    LastError = std::string("fsync failed: ") + std::strerror(errno);
    return false;
  }
  return true;
}

void JournalWriter::close() {
  if (Stream) {
    std::fclose(Stream);
    Stream = nullptr;
  }
}

namespace {

/// Validates and parses one journal line. Tagged lines (`<json>\t<8 hex>`)
/// must pass the CRC check; a tab followed by anything else cannot come from
/// our writer (dump() escapes tabs) and is corruption. Untagged lines are
/// pre-CRC journals and are accepted as-is.
bool parseRecordLine(const std::string &Line, JsonValue &Out,
                     std::string &Reason) {
  std::string Json = Line;
  size_t Tab = Line.rfind('\t');
  if (Tab != std::string::npos) {
    std::string TagText = Line.substr(Tab + 1);
    bool Hex8 = TagText.size() == 8;
    for (char Ch : TagText)
      Hex8 = Hex8 && std::isxdigit(static_cast<unsigned char>(Ch));
    if (!Hex8) {
      Reason = "malformed integrity tag";
      return false;
    }
    Json = Line.substr(0, Tab);
    uint32_t Want =
        static_cast<uint32_t>(std::strtoul(TagText.c_str(), nullptr, 16));
    uint32_t Got = crc32(Json.data(), Json.size());
    if (Want != Got) {
      Reason = "crc mismatch";
      return false;
    }
  }
  std::string ParseError;
  if (!parseJson(Json, Out, &ParseError)) {
    Reason = ParseError;
    return false;
  }
  if (!Out.isObject()) {
    Reason = "not an object";
    return false;
  }
  return true;
}

bool readWholeFile(const std::string &Path, std::string &Out,
                   std::string *Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Error)
      *Error = "cannot open " + Path + ": " + std::strerror(errno);
    return false;
  }
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  if (!Ok && Error)
    *Error = "cannot read " + Path;
  return Ok;
}

} // namespace

bool dlf::campaign::loadJournal(const std::string &Path, JournalContents &Out,
                                std::string *Error, JournalSalvage *Salvage) {
  Out.Header = JsonValue();
  Out.Records.clear();

  std::string Text;
  if (!readWholeFile(Path, Text, Error))
    return false;

  JournalSalvage S;
  S.TotalBytes = Text.size();

  bool HaveHeader = false;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    size_t End = Nl == std::string::npos ? Text.size() : Nl;
    size_t Next = Nl == std::string::npos ? Text.size() : Nl + 1;
    std::string Line = Text.substr(Pos, End - Pos);
    if (Line.empty()) {
      Pos = Next;
      S.ValidBytes = Next;
      continue;
    }
    JsonValue V;
    std::string Reason;
    if (!parseRecordLine(Line, V, Reason))
      break; // Salvage stops at the first bad line; the rest is the tail.
    if (!HaveHeader) {
      Out.Header = std::move(V);
      HaveHeader = true;
    } else {
      Out.Records.push_back(std::move(V));
    }
    Pos = Next;
    S.ValidBytes = Next;
  }

  // Count what the salvage dropped: every remaining (non-empty) line,
  // including an unterminated partial one.
  for (size_t P = Pos; P < Text.size();) {
    size_t Nl = Text.find('\n', P);
    size_t End = Nl == std::string::npos ? Text.size() : Nl;
    if (End > P)
      ++S.DroppedLines;
    P = Nl == std::string::npos ? Text.size() : Nl + 1;
  }

  if (!HaveHeader) {
    if (Error)
      *Error = Path + ": no intact journal header";
    return false;
  }
  S.Records = static_cast<unsigned>(Out.Records.size());
  if (Salvage)
    *Salvage = S;
  return true;
}

bool dlf::campaign::quarantineJournalTail(const std::string &Path,
                                          const JournalSalvage &Salvage,
                                          std::string *Error) {
  if (Salvage.clean())
    return true;

  std::string Text;
  if (!readWholeFile(Path, Text, Error))
    return false;
  if (Text.size() < Salvage.ValidBytes) {
    if (Error)
      *Error = Path + ": shrank since salvage (" +
               std::to_string(Text.size()) + " < " +
               std::to_string(Salvage.ValidBytes) + " bytes)";
    return false;
  }

  std::string QuarantinePath = Path + ".corrupt";
  std::FILE *Q = std::fopen(QuarantinePath.c_str(), "ab");
  if (!Q) {
    if (Error)
      *Error = "cannot open " + QuarantinePath + ": " + std::strerror(errno);
    return false;
  }
  size_t TailLen = Text.size() - Salvage.ValidBytes;
  bool Ok = std::fwrite(Text.data() + Salvage.ValidBytes, 1, TailLen, Q) ==
                TailLen &&
            std::fflush(Q) == 0;
  std::fclose(Q);
  if (!Ok) {
    if (Error)
      *Error = "cannot write " + QuarantinePath + ": " + std::strerror(errno);
    return false;
  }

  if (::truncate(Path.c_str(), static_cast<off_t>(Salvage.ValidBytes)) != 0) {
    if (Error)
      *Error = "cannot truncate " + Path + ": " + std::strerror(errno);
    return false;
  }
  return true;
}
