//===- campaign/Json.h - Minimal JSON reader/writer --------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON value type for the campaign journal. The
/// journal is JSON Lines: one object per line, appended after every
/// repetition, so an interrupted campaign can resume from a prefix. Only
/// the subset the journal needs is supported (objects, arrays, strings,
/// doubles, bools, null); numbers round-trip through double, which is
/// exact for the integers the journal stores (seeds fit in 2^53).
///
//===----------------------------------------------------------------------===//

#ifndef DLF_CAMPAIGN_JSON_H
#define DLF_CAMPAIGN_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dlf {
namespace campaign {

/// A parsed JSON value.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  JsonValue(bool B) : K(Kind::Bool), BoolVal(B) {}
  JsonValue(double N) : K(Kind::Number), NumVal(N) {}
  JsonValue(uint64_t N) : K(Kind::Number), NumVal(static_cast<double>(N)) {}
  JsonValue(unsigned N) : K(Kind::Number), NumVal(N) {}
  JsonValue(int N) : K(Kind::Number), NumVal(N) {}
  JsonValue(std::string S) : K(Kind::String), StrVal(std::move(S)) {}
  JsonValue(const char *S) : K(Kind::String), StrVal(S) {}

  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isObject() const { return K == Kind::Object; }

  // -- Accessors (defaulted: a missing/mistyped field reads as Default, so
  // -- a truncated or hand-edited journal degrades instead of crashing).
  bool asBool(bool Default = false) const {
    return K == Kind::Bool ? BoolVal : Default;
  }
  double asNumber(double Default = 0) const {
    return K == Kind::Number ? NumVal : Default;
  }
  uint64_t asUInt(uint64_t Default = 0) const {
    return K == Kind::Number ? static_cast<uint64_t>(NumVal) : Default;
  }
  const std::string &asString() const { return StrVal; }
  const std::vector<JsonValue> &items() const { return ArrVal; }
  const std::map<std::string, JsonValue> &fields() const { return ObjVal; }

  /// Object field access; returns a shared null value when absent.
  const JsonValue &operator[](const std::string &Key) const;
  bool has(const std::string &Key) const { return ObjVal.count(Key) != 0; }

  // -- Builders.
  void set(const std::string &Key, JsonValue V) {
    ObjVal[Key] = std::move(V);
  }
  void push(JsonValue V) { ArrVal.push_back(std::move(V)); }

  /// Renders this value as compact single-line JSON.
  std::string dump() const;

private:
  Kind K;
  bool BoolVal = false;
  double NumVal = 0;
  std::string StrVal;
  std::vector<JsonValue> ArrVal;
  std::map<std::string, JsonValue> ObjVal;
};

/// Parses one JSON document from \p Text. Returns false (setting \p Error
/// when non-null) on malformed input.
bool parseJson(const std::string &Text, JsonValue &Out,
               std::string *Error = nullptr);

} // namespace campaign
} // namespace dlf

#endif // DLF_CAMPAIGN_JSON_H
