//===- tools/DlfObserve.cpp - Out-of-process ring observer ------------------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// dlf-observe: the sidecar half of the shared-memory event ring (src/ring).
// The preloaded target pays one fixed-size ring write per sync event; this
// tool maps the same ring, merges the per-thread shards by global sequence
// number, rebuilds the analysis::Trace event stream (ring/Assemble.h), and
// feeds the iGoodlock dependency log incrementally in epochs — the closure
// runs out-of-process, off the target's critical path.
//
// Two ways to connect:
//
//   attach:  dlf-observe /tmp/app.ring [options]
//            (the target was started with DLF_RING=/tmp/app.ring; attaching
//            mid-run picks up from whatever was already consumed)
//   launch:  dlf-observe [options] -- ./app args...
//            (creates an anonymous memfd ring, forks, and hands it to the
//            child as DLF_RING=fd:<n>; --preload LIB sets LD_PRELOAD in the
//            child only, so the observer itself is never interposed)
//
// Per epoch (default 50 ms) the observer drains every shard, feeds the new
// events to the dependency log, reruns the closure over the accumulated
// log, and reports progress on stderr. stdout carries only the final
// report, printed through the same analysis/LogBuilder.h printer as
// dlf-analyze — equivalent cycles for the same execution, diffable by CI.
//
// Exit codes mirror dlf-analyze: 0 analysis ran; 1 usage error; 2 the ring
// is missing/not a ring; 3 the ring carries no events.
//
//===----------------------------------------------------------------------===//

#include "analysis/GuardPruner.h"
#include "analysis/LogBuilder.h"
#include "analysis/RaceDetector.h"
#include "analysis/Trace.h"
#include "campaign/Json.h"
#include "igoodlock/IGoodlock.h"
#include "ring/Assemble.h"
#include "ring/Ring.h"
#include "serve/StatusServer.h"
#include "support/Env.h"
#include "telemetry/Metrics.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

using namespace dlf;

namespace {

constexpr int ExitUsage = 1;
constexpr int ExitCorruptRing = 2;
constexpr int ExitNoEvents = 3;

const char *Usage =
    "usage: dlf-observe <ring-file> [options]\n"
    "       dlf-observe [options] -- <command> [args...]\n"
    "options: [--max-cycle-length N] [--analysis-jobs N] [--races]\n"
    "         [--metrics-out FILE] [--metrics-format json|prom]\n"
    "         [--epoch-ms N] [--preload LIB (launch mode)]\n"
    "         [--status-addr ADDR (loopback HTTP: /metrics /status /events)]\n";

struct Options {
  std::string RingPath;          // attach mode
  std::vector<std::string> Cmd;  // launch mode
  std::string Preload;           // LD_PRELOAD for the child (launch mode)
  IGoodlockOptions IG;
  bool Races = false;
  std::string MetricsOut;
  bool MetricsProm = false;
  std::string StatusAddr;
  unsigned EpochMs = 50;
};

void sleepMs(unsigned Ms) {
  struct timespec Ts;
  Ts.tv_sec = Ms / 1000;
  Ts.tv_nsec = static_cast<long>(Ms % 1000) * 1000000L;
  nanosleep(&Ts, nullptr);
}

bool processAlive(uint32_t Pid) {
  if (Pid == 0)
    return false;
  // Signal 0 probes existence; EPERM still means the process is there.
  return kill(static_cast<pid_t>(Pid), 0) == 0 || errno != ESRCH;
}

/// Ring counters as a standalone snapshot of *absolute* totals taken from
/// reader state. Never routed through Registry::inc — the export runs once
/// per epoch now, and incrementing interned counters each epoch would
/// compound the totals.
telemetry::MetricsSnapshot ringMetricsSnapshot(const ring::RingReader &Reader,
                                               const ring::Assembler &Asm) {
  telemetry::MetricsSnapshot M;
  const ring::DrainStats &S = Reader.stats();
  M.Counters["dlf_ring_drained_total"] = S.Drained;
  M.Counters["dlf_ring_torn_total"] = S.Torn;
  M.Counters["dlf_ring_corrupt_total"] = S.Corrupt;
  M.Counters["dlf_ring_half_written_total"] = S.HalfWritten;
  M.Counters["dlf_ring_dropped_total"] = Reader.dropsTotal();
  M.Counters["dlf_ring_drain_passes_total"] = S.Passes;
  M.Counters["dlf_ring_stalled_passes_total"] = S.StalledPasses;
  M.Counters["dlf_ring_unknown_kind_total"] = Asm.unknownKindRecords();
  M.Gauges["dlf_ring_occupancy"] = static_cast<int64_t>(Reader.occupancy());
  return M;
}

/// Everything a scrape or a --metrics-out reader should see: the live
/// registry (closure/assembler counters) merged over the ring totals.
telemetry::MetricsSnapshot observerMetrics(const ring::RingReader &Reader,
                                           const ring::Assembler &Asm) {
  telemetry::MetricsSnapshot Snap = ringMetricsSnapshot(Reader, Asm);
  Snap.merge(telemetry::Registry::global().snapshot());
  return Snap;
}

/// Write-temp + rename so a concurrent reader (or a post-mortem after the
/// observer dies mid-epoch) always sees a complete document, never a
/// truncated one.
bool writeMetricsAtomic(const std::string &Path, bool Prom,
                        const telemetry::MetricsSnapshot &Snap) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    OS << (Prom ? Snap.toPrometheus() : Snap.toJson());
    OS.flush();
    if (!OS)
      return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

/// The observation loop shared by both modes: drain epochs until the
/// writer marks the ring done or disappears, feeding the builder as
/// events arrive. \p ChildPid is the launched target (0 in attach mode),
/// reaped here so a wedged child cannot wedge the observer's exit.
/// \p Status (may be null) receives a snapshot, an "epoch" event, and the
/// ring metrics once per progress epoch, from this thread only.
void observe(ring::RingReader &Reader, pid_t ChildPid, const Options &Opts,
             ring::Assembler &Asm, analysis::IncrementalLogBuilder &Builder,
             std::vector<analysis::TraceEvent> &AllEvents,
             serve::StatusSink *Status, const std::string &Target) {
  const auto Start = std::chrono::steady_clock::now();
  std::vector<ring::Record> Batch;
  std::vector<analysis::TraceEvent> Events;
  uint64_t Epoch = 0;
  unsigned IdleMs = 0;
  // Give a writer that never appears (nobody ran with DLF_RING) a bounded
  // wait instead of spinning forever.
  const unsigned NoWriterBudgetMs = 10000;
  bool SawWriter = false;
  bool ChildExited = false;

  while (true) {
    ++Epoch;
    Batch.clear();
    Events.clear();
    bool Progress = Reader.drainPass(Batch);
    if (!Batch.empty()) {
      Asm.feed(Batch, Events);
      Builder.feed(Events);
      AllEvents.insert(AllEvents.end(), Events.begin(), Events.end());
    }

    if (Progress) {
      IdleMs = 0;
      // The incremental epoch analysis the ring exists for: rerun the
      // closure over the accumulated log while the target keeps running.
      IGoodlockOptions EpochOpts = Opts.IG;
      EpochOpts.KeepGuardedCycles = true;
      IGoodlockStats Stats;
      std::vector<AbstractCycle> Cycles =
          runIGoodlock(Builder.log(), EpochOpts, &Stats);
      std::cerr << "dlf-observe: epoch " << Epoch << ": +" << Batch.size()
                << " record(s), " << Builder.eventsSeen() << " event(s), "
                << Cycles.size() << " cycle(s), "
                << Reader.stats().HeldBack << " held back\n";
      if (Status) {
        serve::CampaignStatus St;
        St.Tool = "dlf-observe";
        St.Benchmark = Target;
        St.Phase = "observing";
        St.Epoch = Epoch;
        St.EventsSeen = Builder.eventsSeen();
        St.CyclesFound = static_cast<unsigned>(Cycles.size());
        St.WallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
        Status->publishStatus(St);
        campaign::JsonValue Ev = campaign::JsonValue::object();
        Ev.set("epoch", Epoch);
        Ev.set("records", static_cast<uint64_t>(Batch.size()));
        Ev.set("events", static_cast<uint64_t>(Builder.eventsSeen()));
        Ev.set("cycles", static_cast<uint64_t>(Cycles.size()));
        Status->publishEvent("epoch", Ev.dump());
        Status->publishMetrics(ringMetricsSnapshot(Reader, Asm));
      }
      // Epoch-granular rewrite: the file stays complete and current at
      // every instant, so an external scraper can tail a live observation
      // instead of waiting for exit.
      if (!Opts.MetricsOut.empty())
        writeMetricsAtomic(Opts.MetricsOut, Opts.MetricsProm,
                           observerMetrics(Reader, Asm));
    }

    if (Reader.writerDone())
      break;

    if (ChildPid > 0 && !ChildExited) {
      int Status = 0;
      pid_t W = waitpid(ChildPid, &Status, WNOHANG);
      if (W == ChildPid) {
        ChildExited = true;
        if (WIFEXITED(Status))
          std::cerr << "dlf-observe: target exited with code "
                    << WEXITSTATUS(Status) << "\n";
        else if (WIFSIGNALED(Status))
          std::cerr << "dlf-observe: target killed by signal "
                    << WTERMSIG(Status) << "\n";
      }
    }

    uint32_t Pid = Reader.writerPid();
    if (Pid != 0)
      SawWriter = true;
    if (SawWriter) {
      if (ChildExited || !processAlive(Pid)) {
        // Writer gone without marking done: a crash. finishDrain will
        // classify any slot it abandoned mid-write.
        std::cerr << "dlf-observe: writer (pid " << Pid
                  << ") exited without marking the ring done\n";
        break;
      }
    } else {
      IdleMs += Opts.EpochMs;
      if (IdleMs >= NoWriterBudgetMs) {
        std::cerr << "dlf-observe: no writer attached after " << IdleMs
                  << " ms; giving up\n";
        break;
      }
    }
    sleepMs(Opts.EpochMs);
  }

  // Final drain: release the hold-back buffer and account for any
  // half-written slot a crashed writer left behind.
  Batch.clear();
  Events.clear();
  Reader.finishDrain(Batch);
  if (!Batch.empty()) {
    Asm.feed(Batch, Events);
    Builder.feed(Events);
    AllEvents.insert(AllEvents.end(), Events.begin(), Events.end());
  }

  if (ChildPid > 0 && !ChildExited)
    waitpid(ChildPid, nullptr, 0);
}

int parseArgs(int Argc, char **Argv, Options &Opts) {
  bool MetricsFormatGiven = false;
  int I = 1;
  for (; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--") {
      for (++I; I < Argc; ++I)
        Opts.Cmd.push_back(Argv[I]);
      break;
    }
    if (Arg == "--races") {
      Opts.Races = true;
      continue;
    }
    if (Arg == "--metrics-out" || Arg == "--metrics-format" ||
        Arg == "--preload" || Arg == "--max-cycle-length" ||
        Arg == "--analysis-jobs" || Arg == "--epoch-ms" ||
        Arg == "--status-addr") {
      if (I + 1 >= Argc) {
        std::cerr << "error: " << Arg << " expects a value\n" << Usage;
        return ExitUsage;
      }
      std::string Val = Argv[++I];
      if (Arg == "--metrics-out") {
        Opts.MetricsOut = Val;
      } else if (Arg == "--preload") {
        Opts.Preload = Val;
      } else if (Arg == "--status-addr") {
        Opts.StatusAddr = Val;
      } else if (Arg == "--metrics-format") {
        MetricsFormatGiven = true;
        if (Val == "json") {
          Opts.MetricsProm = false;
        } else if (Val == "prom") {
          Opts.MetricsProm = true;
        } else {
          std::cerr << "error: --metrics-format must be json|prom\n" << Usage;
          return ExitUsage;
        }
      } else {
        uint64_t N = 0;
        if (!parseUint64Strict(Val.c_str(), N)) {
          std::cerr << "error: " << Arg
                    << " expects a non-negative integer, got '" << Val
                    << "'\n"
                    << Usage;
          return ExitUsage;
        }
        if (Arg == "--max-cycle-length")
          Opts.IG.MaxCycleLength = static_cast<unsigned>(N);
        else if (Arg == "--analysis-jobs")
          Opts.IG.AnalysisJobs = static_cast<unsigned>(N);
        else
          Opts.EpochMs = N ? static_cast<unsigned>(N) : 1;
      }
      continue;
    }
    if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "error: unknown option '" << Arg << "'\n" << Usage;
      return ExitUsage;
    }
    if (!Opts.RingPath.empty()) {
      std::cerr << "error: more than one ring file\n" << Usage;
      return ExitUsage;
    }
    Opts.RingPath = Arg;
  }
  if (Opts.RingPath.empty() == Opts.Cmd.empty()) {
    std::cerr << (Opts.RingPath.empty()
                      ? "error: need a ring file or a -- command\n"
                      : "error: a ring file and a -- command are exclusive\n")
              << Usage;
    return ExitUsage;
  }
  if (MetricsFormatGiven && Opts.MetricsOut.empty()) {
    std::cerr << "error: --metrics-format only applies to --metrics-out\n"
              << Usage;
    return ExitUsage;
  }
  if (!Opts.Preload.empty() && Opts.Cmd.empty()) {
    std::cerr << "error: --preload only applies to launch mode\n" << Usage;
    return ExitUsage;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::cerr << Usage;
    return ExitUsage;
  }
  Options Opts;
  if (int Rc = parseArgs(Argc, Argv, Opts))
    return Rc;
  if (!Opts.MetricsOut.empty() || !Opts.StatusAddr.empty())
    telemetry::setEnabled(true);

  std::unique_ptr<ring::RingReader> Reader;
  pid_t ChildPid = 0;
  std::string Err;

  if (!Opts.Cmd.empty()) {
    // Launch mode: anonymous memfd ring, inherited through fork+exec (the
    // fd is deliberately created without CLOEXEC).
    int RingFd = -1;
    Reader.reset(ring::RingReader::createMemfd(
        ring::shardsFromEnv(), ring::slotsFromEnv(), &RingFd, &Err));
    if (!Reader) {
      std::cerr << "error: " << Err << "\n";
      return ExitCorruptRing;
    }
    ChildPid = fork();
    if (ChildPid < 0) {
      std::cerr << "error: fork: " << std::strerror(errno) << "\n";
      return ExitCorruptRing;
    }
    if (ChildPid == 0) {
      std::string Spec = "fd:" + std::to_string(RingFd);
      setenv(ring::RingEnvVar, Spec.c_str(), 1);
      if (!Opts.Preload.empty())
        setenv("LD_PRELOAD", Opts.Preload.c_str(), 1);
      std::vector<char *> ExecArgs;
      for (const std::string &A : Opts.Cmd)
        ExecArgs.push_back(const_cast<char *>(A.c_str()));
      ExecArgs.push_back(nullptr);
      execvp(ExecArgs[0], ExecArgs.data());
      std::cerr << "error: exec " << Opts.Cmd[0] << ": "
                << std::strerror(errno) << "\n";
      _exit(127);
    }
  } else {
    Reader.reset(ring::RingReader::attach(Opts.RingPath, &Err));
    if (!Reader) {
      std::cerr << "error: " << Err << "\n";
      return ExitCorruptRing;
    }
  }

  // Start the status server only after the fork above: it owns a thread,
  // and forking a multithreaded process risks the child inheriting a
  // locked allocator when it still has setenv calls before exec.
  const std::string Target =
      Opts.RingPath.empty() ? Opts.Cmd[0] : Opts.RingPath;
  std::unique_ptr<serve::StatusServer> Server;
  if (!Opts.StatusAddr.empty()) {
    serve::ServerOptions SO;
    SO.Addr = Opts.StatusAddr;
    SO.Tool = "dlf-observe";
    SO.BuildInfo["target"] = Target;
    std::string SErr;
    Server = serve::StatusServer::start(std::move(SO), &SErr);
    if (!Server) {
      std::cerr << "error: " << SErr << "\n";
      return ExitUsage;
    }
    // The port echo is the contract for --status-addr 127.0.0.1:0:
    // scripts parse this stderr line to find the ephemeral port.
    std::cerr << "status server listening on http://" << Server->address()
              << " (/metrics /status /events /healthz /buildinfo)\n";
  }

  ring::Assembler Asm(*Reader);
  analysis::IncrementalLogBuilder Builder(&std::cerr);
  std::vector<analysis::TraceEvent> AllEvents;
  observe(*Reader, ChildPid, Opts, Asm, Builder, AllEvents, Server.get(),
          Target);

  const ring::DrainStats &S = Reader->stats();
  std::cerr << "dlf-observe: drained " << S.Drained << " record(s) in "
            << S.Passes << " pass(es), " << Reader->dropsTotal()
            << " dropped, " << S.Torn << " torn, " << S.Corrupt
            << " corrupt, " << S.HalfWritten << " half-written\n";

  if (AllEvents.empty()) {
    std::cerr << "error: ring carries no events\n";
    return ExitNoEvents;
  }

  int Rc = 0;
  unsigned FinalCycles = 0;
  if (Opts.Races) {
    analysis::TraceFile Trace;
    Trace.Events = AllEvents;
    analysis::RaceDetectorOptions ROpts;
    ROpts.Jobs = Opts.IG.AnalysisJobs;
    analysis::RaceAnalysis Result = analysis::detectRaces(Trace, ROpts);
    std::cerr << "dlf-observe: race pass over " << Trace.Events.size()
              << " events, jobs " << ROpts.Jobs << "\n";
    for (const std::string &W : Result.Warnings)
      std::cerr << "warning: " << W << "\n";
    analysis::printRaceReport(std::cout, "dlf-observe", Result);
  } else {
    IGoodlockOptions FinalOpts = Opts.IG;
    FinalOpts.KeepGuardedCycles = true;
    IGoodlockStats Stats;
    std::vector<AbstractCycle> Cycles =
        runIGoodlock(Builder.log(), FinalOpts, &Stats);
    std::vector<analysis::CycleClassification> Classes =
        analysis::classifyCycles(Builder.log(), Cycles);
    analysis::printCycleReport(std::cout, "dlf-observe", Builder.log(),
                               Cycles, Classes, Stats);
    FinalCycles = static_cast<unsigned>(Cycles.size());
  }

  if (Server) {
    serve::CampaignStatus St;
    St.Tool = "dlf-observe";
    St.Benchmark = Target;
    St.Phase = "done";
    St.EventsSeen = Builder.eventsSeen();
    St.CyclesFound = FinalCycles;
    St.Complete = true;
    Server->publishStatus(St);
    Server->publishMetrics(ringMetricsSnapshot(*Reader, Asm));
  }

  if (Rc == 0 && !Opts.MetricsOut.empty()) {
    if (!writeMetricsAtomic(Opts.MetricsOut, Opts.MetricsProm,
                            observerMetrics(*Reader, Asm))) {
      std::cerr << "error: cannot write " << Opts.MetricsOut << "\n";
      return ExitUsage;
    }
    std::cerr << "metrics written to " << Opts.MetricsOut << "\n";
  }
  return Rc;
}
