//===- tools/DlfRun.cpp - Command-line driver --------------------------------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// dlf-run: run any registered benchmark under the DeadlockFuzzer workflow
// from the command line.
//
//   dlf-run --list
//   dlf-run logging                     # phase 1 + phase 2 over all cycles
//   dlf-run logging --phase1-only
//   dlf-run logging --variant 5 --reps 50
//   dlf-run logging --cycle 2 --seed 7  # fuzz one cycle once, verbose
//   dlf-run swing --normal 100          # uninstrumented control runs
//   dlf-run hedc --record-phase1        # observe a real concurrent run
//
//===----------------------------------------------------------------------===//

#include "campaign/CampaignRunner.h"
#include "faultinject/FaultInject.h"
#include "serve/StatusServer.h"
#include "fuzzer/ActiveTester.h"
#include "igoodlock/Serialize.h"
#include "substrates/BenchmarkRegistry.h"
#include "support/Env.h"
#include "support/Table.h"
#include "telemetry/Metrics.h"
#include "telemetry/Timeline.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

using namespace dlf;

namespace {

void printUsage() {
  std::cout
      << "usage: dlf-run <benchmark> [options]\n"
         "       dlf-run --list\n\n"
         "options:\n"
         "  --phase1-only          stop after iGoodlock\n"
         "  --record-phase1        observe a real concurrent execution\n"
         "                         (default: serialized random execution)\n"
         "  --variant N            1=k-object 2=exec-index (default)\n"
         "                         3=no abstraction 4=no context 5=no yields\n"
         "  --reps N               phase 2 repetitions per cycle (default 20)\n"
         "  --seed N               base seed (default 1)\n"
         "  --cycle N              fuzz only cycle #N\n"
         "  --max-cycle-length N   iGoodlock iteration bound (default 6)\n"
         "  --analysis-jobs N      iGoodlock closure worker threads\n"
         "                         (default 1 = serial; 0 = hardware\n"
         "                         concurrency); cycles and stats are\n"
         "                         identical for every N\n"
         "  --normal N             run uninstrumented N times under a\n"
         "                         watchdog and count deadlocks\n"
         "  --save-cycles FILE     write the phase 1 report to FILE\n"
         "  --cycles FILE          skip phase 1; fuzz cycles loaded from\n"
         "                         FILE (written by --save-cycles)\n"
         "  --hb MODE              happens-before filter for phase 1:\n"
         "                         off (default) | fork-join | full-sync\n"
         "  --heal N               after phase 2, arm immunity with the\n"
         "                         confirmed cycles and run N random\n"
         "                         executions (all should complete)\n"
         "  --campaign             fault-isolated campaign: phase 1 and\n"
         "                         every repetition in a watchdog-guarded\n"
         "                         child process, journaled for resume\n"
         "  --resume FILE          resume an interrupted campaign from its\n"
         "                         journal (implies --campaign)\n"
         "  --journal FILE         campaign journal path (default\n"
         "                         <benchmark>.campaign.jsonl)\n"
         "  --run-timeout-ms N     per-child watchdog (default 5000)\n"
         "  --budget-s N           wall-clock budget; on exhaustion the\n"
         "                         campaign checkpoints and exits\n"
         "  --max-retries N        retries per repetition for hung or\n"
         "                         crashed children (default 3)\n"
         "  --jobs N               campaign child processes in flight at\n"
         "                         once (default 1 = serial; 0 = hardware\n"
         "                         concurrency); classification counts are\n"
         "                         identical for every N, and journals\n"
         "                         resume across --jobs values\n"
         "  --include-guarded      spend phase 2 repetitions on cycles the\n"
         "                         guard-lock pruner statically discharged\n"
         "                         (by default they are reported with their\n"
         "                         classification but consume no budget)\n"
         "  --phase1 ENGINE        campaign phase 1 grading engine:\n"
         "                         igoodlock (default) | predict (sound\n"
         "                         sync-preserving prediction; only\n"
         "                         PREDICTED-SOUND cycles get phase 2\n"
         "                         budget, sound-first) | both (verdicts\n"
         "                         reported and sound cycles scheduled\n"
         "                         first, nothing skipped)\n"
         "  --faults PLAN          inject deterministic faults into the\n"
         "                         campaign runtime; PLAN is a `;`-separated\n"
         "                         list of site[:action]@trigger clauses,\n"
         "                         e.g. 'journal.fsync:enospc@3;\n"
         "                         child.crash@rep=7' (see also DLF_FAULTS)\n"
         "  --chaos SEED           generate a randomized fault plan from\n"
         "                         SEED (child crashes/hangs, spawn\n"
         "                         failures, sidecar loss, journal errors)\n"
         "                         and run the campaign under it; combine\n"
         "                         with --faults to add explicit clauses\n"
         "  --metrics-out FILE     enable telemetry and export the metrics\n"
         "                         registry to FILE at exit (campaign mode\n"
         "                         exports the cross-process aggregate,\n"
         "                         identical for every --jobs value)\n"
         "  --metrics-format FMT   json (default) | prom (Prometheus text\n"
         "                         exposition)\n"
         "  --timeline-out FILE    write a Chrome trace-event timeline to\n"
         "                         FILE (open in Perfetto or\n"
         "                         about://tracing)\n"
         "  --status-addr ADDR     campaign mode: serve live observability\n"
         "                         over HTTP on ADDR (loopback only, e.g.\n"
         "                         127.0.0.1:0 for an ephemeral port echoed\n"
         "                         on stderr): GET /metrics (Prometheus),\n"
         "                         /status (JSON progress), /events (SSE),\n"
         "                         /healthz, /buildinfo; implies telemetry\n";
}

/// CLI telemetry export options (--metrics-out / --timeline-out).
struct TelemetryCli {
  std::string MetricsOut;
  std::string TimelineOut;
  bool Prom = false;

  bool any() const { return !MetricsOut.empty() || !TimelineOut.empty(); }
};

bool writeTextFile(const std::string &Path, const std::string &Body) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  OS << Body;
  OS.flush();
  return static_cast<bool>(OS);
}

/// Writes the requested export files from an already-assembled snapshot
/// and event list. Returns false (after reporting to stderr) on I/O error.
bool exportTelemetry(const TelemetryCli &Cli,
                     const telemetry::MetricsSnapshot &Snap,
                     const std::vector<telemetry::TraceEvent> &Events,
                     const std::map<uint32_t, std::string> &ProcessNames,
                     const std::map<uint64_t, std::string> &ThreadNames) {
  bool Ok = true;
  if (!Cli.MetricsOut.empty()) {
    if (!writeTextFile(Cli.MetricsOut,
                       Cli.Prom ? Snap.toPrometheus() : Snap.toJson())) {
      std::cerr << "error: cannot write " << Cli.MetricsOut << "\n";
      Ok = false;
    } else {
      std::cout << "metrics written to " << Cli.MetricsOut << "\n";
    }
  }
  if (!Cli.TimelineOut.empty()) {
    std::string Err;
    if (!telemetry::Timeline::writeChromeTrace(Cli.TimelineOut, Events,
                                               ProcessNames, ThreadNames,
                                               Err)) {
      std::cerr << "error: " << Err << "\n";
      Ok = false;
    } else {
      std::cout << "timeline written to " << Cli.TimelineOut
                << " (load in Perfetto or about://tracing)\n";
    }
  }
  return Ok;
}

/// Exports the in-process telemetry (global registry plus the pid-0
/// timeline lane) for non-campaign runs.
bool exportLocalTelemetry(const TelemetryCli &Cli) {
  if (!Cli.any())
    return true;
  telemetry::MetricsSnapshot Snap = telemetry::Registry::global().snapshot();
  std::vector<telemetry::TraceEvent> Events;
  std::map<uint32_t, std::string> LocalThreads;
  telemetry::Timeline::global().take(Events, LocalThreads);
  std::map<uint32_t, std::string> ProcessNames{{0, "dlf-run"}};
  std::map<uint64_t, std::string> ThreadNames;
  for (const auto &KV : LocalThreads)
    ThreadNames.emplace(uint64_t(KV.first), KV.second);
  return exportTelemetry(Cli, Snap, Events, ProcessNames, ThreadNames);
}

/// Runs the fault-isolated campaign and prints its report. Returns the
/// process exit code: 0 for a completed or cleanly-interrupted (resumable)
/// campaign, 1 for configuration or journal errors.
int runCampaign(const BenchmarkInfo &Bench, campaign::CampaignConfig Config,
                bool Resume, const TelemetryCli &Telemetry) {
  campaign::CampaignRunner::installSigintHandler();
  campaign::CampaignRunner Runner(std::move(Config));
  campaign::CampaignReport Report = Runner.run(Resume);
  if (!Report.Error.empty()) {
    std::cerr << "error: " << Report.Error << "\n";
    return 1;
  }

  std::cout << "campaign (" << Bench.Name << "): phase 1 "
            << (Report.PhaseOneCompleted ? "completed" : "partial") << " in "
            << Report.PhaseOneAttempts << " sandboxed attempt(s), "
            << Report.Cycles.size() << " potential cycle(s)\n\n";
  Table T({"Cycle", "Reproduced", "Other", "Stalls", "Clean", "Hung",
           "Crashed", "OOM", "Retries", "Probability", "Note"});
  for (size_t I = 0; I != Report.PerCycle.size(); ++I) {
    const campaign::CycleCampaignStats &S = Report.PerCycle[I];
    T.addRow({"#" + std::to_string(I),
              Table::fmt(static_cast<uint64_t>(S.Reproduced)) + "/" +
                  Table::fmt(static_cast<uint64_t>(S.Reps)),
              Table::fmt(static_cast<uint64_t>(S.OtherDeadlocks)),
              Table::fmt(static_cast<uint64_t>(S.Stalls)),
              Table::fmt(static_cast<uint64_t>(S.CleanRuns)),
              Table::fmt(static_cast<uint64_t>(S.Hung)),
              Table::fmt(
                  static_cast<uint64_t>(S.CrashedSignal + S.CrashedExit)),
              Table::fmt(static_cast<uint64_t>(S.Oom)),
              Table::fmt(static_cast<uint64_t>(S.RetriesSpent)),
              Table::fmt(S.probability(), 2),
              S.Quarantined ? "QUARANTINED"
                            : (S.Skipped ? "SKIPPED" : "")});
  }
  T.print(std::cout);
  for (size_t I = 0; I != Report.PerCycle.size(); ++I)
    if (Report.PerCycle[I].Quarantined)
      std::cout << "cycle #" << I
                << " quarantined: " << Report.PerCycle[I].QuarantineReason
                << "\n";
  for (size_t I = 0; I != Report.PerCycle.size(); ++I)
    if (!Report.PerCycle[I].Prediction.empty())
      std::cout << "cycle #" << I
                << " prediction: " << Report.PerCycle[I].Prediction << "\n";
  for (size_t I = 0; I != Report.PerCycle.size(); ++I)
    if (Report.PerCycle[I].Skipped) {
      // Name whichever engine discharged the cycle: the pruner verdict when
      // it is non-schedulable, the prediction verdict otherwise (a cycle
      // the pruner could not discharge but the predictor left UNCONFIRMED).
      const campaign::CycleCampaignStats &S = Report.PerCycle[I];
      bool PrunerDischarged =
          !S.Classification.empty() && S.Classification != "schedulable";
      std::cout << "cycle #" << I << " statically discharged as "
                << (PrunerDischarged ? S.Classification : S.Prediction)
                << "; rerun with --include-guarded to spend reps on it\n";
    }
  std::cout << "reps executed " << Report.RepsExecuted
            << ", replayed from journal " << Report.RepsReplayed << "\n";
  if (Report.RepsExecuted)
    std::cout << "throughput: " << Table::fmt(Report.repsPerSecond(), 2)
              << " reps/s (wall " << Table::fmt(Report.PhaseTwoWallMs / 1000.0, 2)
              << " s, child cpu " << Table::fmt(Report.ChildCpuMs / 1000.0, 2)
              << " s), peak " << Report.PeakConcurrency
              << " concurrent child(ren), jobs " << Report.JobsUsed << "\n";
  if (Report.JournalTailDropped)
    std::cout << "journal salvage: dropped " << Report.JournalTailDropped
              << " torn/corrupt line(s); the tail was quarantined to "
              << Runner.config().JournalPath << ".corrupt\n";
  if (Report.JournalDegraded)
    std::cout << "journal degraded (" << Report.JournalError
              << "); results were computed in-memory and the unusable "
              << "journal was moved to " << Runner.config().JournalPath
              << ".broken\n";
  // The journal fingerprint covers seeds, reps, and abstraction settings,
  // so the resume invocation must repeat this one's options. A degraded
  // journal cannot seed a resume: suppress the advice rather than point the
  // user at a known-incomplete record stream.
  if (Report.BudgetExhausted || Report.Interrupted) {
    const char *Why = Report.BudgetExhausted ? "wall-clock budget exhausted"
                                             : "interrupted";
    if (Report.JournalDegraded)
      std::cout << Why << "; the journal is degraded, so this campaign "
                << "cannot be resumed — rerun it from scratch\n";
    else
      std::cout << Why << "; resume with the same options plus: --resume "
                << Runner.config().JournalPath << "\n";
  } else {
    std::cout << "campaign complete\n";
  }

  if (Telemetry.any()) {
    // The campaign aggregate lives in the report; the parent's global
    // registry and timeline (normally empty in campaign mode — all
    // scheduling happens in children) are merged in as pid 0 so nothing
    // recorded parent-side is lost.
    telemetry::MetricsSnapshot Snap = Report.Metrics;
    Snap.merge(telemetry::Registry::global().snapshot());
    std::vector<telemetry::TraceEvent> Events;
    std::map<uint32_t, std::string> ParentThreads;
    telemetry::Timeline::global().take(Events, ParentThreads);
    Events.insert(Events.end(), Report.Timeline.begin(),
                  Report.Timeline.end());
    std::map<uint32_t, std::string> ProcessNames =
        Report.TimelineProcessNames;
    ProcessNames.emplace(0, "dlf-run");
    std::map<uint64_t, std::string> ThreadNames = Report.TimelineThreadNames;
    for (const auto &KV : ParentThreads)
      ThreadNames.emplace(uint64_t(KV.first), KV.second);
    if (!exportTelemetry(Telemetry, Snap, Events, ProcessNames, ThreadNames))
      return 1;
  }
  return 0;
}

bool applyVariant(ActiveTesterConfig &Config, int Variant) {
  switch (Variant) {
  case 1:
    Config.Base.Kind = AbstractionKind::KObjectSensitive;
    return true;
  case 2:
    Config.Base.Kind = AbstractionKind::ExecutionIndex;
    return true;
  case 3:
    Config.Base.Kind = AbstractionKind::Trivial;
    return true;
  case 4:
    Config.Base.UseContext = false;
    return true;
  case 5:
    Config.Base.UseYields = false;
    return true;
  default:
    return false;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    printUsage();
    return 1;
  }
  if (std::strcmp(Argv[1], "--list") == 0) {
    Table T({"Benchmark", "Description"});
    for (const BenchmarkInfo &Info : allBenchmarks())
      T.addRow({Info.Name, Info.Description});
    T.print(std::cout);
    return 0;
  }

  const BenchmarkInfo *Bench = findBenchmark(Argv[1]);
  if (!Bench) {
    std::cerr << "error: unknown benchmark '" << Argv[1]
              << "' (try --list)\n";
    return 1;
  }

  ActiveTesterConfig Config;
  bool Phase1Only = false;
  int OnlyCycle = -1;
  int NormalRuns = 0;
  int HealRuns = 0;
  std::string SaveCyclesPath, LoadCyclesPath;
  bool Campaign = false;
  bool Resume = false;
  bool JournalFlagGiven = false;
  bool JobsGiven = false;
  bool IncludeGuarded = false;
  bool Phase1Given = false;
  campaign::Phase1Engine Phase1 = campaign::Phase1Engine::IGoodlock;
  bool MetricsFormatGiven = false;
  TelemetryCli Telemetry;
  std::string JournalPath;
  uint64_t RunTimeoutMs = 0;
  uint64_t BudgetS = 0;
  uint64_t Jobs = 1;
  int MaxRetries = -1;
  std::string FaultsSpec;
  bool ChaosGiven = false;
  uint64_t ChaosSeed = 0;
  std::string StatusAddr;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    // Every numeric option is validated strictly: a missing, negative,
    // non-numeric, or out-of-range operand is a usage error, never a
    // silent zero (the atoi failure mode).
    auto NextUint = [&](uint64_t &Out) {
      const char *Text = I + 1 < Argc ? Argv[I + 1] : nullptr;
      if (!Text || !parseUint64Strict(Text, Out)) {
        std::cerr << "error: " << Arg
                  << " expects a non-negative integer, got '"
                  << (Text ? Text : "") << "'\n";
        return false;
      }
      ++I;
      return true;
    };
    uint64_t N = 0;
    if (Arg == "--phase1-only") {
      Phase1Only = true;
    } else if (Arg == "--record-phase1") {
      Config.PhaseOneMode = RunMode::Record;
    } else if (Arg == "--variant") {
      if (!NextUint(N))
        return 1;
      if (!applyVariant(Config, static_cast<int>(N))) {
        std::cerr << "error: variant must be 1..5\n";
        return 1;
      }
    } else if (Arg == "--reps") {
      if (!NextUint(N))
        return 1;
      Config.PhaseTwoReps = static_cast<unsigned>(N);
    } else if (Arg == "--seed") {
      if (!NextUint(N))
        return 1;
      Config.PhaseOneSeed = N;
      Config.PhaseTwoSeedBase = N * 1000;
    } else if (Arg == "--cycle") {
      if (!NextUint(N))
        return 1;
      OnlyCycle = static_cast<int>(N);
    } else if (Arg == "--max-cycle-length") {
      if (!NextUint(N))
        return 1;
      Config.Goodlock.MaxCycleLength = static_cast<unsigned>(N);
    } else if (Arg == "--analysis-jobs") {
      if (!NextUint(N))
        return 1;
      Config.Goodlock.AnalysisJobs = static_cast<unsigned>(N);
    } else if (Arg == "--normal") {
      if (!NextUint(N))
        return 1;
      NormalRuns = static_cast<int>(N);
    } else if (Arg == "--save-cycles") {
      if (I + 1 < Argc)
        SaveCyclesPath = Argv[++I];
    } else if (Arg == "--cycles") {
      if (I + 1 < Argc)
        LoadCyclesPath = Argv[++I];
    } else if (Arg == "--hb") {
      std::string Mode = I + 1 < Argc ? Argv[++I] : "off";
      if (Mode == "off") {
        Config.Base.HappensBefore = HbMode::Off;
      } else if (Mode == "fork-join") {
        Config.Base.HappensBefore = HbMode::ForkJoin;
        Config.Goodlock.FilterByHappensBefore = true;
      } else if (Mode == "full-sync") {
        Config.Base.HappensBefore = HbMode::FullSync;
        Config.Goodlock.FilterByHappensBefore = true;
      } else {
        std::cerr << "error: --hb must be off|fork-join|full-sync\n";
        return 1;
      }
    } else if (Arg == "--heal") {
      if (!NextUint(N))
        return 1;
      HealRuns = static_cast<int>(N);
    } else if (Arg == "--campaign") {
      Campaign = true;
    } else if (Arg == "--resume") {
      Campaign = true;
      Resume = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        JournalPath = Argv[++I];
    } else if (Arg == "--journal") {
      JournalFlagGiven = true;
      if (I + 1 < Argc)
        JournalPath = Argv[++I];
    } else if (Arg == "--run-timeout-ms") {
      if (!NextUint(N))
        return 1;
      RunTimeoutMs = N;
    } else if (Arg == "--budget-s") {
      if (!NextUint(N))
        return 1;
      BudgetS = N;
    } else if (Arg == "--max-retries") {
      if (!NextUint(N))
        return 1;
      MaxRetries = static_cast<int>(N);
    } else if (Arg == "--jobs") {
      if (!NextUint(N))
        return 1;
      Jobs = N;
      JobsGiven = true;
    } else if (Arg == "--include-guarded") {
      IncludeGuarded = true;
    } else if (Arg == "--phase1") {
      std::string Engine = I + 1 < Argc ? Argv[++I] : "";
      if (!campaign::phase1EngineFromName(Engine, Phase1)) {
        std::cerr << "error: --phase1 must be igoodlock|predict|both\n";
        return 1;
      }
      Phase1Given = true;
    } else if (Arg == "--faults") {
      if (I + 1 >= Argc) {
        std::cerr << "error: --faults expects a plan "
                     "(site[:action]@trigger;...)\n";
        return 1;
      }
      if (!FaultsSpec.empty())
        FaultsSpec += ";";
      FaultsSpec += Argv[++I];
    } else if (Arg == "--chaos") {
      if (!NextUint(N))
        return 1;
      ChaosGiven = true;
      ChaosSeed = N;
    } else if (Arg == "--metrics-out") {
      if (I + 1 < Argc)
        Telemetry.MetricsOut = Argv[++I];
    } else if (Arg == "--metrics-format") {
      MetricsFormatGiven = true;
      std::string Fmt = I + 1 < Argc ? Argv[++I] : "";
      if (Fmt == "json") {
        Telemetry.Prom = false;
      } else if (Fmt == "prom") {
        Telemetry.Prom = true;
      } else {
        std::cerr << "error: --metrics-format must be json|prom\n";
        return 1;
      }
    } else if (Arg == "--timeline-out") {
      if (I + 1 < Argc)
        Telemetry.TimelineOut = Argv[++I];
    } else if (Arg == "--status-addr") {
      if (I + 1 >= Argc) {
        std::cerr << "error: --status-addr expects an address "
                     "(e.g. 127.0.0.1:0)\n";
        return 1;
      }
      StatusAddr = Argv[++I];
    } else {
      std::cerr << "error: unknown option '" << Arg << "'\n";
      printUsage();
      return 1;
    }
  }

  if (JobsGiven && !Campaign) {
    std::cerr << "error: --jobs only applies to --campaign (or --resume)\n";
    return 1;
  }
  if (IncludeGuarded && !Campaign) {
    std::cerr << "error: --include-guarded only applies to --campaign "
                 "(or --resume)\n";
    return 1;
  }
  if (Phase1Given && !Campaign) {
    std::cerr << "error: --phase1 only applies to --campaign (or --resume)\n";
    return 1;
  }
  if ((!FaultsSpec.empty() || ChaosGiven) && !Campaign) {
    std::cerr << "error: --faults/--chaos only apply to --campaign "
                 "(or --resume)\n";
    return 1;
  }
  if (Resume && JournalFlagGiven) {
    std::cerr << "error: --resume FILE already names the journal; "
                 "--journal conflicts with it\n";
    return 1;
  }
  if (MetricsFormatGiven && Telemetry.MetricsOut.empty()) {
    std::cerr << "error: --metrics-format only applies to --metrics-out\n";
    return 1;
  }
  if (!StatusAddr.empty() && !Campaign) {
    std::cerr << "error: --status-addr only applies to --campaign "
                 "(or --resume)\n";
    return 1;
  }

  if (Telemetry.any())
    telemetry::setEnabled(true);
  if (!Telemetry.TimelineOut.empty())
    telemetry::Timeline::global().setEnabled(true);

  if (Campaign) {
    // Arm the fault plan before the campaign starts so every injection
    // site (including the journal open) sees it. Chaos clauses come first;
    // explicit --faults clauses extend them.
    faultinject::FaultPlan Plan;
    if (ChaosGiven)
      Plan = faultinject::FaultPlan::chaos(ChaosSeed);
    if (!FaultsSpec.empty()) {
      std::string Error;
      if (!Plan.parse(FaultsSpec, &Error)) {
        std::cerr << "error: " << Error << "\n";
        return 1;
      }
    }
    if (!Plan.empty()) {
      if (ChaosGiven)
        std::cout << "chaos plan (seed " << ChaosSeed
                  << "): " << Plan.describe() << "\n";
      else
        std::cout << "fault plan: " << Plan.describe() << "\n";
      faultinject::setPlan(std::move(Plan));
    }

    campaign::CampaignConfig CC;
    CC.BenchmarkName = Bench->Name;
    CC.Entry = Bench->Entry;
    CC.Tester = Config;
    CC.RunTimeoutMs = RunTimeoutMs;
    CC.BudgetS = BudgetS;
    CC.Jobs = static_cast<unsigned>(Jobs);
    CC.IncludeGuarded = IncludeGuarded;
    CC.Phase1 = Phase1;
    if (MaxRetries >= 0)
      CC.MaxRetries = static_cast<unsigned>(MaxRetries);
    CC.JournalPath = JournalPath.empty()
                         ? std::string(Bench->Name) + ".campaign.jsonl"
                         : JournalPath;
    CC.Telemetry = Telemetry.any();

    std::unique_ptr<serve::StatusServer> Server;
    if (!StatusAddr.empty()) {
      serve::ServerOptions SO;
      SO.Addr = StatusAddr;
      SO.Tool = "dlf-run";
      SO.BuildInfo["benchmark"] = Bench->Name;
      std::string Err;
      Server = serve::StatusServer::start(std::move(SO), &Err);
      if (!Server) {
        std::cerr << "error: " << Err << "\n";
        return 1;
      }
      // The port echo is the contract for --status-addr 127.0.0.1:0:
      // scripts parse this stderr line to find the ephemeral port.
      std::cerr << "status server listening on http://" << Server->address()
                << " (/metrics /status /events /healthz /buildinfo)\n";
      CC.Status = Server.get();
      // /metrics serves the frontier-merged campaign aggregate; that
      // aggregate only exists when campaign telemetry is on.
      CC.Telemetry = true;
      telemetry::setEnabled(true);
    }
    return runCampaign(*Bench, std::move(CC), Resume, Telemetry);
  }

  if (NormalRuns > 0) {
    unsigned Hung = 0;
    for (int I = 0; I != NormalRuns; ++I)
      if (runForkedWithTimeout(Bench->Entry, /*TimeoutMs=*/5000) ==
          ForkedOutcome::Hung)
        ++Hung;
    std::cout << "uninstrumented runs: " << NormalRuns << ", deadlocked: "
              << Hung << "\n";
    return exportLocalTelemetry(Telemetry) ? 0 : 1;
  }

  ActiveTester Tester(Bench->Entry, Config);
  PhaseOneResult P1;
  if (!LoadCyclesPath.empty()) {
    std::string ParseError;
    if (!loadCyclesFromFile(LoadCyclesPath, P1.Cycles, &ParseError)) {
      std::cerr << "error: cannot load cycles: " << ParseError << "\n";
      return 1;
    }
    std::cout << "loaded " << P1.Cycles.size() << " cycle(s) from "
              << LoadCyclesPath << "\n\n";
  } else {
    P1 = Tester.runPhaseOne();
    std::cout << "phase 1 (" << runModeName(Config.PhaseOneMode)
              << "): " << P1.Log.entries().size() << " dependency entries, "
              << P1.Cycles.size() << " potential cycle(s)"
              << (P1.Exec.Completed ? "" : " [observation stalled]")
              << "\n";
    std::cout << "closure: " << P1.Stats.ChainsExplored << " chains in "
              << Table::fmt(P1.Stats.ElapsedMicros / 1000.0, 2) << " ms ("
              << Table::fmt(P1.Stats.entriesPerSecond(), 0) << " entries/s, "
              << Table::fmt(P1.Stats.chainsPerSecond(), 0)
              << " chains/s, jobs " << P1.Stats.JobsUsed << ")\n\n";
    if (P1.RetriesExhausted)
      std::cerr << "warning: " << P1.Error << "\n";
    for (size_t I = 0; I != P1.Cycles.size(); ++I)
      std::cout << "#" << I << " " << P1.Cycles[I].toString() << "\n";
    if (!SaveCyclesPath.empty()) {
      if (!saveCyclesToFile(SaveCyclesPath, P1.Cycles)) {
        std::cerr << "error: cannot write " << SaveCyclesPath << "\n";
        return 1;
      }
      std::cout << "saved report to " << SaveCyclesPath << "\n";
    }
  }
  if (Phase1Only || P1.Cycles.empty())
    return exportLocalTelemetry(Telemetry) ? 0 : 1;

  Table T({"Cycle", "Reproduced", "Other", "Stalls", "Clean", "Probability",
           "Avg thrashes"});
  for (size_t I = 0; I != P1.Cycles.size(); ++I) {
    if (OnlyCycle >= 0 && static_cast<size_t>(OnlyCycle) != I)
      continue;
    CycleFuzzStats Stats = Tester.fuzzCycle(P1.Cycles[I]);
    T.addRow({"#" + std::to_string(I),
              Table::fmt(static_cast<uint64_t>(Stats.ReproducedTarget)) +
                  "/" + Table::fmt(static_cast<uint64_t>(Stats.Runs)),
              Table::fmt(static_cast<uint64_t>(Stats.OtherDeadlocks)),
              Table::fmt(static_cast<uint64_t>(Stats.Stalls)),
              Table::fmt(static_cast<uint64_t>(Stats.CleanRuns)),
              Table::fmt(Stats.probability(), 2),
              Table::fmt(Stats.avgBadPauses(), 2)});
  }
  std::cout << "phase 2 (" << abstractionKindName(Config.Base.Kind)
            << (Config.Base.UseContext ? ", context" : ", no-context")
            << (Config.Base.UseYields ? ", yields" : ", no-yields")
            << "):\n";
  T.print(std::cout);

  if (HealRuns > 0) {
    // Healing demo: fuzz everything, arm immunity with the confirmed
    // cycles, and show the random scheduler can no longer create them.
    ActiveTesterReport Report;
    Report.PhaseOne = P1;
    for (const AbstractCycle &Cycle : P1.Cycles)
      Report.PerCycle.push_back(Tester.fuzzCycle(Cycle));
    std::vector<CycleSpec> Immunity = ActiveTester::buildImmunity(Report);
    unsigned Completed = 0;
    for (int I = 0; I != HealRuns; ++I)
      if (Tester.runWithImmunity(Immunity, 7000 + static_cast<uint64_t>(I))
              .Completed)
        ++Completed;
    std::cout << "\nhealing: immunity against " << Immunity.size()
              << " confirmed cycle(s); " << Completed << "/" << HealRuns
              << " random executions completed\n";
  }
  return exportLocalTelemetry(Telemetry) ? 0 : 1;
}
