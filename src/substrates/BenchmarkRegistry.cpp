//===- substrates/BenchmarkRegistry.cpp - Benchmark catalogue ---------------===//

#include "substrates/BenchmarkRegistry.h"

#include "substrates/collections/Harness.h"
#include "substrates/dbcp/Dbcp.h"
#include "substrates/jigsaw/Jigsaw.h"
#include "substrates/logging/Logging.h"
#include "substrates/swing/Swing.h"
#include "substrates/workloads/Workloads.h"

using namespace dlf;

const std::vector<BenchmarkInfo> &dlf::allBenchmarks() {
  static const std::vector<BenchmarkInfo> Registry = [] {
    std::vector<BenchmarkInfo> List;
    List.push_back({"cache4j", "thread-safe object cache (deadlock-free)",
                    workloads::runCache4j, 0, true, 0});
    List.push_back({"sor", "successive over-relaxation (deadlock-free)",
                    workloads::runSor, 0, true, 0});
    List.push_back({"hedc", "meta-crawler (deadlock-free)",
                    workloads::runHedc, 0, true, 0});
    List.push_back({"jspider", "web spider (deadlock-free)",
                    workloads::runJSpider, 0, true, 0});
    List.push_back({"guarded",
                    "gate-protected ABBA (guarded cycle, deadlock-free)",
                    workloads::runGuarded, 0, true, 0});
    List.push_back({"rwlock-abba",
                    "reader-held ABBA via rwlock write sides (1 cycle)",
                    workloads::runRwlockAbba, 1, false, 1});
    List.push_back({"condvar-hybrid",
                    "lost-wakeup + lock-order hybrid via cond-wait "
                    "reacquire (1 cycle)",
                    workloads::runCondvarHybrid, 1, false, 1});
    List.push_back({"jigsaw", "mini web server (many cycles, some false)",
                    jigsaw::runJigsawHarness, -1, false, -1});
    List.push_back({"logging", "java.util.logging analogue (3 cycles)",
                    logging::runLoggingHarness, 3, false, 3});
    List.push_back({"swing", "javax.swing analogue (1 cycle)",
                    swing::runSwingHarness, 1, false, 1});
    List.push_back({"dbcp", "connection pool analogue (2 cycles)",
                    dbcp::runDbcpHarness, 2, false, 2});
    List.push_back({"collections-lists",
                    "synchronized lists (9+9+9 cycles)",
                    collections::runListsHarness, 27, false, 27});
    List.push_back({"collections-maps",
                    "synchronized maps (4 cycles x 5 classes)",
                    collections::runMapsHarness, 20, false, 20});
    List.push_back({"collections", "lists + maps bundle (Figure 2)",
                    collections::runCollectionsHarness, 47, false, 47});
    return List;
  }();
  return Registry;
}

const BenchmarkInfo *dlf::findBenchmark(const std::string &Name) {
  for (const BenchmarkInfo &Info : allBenchmarks())
    if (Info.Name == Name)
      return &Info;
  return nullptr;
}
