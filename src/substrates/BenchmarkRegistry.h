//===- substrates/BenchmarkRegistry.h - Benchmark catalogue -----*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The catalogue of benchmark workloads, mirroring the paper's Table 1
/// rows. Each entry carries the expected iGoodlock outcome so the
/// integration tests and the Table 1 harness can check/annotate results.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUBSTRATES_BENCHMARKREGISTRY_H
#define DLF_SUBSTRATES_BENCHMARKREGISTRY_H

#include "fuzzer/ActiveTester.h"

#include <string>
#include <vector>

namespace dlf {

/// One benchmark workload and its expectations.
struct BenchmarkInfo {
  std::string Name;
  std::string Description;
  Program Entry;

  /// Expected number of potential cycles from a complete Phase I
  /// observation; -1 when the count is schedule-dependent (jigsaw).
  int ExpectedCycles = -1;

  /// True for workloads whose lock discipline is clean (Table 1's
  /// cache4j / sor / hedc / jspider rows).
  bool DeadlockFree = false;

  /// Expected number of cycles Phase II can actually confirm; -1 when
  /// schedule-dependent. (ExpectedCycles - ExpectedReal > 0 demonstrates
  /// iGoodlock false positives, the paper's §5.4.)
  int ExpectedConfirmable = -1;
};

/// All registered benchmarks, in Table 1 order.
const std::vector<BenchmarkInfo> &allBenchmarks();

/// Finds a benchmark by name; null when unknown.
const BenchmarkInfo *findBenchmark(const std::string &Name);

} // namespace dlf

#endif // DLF_SUBSTRATES_BENCHMARKREGISTRY_H
