//===- substrates/logging/Logging.cpp - java.util.logging analogue ---------===//

#include "substrates/logging/Logging.h"

#include "runtime/Thread.h"
#include "substrates/Stagger.h"

using namespace dlf;
using namespace dlf::logging;

// -- Logger -------------------------------------------------------------------

Logger::Logger(const std::string &Name, Label Site, LogManager &Manager)
    : Monitor("logger:" + Name, Site, &Manager), Manager(Manager),
      TheName(Name) {
  DLF_NEW_OBJECT(this, &Manager);
}

void Logger::log(Handler &Sink, const std::string &Message) {
  DLF_SCOPE("Logger::log");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("Logger::log/logger"));
  Buffer.push_back(Message);
  Sink.publish(TheName + ": " + Message); // locks the handler (inner)
}

void Logger::setLevel(int NewLevel) {
  DLF_SCOPE("Logger::setLevel");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("Logger::setLevel/logger"));
  MutexGuard Config(Manager.Monitor, DLF_NAMED_SITE("Logger::setLevel/manager"));
  Level = NewLevel + Manager.Property;
}

bool Logger::isEnabled() const {
  DLF_SCOPE("Logger::isEnabled");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("Logger::isEnabled/logger"));
  return Level >= 0;
}

std::string Logger::name() const {
  DLF_SCOPE("Logger::name");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("Logger::name/logger"));
  return TheName;
}

// -- Handler ------------------------------------------------------------------

Handler::Handler(const std::string &Name, Label Site, LogManager &Manager)
    : Monitor("handler:" + Name, Site, &Manager), Manager(Manager),
      TheName(Name) {
  DLF_NEW_OBJECT(this, &Manager);
}

void Handler::publish(const std::string &Record) {
  DLF_SCOPE("Handler::publish");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("Handler::publish/handler"));
  Records.push_back(Record);
}

void Handler::setFormatterFor(Logger &Target, const std::string &Format) {
  DLF_SCOPE("Handler::setFormatterFor");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("Handler::setFormatterFor/handler"));
  MutexGuard Inner(Target.Monitor,
                   DLF_NAMED_SITE("Handler::setFormatterFor/logger"));
  Records.push_back("formatter(" + Target.TheName + ")=" + Format);
}

void Handler::flush() {
  DLF_SCOPE("Handler::flush");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("Handler::flush/handler"));
  size_t Count = Records.size();
  Records.clear();
  Manager.noteFlush(Count); // locks the manager (inner)
}

size_t Handler::recordCount() const {
  DLF_SCOPE("Handler::recordCount");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("Handler::recordCount/handler"));
  return Records.size();
}

// -- LogManager ---------------------------------------------------------------

LogManager::LogManager(Label Site) : Monitor("logManager", Site, nullptr) {
  DLF_NEW_OBJECT(this, nullptr);
}

Logger &LogManager::getLogger(const std::string &Name) {
  DLF_SCOPE("LogManager::getLogger");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("LogManager::getLogger/manager"));
  // Factory pattern: every logger allocates at this one site, which is what
  // defeats purely allocation-site-based abstractions (§2.4).
  Loggers.push_back(
      std::make_unique<Logger>(Name, DLF_NAMED_SITE("LogManager::newLogger"),
                               *this));
  return *Loggers.back();
}

Handler &LogManager::getHandler(const std::string &Name) {
  DLF_SCOPE("LogManager::getHandler");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("LogManager::getHandler/manager"));
  Handlers.push_back(
      std::make_unique<Handler>(Name, DLF_NAMED_SITE("LogManager::newHandler"),
                                *this));
  return *Handlers.back();
}

void LogManager::reset(Logger &Target) {
  DLF_SCOPE("LogManager::reset");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("LogManager::reset/manager"));
  MutexGuard Inner(Target.Monitor, DLF_NAMED_SITE("LogManager::reset/logger"));
  Target.Level = 0;
  Target.Buffer.clear();
}

void LogManager::readConfiguration(Handler &Sink) {
  DLF_SCOPE("LogManager::readConfiguration");
  MutexGuard Guard(Monitor,
                   DLF_NAMED_SITE("LogManager::readConfiguration/manager"));
  MutexGuard Inner(Sink.Monitor,
                   DLF_NAMED_SITE("LogManager::readConfiguration/handler"));
  Sink.Records.push_back("configured");
}

int LogManager::getProperty() const {
  DLF_SCOPE("LogManager::getProperty");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("LogManager::getProperty/manager"));
  return Property;
}

void LogManager::noteFlush(size_t Count) {
  DLF_SCOPE("LogManager::noteFlush");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("LogManager::noteFlush/manager"));
  FlushedRecords += Count;
}

// -- Harness ------------------------------------------------------------------

namespace {

/// Spawns every logging worker through one call site, so all worker thread
/// objects share a k-object abstraction (like threads minted by a thread
/// pool) while execution indexing still tells them apart — the mechanism
/// behind Figure 2's variant-1 vs variant-2 gap on this benchmark.
Thread spawnLoggingWorker(LogManager &Manager, std::function<void()> Body,
                          const std::string &Name) {
  DLF_SCOPE("logging::spawnWorker");
  return Thread(std::move(Body), Name,
                DLF_NAMED_SITE("logging::spawnWorker/thread"), &Manager);
}

} // namespace

void logging::runLoggingHarness() {
  DLF_SCOPE("logging::runLoggingHarness");
  LogManager Manager(DLF_SITE());
  Logger &L1 = Manager.getLogger("app");
  Logger &L2 = Manager.getLogger("net");
  Handler &H1 = Manager.getHandler("console");
  Handler &H2 = Manager.getHandler("file");
  // Decoy objects: same factory sites as the cycle participants, no
  // deadlocking partners of their own. Under the k-object abstraction they
  // are indistinguishable from L1/H2, so variant 1 pauses their threads by
  // mistake.
  Logger &L3 = Manager.getLogger("decoy");
  Logger &L4 = Manager.getLogger("decoy2"); // separate target for the decoy
                                            // reset, so the two decoys do
                                            // not form a real cycle of
                                            // their own
  Handler &H3 = Manager.getHandler("decoy");

  // Cycle A: setLevel (logger->manager) vs reset (manager->logger), with the
  // §4 gate: the reset thread first touches the logger monitor alone, so a
  // fuzzer that pauses the setLevel thread too early wedges the gate.
  Thread SetLevel = spawnLoggingWorker(
      Manager,
      [&] {
        DLF_SCOPE("logging::setLevelWorker");
        L1.setLevel(3);
      },
      "log.setLevel");
  Thread Reset = spawnLoggingWorker(
      Manager,
      [&] {
        DLF_SCOPE("logging::resetWorker");
        stagger(2);
        (void)L1.isEnabled(); // gate: logger monitor, alone
        Manager.reset(L1);
      },
      "log.reset");

  // Cycle B: log (logger->handler) vs setFormatterFor (handler->logger),
  // same gate structure on the logger monitor.
  Thread Log = spawnLoggingWorker(
      Manager,
      [&] {
        DLF_SCOPE("logging::logWorker");
        L2.log(H1, "payload");
      },
      "log.log");
  Thread Formatter = spawnLoggingWorker(
      Manager,
      [&] {
        DLF_SCOPE("logging::formatterWorker");
        stagger(2);
        (void)L2.name(); // gate: logger monitor, alone
        H1.setFormatterFor(L2, "%m");
      },
      "log.formatter");

  // Cycle C: readConfiguration (manager->handler) vs flush
  // (handler->manager), gate on the manager monitor.
  Thread ReadConfig = spawnLoggingWorker(
      Manager,
      [&] {
        DLF_SCOPE("logging::readConfigWorker");
        Manager.readConfiguration(H2);
      },
      "log.readConfig");
  Thread Flush = spawnLoggingWorker(
      Manager,
      [&] {
        DLF_SCOPE("logging::flushWorker");
        stagger(2);
        (void)Manager.getProperty(); // gate: manager monitor, alone
        H2.flush();
      },
      "log.flush");

  // Decoy workers: run the *same code paths* on the decoy objects. They
  // contribute no cycles (no inverted partner touches L3/H3), but under
  // coarse abstractions they pause exactly like the real participants —
  // while holding the shared manager/logger monitors — so variant 1
  // thrashes and sometimes ejects a real participant.
  Thread DecoySetLevel = spawnLoggingWorker(
      Manager,
      [&] {
        DLF_SCOPE("logging::setLevelWorker");
        stagger(1);
        L3.setLevel(5);
      },
      "log.decoySetLevel");
  Thread DecoyReset = spawnLoggingWorker(
      Manager,
      [&] {
        DLF_SCOPE("logging::resetWorker");
        stagger(3);
        Manager.reset(L4);
      },
      "log.decoyReset");
  Thread DecoyFlush = spawnLoggingWorker(
      Manager,
      [&] {
        DLF_SCOPE("logging::flushWorker");
        stagger(4);
        H3.flush();
      },
      "log.decoyFlush");

  // Benign single-lock traffic (runtime filler; produces no cycles).
  Thread Chatter = spawnLoggingWorker(
      Manager,
      [&] {
        DLF_SCOPE("logging::chatterWorker");
        for (int I = 0; I != 6; ++I) {
          (void)H3.recordCount();
          stagger(2);
        }
      },
      "log.chatter");

  SetLevel.join();
  Reset.join();
  Log.join();
  Formatter.join();
  ReadConfig.join();
  Flush.join();
  DecoySetLevel.join();
  DecoyReset.join();
  DecoyFlush.join();
  Chatter.join();
}
