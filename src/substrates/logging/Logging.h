//===- substrates/logging/Logging.h - java.util.logging analogue -*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature logging framework with the lock structure of
/// java.util.logging, where the paper found 3 real deadlock cycles. Three
/// monitors interact: the global LogManager, per-Logger monitors, and
/// per-Handler monitors. Lock-order inversions:
///
///   cycle A: Logger::setLevel        [logger -> manager]
///         vs LogManager::reset       [manager -> logger]
///   cycle B: Logger::log             [logger -> handler]
///         vs Handler::setFormatterFor[handler -> logger]
///   cycle C: LogManager::readConfiguration [manager -> handler]
///         vs Handler::flush          [handler -> manager]
///
/// Loggers and handlers are created through LogManager factory methods —
/// one allocation site each — so the k-object-sensitive abstraction cannot
/// tell two loggers (or two handlers) apart while execution indexing can:
/// this benchmark drives the variant-1 vs variant-2 gap of Figure 2, and
/// its harness uses the §4 gate-lock pattern, driving the no-yields
/// (variant 5) gap.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUBSTRATES_LOGGING_LOGGING_H
#define DLF_SUBSTRATES_LOGGING_LOGGING_H

#include "runtime/Mutex.h"
#include "runtime/Runtime.h"

#include <memory>
#include <string>
#include <vector>

namespace dlf {
namespace logging {

class LogManager;
class Handler;

/// A named logger with its own monitor.
class Logger {
public:
  Logger(const std::string &Name, Label Site, LogManager &Manager);

  /// Logs through \p Sink: locks logger, then handler.
  void log(Handler &Sink, const std::string &Message);

  /// Changes the level, consulting global configuration: locks logger,
  /// then manager.
  void setLevel(int Level);

  /// Single-lock query (benign traffic).
  bool isEnabled() const;

  /// Single-lock query (benign traffic).
  std::string name() const;

  Mutex &monitor() { return Monitor; }

private:
  friend class LogManager;
  friend class Handler;
  mutable Mutex Monitor;
  LogManager &Manager;
  std::string TheName;
  int Level = 0;
  std::vector<std::string> Buffer;
};

/// An output handler with its own monitor.
class Handler {
public:
  Handler(const std::string &Name, Label Site, LogManager &Manager);

  /// Appends a record; called with the logger's monitor held (by
  /// Logger::log) and locks the handler.
  void publish(const std::string &Record);

  /// Installs per-logger formatting: locks handler, then logger.
  void setFormatterFor(Logger &Target, const std::string &Format);

  /// Flushes buffered records and updates global stats: locks handler,
  /// then manager.
  void flush();

  /// Single-lock query (benign traffic).
  size_t recordCount() const;

private:
  friend class LogManager;
  mutable Mutex Monitor;
  LogManager &Manager;
  std::string TheName;
  std::vector<std::string> Records;
};

/// The global manager; owns all loggers and handlers.
class LogManager {
public:
  explicit LogManager(Label Site);

  /// Factory: allocates a logger at a single site (k-object collapsing).
  Logger &getLogger(const std::string &Name);

  /// Factory: allocates a handler at a single site.
  Handler &getHandler(const std::string &Name);

  /// Resets \p Target's state: locks manager, then the logger.
  void reset(Logger &Target);

  /// Re-reads configuration into \p Sink: locks manager, then the handler.
  void readConfiguration(Handler &Sink);

  /// Single-lock config read (the §4 gate when called on the manager).
  int getProperty() const;

  /// Called by Handler::flush with the handler monitor held.
  void noteFlush(size_t Count);

private:
  friend class Logger;
  friend class Handler;
  mutable Mutex Monitor;
  std::vector<std::unique_ptr<Logger>> Loggers;
  std::vector<std::unique_ptr<Handler>> Handlers;
  int Property = 7;
  size_t FlushedRecords = 0;
};

/// The logging benchmark workload: three deadlock cycles with gate locks,
/// plus benign single-lock traffic.
void runLoggingHarness();

} // namespace logging
} // namespace dlf

#endif // DLF_SUBSTRATES_LOGGING_LOGGING_H
