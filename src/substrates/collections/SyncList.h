//===- substrates/collections/SyncList.h - synchronizedList analogue ------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ analogue of java.util.Collections.synchronizedList: a list whose
/// every operation locks the list monitor, and whose bulk operations
/// (addAll / removeAll / retainAll) lock *both* monitors — this-first,
/// argument-second. Running l1.addAll(l2) concurrently with
/// l2.retainAll(l1) therefore deadlocks, exactly the benchmark the paper
/// uses (§5.3: "three methods ... for a total of 9 combinations of deadlock
/// cycles").
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUBSTRATES_COLLECTIONS_SYNCLIST_H
#define DLF_SUBSTRATES_COLLECTIONS_SYNCLIST_H

#include "runtime/Mutex.h"
#include "runtime/Runtime.h"

#include <string>
#include <vector>

namespace dlf {
namespace collections {

/// Synchronized list of ints (payload type is irrelevant to the locking
/// discipline under study).
class SyncList {
public:
  /// \p Name for reports; \p Site the creation site; \p Parent the owning
  /// harness object (drives the k-object abstraction).
  SyncList(const std::string &Name, Label Site, const void *Parent);

  /// Appends one element (locks this).
  void add(int Value);

  /// Returns the element count (locks this).
  size_t size() const;

  /// Returns true if \p Value is present (locks this).
  bool contains(int Value) const;

  /// Appends every element of \p Other: locks this, then Other.
  void addAll(const SyncList &Other);

  /// Removes every element present in \p Other: locks this, then Other.
  void removeAll(const SyncList &Other);

  /// Keeps only elements present in \p Other: locks this, then Other.
  void retainAll(const SyncList &Other);

private:
  mutable Mutex Monitor;
  std::vector<int> Data;
};

} // namespace collections
} // namespace dlf

#endif // DLF_SUBSTRATES_COLLECTIONS_SYNCLIST_H
