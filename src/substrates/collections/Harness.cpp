//===- substrates/collections/Harness.cpp - Collections workloads ----------===//

#include "substrates/collections/Harness.h"

#include "runtime/Thread.h"
#include "substrates/Stagger.h"
#include "substrates/collections/SyncList.h"
#include "substrates/collections/SyncMap.h"

#include <array>
#include <string>

using namespace dlf;
using namespace dlf::collections;

namespace {

using ListBulkMethod = void (SyncList::*)(const SyncList &);

struct NamedListMethod {
  const char *Name;
  ListBulkMethod Method;
};

constexpr std::array<NamedListMethod, 3> ListMethods = {{
    {"addAll", &SyncList::addAll},
    {"removeAll", &SyncList::removeAll},
    {"retainAll", &SyncList::retainAll},
}};

/// Anchor object representing one collection "class" instance; registered
/// with the abstraction engine so locks created inside it get a k-object
/// parent. All classes share the anchor's creation site, which is exactly
/// why the k-object abstraction collapses them while execution indexing
/// (loop counts) does not — the Figure 2 variant-1 vs variant-2 gap.
struct ClassAnchor {
  explicit ClassAnchor(const char *ClassName) {
    DLF_NEW_OBJECT(this, nullptr);
    (void)ClassName;
  }
};

} // namespace

void collections::runListsHarness() {
  DLF_SCOPE("collections::runListsHarness");
  static constexpr std::array<const char *, 3> Classes = {
      "ArrayList", "Stack", "LinkedList"};

  for (const char *ClassName : Classes) {
    ClassAnchor Anchor(ClassName);

    // The 9 ordered method combinations, each as an isolated thread pair
    // over its own pair of lists (fresh lists per combination keep the
    // combinations independent; iGoodlock has no happens-before relation,
    // so shared lists would pair threads of *different*, join-separated
    // combinations into infeasible extra cycles). The "fast" worker
    // immediately runs l1.m(l2); the "slow" worker staggers first, so
    // unbiased schedules almost never overlap the windows (Figure 1's
    // long-running-methods pattern).
    for (const NamedListMethod &MethodA : ListMethods) {
      for (const NamedListMethod &MethodB : ListMethods) {
        SyncList L1(std::string(ClassName) + ".l1", DLF_SITE(), &Anchor);
        SyncList L2(std::string(ClassName) + ".l2", DLF_SITE(), &Anchor);
        for (int I = 0; I != 4; ++I) {
          L1.add(I);
          L2.add(I + 2);
        }
        Thread Fast(
            [&] {
              DLF_SCOPE("lists::fastWorker");
              (L1.*MethodA.Method)(L2);
            },
            std::string(ClassName) + ".fast." + MethodA.Name, DLF_SITE(),
            &Anchor);
        Thread Slow(
            [&] {
              DLF_SCOPE("lists::slowWorker");
              stagger(12);
              (L2.*MethodB.Method)(L1);
            },
            std::string(ClassName) + ".slow." + MethodB.Name, DLF_SITE(),
            &Anchor);
        Fast.join();
        Slow.join();
      }
    }
  }
}

void collections::runMapsHarness() {
  DLF_SCOPE("collections::runMapsHarness");
  static constexpr std::array<const char *, 5> Classes = {
      "HashMap", "TreeMap", "WeakHashMap", "LinkedHashMap", "IdentityHashMap"};

  for (const char *ClassName : Classes) {
    ClassAnchor Anchor(ClassName);
    SyncMap M1(std::string(ClassName) + ".m1", DLF_SITE(), &Anchor);
    SyncMap M2(std::string(ClassName) + ".m2", DLF_SITE(), &Anchor);
    for (int I = 0; I != 4; ++I) {
      M1.put(I, I * 10);
      M2.put(I, I * 20);
    }

    // Four concurrent workers sharing the two monitors: m1-first and
    // m2-first directions for each of equals/getAll. Any (m1-first,
    // m2-first) pair can close a cycle, so four abstract cycles exist per
    // class and Phase II often creates a non-target one first.
    Thread EqualsForward(
        [&] {
          DLF_SCOPE("maps::equalsForward");
          M1.equals(M2);
        },
        std::string(ClassName) + ".eqFwd", DLF_SITE(), &Anchor);
    Thread EqualsBackward(
        [&] {
          DLF_SCOPE("maps::equalsBackward");
          stagger(6);
          M2.equals(M1);
        },
        std::string(ClassName) + ".eqBwd", DLF_SITE(), &Anchor);
    Thread GetForward(
        [&] {
          DLF_SCOPE("maps::getForward");
          stagger(12);
          M1.getAll(M2);
        },
        std::string(ClassName) + ".getFwd", DLF_SITE(), &Anchor);
    Thread GetBackward(
        [&] {
          DLF_SCOPE("maps::getBackward");
          stagger(18);
          M2.getAll(M1);
        },
        std::string(ClassName) + ".getBwd", DLF_SITE(), &Anchor);

    EqualsForward.join();
    EqualsBackward.join();
    GetForward.join();
    GetBackward.join();
  }
}

void collections::runCollectionsHarness() {
  runListsHarness();
  runMapsHarness();
}
