//===- substrates/collections/SyncList.cpp - synchronizedList analogue -----===//

#include "substrates/collections/SyncList.h"

#include <algorithm>

using namespace dlf;
using namespace dlf::collections;

SyncList::SyncList(const std::string &Name, Label Site, const void *Parent)
    : Monitor(Name, Site, Parent) {}

void SyncList::add(int Value) {
  DLF_SCOPE("SyncList::add");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("SyncList::add/this"));
  Data.push_back(Value);
}

size_t SyncList::size() const {
  DLF_SCOPE("SyncList::size");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("SyncList::size/this"));
  return Data.size();
}

bool SyncList::contains(int Value) const {
  DLF_SCOPE("SyncList::contains");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("SyncList::contains/this"));
  return std::find(Data.begin(), Data.end(), Value) != Data.end();
}

void SyncList::addAll(const SyncList &Other) {
  DLF_SCOPE("SyncList::addAll");
  MutexGuard This(Monitor, DLF_NAMED_SITE("SyncList::addAll/this"));
  MutexGuard Arg(Other.Monitor, DLF_NAMED_SITE("SyncList::addAll/arg"));
  Data.insert(Data.end(), Other.Data.begin(), Other.Data.end());
}

void SyncList::removeAll(const SyncList &Other) {
  DLF_SCOPE("SyncList::removeAll");
  MutexGuard This(Monitor, DLF_NAMED_SITE("SyncList::removeAll/this"));
  MutexGuard Arg(Other.Monitor, DLF_NAMED_SITE("SyncList::removeAll/arg"));
  auto IsInOther = [&](int V) {
    return std::find(Other.Data.begin(), Other.Data.end(), V) !=
           Other.Data.end();
  };
  Data.erase(std::remove_if(Data.begin(), Data.end(), IsInOther), Data.end());
}

void SyncList::retainAll(const SyncList &Other) {
  DLF_SCOPE("SyncList::retainAll");
  MutexGuard This(Monitor, DLF_NAMED_SITE("SyncList::retainAll/this"));
  MutexGuard Arg(Other.Monitor, DLF_NAMED_SITE("SyncList::retainAll/arg"));
  auto NotInOther = [&](int V) {
    return std::find(Other.Data.begin(), Other.Data.end(), V) ==
           Other.Data.end();
  };
  Data.erase(std::remove_if(Data.begin(), Data.end(), NotInOther), Data.end());
}
