//===- substrates/collections/SyncMap.h - synchronizedMap analogue --------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ analogue of java.util.Collections.synchronizedMap. The deadlock-
/// prone operations mirror the paper's §5.3 description ("the
/// synchronizedMap classes have 4 combinations with the methods equals()
/// and get()"): equals(other) locks this and then, while iterating, calls
/// other.get() which locks other; getAll(other) bulk-reads other's keys
/// with the same this-then-other order.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUBSTRATES_COLLECTIONS_SYNCMAP_H
#define DLF_SUBSTRATES_COLLECTIONS_SYNCMAP_H

#include "runtime/Mutex.h"
#include "runtime/Runtime.h"

#include <map>
#include <string>

namespace dlf {
namespace collections {

/// Synchronized int->int map.
class SyncMap {
public:
  SyncMap(const std::string &Name, Label Site, const void *Parent);

  /// Inserts or overwrites (locks this).
  void put(int Key, int Value);

  /// Point lookup; returns 0 when absent (locks this).
  int get(int Key) const;

  size_t size() const;

  /// Structural equality: locks this, then Other (via get() on Other while
  /// iterating this — the JDK deadlock pattern).
  bool equals(const SyncMap &Other) const;

  /// Copies every entry of Other whose key exists in this: locks this, then
  /// Other.
  void getAll(const SyncMap &Other);

private:
  mutable Mutex Monitor;
  std::map<int, int> Data;
};

} // namespace collections
} // namespace dlf

#endif // DLF_SUBSTRATES_COLLECTIONS_SYNCMAP_H
