//===- substrates/collections/Harness.h - Collections workloads -*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-threaded harnesses for the synchronized-collections benchmarks,
/// mirroring the paper's §5.1 ("to test the Java Collections in a
/// concurrent setting, we used the synchronized wrappers in
/// java.util.Collections"):
///
///  * runListsHarness — three "classes" (ArrayList, Stack, LinkedList),
///    each exercising the 9 ordered combinations of
///    {addAll, removeAll, retainAll} × {addAll, removeAll, retainAll} on
///    two shared lists from isolated thread pairs: 9+9+9 potential cycles
///    (paper Table 1), each reproducible with probability ≈ 1.
///  * runMapsHarness — five "classes" (HashMap, TreeMap, WeakHashMap,
///    LinkedHashMap, IdentityHashMap), each running four *concurrent*
///    threads over two shared maps: 4 cycles per class. Because all four
///    threads contend on the same two monitors, Phase II frequently creates
///    a deadlock *other than* the target cycle — the effect behind the
///    paper's 0.52 probability for the maps row.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUBSTRATES_COLLECTIONS_HARNESS_H
#define DLF_SUBSTRATES_COLLECTIONS_HARNESS_H

namespace dlf {
namespace collections {

/// The synchronized-lists workload (27 potential cycles).
void runListsHarness();

/// The synchronized-maps workload (20 potential cycles).
void runMapsHarness();

/// Both, as one program (the paper's Figure 2 "Collections" bundle).
void runCollectionsHarness();

} // namespace collections
} // namespace dlf

#endif // DLF_SUBSTRATES_COLLECTIONS_HARNESS_H
