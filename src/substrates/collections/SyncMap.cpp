//===- substrates/collections/SyncMap.cpp - synchronizedMap analogue -------===//

#include "substrates/collections/SyncMap.h"

using namespace dlf;
using namespace dlf::collections;

SyncMap::SyncMap(const std::string &Name, Label Site, const void *Parent)
    : Monitor(Name, Site, Parent) {}

void SyncMap::put(int Key, int Value) {
  DLF_SCOPE("SyncMap::put");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("SyncMap::put/this"));
  Data[Key] = Value;
}

int SyncMap::get(int Key) const {
  DLF_SCOPE("SyncMap::get");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("SyncMap::get/this"));
  auto It = Data.find(Key);
  return It == Data.end() ? 0 : It->second;
}

size_t SyncMap::size() const {
  DLF_SCOPE("SyncMap::size");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("SyncMap::size/this"));
  return Data.size();
}

bool SyncMap::equals(const SyncMap &Other) const {
  DLF_SCOPE("SyncMap::equals");
  MutexGuard This(Monitor, DLF_NAMED_SITE("SyncMap::equals/this"));
  // Iterate this while point-querying Other: the inner acquire of Other's
  // monitor is the JDK's synchronizedMap equals() pattern.
  MutexGuard Arg(Other.Monitor, DLF_NAMED_SITE("SyncMap::equals/arg"));
  if (Data.size() != Other.Data.size())
    return false;
  for (const auto &[Key, Value] : Data)
    if (Other.Data.count(Key) == 0 || Other.Data.at(Key) != Value)
      return false;
  return true;
}

void SyncMap::getAll(const SyncMap &Other) {
  DLF_SCOPE("SyncMap::getAll");
  MutexGuard This(Monitor, DLF_NAMED_SITE("SyncMap::getAll/this"));
  MutexGuard Arg(Other.Monitor, DLF_NAMED_SITE("SyncMap::getAll/arg"));
  for (auto &[Key, Value] : Data) {
    auto It = Other.Data.find(Key);
    if (It != Other.Data.end())
      Value = It->second;
  }
}
