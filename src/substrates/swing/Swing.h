//===- substrates/swing/Swing.h - javax.swing analogue -----------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature GUI toolkit reproducing the Swing deadlock of Sun bug
/// 4839713 (paper §5.3): the main thread synchronizes on a JFrame and calls
/// setCaretPosition() on a text area, taking [frame -> caret]; the event
/// dispatch thread processes a caret repaint, taking [caret -> frame] via
/// the RepaintManager.
///
/// The benchmark's signature property (paper §5.2): "the same locks are
/// acquired and released many times at many different program locations" —
/// both the caret and the frame monitors see heavy benign traffic from the
/// event thread, so the no-context variant (Figure 2 variant 4) pauses
/// threads at many wrong occurrences and thrashes heavily.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUBSTRATES_SWING_SWING_H
#define DLF_SUBSTRATES_SWING_SWING_H

#include "runtime/Mutex.h"
#include "runtime/Runtime.h"

#include <string>
#include <vector>

namespace dlf {
namespace swing {

class Frame;

/// The text caret (BasicTextUI$BasicCaret), created by its text area.
class Caret {
public:
  Caret(Label Site, const void *Owner);

  /// setDot: locks the caret (DefaultCaret.java:1244 in the paper's trace).
  void setDot(int Position);

  /// Benign caret queries at distinct sites (heavy traffic).
  int dot() const;
  void moveDot(int Delta);

  Mutex &monitor() { return Monitor; }

private:
  mutable Mutex Monitor;
  int Position = 0;
};

/// A text area owning a caret.
class TextArea {
public:
  TextArea(Label Site, Frame &Owner);

  /// The paper's deadlocking call: caller holds the frame monitor; this
  /// locks the caret.
  void setCaretPosition(int Position);

  Caret &caret() { return TheCaret; }

private:
  Caret TheCaret;
};

/// The top-level frame with its monitor.
class Frame {
public:
  explicit Frame(Label Site);

  Mutex &monitor() { return Monitor; }

  /// Benign frame queries at distinct sites.
  int width() const;
  void setTitleLength(int Length);

private:
  mutable Mutex Monitor;
  int Width = 640;
  int TitleLength = 0;
};

/// RepaintManager: paints a caret region, locking [caret -> frame]
/// (RepaintManager.java:407 in the paper's trace).
class RepaintManager {
public:
  void paintDirtyRegions(Caret &TheCaret, Frame &TheFrame);
};

/// The Swing benchmark workload: one deadlock cycle under heavy benign
/// multi-site lock traffic from the event dispatch thread.
void runSwingHarness();

} // namespace swing
} // namespace dlf

#endif // DLF_SUBSTRATES_SWING_SWING_H
