//===- substrates/swing/Swing.cpp - javax.swing analogue --------------------===//

#include "substrates/swing/Swing.h"

#include "runtime/Thread.h"
#include "substrates/Stagger.h"

#include <memory>

using namespace dlf;
using namespace dlf::swing;

// -- Caret --------------------------------------------------------------------

Caret::Caret(Label Site, const void *Owner) : Monitor("caret", Site, Owner) {
  DLF_NEW_OBJECT(this, Owner);
}

void Caret::setDot(int NewPosition) {
  DLF_SCOPE("Caret::setDot");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("DefaultCaret:1244/caret"));
  Position = NewPosition;
}

int Caret::dot() const {
  DLF_SCOPE("Caret::dot");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("DefaultCaret::getDot/caret"));
  return Position;
}

void Caret::moveDot(int Delta) {
  DLF_SCOPE("Caret::moveDot");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("DefaultCaret::moveDot/caret"));
  Position += Delta;
}

// -- TextArea -----------------------------------------------------------------

TextArea::TextArea(Label Site, Frame &Owner)
    : TheCaret(DLF_NAMED_SITE("JTextArea::createCaret"), this) {
  DLF_NEW_OBJECT(this, &Owner);
  (void)Site;
}

void TextArea::setCaretPosition(int Position) {
  DLF_SCOPE("TextArea::setCaretPosition");
  TheCaret.setDot(Position);
}

// -- Frame --------------------------------------------------------------------

Frame::Frame(Label Site) : Monitor("jframe", Site, nullptr) {
  DLF_NEW_OBJECT(this, nullptr);
}

int Frame::width() const {
  DLF_SCOPE("Frame::width");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("Frame::width/frame"));
  return Width;
}

void Frame::setTitleLength(int Length) {
  DLF_SCOPE("Frame::setTitleLength");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("Frame::setTitle/frame"));
  TitleLength = Length;
}

// -- RepaintManager -----------------------------------------------------------

void RepaintManager::paintDirtyRegions(Caret &TheCaret, Frame &TheFrame) {
  DLF_SCOPE("RepaintManager::paintDirtyRegions");
  MutexGuard CaretGuard(TheCaret.monitor(),
                        DLF_NAMED_SITE("DefaultCaret:1304/caret"));
  MutexGuard FrameGuard(TheFrame.monitor(),
                        DLF_NAMED_SITE("RepaintManager:407/frame"));
  // Paint: reads caret state into the frame's surface.
}

// -- Harness ------------------------------------------------------------------

namespace {

/// Event kinds the dispatch thread processes.
enum class EventKind { ReadCaret, MoveCaret, ReadFrame, Repaint, Quit };

/// A tiny event queue: single small lock, no nesting, so it contributes no
/// cycles of its own.
class EventQueue {
public:
  explicit EventQueue(Label Site) : Monitor("eventQueue", Site, nullptr) {}

  void post(EventKind Kind) {
    MutexGuard Guard(Monitor, DLF_NAMED_SITE("EventQueue::post/queue"));
    Events.push_back(Kind);
  }

  bool tryPop(EventKind &Out) {
    MutexGuard Guard(Monitor, DLF_NAMED_SITE("EventQueue::pop/queue"));
    if (Next >= Events.size())
      return false;
    Out = Events[Next++];
    return true;
  }

private:
  Mutex Monitor;
  std::vector<EventKind> Events;
  size_t Next = 0;
};

} // namespace

void swing::runSwingHarness() {
  DLF_SCOPE("swing::runSwingHarness");
  Frame TheFrame(DLF_SITE());
  TextArea Area(DLF_SITE(), TheFrame);
  RepaintManager Repainter;
  EventQueue Queue(DLF_SITE());

  // The event dispatch thread: processes events until Quit, touching the
  // caret and frame monitors at many distinct sites.
  Thread EventThread(
      [&] {
        DLF_SCOPE("swing::eventDispatchThread");
        for (;;) {
          EventKind Kind;
          if (!Queue.tryPop(Kind)) {
            yieldNow();
            continue;
          }
          switch (Kind) {
          case EventKind::ReadCaret:
            (void)Area.caret().dot();
            break;
          case EventKind::MoveCaret:
            Area.caret().moveDot(1);
            break;
          case EventKind::ReadFrame:
            (void)TheFrame.width();
            break;
          case EventKind::Repaint:
            Repainter.paintDirtyRegions(Area.caret(), TheFrame);
            break;
          case EventKind::Quit:
            return;
          }
        }
      },
      "swing.eventThread", DLF_SITE(), &TheFrame);

  // Benign traffic: many caret/frame touches at distinct sites, and several
  // un-nested setCaretPosition calls (the no-context variant pauses at each
  // of these, which is where Swing's thrashing explosion comes from).
  for (int I = 0; I != 4; ++I) {
    Queue.post(EventKind::ReadCaret);
    Queue.post(EventKind::MoveCaret);
    Queue.post(EventKind::ReadFrame);
    Area.setCaretPosition(I); // caret monitor, frame NOT held
    TheFrame.setTitleLength(I);
    stagger(1);
  }

  // The deadlocking interaction: a repaint event in flight while the main
  // thread holds the frame and calls into the caret.
  Queue.post(EventKind::Repaint);
  {
    DLF_SCOPE("swing::mainSyncBlock");
    MutexGuard FrameGuard(TheFrame.monitor(),
                          DLF_NAMED_SITE("app::syncFrame/frame"));
    Area.setCaretPosition(42);
  }

  for (int I = 0; I != 3; ++I) {
    Queue.post(EventKind::MoveCaret);
    Queue.post(EventKind::Repaint);
    stagger(1);
  }

  Queue.post(EventKind::Quit);
  EventThread.join();
}
