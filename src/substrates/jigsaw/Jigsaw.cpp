//===- substrates/jigsaw/Jigsaw.cpp - Jigsaw web server analogue ------------===//

#include "substrates/jigsaw/Jigsaw.h"

#include "substrates/jigsaw/Http.h"

#include "runtime/Thread.h"
#include "substrates/Stagger.h"

using namespace dlf;
using namespace dlf::jigsaw;

// -- SocketClient ---------------------------------------------------------------

SocketClient::SocketClient(unsigned Index, Label Site,
                           SocketClientFactory &Factory)
    : Monitor("socketClient#" + std::to_string(Index), Site, &Factory),
      Factory(Factory), Index(Index) {
  DLF_NEW_OBJECT(this, &Factory);
}

void SocketClient::serveRequest(unsigned RequestId) {
  DLF_SCOPE("SocketClient::serveRequest");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("SocketClient::serve/client"));
  Idle = false;
  ++Served;
  Factory.noteRequestServed(Index); // locks csList (inner)
  Idle = true;
  (void)RequestId;
}

void SocketClient::connectionFinished() {
  DLF_SCOPE("SocketClient::connectionFinished");
  Factory.clientConnectionFinished(*this);
}

bool SocketClient::isIdle() const {
  DLF_SCOPE("SocketClient::isIdle");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("SocketClient::isIdle/client"));
  return Idle;
}

// -- SocketClientFactory --------------------------------------------------------

SocketClientFactory::SocketClientFactory(Label Site)
    : FactoryLock("factory", Site, nullptr),
      CsListLock("csList", Site, nullptr) {
  DLF_NEW_OBJECT(this, nullptr);
}

SocketClient &SocketClientFactory::createClient() {
  DLF_SCOPE("SocketClientFactory::createClient");
  MutexGuard Guard(CsListLock, DLF_NAMED_SITE("Factory::create/csList"));
  unsigned Index = static_cast<unsigned>(Clients.size());
  Clients.push_back(std::make_unique<SocketClient>(
      Index, DLF_NAMED_SITE("Factory::newSocketClient"), *this));
  ++Idle;
  return *Clients.back();
}

void SocketClientFactory::decrIdleCount() {
  DLF_SCOPE("SocketClientFactory::decrIdleCount");
  // Figure 3, line 574: synchronized boolean decrIdleCount().
  MutexGuard Guard(FactoryLock, DLF_NAMED_SITE("Factory:574/factory"));
  --Idle;
}

void SocketClientFactory::updateIdleStats() {
  DLF_SCOPE("SocketClientFactory::updateIdleStats");
  MutexGuard Guard(FactoryLock, DLF_NAMED_SITE("Factory::idleStats/factory"));
  ++Requests;
}

void SocketClientFactory::clientConnectionFinished(SocketClient &Client) {
  DLF_SCOPE("SocketClientFactory::clientConnectionFinished");
  // Figure 3, lines 618-626: synchronized (csList) { decrIdleCount(); }.
  MutexGuard Guard(CsListLock, DLF_NAMED_SITE("Factory:623/csList"));
  decrIdleCount();
  (void)Client;
}

void SocketClientFactory::idleClientRemoved(SocketClient &Client) {
  DLF_SCOPE("SocketClientFactory::idleClientRemoved");
  // Same locks as clientConnectionFinished, different program locations
  // (the paper's "another similar deadlock").
  MutexGuard Guard(CsListLock, DLF_NAMED_SITE("Factory::idleRemove/csList"));
  updateIdleStats();
  (void)Client;
}

void SocketClientFactory::killClients() {
  DLF_SCOPE("SocketClientFactory::killClients");
  // Figure 3, lines 867-872: synchronized void killClients() {
  //   synchronized (csList) { ... } }.
  MutexGuard Factory(FactoryLock, DLF_NAMED_SITE("Factory:867/factory"));
  MutexGuard CsList(CsListLock, DLF_NAMED_SITE("Factory:872/csList"));
  for (auto &Client : Clients) {
    MutexGuard ClientGuard(Client->Monitor,
                           DLF_NAMED_SITE("Factory::kill/client"));
    Client->Idle = true;
  }
  Down = true;
}

void SocketClientFactory::killIdleClient(unsigned Index) {
  DLF_SCOPE("SocketClientFactory::killIdleClient");
  MutexGuard Factory(FactoryLock, DLF_NAMED_SITE("Factory::killIdle/factory"));
  MutexGuard CsList(CsListLock, DLF_NAMED_SITE("Factory::killIdle/csList"));
  if (Index < Clients.size()) {
    MutexGuard ClientGuard(Clients[Index]->Monitor,
                           DLF_NAMED_SITE("Factory::killIdle/client"));
    Clients[Index]->Idle = true;
  }
}

void SocketClientFactory::noteRequestServed(unsigned ClientIndex) {
  DLF_SCOPE("SocketClientFactory::noteRequestServed");
  MutexGuard Guard(CsListLock, DLF_NAMED_SITE("Factory::noteServed/csList"));
  ++Requests;
  (void)ClientIndex;
}

void SocketClientFactory::scanClients() {
  DLF_SCOPE("SocketClientFactory::scanClients");
  MutexGuard Guard(CsListLock, DLF_NAMED_SITE("Factory::scan/csList"));
  for (auto &Client : Clients) {
    MutexGuard ClientGuard(Client->Monitor,
                           DLF_NAMED_SITE("Factory::scan/client"));
    if (Client->Idle)
      ++Requests;
  }
}

int SocketClientFactory::idleCount() const {
  DLF_SCOPE("SocketClientFactory::idleCount");
  MutexGuard Guard(FactoryLock, DLF_NAMED_SITE("Factory::idleCount/factory"));
  return Idle;
}

size_t SocketClientFactory::clientCount() const {
  DLF_SCOPE("SocketClientFactory::clientCount");
  MutexGuard Guard(CsListLock, DLF_NAMED_SITE("Factory::count/csList"));
  return Clients.size();
}

void SocketClientFactory::shutdown() {
  DLF_SCOPE("SocketClientFactory::shutdown");
  // Figure 3, lines 902-904.
  killClients();
}

// -- ResourceStore ----------------------------------------------------------------

ResourceStore::ResourceStore(Label Site, unsigned ResourceCount)
    : StoreLock("resourceStore", Site, nullptr) {
  DLF_NEW_OBJECT(this, nullptr);
  for (unsigned I = 0; I != ResourceCount; ++I)
    Resources.push_back(std::make_unique<Resource>(
        DLF_NAMED_SITE("ResourceStore::newResource"), this));
}

void ResourceStore::loadResource(unsigned Index) {
  DLF_SCOPE("ResourceStore::loadResource");
  MutexGuard Store(StoreLock, DLF_NAMED_SITE("Store::load/store"));
  Resource &R = *Resources[Index % Resources.size()];
  MutexGuard Res(R.Monitor, DLF_NAMED_SITE("Store::load/resource"));
  ++R.Loads;
  ++Loaded;
}

void ResourceStore::saveResource(unsigned Index) {
  DLF_SCOPE("ResourceStore::saveResource");
  Resource &R = *Resources[Index % Resources.size()];
  MutexGuard Res(R.Monitor, DLF_NAMED_SITE("Store::save/resource"));
  MutexGuard Store(StoreLock, DLF_NAMED_SITE("Store::save/store"));
  ++R.Saves;
}

size_t ResourceStore::loadedCount() const {
  DLF_SCOPE("ResourceStore::loadedCount");
  MutexGuard Store(StoreLock, DLF_NAMED_SITE("Store::loadedCount/store"));
  return Loaded;
}

std::string ResourceStore::payloadFor(unsigned Index) const {
  DLF_SCOPE("ResourceStore::payloadFor");
  MutexGuard Store(StoreLock, DLF_NAMED_SITE("Store::payload/store"));
  const Resource &R = *Resources[Index % Resources.size()];
  return "resource#" + std::to_string(Index % Resources.size()) + ":" +
         std::to_string(R.Loads) + "," + std::to_string(R.Saves);
}

void ResourceStore::invalidate(ResourceCache &Cache) {
  DLF_SCOPE("ResourceStore::invalidate");
  MutexGuard Store(StoreLock, DLF_NAMED_SITE("Store::invalidate/store"));
  MutexGuard CacheGuard(Cache.CacheLock,
                        DLF_NAMED_SITE("Store::invalidate/cache"));
  Cache.Entries.clear();
}

// -- ResourceCache ----------------------------------------------------------------

ResourceCache::ResourceCache(Label Site, ResourceStore &Store)
    : CacheLock("responseCache", Site, &Store), Store(Store) {
  DLF_NEW_OBJECT(this, &Store);
}

std::string ResourceCache::lookup(unsigned Index) const {
  DLF_SCOPE("ResourceCache::lookup");
  MutexGuard Guard(CacheLock, DLF_NAMED_SITE("Cache::lookup/cache"));
  auto It = Entries.find(Index);
  return It == Entries.end() ? std::string() : It->second;
}

void ResourceCache::fill(unsigned Index) {
  DLF_SCOPE("ResourceCache::fill");
  MutexGuard Guard(CacheLock, DLF_NAMED_SITE("Cache::fill/cache"));
  Entries[Index] = Store.payloadFor(Index); // locks the store (inner)
}

size_t ResourceCache::size() const {
  DLF_SCOPE("ResourceCache::size");
  MutexGuard Guard(CacheLock, DLF_NAMED_SITE("Cache::size/cache"));
  return Entries.size();
}

// -- HTTP serving ------------------------------------------------------------------

std::string jigsaw::serveHttp(const std::string &Raw, ResourceStore &Store,
                              ResourceCache &Cache) {
  DLF_SCOPE("jigsaw::serveHttp");
  std::optional<HttpRequest> Request = parseRequest(Raw);
  if (!Request) {
    HttpResponse Bad;
    Bad.Status = 400;
    Bad.Reason = "Bad Request";
    return Bad.serialize();
  }
  unsigned Index = routeToResource(Request->Path, Store.resourceCount());
  std::string Payload = Cache.lookup(Index);
  if (Payload.empty()) {
    Store.loadResource(Index); // [store -> resource], the benign order
    Payload = Store.payloadFor(Index);
  }
  return makeResponse(*Request, Payload).serialize();
}

// -- Harness ----------------------------------------------------------------------

namespace {

/// The §5.4 false-positive pattern: the main thread performs
/// [threadLock -> poolLock] during setup, strictly before the worker that
/// performs [poolLock -> threadLock] is started. iGoodlock reports the
/// inversion; no schedule can create it.
class CachedThread {
public:
  CachedThread(unsigned Index, Mutex &PoolLock)
      : ThreadLock("cachedThread#" + std::to_string(Index), DLF_SITE(),
                   nullptr),
        PoolLock(PoolLock) {
    DLF_NEW_OBJECT(this, nullptr);
  }

  /// Called by main before start(): [threadLock -> poolLock].
  void setupRunner() {
    DLF_SCOPE("CachedThread::setupRunner");
    MutexGuard Self(ThreadLock, DLF_NAMED_SITE("CachedThread::setup/thread"));
    MutexGuard Pool(PoolLock, DLF_NAMED_SITE("CachedThread::setup/pool"));
    Configured = true;
  }

  /// The worker body, only ever run after setupRunner returned:
  /// [poolLock -> threadLock].
  void waitForRunner() {
    DLF_SCOPE("CachedThread::waitForRunner");
    MutexGuard Pool(PoolLock, DLF_NAMED_SITE("CachedThread::wait/pool"));
    MutexGuard Self(ThreadLock, DLF_NAMED_SITE("CachedThread::wait/thread"));
    Ready = Configured;
  }

private:
  Mutex ThreadLock;
  Mutex &PoolLock;
  bool Configured = false;
  bool Ready = false;
};

} // namespace

void jigsaw::runJigsawHarness() {
  DLF_SCOPE("jigsaw::runJigsawHarness");
  SocketClientFactory Factory(DLF_SITE());
  ResourceStore Store(DLF_SITE(), /*ResourceCount=*/2);
  ResourceCache Cache(DLF_SITE(), Store);
  Mutex Indexer("indexer", DLF_SITE(), nullptr);
  Mutex Logbook("logbook", DLF_SITE(), nullptr);
  Mutex Stats("stats", DLF_SITE(), nullptr);
  Mutex CachedPool("cachedThreadPool", DLF_SITE(), nullptr);

  constexpr unsigned ClientCount = 3;
  constexpr unsigned RequestsPerClient = 2;
  std::vector<SocketClient *> Clients;
  for (unsigned I = 0; I != ClientCount; ++I)
    Clients.push_back(&Factory.createClient());

  // §5.4 false positives: setup inversions happen strictly before the
  // cached workers start, so the cycles iGoodlock reports from them are
  // infeasible.
  CachedThread Cached0(0, CachedPool);
  CachedThread Cached1(1, CachedPool);
  Cached0.setupRunner();
  Cached1.setupRunner();

  std::vector<Thread> Workers;

  // Client worker threads: parse and serve real HTTP requests
  // ([cache], [store -> resource]), account them ([client -> csList]),
  // then finish the connection ([csList -> factory], Figure 3's
  // deadlocking path).
  for (unsigned I = 0; I != ClientCount; ++I) {
    SocketClient *Client = Clients[I];
    Workers.emplace_back(Thread(
        [&Store, &Cache, Client, I] {
          DLF_SCOPE("jigsaw::clientWorker");
          stagger(2 + 3 * I);
          for (unsigned R = 0; R != RequestsPerClient; ++R) {
            std::string Raw = "GET /res/" + std::to_string(I + R) +
                              " HTTP/1.0\r\nhost: jigsaw\r\n\r\n";
            std::string Response = serveHttp(Raw, Store, Cache);
            if (Response.find("200 OK") == std::string::npos)
              std::abort(); // the mini server must serve its own requests
            Client->serveRequest(R);
            stagger(3);
          }
          Client->connectionFinished();
        },
        "jigsaw.client" + std::to_string(I), DLF_SITE(), &Factory));
  }

  // Cache warmer: [cache -> store], inverted by the admin's invalidation.
  Workers.emplace_back(Thread(
      [&Cache] {
        DLF_SCOPE("jigsaw::warmerWorker");
        stagger(4);
        for (unsigned R = 0; R != 3; ++R) {
          Cache.fill(R);
          stagger(2);
        }
      },
      "jigsaw.warmer", DLF_SITE(), &Factory));
  Workers.emplace_back(Thread(
      [&Store, &Cache] {
        DLF_SCOPE("jigsaw::adminWorker");
        stagger(10);
        (void)Cache.size(); // gate: cache monitor, alone
        Store.invalidate(Cache);
      },
      "jigsaw.admin", DLF_SITE(), &Factory));

  // Reaper: inverts against the client workers and the finish paths.
  Workers.emplace_back(Thread(
      [&Factory] {
        DLF_SCOPE("jigsaw::reaperWorker");
        stagger(8);
        Factory.scanClients();
        stagger(4);
        Factory.killIdleClient(1);
      },
      "jigsaw.reaper", DLF_SITE(), &Factory));

  // Resource saver: [resource -> store], inverting the loads.
  Workers.emplace_back(Thread(
      [&Store] {
        DLF_SCOPE("jigsaw::saverWorker");
        stagger(6);
        for (unsigned R = 0; R != 3; ++R) {
          Store.saveResource(R);
          stagger(3);
        }
      },
      "jigsaw.saver", DLF_SITE(), &Factory));

  // Three-lock chain: indexer -> logbook, logbook -> stats,
  // stats -> indexer — a length-3 potential cycle with no length-2
  // sub-cycles (exercises iGoodlock's iterative deepening).
  Workers.emplace_back(Thread(
      [&Indexer, &Logbook] {
        DLF_SCOPE("jigsaw::indexWriter");
        stagger(5);
        MutexGuard A(Indexer, DLF_NAMED_SITE("jigsaw::reindex/indexer"));
        MutexGuard B(Logbook, DLF_NAMED_SITE("jigsaw::reindex/logbook"));
      },
      "jigsaw.indexWriter", DLF_SITE(), &Factory));
  Workers.emplace_back(Thread(
      [&Logbook, &Stats] {
        DLF_SCOPE("jigsaw::logRotator");
        stagger(7);
        MutexGuard A(Logbook, DLF_NAMED_SITE("jigsaw::rotate/logbook"));
        MutexGuard B(Stats, DLF_NAMED_SITE("jigsaw::rotate/stats"));
      },
      "jigsaw.logRotator", DLF_SITE(), &Factory));
  Workers.emplace_back(Thread(
      [&Stats, &Indexer] {
        DLF_SCOPE("jigsaw::statsCollector");
        stagger(9);
        MutexGuard A(Stats, DLF_NAMED_SITE("jigsaw::collect/stats"));
        MutexGuard B(Indexer, DLF_NAMED_SITE("jigsaw::collect/indexer"));
      },
      "jigsaw.statsCollector", DLF_SITE(), &Factory));

  // The cached workers: run the [poolLock -> threadLock] halves of the
  // §5.4 false-positive cycles, strictly after their setup inversions.
  Workers.emplace_back(Thread(
      [&Cached0] {
        DLF_SCOPE("jigsaw::cachedWorker0");
        stagger(4);
        Cached0.waitForRunner();
      },
      "jigsaw.cached0", DLF_SITE(), &Factory));
  Workers.emplace_back(Thread(
      [&Cached1] {
        DLF_SCOPE("jigsaw::cachedWorker1");
        stagger(9);
        Cached1.waitForRunner();
      },
      "jigsaw.cached1", DLF_SITE(), &Factory));

  for (Thread &Worker : Workers)
    Worker.join();
  Workers.clear();

  // Server shutdown: Figure 3's httpd.cleanup() -> factory.shutdown(),
  // running against one last straggler connection.
  Thread Straggler(
      [&] {
        DLF_SCOPE("jigsaw::stragglerWorker");
        Clients[0]->serveRequest(99);
        Clients[0]->connectionFinished();
      },
      "jigsaw.straggler", DLF_SITE(), &Factory);
  Thread Shutdown(
      [&Factory] {
        DLF_SCOPE("jigsaw::shutdownWorker");
        stagger(3);
        (void)Factory.idleCount(); // factory monitor alone (gate)
        Factory.shutdown();
      },
      "jigsaw.shutdown", DLF_SITE(), &Factory);
  Straggler.join();
  Shutdown.join();
}
