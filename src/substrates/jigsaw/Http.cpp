//===- substrates/jigsaw/Http.cpp - Minimal HTTP machinery ------------------===//

#include "substrates/jigsaw/Http.h"

#include <algorithm>
#include <cctype>
#include <sstream>

using namespace dlf;
using namespace dlf::jigsaw;

namespace {

std::string toLower(std::string Text) {
  std::transform(Text.begin(), Text.end(), Text.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  return Text;
}

std::string trim(const std::string &Text) {
  size_t Begin = Text.find_first_not_of(" \t\r");
  if (Begin == std::string::npos)
    return "";
  size_t End = Text.find_last_not_of(" \t\r");
  return Text.substr(Begin, End - Begin + 1);
}

} // namespace

std::optional<HttpRequest> jigsaw::parseRequest(const std::string &Raw) {
  std::istringstream In(Raw);
  std::string Line;
  if (!std::getline(In, Line))
    return std::nullopt;
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();

  HttpRequest Request;
  {
    std::istringstream First(Line);
    if (!(First >> Request.Method >> Request.Path >> Request.Version))
      return std::nullopt;
    std::string Extra;
    if (First >> Extra)
      return std::nullopt; // junk after the version
  }
  if (Request.Method.empty() || Request.Path.empty() ||
      Request.Path[0] != '/' || Request.Version.rfind("HTTP/", 0) != 0)
    return std::nullopt;

  while (std::getline(In, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      break; // end of headers
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos || Colon == 0)
      return std::nullopt;
    Request.Headers[toLower(trim(Line.substr(0, Colon)))] =
        trim(Line.substr(Colon + 1));
  }
  return Request;
}

unsigned jigsaw::routeToResource(const std::string &Path,
                                 unsigned ResourceCount) {
  if (ResourceCount == 0)
    return 0;
  // Trailing numeric segment routes directly.
  size_t Slash = Path.find_last_of('/');
  if (Slash != std::string::npos && Slash + 1 < Path.size()) {
    const std::string Tail = Path.substr(Slash + 1);
    bool AllDigits = !Tail.empty() &&
                     std::all_of(Tail.begin(), Tail.end(), [](unsigned char C) {
                       return std::isdigit(C);
                     });
    if (AllDigits) {
      // Accumulate modulo ResourceCount instead of std::stoul: a crafted
      // request like GET /res/18446744073709551616 must route, not throw
      // std::out_of_range through the worker thread.
      uint64_t Slot = 0;
      for (unsigned char C : Tail)
        Slot = (Slot * 10 + (C - '0')) % ResourceCount;
      return static_cast<unsigned>(Slot);
    }
  }
  // Otherwise a stable FNV-1a hash of the path.
  uint32_t Hash = 2166136261u;
  for (unsigned char C : Path) {
    Hash ^= C;
    Hash *= 16777619u;
  }
  return Hash % ResourceCount;
}

HttpResponse jigsaw::makeResponse(const HttpRequest &Request,
                                  const std::string &ResourcePayload) {
  HttpResponse Response;
  if (!Request.isRead()) {
    Response.Status = 405;
    Response.Reason = "Method Not Allowed";
    Response.Headers["allow"] = "GET, HEAD";
    return Response;
  }
  Response.Headers["content-type"] = "text/plain";
  if (Request.Method == "GET")
    Response.Body = ResourcePayload;
  return Response;
}

std::string HttpResponse::serialize() const {
  std::ostringstream Out;
  Out << "HTTP/1.0 " << Status << ' ' << Reason << "\r\n";
  for (const auto &[Name, Value] : Headers)
    Out << Name << ": " << Value << "\r\n";
  Out << "content-length: " << Body.size() << "\r\n\r\n" << Body;
  return Out.str();
}
