//===- substrates/jigsaw/Jigsaw.h - Jigsaw web server analogue ---*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature multi-threaded web server with the lock structure of W3C
/// Jigsaw, the paper's largest benchmark (283 cycles reported by iGoodlock,
/// 29 confirmed real, ≥18 shown to be false positives). The pieces:
///
///  * SocketClientFactory (paper Figure 3): a `factory` monitor and a
///    `csList` monitor acquired in both orders along different paths —
///    clientConnectionFinished / idleClientRemoved take [csList -> factory],
///    killClients / killIdleClient take [factory -> csList] (and nest into
///    per-client monitors, generating further cycles).
///  * SocketClient worker threads serving requests: [client_i -> csList]
///    per request, inverted by the factory's scans [csList -> client_i].
///  * ResourceStore: [store -> resource] loads vs [resource -> store]
///    saves.
///  * A three-lock chain (store -> indexer -> logbook -> store) exercising
///    iGoodlock's iterative deepening beyond length-2 cycles.
///  * CachedThread (paper §5.4): the false-positive pattern. The inverted
///    acquisition happens in the main thread strictly *before* the worker
///    is started, so the cycle iGoodlock reports (it ignores the
///    happens-before relation) can never be created; DeadlockFuzzer never
///    confirms it.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUBSTRATES_JIGSAW_JIGSAW_H
#define DLF_SUBSTRATES_JIGSAW_JIGSAW_H

#include "runtime/Mutex.h"
#include "runtime/Runtime.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dlf {
namespace jigsaw {

class SocketClientFactory;

/// One pooled client connection, owned by the factory, with its own
/// monitor. Runs as a worker thread serving a fixed number of requests.
class SocketClient {
public:
  SocketClient(unsigned Index, Label Site, SocketClientFactory &Factory);

  /// Serves one request: locks this client, then csList (to update shared
  /// accounting).
  void serveRequest(unsigned RequestId);

  /// Finishes the connection: the paper's Figure 3 path
  /// [csList -> factory].
  void connectionFinished();

  /// Single-lock query.
  bool isIdle() const;

  unsigned index() const { return Index; }
  Mutex &monitor() { return Monitor; }

private:
  friend class SocketClientFactory;
  mutable Mutex Monitor;
  SocketClientFactory &Factory;
  unsigned Index;
  bool Idle = true;
  unsigned Served = 0;
};

/// The paper's SocketClientFactory with its two shared monitors.
class SocketClientFactory {
public:
  explicit SocketClientFactory(Label Site);

  /// Factory method: allocates clients at one site (k-object collapsing).
  SocketClient &createClient();

  /// Figure 3, lines 618-626: [csList -> factory].
  void clientConnectionFinished(SocketClient &Client);

  /// The "similar deadlock ... acquired at different program locations":
  /// [csList -> factory] along the idle-removal path.
  void idleClientRemoved(SocketClient &Client);

  /// Figure 3, lines 867-872: [factory -> csList], nesting into each
  /// client's monitor (generating per-client cycles as well).
  void killClients();

  /// The idle-kill path: [factory -> csList -> client].
  void killIdleClient(unsigned Index);

  /// csList accounting used by SocketClient::serveRequest with the client
  /// monitor held: [client -> csList].
  void noteRequestServed(unsigned ClientIndex);

  /// [csList -> client_i] scan, the inversion partner of serveRequest.
  void scanClients();

  /// Single-lock queries (gates / benign traffic).
  int idleCount() const;
  size_t clientCount() const;

  /// Shuts the factory down (called by Httpd::cleanup).
  void shutdown();

private:
  void decrIdleCount();     // requires csList held; locks factory
  void updateIdleStats();   // requires csList held; locks factory

  mutable Mutex FactoryLock;
  mutable Mutex CsListLock;
  std::vector<std::unique_ptr<SocketClient>> Clients;
  int Idle = 0;
  unsigned Requests = 0;
  bool Down = false;
};

class ResourceCache;

/// Resources with their own monitors, managed by a shared store.
class ResourceStore {
public:
  explicit ResourceStore(Label Site, unsigned ResourceCount);

  /// [store -> resource_i].
  void loadResource(unsigned Index);

  /// [resource_i -> store].
  void saveResource(unsigned Index);

  /// Single-lock payload read (used by the cache fill path).
  std::string payloadFor(unsigned Index) const;

  /// Drops every cache entry: [store -> cache] — the inversion partner of
  /// ResourceCache::fill.
  void invalidate(ResourceCache &Cache);

  /// Single-lock query.
  size_t loadedCount() const;

  unsigned resourceCount() const { return static_cast<unsigned>(Resources.size()); }

private:
  struct Resource {
    explicit Resource(Label Site, const void *Owner)
        : Monitor("resource", Site, Owner) {}
    Mutex Monitor;
    unsigned Loads = 0;
    unsigned Saves = 0;
  };

  mutable Mutex StoreLock;
  std::vector<std::unique_ptr<Resource>> Resources;
  size_t Loaded = 0;
};

/// A response cache in front of the store. Its fill path reads the store
/// while holding the cache monitor [cache -> store], inverted by
/// ResourceStore::invalidate [store -> cache]: one more real cycle, on a
/// lock pair disjoint from the factory's.
class ResourceCache {
public:
  ResourceCache(Label Site, ResourceStore &Store);

  /// Point lookup; empty string when absent. [cache]
  std::string lookup(unsigned Index) const;

  /// Populates the entry from the store: [cache -> store].
  void fill(unsigned Index);

  /// [cache]
  size_t size() const;

private:
  friend class ResourceStore;
  mutable Mutex CacheLock;
  ResourceStore &Store;
  std::map<unsigned, std::string> Entries;
};

/// Serves one raw HTTP request against the store + cache (parse, route,
/// cache lookup, store load on miss, serialize). Lock order is the benign
/// [cache], then [store -> resource] one.
std::string serveHttp(const std::string &Raw, ResourceStore &Store,
                      ResourceCache &Cache);

/// The Jigsaw benchmark workload. Returns nothing; potential cycles are
/// whatever iGoodlock finds (dozens; a handful confirmable; the
/// CachedThread ones provably not).
void runJigsawHarness();

} // namespace jigsaw
} // namespace dlf

#endif // DLF_SUBSTRATES_JIGSAW_JIGSAW_H
