//===- substrates/jigsaw/Http.h - Minimal HTTP machinery ---------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request/response plumbing of the mini web server: a small HTTP/1.0
/// parser and formatter. Pure logic — no locks — but it is what the client
/// worker threads actually execute between synchronization events, giving
/// the jigsaw benchmark realistic compute between its lock operations
/// (and the Table 1 runtime columns something to measure).
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUBSTRATES_JIGSAW_HTTP_H
#define DLF_SUBSTRATES_JIGSAW_HTTP_H

#include <map>
#include <optional>
#include <string>

namespace dlf {
namespace jigsaw {

/// A parsed HTTP request line + headers.
struct HttpRequest {
  std::string Method;
  std::string Path;
  std::string Version;
  std::map<std::string, std::string> Headers;

  /// True for methods the server serves from the resource store.
  bool isRead() const { return Method == "GET" || Method == "HEAD"; }
};

/// A response under construction.
struct HttpResponse {
  int Status = 200;
  std::string Reason = "OK";
  std::map<std::string, std::string> Headers;
  std::string Body;

  /// Renders the status line, headers (plus Content-Length) and body.
  std::string serialize() const;
};

/// Parses a raw request ("GET /index HTTP/1.0\r\nHost: x\r\n\r\n").
/// Returns std::nullopt for malformed input (bad request line, header
/// without a colon). Header names are lower-cased; values are trimmed.
std::optional<HttpRequest> parseRequest(const std::string &Raw);

/// Maps a request path to a resource index in [0, ResourceCount): a stable
/// hash-based router. Paths with a trailing numeric segment route by that
/// number (e.g. "/res/7" -> 7 mod ResourceCount).
unsigned routeToResource(const std::string &Path, unsigned ResourceCount);

/// Builds the canned response the mini server sends for \p Request with
/// \p ResourcePayload bytes of body.
HttpResponse makeResponse(const HttpRequest &Request,
                          const std::string &ResourcePayload);

} // namespace jigsaw
} // namespace dlf

#endif // DLF_SUBSTRATES_JIGSAW_HTTP_H
