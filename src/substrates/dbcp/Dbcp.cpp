//===- substrates/dbcp/Dbcp.cpp - Apache DBCP analogue ----------------------===//

#include "substrates/dbcp/Dbcp.h"

#include "runtime/Thread.h"
#include "substrates/Stagger.h"

using namespace dlf;
using namespace dlf::dbcp;

// -- Connection ---------------------------------------------------------------

Connection::Connection(const std::string &Name, Label Site,
                       ConnectionPool &Pool)
    : Monitor("connection:" + Name, Site, &Pool), Pool(Pool), Name(Name) {
  DLF_NEW_OBJECT(this, &Pool);
}

void Connection::prepareStatement(const std::string &Sql) {
  DLF_SCOPE("Connection::prepareStatement");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("Connection::prepareStatement/conn"));
  Statements.push_back(Sql);
  Pool.noteBorrow(); // locks the pool (inner)
}

void Connection::close() {
  DLF_SCOPE("Connection::close");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("Connection::close/conn"));
  Closed = true;
  Pool.noteReturn(); // locks the pool (inner)
}

bool Connection::isClosed() const {
  DLF_SCOPE("Connection::isClosed");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("Connection::isClosed/conn"));
  return Closed;
}

// -- ConnectionPool -----------------------------------------------------------

ConnectionPool::ConnectionPool(Label Site)
    : Monitor("keyedObjectPool", Site, nullptr) {
  DLF_NEW_OBJECT(this, nullptr);
}

Connection &ConnectionPool::createConnection(const std::string &Name) {
  DLF_SCOPE("ConnectionPool::createConnection");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("ConnectionPool::create/pool"));
  Connections.push_back(std::make_unique<Connection>(
      Name, DLF_NAMED_SITE("ConnectionPool::newConnection"), *this));
  return *Connections.back();
}

void ConnectionPool::closeStatement(Connection &Conn, const std::string &Sql) {
  DLF_SCOPE("ConnectionPool::closeStatement");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("ConnectionPool::closeStmt/pool"));
  MutexGuard Inner(Conn.Monitor,
                   DLF_NAMED_SITE("ConnectionPool::closeStmt/conn"));
  auto &Stmts = Conn.Statements;
  for (size_t I = Stmts.size(); I-- > 0;)
    if (Stmts[I] == Sql)
      Stmts.erase(Stmts.begin() + static_cast<long>(I));
}

void ConnectionPool::evictIdle(Connection &Conn) {
  DLF_SCOPE("ConnectionPool::evictIdle");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("ConnectionPool::evictIdle/pool"));
  MutexGuard Inner(Conn.Monitor,
                   DLF_NAMED_SITE("ConnectionPool::evictIdle/conn"));
  Conn.Closed = true;
}

size_t ConnectionPool::activeCount() const {
  DLF_SCOPE("ConnectionPool::activeCount");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("ConnectionPool::activeCount/pool"));
  return Active;
}

void ConnectionPool::noteBorrow() {
  DLF_SCOPE("ConnectionPool::noteBorrow");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("ConnectionPool::noteBorrow/pool"));
  ++Active;
}

void ConnectionPool::noteReturn() {
  DLF_SCOPE("ConnectionPool::noteReturn");
  MutexGuard Guard(Monitor, DLF_NAMED_SITE("ConnectionPool::noteReturn/pool"));
  if (Active)
    --Active;
}

// -- Harness ------------------------------------------------------------------

namespace {

/// Spawns every DBCP worker through one call site (thread-pool style), so
/// the worker thread objects collapse under the k-object abstraction; see
/// the logging harness for the Figure 2 rationale.
Thread spawnDbcpWorker(ConnectionPool &Pool, std::function<void()> Body,
                       const std::string &Name) {
  DLF_SCOPE("dbcp::spawnWorker");
  return Thread(std::move(Body), Name,
                DLF_NAMED_SITE("dbcp::spawnWorker/thread"), &Pool);
}

} // namespace

void dbcp::runDbcpHarness() {
  DLF_SCOPE("dbcp::runDbcpHarness");
  ConnectionPool Pool(DLF_SITE());
  Connection &C1 = Pool.createConnection("c1");
  Connection &C2 = Pool.createConnection("c2");
  // Decoy connections from the same factory site: indistinguishable from
  // C1/C2 under the k-object abstraction, so variant 1 pauses their
  // threads too.
  Connection &C3 = Pool.createConnection("decoy1");
  Connection &C4 = Pool.createConnection("decoy2");

  // Cycle 1: prepareStatement (conn->pool) vs closeStatement (pool->conn),
  // with a §4 gate on the connection monitor in the pool-side thread.
  Thread Prepare = spawnDbcpWorker(
      Pool,
      [&] {
        DLF_SCOPE("dbcp::prepareWorker");
        C1.prepareStatement("select 1");
      },
      "dbcp.prepare");
  Thread CloseStmt = spawnDbcpWorker(
      Pool,
      [&] {
        DLF_SCOPE("dbcp::closeStmtWorker");
        stagger(2);
        (void)C1.isClosed(); // gate: connection monitor, alone
        Pool.closeStatement(C1, "select 1");
      },
      "dbcp.closeStmt");

  // Cycle 2: Connection::close (conn->pool) vs evictIdle (pool->conn).
  Thread CloseConn = spawnDbcpWorker(
      Pool,
      [&] {
        DLF_SCOPE("dbcp::closeConnWorker");
        C2.close();
      },
      "dbcp.closeConn");
  Thread Evict = spawnDbcpWorker(
      Pool,
      [&] {
        DLF_SCOPE("dbcp::evictWorker");
        stagger(2);
        (void)C2.isClosed(); // gate: connection monitor, alone
        Pool.evictIdle(C2);
      },
      "dbcp.evict");

  // Decoy workers on C3/C4: same code paths, no inverted partners, so they
  // add no cycles — but they pause under coarse abstractions while holding
  // the shared pool/connection monitors.
  Thread DecoyPrepare = spawnDbcpWorker(
      Pool,
      [&] {
        DLF_SCOPE("dbcp::prepareWorker");
        stagger(1);
        C3.prepareStatement("select decoy");
      },
      "dbcp.decoyPrepare");
  Thread DecoyEvict = spawnDbcpWorker(
      Pool,
      [&] {
        DLF_SCOPE("dbcp::evictWorker");
        stagger(3);
        Pool.evictIdle(C4);
      },
      "dbcp.decoyEvict");

  // Benign pool monitoring traffic.
  Thread Monitor = spawnDbcpWorker(
      Pool,
      [&] {
        DLF_SCOPE("dbcp::monitorWorker");
        for (int I = 0; I != 5; ++I) {
          (void)Pool.activeCount();
          stagger(2);
        }
      },
      "dbcp.monitor");

  Prepare.join();
  CloseStmt.join();
  CloseConn.join();
  Evict.join();
  DecoyPrepare.join();
  DecoyEvict.join();
  Monitor.join();
}
