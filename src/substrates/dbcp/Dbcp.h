//===- substrates/dbcp/Dbcp.h - Apache DBCP analogue -------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature database connection pool with the lock structure of Apache
/// Commons DBCP, where the paper found 2 real deadlock cycles (§5.3): one
/// thread creates a PreparedStatement while another closes one.
///
///   cycle 1: Connection::prepareStatement [connection -> pool]
///         vs PreparedStatement close path [pool -> connection]
///   cycle 2: Connection::close            [connection -> pool]
///         vs ConnectionPool::evictIdle    [pool -> connection]
///
/// Connections are allocated by the pool's factory method (single
/// allocation site), so the k-object abstraction cannot tell them apart —
/// the DBCP bar of Figure 2's variant-1 vs variant-2 comparison.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUBSTRATES_DBCP_DBCP_H
#define DLF_SUBSTRATES_DBCP_DBCP_H

#include "runtime/Mutex.h"
#include "runtime/Runtime.h"

#include <memory>
#include <string>
#include <vector>

namespace dlf {
namespace dbcp {

class ConnectionPool;

/// A pooled connection with its own monitor (DelegatingConnection).
class Connection {
public:
  Connection(const std::string &Name, Label Site, ConnectionPool &Pool);

  /// Borrows a statement slot from the pool: locks connection, then pool
  /// (the paper's PoolingConnection.prepareStatement path).
  void prepareStatement(const std::string &Sql);

  /// Returns the connection to the pool: locks connection, then pool.
  void close();

  /// Single-lock query (gate / benign traffic).
  bool isClosed() const;

private:
  friend class ConnectionPool;
  mutable Mutex Monitor;
  ConnectionPool &Pool;
  std::string Name;
  bool Closed = false;
  std::vector<std::string> Statements;
};

/// The KeyedObjectPool analogue: one pool monitor guarding shared state.
class ConnectionPool {
public:
  explicit ConnectionPool(Label Site);

  /// Factory: allocates a connection at a single site.
  Connection &createConnection(const std::string &Name);

  /// The paper's PoolablePreparedStatement.close path: locks pool, then the
  /// statement's connection.
  void closeStatement(Connection &Conn, const std::string &Sql);

  /// Idle-object eviction: locks pool, then the connection.
  void evictIdle(Connection &Conn);

  /// Single-lock query (gate / benign traffic).
  size_t activeCount() const;

  /// Called by Connection methods with the connection monitor held.
  void noteBorrow();
  void noteReturn();

private:
  friend class Connection;
  mutable Mutex Monitor;
  std::vector<std::unique_ptr<Connection>> Connections;
  size_t Active = 0;
};

/// The DBCP benchmark workload: two deadlock cycles with gates, plus benign
/// traffic.
void runDbcpHarness();

} // namespace dbcp
} // namespace dlf

#endif // DLF_SUBSTRATES_DBCP_DBCP_H
