//===- substrates/Stagger.h - Workload pacing helpers ------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pacing helpers for the benchmark substrates. The paper's deadlocks are
/// rare under normal schedules because the racing critical sections are
/// short and the threads reach them at different times (Figure 1 models
/// this with "long running methods" f1..f4). stagger(N) plays that role: N
/// scheduling points of separation, which makes the unbiased schedulers
/// (simple random, passthrough) very unlikely to overlap the windows, while
/// the biased Phase II scheduler pauses one participant and waits for the
/// other, so reproduction stays easy.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUBSTRATES_STAGGER_H
#define DLF_SUBSTRATES_STAGGER_H

#include "runtime/Runtime.h"

#include <chrono>
#include <thread>

namespace dlf {

/// Executes \p Points scheduling points of benign work.
inline void stagger(unsigned Points) {
  for (unsigned I = 0; I != Points; ++I)
    yieldNow();
}

/// stagger() for hazard windows that are entered at OS latency rather than
/// at scheduling points. Under the Active scheduler this is exactly
/// stagger(\p Points) — yields are real scheduling points there, and wall
/// time must not influence the (deterministic) schedule. In any other mode
/// a yield returns in nanoseconds while e.g. waking a cond waiter takes
/// microseconds, so yields alone cannot keep a wakeup-shaped deadlock rare;
/// sleep \p Micros of real time instead.
inline void staggerWall(unsigned Points, unsigned Micros) {
  Runtime *RT = Runtime::current();
  if (RT && RT->mode() == RunMode::Active) {
    stagger(Points);
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(Micros));
}

} // namespace dlf

#endif // DLF_SUBSTRATES_STAGGER_H
