//===- substrates/workloads/CondvarHybrid.cpp - Wakeup/lock-order hybrid ----===//

#include "substrates/workloads/Workloads.h"

#include "runtime/ConditionVariable.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"
#include "substrates/Stagger.h"

using namespace dlf;

// The lost-wakeup + lock-order hybrid: the flusher parks on a condition
// with the state lock while holding the journal, so its *reacquire* of the
// state lock (inside the wait, after the producer's signal) runs with the
// journal held. The producer appends by taking the journal under the state
// lock. Every plain acquisition uses the same state->journal order — no
// mutex-only inversion exists anywhere — yet between the signal and the
// flusher's reacquire there is a window in which the producer can take the
// state lock and want the journal, closing a cycle that is only visible
// when the analysis models cond-wait as release + wakeup edge + reacquire.
// Phase II holds the notified flusher right before the reacquire (the
// scheduler treats it as a pausable acquire), widening that window
// deterministically.
void workloads::runCondvarHybrid() {
  DLF_SCOPE("workloads::runCondvarHybrid");
  Mutex State("state", DLF_SITE(), nullptr);
  Mutex Journal("journal", DLF_SITE(), nullptr);
  ConditionVariable Drained("drained");
  bool FlusherParked = false;
  bool QueueDrained = false;
  int Flushed = 0;

  Thread Flusher(
      [&] {
        DLF_SCOPE("condvarHybrid::flusher");
        MutexGuard S(State, DLF_NAMED_SITE("flusher::state"));
        MutexGuard J(Journal, DLF_NAMED_SITE("flusher::journal"));
        FlusherParked = true;
        Drained.waitUntil(State, [&] { return QueueDrained; },
                          DLF_NAMED_SITE("flusher::wait-reacquire/state"));
        ++Flushed;
      },
      "condvarHybrid.flusher", DLF_SITE(), nullptr);

  Thread Producer(
      [&] {
        DLF_SCOPE("condvarHybrid::producer");
        // Drain only once the flusher is parked (checked under the state
        // lock), so the wait/wakeup pair occurs in every execution.
        for (;;) {
          bool Parked;
          {
            MutexGuard S(State, DLF_NAMED_SITE("producer::drain/state"));
            Parked = FlusherParked;
            if (Parked) {
              QueueDrained = true;
              Drained.notifyOne();
            }
          }
          if (Parked)
            break;
          yieldNow();
        }
        // Separation between the signal and the append: the woken flusher
        // must reacquire the state lock before the append re-takes it, so
        // the plain program terminates; the biased scheduler closes that
        // gap by holding the flusher instead. The window is entered at
        // cond-wakeup latency (microseconds), so outside the Active
        // scheduler the separation must be wall time, not yields.
        staggerWall(12, 2000);
        MutexGuard S(State, DLF_NAMED_SITE("producer::append/state"));
        MutexGuard J(Journal, DLF_NAMED_SITE("producer::append/journal"));
        ++Flushed;
      },
      "condvarHybrid.producer", DLF_SITE(), nullptr);

  Flusher.join();
  Producer.join();
}
