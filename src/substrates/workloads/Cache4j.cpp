//===- substrates/workloads/Cache4j.cpp - Object cache workload ------------===//

#include "substrates/workloads/Workloads.h"

#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"
#include "substrates/Stagger.h"

#include <string>
#include <unordered_map>
#include <vector>

using namespace dlf;

namespace {

/// cache4j-style synchronized cache: one monitor, LRU-ish eviction.
class SynchronizedCache {
public:
  explicit SynchronizedCache(size_t Capacity)
      : Monitor("cache", DLF_SITE(), nullptr), Capacity(Capacity) {
    DLF_NEW_OBJECT(this, nullptr);
  }

  void put(int Key, int Value) {
    DLF_SCOPE("SynchronizedCache::put");
    MutexGuard Guard(Monitor, DLF_NAMED_SITE("Cache::put/cache"));
    Data[Key] = Value;
    Order.push_back(Key);
    if (Data.size() > Capacity)
      evictOldestLocked();
  }

  int get(int Key) {
    DLF_SCOPE("SynchronizedCache::get");
    MutexGuard Guard(Monitor, DLF_NAMED_SITE("Cache::get/cache"));
    auto It = Data.find(Key);
    if (It == Data.end()) {
      ++Misses;
      return -1;
    }
    ++Hits;
    return It->second;
  }

  size_t hitCount() const {
    DLF_SCOPE("SynchronizedCache::hitCount");
    MutexGuard Guard(Monitor, DLF_NAMED_SITE("Cache::hits/cache"));
    return Hits;
  }

private:
  void evictOldestLocked() {
    while (Data.size() > Capacity && !Order.empty()) {
      Data.erase(Order.front());
      Order.erase(Order.begin());
    }
  }

  mutable Mutex Monitor;
  size_t Capacity;
  std::unordered_map<int, int> Data;
  std::vector<int> Order;
  size_t Hits = 0;
  size_t Misses = 0;
};

} // namespace

void workloads::runCache4j() {
  DLF_SCOPE("workloads::runCache4j");
  SynchronizedCache Cache(/*Capacity=*/16);

  std::vector<Thread> Workers;
  for (int W = 0; W != 3; ++W) {
    Workers.emplace_back(Thread(
        [&Cache, W] {
          DLF_SCOPE("cache4j::writer");
          for (int I = 0; I != 8; ++I) {
            Cache.put(W * 100 + I, I);
            stagger(1);
          }
        },
        "cache4j.writer" + std::to_string(W), DLF_SITE(), &Cache));
  }
  for (int R = 0; R != 3; ++R) {
    Workers.emplace_back(Thread(
        [&Cache, R] {
          DLF_SCOPE("cache4j::reader");
          for (int I = 0; I != 8; ++I) {
            (void)Cache.get(R * 100 + I);
            stagger(1);
          }
        },
        "cache4j.reader" + std::to_string(R), DLF_SITE(), &Cache));
  }
  for (Thread &Worker : Workers)
    Worker.join();
  (void)Cache.hitCount();
}
