//===- substrates/workloads/JSpider.cpp - Web spider workload --------------===//

#include "substrates/workloads/Workloads.h"

#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"
#include "substrates/Stagger.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

using namespace dlf;

namespace {

/// Per-host state; cross-host transfers always lock the two hosts in
/// global host-id order, the classic deadlock-avoidance discipline, so the
/// dependency relation contains two-lock entries but no inversions.
class SpiderState {
public:
  explicit SpiderState(unsigned HostCount) {
    DLF_NEW_OBJECT(this, nullptr);
    for (unsigned I = 0; I != HostCount; ++I)
      Hosts.push_back(std::make_unique<Host>(I, this));
  }

  /// Fetches one URL from \p From that links to \p To: locks the two host
  /// monitors in id order.
  void followLink(unsigned From, unsigned To) {
    DLF_SCOPE("SpiderState::followLink");
    Host &A = *Hosts[std::min(From, To) % Hosts.size()];
    Host &B = *Hosts[std::max(From, To) % Hosts.size()];
    if (&A == &B) {
      MutexGuard Only(A.Monitor, DLF_NAMED_SITE("Spider::follow/sameHost"));
      ++A.Fetched;
      return;
    }
    MutexGuard First(A.Monitor, DLF_NAMED_SITE("Spider::follow/firstHost"));
    MutexGuard Second(B.Monitor, DLF_NAMED_SITE("Spider::follow/secondHost"));
    ++A.Fetched;
    ++B.Linked;
  }

  unsigned hostCount() const { return static_cast<unsigned>(Hosts.size()); }

private:
  struct Host {
    Host(unsigned Id, const void *Owner)
        : Monitor("host#" + std::to_string(Id), DLF_SITE(), Owner), Id(Id) {}
    Mutex Monitor;
    unsigned Id;
    unsigned Fetched = 0;
    unsigned Linked = 0;
  };

  std::vector<std::unique_ptr<Host>> Hosts;
};

} // namespace

void workloads::runJSpider() {
  DLF_SCOPE("workloads::runJSpider");
  SpiderState Spider(/*HostCount=*/4);

  std::vector<Thread> Workers;
  for (unsigned W = 0; W != 3; ++W) {
    Workers.emplace_back(Thread(
        [&Spider, W] {
          DLF_SCOPE("jspider::worker");
          for (unsigned Step = 0; Step != 6; ++Step) {
            Spider.followLink((W + Step) % 4, (W + 2 * Step + 1) % 4);
            stagger(1);
          }
        },
        "jspider.worker" + std::to_string(W), DLF_SITE(), &Spider));
  }
  for (Thread &Worker : Workers)
    Worker.join();
}
