//===- substrates/workloads/Sor.cpp - Successive over-relaxation -----------===//

#include "substrates/workloads/Workloads.h"

#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"
#include "substrates/Stagger.h"

#include <string>
#include <vector>

using namespace dlf;

namespace {

/// Counter barrier built on one monitor and cooperative polling; single
/// lock, never nested.
class Barrier {
public:
  Barrier(unsigned Parties)
      : Monitor("sorBarrier", DLF_SITE(), nullptr), Parties(Parties) {}

  void arriveAndWait() {
    DLF_SCOPE("Barrier::arriveAndWait");
    unsigned MyGeneration;
    {
      MutexGuard Guard(Monitor, DLF_NAMED_SITE("Barrier::arrive/barrier"));
      MyGeneration = Generation;
      if (++Arrived == Parties) {
        Arrived = 0;
        ++Generation;
      }
    }
    for (;;) {
      {
        MutexGuard Guard(Monitor, DLF_NAMED_SITE("Barrier::poll/barrier"));
        if (Generation != MyGeneration)
          return;
      }
      yieldNow();
    }
  }

private:
  Mutex Monitor;
  unsigned Parties;
  unsigned Arrived = 0;
  unsigned Generation = 0;
};

} // namespace

void workloads::runSor() {
  DLF_SCOPE("workloads::runSor");
  constexpr unsigned Threads = 3;
  constexpr unsigned Rows = 12;
  constexpr unsigned Cols = 8;
  constexpr unsigned Sweeps = 3;

  std::vector<std::vector<double>> Grid(Rows, std::vector<double>(Cols, 1.0));
  Barrier Sync(Threads);

  std::vector<Thread> Workers;
  for (unsigned T = 0; T != Threads; ++T) {
    Workers.emplace_back(Thread(
        [&Grid, &Sync, T] {
          DLF_SCOPE("sor::worker");
          for (unsigned Sweep = 0; Sweep != Sweeps; ++Sweep) {
            // Red-black style banded update; each thread owns whole rows,
            // so no locking is needed for the grid itself.
            for (unsigned Row = 1 + T; Row < Rows - 1; Row += Threads)
              for (unsigned Col = 1; Col < Cols - 1; ++Col)
                Grid[Row][Col] =
                    0.25 * (Grid[Row - 1][Col] + Grid[Row + 1][Col] +
                            Grid[Row][Col - 1] + Grid[Row][Col + 1]);
            Sync.arriveAndWait();
          }
        },
        "sor.worker" + std::to_string(T), DLF_SITE(), &Grid));
  }
  for (Thread &Worker : Workers)
    Worker.join();
}
