//===- substrates/workloads/RwlockAbba.cpp - Reader-held ABBA ---------------===//

#include "substrates/workloads/Workloads.h"

#include "runtime/RwLock.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"
#include "substrates/Stagger.h"

using namespace dlf;

// A deadlock that exists only in a reader/writer alphabet: two table
// maintenance threads each take the registry and their source table on the
// read side, then the destination table on the write side, with the table
// order inverted. Under a mutex-only model the shared registry would look
// like a gate guarding the inversion (every participant "holds" it) and the
// closure would discard the cycle; with modes, read-read overlap on the
// registry and on the source tables excludes nothing, so both threads can
// sit inside the window together — scan holds tableA(r) wanting tableB(w)
// while merge holds tableB(r) wanting tableA(w). Phase II reproduces it by
// pausing each thread before its write acquire.
void workloads::runRwlockAbba() {
  DLF_SCOPE("workloads::runRwlockAbba");
  RwLock Registry("registry", DLF_SITE(), nullptr);
  RwLock TableA("tableA", DLF_SITE(), nullptr);
  RwLock TableB("tableB", DLF_SITE(), nullptr);
  int RowsA = 100;
  int RowsB = 100;

  Thread Scan(
      [&] {
        DLF_SCOPE("rwlockAbba::scan");
        stagger(2);
        RwReadGuard Gate(Registry, DLF_NAMED_SITE("scan::gate/registry"));
        RwReadGuard From(TableA, DLF_NAMED_SITE("scan::from/tableA"));
        stagger(1);
        RwWriteGuard To(TableB, DLF_NAMED_SITE("scan::to/tableB"));
        RowsB += RowsA;
      },
      "rwlockAbba.scan", DLF_SITE(), nullptr);

  Thread Merge(
      [&] {
        DLF_SCOPE("rwlockAbba::merge");
        // Read-side holds can coexist, so the two inversion windows are
        // not mutually exclusive the way a mutex ABBA's are: without real
        // separation both threads sit in their windows together and the
        // plain program deadlocks outright. Enter well after scan has
        // drained its (nanosecond-wide) window; under the Active
        // scheduler this is an ordinary two-point stagger and Phase II
        // overlaps the windows by pausing scan instead.
        staggerWall(2, 3000);
        RwReadGuard Gate(Registry, DLF_NAMED_SITE("merge::gate/registry"));
        RwReadGuard From(TableB, DLF_NAMED_SITE("merge::from/tableB"));
        stagger(1);
        RwWriteGuard To(TableA, DLF_NAMED_SITE("merge::to/tableA"));
        RowsA += RowsB;
      },
      "rwlockAbba.merge", DLF_SITE(), nullptr);

  Scan.join();
  Merge.join();
}
