//===- substrates/workloads/Workloads.h - Deadlock-free workloads -*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four deadlock-free benchmarks of the paper's Table 1 — cache4j,
/// sor, hedc and jspider — as C++ workloads. iGoodlock reports zero
/// potential cycles on all of them (their lock disciplines are clean), so
/// they exercise the instrumentation overhead columns and the analysis's
/// no-false-alarm behaviour on healthy programs:
///
///  * cache4j  — a thread-safe object cache: one global cache monitor,
///               readers + writers, no nested locking.
///  * sor      — successive over-relaxation: data-parallel grid sweeps with
///               a counter barrier; single-lock critical sections only.
///  * hedc     — a meta-search/crawler: task queue + per-task locks,
///               always acquired queue-before-task (consistent order).
///  * jspider  — a web spider: per-host locks acquired in global host-id
///               order (ordered pairs, never inverted).
///
//===----------------------------------------------------------------------===//

#ifndef DLF_SUBSTRATES_WORKLOADS_WORKLOADS_H
#define DLF_SUBSTRATES_WORKLOADS_WORKLOADS_H

namespace dlf {
namespace workloads {

/// Object-cache workload (no nested locks).
void runCache4j();

/// Successive over-relaxation workload (barrier + single locks).
void runSor();

/// Crawler workload (consistent queue->task order).
void runHedc();

/// Spider workload (host locks in global order).
void runJSpider();

/// Gate-protected ABBA: inverted account-lock orders, both under one
/// ledger gate, so the cycle exists in the dependency relation (when the
/// closure keeps guarded cycles) but can never be scheduled.
void runGuarded();

/// Reader-held ABBA over rwlocks: inverted write acquisitions under
/// read-held tables and a read-held registry. A real deadlock that a
/// mutex-only model would discard as gate-guarded — only read-read
/// non-exclusion keeps (and schedules) the cycle.
void runRwlockAbba();

/// Lost-wakeup + lock-order hybrid: a cond-wait's reacquire of the state
/// lock (with the journal held) inverts against an append that takes the
/// journal under the state lock. No plain-mutex inversion exists; the
/// cycle manifests only through the wait's release/wakeup/reacquire.
void runCondvarHybrid();

} // namespace workloads
} // namespace dlf

#endif // DLF_SUBSTRATES_WORKLOADS_WORKLOADS_H
