//===- substrates/workloads/Guarded.cpp - Gate-protected ABBA --------------===//

#include "substrates/workloads/Workloads.h"

#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"
#include "substrates/Stagger.h"

using namespace dlf;

// The canonical gate-lock pattern: two threads invert the acquisition order
// of the account monitors (ABBA), but both hold the same ledger gate across
// the inversion, so the interleaving that would deadlock cannot be
// scheduled. iGoodlock's default closure discards the cycle outright
// (held-set disjointness); with KeepGuardedCycles the cycle surfaces and the
// guard pruner must classify it Guarded with the ledger named as witness.
void workloads::runGuarded() {
  DLF_SCOPE("workloads::runGuarded");
  Mutex Ledger("ledger", DLF_SITE(), nullptr);
  Mutex AccountA("accountA", DLF_SITE(), nullptr);
  Mutex AccountB("accountB", DLF_SITE(), nullptr);
  int BalanceA = 100;
  int BalanceB = 100;

  Thread Debit(
      [&] {
        DLF_SCOPE("guarded::debit");
        stagger(2);
        MutexGuard Gate(Ledger, DLF_NAMED_SITE("debit::gate/ledger"));
        MutexGuard First(AccountA, DLF_NAMED_SITE("debit::from/accountA"));
        stagger(1);
        MutexGuard Second(AccountB, DLF_NAMED_SITE("debit::to/accountB"));
        BalanceA -= 10;
        BalanceB += 10;
      },
      "guarded.debit", DLF_SITE(), nullptr);

  Thread Credit(
      [&] {
        DLF_SCOPE("guarded::credit");
        stagger(2);
        MutexGuard Gate(Ledger, DLF_NAMED_SITE("credit::gate/ledger"));
        MutexGuard First(AccountB, DLF_NAMED_SITE("credit::from/accountB"));
        stagger(1);
        MutexGuard Second(AccountA, DLF_NAMED_SITE("credit::to/accountA"));
        BalanceB -= 10;
        BalanceA += 10;
      },
      "guarded.credit", DLF_SITE(), nullptr);

  Debit.join();
  Credit.join();
}
