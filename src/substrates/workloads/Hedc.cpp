//===- substrates/workloads/Hedc.cpp - Meta-crawler workload ---------------===//

#include "substrates/workloads/Workloads.h"

#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"
#include "substrates/Stagger.h"

#include <memory>
#include <string>
#include <vector>

using namespace dlf;

namespace {

/// A crawl task with its own monitor; always locked *after* the queue
/// monitor (consistent global order -> no cycles).
struct CrawlTask {
  explicit CrawlTask(unsigned Id, const void *Owner)
      : Monitor("task#" + std::to_string(Id), DLF_SITE(), Owner), Id(Id) {}
  Mutex Monitor;
  unsigned Id;
  bool Done = false;
  unsigned Results = 0;
};

/// The shared task pool (hedc's MetaSearch dispatcher).
class TaskPool {
public:
  explicit TaskPool(unsigned TaskCount)
      : Monitor("taskQueue", DLF_SITE(), nullptr) {
    DLF_NEW_OBJECT(this, nullptr);
    for (unsigned I = 0; I != TaskCount; ++I)
      Tasks.push_back(std::make_unique<CrawlTask>(I, this));
  }

  /// Claims the next unfinished task and processes it under queue-then-task
  /// nesting (one consistent order everywhere).
  bool processNext() {
    DLF_SCOPE("TaskPool::processNext");
    MutexGuard Queue(Monitor, DLF_NAMED_SITE("TaskPool::claim/queue"));
    for (auto &Task : Tasks) {
      MutexGuard TaskGuard(Task->Monitor,
                           DLF_NAMED_SITE("TaskPool::claim/task"));
      if (Task->Done)
        continue;
      Task->Done = true;
      Task->Results = Task->Id * 3 + 1;
      return true;
    }
    return false;
  }

  size_t taskCount() const { return Tasks.size(); }

private:
  Mutex Monitor;
  std::vector<std::unique_ptr<CrawlTask>> Tasks;
};

} // namespace

void workloads::runHedc() {
  DLF_SCOPE("workloads::runHedc");
  TaskPool Pool(/*TaskCount=*/9);

  std::vector<Thread> Workers;
  for (unsigned W = 0; W != 3; ++W) {
    Workers.emplace_back(Thread(
        [&Pool, W] {
          DLF_SCOPE("hedc::worker");
          stagger(W);
          while (Pool.processNext())
            stagger(1);
        },
        "hedc.worker" + std::to_string(W), DLF_SITE(), &Pool));
  }
  for (Thread &Worker : Workers)
    Worker.join();
}
