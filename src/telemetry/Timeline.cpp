//===- telemetry/Timeline.cpp - Chrome trace-event timeline ----------------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Timeline.h"

#include "telemetry/Metrics.h"

#include <chrono>
#include <cstdio>

namespace dlf {
namespace telemetry {

namespace {

/// A capped trace used to be visible only as a too-small output file;
/// counting drops in the registry makes it visible at scrape time. The
/// handle is interned once — the drop path is rare, but there is no
/// reason to hammer the registry mutex from it either.
void countDroppedEvent() {
  static Counter DroppedTotal =
      Registry::global().counter("dlf_timeline_dropped_total");
  DroppedTotal.inc();
}

uint64_t monotonicNowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

void jsonEscapeTo(std::string &Out, const std::string &S) {
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        Out += Buf;
      } else {
        Out += Ch;
      }
    }
  }
}

void appendMeta(std::string &Out, bool &First, const char *MetaName,
                const char *ArgKey, uint32_t Pid, uint32_t Tid,
                const std::string &Value) {
  if (!First)
    Out += ",\n";
  First = false;
  Out += "{\"ph\":\"M\",\"name\":\"";
  Out += MetaName;
  Out += "\",\"pid\":";
  Out += std::to_string(Pid);
  Out += ",\"tid\":";
  Out += std::to_string(Tid);
  Out += ",\"args\":{\"";
  Out += ArgKey;
  Out += "\":\"";
  jsonEscapeTo(Out, Value);
  Out += "\"}}";
}

} // namespace

Timeline::Timeline() : EpochNs(monotonicNowNs()) {}

Timeline &Timeline::global() {
  // Deliberately leaked: instant() may run from detached threads during
  // process teardown.
  static Timeline *G = new Timeline();
  return *G;
}

uint64_t Timeline::nowUs() const {
  uint64_t Now = monotonicNowNs();
  return Now > EpochNs ? (Now - EpochNs) / 1000 : 0;
}

void Timeline::instant(const std::string &Name, uint32_t Tid) {
  if (!enabled())
    return;
  uint64_t Ts = nowUs();
  std::lock_guard<std::mutex> Lk(Mu);
  if (Events.size() >= MaxEvents) {
    ++Dropped;
    countDroppedEvent();
    return;
  }
  Events.push_back(TraceEvent{'i', 0, Tid, Ts, 0, Name});
}

void Timeline::complete(const std::string &Name, uint32_t Tid,
                        uint64_t StartUs, uint64_t EndUs) {
  if (!enabled())
    return;
  if (EndUs < StartUs)
    EndUs = StartUs;
  std::lock_guard<std::mutex> Lk(Mu);
  if (Events.size() >= MaxEvents) {
    ++Dropped;
    countDroppedEvent();
    return;
  }
  Events.push_back(TraceEvent{'X', 0, Tid, StartUs, EndUs - StartUs, Name});
}

void Timeline::nameThread(uint32_t Tid, const std::string &Name) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lk(Mu);
  ThreadNames[Tid] = Name;
}

uint64_t Timeline::dropped() const {
  std::lock_guard<std::mutex> Lk(Mu);
  return Dropped;
}

void Timeline::setMaxEvents(size_t Cap) {
  std::lock_guard<std::mutex> Lk(Mu);
  MaxEvents = Cap;
}

void Timeline::reset() {
  std::lock_guard<std::mutex> Lk(Mu);
  Events.clear();
  ThreadNames.clear();
  Dropped = 0;
  EpochNs = monotonicNowNs();
}

void Timeline::take(std::vector<TraceEvent> &OutEvents,
                    std::map<uint32_t, std::string> &OutThreadNames) {
  std::lock_guard<std::mutex> Lk(Mu);
  OutEvents = std::move(Events);
  OutThreadNames = std::move(ThreadNames);
  Events.clear();
  ThreadNames.clear();
}

std::string Timeline::renderChromeTrace(
    const std::vector<TraceEvent> &Events,
    const std::map<uint32_t, std::string> &ProcessNames,
    const std::map<uint64_t, std::string> &ThreadNames) {
  std::string Out;
  Out.reserve(Events.size() * 96 + 256);
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool First = true;
  for (const auto &KV : ProcessNames)
    appendMeta(Out, First, "process_name", "name", KV.first, 0, KV.second);
  for (const auto &KV : ThreadNames)
    appendMeta(Out, First, "thread_name", "name",
               uint32_t(KV.first >> 32), uint32_t(KV.first & 0xffffffffu),
               KV.second);
  for (const TraceEvent &E : Events) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "{\"ph\":\"";
    Out += E.Ph;
    Out += "\",\"name\":\"";
    jsonEscapeTo(Out, E.Name);
    Out += "\",\"pid\":";
    Out += std::to_string(E.Pid);
    Out += ",\"tid\":";
    Out += std::to_string(E.Tid);
    Out += ",\"ts\":";
    Out += std::to_string(E.TsUs);
    if (E.Ph == 'X') {
      Out += ",\"dur\":";
      Out += std::to_string(E.DurUs);
    } else if (E.Ph == 'i') {
      // Thread-scoped instants render as small arrows in the lane.
      Out += ",\"s\":\"t\"";
    }
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

bool Timeline::writeChromeTrace(
    const std::string &Path, const std::vector<TraceEvent> &Events,
    const std::map<uint32_t, std::string> &ProcessNames,
    const std::map<uint64_t, std::string> &ThreadNames, std::string &Err) {
  std::string Body = renderChromeTrace(Events, ProcessNames, ThreadNames);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    Err = "cannot open timeline output '" + Path + "'";
    return false;
  }
  bool Ok = std::fwrite(Body.data(), 1, Body.size(), F) == Body.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok)
    Err = "short write to timeline output '" + Path + "'";
  return Ok;
}

} // namespace telemetry
} // namespace dlf
