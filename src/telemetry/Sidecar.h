//===- telemetry/Sidecar.h - cross-process metrics hand-off ------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-process telemetry aggregation. Sandboxed Phase II children are
/// given a sidecar path via the DLF_METRICS_SIDECAR environment variable;
/// at exit they serialize their metrics snapshot and timeline events to
/// that file, and the campaign parent merges committed children's
/// sidecars into the campaign-level report.
///
/// The format is deliberately line-based text rather than JSON: a child
/// killed mid-write (timeout, rlimit, crash) leaves a truncated file, and
/// a truncated line-based file still yields every complete line. A
/// trailing "end" marker distinguishes clean files from partial ones —
/// partial files are merged as far as they go and counted in
/// dlf_campaign_sidecars_missing_total, never treated as campaign
/// failures.
///
/// Grammar (space-separated tokens; names must not contain whitespace,
/// writeSidecar sanitizes them):
///
///   # dlf-metrics-sidecar v1
///   c <name> <value>                       counter
///   g <name> <value>                       gauge
///   h <name> <count> <sum> <idx>:<val>...  histogram (sparse buckets)
///   e <ph> <pid> <tid> <ts> <dur> <name-to-end-of-line>   trace event
///   n <tid> <name-to-end-of-line>          thread display name
///   end
///
//===----------------------------------------------------------------------===//

#ifndef DLF_TELEMETRY_SIDECAR_H
#define DLF_TELEMETRY_SIDECAR_H

#include "telemetry/Metrics.h"
#include "telemetry/Timeline.h"

#include <map>
#include <string>
#include <vector>

namespace dlf {
namespace telemetry {

/// Environment variable naming the sidecar path a child should dump to.
inline constexpr const char *SidecarEnvVar = "DLF_METRICS_SIDECAR";

/// Serializes \p Snap plus \p Events / \p ThreadNames to \p Path.
/// Returns false on I/O error.
bool writeSidecar(const std::string &Path, const MetricsSnapshot &Snap,
                  const std::vector<TraceEvent> &Events,
                  const std::map<uint32_t, std::string> &ThreadNames);

/// Parses \p Path, accumulating into the outputs (Snap merges, Events
/// appends). Returns false only when the file cannot be opened or the
/// header is wrong; a truncated tail parses as far as it goes. *Complete
/// (optional) reports whether the trailing "end" marker was seen.
bool readSidecar(const std::string &Path, MetricsSnapshot &Snap,
                 std::vector<TraceEvent> &Events,
                 std::map<uint32_t, std::string> &ThreadNames,
                 bool *Complete = nullptr);

/// Called by a forked child that inherited live telemetry: zeroes the
/// global registry and timeline so parent-side values are not
/// double-counted when this child's sidecar is merged back.
void beginChildTelemetry();

/// Called at child exit (or from the preload shutdown hook): if
/// DLF_METRICS_SIDECAR is set and telemetry is enabled, dumps the global
/// registry + timeline to the sidecar path.
void flushChildTelemetry();

} // namespace telemetry
} // namespace dlf

#endif // DLF_TELEMETRY_SIDECAR_H
