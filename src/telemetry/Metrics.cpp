//===- telemetry/Metrics.cpp - Low-overhead metrics registry ----------------===//

#include "telemetry/Metrics.h"

#include <algorithm>
#include <bit>
#include <mutex>
#include <sstream>

using namespace dlf;
using namespace dlf::telemetry;

std::atomic<bool> detail::GEnabled{false};

void dlf::telemetry::setEnabled(bool On) {
  detail::GEnabled.store(On, std::memory_order_relaxed);
}

unsigned dlf::telemetry::histBucketFor(uint64_t V) {
  if (V == 0)
    return 0;
  unsigned B = static_cast<unsigned>(std::bit_width(V));
  return std::min(B, HistBucketCount - 1);
}

uint64_t dlf::telemetry::histBucketUpperBound(unsigned B) {
  if (B == 0)
    return 0;
  if (B >= HistBucketCount - 1)
    return UINT64_MAX;
  return (uint64_t(1) << B) - 1;
}

// -- Core / shards -----------------------------------------------------------

namespace dlf {
namespace telemetry {
namespace detail {

/// One thread's private value arrays. Atomics with relaxed ordering: the
/// owning thread is the only writer, snapshot() the only other reader, so
/// there is no contention — the atomics exist to make the cross-thread
/// reads well-defined, not to synchronize.
struct Shard {
  std::array<std::atomic<uint64_t>, Registry::MaxCounters> Counters;
  struct Hist {
    std::array<std::atomic<uint64_t>, HistBucketCount> Buckets;
    std::atomic<uint64_t> Count;
    std::atomic<uint64_t> Sum;
  };
  std::array<Hist, Registry::MaxHistograms> Hists;

  Shard() { zero(); }
  void zero() {
    for (auto &C : Counters)
      C.store(0, std::memory_order_relaxed);
    for (Hist &H : Hists) {
      for (auto &B : H.Buckets)
        B.store(0, std::memory_order_relaxed);
      H.Count.store(0, std::memory_order_relaxed);
      H.Sum.store(0, std::memory_order_relaxed);
    }
  }
};

/// The registry lock is deliberately NOT a std::mutex. The LD_PRELOAD
/// interposer calls into telemetry both from interposed entry points and
/// from thread-exit TLS destructors (ThreadShards below retires under this
/// lock). A std::mutex would route through the interposed
/// pthread_mutex_lock; in contexts where the interposer's reentrancy flag
/// is not set (TLS destruction runs outside any interposed call), the
/// instrumented path acquires the real mutex and then re-enters the
/// registry to count the event — a guaranteed self-deadlock on this very
/// lock. A raw spinlock never touches pthread, so the interposer never
/// sees it. Contention is registration/snapshot/retire only (writers go to
/// lock-free shards), so spinning is also the right perf trade.
struct SpinMutex {
  std::atomic_flag F = ATOMIC_FLAG_INIT;
  void lock() {
    while (F.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
  }
  void unlock() { F.clear(std::memory_order_release); }
};

/// Shared state of one Registry. Held by shared_ptr from the Registry and
/// from every thread-local shard entry, so a shard outliving its Registry
/// (a thread that exits later) still has somewhere safe to retire into.
struct Core {
  mutable SpinMutex Mu;
  std::vector<std::string> CounterNames;
  std::vector<std::string> GaugeNames;
  std::vector<std::string> HistNames;
  std::array<std::atomic<int64_t>, Registry::MaxGauges> Gauges;
  /// Totals folded in by exited threads.
  std::array<uint64_t, Registry::MaxCounters> RetiredCounters{};
  std::array<HistogramData, Registry::MaxHistograms> RetiredHists{};
  std::vector<Shard *> Shards; ///< live thread shards
  /// Alias of the owning shared_ptr, so handles (which carry a raw Core*)
  /// can hand new threads a strong reference for their shard entry. Reset
  /// by ~Registry to break the cycle; global() never resets it.
  std::shared_ptr<Core> SelfRef;

  Core() {
    for (auto &G : Gauges)
      G.store(0, std::memory_order_relaxed);
  }

  Shard &localShard(const std::shared_ptr<Core> &Self);
  void retire(Shard *S);
};

namespace {

/// Everything one thread owns across all registries it ever touched.
/// Destroyed at thread exit: each shard's values are folded into its
/// core's retired totals.
struct ThreadShards {
  struct Entry {
    std::shared_ptr<Core> C;
    std::unique_ptr<Shard> S;
  };
  std::vector<Entry> Entries;

  ~ThreadShards() {
    for (Entry &E : Entries)
      E.C->retire(E.S.get());
  }
};

thread_local ThreadShards TLShards;
/// One-element cache so the hot path (always the same registry) skips the
/// vector search.
thread_local Core *TLCachedCore = nullptr;
thread_local Shard *TLCachedShard = nullptr;

} // namespace

Shard &Core::localShard(const std::shared_ptr<Core> &Self) {
  if (TLCachedCore == this)
    return *TLCachedShard;
  for (ThreadShards::Entry &E : TLShards.Entries) {
    if (E.C.get() == this) {
      TLCachedCore = this;
      TLCachedShard = E.S.get();
      return *E.S;
    }
  }
  auto S = std::make_unique<Shard>();
  Shard *Raw = S.get();
  {
    std::lock_guard<detail::SpinMutex> Lock(Mu);
    Shards.push_back(Raw);
  }
  TLShards.Entries.push_back({Self, std::move(S)});
  TLCachedCore = this;
  TLCachedShard = Raw;
  return *Raw;
}

void Core::retire(Shard *S) {
  std::lock_guard<detail::SpinMutex> Lock(Mu);
  for (size_t I = 0; I != CounterNames.size(); ++I)
    RetiredCounters[I] += S->Counters[I].load(std::memory_order_relaxed);
  for (size_t I = 0; I != HistNames.size(); ++I) {
    HistogramData &D = RetiredHists[I];
    const Shard::Hist &H = S->Hists[I];
    for (unsigned B = 0; B != HistBucketCount; ++B)
      D.Buckets[B] += H.Buckets[B].load(std::memory_order_relaxed);
    D.Count += H.Count.load(std::memory_order_relaxed);
    D.Sum += H.Sum.load(std::memory_order_relaxed);
  }
  Shards.erase(std::remove(Shards.begin(), Shards.end(), S), Shards.end());
  if (TLCachedCore == this) {
    TLCachedCore = nullptr;
    TLCachedShard = nullptr;
  }
}

} // namespace detail
} // namespace telemetry
} // namespace dlf

using detail::Core;
using detail::Shard;

// -- Handles -----------------------------------------------------------------

void Counter::inc(uint64_t N) const {
  if (!enabled() || !C)
    return;
  // The shared_ptr self-reference lives in the Registry; handles carry the
  // raw pointer. Finding the shard needs the owning shared_ptr only on the
  // first touch per thread, so reconstruct it from the registry-side alias
  // stored in the core (see Registry ctor).
  Shard &S = C->localShard(C->SelfRef);
  S.Counters[Idx].fetch_add(N, std::memory_order_relaxed);
}

void Gauge::set(int64_t V) const {
  if (!enabled() || !C)
    return;
  C->Gauges[Idx].store(V, std::memory_order_relaxed);
}

void Gauge::add(int64_t Delta) const {
  if (!enabled() || !C)
    return;
  C->Gauges[Idx].fetch_add(Delta, std::memory_order_relaxed);
}

void Histogram::observe(uint64_t V) const {
  if (!enabled() || !C)
    return;
  Shard &S = C->localShard(C->SelfRef);
  Shard::Hist &H = S.Hists[Idx];
  H.Buckets[histBucketFor(V)].fetch_add(1, std::memory_order_relaxed);
  H.Count.fetch_add(1, std::memory_order_relaxed);
  H.Sum.fetch_add(V, std::memory_order_relaxed);
}

// -- Registry ----------------------------------------------------------------

Registry::Registry() : C(std::make_shared<Core>()) { C->SelfRef = C; }

Registry::~Registry() {
  // Break the self-reference cycle; the core stays alive through any
  // thread-local shard entries until those threads exit.
  C->SelfRef.reset();
}

Registry &Registry::global() {
  // Leaked singleton: handles and shards may be used during static
  // destruction (thread exit order is unspecified).
  static Registry *G = new Registry();
  return *G;
}

Counter Registry::counter(const std::string &Name) {
  std::lock_guard<detail::SpinMutex> Lock(C->Mu);
  auto It = std::find(C->CounterNames.begin(), C->CounterNames.end(), Name);
  if (It != C->CounterNames.end())
    return Counter(C.get(),
                   static_cast<uint32_t>(It - C->CounterNames.begin()));
  if (C->CounterNames.size() >= MaxCounters)
    return Counter(); // full: no-op handle rather than racy growth
  C->CounterNames.push_back(Name);
  return Counter(C.get(), static_cast<uint32_t>(C->CounterNames.size() - 1));
}

Gauge Registry::gauge(const std::string &Name) {
  std::lock_guard<detail::SpinMutex> Lock(C->Mu);
  auto It = std::find(C->GaugeNames.begin(), C->GaugeNames.end(), Name);
  if (It != C->GaugeNames.end())
    return Gauge(C.get(), static_cast<uint32_t>(It - C->GaugeNames.begin()));
  if (C->GaugeNames.size() >= MaxGauges)
    return Gauge();
  C->GaugeNames.push_back(Name);
  return Gauge(C.get(), static_cast<uint32_t>(C->GaugeNames.size() - 1));
}

Histogram Registry::histogram(const std::string &Name) {
  std::lock_guard<detail::SpinMutex> Lock(C->Mu);
  auto It = std::find(C->HistNames.begin(), C->HistNames.end(), Name);
  if (It != C->HistNames.end())
    return Histogram(C.get(),
                     static_cast<uint32_t>(It - C->HistNames.begin()));
  if (C->HistNames.size() >= MaxHistograms)
    return Histogram();
  C->HistNames.push_back(Name);
  return Histogram(C.get(),
                   static_cast<uint32_t>(C->HistNames.size() - 1));
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot Out;
  std::lock_guard<detail::SpinMutex> Lock(C->Mu);
  for (size_t I = 0; I != C->CounterNames.size(); ++I) {
    uint64_t Total = C->RetiredCounters[I];
    for (Shard *S : C->Shards)
      Total += S->Counters[I].load(std::memory_order_relaxed);
    Out.Counters[C->CounterNames[I]] = Total;
  }
  for (size_t I = 0; I != C->GaugeNames.size(); ++I)
    Out.Gauges[C->GaugeNames[I]] =
        C->Gauges[I].load(std::memory_order_relaxed);
  for (size_t I = 0; I != C->HistNames.size(); ++I) {
    HistogramData D = C->RetiredHists[I];
    for (Shard *S : C->Shards) {
      const Shard::Hist &H = S->Hists[I];
      for (unsigned B = 0; B != HistBucketCount; ++B)
        D.Buckets[B] += H.Buckets[B].load(std::memory_order_relaxed);
      D.Count += H.Count.load(std::memory_order_relaxed);
      D.Sum += H.Sum.load(std::memory_order_relaxed);
    }
    Out.Histograms[C->HistNames[I]] = D;
  }
  return Out;
}

void Registry::reset() {
  std::lock_guard<detail::SpinMutex> Lock(C->Mu);
  C->RetiredCounters.fill(0);
  C->RetiredHists.fill(HistogramData{});
  for (auto &G : C->Gauges)
    G.store(0, std::memory_order_relaxed);
  for (Shard *S : C->Shards)
    S->zero();
}

// -- Snapshot merge / serialization ------------------------------------------

void HistogramData::observe(uint64_t V) {
  ++Buckets[histBucketFor(V)];
  ++Count;
  Sum += V;
}

void MetricsSnapshot::merge(const MetricsSnapshot &Other) {
  for (const auto &KV : Other.Counters)
    Counters[KV.first] += KV.second;
  for (const auto &KV : Other.Gauges) {
    auto [It, New] = Gauges.try_emplace(KV.first, KV.second);
    if (!New)
      It->second = std::max(It->second, KV.second);
  }
  for (const auto &KV : Other.Histograms) {
    HistogramData &D = Histograms[KV.first];
    for (unsigned B = 0; B != HistBucketCount; ++B)
      D.Buckets[B] += KV.second.Buckets[B];
    D.Count += KV.second.Count;
    D.Sum += KV.second.Sum;
  }
}

namespace {

void jsonEscapeTo(std::ostringstream &OS, const std::string &S) {
  OS << '"';
  for (char Ch : S) {
    if (Ch == '"' || Ch == '\\')
      OS << '\\' << Ch;
    else if (static_cast<unsigned char>(Ch) < 0x20)
      OS << "\\u00" << "0123456789abcdef"[(Ch >> 4) & 0xF]
         << "0123456789abcdef"[Ch & 0xF];
    else
      OS << Ch;
  }
  OS << '"';
}

} // namespace

std::string MetricsSnapshot::toJson() const {
  std::ostringstream OS;
  OS << "{\"dlf_metrics\":1,\"counters\":{";
  bool First = true;
  for (const auto &KV : Counters) {
    if (!First)
      OS << ',';
    First = false;
    jsonEscapeTo(OS, KV.first);
    OS << ':' << KV.second;
  }
  OS << "},\"gauges\":{";
  First = true;
  for (const auto &KV : Gauges) {
    if (!First)
      OS << ',';
    First = false;
    jsonEscapeTo(OS, KV.first);
    OS << ':' << KV.second;
  }
  OS << "},\"histograms\":{";
  First = true;
  for (const auto &KV : Histograms) {
    if (!First)
      OS << ',';
    First = false;
    jsonEscapeTo(OS, KV.first);
    OS << ":{\"count\":" << KV.second.Count << ",\"sum\":" << KV.second.Sum
       << ",\"buckets\":{";
    bool FirstB = true;
    for (unsigned B = 0; B != HistBucketCount; ++B) {
      if (!KV.second.Buckets[B])
        continue;
      if (!FirstB)
        OS << ',';
      FirstB = false;
      OS << '"' << B << "\":" << KV.second.Buckets[B];
    }
    OS << "}}";
  }
  OS << "}}\n";
  return OS.str();
}

std::string MetricsSnapshot::toPrometheus() const {
  std::ostringstream OS;
  for (const auto &KV : Counters) {
    OS << "# TYPE " << KV.first << " counter\n"
       << KV.first << ' ' << KV.second << '\n';
  }
  for (const auto &KV : Gauges) {
    OS << "# TYPE " << KV.first << " gauge\n"
       << KV.first << ' ' << KV.second << '\n';
  }
  for (const auto &KV : Histograms) {
    OS << "# TYPE " << KV.first << " histogram\n";
    // Cumulative le-buckets; the last bucket is always the explicit +Inf
    // one so scrapers see a complete histogram even when empty.
    uint64_t Cum = 0;
    for (unsigned B = 0; B != HistBucketCount - 1; ++B) {
      if (!KV.second.Buckets[B])
        continue;
      Cum += KV.second.Buckets[B];
      OS << KV.first << "_bucket{le=\"" << histBucketUpperBound(B) << "\"} "
         << Cum << '\n';
    }
    OS << KV.first << "_bucket{le=\"+Inf\"} " << KV.second.Count << '\n';
    OS << KV.first << "_sum " << KV.second.Sum << '\n'
       << KV.first << "_count " << KV.second.Count << '\n';
  }
  return OS.str();
}
