//===- telemetry/Sidecar.cpp - cross-process metrics hand-off --------------===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Sidecar.h"

#include "faultinject/FaultInject.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

namespace dlf {
namespace telemetry {

namespace {

/// Sidecar names are space-separated tokens; replace whitespace so a
/// hostile metric name cannot desynchronize the line grammar.
std::string sanitizeToken(const std::string &Name) {
  if (Name.empty())
    return std::string(1, '_');
  std::string Out = Name;
  for (char &Ch : Out)
    if (Ch == ' ' || Ch == '\t' || Ch == '\n' || Ch == '\r')
      Ch = '_';
  return Out;
}

constexpr const char *HeaderLine = "# dlf-metrics-sidecar v1";

bool parseU64(const std::string &Tok, uint64_t &Out) {
  if (Tok.empty())
    return false;
  uint64_t V = 0;
  for (char Ch : Tok) {
    if (Ch < '0' || Ch > '9')
      return false;
    V = V * 10 + uint64_t(Ch - '0');
  }
  Out = V;
  return true;
}

bool parseI64(const std::string &Tok, int64_t &Out) {
  bool Neg = !Tok.empty() && Tok[0] == '-';
  uint64_t Mag = 0;
  if (!parseU64(Neg ? Tok.substr(1) : Tok, Mag))
    return false;
  Out = Neg ? -int64_t(Mag) : int64_t(Mag);
  return true;
}

} // namespace

bool writeSidecar(const std::string &Path, const MetricsSnapshot &Snap,
                  const std::vector<TraceEvent> &Events,
                  const std::map<uint32_t, std::string> &ThreadNames) {
  int Fault = faultinject::sidecarWriteFault();
  if (Fault == 2)
    return false; // sidecar.missing: the file is simply never produced
  std::string Body;
  Body.reserve(4096);
  Body += HeaderLine;
  Body += '\n';
  for (const auto &KV : Snap.Counters) {
    Body += "c ";
    Body += sanitizeToken(KV.first);
    Body += ' ';
    Body += std::to_string(KV.second);
    Body += '\n';
  }
  for (const auto &KV : Snap.Gauges) {
    Body += "g ";
    Body += sanitizeToken(KV.first);
    Body += ' ';
    Body += std::to_string(KV.second);
    Body += '\n';
  }
  for (const auto &KV : Snap.Histograms) {
    Body += "h ";
    Body += sanitizeToken(KV.first);
    Body += ' ';
    Body += std::to_string(KV.second.Count);
    Body += ' ';
    Body += std::to_string(KV.second.Sum);
    for (unsigned B = 0; B != HistBucketCount; ++B) {
      if (!KV.second.Buckets[B])
        continue;
      Body += ' ';
      Body += std::to_string(B);
      Body += ':';
      Body += std::to_string(KV.second.Buckets[B]);
    }
    Body += '\n';
  }
  for (const TraceEvent &E : Events) {
    Body += "e ";
    Body += E.Ph;
    Body += ' ';
    Body += std::to_string(E.Pid);
    Body += ' ';
    Body += std::to_string(E.Tid);
    Body += ' ';
    Body += std::to_string(E.TsUs);
    Body += ' ';
    Body += std::to_string(E.DurUs);
    Body += ' ';
    // Name runs to end of line; strip only newlines.
    std::string Name = E.Name;
    for (char &Ch : Name)
      if (Ch == '\n' || Ch == '\r')
        Ch = ' ';
    Body += Name;
    Body += '\n';
  }
  for (const auto &KV : ThreadNames) {
    Body += "n ";
    Body += std::to_string(KV.first);
    Body += ' ';
    std::string Name = KV.second;
    for (char &Ch : Name)
      if (Ch == '\n' || Ch == '\r')
        Ch = ' ';
    Body += Name;
    Body += '\n';
  }
  Body += "end\n";

  // sidecar.truncate: stop mid-file, as a child killed mid-write would —
  // the `end` marker never lands, so readers must treat the file as
  // partial. Exercises the truncation tolerance in readSidecar.
  size_t WriteBytes = Fault == 1 ? Body.size() / 2 : Body.size();

  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fwrite(Body.data(), 1, WriteBytes, F) == WriteBytes;
  Ok = std::fclose(F) == 0 && Ok;
  return Ok && Fault == 0;
}

bool readSidecar(const std::string &Path, MetricsSnapshot &Snap,
                 std::vector<TraceEvent> &Events,
                 std::map<uint32_t, std::string> &ThreadNames,
                 bool *Complete) {
  if (Complete)
    *Complete = false;
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  std::string Contents;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Contents.append(Buf, N);
  std::fclose(F);

  // The file may be truncated mid-line by a killed child: only lines
  // terminated by '\n' are trusted, so a partial final line is dropped.
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (true) {
    size_t Nl = Contents.find('\n', Pos);
    if (Nl == std::string::npos)
      break;
    Lines.push_back(Contents.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  if (Lines.empty() || Lines[0] != HeaderLine)
    return false;

  MetricsSnapshot Local;
  for (size_t LineNo = 1; LineNo < Lines.size(); ++LineNo) {
    const std::string &Line = Lines[LineNo];
    if (Line == "end") {
      if (Complete)
        *Complete = true;
      break;
    }
    std::istringstream LS(Line);
    std::string Kind;
    LS >> Kind;
    if (Kind == "c") {
      std::string Name, Val;
      LS >> Name >> Val;
      uint64_t V;
      if (!Name.empty() && parseU64(Val, V))
        Local.Counters[Name] += V;
    } else if (Kind == "g") {
      std::string Name, Val;
      LS >> Name >> Val;
      int64_t V;
      if (!Name.empty() && parseI64(Val, V)) {
        auto It = Local.Gauges.find(Name);
        if (It == Local.Gauges.end() || V > It->second)
          Local.Gauges[Name] = V;
      }
    } else if (Kind == "h") {
      std::string Name, CountTok, SumTok;
      LS >> Name >> CountTok >> SumTok;
      uint64_t Count, Sum;
      if (Name.empty() || !parseU64(CountTok, Count) ||
          !parseU64(SumTok, Sum))
        continue;
      HistogramData H;
      H.Count = Count;
      H.Sum = Sum;
      std::string Pair;
      bool Bad = false;
      while (LS >> Pair) {
        size_t Colon = Pair.find(':');
        uint64_t Idx, Val;
        if (Colon == std::string::npos ||
            !parseU64(Pair.substr(0, Colon), Idx) ||
            !parseU64(Pair.substr(Colon + 1), Val) ||
            Idx >= HistBucketCount) {
          Bad = true;
          break;
        }
        H.Buckets[Idx] = Val;
      }
      if (Bad)
        continue;
      HistogramData &Dst = Local.Histograms[Name];
      Dst.Count += H.Count;
      Dst.Sum += H.Sum;
      for (unsigned B = 0; B != HistBucketCount; ++B)
        Dst.Buckets[B] += H.Buckets[B];
    } else if (Kind == "e") {
      std::string PhTok, PidTok, TidTok, TsTok, DurTok;
      LS >> PhTok >> PidTok >> TidTok >> TsTok >> DurTok;
      uint64_t Pid, Tid, Ts, Dur;
      if (PhTok.size() != 1 || !parseU64(PidTok, Pid) ||
          !parseU64(TidTok, Tid) || !parseU64(TsTok, Ts) ||
          !parseU64(DurTok, Dur))
        continue;
      std::string Name;
      std::getline(LS, Name);
      if (!Name.empty() && Name[0] == ' ')
        Name.erase(0, 1);
      Events.push_back(TraceEvent{PhTok[0], uint32_t(Pid), uint32_t(Tid),
                                  Ts, Dur, Name});
    } else if (Kind == "n") {
      std::string TidTok;
      LS >> TidTok;
      uint64_t Tid;
      if (!parseU64(TidTok, Tid))
        continue;
      std::string Name;
      std::getline(LS, Name);
      if (!Name.empty() && Name[0] == ' ')
        Name.erase(0, 1);
      ThreadNames[uint32_t(Tid)] = Name;
    }
    // Unknown kinds are skipped for forward compatibility.
  }
  Snap.merge(Local);
  return true;
}

void beginChildTelemetry() {
  if (enabled())
    Registry::global().reset();
  if (Timeline::global().enabled())
    Timeline::global().reset();
}

void flushChildTelemetry() {
  const char *Path = std::getenv(SidecarEnvVar);
  if (!Path || !*Path)
    return;
  if (!enabled() && !Timeline::global().enabled())
    return;
  MetricsSnapshot Snap;
  if (enabled())
    Snap = Registry::global().snapshot();
  std::vector<TraceEvent> Events;
  std::map<uint32_t, std::string> ThreadNames;
  if (Timeline::global().enabled())
    Timeline::global().take(Events, ThreadNames);
  writeSidecar(Path, Snap, Events, ThreadNames);
}

} // namespace telemetry
} // namespace dlf
