//===- telemetry/Timeline.h - Chrome trace-event timeline --------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-memory event timeline serialized as Chrome trace-event JSON
/// (the "JSON Array Format" with a traceEvents wrapper), loadable in
/// about://tracing and Perfetto. The scheduler emits instant events
/// (pause / thrash / unpause-forced / deadlock-found) and "paused" /
/// "schedule" duration spans; the campaign runner adds one lane per
/// worker slot showing which (cycle, rep) each child executed.
///
/// Like the metrics registry, the timeline is off by default and every
/// recording call starts with one relaxed atomic load. Unlike metrics,
/// recording takes a mutex — timeline events are emitted at scheduler
/// decision points (already serialized under the scheduler lock) and at
/// campaign commit points, never in per-operation hot paths.
///
/// Timestamps are microseconds relative to the timeline epoch (reset()
/// re-arms the epoch); the campaign parent rebases child event times
/// into its own epoch when merging sidecars, so lanes line up.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_TELEMETRY_TIMELINE_H
#define DLF_TELEMETRY_TIMELINE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dlf {
namespace telemetry {

/// One trace event. Ph is the Chrome trace-event phase: 'i' (instant),
/// 'X' (complete span with DurUs). Metadata (process/thread names) is
/// carried separately and emitted as 'M' records at write time.
struct TraceEvent {
  char Ph = 'i';
  uint32_t Pid = 0;
  uint32_t Tid = 0;
  uint64_t TsUs = 0;
  uint64_t DurUs = 0;
  std::string Name;
};

class Timeline {
public:
  /// Default cap on buffered events; further events are counted in
  /// dropped() instead of stored, so a pathological run cannot OOM.
  static constexpr size_t DefaultMaxEvents = size_t(1) << 18;

  Timeline();

  static Timeline &global();

  bool enabled() const { return On.load(std::memory_order_relaxed); }
  void setEnabled(bool Enable) {
    On.store(Enable, std::memory_order_relaxed);
  }

  /// Microseconds since this timeline's epoch (monotonic clock).
  uint64_t nowUs() const;

  /// Record an instant event at nowUs(). No-ops when disabled.
  void instant(const std::string &Name, uint32_t Tid);
  /// Record a complete span [StartUs, EndUs]; clamps inverted ranges.
  void complete(const std::string &Name, uint32_t Tid, uint64_t StartUs,
                uint64_t EndUs);
  /// Attach a display name to (pid 0, Tid) — emitted as thread_name
  /// metadata. Recorded even while disabled is *not* supported; call
  /// after enabling.
  void nameThread(uint32_t Tid, const std::string &Name);

  uint64_t dropped() const;

  /// Overrides the buffered-event cap (tests exercise the drop path with
  /// a tiny cap). Does not evict events already buffered past a smaller
  /// cap.
  void setMaxEvents(size_t Cap);

  /// Clears buffered events and re-arms the epoch (used by forked
  /// children and tests). Does not change enabled().
  void reset();

  /// Moves out all buffered events and thread names.
  void take(std::vector<TraceEvent> &Events,
            std::map<uint32_t, std::string> &ThreadNames);

  /// Serializes \p Events (plus process/thread display names keyed by
  /// pid and (pid<<32|tid)) as a Chrome trace JSON file. Returns false
  /// and fills \p Err on I/O failure.
  static bool writeChromeTrace(
      const std::string &Path, const std::vector<TraceEvent> &Events,
      const std::map<uint32_t, std::string> &ProcessNames,
      const std::map<uint64_t, std::string> &ThreadNames, std::string &Err);

  /// Serializes events to the JSON string (same format as the file
  /// writer); exposed for tests.
  static std::string renderChromeTrace(
      const std::vector<TraceEvent> &Events,
      const std::map<uint32_t, std::string> &ProcessNames,
      const std::map<uint64_t, std::string> &ThreadNames);

private:
  std::atomic<bool> On{false};
  mutable std::mutex Mu;
  std::vector<TraceEvent> Events;
  std::map<uint32_t, std::string> ThreadNames;
  uint64_t EpochNs = 0;
  uint64_t Dropped = 0;
  size_t MaxEvents = DefaultMaxEvents;
};

} // namespace telemetry
} // namespace dlf

#endif // DLF_TELEMETRY_TIMELINE_H
