//===- telemetry/Metrics.h - Low-overhead metrics registry -------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide metrics registry with counters, gauges, and fixed
/// log-scale-bucket histograms, built for instrumenting the scheduler's
/// hot path:
///
///  * When telemetry is disabled (the default), every handle operation is
///    one relaxed atomic-bool load and a branch — no locks, no clock
///    reads, no allocation. The scheduler benchmarks must not move.
///  * When enabled, writes go to lock-free thread-local shards (each
///    thread touches only its own cache lines); a snapshot merges the
///    shards under the registry mutex. Writers never block.
///
/// Handles (Counter / Gauge / Histogram) are cheap POD-ish values interned
/// by name; registering the same name twice returns the same slot, so
/// static handles in different translation units agree. A handle must not
/// outlive the Registry that issued it (the global() registry never dies).
///
/// Determinism contract (DESIGN.md §10): counter values are sums of
/// per-event increments, so any commutative merge order yields the same
/// totals, and snapshots export in sorted-name order. Histograms of
/// wall-clock quantities and gauges are explicitly *not* claimed to be
/// reproducible across runs or --jobs values — only counters are.
///
/// fork() note: the campaign layer forks children while the process is
/// quiescent (no other live threads); a child calls Registry::reset() so
/// values inherited from the parent are not double-counted when its
/// sidecar snapshot is merged back (see telemetry/Sidecar.h).
///
//===----------------------------------------------------------------------===//

#ifndef DLF_TELEMETRY_METRICS_H
#define DLF_TELEMETRY_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dlf {
namespace telemetry {

namespace detail {
extern std::atomic<bool> GEnabled;
struct Core;
} // namespace detail

/// Global telemetry switch. Off by default; flipped on by --metrics-out /
/// --timeline-out (and inherited by forked children).
inline bool enabled() {
  return detail::GEnabled.load(std::memory_order_relaxed);
}
void setEnabled(bool On);

/// Number of histogram buckets. Bucket 0 holds the value 0; bucket b >= 1
/// holds [2^(b-1), 2^b - 1]; the last bucket absorbs everything above.
inline constexpr unsigned HistBucketCount = 64;

/// Log-scale bucket index for \p V (0 for 0, else bit width, capped).
unsigned histBucketFor(uint64_t V);

/// Inclusive upper bound of bucket \p B (UINT64_MAX for the last bucket,
/// rendered as +Inf in the Prometheus exposition).
uint64_t histBucketUpperBound(unsigned B);

/// Merged histogram contents.
struct HistogramData {
  std::array<uint64_t, HistBucketCount> Buckets{};
  uint64_t Count = 0;
  uint64_t Sum = 0;

  /// Adds one observation directly (offline aggregation; live recording
  /// goes through sharded Histogram handles instead).
  void observe(uint64_t V);
};

/// A point-in-time, already-merged view of a registry (or of several, via
/// merge()). Maps are name-sorted, so serialization is canonical.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, int64_t> Gauges;
  std::map<std::string, HistogramData> Histograms;

  /// Commutative merge: counters and histograms add; gauges (watermarks)
  /// take the maximum.
  void merge(const MetricsSnapshot &Other);

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Histograms.empty();
  }

  /// Deterministic JSON document (sorted keys, integral values).
  std::string toJson() const;
  /// Prometheus text exposition format (counters / gauges / histograms
  /// with cumulative le-buckets).
  std::string toPrometheus() const;
};

class Registry;

/// Monotonic counter handle. Invalid (default-constructed or overflowed
/// registry) handles no-op.
class Counter {
public:
  Counter() = default;
  void inc(uint64_t N = 1) const;

private:
  friend class Registry;
  Counter(detail::Core *C, uint32_t Idx) : C(C), Idx(Idx) {}
  detail::Core *C = nullptr;
  uint32_t Idx = 0;
};

/// Set/add gauge handle (stored centrally, not sharded: gauges are
/// last-write-wins watermarks, not accumulators).
class Gauge {
public:
  Gauge() = default;
  void set(int64_t V) const;
  void add(int64_t Delta) const;

private:
  friend class Registry;
  Gauge(detail::Core *C, uint32_t Idx) : C(C), Idx(Idx) {}
  detail::Core *C = nullptr;
  uint32_t Idx = 0;
};

/// Log-bucket histogram handle.
class Histogram {
public:
  Histogram() = default;
  void observe(uint64_t V) const;

private:
  friend class Registry;
  Histogram(detail::Core *C, uint32_t Idx) : C(C), Idx(Idx) {}
  detail::Core *C = nullptr;
  uint32_t Idx = 0;
};

/// A metrics registry. The distinguished global() instance backs the
/// runtime/scheduler/closure instrumentation; the campaign runner keeps a
/// private instance for parent-side counters so forked children (which
/// reset the global registry) can never double-count them.
class Registry {
public:
  /// Fixed shard capacities: registration past these returns a no-op
  /// handle instead of growing (growth would race with lock-free writers).
  static constexpr unsigned MaxCounters = 256;
  static constexpr unsigned MaxGauges = 64;
  static constexpr unsigned MaxHistograms = 64;

  Registry();
  ~Registry();
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  static Registry &global();

  /// Interns \p Name; the same name always maps to the same slot.
  Counter counter(const std::string &Name);
  Gauge gauge(const std::string &Name);
  Histogram histogram(const std::string &Name);

  /// Merges all thread shards (plus totals retired by exited threads)
  /// into a sorted snapshot. Values written by threads still running are
  /// read with relaxed loads; take snapshots at quiescent points when an
  /// exact count matters.
  MetricsSnapshot snapshot() const;

  /// Zeroes every value while keeping registrations (handles stay valid).
  /// Used by forked children and by tests.
  void reset();

private:
  std::shared_ptr<detail::Core> C;
};

} // namespace telemetry
} // namespace dlf

#endif // DLF_TELEMETRY_METRICS_H
