//===- runtime/Strategy.h - Scheduling strategy interface -------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision interface the active scheduler consults. The scheduler owns
/// all mechanics (token passing, the Paused set, thrash handling, the
/// livelock monitor); a strategy only answers the questions the paper's
/// algorithms parameterize:
///
///  * which enabled, non-paused thread runs next        (Algorithms 2 & 3)
///  * should the picked thread pause before an acquire  (Algorithm 3)
///  * should a thread yield before an acquire           (§4 optimization)
///  * should checkRealDeadlock run at acquires          (Algorithm 3 vs 2)
///
/// Concrete strategies live in src/fuzzer (SimpleRandomStrategy implements
/// Algorithm 2; DeadlockFuzzerStrategy implements Algorithm 3).
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RUNTIME_STRATEGY_H
#define DLF_RUNTIME_STRATEGY_H

#include "runtime/Records.h"
#include "support/Rng.h"

#include <vector>

namespace dlf {

/// Scheduling policy consulted by the active scheduler. All methods are
/// invoked with the scheduler lock held; implementations must not call back
/// into the runtime.
class SchedulerStrategy {
public:
  virtual ~SchedulerStrategy();

  /// Short name used in reports ("simple-random", "deadlock-fuzzer").
  virtual const char *name() const = 0;

  /// Picks the next thread to run among \p Candidates (never empty).
  /// Default: uniformly random, per the paper's schedulers.
  virtual size_t pickIndex(const std::vector<const ThreadRecord *> &Candidates,
                           Rng &R);

  /// Whether the scheduler should run checkRealDeadlock at every acquire
  /// (Algorithm 3 line 11). The simple random checker (Algorithm 2) detects
  /// deadlocks as stalls instead.
  virtual bool wantsDeadlockCheck() const { return false; }

  /// Called when \p T was picked and is about to execute the acquire of
  /// \p L; \p TentativeStack is T's lock stack *including* the pending
  /// entry (Algorithm 3's push-before-check). Return true to move T to the
  /// Paused set instead of executing.
  virtual bool shouldPause(const ThreadRecord &T, const LockRecord &L,
                           const std::vector<LockStackEntry> &TentativeStack) {
    return false;
  }

  /// Called when \p T has announced an acquire of \p L at \p Site while
  /// holding no relevant context yet. Return true to make T yield (be
  /// deprioritized for a bounded number of rounds) per the §4 optimization.
  virtual bool shouldYield(const ThreadRecord &T, const LockRecord &L,
                           Label Site) {
    return false;
  }
};

} // namespace dlf

#endif // DLF_RUNTIME_STRATEGY_H
