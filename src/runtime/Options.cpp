//===- runtime/Options.cpp - Per-execution configuration -------------------===//

#include "runtime/Options.h"

using namespace dlf;

const char *dlf::runModeName(RunMode Mode) {
  switch (Mode) {
  case RunMode::Passthrough:
    return "passthrough";
  case RunMode::Record:
    return "record";
  case RunMode::Active:
    return "active";
  }
  return "unknown";
}

const char *dlf::hbModeName(HbMode Mode) {
  switch (Mode) {
  case HbMode::Off:
    return "off";
  case HbMode::ForkJoin:
    return "fork-join";
  case HbMode::FullSync:
    return "full-sync";
  }
  return "unknown";
}
