//===- runtime/Result.h - Outcome of one managed execution ------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The outcome record of one execution under the runtime, including the
/// concrete deadlock witness when checkRealDeadlock (Algorithm 4) fired.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RUNTIME_RESULT_H
#define DLF_RUNTIME_RESULT_H

#include "event/Abstraction.h"
#include "event/Ids.h"
#include "event/Label.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dlf {

/// A concrete deadlock cycle found in one execution: thread i holds
/// HeldLock and waits to acquire WaitLock, which is held by thread i+1
/// (cyclically). Carries the abstractions and contexts so a witness can be
/// matched against the abstract cycle Phase II was targeting.
struct DeadlockWitness {
  struct Edge {
    ThreadId Thread;
    std::string ThreadName;
    AbstractionSet ThreadAbs;

    LockId WaitLock; ///< the lock this thread is trying to acquire
    std::string WaitLockName;
    AbstractionSet WaitLockAbs;
    Label WaitSite; ///< label of the blocking Acquire statement

    /// Context[t] at the blocking acquire (including WaitSite as the last
    /// element), mirroring the C_i of an iGoodlock cycle component.
    std::vector<Label> Context;
  };

  std::vector<Edge> Edges;

  /// Multi-line human-readable rendering.
  std::string toString() const;
};

/// Everything one managed execution reports back.
struct ExecutionResult {
  /// All threads finished; no abort.
  bool Completed = false;
  /// checkRealDeadlock confirmed a cycle ("Real Deadlock Found!").
  bool DeadlockFound = false;
  /// Enabled(s) became empty with live threads ("System Stall!"); set by
  /// the simple random checker and as a backstop in active mode.
  bool Stalled = false;
  /// The stall involves threads waiting on condition variables: a
  /// communication deadlock, which the paper scopes out ("we only consider
  /// resource deadlocks") but this implementation classifies.
  bool CommunicationStall = false;
  /// The MaxSteps safety net tripped.
  bool LivelockAborted = false;

  /// The concrete cycle, when DeadlockFound or when a stall's wait-for
  /// cycle could be reconstructed.
  std::optional<DeadlockWitness> Witness;

  /// Number of thrashings (paper §2.3): times the scheduler had to remove a
  /// random thread from Paused because every enabled thread was paused.
  uint64_t Thrashes = 0;
  /// Times the livelock monitor force-removed a long-paused thread.
  uint64_t ForcedUnpauses = 0;
  /// Times the active strategy paused a thread before an acquire.
  uint64_t Pauses = 0;
  /// Threads filtered from the pick set by yield-based filtering (§4).
  uint64_t Yields = 0;
  /// Scheduler transitions committed.
  uint64_t Steps = 0;
  /// Acquire events executed (0->1 transitions only).
  uint64_t AcquireEvents = 0;
  /// Failed tryLock probes: the thread observed the lock busy and bailed
  /// out without ever blocking (never a wait-for edge, never paused).
  uint64_t TryProbes = 0;
  /// Wall-clock duration of the execution in milliseconds.
  double WallMs = 0.0;
};

} // namespace dlf

#endif // DLF_RUNTIME_RESULT_H
