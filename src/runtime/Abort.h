//===- runtime/Abort.h - Managed execution teardown -------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// When the active scheduler confirms a deadlock (or detects a stall or a
/// livelock), the execution is torn down: every managed thread receives
/// ExecutionAborted at its next scheduling point and unwinds out of its
/// body. Substrate code must be exception-safe (RAII lock guards), which it
/// is by construction since it uses dlf::MutexGuard.
///
/// This is a deliberate, documented deviation from the no-exceptions rule of
/// the LLVM style guide (see DESIGN.md): the Java original unwinds threads
/// with exceptions for exactly this purpose, and the exception never escapes
/// the library boundary (dlf::Runtime::run catches it).
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RUNTIME_ABORT_H
#define DLF_RUNTIME_ABORT_H

namespace dlf {

/// Thrown at scheduling points of managed threads once a run has been
/// aborted. Carries no state: the reason lives in the ExecutionResult.
struct ExecutionAborted {};

} // namespace dlf

#endif // DLF_RUNTIME_ABORT_H
