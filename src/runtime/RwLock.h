//===- runtime/RwLock.h - Instrumented reader-writer lock -------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumented reader-writer lock primitive, widening the paper's
/// mutex-only synchronization alphabet. A dlf::RwLock shares the lock
/// registry and abstraction machinery with dlf::Mutex; the runtime tracks
/// acquisitions with a LockMode (Shared for the read side, Exclusive for
/// the write side) so the closure and checkRealDeadlock can apply
/// read-read non-exclusion while still treating any pair involving a
/// writer as conflicting.
///
/// Behaviour by runtime mode mirrors Mutex:
///  * no runtime / Passthrough — a plain std::shared_mutex;
///  * Record — a real shared_mutex plus event recording;
///  * Active — reader/writer state is modeled inside the scheduler
///    (LockRecord::Readers), so a paused writer is enabled only when the
///    reader set drains and a reader is enabled whenever no writer holds
///    the lock.
///
/// Not supported (asserted against): recursive read acquires, upgrades
/// (read -> write while holding) and downgrades. A pthread upgrade attempt
/// is a real single-lock self-deadlock, which Algorithm 4's distinct-locks
/// cycles cannot represent.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RUNTIME_RWLOCK_H
#define DLF_RUNTIME_RWLOCK_H

#include "event/Label.h"

#include <shared_mutex>
#include <string>

namespace dlf {

class Runtime;
struct LockRecord;

/// An instrumented reader-writer lock (non-recursive on both sides).
class RwLock {
public:
  /// \p Name is used in reports; \p Site should be the allocation site
  /// (DLF_SITE()) and \p Parent the owning object, feeding the §2.4
  /// abstractions. Binds to the runtime installed at construction time.
  explicit RwLock(const std::string &Name = "rwlock", Label Site = Label(),
                  const void *Parent = nullptr);
  ~RwLock();

  RwLock(const RwLock &) = delete;
  RwLock &operator=(const RwLock &) = delete;

  /// Acquires the write (exclusive) side.
  void lock(Label Site = Label());
  /// Non-blocking write acquire; a failed probe is a non-event for the
  /// wait-for analysis (counted, never blocking).
  bool tryLock(Label Site = Label());
  /// Releases the write side.
  void unlock();

  /// Acquires the read (shared) side.
  void lockShared(Label Site = Label());
  /// Non-blocking read acquire.
  bool tryLockShared(Label Site = Label());
  /// Releases the read side.
  void unlockShared();

  /// The analysis record, when bound to a runtime (tests / reports).
  const LockRecord *record() const { return Rec; }
  LockRecord *record() { return Rec; }

private:
  void acquire(Label Site, bool Shared);
  bool tryAcquire(Label Site, bool Shared);
  void releaseSide(bool Shared);

  Runtime *RT = nullptr;
  LockRecord *Rec = nullptr;

  /// Used in Passthrough and Record modes where the OS provides the
  /// exclusion. In Active mode the scheduler models the lock instead.
  std::shared_mutex Real;
};

/// RAII guard for the read side of a dlf::RwLock.
class RwReadGuard {
public:
  RwReadGuard(RwLock &L, Label Site) : L(L) { L.lockShared(Site); }
  ~RwReadGuard() { L.unlockShared(); }

  RwReadGuard(const RwReadGuard &) = delete;
  RwReadGuard &operator=(const RwReadGuard &) = delete;

private:
  RwLock &L;
};

/// RAII guard for the write side of a dlf::RwLock.
class RwWriteGuard {
public:
  RwWriteGuard(RwLock &L, Label Site) : L(L) { L.lock(Site); }
  ~RwWriteGuard() { L.unlock(); }

  RwWriteGuard(const RwWriteGuard &) = delete;
  RwWriteGuard &operator=(const RwWriteGuard &) = delete;

private:
  RwLock &L;
};

} // namespace dlf

#endif // DLF_RUNTIME_RWLOCK_H
