//===- runtime/Thread.h - Instrumented thread wrapper -----------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumented thread primitive. A dlf::Thread is a real std::thread
/// whose creation is a `new` event (giving the thread object its §2.4
/// abstractions, computed by the *creating* thread) and whose body is a
/// managed participant of the active scheduler. Join is a scheduling point:
/// the joining thread is disabled until the target finishes, matching the
/// paper's Enabled(s) definition.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RUNTIME_THREAD_H
#define DLF_RUNTIME_THREAD_H

#include "event/Label.h"

#include <functional>
#include <string>
#include <thread>

namespace dlf {

class Runtime;
struct ThreadRecord;

/// An instrumented thread. Move-only; joins on destruction if still
/// joinable (managed join first, then the OS join).
class Thread {
public:
  Thread() = default;

  /// Starts a thread running \p Fn. \p Site should be the creation site
  /// (DLF_SITE()) and \p Parent the object whose method creates the thread;
  /// both feed the abstraction engine.
  explicit Thread(std::function<void()> Fn, const std::string &Name = "thread",
                  Label Site = Label(), const void *Parent = nullptr);

  ~Thread();

  Thread(Thread &&Other) noexcept;
  Thread &operator=(Thread &&Other) noexcept;
  Thread(const Thread &) = delete;
  Thread &operator=(const Thread &) = delete;

  /// Waits for the thread to finish. In Active mode this is a managed
  /// scheduling point and may throw ExecutionAborted when the run is torn
  /// down (after the OS-level join has completed, so the object is safe to
  /// destroy).
  void join();

  bool joinable() const { return Os.joinable(); }

  /// The analysis record, when managed (tests / reports).
  const ThreadRecord *record() const { return Rec; }

private:
  static void body(Runtime &RT, ThreadRecord &Rec,
                   const std::function<void()> &Fn);

  Runtime *RT = nullptr;
  ThreadRecord *Rec = nullptr;
  std::thread Os;
};

} // namespace dlf

#endif // DLF_RUNTIME_THREAD_H
