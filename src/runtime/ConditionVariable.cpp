//===- runtime/ConditionVariable.cpp - Instrumented condition ---------------===//

#include "runtime/ConditionVariable.h"

#include "runtime/Records.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"

#include <cassert>

using namespace dlf;

ConditionVariable::ConditionVariable(const std::string &Name) {
  Runtime *Current = Runtime::current();
  if (!Current || Current->mode() != RunMode::Active)
    return; // Record/Passthrough delegate to the real condvar
  RT = Current;
  Rec = &RT->createCondRecord(Name);
}

void ConditionVariable::wait(Mutex &M, Label ReacquireSite) {
  if (RT && Rec && RT == Runtime::current() &&
      RT->mode() == RunMode::Active) {
    ThreadRecord *Self = RT->selfRecord();
    Scheduler *Sched = RT->scheduler();
    assert(Self && Sched && "managed wait off a managed thread");
    LockRecord *Lock = M.record();
    assert(Lock && "condition wait on an unmanaged lock in active mode");
    Sched->condWait(*Self, *Rec, *Lock, ReacquireSite);
    return;
  }
  // Record/Passthrough: condition_variable_any drives M.unlock()/M.lock(),
  // which keeps the recorder's bookkeeping consistent automatically.
  Real.wait(M);
}

void ConditionVariable::notifyOne() {
  if (RT && Rec && RT == Runtime::current() &&
      RT->mode() == RunMode::Active) {
    ThreadRecord *Self = RT->selfRecord();
    Scheduler *Sched = RT->scheduler();
    assert(Self && Sched && "managed notify off a managed thread");
    Sched->condNotify(*Self, *Rec, /*All=*/false);
    return;
  }
  Real.notify_one();
}

void ConditionVariable::notifyAll() {
  if (RT && Rec && RT == Runtime::current() &&
      RT->mode() == RunMode::Active) {
    ThreadRecord *Self = RT->selfRecord();
    Scheduler *Sched = RT->scheduler();
    assert(Self && Sched && "managed notify off a managed thread");
    Sched->condNotify(*Self, *Rec, /*All=*/true);
    return;
  }
  Real.notify_all();
}
