//===- runtime/RwLock.cpp - Instrumented reader-writer lock ----------------===//

#include "runtime/RwLock.h"

#include "runtime/Recorder.h"
#include "runtime/Records.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"

#include <algorithm>
#include <cassert>

using namespace dlf;

RwLock::RwLock(const std::string &Name, Label Site, const void *Parent) {
  Runtime *Current = Runtime::current();
  if (!Current || Current->mode() == RunMode::Passthrough)
    return;
  RT = Current;
  if (!Site.isValid())
    Site = Label::intern("rwlock:" + Name);
  Rec = &RT->createLockRecord(Name, this, Parent, Site);
}

RwLock::~RwLock() {
  if (RT && RT == Runtime::current())
    RT->objectDestroyed(this);
}

void RwLock::lock(Label Site) { acquire(Site, /*Shared=*/false); }
void RwLock::lockShared(Label Site) { acquire(Site, /*Shared=*/true); }
bool RwLock::tryLock(Label Site) { return tryAcquire(Site, /*Shared=*/false); }
bool RwLock::tryLockShared(Label Site) {
  return tryAcquire(Site, /*Shared=*/true);
}
void RwLock::unlock() { releaseSide(/*Shared=*/false); }
void RwLock::unlockShared() { releaseSide(/*Shared=*/true); }

void RwLock::acquire(Label Site, bool Shared) {
  if (!RT || !Rec) {
    if (Shared)
      Real.lock_shared();
    else
      Real.lock();
    return;
  }

  assert(RT == Runtime::current() &&
         "rwlock bound to a different runtime than the one running");
  LockMode Mode = Shared ? LockMode::Shared : LockMode::Exclusive;

  if (RT->mode() == RunMode::Active) {
    ThreadRecord *Self = RT->selfRecord();
    Scheduler *Sched = RT->scheduler();
    assert(Self && Sched && "unmanaged thread touched an active-mode rwlock");
    Sched->acquire(*Self, *Rec, Site, Mode);
    return;
  }

  // Record mode: real blocking first, then the event under the record
  // mutex so the dependency relation sees a consistent LockSet.
  assert(RT->mode() == RunMode::Record && "unexpected runtime mode");
  ThreadRecord *Self = RT->selfRecord();
  assert(Self && "unmanaged thread touched a record-mode rwlock");
  if (Shared)
    Real.lock_shared();
  else
    Real.lock();
  {
    std::lock_guard<std::mutex> Guard(RT->recordMu());
    if (RT->options().HappensBefore == HbMode::FullSync) {
      vcJoin(Self->Clock, Rec->Clock);
      if (!Shared)
        vcJoin(Self->Clock, Rec->ReadersClock);
    }
    if (RT->options().HappensBefore != HbMode::Off)
      vcTick(Self->Clock, Self->Id);
    if (DependencyRecorder *Recorder = RT->recorder()) {
      Recorder->onAcquireExecuted(*Self, *Rec, Self->LockStack, Site, Mode);
      // The real rwlock is already held: grant order is record order.
      Recorder->onLockGranted(*Self, *Rec, Site, Mode);
    }
    RT->noteRecordedAcquire();
    Self->LockStack.push_back({Rec->Id, Site, Mode});
    if (Shared) {
      Rec->Readers.push_back(Self->Id);
    } else {
      Rec->Owner = Self->Id;
      Rec->Recursion = 1;
      Rec->ReadersClock = VectorClock();
    }
  }
}

bool RwLock::tryAcquire(Label Site, bool Shared) {
  if (!RT || !Rec)
    return Shared ? Real.try_lock_shared() : Real.try_lock();

  assert(RT == Runtime::current() &&
         "rwlock bound to a different runtime than the one running");
  LockMode Mode = Shared ? LockMode::Shared : LockMode::Exclusive;

  if (RT->mode() == RunMode::Active) {
    ThreadRecord *Self = RT->selfRecord();
    Scheduler *Sched = RT->scheduler();
    assert(Self && Sched && "unmanaged thread touched an active-mode rwlock");
    return Sched->tryAcquire(*Self, *Rec, Site, Mode);
  }

  assert(RT->mode() == RunMode::Record && "unexpected runtime mode");
  if (!(Shared ? Real.try_lock_shared() : Real.try_lock()))
    return false;
  ThreadRecord *Self = RT->selfRecord();
  assert(Self && "unmanaged thread touched a record-mode rwlock");
  {
    std::lock_guard<std::mutex> Guard(RT->recordMu());
    if (RT->options().HappensBefore == HbMode::FullSync) {
      vcJoin(Self->Clock, Rec->Clock);
      if (!Shared)
        vcJoin(Self->Clock, Rec->ReadersClock);
    }
    if (RT->options().HappensBefore != HbMode::Off)
      vcTick(Self->Clock, Self->Id);
    if (DependencyRecorder *Recorder = RT->recorder()) {
      Recorder->onAcquireExecuted(*Self, *Rec, Self->LockStack, Site, Mode);
      // The real rwlock is already held: grant order is record order.
      Recorder->onLockGranted(*Self, *Rec, Site, Mode);
    }
    RT->noteRecordedAcquire();
    Self->LockStack.push_back({Rec->Id, Site, Mode});
    if (Shared) {
      Rec->Readers.push_back(Self->Id);
    } else {
      Rec->Owner = Self->Id;
      Rec->Recursion = 1;
      Rec->ReadersClock = VectorClock();
    }
  }
  return true;
}

void RwLock::releaseSide(bool Shared) {
  if (!RT || !Rec) {
    if (Shared)
      Real.unlock_shared();
    else
      Real.unlock();
    return;
  }

  assert(RT == Runtime::current() &&
         "rwlock bound to a different runtime than the one running");

  if (RT->mode() == RunMode::Active) {
    ThreadRecord *Self = RT->selfRecord();
    Scheduler *Sched = RT->scheduler();
    assert(Self && Sched && "active-mode unlock off a managed thread");
    // The scheduler pops the stack entry, whose mode is the released side.
    Sched->release(*Self, *Rec, Label());
    return;
  }

  assert(RT->mode() == RunMode::Record && "unexpected runtime mode");
  ThreadRecord *Self = RT->selfRecord();
  assert(Self && "unmanaged thread touched a record-mode rwlock");
  {
    std::lock_guard<std::mutex> Guard(RT->recordMu());
    for (size_t I = Self->LockStack.size(); I-- > 0;) {
      if (Self->LockStack[I].Lock == Rec->Id) {
        assert((Self->LockStack[I].Mode == LockMode::Shared) == Shared &&
               "rwlock released on the wrong side");
        Self->LockStack.erase(Self->LockStack.begin() + static_cast<long>(I));
        break;
      }
    }
    if (Shared) {
      Rec->Readers.erase(
          std::remove(Rec->Readers.begin(), Rec->Readers.end(), Self->Id),
          Rec->Readers.end());
      if (RT->options().HappensBefore == HbMode::FullSync) {
        vcTick(Self->Clock, Self->Id);
        vcJoin(Rec->ReadersClock, Self->Clock);
      }
    } else {
      Rec->Owner = ThreadId();
      Rec->Recursion = 0;
      if (RT->options().HappensBefore == HbMode::FullSync) {
        vcTick(Self->Clock, Self->Id);
        Rec->Clock = Self->Clock;
      }
    }
    if (DependencyRecorder *Recorder = RT->recorder())
      Recorder->onReleaseExecuted(*Self, *Rec,
                                  Shared ? LockMode::Shared
                                         : LockMode::Exclusive);
  }
  if (Shared)
    Real.unlock_shared();
  else
    Real.unlock();
}
