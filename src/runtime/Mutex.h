//===- runtime/Mutex.h - Instrumented re-entrant lock -----------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumented lock primitive. dlf::Mutex plays the role of a Java
/// monitor: re-entrant, identified by an object abstraction computed at its
/// creation site, and observable by the analysis at every Acquire/Release.
///
/// Behaviour by runtime mode:
///  * no runtime / Passthrough — a plain recursive mutex (zero analysis
///    cost; the paper's "normal execution");
///  * Record — a real OS lock plus event recording (Phase I observation of
///    a genuinely concurrent execution);
///  * Active — lock state is modeled inside the scheduler; OS threads never
///    block on the lock itself, which is what enables pausing, stall
///    detection and teardown.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RUNTIME_MUTEX_H
#define DLF_RUNTIME_MUTEX_H

#include "event/Label.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace dlf {

class Runtime;
struct LockRecord;

/// An instrumented, re-entrant lock.
class Mutex {
public:
  /// \p Name is used in reports; \p Site should be the allocation site
  /// (DLF_SITE()) and \p Parent the owning object, feeding the §2.4
  /// abstractions. Binds to the runtime installed at construction time (if
  /// any).
  explicit Mutex(const std::string &Name = "lock", Label Site = Label(),
                 const void *Parent = nullptr);
  ~Mutex();

  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  /// Acquires the lock; \p Site is the label of this acquire statement.
  /// Re-entrant acquires are counted and invisible to the analysis
  /// (paper footnote 2).
  void lock(Label Site = Label());

  /// Non-blocking acquire: returns true when the lock was taken (or
  /// re-entered). A successful tryLock is an Acquire event for the
  /// analysis; a failed one is invisible.
  bool tryLock(Label Site = Label());

  /// Releases the lock (innermost acquire first under normal RAII use, but
  /// arbitrary orders are supported).
  void unlock();

  /// True when the calling thread currently owns the lock (for substrate
  /// assertions).
  bool heldByCurrentThread() const;

  /// The analysis record, when bound to a runtime (tests / reports / the
  /// condition-variable implementation).
  const LockRecord *record() const { return Rec; }
  LockRecord *record() { return Rec; }

private:
  Runtime *RT = nullptr;
  LockRecord *Rec = nullptr;

  /// Used in Passthrough and Record modes where the OS provides mutual
  /// exclusion. In Active mode the scheduler models the lock instead.
  std::recursive_mutex Real;

  /// Owner tracking for the non-Active modes: hashed std::thread::id of the
  /// holder, 0 when free.
  std::atomic<uint64_t> RealOwner{0};
  uint32_t RealRecursion = 0;
};

/// RAII guard mirroring a `synchronized (m) { ... }` block. The acquire
/// site label should identify the block (DLF_SITE()).
class MutexGuard {
public:
  MutexGuard(Mutex &M, Label Site) : M(M) { M.lock(Site); }
  ~MutexGuard() { M.unlock(); }

  MutexGuard(const MutexGuard &) = delete;
  MutexGuard &operator=(const MutexGuard &) = delete;

private:
  Mutex &M;
};

} // namespace dlf

#endif // DLF_RUNTIME_MUTEX_H
