//===- runtime/Mutex.cpp - Instrumented re-entrant lock --------------------===//

#include "runtime/Mutex.h"

#include "runtime/Recorder.h"
#include "runtime/Records.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"

#include <cassert>
#include <functional>
#include <thread>

using namespace dlf;

static uint64_t osThreadKey() {
  return std::hash<std::thread::id>()(std::this_thread::get_id());
}

Mutex::Mutex(const std::string &Name, Label Site, const void *Parent) {
  Runtime *Current = Runtime::current();
  if (!Current || Current->mode() == RunMode::Passthrough)
    return;
  RT = Current;
  if (!Site.isValid())
    Site = Label::intern("lock:" + Name);
  Rec = &RT->createLockRecord(Name, this, Parent, Site);
}

Mutex::~Mutex() {
  assert(RealOwner.load(std::memory_order_relaxed) == 0 &&
         "destroying a held lock");
  if (RT && RT == Runtime::current())
    RT->objectDestroyed(this);
}

void Mutex::lock(Label Site) {
  // Unbound or passthrough: plain recursive mutex with owner tracking.
  if (!RT || !Rec) {
    uint64_t Self = osThreadKey();
    if (RealOwner.load(std::memory_order_relaxed) == Self) {
      ++RealRecursion;
      return;
    }
    Real.lock();
    RealOwner.store(Self, std::memory_order_relaxed);
    RealRecursion = 1;
    return;
  }

  assert(RT == Runtime::current() &&
         "lock bound to a different runtime than the one running");

  if (RT->mode() == RunMode::Active) {
    ThreadRecord *Self = RT->selfRecord();
    assert(Self && "unmanaged thread touched an active-mode lock");
    Scheduler *Sched = RT->scheduler();
    assert(Sched && "active mode without a scheduler");
    Sched->acquire(*Self, *Rec, Site);
    return;
  }

  // Record mode: real blocking first, then the event under the record
  // mutex so the dependency relation sees a consistent LockSet.
  assert(RT->mode() == RunMode::Record && "unexpected runtime mode");
  uint64_t SelfKey = osThreadKey();
  if (RealOwner.load(std::memory_order_relaxed) == SelfKey) {
    ++RealRecursion; // re-entrant: invisible to the analysis (footnote 2)
    return;
  }
  ThreadRecord *Self = RT->selfRecord();
  assert(Self && "unmanaged thread touched a record-mode lock");
  Real.lock();
  {
    std::lock_guard<std::mutex> Guard(RT->recordMu());
    if (RT->options().HappensBefore == HbMode::FullSync)
      vcJoin(Self->Clock, Rec->Clock);
    if (RT->options().HappensBefore != HbMode::Off)
      vcTick(Self->Clock, Self->Id);
    if (DependencyRecorder *Recorder = RT->recorder()) {
      Recorder->onAcquireExecuted(*Self, *Rec, Self->LockStack, Site,
                                  LockMode::Exclusive);
      // The real mutex is already held here, so grant order is record order.
      Recorder->onLockGranted(*Self, *Rec, Site, LockMode::Exclusive);
    }
    RT->noteRecordedAcquire();
    Self->LockStack.push_back({Rec->Id, Site});
    Rec->Owner = Self->Id;
    Rec->Recursion = 1;
  }
  RealOwner.store(SelfKey, std::memory_order_relaxed);
  RealRecursion = 1;
}

bool Mutex::tryLock(Label Site) {
  if (!RT || !Rec) {
    uint64_t Self = osThreadKey();
    if (RealOwner.load(std::memory_order_relaxed) == Self) {
      ++RealRecursion;
      return true;
    }
    if (!Real.try_lock())
      return false;
    RealOwner.store(Self, std::memory_order_relaxed);
    RealRecursion = 1;
    return true;
  }

  assert(RT == Runtime::current() &&
         "lock bound to a different runtime than the one running");

  if (RT->mode() == RunMode::Active) {
    ThreadRecord *Self = RT->selfRecord();
    Scheduler *Sched = RT->scheduler();
    assert(Self && Sched && "unmanaged thread touched an active-mode lock");
    return Sched->tryAcquire(*Self, *Rec, Site);
  }

  assert(RT->mode() == RunMode::Record && "unexpected runtime mode");
  uint64_t SelfKey = osThreadKey();
  if (RealOwner.load(std::memory_order_relaxed) == SelfKey) {
    ++RealRecursion;
    return true;
  }
  if (!Real.try_lock())
    return false;
  ThreadRecord *Self = RT->selfRecord();
  assert(Self && "unmanaged thread touched a record-mode lock");
  {
    std::lock_guard<std::mutex> Guard(RT->recordMu());
    if (RT->options().HappensBefore == HbMode::FullSync)
      vcJoin(Self->Clock, Rec->Clock);
    if (RT->options().HappensBefore != HbMode::Off)
      vcTick(Self->Clock, Self->Id);
    if (DependencyRecorder *Recorder = RT->recorder()) {
      Recorder->onAcquireExecuted(*Self, *Rec, Self->LockStack, Site,
                                  LockMode::Exclusive);
      // The real mutex is already held here, so grant order is record order.
      Recorder->onLockGranted(*Self, *Rec, Site, LockMode::Exclusive);
    }
    RT->noteRecordedAcquire();
    Self->LockStack.push_back({Rec->Id, Site});
    Rec->Owner = Self->Id;
    Rec->Recursion = 1;
  }
  RealOwner.store(SelfKey, std::memory_order_relaxed);
  RealRecursion = 1;
  return true;
}

void Mutex::unlock() {
  if (!RT || !Rec) {
    assert(RealOwner.load(std::memory_order_relaxed) == osThreadKey() &&
           "unlock by non-owner");
    if (--RealRecursion > 0)
      return;
    RealOwner.store(0, std::memory_order_relaxed);
    Real.unlock();
    return;
  }

  assert(RT == Runtime::current() &&
         "lock bound to a different runtime than the one running");

  if (RT->mode() == RunMode::Active) {
    ThreadRecord *Self = RT->selfRecord();
    Scheduler *Sched = RT->scheduler();
    assert(Self && Sched && "active-mode unlock off a managed thread");
    Sched->release(*Self, *Rec, Label());
    return;
  }

  assert(RT->mode() == RunMode::Record && "unexpected runtime mode");
  assert(RealOwner.load(std::memory_order_relaxed) == osThreadKey() &&
         "unlock by non-owner");
  if (--RealRecursion > 0)
    return;
  ThreadRecord *Self = RT->selfRecord();
  {
    std::lock_guard<std::mutex> Guard(RT->recordMu());
    for (size_t I = Self->LockStack.size(); I-- > 0;) {
      if (Self->LockStack[I].Lock == Rec->Id) {
        Self->LockStack.erase(Self->LockStack.begin() + static_cast<long>(I));
        break;
      }
    }
    Rec->Owner = ThreadId();
    Rec->Recursion = 0;
    if (RT->options().HappensBefore == HbMode::FullSync) {
      vcTick(Self->Clock, Self->Id);
      Rec->Clock = Self->Clock;
    }
    if (DependencyRecorder *Recorder = RT->recorder())
      Recorder->onReleaseExecuted(*Self, *Rec, LockMode::Exclusive);
  }
  RealOwner.store(0, std::memory_order_relaxed);
  Real.unlock();
}

bool Mutex::heldByCurrentThread() const {
  if (!RT || !Rec)
    return RealOwner.load(std::memory_order_relaxed) == osThreadKey();
  if (RT->mode() == RunMode::Active) {
    ThreadRecord *Self = RT->selfRecord();
    return Self && Rec->Owner == Self->Id;
  }
  return RealOwner.load(std::memory_order_relaxed) == osThreadKey();
}
