//===- runtime/Recorder.h - Event recorder interface ------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase I observes an execution through this interface. The runtime calls
/// it at every executed Acquire event (the 0->1 re-entrancy transitions
/// only) and at thread/lock creations; src/igoodlock implements it to build
/// the lock dependency relation of Definition 1.
///
/// All calls are externally synchronized by the runtime (scheduler lock in
/// Active mode, the record mutex in Record mode); implementations need no
/// locking of their own.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RUNTIME_RECORDER_H
#define DLF_RUNTIME_RECORDER_H

#include "runtime/Records.h"

namespace dlf {

/// Observer for synchronization events of one execution.
class DependencyRecorder {
public:
  virtual ~DependencyRecorder();

  /// A thread was created (including the main thread).
  virtual void onThreadCreated(const ThreadRecord &T) {}

  /// A lock was created.
  virtual void onLockCreated(const LockRecord &L) {}

  /// Thread \p T executed `Site : Acquire(L)` in \p Mode while holding
  /// \p HeldBefore (its lock stack before the push; entries carry their own
  /// modes). This is the paper's "add (t, LockSet[t], l, Context[t]) to D"
  /// step, widened with acquisition modes so the closure can apply read-read
  /// non-exclusion.
  virtual void onAcquireExecuted(const ThreadRecord &T, const LockRecord &L,
                                 const std::vector<LockStackEntry> &HeldBefore,
                                 Label Site, LockMode Mode) {}
};

} // namespace dlf

#endif // DLF_RUNTIME_RECORDER_H
