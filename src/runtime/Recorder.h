//===- runtime/Recorder.h - Event recorder interface ------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase I observes an execution through this interface. The runtime calls
/// it at every executed Acquire event (the 0->1 re-entrancy transitions
/// only) and at thread/lock creations; src/igoodlock implements it to build
/// the lock dependency relation of Definition 1.
///
/// All calls are externally synchronized by the runtime (scheduler lock in
/// Active mode, the record mutex in Record mode); implementations need no
/// locking of their own.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RUNTIME_RECORDER_H
#define DLF_RUNTIME_RECORDER_H

#include "runtime/Records.h"

namespace dlf {

/// Observer for synchronization events of one execution.
class DependencyRecorder {
public:
  virtual ~DependencyRecorder();

  /// A thread was created (including the main thread).
  virtual void onThreadCreated(const ThreadRecord &T) {}

  /// A lock was created.
  virtual void onLockCreated(const LockRecord &L) {}

  /// Thread \p T executed `Site : Acquire(L)` in \p Mode while holding
  /// \p HeldBefore (its lock stack before the push; entries carry their own
  /// modes). This is the paper's "add (t, LockSet[t], l, Context[t]) to D"
  /// step, widened with acquisition modes so the closure can apply read-read
  /// non-exclusion.
  virtual void onAcquireExecuted(const ThreadRecord &T, const LockRecord &L,
                                 const std::vector<LockStackEntry> &HeldBefore,
                                 Label Site, LockMode Mode) {}

  // Optional grant/release/condvar/fork/join notifications, default no-ops.
  // onAcquireExecuted fires at the acquire *attempt* (the paper's dependency
  // relation needs the request point); onLockGranted fires when the lock is
  // actually held. Trace capture for --predict uses the grant, because its
  // soundness argument needs conflicting critical sections to never overlap
  // in emission order (see analysis/Predict.cpp).

  /// Thread \p T now holds \p L in \p Mode (acquired at \p Site).
  virtual void onLockGranted(const ThreadRecord &T, const LockRecord &L,
                             Label Site, LockMode Mode) {}

  /// Thread \p T released \p L (its hold was in \p Mode).
  virtual void onReleaseExecuted(const ThreadRecord &T, const LockRecord &L,
                                 LockMode Mode) {}

  /// Thread \p T signaled or broadcast condvar \p CV.
  virtual void onCondNotify(const ThreadRecord &T, const CondRecord &CV) {}

  /// Thread \p T resumed from a wait on \p CV after a notify.
  virtual void onCondWake(const ThreadRecord &T, const CondRecord &CV) {}

  /// \p Parent created \p Child (fires after onThreadCreated(Child)).
  virtual void onForkEdge(const ThreadRecord &Parent,
                          const ThreadRecord &Child) {}

  /// Thread \p T joined \p Target (the join returned).
  virtual void onJoinExecuted(const ThreadRecord &T,
                              const ThreadRecord &Target) {}
};

} // namespace dlf

#endif // DLF_RUNTIME_RECORDER_H
