//===- runtime/Records.h - Per-thread and per-lock runtime state -*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bookkeeping records the runtime keeps for every managed thread and
/// lock, and the pending-operation descriptor a thread publishes at each
/// scheduling point. These mirror the data structures of the paper's
/// Algorithm 3: LockSet and Context (here fused into one stack of
/// LockStackEntry), lock ownership with the re-entrancy usage counter of
/// footnote 2, and the thread's lifecycle state, from which Enabled(s) and
/// Alive(s) are computed.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RUNTIME_RECORDS_H
#define DLF_RUNTIME_RECORDS_H

#include "abstraction/ExecutionIndex.h"
#include "event/Abstraction.h"
#include "event/Ids.h"
#include "event/Label.h"
#include "event/VectorClock.h"

#include <chrono>
#include <string>
#include <vector>

namespace dlf {

/// One held (or pending) lock together with the label of the Acquire
/// statement that (will have) acquired it. The per-thread vector of these is
/// simultaneously the paper's LockSet[t] (project onto .Lock) and Context[t]
/// (project onto .Site).
struct LockStackEntry {
  LockId Lock;
  Label Site;
  /// Exclusive for mutexes and rwlock write sides, Shared for read sides.
  /// Not part of identity: a stack never holds the same lock at the same
  /// site in two modes, and release matches on (Lock, Site) alone.
  LockMode Mode = LockMode::Exclusive;

  friend bool operator==(const LockStackEntry &A, const LockStackEntry &B) {
    return A.Lock == B.Lock && A.Site == B.Site;
  }
};

/// The operation a thread announces at a scheduling point; committed by the
/// scheduler when the thread is picked.
struct PendingOp {
  enum class Kind {
    None,            ///< no pending operation (thread is running user code)
    ThreadStart,     ///< first transition of a newly created thread
    AcquireAttempt,  ///< about to execute `Site: Acquire(Lock)`
    CompleteAcquire, ///< blocked on Lock; completes when Lock is free
    Release,         ///< about to execute `Release(Lock)`
    Join,            ///< waiting for JoinTarget to finish
    YieldPoint,      ///< an explicit scheduling point with no state effect
    ThreadExit,      ///< thread body finished
    CondWait,        ///< about to release Lock and wait on condition Cond
    CondBlocked,     ///< waiting for a notify on Cond (not schedulable)
    ReacquireAfterWait, ///< notified; re-acquires Lock when it is free
    Notify,          ///< about to notify Cond (one or all waiters)
  };

  Kind K = Kind::None;
  LockId Lock;
  Label Site;
  ThreadId JoinTarget;
  /// Condition-variable id for the Cond* kinds (raw; 0 = none).
  uint64_t Cond = 0;
  /// Notify-all flag for Kind::Notify.
  bool NotifyAll = false;
  /// Acquire mode for AcquireAttempt/CompleteAcquire (condvar reacquires
  /// are always Exclusive — a condvar is bound to a mutex).
  LockMode Mode = LockMode::Exclusive;

  static PendingOp threadStart() { return {Kind::ThreadStart, {}, {}, {}}; }
  static PendingOp acquireAttempt(LockId L, Label Site,
                                  LockMode M = LockMode::Exclusive) {
    return {Kind::AcquireAttempt, L, Site, {}, 0, false, M};
  }
  static PendingOp release(LockId L, Label Site) {
    return {Kind::Release, L, Site, {}};
  }
  static PendingOp join(ThreadId Target) {
    return {Kind::Join, {}, {}, Target};
  }
  static PendingOp yieldPoint() { return {Kind::YieldPoint, {}, {}, {}}; }
  static PendingOp threadExit() { return {Kind::ThreadExit, {}, {}, {}}; }
  static PendingOp condWait(LockId L, Label ReacquireSite, uint64_t Cond) {
    return {Kind::CondWait, L, ReacquireSite, {}, Cond, false};
  }
  static PendingOp notify(uint64_t Cond, bool All) {
    return {Kind::Notify, {}, {}, {}, Cond, All};
  }
};

/// Lifecycle state of a managed thread.
enum class ThreadState {
  Announced, ///< has a pending op and is schedulable (unless blocked)
  Running,   ///< executing user code (owns the token)
  Blocked,   ///< pending op cannot commit yet (lock held / join target alive)
  Finished,  ///< body completed (normally or by abort)
};

/// Everything the runtime knows about one managed thread.
struct ThreadRecord {
  ThreadId Id;
  std::string Name;

  /// Abstractions of the thread object, computed at creation in the
  /// *creating* thread (paper §2.4).
  AbstractionSet Abs;

  ThreadState State = ThreadState::Announced;
  PendingOp Pending = PendingOp::threadStart();

  /// Fused LockSet[t] + Context[t] (innermost lock last). Includes the
  /// pending lock for a thread blocked in CompleteAcquire, per Algorithm 3's
  /// push-before-Execute semantics; excludes it for a paused thread.
  std::vector<LockStackEntry> LockStack;

  /// Per-thread execution-indexing state (paper §2.4.2).
  IndexingState Index;

  /// Happens-before timestamp (maintained only when Options::HappensBefore
  /// is not Off).
  VectorClock Clock;

  /// Scheduler bookkeeping: paused by the active strategy (Algorithm 3's
  /// Paused set).
  bool Paused = false;
  /// Set when thrash handling / the livelock monitor removed this thread
  /// from Paused: its pending acquire must then execute rather than re-pause
  /// (the paper's resumed threads continue past the instrumentation point).
  bool ForceExecute = false;
  /// Step number at which the thread was paused (for the livelock monitor).
  uint64_t PausedSinceStep = 0;
  /// Wall-clock instant of the pause (for the monitor's wall-clock
  /// fallback, which rescues peers of a thread stuck in long compute).
  std::chrono::steady_clock::time_point PausedSinceWall{};
  /// The acquire the thread is paused before (valid while Paused). A
  /// paused thread is committed to executing this acquire, so
  /// checkRealDeadlock may treat it as a wait-for edge — that is what lets
  /// a deadlock be confirmed the moment it becomes inevitable, with no
  /// thrashing.
  bool HasPausedPending = false;
  LockStackEntry PausedPending;

  /// §4 yield bookkeeping for the current announce: whether the strategy
  /// was asked yet (-1 = not asked, 0 = no yield, 1 = yielding) and how many
  /// more pick rounds this thread still defers to others.
  int8_t YieldEval = -1;
  unsigned YieldsRemaining = 0;

  /// Set when the avoidance extension deferred this thread's acquire
  /// because another participant of an avoided cycle is in progress;
  /// cleared whenever any lock is released.
  bool DeferredByAvoidance = false;

  /// Number of times this thread ever entered the Paused set (statistics).
  uint64_t TimesPaused = 0;
};

/// Everything the runtime knows about one managed condition variable
/// (Active mode only; the other modes delegate to a real condvar).
struct CondRecord {
  uint64_t Id = 0;
  std::string Name;
  /// Threads currently in CondBlocked on this condition.
  std::vector<ThreadId> Waiting;
};

/// Everything the runtime knows about one managed lock.
struct LockRecord {
  LockId Id;
  std::string Name;

  /// Abstractions of the lock object, computed at creation (§2.4).
  AbstractionSet Abs;

  /// Current owner; invalid when free. Only meaningful in Active mode where
  /// the runtime models lock state itself.
  ThreadId Owner;

  /// Re-entrancy usage counter (paper footnote 2): only 0->1 transitions
  /// are Acquire events and only 1->0 transitions are Release events.
  uint32_t Recursion = 0;

  /// Threads currently holding this lock in Shared mode (rwlock read side;
  /// always empty for plain mutexes, which is what keeps mutex-only runs
  /// byte-identical to the pre-rwlock model). Exclusive ownership and
  /// shared ownership are mutually exclusive.
  std::vector<ThreadId> Readers;

  /// Timestamp of the last release (FullSync happens-before mode only).
  VectorClock Clock;

  /// Join of the read-side release timestamps since the last write-side
  /// acquire (FullSync only): a write acquire orders after every reader
  /// that released, but a read acquire orders only after the last writer.
  VectorClock ReadersClock;
};

} // namespace dlf

#endif // DLF_RUNTIME_RECORDS_H
