//===- runtime/Options.h - Per-execution configuration ----------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration for one managed execution. The paper's Figure 2 variants
/// correspond to combinations of these knobs:
///
///   variant 1: Kind = KObjectSensitive, UseContext = true,  UseYields = true
///   variant 2: Kind = ExecutionIndex,   UseContext = true,  UseYields = true
///   variant 3: Kind = Trivial,          UseContext = true,  UseYields = true
///   variant 4: Kind = ExecutionIndex,   UseContext = false, UseYields = true
///   variant 5: Kind = ExecutionIndex,   UseContext = true,  UseYields = false
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RUNTIME_OPTIONS_H
#define DLF_RUNTIME_OPTIONS_H

#include "event/Abstraction.h"

#include <cstdint>
#include <string>

namespace dlf {

/// How the runtime mediates the program's concurrency.
enum class RunMode {
  /// No instrumentation: dlf::Mutex degrades to a plain recursive mutex and
  /// no events are recorded. This is the paper's "normal execution" used for
  /// the baseline runtime column and the 100-uninstrumented-runs experiment.
  Passthrough,
  /// Threads run concurrently under the OS scheduler; synchronization events
  /// are recorded (lock dependency relation, abstractions) but the schedule
  /// is not controlled. This is the lowest-perturbation Phase I observation
  /// mode.
  Record,
  /// The cooperative serialized scheduler controls every synchronization
  /// event; a SchedulerStrategy picks which thread runs (Algorithms 2 and 3).
  /// Phase I uses this with SimpleRandomStrategy + recording; Phase II uses
  /// DeadlockFuzzerStrategy.
  Active,
};

/// Returns a human-readable name for \p Mode.
const char *runModeName(RunMode Mode);

/// How much of the happens-before relation the runtime tracks with vector
/// clocks (paper §1's precision/predictive-power trade; see
/// event/VectorClock.h).
enum class HbMode {
  Off,      ///< no tracking (the paper's default: maximum prediction)
  ForkJoin, ///< thread creation/join edges only: prunes provably
            ///< infeasible cycles (the §5.4 false-positive class)
  FullSync, ///< also release->acquire edges: precise for the observed
            ///< run, but orders away deadlocks that did not overlap
};

/// Returns a human-readable name for \p Mode.
const char *hbModeName(HbMode Mode);

/// All knobs for one execution.
struct Options {
  RunMode Mode = RunMode::Active;

  /// Seed for every random decision the scheduler makes.
  uint64_t Seed = 1;

  /// Abstraction scheme Phase II matches threads/locks on.
  AbstractionKind Kind = AbstractionKind::ExecutionIndex;

  /// Whether Phase II requires the full acquire-context stack to match
  /// (paper variant 4 turns this off: matching on the pending acquire site
  /// only).
  bool UseContext = true;

  /// Whether the §4 yield optimization is applied (paper variant 5 turns
  /// this off).
  bool UseYields = true;

  /// How many pick rounds a yielding thread defers to other runnable
  /// threads per announce (§4: "yield to other threads before it starts
  /// entering a deadlock cycle"). Each deferred round runs one transition
  /// of some other thread, so the budget must cover the other cycle
  /// participants' gate sections even when unrelated threads share the
  /// schedule.
  unsigned YieldBudget = 128;

  /// Whether to record the lock dependency relation (Phase I).
  bool RecordDependencies = false;

  /// Happens-before tracking mode (timestamps recorded with each
  /// dependency entry; consumed by the iGoodlock HB filter).
  HbMode HappensBefore = HbMode::Off;

  /// Depth bound k for the k-object-sensitive abstraction (§2.4.1).
  unsigned KObjectDepth = 4;

  /// Depth bound k for the execution-indexing abstraction (§2.4.2); absIk
  /// has up to 2k elements.
  unsigned IndexDepth = 8;

  /// Upper bound on scheduler transitions before the run is aborted and
  /// flagged as a livelock (safety net; generous by default).
  uint64_t MaxSteps = 4'000'000;

  /// How many scheduler transitions a thread may stay paused before the
  /// livelock monitor force-removes it from the Paused set (the paper's
  /// monitor thread does the same on wall-clock time).
  uint64_t MaxPausedSteps = 400;

  /// Wall-clock fallback for the livelock monitor: a thread paused longer
  /// than this is force-removed even if few scheduler steps elapsed (a
  /// thread in long compute between scheduling points commits no steps, so
  /// the step-count bound alone would leave its peers paused for the whole
  /// compute stretch). 0 disables; the step bound remains authoritative
  /// for deterministic tests.
  uint64_t MaxPausedWallMs = 2'000;

  /// Wall-clock watchdog for Passthrough/Record executions run through the
  /// forked harness; 0 disables.
  uint64_t WatchdogMs = 10'000;

  /// Grace period between the watchdog's SIGTERM and the SIGKILL
  /// escalation for forked executions.
  uint64_t WatchdogGraceMs = 500;
};

} // namespace dlf

#endif // DLF_RUNTIME_OPTIONS_H
