//===- runtime/Runtime.cpp - Managed execution façade ----------------------===//

#include "runtime/Runtime.h"

#include "runtime/Abort.h"
#include "runtime/Recorder.h"
#include "runtime/Scheduler.h"
#include "runtime/Strategy.h"
#include "support/Debug.h"
#include "telemetry/Metrics.h"
#include "telemetry/Timeline.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <thread>

using namespace dlf;

namespace {

/// The runtime installed by an in-flight run(); one at a time per process.
std::atomic<Runtime *> CurrentRuntime{nullptr};

/// The calling thread's record within the current runtime.
thread_local ThreadRecord *SelfTls = nullptr;

/// Scheduler telemetry is recorded in bulk from the ExecutionResult at the
/// end of run() — zero cost on the scheduler hot path, and the counters
/// stay exactly the Result fields, so totals are jobs-deterministic.
struct SchedulerMetrics {
  telemetry::Counter Runs, Steps, Acquires, Pauses, UnpausesForced, Thrashes,
      Yields, DeadlocksFound, Stalls;
  telemetry::Histogram StepsPerRun;

  SchedulerMetrics() {
    telemetry::Registry &R = telemetry::Registry::global();
    Runs = R.counter("dlf_scheduler_runs_total");
    Steps = R.counter("dlf_scheduler_steps_total");
    Acquires = R.counter("dlf_scheduler_acquires_total");
    Pauses = R.counter("dlf_scheduler_pauses_total");
    UnpausesForced = R.counter("dlf_scheduler_unpauses_forced_total");
    Thrashes = R.counter("dlf_scheduler_thrashes_total");
    Yields = R.counter("dlf_scheduler_yields_total");
    DeadlocksFound = R.counter("dlf_scheduler_deadlocks_found_total");
    Stalls = R.counter("dlf_scheduler_stalls_total");
    StepsPerRun = R.histogram("dlf_scheduler_steps_per_run");
  }

  void record(const ExecutionResult &Result) {
    Runs.inc();
    Steps.inc(Result.Steps);
    Acquires.inc(Result.AcquireEvents);
    Pauses.inc(Result.Pauses);
    UnpausesForced.inc(Result.ForcedUnpauses);
    Thrashes.inc(Result.Thrashes);
    Yields.inc(Result.Yields);
    if (Result.DeadlockFound)
      DeadlocksFound.inc();
    if (Result.Stalled)
      Stalls.inc();
    StepsPerRun.observe(Result.Steps);
  }
};

/// RAII for CurrentRuntime installation.
class InstallGuard {
public:
  explicit InstallGuard(Runtime *RT) {
    Runtime *Expected = nullptr;
    bool Installed =
        CurrentRuntime.compare_exchange_strong(Expected, RT);
    assert(Installed && "another runtime is already running");
    (void)Installed;
  }
  ~InstallGuard() { CurrentRuntime.store(nullptr); }
};

} // namespace

Runtime::Runtime(Options Opts, SchedulerStrategy *Strat,
                 DependencyRecorder *Recorder,
                 const std::vector<CycleSpec> *Avoid)
    : Opts(Opts), Strat(Strat), Recorder(Recorder), Avoid(Avoid),
      Engine(Opts.KObjectDepth, Opts.IndexDepth) {
  assert((Opts.Mode != RunMode::Active || Strat) &&
         "active mode requires a scheduling strategy");
}

Runtime::~Runtime() = default;

Runtime *Runtime::current() { return CurrentRuntime.load(); }

ThreadRecord &Runtime::createThreadRecord(const std::string &Name,
                                          const void *Obj, const void *Parent,
                                          Label Site) {
  ThreadRecord *Creator = selfRecord();
  IndexingState &Index = Creator ? Creator->Index : BootstrapIndex;
  auto [ObjId, Abs] = Engine.registerCreation(Obj, Parent, Site, Index);
  (void)ObjId;

  std::lock_guard<std::mutex> Guard(RegistryMu);
  Threads.emplace_back();
  ThreadRecord &Rec = Threads.back();
  Rec.Id = ThreadId(Threads.size());
  Rec.Name = Name;
  Rec.Abs = std::move(Abs);
  Rec.State = ThreadState::Announced;
  Rec.Pending = PendingOp::threadStart();
  if (Opts.HappensBefore != HbMode::Off) {
    // Fork edge: everything the creator did so far happens-before the
    // child's first event.
    if (Creator) {
      Rec.Clock = Creator->Clock;
      vcTick(Creator->Clock, Creator->Id);
    }
    vcTick(Rec.Clock, Rec.Id);
  }
  if (Recorder) {
    Recorder->onThreadCreated(Rec);
    if (Creator)
      Recorder->onForkEdge(*Creator, Rec);
  }
  return Rec;
}

LockRecord &Runtime::createLockRecord(const std::string &Name, const void *Obj,
                                      const void *Parent, Label Site) {
  ThreadRecord *Creator = selfRecord();
  IndexingState &Index = Creator ? Creator->Index : BootstrapIndex;
  auto [ObjId, Abs] = Engine.registerCreation(Obj, Parent, Site, Index);
  (void)ObjId;

  std::lock_guard<std::mutex> Guard(RegistryMu);
  Locks.emplace_back();
  LockRecord &Rec = Locks.back();
  Rec.Id = LockId(Locks.size());
  Rec.Name = Name;
  Rec.Abs = std::move(Abs);
  if (Recorder)
    Recorder->onLockCreated(Rec);
  return Rec;
}

CondRecord &Runtime::createCondRecord(const std::string &Name) {
  std::lock_guard<std::mutex> Guard(RegistryMu);
  Conds.emplace_back();
  CondRecord &Rec = Conds.back();
  Rec.Id = Conds.size();
  Rec.Name = Name;
  return Rec;
}

CondRecord &Runtime::condById(uint64_t Id) {
  assert(Id != 0 && Id <= Conds.size() && "bad condition id");
  return Conds[Id - 1];
}

ThreadRecord &Runtime::threadById(ThreadId Id) {
  assert(Id.isValid() && Id.Raw <= Threads.size() && "bad thread id");
  return Threads[Id.Raw - 1];
}

LockRecord &Runtime::lockById(LockId Id) {
  assert(Id.isValid() && Id.Raw <= Locks.size() && "bad lock id");
  return Locks[Id.Raw - 1];
}

const LockRecord &Runtime::lockById(LockId Id) const {
  assert(Id.isValid() && Id.Raw <= Locks.size() && "bad lock id");
  return Locks[Id.Raw - 1];
}

ThreadRecord *Runtime::selfRecord() { return SelfTls; }

void Runtime::setSelfRecord(ThreadRecord *Rec) { SelfTls = Rec; }

void Runtime::onCall(Label Site) {
  if (Opts.Mode == RunMode::Passthrough)
    return;
  if (ThreadRecord *Self = selfRecord())
    Self->Index.onCall(Site);
}

void Runtime::onReturn() {
  if (Opts.Mode == RunMode::Passthrough)
    return;
  if (ThreadRecord *Self = selfRecord())
    Self->Index.onReturn();
}

void Runtime::registerObject(const void *Obj, const void *Parent, Label Site) {
  if (Opts.Mode == RunMode::Passthrough)
    return;
  ThreadRecord *Creator = selfRecord();
  IndexingState &Index = Creator ? Creator->Index : BootstrapIndex;
  Engine.registerCreation(Obj, Parent, Site, Index);
}

void Runtime::objectDestroyed(const void *Obj) {
  if (Opts.Mode == RunMode::Passthrough)
    return;
  Engine.forgetAddress(Obj);
}

ExecutionResult Runtime::run(const std::function<void()> &Entry) {
  assert(!Ran && "a Runtime instance drives exactly one execution");
  Ran = true;

  InstallGuard Install(this);
  auto Start = std::chrono::steady_clock::now();
  ExecutionResult Result;

  switch (Opts.Mode) {
  case RunMode::Passthrough:
    Entry();
    Result.Completed = true;
    break;

  case RunMode::Record: {
    ThreadRecord &Main = createThreadRecord(
        "main", this, nullptr, DLF_NAMED_SITE("dlf:main-thread"));
    setSelfRecord(&Main);
    Entry();
    Main.State = ThreadState::Finished;
    setSelfRecord(nullptr);
    Result.Completed = true;
    Result.AcquireEvents = RecordAcquires;
    break;
  }

  case RunMode::Active: {
    Scheduler S(*this, Opts, *Strat, Recorder);
    Sched = &S;
    ThreadRecord &Main = createThreadRecord(
        "main", this, nullptr, DLF_NAMED_SITE("dlf:main-thread"));
    setSelfRecord(&Main);
    S.adoptMainThread(Main);
    try {
      Entry();
    } catch (ExecutionAborted &) {
      // Normal teardown of an aborted run; the result records why.
    }
    S.mainThreadDone(Main);
    setSelfRecord(nullptr);
    Sched = nullptr;
    Result = S.takeResult();
    break;
  }
  }

  Result.WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  if (telemetry::enabled()) {
    static SchedulerMetrics Metrics;
    Metrics.record(Result);
  }
  {
    telemetry::Timeline &TL = telemetry::Timeline::global();
    if (TL.enabled()) {
      TL.nameThread(0, "scheduler");
      for (const ThreadRecord &T : threadRecords())
        TL.nameThread(static_cast<uint32_t>(T.Id.Raw) + 1, T.Name);
    }
  }
  return Result;
}

// -- ScopeGuard / yieldNow ----------------------------------------------------

ScopeGuard::ScopeGuard(Label Site) : RT(Runtime::current()) {
  if (RT)
    RT->onCall(Site);
}

ScopeGuard::~ScopeGuard() {
  if (RT)
    RT->onReturn();
}

void dlf::yieldNow() {
  Runtime *RT = Runtime::current();
  if (RT && RT->mode() == RunMode::Active) {
    ThreadRecord *Self = RT->selfRecord();
    if (Self && RT->scheduler()) {
      RT->scheduler()->yieldPoint(*Self);
      return;
    }
  }
  std::this_thread::yield();
}
