//===- runtime/ConditionVariable.h - Instrumented condition ------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A condition variable that participates in the managed runtime. The
/// paper's model treats a thread "waiting on a wait in Java" as disabled
/// (§2.1) and scopes its detection to resource deadlocks; this primitive
/// implements that semantics — waiting threads leave Enabled(s), notifies
/// re-enable them, and a stall in which some thread is parked on a
/// condition is classified as a *communication* stall in the
/// ExecutionResult (an extension to the paper's classification).
///
/// In Record and Passthrough modes the class delegates to a
/// std::condition_variable_any over the instrumented Mutex, so the lock
/// release/re-acquire is observed by the recorder automatically.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RUNTIME_CONDITIONVARIABLE_H
#define DLF_RUNTIME_CONDITIONVARIABLE_H

#include "event/Label.h"
#include "runtime/Mutex.h"

#include <condition_variable>
#include <string>

namespace dlf {

class Runtime;
struct CondRecord;

/// An instrumented condition variable. Like Mutex, binds to the runtime
/// installed at construction time.
class ConditionVariable {
public:
  explicit ConditionVariable(const std::string &Name = "cond");

  ConditionVariable(const ConditionVariable &) = delete;
  ConditionVariable &operator=(const ConditionVariable &) = delete;

  /// Atomically releases \p M (which the caller must hold exactly once)
  /// and blocks until notified, then re-acquires M. \p ReacquireSite
  /// labels the re-acquisition for the analysis. Callers must use the
  /// standard predicate-loop idiom: in Active mode there are no spurious
  /// wakeups, but notifications can still race with state changes.
  void wait(Mutex &M, Label ReacquireSite = Label());

  /// Waits until \p Predicate holds.
  template <typename Pred>
  void waitUntil(Mutex &M, Pred Predicate, Label ReacquireSite = Label()) {
    while (!Predicate())
      wait(M, ReacquireSite);
  }

  /// Wakes one waiter (no-op when none).
  void notifyOne();

  /// Wakes every waiter.
  void notifyAll();

private:
  Runtime *RT = nullptr;
  CondRecord *Rec = nullptr;
  std::condition_variable_any Real;
};

} // namespace dlf

#endif // DLF_RUNTIME_CONDITIONVARIABLE_H
