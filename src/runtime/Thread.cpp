//===- runtime/Thread.cpp - Instrumented thread wrapper --------------------===//

#include "runtime/Thread.h"

#include "runtime/Abort.h"
#include "runtime/Recorder.h"
#include "runtime/Records.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"

#include <cassert>
#include <utility>

using namespace dlf;

Thread::Thread(std::function<void()> Fn, const std::string &Name, Label Site,
               const void *Parent) {
  Runtime *Current = Runtime::current();
  if (!Current || Current->mode() == RunMode::Passthrough) {
    Os = std::thread(std::move(Fn));
    return;
  }
  RT = Current;
  if (!Site.isValid())
    Site = Label::intern("thread:" + Name);
  Rec = &RT->createThreadRecord(Name, this, Parent, Site);
  // The child announces ThreadStart via its record (set by
  // createThreadRecord); in Active mode it will block until the scheduler
  // commits that start. The creator keeps running: spawning is not a
  // scheduling point in the paper's model. Capture the runtime and record
  // by value: the Thread object itself may be moved while the body runs.
  Os = std::thread([BoundRT = RT, BoundRec = Rec, Body = std::move(Fn)] {
    body(*BoundRT, *BoundRec, Body);
  });
}

void Thread::body(Runtime &RT, ThreadRecord &Rec,
                  const std::function<void()> &Fn) {
  RT.setSelfRecord(&Rec);
  if (RT.mode() == RunMode::Active) {
    Scheduler *Sched = RT.scheduler();
    assert(Sched && "managed thread without a scheduler");
    try {
      Sched->threadBodyBegin(Rec);
      Fn();
    } catch (ExecutionAborted &) {
      // Teardown of an aborted run; fall through to threadBodyEnd.
    }
    Sched->threadBodyEnd(Rec);
  } else {
    Fn();
    std::lock_guard<std::mutex> Guard(RT.recordMu());
    Rec.State = ThreadState::Finished;
  }
  RT.setSelfRecord(nullptr);
}

void Thread::join() {
  if (!Os.joinable())
    return;
  if (RT && Rec && RT == Runtime::current() &&
      RT->mode() == RunMode::Active && RT->scheduler()) {
    ThreadRecord *Self = RT->selfRecord();
    assert(Self && "managed join from an unmanaged thread");
    try {
      RT->scheduler()->join(*Self, *Rec);
    } catch (ExecutionAborted &) {
      // Complete the OS join before propagating so the object stays
      // destructible: the target unwinds promptly once the run is aborted.
      Os.join();
      throw;
    }
  }
  Os.join();
  if (RT && Rec && RT == Runtime::current() &&
      RT->mode() == RunMode::Record) {
    // Join edge in Record mode (Active mode merges at the Join commit).
    ThreadRecord *Self = RT->selfRecord();
    if (Self) {
      std::lock_guard<std::mutex> Guard(RT->recordMu());
      if (RT->options().HappensBefore != HbMode::Off)
        vcJoin(Self->Clock, Rec->Clock);
      if (DependencyRecorder *Recorder = RT->recorder())
        Recorder->onJoinExecuted(*Self, *Rec);
    }
  }
}

Thread::~Thread() {
  if (!Os.joinable())
    return;
  try {
    join();
  } catch (ExecutionAborted &) {
    // Destructors must not throw; the OS join already happened.
  }
}

Thread::Thread(Thread &&Other) noexcept
    : RT(Other.RT), Rec(Other.Rec), Os(std::move(Other.Os)) {
  Other.RT = nullptr;
  Other.Rec = nullptr;
}

Thread &Thread::operator=(Thread &&Other) noexcept {
  if (this == &Other)
    return *this;
  assert(!Os.joinable() && "assigning over a joinable thread");
  RT = Other.RT;
  Rec = Other.Rec;
  Os = std::move(Other.Os);
  Other.RT = nullptr;
  Other.Rec = nullptr;
  return *this;
}
