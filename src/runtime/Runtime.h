//===- runtime/Runtime.h - Managed execution façade --------------*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-execution runtime: registries of managed threads and locks, the
/// abstraction engine, mode dispatch (Passthrough / Record / Active) and
/// the entry point Runtime::run. One Runtime instance drives exactly one
/// execution of a program (a std::function<void()> entry); the ActiveTester
/// driver creates a fresh Runtime per run.
///
/// Instrumented code (dlf::Mutex, dlf::Thread, DLF_SCOPE, DLF_NEW_OBJECT)
/// finds the runtime through Runtime::current(), which is installed for the
/// duration of run(). When no runtime is installed the primitives degrade
/// to plain std:: behaviour, so substrates and examples can also run
/// entirely uninstrumented.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RUNTIME_RUNTIME_H
#define DLF_RUNTIME_RUNTIME_H

#include "abstraction/AbstractionEngine.h"
#include "runtime/Options.h"
#include "runtime/Records.h"
#include "runtime/Result.h"

#include <deque>
#include <functional>
#include <mutex>
#include <string>

namespace dlf {

class Scheduler;
class SchedulerStrategy;
class DependencyRecorder;
class CycleSpec;

/// Drives one managed execution. Not copyable; single-use.
class Runtime {
public:
  /// \p Strat is required for Active mode (ignored otherwise); \p Recorder
  /// may be null. Both must outlive the Runtime.
  /// \p Avoid optionally supplies confirmed cycles the runtime must
  /// prevent (Dimmunix-style immunity; see DESIGN.md): whenever one cycle
  /// participant is mid-flight, other participants' entry acquires are
  /// deferred, which inserts the serialization a guard lock would.
  explicit Runtime(Options Opts, SchedulerStrategy *Strat = nullptr,
                   DependencyRecorder *Recorder = nullptr,
                   const std::vector<CycleSpec> *Avoid = nullptr);
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// The runtime installed by an in-flight run() on this process, if any.
  static Runtime *current();

  /// Executes \p Entry under this runtime's mode and returns the outcome.
  /// Must be called exactly once.
  ExecutionResult run(const std::function<void()> &Entry);

  const Options &options() const { return Opts; }
  RunMode mode() const { return Opts.Mode; }

  // -- Registries -------------------------------------------------------------

  /// Registers a new managed thread created by the calling thread. \p Obj /
  /// \p Parent / \p Site feed the abstraction engine (§2.4); the creator's
  /// indexing state supplies absI_k.
  ThreadRecord &createThreadRecord(const std::string &Name, const void *Obj,
                                   const void *Parent, Label Site);

  /// Registers a new managed lock; same abstraction conventions.
  LockRecord &createLockRecord(const std::string &Name, const void *Obj,
                               const void *Parent, Label Site);

  /// Registers a managed condition variable (Active-mode bookkeeping).
  CondRecord &createCondRecord(const std::string &Name);

  ThreadRecord &threadById(ThreadId Id);
  LockRecord &lockById(LockId Id);
  const LockRecord &lockById(LockId Id) const;
  CondRecord &condById(uint64_t Id);

  /// Stable-address container of all thread records (the scheduler iterates
  /// this to compute Enabled(s)).
  std::deque<ThreadRecord> &threadRecords() { return Threads; }

  // -- Per-thread state ---------------------------------------------------------

  /// The calling thread's record, or null for unmanaged threads.
  ThreadRecord *selfRecord();
  void setSelfRecord(ThreadRecord *Rec);

  // -- Instrumentation events ----------------------------------------------------

  /// `Site : Call(m)` in the calling thread (no-op when unmanaged).
  void onCall(Label Site);
  /// `Return(m)` in the calling thread.
  void onReturn();
  /// `Site : o = new(o', T)`: records the creation for the k-object
  /// CreationMap and advances the creating thread's execution index.
  void registerObject(const void *Obj, const void *Parent, Label Site);
  /// Forgets \p Obj's address (call from destructors).
  void objectDestroyed(const void *Obj);

  // -- Component access ------------------------------------------------------------

  AbstractionEngine &abstractions() { return Engine; }
  /// Non-null only while an Active-mode run() is in flight.
  Scheduler *scheduler() { return Sched; }
  DependencyRecorder *recorder() { return Recorder; }
  /// Cycles the avoidance extension must keep infeasible; may be null.
  const std::vector<CycleSpec> *avoidSpecs() const { return Avoid; }

  /// Serializes Record-mode bookkeeping.
  std::mutex &recordMu() { return RecordMu; }
  /// Counts one executed acquire event in Record mode (caller holds
  /// recordMu()).
  void noteRecordedAcquire() { ++RecordAcquires; }

private:
  Options Opts;
  SchedulerStrategy *Strat;
  DependencyRecorder *Recorder;
  const std::vector<CycleSpec> *Avoid;

  AbstractionEngine Engine;
  std::mutex RegistryMu;
  std::deque<ThreadRecord> Threads;
  std::deque<LockRecord> Locks;
  std::deque<CondRecord> Conds;

  /// Indexing state used to compute abstractions for objects created before
  /// the main thread record exists (i.e. the main thread record itself).
  IndexingState BootstrapIndex;

  std::mutex RecordMu;
  uint64_t RecordAcquires = 0;

  Scheduler *Sched = nullptr;
  bool Ran = false;
};

/// Scoped Call/Return instrumentation (paper events 3 and 4). Declare one at
/// the top of an instrumented method body.
class ScopeGuard {
public:
  explicit ScopeGuard(Label Site);
  ~ScopeGuard();
  ScopeGuard(const ScopeGuard &) = delete;
  ScopeGuard &operator=(const ScopeGuard &) = delete;

private:
  Runtime *RT;
};

/// Cooperative scheduling point: in Active mode, offers the scheduler a
/// chance to run another thread; otherwise hints the OS scheduler. Use
/// inside polling loops so serialized executions cannot monopolize the
/// token.
void yieldNow();

} // namespace dlf

/// Marks the body of an instrumented method (emits Call on entry, Return on
/// exit). \p Name must be a string literal identifying the method.
#define DLF_SCOPE(Name)                                                        \
  ::dlf::ScopeGuard DlfScopeGuardInstance { DLF_NAMED_SITE(Name) }

/// Records a `new` event: \p ObjPtr was created inside a method of
/// \p ParentPtr (nullptr for top-level allocations) at this source location.
#define DLF_NEW_OBJECT(ObjPtr, ParentPtr)                                      \
  do {                                                                         \
    if (::dlf::Runtime *DlfRt = ::dlf::Runtime::current())                     \
      DlfRt->registerObject((ObjPtr), (ParentPtr), DLF_SITE());                \
  } while (false)

#endif // DLF_RUNTIME_RUNTIME_H
