//===- runtime/Scheduler.cpp - Cooperative serialized scheduler ------------===//

#include "runtime/Scheduler.h"

#include "fuzzer/CycleSpec.h"
#include "fuzzer/RealDeadlockChecker.h"
#include "runtime/Abort.h"
#include "runtime/Recorder.h"
#include "runtime/Runtime.h"
#include "support/Debug.h"
#include "telemetry/Timeline.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace dlf;

namespace {

/// Timeline lane for a managed thread. Lane 0 is the scheduler itself, so
/// thread lanes are offset by one.
uint32_t timelineTid(const ThreadRecord &T) {
  return static_cast<uint32_t>(T.Id.Raw) + 1;
}

/// Emit the "paused" span that ends now for a thread being unpaused
/// (thrash or livelock monitor). The span start is reconstructed from the
/// scheduler's own PausedSinceWall stamp.
void timelinePausedSpan(telemetry::Timeline &TL, const ThreadRecord &T) {
  uint64_t EndUs = TL.nowUs();
  uint64_t PausedUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - T.PausedSinceWall)
          .count());
  uint64_t StartUs = PausedUs < EndUs ? EndUs - PausedUs : 0;
  TL.complete("paused", timelineTid(T), StartUs, EndUs);
}

} // namespace

Scheduler::Scheduler(Runtime &RT, const Options &Opts, SchedulerStrategy &Strat,
                     DependencyRecorder *Recorder)
    : RT(RT), Opts(Opts), Strat(Strat), Recorder(Recorder),
      Random(Opts.Seed) {}

bool Scheduler::aborted() const {
  std::lock_guard<std::mutex> Guard(Mu);
  return AbortFlag;
}

void Scheduler::adoptMainThread(ThreadRecord &Main) {
  std::lock_guard<std::mutex> Guard(Mu);
  Main.State = ThreadState::Running;
  Main.Pending = PendingOp();
  RunningId = Main.Id;
}

void Scheduler::threadBodyBegin(ThreadRecord &Self) {
  std::unique_lock<std::mutex> Lk(Mu);
  Cv.wait(Lk, [&] { return AbortFlag || RunningId == Self.Id; });
  if (AbortFlag)
    throw ExecutionAborted();
  assert(Self.State == ThreadState::Running && "token without Running state");
}

void Scheduler::threadBodyEnd(ThreadRecord &Self) {
  std::unique_lock<std::mutex> Lk(Mu);
  bool HadToken = (RunningId == Self.Id);
  Self.State = ThreadState::Finished;
  Self.Pending = PendingOp();
  Self.Paused = false;
  // A thread that unwound due to abort may still "hold" modeled locks whose
  // guards were skipped by the teardown; everyone is unwinding, so clearing
  // ownership is safe. On a normal exit the stack must already be empty.
  assert((AbortFlag || Self.LockStack.empty()) &&
         "thread finished while holding locks");
  for (const LockStackEntry &E : Self.LockStack) {
    LockRecord &L = RT.lockById(E.Lock);
    if (L.Owner == Self.Id) {
      L.Owner = ThreadId();
      L.Recursion = 0;
    }
    L.Readers.erase(std::remove(L.Readers.begin(), L.Readers.end(), Self.Id),
                    L.Readers.end());
  }
  Self.LockStack.clear();

  if (AbortFlag) {
    // Teardown path: no scheduling; just make sure waiters re-check state.
    Cv.notify_all();
    DoneCv.notify_all();
    return;
  }
  if (HadToken) {
    RunningId = ThreadId();
    pickLoop();
  }
  Cv.notify_all();
  DoneCv.notify_all();
}

void Scheduler::mainThreadDone(ThreadRecord &Main) {
  threadBodyEnd(Main);
  std::unique_lock<std::mutex> Lk(Mu);
  DoneCv.wait(Lk, [&] { return Done; });
  // All managed threads are finished (or unwinding past their last
  // scheduling point); OS-level joins happen in dlf::Thread.
}

bool Scheduler::lockAvailable(const LockRecord &L, LockMode Mode) {
  if (L.Owner.isValid())
    return false;
  return Mode == LockMode::Shared || L.Readers.empty();
}

namespace {
[[maybe_unused]] bool holdsShared(const LockRecord &L, ThreadId T) {
  return std::find(L.Readers.begin(), L.Readers.end(), T) != L.Readers.end();
}
} // namespace

void Scheduler::acquire(ThreadRecord &Self, LockRecord &L, Label Site,
                        LockMode Mode) {
  {
    std::lock_guard<std::mutex> Guard(Mu);
    if (AbortFlag)
      throw ExecutionAborted();
    assert(RunningId == Self.Id && "acquire outside of the thread's turn");
    // Re-entrant acquires are invisible to the analysis (footnote 2).
    // Only the exclusive side is re-entrant; recursive read acquires and
    // upgrades/downgrades are out of the model (pthread rwlocks make the
    // upgrade a real single-lock deadlock, which Algorithm 4's
    // distinct-locks cycles cannot represent).
    if (Mode == LockMode::Exclusive && L.Owner == Self.Id) {
      ++L.Recursion;
      return;
    }
    assert(!holdsShared(L, Self.Id) &&
           "recursive or upgrading rwlock acquire is unsupported");
    assert(!(Mode == LockMode::Shared && L.Owner == Self.Id) &&
           "rwlock downgrade (read acquire while write-held) is unsupported");
  }
  announceAndWait(Self, PendingOp::acquireAttempt(L.Id, Site, Mode));
  assert((Mode == LockMode::Shared ? holdsShared(L, Self.Id)
                                   : L.Owner == Self.Id) &&
         "acquire returned without ownership");
}

void Scheduler::release(ThreadRecord &Self, LockRecord &L, Label Site) {
  {
    std::lock_guard<std::mutex> Guard(Mu);
    if (AbortFlag)
      return; // silent: called from RAII guards during unwinding
    assert(RunningId == Self.Id && "release outside of the thread's turn");
    assert((L.Owner == Self.Id || holdsShared(L, Self.Id)) &&
           "releasing a lock we do not own");
    if (L.Owner == Self.Id && L.Recursion > 1) {
      --L.Recursion;
      return;
    }
  }
  announceAndWait(Self, PendingOp::release(L.Id, Site),
                  /*NoThrowOnAbort=*/true);
}

bool Scheduler::tryAcquire(ThreadRecord &Self, LockRecord &L, Label Site,
                           LockMode Mode) {
  std::lock_guard<std::mutex> Guard(Mu);
  if (AbortFlag)
    throw ExecutionAborted();
  assert(RunningId == Self.Id && "tryAcquire outside of the thread's turn");
  if (Mode == LockMode::Exclusive && L.Owner == Self.Id) {
    ++L.Recursion;
    return true;
  }
  assert(!holdsShared(L, Self.Id) &&
         "recursive or upgrading rwlock tryAcquire is unsupported");
  if (!lockAvailable(L, Mode)) {
    // A failed probe: the thread observed the lock busy and bails out. It
    // never blocks, so it must never appear as a wait-for edge or be
    // paused; the probe is only counted.
    ++Result.TryProbes;
    return false;
  }
  // A successful tryLock is an Acquire event like any other.
  if (Opts.HappensBefore == HbMode::FullSync) {
    vcJoin(Self.Clock, L.Clock);
    if (Mode == LockMode::Exclusive)
      vcJoin(Self.Clock, L.ReadersClock); // every read release precedes us
  }
  if (Opts.HappensBefore != HbMode::Off)
    vcTick(Self.Clock, Self.Id);
  if (Recorder) {
    Recorder->onAcquireExecuted(Self, L, Self.LockStack, Site, Mode);
    // A successful trylock is granted at the same instant it is attempted.
    Recorder->onLockGranted(Self, L, Site, Mode);
  }
  ++Result.AcquireEvents;
  Self.LockStack.push_back({L.Id, Site, Mode});
  if (Mode == LockMode::Shared) {
    L.Readers.push_back(Self.Id);
  } else {
    L.Owner = Self.Id;
    L.Recursion = 1;
    L.ReadersClock = VectorClock();
  }
  return true;
}

void Scheduler::condWait(ThreadRecord &Self, CondRecord &CV, LockRecord &M,
                         Label ReacquireSite) {
  {
    std::lock_guard<std::mutex> Guard(Mu);
    if (AbortFlag)
      throw ExecutionAborted();
    assert(M.Owner == Self.Id && "condition wait without holding the lock");
    assert(M.Recursion == 1 &&
           "condition wait on a recursively held lock is unsupported");
  }
  announceAndWait(Self, PendingOp::condWait(M.Id, ReacquireSite, CV.Id));
}

void Scheduler::condNotify(ThreadRecord &Self, CondRecord &CV, bool All) {
  announceAndWait(Self, PendingOp::notify(CV.Id, All));
}

void Scheduler::join(ThreadRecord &Self, ThreadRecord &Target) {
  {
    std::lock_guard<std::mutex> Guard(Mu);
    if (AbortFlag)
      throw ExecutionAborted();
    assert(&Self != &Target && "thread cannot join itself");
    if (Target.State == ThreadState::Finished)
      return;
  }
  announceAndWait(Self, PendingOp::join(Target.Id));
}

void Scheduler::yieldPoint(ThreadRecord &Self) {
  announceAndWait(Self, PendingOp::yieldPoint());
}

void Scheduler::announceAndWait(ThreadRecord &Self, PendingOp Op,
                                bool NoThrowOnAbort) {
  std::unique_lock<std::mutex> Lk(Mu);
  if (AbortFlag) {
    if (NoThrowOnAbort)
      return;
    throw ExecutionAborted();
  }
  assert(RunningId == Self.Id && "announcing without the token");
  Self.State = ThreadState::Announced;
  Self.Pending = Op;
  Self.YieldEval = -1;
  Self.YieldsRemaining = 0;
  RunningId = ThreadId();
  pickLoop();
  Cv.wait(Lk, [&] { return AbortFlag || RunningId == Self.Id; });
  if (AbortFlag) {
    if (NoThrowOnAbort)
      return;
    throw ExecutionAborted();
  }
  assert(Self.State == ThreadState::Running && "token without Running state");
}

bool Scheduler::isSchedulable(const ThreadRecord &T) const {
  if (T.State == ThreadState::Finished)
    return false;
  assert(T.State != ThreadState::Running &&
         "a thread cannot run while the scheduler picks");
  switch (T.Pending.K) {
  case PendingOp::Kind::None:
  case PendingOp::Kind::CondBlocked:
    // CondBlocked threads become ReacquireAfterWait via a notify commit.
    return false;
  case PendingOp::Kind::CompleteAcquire:
  case PendingOp::Kind::ReacquireAfterWait:
    // Disabled while "waiting to acquire a lock already held by some other
    // thread" (paper §2.1) — in a conflicting mode: a paused or blocked
    // reader is enabled while only other readers hold the lock.
    return lockAvailable(RT.lockById(T.Pending.Lock), T.Pending.Mode);
  case PendingOp::Kind::Join:
    return RT.threadById(T.Pending.JoinTarget).State == ThreadState::Finished;
  case PendingOp::Kind::ThreadStart:
  case PendingOp::Kind::AcquireAttempt:
  case PendingOp::Kind::Release:
  case PendingOp::Kind::YieldPoint:
  case PendingOp::Kind::ThreadExit:
  case PendingOp::Kind::CondWait:
  case PendingOp::Kind::Notify:
    return true;
  }
  return false;
}

void Scheduler::runLivelockMonitor() {
  // The wall clock is only consulted when some thread is paused and the
  // fallback is enabled (steady_clock::now() per pick round would be pure
  // overhead on the hot path).
  std::chrono::steady_clock::time_point Now{};
  bool HaveNow = false;
  for (ThreadRecord &T : RT.threadRecords()) {
    if (!T.Paused)
      continue;
    bool StepsExceeded =
        Result.Steps - T.PausedSinceStep > Opts.MaxPausedSteps;
    bool WallExceeded = false;
    if (!StepsExceeded && Opts.MaxPausedWallMs) {
      // Wall-clock fallback (the paper's monitor thread measures real
      // time): a peer in long compute between scheduling points commits
      // no steps, so without this a paused thread would stay paused for
      // the whole compute stretch.
      if (!HaveNow) {
        Now = std::chrono::steady_clock::now();
        HaveNow = true;
      }
      WallExceeded = std::chrono::duration<double, std::milli>(
                         Now - T.PausedSinceWall)
                         .count() > static_cast<double>(Opts.MaxPausedWallMs);
    }
    if (!StepsExceeded && !WallExceeded)
      continue;
    T.Paused = false;
    T.HasPausedPending = false;
    T.ForceExecute = true;
    ++Result.ForcedUnpauses;
    {
      telemetry::Timeline &TL = telemetry::Timeline::global();
      if (TL.enabled()) {
        timelinePausedSpan(TL, T);
        TL.instant("unpause-forced", timelineTid(T));
      }
    }
    DLF_DEBUG_LOG("livelock monitor unpaused thread "
                  << T.Name << (WallExceeded ? " (wall-clock)" : ""));
  }
}

void Scheduler::giveToken(ThreadRecord &T) {
  T.State = ThreadState::Running;
  T.Pending = PendingOp();
  RunningId = T.Id;
  Cv.notify_all();
}

void Scheduler::abortAll() {
  AbortFlag = true;
  Done = true;
  Cv.notify_all();
  DoneCv.notify_all();
}

std::optional<DeadlockWitness>
Scheduler::checkRealDeadlock(const ThreadRecord *For,
                             const std::vector<LockStackEntry> *Tentative) {
  std::vector<ThreadStackView> Views;
  // Paused threads are committed to their pending acquire: extend their
  // stacks with it so a cycle is confirmed as soon as it is inevitable
  // (matching the paper's zero-thrash reproductions).
  std::vector<std::vector<LockStackEntry>> PausedStacks;
  PausedStacks.reserve(RT.threadRecords().size());
  for (ThreadRecord &T : RT.threadRecords()) {
    if (T.State == ThreadState::Finished)
      continue;
    const std::vector<LockStackEntry> *Stack =
        (&T == For && Tentative) ? Tentative : &T.LockStack;
    if (&T != For && T.Paused && T.HasPausedPending) {
      PausedStacks.push_back(*Stack);
      PausedStacks.back().push_back(T.PausedPending);
      Stack = &PausedStacks.back();
    } else if (&T != For &&
               T.Pending.K == PendingOp::Kind::ReacquireAfterWait) {
      // A notified waiter is committed to re-acquiring the condvar's lock,
      // but that lock was popped from its stack when the wait released it —
      // extend the view so the reacquire is a visible wait-for edge. (A
      // still-parked CondBlocked thread gets no edge: it waits for a
      // notify, not for the lock.)
      PausedStacks.push_back(*Stack);
      PausedStacks.back().push_back(
          {T.Pending.Lock, T.Pending.Site, LockMode::Exclusive});
      Stack = &PausedStacks.back();
    }
    if (Stack->empty())
      continue;
    Views.push_back({&T, Stack});
  }
  return findRealDeadlock(
      Views, [this](LockId Id) -> const LockRecord & { return RT.lockById(Id); });
}

void Scheduler::pickLoop() {
  // Invariant: called under Mu with no thread holding the token.
  assert(!RunningId.isValid() && "pick loop while a thread runs");
  // One pickLoop call is one scheduling decision: when the timeline is on,
  // it shows up as a "schedule" span on lane 0 (the scheduler lane).
  struct ScheduleSpan {
    telemetry::Timeline &TL = telemetry::Timeline::global();
    bool On = TL.enabled();
    uint64_t StartUs = On ? TL.nowUs() : 0;
    ~ScheduleSpan() {
      if (On)
        TL.complete("schedule", 0, StartUs, TL.nowUs());
    }
  } Span;
  (void)Span;
  uint64_t RoundsWithoutCommit = 0;
  for (;;) {
    if (AbortFlag || Done)
      return;
    runLivelockMonitor();

    std::vector<ThreadRecord *> Enabled;
    bool AnyUnfinished = false;
    for (ThreadRecord &T : RT.threadRecords()) {
      if (T.State == ThreadState::Finished)
        continue;
      AnyUnfinished = true;
      if (isSchedulable(T))
        Enabled.push_back(&T);
    }

    if (!AnyUnfinished) {
      Result.Completed = true;
      Done = true;
      Cv.notify_all();
      DoneCv.notify_all();
      return;
    }

    if (Enabled.empty()) {
      // "System Stall!" (Algorithms 2 and 3): every live thread is waiting
      // on a lock, a join, or a condition. Reconstruct the wait-for cycle
      // for the report and classify communication deadlocks (threads
      // parked on never-notified conditions).
      Result.Stalled = true;
      {
        telemetry::Timeline &TL = telemetry::Timeline::global();
        if (TL.enabled())
          TL.instant("stall", 0);
      }
      for (ThreadRecord &T : RT.threadRecords())
        if (T.State != ThreadState::Finished &&
            T.Pending.K == PendingOp::Kind::CondBlocked)
          Result.CommunicationStall = true;
      if (!Result.Witness)
        Result.Witness = checkRealDeadlock(nullptr, nullptr);
      DLF_DEBUG_LOG("system stall after " << Result.Steps << " steps");
      abortAll();
      return;
    }

    // Candidates: Enabled \ Paused (Algorithm 3 line 6), minus threads the
    // avoidance extension is deferring.
    std::vector<ThreadRecord *> Candidates;
    bool AnyDeferred = false;
    for (ThreadRecord *T : Enabled) {
      if (T->DeferredByAvoidance) {
        AnyDeferred = true;
        continue;
      }
      if (!T->Paused)
        Candidates.push_back(T);
    }

    if (Candidates.empty()) {
      // Thrashing (Algorithm 3 lines 26-28): every enabled thread is
      // paused (or avoidance-deferred behind a paused participant);
      // remove a random paused thread. It must then execute its pending
      // acquire rather than re-pause, matching the resumed-past-the-
      // instrumentation-point semantics of the Java implementation.
      std::vector<ThreadRecord *> PausedEnabled;
      for (ThreadRecord *T : Enabled)
        if (T->Paused)
          PausedEnabled.push_back(T);
      if (!PausedEnabled.empty()) {
        ThreadRecord *Victim =
            PausedEnabled[Random.nextIndex(PausedEnabled.size())];
        Victim->Paused = false;
        Victim->HasPausedPending = false;
        Victim->ForceExecute = true;
        ++Result.Thrashes;
        RoundsWithoutCommit = 0;
        {
          telemetry::Timeline &TL = telemetry::Timeline::global();
          if (TL.enabled()) {
            timelinePausedSpan(TL, *Victim);
            TL.instant("thrash", timelineTid(*Victim));
          }
        }
        DLF_DEBUG_LOG("thrash #" << Result.Thrashes << ": unpaused "
                                 << Victim->Name);
        continue;
      }
      assert(AnyDeferred && "empty candidates without paused or deferred");
      // Only avoidance deferrals remain: retry them (transient — the
      // in-progress participant is otherwise runnable, so this branch
      // cannot recur indefinitely).
      for (ThreadRecord &T : RT.threadRecords())
        T.DeferredByAvoidance = false;
      continue;
    }
    (void)AnyDeferred;

    // §4 yield filtering: threads entering a potential cycle defer to the
    // other candidates for a bounded number of rounds.
    std::vector<ThreadRecord *> Preferred;
    if (Opts.UseYields) {
      for (ThreadRecord *T : Candidates) {
        if (T->Pending.K == PendingOp::Kind::AcquireAttempt &&
            T->YieldEval < 0) {
          bool Yields = Strat.shouldYield(*T, RT.lockById(T->Pending.Lock),
                                          T->Pending.Site);
          T->YieldEval = Yields ? 1 : 0;
          T->YieldsRemaining = Yields ? Opts.YieldBudget : 0;
          if (Yields)
            ++Result.Yields;
        }
        if (T->YieldsRemaining == 0)
          Preferred.push_back(T);
      }
    }
    std::vector<ThreadRecord *> &Pool =
        (!Opts.UseYields || Preferred.empty()) ? Candidates : Preferred;

    std::vector<const ThreadRecord *> PoolView(Pool.begin(), Pool.end());
    size_t Idx = Strat.pickIndex(PoolView, Random);
    assert(Idx < Pool.size() && "strategy picked out of range");
    ThreadRecord *Picked = Pool[Idx];

    // Consume one yield round from every deferring candidate we skipped.
    if (Opts.UseYields && &Pool == &Preferred)
      for (ThreadRecord *T : Candidates)
        if (T->YieldsRemaining > 0)
          --T->YieldsRemaining;

    if (++RoundsWithoutCommit > 16 * RT.threadRecords().size() + 64) {
      // Safety net: the pause/unpause dance must converge long before this.
      Result.LivelockAborted = true;
      abortAll();
      return;
    }
    if (commitOp(*Picked))
      return;
  }
}

bool Scheduler::commitOp(ThreadRecord &T) {
  switch (T.Pending.K) {
  case PendingOp::Kind::ThreadStart:
  case PendingOp::Kind::YieldPoint:
    ++Result.Steps;
    giveToken(T);
    return true;

  case PendingOp::Kind::AcquireAttempt:
    return commitAcquireAttempt(T);

  case PendingOp::Kind::CompleteAcquire: {
    ++Result.Steps;
    LockRecord &L = RT.lockById(T.Pending.Lock);
    assert(lockAvailable(L, T.Pending.Mode) &&
           "completing acquire of an unavailable lock");
    if (T.Pending.Mode == LockMode::Shared) {
      L.Readers.push_back(T.Id);
    } else {
      L.Owner = T.Id;
      L.Recursion = 1;
      L.ReadersClock = VectorClock();
    }
    // The attempt already fired onAcquireExecuted; the blocked thread now
    // actually holds the lock (trace capture is grant-ordered).
    if (Recorder)
      Recorder->onLockGranted(T, L, T.Pending.Site, T.Pending.Mode);
    giveToken(T);
    return true;
  }

  case PendingOp::Kind::Release: {
    ++Result.Steps;
    LockRecord &L = RT.lockById(T.Pending.Lock);
    assert((L.Owner == T.Id || holdsShared(L, T.Id)) &&
           "releasing an unowned lock");
    // Pop the topmost matching entry; supports non-nested release orders
    // (the paper's "can easily be extended" case). The entry's mode tells
    // us which side of a rwlock is being released.
    LockMode Mode = LockMode::Exclusive;
    for (size_t I = T.LockStack.size(); I-- > 0;) {
      if (T.LockStack[I].Lock == L.Id) {
        Mode = T.LockStack[I].Mode;
        T.LockStack.erase(T.LockStack.begin() + static_cast<long>(I));
        break;
      }
    }
    if (Mode == LockMode::Shared) {
      L.Readers.erase(std::remove(L.Readers.begin(), L.Readers.end(), T.Id),
                      L.Readers.end());
      if (Opts.HappensBefore == HbMode::FullSync) {
        // Read releases accumulate: the next *write* acquire orders after
        // every reader, but the next read acquire only after the last
        // writer (readers do not order among themselves).
        vcTick(T.Clock, T.Id);
        vcJoin(L.ReadersClock, T.Clock);
      }
    } else {
      L.Owner = ThreadId();
      L.Recursion = 0;
      if (Opts.HappensBefore == HbMode::FullSync) {
        vcTick(T.Clock, T.Id);
        L.Clock = T.Clock;
      }
    }
    if (Recorder)
      Recorder->onReleaseExecuted(T, L, Mode);
    // A release can clear avoidance conflicts: let deferred threads retry.
    for (ThreadRecord &U : RT.threadRecords())
      U.DeferredByAvoidance = false;
    giveToken(T);
    return true;
  }

  case PendingOp::Kind::Join:
    ++Result.Steps;
    assert(RT.threadById(T.Pending.JoinTarget).State ==
               ThreadState::Finished &&
           "join committed before target finished");
    if (Opts.HappensBefore != HbMode::Off)
      vcJoin(T.Clock, RT.threadById(T.Pending.JoinTarget).Clock);
    if (Recorder)
      Recorder->onJoinExecuted(T, RT.threadById(T.Pending.JoinTarget));
    giveToken(T);
    return true;

  case PendingOp::Kind::CondWait: {
    ++Result.Steps;
    LockRecord &L = RT.lockById(T.Pending.Lock);
    CondRecord &CV = RT.condById(T.Pending.Cond);
    assert(L.Owner == T.Id && "condition wait without the lock");
    // Atomically release the lock and park on the condition.
    for (size_t I = T.LockStack.size(); I-- > 0;) {
      if (T.LockStack[I].Lock == L.Id) {
        T.LockStack.erase(T.LockStack.begin() + static_cast<long>(I));
        break;
      }
    }
    L.Owner = ThreadId();
    L.Recursion = 0;
    if (Opts.HappensBefore == HbMode::FullSync) {
      vcTick(T.Clock, T.Id);
      L.Clock = T.Clock;
    }
    // wait() drops the mutex: an Exclusive release in the trace (the
    // reacquire after wakeup re-enters as a fresh acquire).
    if (Recorder)
      Recorder->onReleaseExecuted(T, L, LockMode::Exclusive);
    for (ThreadRecord &U : RT.threadRecords())
      U.DeferredByAvoidance = false;
    T.State = ThreadState::Blocked;
    T.Pending.K = PendingOp::Kind::CondBlocked;
    CV.Waiting.push_back(T.Id);
    return false;
  }

  case PendingOp::Kind::ReacquireAfterWait: {
    ++Result.Steps;
    LockRecord &L = RT.lockById(T.Pending.Lock);
    assert(!L.Owner.isValid() && "reacquire of a held lock");
    // The reacquire is pausable just like a plain acquire: a cycle whose
    // wait-for edge exists only through the wakeup path (waiter holds a
    // lock across wait, another thread takes the wait mutex and then wants
    // the held lock) is reproducible only if the scheduler can hold the
    // notified waiter right before it re-enters the lock.
    if (!T.ForceExecute) {
      std::vector<LockStackEntry> Tentative = T.LockStack;
      Tentative.push_back({L.Id, T.Pending.Site, LockMode::Exclusive});
      if (Strat.shouldPause(T, L, Tentative)) {
        T.Paused = true;
        ++T.TimesPaused;
        ++Result.Pauses;
        T.PausedSinceStep = Result.Steps;
        T.PausedSinceWall = std::chrono::steady_clock::now();
        T.HasPausedPending = true;
        T.PausedPending = Tentative.back();
        {
          telemetry::Timeline &TL = telemetry::Timeline::global();
          if (TL.enabled())
            TL.instant("pause:" + L.Name, timelineTid(T));
        }
        DLF_DEBUG_LOG("paused " << T.Name << " before reacquiring " << L.Name
                                << " after wait");
        return false;
      }
    }
    T.ForceExecute = false;
    // The re-acquisition is an Acquire event (the wait's monitorexit /
    // monitorenter pair in the Java model).
    if (Opts.HappensBefore == HbMode::FullSync)
      vcJoin(T.Clock, L.Clock);
    if (Opts.HappensBefore != HbMode::Off)
      vcTick(T.Clock, T.Id);
    if (Recorder) {
      Recorder->onAcquireExecuted(T, L, T.LockStack, T.Pending.Site,
                                  LockMode::Exclusive);
      Recorder->onLockGranted(T, L, T.Pending.Site, LockMode::Exclusive);
    }
    ++Result.AcquireEvents;
    T.LockStack.push_back({L.Id, T.Pending.Site, LockMode::Exclusive});
    L.Owner = T.Id;
    L.Recursion = 1;
    giveToken(T);
    return true;
  }

  case PendingOp::Kind::Notify: {
    ++Result.Steps;
    CondRecord &CV = RT.condById(T.Pending.Cond);
    size_t WakeCount = T.Pending.NotifyAll ? CV.Waiting.size()
                                           : std::min<size_t>(
                                                 1, CV.Waiting.size());
    // The wakeup is a synchronization edge: everything the notifier did
    // before signal() happens-before everything the waiter does after its
    // wait() returns (FullSync only — ForkJoin stays fork/join-edged).
    if (Opts.HappensBefore == HbMode::FullSync && WakeCount)
      vcTick(T.Clock, T.Id);
    if (Recorder)
      Recorder->onCondNotify(T, CV);
    for (size_t I = 0; I != WakeCount; ++I) {
      ThreadRecord &Waiter = RT.threadById(CV.Waiting[I]);
      assert(Waiter.Pending.K == PendingOp::Kind::CondBlocked &&
             "waiter not parked");
      Waiter.Pending.K = PendingOp::Kind::ReacquireAfterWait;
      if (Opts.HappensBefore == HbMode::FullSync)
        vcJoin(Waiter.Clock, T.Clock);
      if (Recorder)
        Recorder->onCondWake(Waiter, CV);
    }
    CV.Waiting.erase(CV.Waiting.begin(),
                     CV.Waiting.begin() + static_cast<long>(WakeCount));
    giveToken(T);
    return true;
  }

  case PendingOp::Kind::ThreadExit:
  case PendingOp::Kind::CondBlocked:
  case PendingOp::Kind::None:
    break;
  }
  assert(false && "unexpected pending operation");
  return true;
}

bool Scheduler::commitAcquireAttempt(ThreadRecord &T) {
  ++Result.Steps;
  if (Result.Steps > Opts.MaxSteps) {
    Result.LivelockAborted = true;
    abortAll();
    return true;
  }
  LockRecord &L = RT.lockById(T.Pending.Lock);
  Label Site = T.Pending.Site;
  LockMode Mode = T.Pending.Mode;

  // Algorithm 3 lines 9-11: push (tentatively), then checkRealDeadlock.
  std::vector<LockStackEntry> Tentative = T.LockStack;
  Tentative.push_back({L.Id, Site, Mode});
  if (Strat.wantsDeadlockCheck()) {
    if (auto Witness = checkRealDeadlock(&T, &Tentative)) {
      Result.DeadlockFound = true;
      Result.Witness = std::move(Witness);
      {
        telemetry::Timeline &TL = telemetry::Timeline::global();
        if (TL.enabled())
          TL.instant("deadlock-found", timelineTid(T));
      }
      DLF_DEBUG_LOG("real deadlock found:\n" << Result.Witness->toString());
      abortAll();
      return true;
    }
  }

  // Avoidance extension (Dimmunix-style immunity, see DESIGN.md): defer
  // this acquire when it closes in on a component of an avoided cycle
  // while another thread is already inside a different component of the
  // same cycle. Deferral re-arms at the next lock release.
  if (const std::vector<CycleSpec> *Avoid = RT.avoidSpecs()) {
    for (const CycleSpec &Spec : *Avoid) {
      size_t Mine = Spec.enteringComponentIndex(T.Abs, Tentative);
      if (Mine == static_cast<size_t>(-1))
        continue;
      for (ThreadRecord &U : RT.threadRecords()) {
        if (&U == &T || U.State == ThreadState::Finished)
          continue;
        if (Spec.otherComponentInProgress(Mine, U.Abs, U.LockStack)) {
          T.DeferredByAvoidance = true;
          DLF_DEBUG_LOG("avoidance deferred " << T.Name << " before "
                                              << L.Name);
          return false;
        }
      }
    }
  }

  // Algorithm 3 lines 12-18: pause if this acquire is a cycle component —
  // unless the thread was force-resumed by thrash handling or the livelock
  // monitor.
  if (!T.ForceExecute && Strat.shouldPause(T, L, Tentative)) {
    T.Paused = true;
    ++T.TimesPaused;
    ++Result.Pauses;
    T.PausedSinceStep = Result.Steps;
    T.PausedSinceWall = std::chrono::steady_clock::now();
    T.HasPausedPending = true;
    T.PausedPending = Tentative.back();
    {
      telemetry::Timeline &TL = telemetry::Timeline::global();
      if (TL.enabled())
        TL.instant("pause:" + L.Name, timelineTid(T));
    }
    DLF_DEBUG_LOG("paused " << T.Name << " before acquiring " << L.Name
                            << " at " << Site.text());
    return false;
  }
  T.ForceExecute = false;

  // Execute the acquire: this is the event Phase I records (Definition 1).
  if (Opts.HappensBefore == HbMode::FullSync) {
    vcJoin(T.Clock, L.Clock); // release -> acquire edge
    if (Mode == LockMode::Exclusive)
      vcJoin(T.Clock, L.ReadersClock); // every read release precedes a write
  }
  if (Opts.HappensBefore != HbMode::Off)
    vcTick(T.Clock, T.Id);
  if (Recorder)
    Recorder->onAcquireExecuted(T, L, T.LockStack, Site, Mode);
  ++Result.AcquireEvents;
  T.LockStack.push_back({L.Id, Site, Mode});

  if (lockAvailable(L, Mode)) {
    if (Mode == LockMode::Shared) {
      L.Readers.push_back(T.Id);
    } else {
      L.Owner = T.Id;
      L.Recursion = 1;
      L.ReadersClock = VectorClock();
    }
    // Immediate grant: attempt and grant coincide (the blocked path fires
    // onLockGranted later, at CompleteAcquire commit).
    if (Recorder)
      Recorder->onLockGranted(T, L, Site, Mode);
    giveToken(T);
    return true;
  }
  // The lock is unavailable: the thread is now disabled until the
  // conflicting holders release. Its pending lock stays in the stack, which
  // is what lets Algorithm 4 see the wait-for edge.
  T.State = ThreadState::Blocked;
  T.Pending =
      PendingOp{PendingOp::Kind::CompleteAcquire, L.Id, Site, {}, 0, false,
                Mode};
  return false;
}
