//===- runtime/Scheduler.h - Cooperative serialized scheduler ---*- C++ -*-===//
//
// Part of the DeadlockFuzzer reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The active scheduler: real std::threads executing user code one at a
/// time, serialized by token passing at synchronization events. This is the
/// C++ analogue of how CalFuzzer serializes the JVM: at every Acquire /
/// Release / join / yield point the running thread publishes its pending
/// operation and hands control to the scheduling loop, which consults the
/// SchedulerStrategy to pick the next thread (Algorithms 2 and 3 of the
/// paper) and commits that thread's operation against the modeled lock
/// state.
///
/// Because lock state is modeled here rather than delegated to the OS, the
/// scheduler knows Enabled(s) exactly: it can detect a system stall
/// (Enabled empty, Alive non-empty), implement pausing without blocking OS
/// threads, run checkRealDeadlock on every acquire, and recover from a
/// created deadlock by aborting the run (all managed threads unwind with
/// ExecutionAborted at their next scheduling point).
///
/// Mechanics owned by the scheduler (the strategy only answers questions):
///  * the Paused set and thrash handling (Algorithm 3 lines 26-28),
///  * the livelock monitor (paper §5: "a monitor thread periodically
///    removes those threads from Paused that are paused for a long time" —
///    here measured in scheduler steps instead of wall-clock),
///  * the §4 yield mechanics (deprioritizing a yielding thread for a
///    bounded number of pick rounds),
///  * stall detection and run teardown.
///
//===----------------------------------------------------------------------===//

#ifndef DLF_RUNTIME_SCHEDULER_H
#define DLF_RUNTIME_SCHEDULER_H

#include "runtime/Options.h"
#include "runtime/Records.h"
#include "runtime/Result.h"
#include "runtime/Strategy.h"
#include "support/Rng.h"

#include <condition_variable>
#include <mutex>

namespace dlf {

class Runtime;
class DependencyRecorder;

/// One instance drives one Active-mode execution; constructed by
/// Runtime::run and discarded afterwards.
class Scheduler {
public:
  Scheduler(Runtime &RT, const Options &Opts, SchedulerStrategy &Strat,
            DependencyRecorder *Recorder);

  // -- Thread lifecycle -----------------------------------------------------

  /// Marks \p Main (already registered with the runtime) as the running
  /// token holder. Called once before the entry function runs.
  void adoptMainThread(ThreadRecord &Main);

  /// First call of a freshly spawned managed thread: blocks until the
  /// scheduler commits its ThreadStart, then returns with the token held.
  /// Throws ExecutionAborted if the run was torn down first.
  void threadBodyBegin(ThreadRecord &Self);

  /// Last call of a managed thread (normal completion or abort unwinding):
  /// marks it finished and hands the token off if it held one.
  void threadBodyEnd(ThreadRecord &Self);

  /// Called by the main thread after the entry function returned (or
  /// unwound): finishes main, then waits until every managed thread has
  /// finished.
  void mainThreadDone(ThreadRecord &Main);

  // -- Scheduling points ------------------------------------------------------

  /// Full acquire protocol for `Site : Acquire(L)` by \p Self, including
  /// the re-entrancy fast path (footnote 2), announcing, pausing, blocking
  /// and completion. Returns once Self owns L. \p Mode distinguishes the
  /// rwlock read side (Shared acquires of the same lock coexist; an
  /// Exclusive acquire is disabled until every reader releases).
  void acquire(ThreadRecord &Self, LockRecord &L, Label Site,
               LockMode Mode = LockMode::Exclusive);

  /// Release protocol; the matching stack entry is popped and waiters
  /// become schedulable. Non-throwing during abort (so RAII guards can
  /// unwind safely). The released mode is taken from the stack entry, so
  /// read and write releases need no separate entry point.
  void release(ThreadRecord &Self, LockRecord &L, Label Site);

  /// Non-blocking acquire: takes \p L if it is available in \p Mode
  /// (recording the dependency event) and returns true; returns false when
  /// the probe fails (counted in ExecutionResult::TryProbes — a failed
  /// probe is never a wait-for edge and never pauses the thread). Not a
  /// scheduling point — the paper's model has no tryLock, so this is a
  /// conservative extension.
  bool tryAcquire(ThreadRecord &Self, LockRecord &L, Label Site,
                  LockMode Mode = LockMode::Exclusive);

  /// Managed join: Self is disabled until \p Target finishes.
  void join(ThreadRecord &Self, ThreadRecord &Target);

  /// Managed condition wait: atomically releases \p M (which Self must
  /// hold non-recursively) and blocks until a notify on \p CV, then
  /// re-acquires M. \p ReacquireSite labels the re-acquisition.
  void condWait(ThreadRecord &Self, CondRecord &CV, LockRecord &M,
                Label ReacquireSite);

  /// Managed notify: wakes one (or all) waiters of \p CV; they become
  /// schedulable once the associated lock is free.
  void condNotify(ThreadRecord &Self, CondRecord &CV, bool All);

  /// An explicit scheduling point with no state effect; lets the strategy
  /// preempt compute-only code regions.
  void yieldPoint(ThreadRecord &Self);

  // -- Results ----------------------------------------------------------------

  /// True once the run has been aborted (deadlock/stall/livelock).
  bool aborted() const;

  /// Moves the accumulated result out; valid after mainThreadDone.
  ExecutionResult takeResult() { return std::move(Result); }

private:
  /// Publishes \p Op for \p Self, runs the pick loop, and blocks until the
  /// scheduler hands the token back to Self (its op committed). With
  /// \p NoThrowOnAbort the call returns silently instead of throwing when
  /// the run is torn down (used on unwind paths).
  void announceAndWait(ThreadRecord &Self, PendingOp Op,
                       bool NoThrowOnAbort = false);

  /// The scheduling loop (runs under Mu in whichever thread gave up the
  /// token): repeatedly picks a schedulable thread and commits its pending
  /// operation until some thread receives the token, all threads finish, or
  /// the run aborts.
  void pickLoop();

  /// Commits \p T's pending operation. Returns true when the loop should
  /// stop (token granted or run ended), false to pick again.
  bool commitOp(ThreadRecord &T);

  /// Commits the acquire attempt of \p T (push, record, checkRealDeadlock,
  /// pause decision, ownership transfer / blocking).
  bool commitAcquireAttempt(ThreadRecord &T);

  /// True when \p T can be committed right now: announced and, for blocked
  /// operations, the resource condition holds (lock available in the
  /// pending mode / target finished).
  bool isSchedulable(const ThreadRecord &T) const;

  /// Active-mode lock availability: a Shared acquire only needs no
  /// exclusive owner (readers coexist); an Exclusive acquire additionally
  /// needs an empty reader set. Plain mutexes never have readers, so this
  /// degrades to the old "no owner" test.
  static bool lockAvailable(const LockRecord &L, LockMode Mode);

  /// Removes long-paused threads from the Paused set (the livelock
  /// monitor).
  void runLivelockMonitor();

  /// Grants the token to \p T and wakes it.
  void giveToken(ThreadRecord &T);

  /// Tears the run down: sets the abort flag and wakes everyone.
  void abortAll();

  /// Runs Algorithm 4 with \p Tentative substituted for \p For's stack
  /// (pass nullptr to use the recorded stacks everywhere).
  std::optional<DeadlockWitness>
  checkRealDeadlock(const ThreadRecord *For,
                    const std::vector<LockStackEntry> *Tentative);

  Runtime &RT;
  const Options &Opts;
  SchedulerStrategy &Strat;
  DependencyRecorder *Recorder;

  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::condition_variable DoneCv;

  ThreadId RunningId; ///< current token holder; invalid inside pickLoop
  bool AbortFlag = false;
  bool Done = false;

  Rng Random;
  ExecutionResult Result;
};

} // namespace dlf

#endif // DLF_RUNTIME_SCHEDULER_H
