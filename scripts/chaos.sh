#!/usr/bin/env bash
#===- scripts/chaos.sh - Chaos soak for the campaign runtime ---------------===#
#
# Drives dlf-run campaigns through injected faults and asserts the
# self-healing invariants end to end, from outside the process:
#
#   * the journal is always a parseable prefix of CRC-intact records —
#     validated here with an independent decoder (Python's zlib.crc32),
#     not the library that wrote it;
#   * a campaign killed by an injected runner SIGKILL is resumable, every
#     time, and the finished campaign's per-cycle classification counts are
#     byte-identical to a fault-free serial reference run;
#   * a campaign whose journal device dies degrades to in-memory results
#     (same counts, journal set aside as .broken) instead of aborting;
#   * no stray or zombie dlf-run processes survive any of it.
#
# Modes:
#   crash  explicit crash-heavy plan: child segv + hang + a runner SIGKILL
#          every third committed rep, resumed in a loop until completion
#   disk   journal fsync dies mid-campaign; the run must degrade gracefully
#   soak   randomized plans from --chaos seeds, each checked against the
#          fault-free reference and (when the journal survived) resumed
#   all    crash + disk + soak (default)
#
# Usage: scripts/chaos.sh [--bin PATH] [--mode crash|disk|soak|all]
#                         [--seed N] [--seeds N] [--bench NAME] [--reps N]
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."

BIN=build/src/dlf-run
MODE=all
SEED=1
SEEDS=3
BENCH=dbcp
REPS=8
TIMEOUT_MS=2000

while [ $# -gt 0 ]; do
  case "$1" in
    --bin) BIN="$2"; shift 2 ;;
    --mode) MODE="$2"; shift 2 ;;
    --seed) SEED="$2"; shift 2 ;;
    --seeds) SEEDS="$2"; shift 2 ;;
    --bench) BENCH="$2"; shift 2 ;;
    --reps) REPS="$2"; shift 2 ;;
    *) echo "usage: $0 [--bin PATH] [--mode crash|disk|soak|all]" \
            "[--seed N] [--seeds N] [--bench NAME] [--reps N]" >&2; exit 2 ;;
  esac
done

[ -x "$BIN" ] || { echo "chaos: $BIN not built" >&2; exit 2; }

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Per-cycle table rows from a dlf-run transcript, minus the Retries column:
# injected transient faults converge to the fault-free classifications, but
# the restarts they forced are (correctly) billed as retries.
rows() {
  python3 - "$1" <<'EOF'
import sys
for line in open(sys.argv[1]):
    if line.startswith('| #'):
        cols = [c.strip() for c in line.rstrip('\n').split('|')]
        del cols[9]  # Retries
        print('|'.join(cols))
EOF
}

# Independent journal validation: every line must be `<json>\t<8-hex crc32
# of the json>\n`, starting with the header record. Any torn or corrupt
# line — including an unterminated final one — fails the invariant (the
# runner's own kill site closes the journal only after a complete record).
check_journal() {
  python3 - "$1" <<'EOF'
import json, sys, zlib
path = sys.argv[1]
data = open(path, 'rb').read()
assert data, f"{path}: empty journal"
assert data.endswith(b'\n'), f"{path}: torn final line"
lines = data.split(b'\n')[:-1]
for i, ln in enumerate(lines):
    body, tab, tag = ln.rpartition(b'\t')
    assert tab, f"{path}:{i+1}: no integrity tag"
    assert len(tag) == 8, f"{path}:{i+1}: malformed integrity tag"
    assert int(tag, 16) == zlib.crc32(body) & 0xffffffff, \
        f"{path}:{i+1}: crc mismatch"
    json.loads(body)
assert b'"dlf_campaign"' in lines[0], f"{path}: first record is not a header"
print(f"  journal OK: {len(lines)} intact records")
EOF
}

# No dlf-run process (running or zombie) may outlive a campaign — the
# sandbox ties child lifetimes to the runner with PR_SET_PDEATHSIG, so even
# a SIGKILLed runner must take its children with it. /proc is scanned
# directly to avoid a pgrep dependency.
no_strays() {
  sleep 0.3 # let PDEATHSIG delivery and reaping settle
  local stat pid comm state found=0
  for stat in /proc/[0-9]*/stat; do
    read -r pid comm state _ < "$stat" 2>/dev/null || continue
    if [ "$comm" = "(dlf-run)" ]; then
      echo "chaos: stray dlf-run process $pid (state $state)" >&2
      found=1
    fi
  done
  return $found
}

echo "== chaos: fault-free serial reference ($BENCH, $REPS reps) =="
"$BIN" "$BENCH" --campaign --reps "$REPS" --run-timeout-ms "$TIMEOUT_MS" \
  --journal "$WORK/ref.jsonl" >"$WORK/ref.out"
check_journal "$WORK/ref.jsonl"
REF_ROWS="$(rows "$WORK/ref.out")"
[ -n "$REF_ROWS" ] || { echo "chaos: reference produced no table" >&2; exit 1; }

run_crash() {
  echo "== chaos: crash mode (child faults + kill/resume loop) =="
  local J="$WORK/crash.jsonl"
  local PLAN='child.crash:segv@rep=1;child.hang@rep=2;runner.kill@3'
  local round=0 code journal_arg
  rm -f "$J"
  while :; do
    round=$((round + 1))
    [ "$round" -le 32 ] || { echo "chaos: kill loop did not converge" >&2; exit 1; }
    journal_arg=--journal
    [ "$round" -gt 1 ] && journal_arg=--resume
    code=0
    "$BIN" "$BENCH" --campaign --reps "$REPS" --run-timeout-ms "$TIMEOUT_MS" \
      --faults "$PLAN" "$journal_arg" "$J" \
      >"$WORK/crash.out" 2>"$WORK/crash.err" || code=$?
    if [ "$code" -eq 137 ]; then
      echo "  round $round: runner killed as planned; validating journal"
      check_journal "$J"
      no_strays
      continue
    fi
    [ "$code" -eq 0 ] || { echo "chaos: unexpected exit $code" >&2
                           cat "$WORK/crash.err" >&2; exit 1; }
    break
  done
  grep -q "campaign complete" "$WORK/crash.out" || {
    echo "chaos: campaign did not complete" >&2; exit 1; }
  no_strays
  check_journal "$J"
  if [ "$(rows "$WORK/crash.out")" != "$REF_ROWS" ]; then
    echo "chaos: crash-mode counts diverged from the reference:" >&2
    diff <(echo "$REF_ROWS") <(rows "$WORK/crash.out") >&2 || true
    exit 1
  fi
  echo "  converged after $round run(s); counts match the reference"
}

run_disk() {
  echo "== chaos: disk mode (journal dies mid-campaign) =="
  local J="$WORK/disk.jsonl"
  rm -f "$J" "$J.broken"
  "$BIN" "$BENCH" --campaign --reps "$REPS" --run-timeout-ms "$TIMEOUT_MS" \
    --faults 'journal.fsync:enospc@4' --journal "$J" \
    >"$WORK/disk.out" 2>"$WORK/disk.err"
  grep -q "campaign complete" "$WORK/disk.out" || {
    echo "chaos: degraded campaign did not complete" >&2; exit 1; }
  grep -q "journal degraded" "$WORK/disk.out" || {
    echo "chaos: degradation was not reported" >&2; exit 1; }
  [ -f "$J.broken" ] || { echo "chaos: no .broken journal" >&2; exit 1; }
  [ ! -f "$J" ] || { echo "chaos: degraded journal left in place" >&2; exit 1; }
  no_strays
  if [ "$(rows "$WORK/disk.out")" != "$REF_ROWS" ]; then
    echo "chaos: disk-mode counts diverged from the reference" >&2
    exit 1
  fi
  echo "  degraded gracefully; counts match the reference"
}

run_soak() {
  echo "== chaos: soak mode (seeds $SEED..$((SEED + SEEDS - 1))) =="
  local s J
  for s in $(seq "$SEED" $((SEED + SEEDS - 1))); do
    J="$WORK/soak-$s.jsonl"
    rm -f "$J" "$J.broken"
    "$BIN" "$BENCH" --campaign --reps "$REPS" --run-timeout-ms "$TIMEOUT_MS" \
      --jobs 2 --chaos "$s" --journal "$J" \
      >"$WORK/soak.out" 2>"$WORK/soak.err"
    grep -q "campaign complete" "$WORK/soak.out" || {
      echo "chaos: seed $s campaign did not complete" >&2; exit 1; }
    no_strays
    if [ "$(rows "$WORK/soak.out")" != "$REF_ROWS" ]; then
      echo "chaos: seed $s counts diverged from the reference:" >&2
      diff <(echo "$REF_ROWS") <(rows "$WORK/soak.out") >&2 || true
      exit 1
    fi
    if [ -f "$J" ]; then
      # The journal survived this seed's plan: it must replay completely.
      check_journal "$J"
      "$BIN" "$BENCH" --campaign --reps "$REPS" \
        --run-timeout-ms "$TIMEOUT_MS" --jobs 2 --resume "$J" \
        >"$WORK/soak-resume.out"
      grep -q "reps executed 0" "$WORK/soak-resume.out" || {
        echo "chaos: seed $s completed journal did not replay fully" >&2
        exit 1; }
      echo "  seed $s: counts match; journal replays clean"
    else
      [ -f "$J.broken" ] || {
        echo "chaos: seed $s journal vanished without degrading" >&2
        exit 1; }
      echo "  seed $s: counts match; journal degraded as planned"
    fi
  done
}

case "$MODE" in
  crash) run_crash ;;
  disk) run_disk ;;
  soak) run_soak ;;
  all) run_crash; run_disk; run_soak ;;
  *) echo "chaos: unknown mode '$MODE'" >&2; exit 2 ;;
esac

echo "== chaos: all invariants held =="
